// Package midband is a slot-level 5G NR mid-band network simulator and
// measurement toolkit reproducing "Unveiling the 5G Mid-Band Landscape:
// From Network Deployment to Performance and Application QoE" (ACM SIGCOMM
// 2024).
//
// It bundles:
//
//   - profiles of the seven commercial operators the paper measured
//     (Tables 2–3), including TDD frames, CQI→MCS configuration, carrier
//     aggregation, NSA uplink policies and deployment-quality calibration;
//   - a slot-accurate radio simulator (channel, AMC with outer-loop link
//     adaptation, MIMO rank adaptation, HARQ, carrier aggregation, LTE
//     anchor);
//   - the measurement pipeline of the paper: XCAL-style slot KPI traces,
//     bulk-transfer (iPerf-like) drivers, user-plane latency probes;
//   - the paper's analyses: the scaled variability metric V(t), CDFs and
//     utilization shares;
//   - a DASH video streaming stack with BOLA, throughput-based and dynamic
//     ABR algorithms and QoE accounting.
//
// The quickest way in:
//
//	op, _ := midband.OperatorByAcronym("V_Sp")
//	link, _ := midband.NewLink(op, midband.Stationary(42))
//	res, _ := midband.RunIperf(link, 10*time.Second)
//	fmt.Printf("downlink: %.0f Mbps\n", res.DLMbps)
package midband

import (
	"time"

	"github.com/midband5g/midband/internal/analysis"
	"github.com/midband5g/midband/internal/channel"
	"github.com/midband5g/midband/internal/core"
	"github.com/midband5g/midband/internal/gnb"
	"github.com/midband5g/midband/internal/iperf"
	"github.com/midband5g/midband/internal/net5g"
	"github.com/midband5g/midband/internal/operators"
	"github.com/midband5g/midband/internal/video"
)

// Operator is a commercial deployment profile (Tables 2 and 3 of the
// paper): carriers, TDD frames, MCS configuration, NSA uplink policy and
// deployment-quality calibration.
type Operator = operators.Operator

// Carrier is one component carrier of an operator.
type Carrier = operators.Carrier

// Scenario describes how an experiment exercises the link (mobility,
// resource share, seed).
type Scenario = operators.Scenario

// Link is an end-to-end NSA 5G link: NR component carriers plus the LTE
// anchor.
type Link = net5g.Link

// Demand is offered load for a link step.
type Demand = net5g.Demand

// IperfResult is the outcome of a bulk-transfer session, including the
// slot-level KPI series (throughput, MCS, rank, RBs, CQI, SINR, RSRQ).
type IperfResult = iperf.Result

// VideoSession configures a DASH streaming session.
type VideoSession = video.SessionConfig

// VideoResult carries the QoE metrics of a streaming session.
type VideoResult = video.Result

// Ladder is a video quality ladder in Mbps.
type Ladder = video.Ladder

// ABR is a bitrate adaptation algorithm.
type ABR = video.ABR

// Session couples an operator, a scenario and a live link, and runs the
// paper's measurement methodology (warm-up, signaling capture, workloads).
type Session = core.Session

// CampaignStats aggregates a measurement campaign (Table 1).
type CampaignStats = core.CampaignStats

// VariabilityPoint is one (time scale, V(t)) point of a variability curve.
type VariabilityPoint = analysis.ScalePoint

// Paper video ladders (§6 and §7).
var (
	Ladder400    = video.Ladder400
	LadderMmWave = video.LadderMmWave
)

// Operators returns every deployment profile in the registry, including the
// §7 mmWave comparison profile.
func Operators() []Operator { return operators.All() }

// MidBandOperators returns the eleven mid-band deployments of Tables 2–3.
func MidBandOperators() []Operator { return operators.MidBand() }

// OperatorByAcronym finds a profile by the paper's short name (e.g. "V_Sp",
// "O_Sp100", "Tmb_US").
func OperatorByAcronym(acr string) (Operator, error) { return operators.ByAcronym(acr) }

// Stationary, Walking and Driving build the paper's mobility scenarios.
func Stationary(seed int64) Scenario { return operators.Stationary(seed) }

// Walking moves the UE at pedestrian speed.
func Walking(seed int64) Scenario { return operators.Walking(seed) }

// Driving moves the UE at urban driving speed.
func Driving(seed int64) Scenario { return operators.Driving(seed) }

// NewLink builds the operator's NSA link for a scenario.
func NewLink(op Operator, sc Scenario) (*Link, error) {
	cfg, err := op.LinkConfig(sc)
	if err != nil {
		return nil, err
	}
	return net5g.NewLink(cfg)
}

// NewSession builds a measurement session (link + methodology).
func NewSession(op Operator, sc Scenario) (*Session, error) {
	return core.NewSession(op, sc)
}

// RunIperf saturates the link's downlink and uplink for the given duration
// and returns the measured result with its slot-level KPI series.
func RunIperf(link *Link, d time.Duration) (*IperfResult, error) {
	return iperf.Run(link, iperf.Config{Duration: d})
}

// StreamVideo plays a DASH session over the link.
func StreamVideo(link *Link, cfg VideoSession) (*VideoResult, error) {
	return video.Play(link, cfg)
}

// NewBOLA returns the BOLA ABR algorithm with dash.js defaults.
func NewBOLA() ABR { return video.NewBOLA() }

// NewThroughputABR returns the rate-based ABR algorithm.
func NewThroughputABR() ABR { return &video.ThroughputABR{} }

// NewDynamicABR returns the hybrid BOLA/throughput controller.
func NewDynamicABR() ABR { return video.NewDynamic() }

// RunCampaign measures every mid-band operator once and aggregates the
// dataset statistics (Table 1). TraceDir, when non-empty, receives one
// XCAL-style trace per session.
func RunCampaign(sessionDuration time.Duration, traceDir string, seed int64) (*CampaignStats, error) {
	return core.RunCampaign(core.CampaignConfig{
		SessionDuration: sessionDuration,
		TraceDir:        traceDir,
		Seed:            seed,
	})
}

// Variability computes the paper's scaled variability metric V(t) (eq. 1)
// over a series sampled at fixed intervals, at a time scale of `scale`
// samples.
func Variability(series []float64, scale int) (float64, error) {
	return analysis.Variability(series, scale)
}

// VariabilityCurve computes V(t) across dyadic time scales t = 2^k·τ,
// k = 0..maxK (the x-axis of the paper's Figure 12).
func VariabilityCurve(series []float64, tau time.Duration, maxK int) []VariabilityPoint {
	return analysis.Curve(series, tau, maxK)
}

// Multi-UE cell API: the substrate behind the paper's §5.2 multi-user
// experiment, exposed for scheduler studies.

// Cell simulates one carrier shared by several UEs under a scheduling
// policy.
type Cell = gnb.Cell

// CellSlot is one slot's outcome across the cell's UEs.
type CellSlot = gnb.CellSlot

// SchedulerPolicy selects how a cell splits resource blocks.
type SchedulerPolicy = gnb.SchedulerPolicy

// Scheduler policies.
const (
	SchedulerEqualShare       = gnb.SchedulerEqualShare
	SchedulerProportionalFair = gnb.SchedulerProportionalFair
	SchedulerMaxRate          = gnb.SchedulerMaxRate
	SchedulerRoundRobin       = gnb.SchedulerRoundRobin
)

// UEPosition is a UE location in the cell's coordinate system (meters;
// gNB sites sit on the X axis).
type UEPosition = channel.Point

// NewCell builds a multi-UE cell on the operator's primary carrier with
// one UE per position, using the legacy share model (per-slot fractional
// RB splits, no HARQ, full-buffer UEs). For the full contention model
// use NewContentionCell.
func NewCell(op Operator, sc Scenario, policy SchedulerPolicy, ues []UEPosition) (*Cell, error) {
	cc, err := op.CarrierConfig(0, sc)
	if err != nil {
		return nil, err
	}
	return gnb.NewCell(gnb.CellConfig{
		Carrier: cc,
		UEs:     ues,
		Policy:  policy,
		Seed:    sc.Seed,
	})
}

// NewContentionCell builds a multi-UE cell with the full shared-resource
// model: per-UE HARQ processes and RLC-style buffers, integer-RB grants
// across the contending UE set, and load-coupled interference (the
// cell's own RB utilization replaces the statistical neighbor load).
// See docs/SIMULATION-MODEL.md for how the pieces map to the paper.
func NewContentionCell(op Operator, sc Scenario, policy SchedulerPolicy, ues []UEPosition) (*Cell, error) {
	cc, err := op.CarrierConfig(0, sc)
	if err != nil {
		return nil, err
	}
	return gnb.NewCell(gnb.CellConfig{
		Carrier: cc,
		UEs:     ues,
		Policy:  policy,
		Model:   gnb.CellModelContention,
		Seed:    sc.Seed,
	})
}

// UEPositions derives n deterministic UE positions around the serving
// site from a seed; position i is independent of n, so growing the
// population never moves existing UEs.
func UEPositions(seed int64, n int) []UEPosition {
	return core.UEPositions(seed, n)
}
