// Mid-band vs mmWave: the §7 comparison. Measures both technologies under
// walking and driving, printing throughput, variability and streaming QoE —
// the evidence for mid-band as the 5G "sweet spot".
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/midband5g/midband"
)

func main() {
	log.SetFlags(0)
	mid, err := midband.OperatorByAcronym("Tmb_US")
	if err != nil {
		log.Fatal(err)
	}
	mmw, err := midband.OperatorByAcronym("Vzw_mmW")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-10s %-8s %10s %16s %12s %9s\n",
		"tech", "mobility", "DL Mbps", "V(128ms)/mean", "norm rate", "stall %")
	for _, tech := range []struct {
		name string
		op   midband.Operator
	}{{"mid-band", mid}, {"mmWave", mmw}} {
		for _, mob := range []struct {
			name string
			sc   midband.Scenario
		}{{"walking", midband.Walking(11)}, {"driving", midband.Driving(11)}} {
			link, err := midband.NewLink(tech.op, mob.sc)
			if err != nil {
				log.Fatal(err)
			}
			res, err := midband.RunIperf(link, 20*time.Second)
			if err != nil {
				log.Fatal(err)
			}
			scale := int(128 * time.Millisecond / res.SlotDuration)
			v, err := midband.Variability(res.ThroughputMbpsSeries(), scale)
			if err != nil {
				log.Fatal(err)
			}

			// Stream on a fresh link realization of the same scenario.
			vlink, err := midband.NewLink(tech.op, mob.sc)
			if err != nil {
				log.Fatal(err)
			}
			video, err := midband.StreamVideo(vlink, midband.VideoSession{
				Ladder:        midband.Ladder400,
				ChunkLength:   time.Second,
				VideoDuration: time.Minute,
				ABR:           midband.NewBOLA(),
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-10s %-8s %10.1f %16.3f %12.2f %9.2f\n",
				tech.name, mob.name, res.DLMbps, v/res.DLMbps,
				video.AvgNormBitrate, video.StallPct())
		}
	}
	fmt.Println("\nmmWave wins on raw throughput; mid-band wins on stability —")
	fmt.Println("and stability is what adaptive applications monetize (§7).")
}
