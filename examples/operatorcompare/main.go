// Operator comparison: the paper's §4.1 Spain case study. Why does Orange
// Spain's 100 MHz channel lose to two 90 MHz channels? This example walks
// the same dissection the paper does: throughput → resource allocation →
// modulation → MIMO layers → coverage.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/midband5g/midband"
)

func main() {
	log.SetFlags(0)
	carriers := []string{"V_Sp", "O_Sp90", "O_Sp100"}

	fmt.Println("The §4.1 Spain case study: wider channel ≠ more throughput")
	fmt.Printf("%-9s %5s %9s %10s %9s %9s %9s\n",
		"carrier", "MHz", "DL Mbps", "mean REs", "rank-4", "256QAM", "64QAM-cap")
	for i, acr := range carriers {
		op, err := midband.OperatorByAcronym(acr)
		if err != nil {
			log.Fatal(err)
		}
		link, err := midband.NewLink(op, midband.Stationary(100+int64(i)))
		if err != nil {
			log.Fatal(err)
		}
		res, err := midband.RunIperf(link, 10*time.Second)
		if err != nil {
			log.Fatal(err)
		}
		var re, rank4, m256, n float64
		for j := range res.RBs {
			if res.RBs[j] == 0 {
				continue
			}
			n++
			re += res.REs[j]
			// Rank is an integral layer count carried in a float64
			// series; compare in integer space, not float.
			if int(res.Rank[j]) == 4 {
				rank4++
			}
			m256 += res.Mod256[j]
		}
		capped := "no"
		if op.PCell().MCSTable == 1 {
			capped = "yes"
		}
		fmt.Printf("%-9s %5d %9.1f %10.0f %8.1f%% %8.1f%% %9s\n",
			acr, op.PCell().BandwidthMHz, res.DLMbps, re/n, 100*rank4/n, 100*m256/n, capped)
	}

	fmt.Println(`
Reading the table the way the paper does:
 - the 100 MHz channel allocates the MOST resource elements, so radio
   resources are not the bottleneck (Fig. 3);
 - it is capped at 64QAM while the 90 MHz carriers can use 256QAM (Fig. 5);
 - and its sparser deployment yields worse RSRQ, so the gNB schedules
   fewer MIMO layers (Figs. 6-7) — the dominant factor.`)
}
