// Scheduler study: the §5.2 multi-user experiment run faithfully with two
// concurrent UEs in one cell, under three scheduling policies. Shows the
// paper's Fig. 14 finding — sharing halves per-UE resources but leaves the
// channel variability of each location untouched — and what changes when
// the scheduler is not the equal-share one the paper observed.
//
// This is a multi-UE run on the legacy share-model cell (midband.NewCell):
// per-slot fractional RB splits, no HARQ, full-buffer UEs. For the full
// contention model — per-UE HARQ and RLC buffers, integer-RB grants,
// load-coupled interference — see examples/multiue.
package main

import (
	"fmt"
	"log"

	"github.com/midband5g/midband"
)

func main() {
	log.SetFlags(0)
	op, err := midband.OperatorByAcronym("Vzw_US")
	if err != nil {
		log.Fatal(err)
	}
	// The paper's two measurement spots: 45 m and 117 m from the gNB.
	ues := []midband.UEPosition{{X: 0, Y: 45}, {X: 0, Y: 117}}

	fmt.Printf("%-18s %12s %12s %10s\n", "scheduler", "45m (Mbps)", "117m (Mbps)", "fairness")
	for _, policy := range []midband.SchedulerPolicy{
		midband.SchedulerEqualShare,
		midband.SchedulerProportionalFair,
		midband.SchedulerMaxRate,
	} {
		cell, err := midband.NewCell(op, midband.Stationary(99), policy, ues)
		if err != nil {
			log.Fatal(err)
		}
		const slots = 40000 // 20 s
		bits := make([]float64, len(ues))
		for i := 0; i < slots; i++ {
			res := cell.Step()
			for _, a := range res.Allocs {
				bits[a.UE] += float64(a.Alloc.DeliveredBits)
			}
		}
		secs := float64(slots) * cell.SlotDuration().Seconds()
		near, far := bits[0]/secs/1e6, bits[1]/secs/1e6
		jain := (near + far) * (near + far) / (2 * (near*near + far*far))
		fmt.Printf("%-18s %12.1f %12.1f %10.3f\n", policy, near, far, jain)
	}
	fmt.Println("\nequal share reproduces the paper's observation (each UE gets ~half);")
	fmt.Println("max-rate shows why operators do not deploy it.")
}
