// Quickstart: simulate one operator's 5G mid-band deployment and print the
// headline numbers the paper reports for it — DL/UL throughput and the key
// lower-layer KPI distributions.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/midband5g/midband"
)

func main() {
	log.SetFlags(0)

	// Vodafone Spain: the paper's 90 MHz n78 reference carrier.
	op, err := midband.OperatorByAcronym("V_Sp")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s (%s, %s): %s", op.Name, op.City, op.Country, op.PCell().Label())
	if op.CarrierAggregation() {
		fmt.Printf(" + %d SCells", len(op.Carriers)-1)
	}
	fmt.Printf(", TDD %s\n\n", op.PCell().TDDPattern)

	link, err := midband.NewLink(op, midband.Stationary(42))
	if err != nil {
		log.Fatal(err)
	}
	res, err := midband.RunIperf(link, 10*time.Second)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("PHY DL throughput: %7.1f Mbps (paper: 743.0)\n", res.DLMbps)
	fmt.Printf("PHY UL throughput: %7.1f Mbps\n", res.ULMbps)

	// The §5 analysis: throughput variability across time scales.
	curve := midband.VariabilityCurve(res.ThroughputMbpsSeries(), res.SlotDuration, 12)
	fmt.Println("\nthroughput variability V(t):")
	for _, p := range curve {
		if p.Duration >= 2*time.Millisecond {
			fmt.Printf("  t=%8v  V=%7.1f Mbps\n", p.Duration, p.V)
		}
	}
}
