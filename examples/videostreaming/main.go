// Video streaming: the §6 experiment. Stream DASH video with BOLA over a
// simulated 5G channel, report QoE, then repeat with 1 s chunks to show the
// paper's §6.2 improvement (up to +40% bitrate, −50% stall time).
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/midband5g/midband"
)

func main() {
	log.SetFlags(0)
	op, err := midband.OperatorByAcronym("V_Ge")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("streaming over %s (%s)\n\n", op.Name, op.PCell().Label())
	fmt.Printf("%-8s %-12s %10s %9s %9s %8s\n",
		"chunk", "ABR", "norm rate", "avg qlty", "stall %", "switches")

	for _, chunk := range []time.Duration{4 * time.Second, time.Second} {
		for _, abr := range []struct {
			name string
			alg  midband.ABR
		}{
			{"bola", midband.NewBOLA()},
			{"throughput", midband.NewThroughputABR()},
			{"dynamic", midband.NewDynamicABR()},
		} {
			link, err := midband.NewLink(op, midband.Stationary(7))
			if err != nil {
				log.Fatal(err)
			}
			res, err := midband.StreamVideo(link, midband.VideoSession{
				Ladder:        midband.Ladder400,
				ChunkLength:   chunk,
				VideoDuration: 2 * time.Minute,
				ABR:           abr.alg,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-8v %-12s %10.2f %9.2f %9.2f %8d\n",
				chunk, abr.name, res.AvgNormBitrate, res.AvgQuality, res.StallPct(), res.Switches)
		}
	}
	fmt.Println("\nsmaller chunks let the ABR react at the 5G channel's variability")
	fmt.Println("time scale (0.2–0.5 s), recovering from erroneous decisions faster.")
}
