// Multi-UE contention: six UEs attached to one shared cell under the full
// contention model (midband.NewContentionCell — per-UE HARQ processes and
// RLC-style buffers, integer-RB grants across the contending set, and
// load-coupled interference), comparing proportional-fair against
// round-robin scheduling. PF trades a little fairness for cell goodput by
// riding each UE's channel peaks; RR hands every backlogged UE the same
// slot share regardless of channel quality. See docs/SIMULATION-MODEL.md
// for how the model maps to the paper.
package main

import (
	"fmt"
	"log"

	"github.com/midband5g/midband"
)

func main() {
	log.SetFlags(0)
	op, err := midband.OperatorByAcronym("V_Sp")
	if err != nil {
		log.Fatal(err)
	}
	const nUEs = 6
	ues := midband.UEPositions(11, nUEs)

	for _, policy := range []midband.SchedulerPolicy{
		midband.SchedulerProportionalFair,
		midband.SchedulerRoundRobin,
	} {
		cell, err := midband.NewContentionCell(op, midband.Stationary(99), policy, ues)
		if err != nil {
			log.Fatal(err)
		}
		const slots = 40000 // 20 s
		bits := make([]float64, nUEs)
		for i := 0; i < slots; i++ {
			for _, a := range cell.Step().Allocs {
				bits[a.UE] += float64(a.Alloc.DeliveredBits)
			}
		}
		secs := float64(slots) * cell.SlotDuration().Seconds()
		var total, sumsq float64
		for _, b := range bits {
			total += b
			sumsq += b * b
		}
		jain := total * total / (nUEs * sumsq)
		fmt.Printf("%-18s cell %7.1f Mbps   Jain %.3f   shares:", policy, total/secs/1e6, jain)
		for _, b := range bits {
			fmt.Printf(" %5.1f%%", 100*b/total)
		}
		fmt.Println()
	}
	fmt.Println("\nPF beats RR on cell goodput; RR equalizes slot time, not bits —")
	fmt.Println("far UEs convert their slots to fewer bits, so shares still differ.")
}
