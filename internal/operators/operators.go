// Package operators encodes the commercial deployments the paper measured:
// the per-carrier channel configurations of Tables 2 and 3, the NSA uplink
// behaviour of §4.2, the TDD frame structures and grant configurations
// behind §4.3, and per-operator deployment-quality parameters (coverage
// density, §4.1/Appendix 10.3) calibrated so the simulated KPI distributions
// land near the paper's reported aggregates.
package operators

import (
	"fmt"
	"time"

	"github.com/midband5g/midband/internal/bands"
	"github.com/midband5g/midband/internal/channel"
	"github.com/midband5g/midband/internal/fleet"
	"github.com/midband5g/midband/internal/gnb"
	"github.com/midband5g/midband/internal/lte"
	"github.com/midband5g/midband/internal/net5g"
	"github.com/midband5g/midband/internal/phy"
	"github.com/midband5g/midband/internal/tdd"
	"github.com/midband5g/midband/internal/ue"
)

// Carrier is one component carrier of an operator's deployment.
type Carrier struct {
	// Band is the NR operating band.
	Band bands.Band
	// BandwidthMHz is the channel bandwidth.
	BandwidthMHz int
	// SCSkHz is the subcarrier spacing.
	SCSkHz int
	// NRBOverride, when non-zero, replaces the TS 38.101-1 N_RB lookup.
	// Used only where the paper's printed tables deviate from the spec
	// (T-Mobile's n25 rows print N_RB values of the 30 kHz column
	// against a 15 kHz SCS label); the mismatch is surfaced by
	// internal/config during extraction.
	NRBOverride int
	// TDDPattern is the UL/DL frame (empty for FDD carriers).
	TDDPattern string
	// MCSTable is the configured maximum-modulation table.
	MCSTable phy.MCSTable
	// MaxMIMOLayers caps spatial multiplexing (4 everywhere in the study).
	MaxMIMOLayers int

	// Deployment quality — the §4.1 knobs.

	// Sites is the number of gNB sites covering the measurement area
	// (Appendix 10.3: V_Sp has 3, O_Sp has 2).
	Sites int
	// SiteSpacingM is the inter-site distance.
	SiteSpacingM float64
	// UEDistanceM is the stationary measurement spot's distance from the
	// nearest site.
	UEDistanceM float64
	// SINRBiasDB is the residual calibration offset.
	SINRBiasDB float64
	// ShadowSigmaDB and FastSigmaDB control channel variability —
	// the §5 dimension.
	ShadowSigmaDB, FastSigmaDB float64
	// SlowDriftDB is the slow environment/load drift (σ, ~10 s
	// correlation) behind the multi-second throughput sags of the
	// paper's Figs. 13 and 16.
	SlowDriftDB float64
	// EpisodeRatePerSec, EpisodeMeanSeconds and EpisodeDepthDB configure
	// the occasional deep congestion/interference sags (§6's stall
	// trigger). A zero rate disables episodes.
	EpisodeRatePerSec  float64
	EpisodeMeanSeconds float64
	EpisodeDepthDB     [2]float64
	// ULSINROffsetDB is the uplink power deficit.
	ULSINROffsetDB float64
	// ULMaxRank and ULRBFraction shape uplink capacity.
	ULMaxRank    int
	ULRBFraction float64
	// RankThresholdsDB override the UE rank-adaptation thresholds.
	RankThresholdsDB [3]float64
	// MmWaveBlockage enables the FR2 blockage/outage process.
	MmWaveBlockage bool
}

// NRB resolves the carrier's transmission bandwidth configuration.
func (c Carrier) NRB() (int, error) {
	if c.NRBOverride != 0 {
		return c.NRBOverride, nil
	}
	mu, err := phy.FromSCS(c.SCSkHz)
	if err != nil {
		return 0, err
	}
	return bands.MaxNRB(c.Band.Range, mu, c.BandwidthMHz)
}

// Label names the carrier as the paper does, e.g. "n78/90MHz".
func (c Carrier) Label() string {
	return fmt.Sprintf("%s/%dMHz", c.Band.Name, c.BandwidthMHz)
}

// LatencyProfile carries the §4.3 configuration dimensions.
type LatencyProfile struct {
	// SRBasedUL selects the scheduling-request cycle (no preconfigured
	// grants).
	SRBasedUL bool
	// UEProcess and GNBProcess are processing delays.
	UEProcess, GNBProcess time.Duration
}

// LTECarrier describes the NSA anchor.
type LTECarrier struct {
	BandwidthMHz int
	UEDistanceM  float64
	SINRBiasDB   float64
}

// Operator is one commercial deployment under study.
type Operator struct {
	// Name is the full operator name; Acronym the paper's short form
	// (e.g. "V_Sp").
	Name, Acronym string
	// Country and City locate the measurement campaign.
	Country, City string
	// NSA reports non-stand-alone deployment (true for every operator
	// in the study).
	NSA bool
	// Carriers lists component carriers; index 0 is the PCell. European
	// operators have exactly one (no CA).
	Carriers []Carrier
	// LTE is the NSA anchor (nil only for the mmWave pseudo-operator).
	LTE *LTECarrier
	// ULPolicy is the NSA uplink split behaviour.
	ULPolicy lte.ULPolicy
	// Latency is the §4.3 profile.
	Latency LatencyProfile
	// MmWave marks the FR2 comparison profile of §7.
	MmWave bool
}

// AsSA returns a stand-alone variant of the operator: no LTE anchor, all
// uplink on NR. T-Mobile ran both modes during the study (§3.1); the paper
// restricts its comparisons to NSA, and this variant supports the
// NSA-vs-SA extension experiment.
func (o Operator) AsSA() Operator {
	sa := o
	sa.Acronym = o.Acronym + "_SA"
	sa.NSA = false
	sa.LTE = nil
	sa.ULPolicy = lte.ULNROnly
	return sa
}

// CarrierAggregation reports whether the operator aggregates carriers.
func (o Operator) CarrierAggregation() bool { return len(o.Carriers) > 1 }

// PCell returns the primary carrier.
func (o Operator) PCell() Carrier { return o.Carriers[0] }

// TotalBandwidthMHz sums the aggregated channel bandwidth.
func (o Operator) TotalBandwidthMHz() int {
	total := 0
	for _, c := range o.Carriers {
		total += c.BandwidthMHz
	}
	return total
}

// Scenario describes how an experiment exercises the link.
type Scenario struct {
	// Name tags traces.
	Name string
	// SpeedMPS is the UE speed (0 = stationary).
	SpeedMPS float64
	// RouteLengthM is the route length for mobile scenarios.
	RouteLengthM float64
	// UEDistanceM overrides the operator's default measurement spot
	// distance (used by the Fig. 14 location experiments).
	UEDistanceM float64
	// Share is this UE's share of cell resources (0 → 1).
	Share float64
	// Seed drives all stochastic processes.
	Seed int64
}

// Stationary is the default good-coverage stationary scenario.
func Stationary(seed int64) Scenario {
	return Scenario{Name: "stationary", Seed: seed}
}

// Walking moves the UE at pedestrian speed along a 400 m route.
func Walking(seed int64) Scenario {
	return Scenario{Name: "walking", SpeedMPS: channel.MobilityWalking, RouteLengthM: 400, Seed: seed}
}

// Driving moves the UE at urban driving speed along a 2 km route.
func Driving(seed int64) Scenario {
	return Scenario{Name: "driving", SpeedMPS: channel.MobilityDriving, RouteLengthM: 2000, Seed: seed}
}

// deployment builds the site layout: Sites gNBs in a row.
func (c Carrier) deployment() channel.Deployment {
	sites := make([]channel.Point, c.Sites)
	for i := range sites {
		sites[i] = channel.Point{X: float64(i) * c.SiteSpacingM}
	}
	return channel.Deployment{Sites: sites, TxPowerDBmPerRE: 18}
}

// route builds the UE trajectory for a scenario.
func (c Carrier) route(s Scenario) channel.Route {
	dist := c.UEDistanceM
	if s.UEDistanceM != 0 {
		dist = s.UEDistanceM
	}
	start := channel.Point{X: 0, Y: dist}
	if s.SpeedMPS == 0 {
		return channel.Stationary(start)
	}
	length := s.RouteLengthM
	if length == 0 {
		length = 400
	}
	// Walk parallel to the site row, through the coverage field.
	return channel.Route{
		Waypoints: []channel.Point{start, {X: length, Y: dist}},
		SpeedMPS:  s.SpeedMPS,
	}
}

// CarrierConfig builds the simulator configuration for one carrier.
func (o Operator) CarrierConfig(i int, s Scenario) (gnb.CarrierConfig, error) {
	if i < 0 || i >= len(o.Carriers) {
		return gnb.CarrierConfig{}, fmt.Errorf("operators: %s has no carrier %d", o.Acronym, i)
	}
	c := o.Carriers[i]
	nrb, err := c.NRB()
	if err != nil {
		return gnb.CarrierConfig{}, fmt.Errorf("operators: %s %s: %w", o.Acronym, c.Label(), err)
	}
	mu, err := phy.FromSCS(c.SCSkHz)
	if err != nil {
		return gnb.CarrierConfig{}, err
	}
	cfg := gnb.CarrierConfig{
		Label:      c.Label(),
		Numerology: mu,
		NRB:        nrb,
		MCSTable:   c.MCSTable,
		Channel: channel.Config{
			CarrierFreqMHz:           c.Band.CenterMHz(),
			Route:                    c.route(s),
			Deployment:               c.deployment(),
			OtherCellInterferenceDBm: -100,
			ShadowSigmaDB:            c.ShadowSigmaDB,
			FastSigmaDB:              c.FastSigmaDB,
			SlowSigmaDB:              c.SlowDriftDB,
			SINRBiasDB:               c.SINRBiasDB,
			Seed:                     fleet.SplitSeed(s.Seed, "carrier/channel", i),
		},
		ULSINROffsetDB: c.ULSINROffsetDB,
		ULMaxRank:      c.ULMaxRank,
		ULRBFraction:   c.ULRBFraction,
		Seed:           fleet.SplitSeed(s.Seed, "carrier", i),
	}
	if c.TDDPattern != "" {
		cfg.Pattern = tdd.MustParse(c.TDDPattern)
	} else {
		cfg.FDD = true
	}
	cfg.CSI = ue.CSIConfig{MaxRank: c.MaxMIMOLayers}
	if c.RankThresholdsDB != [3]float64{} {
		cfg.CSI.RankThresholdsDB = c.RankThresholdsDB
	}
	if c.MmWaveBlockage {
		b := channel.DefaultBlockage
		cfg.Channel.Blockage = &b
	}
	if c.EpisodeRatePerSec > 0 {
		cfg.Channel.Episodes = &channel.EpisodeConfig{
			RatePerSec:  c.EpisodeRatePerSec,
			MeanSeconds: c.EpisodeMeanSeconds,
			MinDepthDB:  c.EpisodeDepthDB[0],
			MaxDepthDB:  c.EpisodeDepthDB[1],
		}
	}
	return cfg, nil
}

// LinkConfig builds the full NSA link for a scenario.
func (o Operator) LinkConfig(s Scenario) (net5g.LinkConfig, error) {
	var cfg net5g.LinkConfig
	for i := range o.Carriers {
		cc, err := o.CarrierConfig(i, s)
		if err != nil {
			return net5g.LinkConfig{}, err
		}
		cfg.Carriers = append(cfg.Carriers, cc)
	}
	if o.LTE != nil {
		dist := o.LTE.UEDistanceM
		if dist == 0 {
			dist = 250
		}
		cfg.LTEAnchor = &lte.AnchorConfig{
			Label:        fmt.Sprintf("%s/lte%dMHz", o.Acronym, o.LTE.BandwidthMHz),
			BandwidthMHz: o.LTE.BandwidthMHz,
			Channel: channel.Config{
				CarrierFreqMHz:           bands.B66.CenterMHz(),
				Route:                    channel.Stationary(channel.Point{X: 0, Y: dist}),
				Deployment:               channel.Deployment{Sites: []channel.Point{{}}, TxPowerDBmPerRE: 18},
				OtherCellInterferenceDBm: -102,
				SINRBiasDB:               o.LTE.SINRBiasDB,
				Seed:                     fleet.SplitSeed(s.Seed, "lte/channel", 0),
			},
			Seed: fleet.SplitSeed(s.Seed, "lte/anchor", 0),
		}
	}
	cfg.ULPolicy = o.ULPolicy
	return cfg, nil
}

// LatencyConfig builds the §4.3 latency model for the operator's PCell.
func (o Operator) LatencyConfig(dlBLER, ulBLER float64, seed int64) (net5g.LatencyConfig, error) {
	pc := o.PCell()
	mu, err := phy.FromSCS(pc.SCSkHz)
	if err != nil {
		return net5g.LatencyConfig{}, err
	}
	cfg := net5g.LatencyConfig{
		SlotDuration: mu.SlotDuration(),
		UEProcess:    o.Latency.UEProcess,
		GNBProcess:   o.Latency.GNBProcess,
		SRBasedUL:    o.Latency.SRBasedUL,
		DLBLER:       dlBLER,
		ULBLER:       ulBLER,
		Seed:         seed,
	}
	if pc.TDDPattern != "" {
		cfg.Pattern = tdd.MustParse(pc.TDDPattern)
	}
	return cfg, nil
}
