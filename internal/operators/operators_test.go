package operators

import (
	"testing"

	"github.com/midband5g/midband/internal/net5g"
	"github.com/midband5g/midband/internal/phy"
)

func TestRegistryIntegrity(t *testing.T) {
	all := All()
	if len(all) != 12 {
		t.Fatalf("registry has %d operators, want 12 (11 mid-band + mmWave)", len(all))
	}
	seen := map[string]bool{}
	for _, op := range all {
		if op.Acronym == "" || op.Name == "" || op.Country == "" {
			t.Errorf("operator %+v missing identity fields", op)
		}
		if seen[op.Acronym] {
			t.Errorf("duplicate acronym %s", op.Acronym)
		}
		seen[op.Acronym] = true
		if len(op.Carriers) == 0 {
			t.Errorf("%s has no carriers", op.Acronym)
		}
		if !op.NSA {
			t.Errorf("%s: every deployment in the study is NSA", op.Acronym)
		}
		for _, c := range op.Carriers {
			if _, err := c.NRB(); err != nil {
				t.Errorf("%s %s: NRB: %v", op.Acronym, c.Label(), err)
			}
			if c.MaxMIMOLayers < 1 || c.MaxMIMOLayers > 4 {
				t.Errorf("%s %s: MIMO layers %d", op.Acronym, c.Label(), c.MaxMIMOLayers)
			}
		}
	}
	for _, want := range []string{"V_It", "V_Sp", "O_Sp90", "O_Sp100", "O_Fr", "S_Fr", "T_Ge", "V_Ge", "Tmb_US", "Vzw_US", "Att_US", "Vzw_mmW"} {
		if !seen[want] {
			t.Errorf("missing operator %s", want)
		}
	}
}

func TestTable2Shape(t *testing.T) {
	// Table 2: all European operators use n78 at 30 kHz TDD, no CA,
	// bandwidths 80–100 MHz.
	for _, acr := range []string{"V_It", "V_Sp", "O_Sp90", "O_Sp100", "O_Fr", "S_Fr", "T_Ge", "V_Ge"} {
		op, err := ByAcronym(acr)
		if err != nil {
			t.Fatal(err)
		}
		if op.CarrierAggregation() {
			t.Errorf("%s: European operators have not deployed CA", acr)
		}
		c := op.PCell()
		if c.Band.Name != "n78" || c.SCSkHz != 30 || c.TDDPattern == "" {
			t.Errorf("%s: not an n78/30kHz TDD deployment: %+v", acr, c)
		}
		if c.BandwidthMHz < 80 || c.BandwidthMHz > 100 {
			t.Errorf("%s: bandwidth %d outside Table 2 range", acr, c.BandwidthMHz)
		}
		nrb, _ := c.NRB()
		want := map[int]int{80: 217, 90: 245, 100: 273}[c.BandwidthMHz]
		if nrb != want {
			t.Errorf("%s: N_RB = %d, want %d", acr, nrb, want)
		}
	}
}

func TestTable3Shape(t *testing.T) {
	// Table 3: all US operators aggregate carriers.
	for _, acr := range []string{"Tmb_US", "Vzw_US", "Att_US"} {
		op, err := ByAcronym(acr)
		if err != nil {
			t.Fatal(err)
		}
		if !op.CarrierAggregation() {
			t.Errorf("%s: US operators use CA", acr)
		}
	}
	tmb, _ := ByAcronym("Tmb_US")
	if tmb.PCell().Band.Name != "n41" || tmb.PCell().BandwidthMHz != 100 {
		t.Errorf("T-Mobile PCell should be n41/100MHz, got %s", tmb.PCell().Label())
	}
	if tmb.ULPolicy.String() != "prefer-lte" {
		t.Error("T-Mobile routes UL to LTE (§4.2)")
	}
	// The printed n25 rows: N_RB overrides 51 and 11.
	var n25 []Carrier
	for _, c := range tmb.Carriers {
		if c.Band.Name == "n25" {
			n25 = append(n25, c)
		}
	}
	if len(n25) != 2 {
		t.Fatalf("T-Mobile should have 2 n25 carriers, got %d", len(n25))
	}
	for _, c := range n25 {
		nrb, _ := c.NRB()
		if nrb != 51 && nrb != 11 {
			t.Errorf("n25 N_RB = %d, want the paper's printed 51/11", nrb)
		}
		if c.TDDPattern != "" {
			t.Error("n25 is FDD")
		}
	}
	vzw, _ := ByAcronym("Vzw_US")
	if vzw.PCell().Band.Name != "n77" || vzw.PCell().BandwidthMHz != 60 {
		t.Errorf("Verizon PCell should be n77/60MHz, got %s", vzw.PCell().Label())
	}
	att, _ := ByAcronym("Att_US")
	if att.PCell().Band.Name != "n77" || att.PCell().BandwidthMHz != 40 {
		t.Errorf("AT&T PCell should be n77/40MHz, got %s", att.PCell().Label())
	}
}

func TestOSp100Is64QAM(t *testing.T) {
	// The §4.1 root cause: Orange Spain's 100 MHz channel caps at 64QAM.
	op, _ := ByAcronym("O_Sp100")
	if op.PCell().MCSTable != phy.MCSTable64QAM {
		t.Error("O_Sp100 must use the 64QAM MCS table")
	}
	op90, _ := ByAcronym("O_Sp90")
	if op90.PCell().MCSTable != phy.MCSTable256QAM {
		t.Error("O_Sp90 uses the 256QAM table")
	}
}

func TestCoverageDensitySpain(t *testing.T) {
	// Appendix 10.3: Vodafone Spain deploys 3 sites, Orange Spain 2.
	vsp, _ := ByAcronym("V_Sp")
	osp, _ := ByAcronym("O_Sp100")
	if vsp.PCell().Sites != 3 || osp.PCell().Sites != 2 {
		t.Errorf("site counts: V_Sp=%d (want 3), O_Sp=%d (want 2)",
			vsp.PCell().Sites, osp.PCell().Sites)
	}
}

func TestByAcronymUnknown(t *testing.T) {
	if _, err := ByAcronym("X_Yz"); err == nil {
		t.Error("unknown acronym should fail")
	}
}

func TestLinkConfigBuildsForAll(t *testing.T) {
	for _, op := range All() {
		for _, sc := range []Scenario{Stationary(1), Walking(2), Driving(3)} {
			cfg, err := op.LinkConfig(sc)
			if err != nil {
				t.Fatalf("%s %s: %v", op.Acronym, sc.Name, err)
			}
			if _, err := net5g.NewLink(cfg); err != nil {
				t.Fatalf("%s %s: link: %v", op.Acronym, sc.Name, err)
			}
		}
	}
}

func TestLatencyConfigBuilds(t *testing.T) {
	for _, op := range MidBand() {
		cfg, err := op.LatencyConfig(0.05, 0.05, 9)
		if err != nil {
			t.Fatalf("%s: %v", op.Acronym, err)
		}
		if _, err := net5g.NewLatencyModel(cfg); err != nil {
			t.Fatalf("%s: model: %v", op.Acronym, err)
		}
	}
	if _, err := (Operator{Carriers: []Carrier{{SCSkHz: 7}}}).LatencyConfig(0, 0, 1); err == nil {
		t.Error("bad SCS should fail")
	}
}

func TestCarrierConfigErrors(t *testing.T) {
	op, _ := ByAcronym("V_Sp")
	if _, err := op.CarrierConfig(5, Stationary(1)); err == nil {
		t.Error("out-of-range carrier index should fail")
	}
}

func TestScenarioHelpers(t *testing.T) {
	if Stationary(1).SpeedMPS != 0 {
		t.Error("stationary should not move")
	}
	if Walking(1).SpeedMPS <= 0 || Driving(1).SpeedMPS <= Walking(1).SpeedMPS {
		t.Error("driving should be faster than walking")
	}
	op, _ := ByAcronym("V_Sp")
	if op.TotalBandwidthMHz() != 90 {
		t.Errorf("V_Sp total bandwidth = %d", op.TotalBandwidthMHz())
	}
	tmb, _ := ByAcronym("Tmb_US")
	if tmb.TotalBandwidthMHz() != 165 {
		t.Errorf("Tmb total bandwidth = %d, want 165 (100+40+20+5)", tmb.TotalBandwidthMHz())
	}
}

func TestMmWaveProfile(t *testing.T) {
	op, err := ByAcronym("Vzw_mmW")
	if err != nil {
		t.Fatal(err)
	}
	if !op.MmWave {
		t.Error("mmWave profile should be marked")
	}
	for _, c := range op.Carriers {
		if c.Band.Name != "n261" || c.SCSkHz != 120 || !c.MmWaveBlockage {
			t.Errorf("mmWave carrier wrong: %+v", c)
		}
	}
	if len(op.Carriers) != 4 {
		t.Errorf("mmWave aggregates 4 carriers, got %d", len(op.Carriers))
	}
}

func TestTargetsCoverOperators(t *testing.T) {
	for acr := range Targets {
		if _, err := ByAcronym(acr); err != nil {
			t.Errorf("target for unknown operator %s", acr)
		}
	}
}

func TestAsSA(t *testing.T) {
	op, err := ByAcronym("Tmb_US")
	if err != nil {
		t.Fatal(err)
	}
	sa := op.AsSA()
	if sa.NSA || sa.LTE != nil {
		t.Error("SA variant should drop the anchor")
	}
	if sa.Acronym != "Tmb_US_SA" {
		t.Errorf("SA acronym = %s", sa.Acronym)
	}
	// The original is untouched.
	if !op.NSA || op.LTE == nil {
		t.Error("AsSA mutated the original operator")
	}
	cfg, err := sa.LinkConfig(Stationary(3))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.LTEAnchor != nil {
		t.Error("SA link should have no LTE anchor")
	}
}
