package operators

import (
	"fmt"
	"sort"
	"time"

	"github.com/midband5g/midband/internal/bands"
	"github.com/midband5g/midband/internal/lte"
	"github.com/midband5g/midband/internal/phy"
)

// PaperTargets records the values the paper reports for an operator, used
// by EXPERIMENTS.md generation to print paper-vs-measured rows. Zero fields
// mean the paper does not report that number.
type PaperTargets struct {
	// DLMbps is the Fig. 1 average PHY DL throughput.
	DLMbps float64
	// DLCQI12Mbps is the Fig. 2 average with CQI ≥ 12 (Spain case study).
	DLCQI12Mbps float64
	// ULMbps is the Fig. 9/10 average PHY UL throughput with CQI ≥ 12.
	ULMbps float64
	// LatencyCleanMs and LatencyRetxMs are the Fig. 11 user-plane
	// latencies for BLER = 0 and BLER > 0.
	LatencyCleanMs, LatencyRetxMs float64
	// Rank4Share and QAM256Share are the Fig. 5/6 utilization shares.
	Rank4Share, QAM256Share float64
}

// Targets maps acronym → paper-reported values.
var Targets = map[string]PaperTargets{
	"V_It":    {DLMbps: 809.8, ULMbps: 88.0, LatencyCleanMs: 6.93, LatencyRetxMs: 7.37},
	"V_Sp":    {DLMbps: 743.0, DLCQI12Mbps: 771.0, ULMbps: 55.6, Rank4Share: 0.871, QAM256Share: 0.076},
	"O_Sp90":  {DLMbps: 713.3, DLCQI12Mbps: 759.7, ULMbps: 95.6, Rank4Share: 0.838, QAM256Share: 0.082},
	"O_Sp100": {DLMbps: 614.7, DLCQI12Mbps: 557.4, ULMbps: 64.3, Rank4Share: 0.138},
	"T_Ge":    {DLMbps: 601.1, ULMbps: 35.2, LatencyCleanMs: 2.48, LatencyRetxMs: 2.90},
	"O_Fr":    {DLMbps: 627.1, ULMbps: 53.6, LatencyCleanMs: 5.33, LatencyRetxMs: 5.77},
	"S_Fr":    {ULMbps: 31.1},
	"V_Ge":    {ULMbps: 23.8, LatencyCleanMs: 2.13, LatencyRetxMs: 2.20},
	"Tmb_US":  {DLMbps: 1200, ULMbps: 23.8},
	"Vzw_US":  {DLMbps: 1300, ULMbps: 46.4},
	"Att_US":  {DLMbps: 400, ULMbps: 20.5},
}

// n78 builds a European-style mid-band carrier.
func n78(bwMHz int, pattern string, table phy.MCSTable) Carrier {
	return Carrier{
		Band:               bands.N78,
		BandwidthMHz:       bwMHz,
		SCSkHz:             30,
		TDDPattern:         pattern,
		MCSTable:           table,
		MaxMIMOLayers:      4,
		Sites:              2,
		SiteSpacingM:       320,
		UEDistanceM:        150,
		ShadowSigmaDB:      1.6,
		FastSigmaDB:        1.0,
		SlowDriftDB:        1.4,
		EpisodeRatePerSec:  1.0 / 80,
		EpisodeMeanSeconds: 14,
		EpisodeDepthDB:     [2]float64{5, 15},
		ULMaxRank:          2,
		ULRBFraction:       1,
	}
}

// All returns every operator profile in the study, ordered as the paper's
// tables list them (Europe first, then the U.S., then the §7 mmWave
// comparison profile).
func All() []Operator {
	ops := []Operator{
		vodafoneItaly(), vodafoneSpain(), orangeSpain90(), orangeSpain100(),
		orangeFrance(), sfrFrance(), telekomGermany(), vodafoneGermany(),
		tmobileUS(), verizonUS(), attUS(), verizonMmWave(),
	}
	return ops
}

// MidBand returns the mid-band operators only (everything but the mmWave
// profile).
func MidBand() []Operator {
	var out []Operator
	for _, o := range All() {
		if !o.MmWave {
			out = append(out, o)
		}
	}
	return out
}

// ByAcronym finds an operator profile.
func ByAcronym(acr string) (Operator, error) {
	for _, o := range All() {
		if o.Acronym == acr {
			return o, nil
		}
	}
	var known []string
	for _, o := range All() {
		known = append(known, o.Acronym)
	}
	sort.Strings(known)
	return Operator{}, fmt.Errorf("operators: unknown acronym %q (known: %v)", acr, known)
}

func vodafoneItaly() Operator {
	c := n78(80, "DDDDDDDSUU", phy.MCSTable256QAM)
	c.Sites = 3
	c.SiteSpacingM = 260
	c.UEDistanceM = 110
	c.SINRBiasDB = 6.2
	c.ShadowSigmaDB = 0.9
	c.FastSigmaDB = 0.6
	c.SlowDriftDB = 1.0
	c.EpisodeRatePerSec = 1.0 / 150
	c.EpisodeDepthDB = [2]float64{3, 8}
	c.ULSINROffsetDB = 6.5
	return Operator{
		Name: "Vodafone Italy", Acronym: "V_It", Country: "Italy", City: "Rome",
		NSA: true, Carriers: []Carrier{c},
		LTE:      &LTECarrier{BandwidthMHz: 20},
		ULPolicy: lte.ULDynamic,
		Latency:  LatencyProfile{SRBasedUL: true, UEProcess: 50 * time.Microsecond, GNBProcess: 50 * time.Microsecond},
	}
}

func vodafoneSpain() Operator {
	c := n78(90, "DDDDDDDSUU", phy.MCSTable256QAM)
	c.Sites = 3 // Appendix 10.3: three sites → better RSRQ than O_Sp
	c.SiteSpacingM = 220
	c.UEDistanceM = 120
	c.SINRBiasDB = 5.6
	c.ShadowSigmaDB = 1.6
	c.FastSigmaDB = 0.8
	c.SlowDriftDB = 1.3
	c.ULSINROffsetDB = 10.5
	c.RankThresholdsDB = [3]float64{10, 15, 17.9}
	return Operator{
		Name: "Vodafone Spain", Acronym: "V_Sp", Country: "Spain", City: "Madrid",
		NSA: true, Carriers: []Carrier{c},
		LTE:      &LTECarrier{BandwidthMHz: 20},
		ULPolicy: lte.ULDynamic,
		Latency:  LatencyProfile{SRBasedUL: true, UEProcess: 150 * time.Microsecond, GNBProcess: 150 * time.Microsecond},
	}
}

func orangeSpain90() Operator {
	c := n78(90, "DDDDDDDSUU", phy.MCSTable256QAM)
	c.Sites = 2
	c.SiteSpacingM = 300
	c.UEDistanceM = 130
	c.SINRBiasDB = 2.3
	c.ShadowSigmaDB = 2.2
	c.FastSigmaDB = 1.0
	c.SlowDriftDB = 1.6
	c.ULSINROffsetDB = 4.4
	c.RankThresholdsDB = [3]float64{9, 14, 17.6}
	return Operator{
		Name: "Orange Spain", Acronym: "O_Sp90", Country: "Spain", City: "Madrid",
		NSA: true, Carriers: []Carrier{c},
		LTE:      &LTECarrier{BandwidthMHz: 20},
		ULPolicy: lte.ULDynamic,
		Latency:  LatencyProfile{SRBasedUL: true, UEProcess: 150 * time.Microsecond, GNBProcess: 150 * time.Microsecond},
	}
}

func orangeSpain100() Operator {
	// The §4.1 case study: widest channel, yet lowest throughput — 64QAM
	// table, sparser sites (2, spaced out), hence worse RSRQ, fewer MIMO
	// layers and higher channel variability.
	c := n78(100, "DDDDDDDSUU", phy.MCSTable64QAM)
	c.Sites = 2
	c.SiteSpacingM = 420
	c.UEDistanceM = 195
	c.SINRBiasDB = 1.7
	c.ShadowSigmaDB = 2.6
	c.FastSigmaDB = 1.1
	c.SlowDriftDB = 1.6
	c.EpisodeRatePerSec = 1.0 / 70
	c.EpisodeMeanSeconds = 15
	c.EpisodeDepthDB = [2]float64{6, 16}
	c.ULSINROffsetDB = 6.6
	c.RankThresholdsDB = [3]float64{11, 15.5, 22.6}
	return Operator{
		Name: "Orange Spain", Acronym: "O_Sp100", Country: "Spain", City: "Madrid",
		NSA: true, Carriers: []Carrier{c},
		LTE:      &LTECarrier{BandwidthMHz: 20},
		ULPolicy: lte.ULDynamic,
		Latency:  LatencyProfile{SRBasedUL: true, UEProcess: 150 * time.Microsecond, GNBProcess: 150 * time.Microsecond},
	}
}

func orangeFrance() Operator {
	c := n78(90, "DDDSU", phy.MCSTable256QAM)
	c.UEDistanceM = 150
	c.SINRBiasDB = 2.0
	c.FastSigmaDB = 0.8
	c.ULSINROffsetDB = 8.2
	return Operator{
		Name: "Orange France", Acronym: "O_Fr", Country: "France", City: "Paris",
		NSA: true, Carriers: []Carrier{c},
		LTE:      &LTECarrier{BandwidthMHz: 20},
		ULPolicy: lte.ULDynamic,
		Latency:  LatencyProfile{SRBasedUL: true, UEProcess: 300 * time.Microsecond, GNBProcess: 300 * time.Microsecond},
	}
}

func sfrFrance() Operator {
	c := n78(80, "DDDSU", phy.MCSTable256QAM)
	c.UEDistanceM = 165
	c.SINRBiasDB = 1.6
	c.FastSigmaDB = 0.8
	c.ULSINROffsetDB = 10.2
	return Operator{
		Name: "SFR France", Acronym: "S_Fr", Country: "France", City: "Paris",
		NSA: true, Carriers: []Carrier{c},
		LTE:      &LTECarrier{BandwidthMHz: 20},
		ULPolicy: lte.ULDynamic,
		Latency:  LatencyProfile{SRBasedUL: true, UEProcess: 200 * time.Microsecond, GNBProcess: 200 * time.Microsecond},
	}
}

func telekomGermany() Operator {
	c := n78(90, "DDDSU", phy.MCSTable256QAM)
	c.UEDistanceM = 160
	c.SINRBiasDB = 2.0
	c.FastSigmaDB = 0.8
	c.ULSINROffsetDB = 10.7
	return Operator{
		Name: "Deutsche Telekom", Acronym: "T_Ge", Country: "Germany", City: "Munich",
		NSA: true, Carriers: []Carrier{c},
		LTE:      &LTECarrier{BandwidthMHz: 20},
		ULPolicy: lte.ULDynamic,
		Latency:  LatencyProfile{UEProcess: 250 * time.Microsecond, GNBProcess: 250 * time.Microsecond},
	}
}

func vodafoneGermany() Operator {
	c := n78(80, "DDDSU", phy.MCSTable256QAM)
	c.UEDistanceM = 140
	c.SINRBiasDB = 1.9
	c.FastSigmaDB = 0.8
	c.ULSINROffsetDB = 11.8
	c.ULMaxRank = 1
	return Operator{
		Name: "Vodafone Germany", Acronym: "V_Ge", Country: "Germany", City: "Munich",
		NSA: true, Carriers: []Carrier{c},
		LTE:      &LTECarrier{BandwidthMHz: 20},
		ULPolicy: lte.ULDynamic,
		Latency:  LatencyProfile{UEProcess: 80 * time.Microsecond, GNBProcess: 80 * time.Microsecond},
	}
}

func tmobileUS() Operator {
	primary := Carrier{
		Band: bands.N41, BandwidthMHz: 100, SCSkHz: 30,
		TDDPattern: "DDDDDDDSUU", MCSTable: phy.MCSTable256QAM, MaxMIMOLayers: 4,
		Sites: 3, SiteSpacingM: 280, UEDistanceM: 130,
		SINRBiasDB: 4.0, ShadowSigmaDB: 1.8, FastSigmaDB: 0.9, SlowDriftDB: 1.4,
		EpisodeRatePerSec: 1.0 / 90, EpisodeMeanSeconds: 12, EpisodeDepthDB: [2]float64{5, 13},
		ULSINROffsetDB: 14.6, ULMaxRank: 1, ULRBFraction: 1,
	}
	scell41 := primary
	scell41.BandwidthMHz = 40
	scell41.SINRBiasDB = 4.0
	// The n25 FDD rows: the paper's Table 3 prints SCS 15 kHz with N_RB
	// 51 and 11 — values that actually correspond to the 30 kHz column of
	// TS 38.101-1. We reproduce the printed table via NRBOverride and
	// surface the discrepancy in config extraction.
	n25a := Carrier{
		Band: bands.N25, BandwidthMHz: 20, SCSkHz: 15, NRBOverride: 51,
		MCSTable: phy.MCSTable256QAM, MaxMIMOLayers: 4,
		Sites: 3, SiteSpacingM: 280, UEDistanceM: 130,
		SINRBiasDB: 1, ShadowSigmaDB: 2, FastSigmaDB: 0.9,
		ULSINROffsetDB: 8, ULMaxRank: 1, ULRBFraction: 1,
	}
	n25b := n25a
	n25b.BandwidthMHz = 5
	n25b.NRBOverride = 11
	return Operator{
		Name: "T-Mobile", Acronym: "Tmb_US", Country: "USA", City: "Chicago",
		NSA: true, Carriers: []Carrier{primary, scell41, n25a, n25b},
		LTE:      &LTECarrier{BandwidthMHz: 20, SINRBiasDB: 2},
		ULPolicy: lte.ULPreferLTE,
		Latency:  LatencyProfile{SRBasedUL: true, UEProcess: 200 * time.Microsecond, GNBProcess: 200 * time.Microsecond},
	}
}

func verizonUS() Operator {
	primary := Carrier{
		Band: bands.N77, BandwidthMHz: 60, SCSkHz: 30,
		TDDPattern: "DDDSU", MCSTable: phy.MCSTable256QAM, MaxMIMOLayers: 4,
		Sites: 3, SiteSpacingM: 240, UEDistanceM: 110,
		SINRBiasDB: 16.2, ShadowSigmaDB: 1.0, FastSigmaDB: 0.6, SlowDriftDB: 1.4,
		ULSINROffsetDB: 14.6, ULMaxRank: 2, ULRBFraction: 1,
	}
	// "Mid + Low-Band" CA: a 20 MHz FDD low-band carrier.
	low := Carrier{
		Band: bands.B66, BandwidthMHz: 20, SCSkHz: 15, NRBOverride: 106,
		MCSTable: phy.MCSTable256QAM, MaxMIMOLayers: 4,
		Sites: 2, SiteSpacingM: 400, UEDistanceM: 150,
		SINRBiasDB: 8, ShadowSigmaDB: 2, FastSigmaDB: 0.9,
		ULSINROffsetDB: 8, ULMaxRank: 1, ULRBFraction: 1,
	}
	return Operator{
		Name: "Verizon", Acronym: "Vzw_US", Country: "USA", City: "Chicago",
		NSA: true, Carriers: []Carrier{primary, low},
		LTE:      &LTECarrier{BandwidthMHz: 20, SINRBiasDB: 1},
		ULPolicy: lte.ULDynamic,
		Latency:  LatencyProfile{UEProcess: 200 * time.Microsecond, GNBProcess: 200 * time.Microsecond},
	}
}

func attUS() Operator {
	primary := Carrier{
		Band: bands.N77, BandwidthMHz: 40, SCSkHz: 30,
		TDDPattern: "DDDSU", MCSTable: phy.MCSTable256QAM, MaxMIMOLayers: 4,
		Sites: 2, SiteSpacingM: 380, UEDistanceM: 180,
		SINRBiasDB: 4.2, ShadowSigmaDB: 2.0, FastSigmaDB: 1.0, SlowDriftDB: 1.6,
		EpisodeRatePerSec: 1.0 / 80, EpisodeMeanSeconds: 12, EpisodeDepthDB: [2]float64{5, 13},
		ULSINROffsetDB: 7.3, ULMaxRank: 1, ULRBFraction: 1,
	}
	low := Carrier{
		Band: bands.B66, BandwidthMHz: 10, SCSkHz: 15, NRBOverride: 52,
		MCSTable: phy.MCSTable64QAM, MaxMIMOLayers: 4,
		Sites: 2, SiteSpacingM: 400, UEDistanceM: 180,
		SINRBiasDB: 0, ShadowSigmaDB: 2, FastSigmaDB: 1.2,
		ULSINROffsetDB: 8, ULMaxRank: 1, ULRBFraction: 1,
	}
	return Operator{
		Name: "AT&T", Acronym: "Att_US", Country: "USA", City: "Chicago",
		NSA: true, Carriers: []Carrier{primary, low},
		LTE:      &LTECarrier{BandwidthMHz: 20},
		ULPolicy: lte.ULDynamic,
		Latency:  LatencyProfile{SRBasedUL: true, UEProcess: 250 * time.Microsecond, GNBProcess: 250 * time.Microsecond},
	}
}

// verizonMmWave is the §7 comparison profile: four aggregated 100 MHz FR2
// carriers with the blockage/outage process enabled.
func verizonMmWave() Operator {
	mk := func(i int) Carrier {
		return Carrier{
			Band: bands.N261, BandwidthMHz: 100, SCSkHz: 120,
			TDDPattern: "DDDSU", MCSTable: phy.MCSTable256QAM, MaxMIMOLayers: 2,
			// mmWave small cells line the measurement corridor densely —
			// without that density there is no FR2 service to measure.
			Sites: 14, SiteSpacingM: 150, UEDistanceM: 25,
			SINRBiasDB: 10 - float64(i)*0.5, ShadowSigmaDB: 2.0, FastSigmaDB: 2.5,
			ULSINROffsetDB: 10, ULMaxRank: 1, ULRBFraction: 1,
			MmWaveBlockage: true,
		}
	}
	return Operator{
		Name: "Verizon mmWave", Acronym: "Vzw_mmW", Country: "USA", City: "Chicago",
		NSA: true, Carriers: []Carrier{mk(0), mk(1), mk(2), mk(3)},
		LTE:      &LTECarrier{BandwidthMHz: 20},
		ULPolicy: lte.ULDynamic,
		Latency:  LatencyProfile{UEProcess: 200 * time.Microsecond, GNBProcess: 200 * time.Microsecond},
		MmWave:   true,
	}
}
