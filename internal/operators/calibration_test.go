package operators

import (
	"testing"
	"time"

	"github.com/midband5g/midband/internal/lte"
	"github.com/midband5g/midband/internal/net5g"
	"github.com/midband5g/midband/internal/phy"
)

// measure runs a stationary full-buffer session and returns the aggregate
// KPIs used for calibration against the paper's numbers.
type measured struct {
	dlMbps, ulNRMbps, ulLTEMbps float64
	rank4Share, qam256Share     float64
	meanSINR                    float64
	latCleanMs, latRetxMs       float64
}

func measureOperator(t *testing.T, op Operator, seconds float64, seed int64) measured {
	t.Helper()
	cfg, err := op.LinkConfig(Stationary(seed))
	if err != nil {
		t.Fatal(err)
	}
	cfg.ULPolicy = lte.ULNROnly // measure the NR UL directly
	if len(cfg.Carriers) > 0 {
		// NR-only UL measurement still wants the LTE anchor for
		// reference, but routing stays on NR.
	}
	link, err := net5g.NewLink(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var m measured
	var dlBits, ulBits, lteBits float64
	var rankN, rank4, modN, mod256 int
	var sinrSum float64
	var sinrN int
	steps := int(seconds / link.SlotDuration().Seconds())
	for i := 0; i < steps; i++ {
		r := link.Step(net5g.Saturate)
		dlBits += float64(r.DLBits)
		ulBits += float64(r.NRULBits)
		lteBits += float64(r.LTEULBits)
		if r.NRTicked[0] {
			pc := r.NR[0]
			sinrSum += pc.Sample.SINRdB
			sinrN++
			if pc.DL != nil {
				rankN++
				if pc.DL.Rank == 4 {
					rank4++
				}
				modN++
				if pc.DL.Modulation() == phy.QAM256 {
					mod256++
				}
			}
		}
	}
	m.dlMbps = dlBits / seconds / 1e6
	m.ulNRMbps = ulBits / seconds / 1e6
	m.ulLTEMbps = lteBits / seconds / 1e6
	if rankN > 0 {
		m.rank4Share = float64(rank4) / float64(rankN)
		m.qam256Share = float64(mod256) / float64(modN)
	}
	if sinrN > 0 {
		m.meanSINR = sinrSum / float64(sinrN)
	}

	lcfg, err := op.LatencyConfig(0.08, 0.08, seed+5)
	if err != nil {
		t.Fatal(err)
	}
	model, err := net5g.NewLatencyModel(lcfg)
	if err != nil {
		t.Fatal(err)
	}
	clean, retx := model.Samples(4000)
	m.latCleanMs = meanMs(clean)
	m.latRetxMs = meanMs(retx)
	return m
}

func meanMs(ds []time.Duration) float64 {
	if len(ds) == 0 {
		return 0
	}
	var s time.Duration
	for _, d := range ds {
		s += d
	}
	return float64(s) / float64(len(ds)) / 1e6
}

func TestCalibrationTable(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration table is slow")
	}
	for _, op := range MidBand() {
		// Long-run average across independent sessions: the paper's
		// numbers are multi-day means, and the drift/episode processes
		// make single windows unrepresentative.
		var m measured
		const reps = 10
		for r := int64(0); r < reps; r++ {
			mr := measureOperator(t, op, 15, 2024+r*7919)
			m.dlMbps += mr.dlMbps / reps
			m.ulNRMbps += mr.ulNRMbps / reps
			m.rank4Share += mr.rank4Share / reps
			m.qam256Share += mr.qam256Share / reps
			m.meanSINR += mr.meanSINR / reps
			m.latCleanMs, m.latRetxMs = mr.latCleanMs, mr.latRetxMs
		}
		tg := Targets[op.Acronym]
		t.Logf("%-8s dl=%6.1f (paper %6.1f)  ulNR=%5.1f (paper %5.1f)  rank4=%.2f  q256=%.2f  sinr=%4.1f  lat=%.2f/%.2f (paper %.2f/%.2f)",
			op.Acronym, m.dlMbps, tg.DLMbps, m.ulNRMbps, tg.ULMbps,
			m.rank4Share, m.qam256Share, m.meanSINR,
			m.latCleanMs, m.latRetxMs, tg.LatencyCleanMs, tg.LatencyRetxMs)
		if m.dlMbps <= 0 {
			t.Errorf("%s: zero DL throughput", op.Acronym)
		}
		if m.ulNRMbps <= 0 {
			t.Errorf("%s: zero NR UL throughput", op.Acronym)
		}
		// Enforce the calibration: measured long-run averages stay within
		// tolerance of the paper's reported values.
		if tg.DLMbps > 0 {
			if rel := m.dlMbps/tg.DLMbps - 1; rel < -0.12 || rel > 0.12 {
				t.Errorf("%s: DL %.1f Mbps deviates %+.0f%% from paper %.1f",
					op.Acronym, m.dlMbps, 100*rel, tg.DLMbps)
			}
		}
		if tg.ULMbps > 0 {
			if rel := m.ulNRMbps/tg.ULMbps - 1; rel < -0.30 || rel > 0.30 {
				t.Errorf("%s: UL %.1f Mbps deviates %+.0f%% from paper %.1f",
					op.Acronym, m.ulNRMbps, 100*rel, tg.ULMbps)
			}
		}
		if tg.Rank4Share > 0 {
			if d := m.rank4Share - tg.Rank4Share; d < -0.12 || d > 0.12 {
				t.Errorf("%s: rank-4 share %.2f deviates from paper %.2f",
					op.Acronym, m.rank4Share, tg.Rank4Share)
			}
		}
		if tg.QAM256Share > 0 {
			if d := m.qam256Share - tg.QAM256Share; d < -0.06 || d > 0.08 {
				t.Errorf("%s: 256QAM share %.2f deviates from paper %.2f",
					op.Acronym, m.qam256Share, tg.QAM256Share)
			}
		}
		if tg.LatencyCleanMs > 0 {
			if rel := m.latCleanMs/tg.LatencyCleanMs - 1; rel < -0.25 || rel > 0.25 {
				t.Errorf("%s: latency %.2f ms deviates %+.0f%% from paper %.2f",
					op.Acronym, m.latCleanMs, 100*rel, tg.LatencyCleanMs)
			}
		}
	}
}
