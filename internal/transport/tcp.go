// Package transport implements a congestion-controlled bulk-transfer flow
// (TCP CUBIC-style) running over the simulated 5G link. The paper's iPerf3
// sessions measure PHY goodput through exactly such a flow; this substrate
// quantifies the transport-layer gap — bufferbloat, slow start after
// outages, loss recovery — between the PHY capacity and what an application
// actually sees.
package transport

import (
	"fmt"
	"math"
	"time"

	"github.com/midband5g/midband/internal/net5g"
)

// FlowConfig parameterizes a downlink bulk flow.
type FlowConfig struct {
	// RTTBase is the non-radio round trip (server/core network). The
	// paper's Ookla/Wavelength edge servers sit close to the core; a few
	// milliseconds is representative.
	RTTBase time.Duration
	// RadioRTT is the PHY user-plane contribution added to the base RTT
	// (see internal/net5g's latency model for per-operator values).
	RadioRTT time.Duration
	// MSSBytes is the segment size (default 1400).
	MSSBytes int
	// BufferBytes is the bottleneck (RLC) buffer; packets beyond it are
	// dropped, which is what the congestion controller reacts to.
	// Default 4 MiB.
	BufferBytes int
	// InitialCwnd is in segments (default 10).
	InitialCwnd int
}

func (c FlowConfig) withDefaults() FlowConfig {
	if c.RTTBase == 0 {
		c.RTTBase = 6 * time.Millisecond
	}
	if c.RadioRTT == 0 {
		c.RadioRTT = 4 * time.Millisecond
	}
	if c.MSSBytes == 0 {
		c.MSSBytes = 1400
	}
	if c.BufferBytes == 0 {
		c.BufferBytes = 4 << 20
	}
	if c.InitialCwnd == 0 {
		c.InitialCwnd = 10
	}
	return c
}

// Validate checks the configuration.
func (c FlowConfig) Validate() error {
	c = c.withDefaults()
	if c.MSSBytes < 100 || c.BufferBytes < c.MSSBytes || c.InitialCwnd < 1 {
		return fmt.Errorf("transport: invalid flow config %+v", c)
	}
	return nil
}

// FlowResult is the outcome of a bulk transfer.
type FlowResult struct {
	// GoodputMbps is the application-layer rate.
	GoodputMbps float64
	// PHYMbps is what the link delivered at the PHY during the flow.
	PHYMbps float64
	// Losses counts buffer-overflow drops.
	Losses int
	// MeanRTT includes queueing delay (bufferbloat).
	MeanRTT time.Duration
	// CwndTrace samples the congestion window (segments) every 100 ms.
	CwndTrace []float64
}

// Run drives a downlink bulk flow over the link for the given duration.
//
// The model is deliberately compact: the sender's window paces bytes into
// the bottleneck buffer after one RTT; the link drains the buffer at the
// PHY rate slot by slot; overflow drops trigger a CUBIC-style multiplicative
// decrease and window regrowth. Delayed feedback rides the configured RTT
// plus the current queueing delay.
func Run(link *net5g.Link, cfg FlowConfig, duration time.Duration) (*FlowResult, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if duration <= 0 {
		return nil, fmt.Errorf("transport: duration %v invalid", duration)
	}
	slot := link.SlotDuration()
	steps := int(duration / slot)
	if steps < 1 {
		return nil, fmt.Errorf("transport: duration shorter than a slot")
	}

	mss := float64(cfg.MSSBytes)
	cwnd := float64(cfg.InitialCwnd) // segments
	ssthresh := math.Inf(1)
	var (
		queued      float64 // bytes in the bottleneck buffer
		inFlight    float64 // bytes sent, not yet acked
		delivered   float64 // application bytes
		phyBits     float64
		losses      int
		rttSum      float64
		rttN        int
		wMax        float64 // CUBIC W_max
		lastLossSec = -1.0
	)

	// acks[i] = bytes whose ACK arrives at step i.
	acks := make([]float64, steps+1)
	sampleEvery := int((100 * time.Millisecond) / slot)
	if sampleEvery < 1 {
		sampleEvery = 1
	}
	var cwndTrace []float64

	for i := 0; i < steps; i++ {
		nowSec := float64(i) * slot.Seconds()

		// Process arriving ACKs.
		if acked := acks[i]; acked > 0 {
			inFlight -= acked
			segs := acked / mss
			if cwnd < ssthresh {
				cwnd += segs // slow start
			} else if !math.IsInf(ssthresh, 1) && wMax > 0 {
				// CUBIC growth: W(t) = C(t−K)³ + W_max.
				const cCubic = 0.4
				t := nowSec - lastLossSec
				k := math.Cbrt(wMax * 0.3 / cCubic)
				target := cCubic*math.Pow(t-k, 3) + wMax
				if target > cwnd {
					cwnd += math.Min(target-cwnd, segs)
				} else {
					cwnd += segs / cwnd // Reno-friendly region
				}
			} else {
				cwnd += segs / cwnd
			}
		}

		// Send whatever the window allows into the bottleneck buffer.
		canSend := cwnd*mss - inFlight
		if canSend > 0 {
			space := float64(cfg.BufferBytes) - queued
			sent := math.Min(canSend, space)
			if sent > 0 {
				queued += sent
				inFlight += sent
			}
			if canSend > space {
				// Overflow: one congestion event per RTT.
				if lastLossSec < 0 || nowSec-lastLossSec > (cfg.RTTBase+cfg.RadioRTT).Seconds() {
					losses++
					wMax = cwnd
					cwnd = math.Max(2, cwnd*0.7) // CUBIC beta = 0.7
					ssthresh = cwnd
					lastLossSec = nowSec
					// The overflowed bytes are dropped from flight.
					inFlight -= canSend - space
					if inFlight < 0 {
						inFlight = 0
					}
				}
			}
		}

		// Drain the buffer at the PHY rate.
		r := link.Step(net5g.Demand{DL: queued > 0, Share: 1})
		phyBits += float64(r.DLBits)
		drain := math.Min(queued, float64(r.DLBits)/8)
		queued -= drain
		delivered += drain

		// Schedule the ACK after RTT + queueing delay at drain time.
		if drain > 0 {
			queueDelay := 0.0
			if r.DLBits > 0 {
				// Approximate: remaining queue drains at the current rate.
				queueDelay = queued / (float64(r.DLBits) / 8 / slot.Seconds())
			}
			rtt := (cfg.RTTBase + cfg.RadioRTT).Seconds() + queueDelay
			rttSum += rtt
			rttN++
			at := i + int(rtt/slot.Seconds())
			if at <= i {
				at = i + 1
			}
			if at > steps {
				at = steps
			}
			acks[at] += drain
		}

		if i%sampleEvery == 0 {
			cwndTrace = append(cwndTrace, cwnd)
		}
	}

	res := &FlowResult{
		GoodputMbps: delivered * 8 / duration.Seconds() / 1e6,
		PHYMbps:     phyBits / duration.Seconds() / 1e6,
		Losses:      losses,
		CwndTrace:   cwndTrace,
	}
	if rttN > 0 {
		res.MeanRTT = time.Duration(rttSum / float64(rttN) * float64(time.Second))
	}
	return res, nil
}
