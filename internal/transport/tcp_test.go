package transport

import (
	"testing"
	"time"

	"github.com/midband5g/midband/internal/net5g"
	"github.com/midband5g/midband/internal/operators"
)

func testLink(t *testing.T, acr string, seed int64) *net5g.Link {
	t.Helper()
	op, err := operators.ByAcronym(acr)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := op.LinkConfig(operators.Stationary(seed))
	if err != nil {
		t.Fatal(err)
	}
	link, err := net5g.NewLink(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// CSI warm-up so the link carries traffic from the start.
	for i := 0; i < 2000; i++ {
		link.Step(net5g.Demand{DL: true})
	}
	return link
}

func TestFlowValidation(t *testing.T) {
	link := testLink(t, "V_Ge", 1)
	if _, err := Run(link, FlowConfig{MSSBytes: 10}, time.Second); err == nil {
		t.Error("tiny MSS should fail")
	}
	if _, err := Run(link, FlowConfig{}, 0); err == nil {
		t.Error("zero duration should fail")
	}
}

func TestFlowReachesMostOfPHY(t *testing.T) {
	link := testLink(t, "V_Ge", 2)
	res, err := Run(link, FlowConfig{}, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.GoodputMbps <= 0 {
		t.Fatal("no goodput")
	}
	// A well-buffered bulk flow sustains most of the PHY rate but never
	// exceeds it.
	if res.GoodputMbps > res.PHYMbps+1 {
		t.Errorf("goodput %.0f exceeds PHY %.0f", res.GoodputMbps, res.PHYMbps)
	}
	ratio := res.GoodputMbps / res.PHYMbps
	if ratio < 0.7 {
		t.Errorf("transport efficiency %.2f too low (goodput %.0f, PHY %.0f)",
			ratio, res.GoodputMbps, res.PHYMbps)
	}
	if len(res.CwndTrace) == 0 {
		t.Error("no cwnd trace")
	}
}

func TestFlowBufferbloat(t *testing.T) {
	// A larger bottleneck buffer inflates the measured RTT (bufferbloat)
	// but does not reduce goodput.
	link1 := testLink(t, "T_Ge", 3)
	small, err := Run(link1, FlowConfig{BufferBytes: 1 << 20}, 8*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	link2 := testLink(t, "T_Ge", 3)
	big, err := Run(link2, FlowConfig{BufferBytes: 16 << 20}, 8*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if big.MeanRTT <= small.MeanRTT {
		t.Errorf("bigger buffer should inflate RTT: %v vs %v", big.MeanRTT, small.MeanRTT)
	}
	if big.GoodputMbps < 0.9*small.GoodputMbps {
		t.Errorf("bigger buffer should not hurt goodput: %.0f vs %.0f",
			big.GoodputMbps, small.GoodputMbps)
	}
}

func TestFlowLossesWithTinyBuffer(t *testing.T) {
	link := testLink(t, "V_Sp", 4)
	res, err := Run(link, FlowConfig{BufferBytes: 256 << 10}, 8*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.Losses == 0 {
		t.Error("a 256 KiB buffer under a >500 Mbps flow should overflow")
	}
	if res.GoodputMbps <= 0 {
		t.Error("flow should still make progress through losses")
	}
}

func TestFlowTracksChannelQuality(t *testing.T) {
	good, err := Run(testLink(t, "V_It", 5), FlowConfig{}, 6*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	weak, err := Run(testLink(t, "Att_US", 5), FlowConfig{}, 6*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if good.GoodputMbps <= weak.GoodputMbps {
		t.Errorf("V_It flow %.0f should beat Att_US %.0f", good.GoodputMbps, weak.GoodputMbps)
	}
}
