// Package iperf drives saturating bulk-transfer workloads over a simulated
// 5G link, mirroring the paper's iPerf3 measurement sessions (§2). It
// collects the slot-level KPI series that every throughput figure (Figs.
// 1–6, 9, 10, 12–14) is computed from.
package iperf

import (
	"fmt"
	"time"

	"github.com/midband5g/midband/internal/net5g"
	"github.com/midband5g/midband/internal/xcal"
)

// Config parameterizes one bulk-transfer session.
type Config struct {
	// Duration is the session length in simulated time.
	Duration time.Duration
	// Demand is the offered load (defaults to saturating both
	// directions for a lone UE).
	Demand net5g.Demand
	// Trace, when non-nil, receives every slot KPI record. Any
	// container works — the row xcal.Writer and the columnar
	// xcol.Writer both implement the interface.
	Trace xcal.TraceWriter
	// KeepRecords retains all KPI records in the result (memory-heavy
	// for long runs; the per-series arrays are usually enough).
	KeepRecords bool
	// Discard skips collecting the per-slot series, leaving only the
	// session-average throughputs in the result. Warm-up traffic whose
	// result is thrown away uses this to keep the slot loop free of
	// series appends; the simulation itself is unaffected — every slot
	// is stepped identically either way.
	Discard bool
}

// Result is the outcome of a session. All per-slot series are sampled at
// the PCell slot duration (τ = 0.5 ms for 30 kHz carriers), the paper's
// finest analysis granularity.
type Result struct {
	// SlotDuration is the sampling period of the series.
	SlotDuration time.Duration
	// DLMbps and ULMbps are the session averages (UL includes the LTE
	// leg; NRULMbps and LTEULMbps split it).
	DLMbps, ULMbps, NRULMbps, LTEULMbps float64

	// DLBitsPerSlot and ULBitsPerSlot are aggregate goodput series
	// across all carriers.
	DLBitsPerSlot, ULBitsPerSlot []float64

	// PCell DL KPI series (zero-valued on slots with no DL allocation).
	MCS, Rank, RBs, REs, CQI []float64
	// SINRdB, RSRQdB are PCell radio series (every slot).
	SINRdB, RSRQdB []float64
	// Mod256 is 1.0 on slots transmitted with 256QAM, 0 otherwise;
	// ModOrder is the modulation order (2/4/6/8).
	Mod256, ModOrder []float64
	// ACK is 1.0 on slots whose transport block decoded.
	ACK []float64

	// Records are the raw KPI records when Config.KeepRecords is set.
	Records []xcal.SlotKPI
}

// Run executes a session on the link. The link keeps its state, so several
// sessions can be chained (e.g. warm-up then measurement).
func Run(link *net5g.Link, cfg Config) (*Result, error) {
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("iperf: duration %v invalid", cfg.Duration)
	}
	if cfg.Discard && (cfg.Trace != nil || cfg.KeepRecords) {
		return nil, fmt.Errorf("iperf: Discard conflicts with Trace/KeepRecords")
	}
	demand := cfg.Demand
	if !demand.DL && !demand.UL {
		demand = net5g.Saturate
	}
	steps := int(cfg.Duration / link.SlotDuration())
	if steps < 1 {
		return nil, fmt.Errorf("iperf: duration %v shorter than one slot", cfg.Duration)
	}

	res := &Result{SlotDuration: link.SlotDuration()}
	if !cfg.Discard {
		res.DLBitsPerSlot = make([]float64, 0, steps)
		res.ULBitsPerSlot = make([]float64, 0, steps)
		res.MCS = make([]float64, 0, steps)
		res.Rank = make([]float64, 0, steps)
		res.RBs = make([]float64, 0, steps)
		res.REs = make([]float64, 0, steps)
		res.CQI = make([]float64, 0, steps)
		res.SINRdB = make([]float64, 0, steps)
		res.RSRQdB = make([]float64, 0, steps)
		res.Mod256 = make([]float64, 0, steps)
		res.ModOrder = make([]float64, 0, steps)
		res.ACK = make([]float64, 0, steps)
	}

	var recBuf []xcal.SlotKPI
	if cfg.Trace != nil || cfg.KeepRecords {
		// A step yields at most one DL + one UL record per carrier plus
		// the LTE leg; preallocating keeps the per-step append loop out
		// of the allocator.
		recBuf = make([]xcal.SlotKPI, 0, 2*len(link.Carriers())+2)
	}
	if cfg.KeepRecords {
		res.Records = make([]xcal.SlotKPI, 0, 2*steps)
	}
	var dlBits, ulBits, nrUL, lteUL float64
	var r net5g.StepResult // reused: the link rewrites every field per step
	for i := 0; i < steps; i++ {
		link.StepInto(&r, demand)
		dlBits += float64(r.DLBits)
		ulBits += float64(r.ULBits)
		nrUL += float64(r.NRULBits)
		lteUL += float64(r.LTEULBits)
		if cfg.Discard {
			continue
		}
		res.DLBitsPerSlot = append(res.DLBitsPerSlot, float64(r.DLBits))
		res.ULBitsPerSlot = append(res.ULBitsPerSlot, float64(r.ULBits))

		pc := &r.NR[0]
		res.SINRdB = append(res.SINRdB, pc.Sample.SINRdB)
		res.RSRQdB = append(res.RSRQdB, pc.Sample.RSRQdB)
		res.CQI = append(res.CQI, float64(pc.CQI))
		if pc.DL != nil {
			res.MCS = append(res.MCS, float64(pc.DL.MCS))
			res.Rank = append(res.Rank, float64(pc.DL.Rank))
			res.RBs = append(res.RBs, float64(pc.DL.RBs))
			res.REs = append(res.REs, float64(pc.DL.REs))
			mod := pc.DL.Modulation()
			res.ModOrder = append(res.ModOrder, float64(mod))
			if mod == 8 {
				res.Mod256 = append(res.Mod256, 1)
			} else {
				res.Mod256 = append(res.Mod256, 0)
			}
			if pc.DL.ACK {
				res.ACK = append(res.ACK, 1)
			} else {
				res.ACK = append(res.ACK, 0)
			}
		} else {
			res.MCS = append(res.MCS, 0)
			res.Rank = append(res.Rank, 0)
			res.RBs = append(res.RBs, 0)
			res.REs = append(res.REs, 0)
			res.ModOrder = append(res.ModOrder, 0)
			res.Mod256 = append(res.Mod256, 0)
			res.ACK = append(res.ACK, 1)
		}

		if cfg.Trace != nil || cfg.KeepRecords {
			recBuf = net5g.KPIRecords(r, recBuf[:0])
			if cfg.Trace != nil {
				for j := range recBuf {
					if err := cfg.Trace.WriteKPI(&recBuf[j]); err != nil {
						return nil, fmt.Errorf("iperf: writing trace: %w", err)
					}
				}
			}
			if cfg.KeepRecords {
				res.Records = append(res.Records, recBuf...)
			}
		}
	}
	seconds := cfg.Duration.Seconds()
	res.DLMbps = dlBits / seconds / 1e6
	res.ULMbps = ulBits / seconds / 1e6
	res.NRULMbps = nrUL / seconds / 1e6
	res.LTEULMbps = lteUL / seconds / 1e6
	return res, nil
}

// FilterByCQI returns the per-slot DL goodput restricted to slots whose CQI
// satisfies keep — the mechanism behind the paper's "CQI ≥ 12" (good
// channel) and "CQI < 10" conditioning in Figs. 2 and 10.
func (r *Result) FilterByCQI(keep func(cqi int) bool) (dlBitsPerSlot []float64) {
	out := make([]float64, 0, len(r.DLBitsPerSlot))
	for i, bits := range r.DLBitsPerSlot {
		if keep(int(r.CQI[i])) {
			out = append(out, bits)
		}
	}
	return out
}

// MbpsOf converts a bits-per-slot series average into Mbps.
func (r *Result) MbpsOf(bitsPerSlot []float64) float64 {
	if len(bitsPerSlot) == 0 {
		return 0
	}
	total := 0.0
	for _, b := range bitsPerSlot {
		total += b
	}
	return total / float64(len(bitsPerSlot)) / r.SlotDuration.Seconds() / 1e6
}

// ThroughputMbpsSeries returns the DL goodput series converted to Mbps at
// slot granularity.
func (r *Result) ThroughputMbpsSeries() []float64 {
	out := make([]float64, len(r.DLBitsPerSlot))
	scale := 1 / r.SlotDuration.Seconds() / 1e6
	for i, b := range r.DLBitsPerSlot {
		out[i] = b * scale
	}
	return out
}

// FilterDL restricts a PCell-aligned per-slot series (MCS, Rank, ...) to
// DL-scheduled slots, mirroring how the paper's per-slot parameter series
// only exist where a DCI scheduled data.
func (r *Result) FilterDL(series []float64) []float64 {
	out := make([]float64, 0, len(series))
	for i, v := range series {
		if i < len(r.RBs) && r.RBs[i] > 0 {
			out = append(out, v)
		}
	}
	return out
}

// DLThroughputProcess returns the PDSCH throughput process: the goodput of
// DL-scheduled slots only, concatenated. Dropping the deterministic TDD
// uplink gaps isolates the channel-driven dynamics — BLER events, MCS and
// rank moves — which is what the paper's multi-scale variability figures
// characterize (the fixed frame structure would otherwise dominate V(t) at
// scales near the TDD period).
func (r *Result) DLThroughputProcess() []float64 {
	out := make([]float64, 0, len(r.DLBitsPerSlot))
	scale := 1 / r.SlotDuration.Seconds() / 1e6
	for i, b := range r.DLBitsPerSlot {
		if r.RBs[i] > 0 {
			out = append(out, b*scale)
		}
	}
	return out
}
