package iperf

import (
	"bytes"
	"math"
	"testing"
	"time"

	"github.com/midband5g/midband/internal/analysis"
	"github.com/midband5g/midband/internal/net5g"
	"github.com/midband5g/midband/internal/operators"
	"github.com/midband5g/midband/internal/xcal"
)

func testLink(t *testing.T, acr string, seed int64) *net5g.Link {
	t.Helper()
	op, err := operators.ByAcronym(acr)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := op.LinkConfig(operators.Stationary(seed))
	if err != nil {
		t.Fatal(err)
	}
	link, err := net5g.NewLink(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return link
}

func TestRunBasics(t *testing.T) {
	link := testLink(t, "V_Sp", 21)
	res, err := Run(link, Config{Duration: 3 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if res.SlotDuration != 500*time.Microsecond {
		t.Errorf("slot duration = %v", res.SlotDuration)
	}
	wantLen := int(3 * time.Second / res.SlotDuration)
	for name, series := range map[string][]float64{
		"dl": res.DLBitsPerSlot, "ul": res.ULBitsPerSlot, "mcs": res.MCS,
		"rank": res.Rank, "rbs": res.RBs, "res": res.REs, "cqi": res.CQI,
		"sinr": res.SINRdB, "rsrq": res.RSRQdB, "mod": res.ModOrder,
		"m256": res.Mod256, "ack": res.ACK,
	} {
		if len(series) != wantLen {
			t.Errorf("series %s has %d samples, want %d", name, len(series), wantLen)
		}
	}
	if res.DLMbps < 300 {
		t.Errorf("V_Sp DL = %.0f Mbps, suspiciously low", res.DLMbps)
	}
	if res.ULMbps <= 0 {
		t.Error("UL should be positive")
	}
	// Consistency: average of the series equals the reported mean (up to
	// floating-point summation order).
	if got := res.MbpsOf(res.DLBitsPerSlot); math.Abs(got-res.DLMbps) > 1e-6 {
		t.Errorf("MbpsOf(DL series) = %g, DLMbps = %g", got, res.DLMbps)
	}
}

func TestRunErrors(t *testing.T) {
	link := testLink(t, "V_Sp", 22)
	if _, err := Run(link, Config{}); err == nil {
		t.Error("zero duration should fail")
	}
	if _, err := Run(link, Config{Duration: time.Microsecond}); err == nil {
		t.Error("sub-slot duration should fail")
	}
}

func TestFilterByCQI(t *testing.T) {
	link := testLink(t, "O_Sp100", 23)
	res, err := Run(link, Config{Duration: 4 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	good := res.FilterByCQI(func(c int) bool { return c >= 12 })
	bad := res.FilterByCQI(func(c int) bool { return c > 0 && c < 10 })
	if len(good)+len(bad) > len(res.DLBitsPerSlot) {
		t.Fatal("filters overlap")
	}
	if len(good) == 0 {
		t.Fatal("no good-CQI slots; channel miscalibrated")
	}
	// Good-channel slots deliver more than bad-channel slots on average.
	if len(bad) > 100 && res.MbpsOf(good) <= res.MbpsOf(bad) {
		t.Errorf("CQI≥12 throughput %.0f should exceed CQI<10 %.0f",
			res.MbpsOf(good), res.MbpsOf(bad))
	}
}

func TestTraceWriting(t *testing.T) {
	link := testLink(t, "V_Ge", 24)
	var buf bytes.Buffer
	w, err := xcal.NewWriter(&buf, xcal.Meta{Operator: "V_Ge", SlotDuration: link.SlotDuration()})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(link, Config{Duration: time.Second, Trace: w, KeepRecords: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(res.Records) == 0 {
		t.Fatal("KeepRecords produced nothing")
	}
	r, err := xcal.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		ft, err := r.Next()
		if err != nil {
			break
		}
		if ft == xcal.FrameKPI {
			n++
		}
	}
	if n != len(res.Records) {
		t.Errorf("trace has %d KPI frames, kept %d records", n, len(res.Records))
	}
}

func TestThroughputSeriesFeedsVariability(t *testing.T) {
	// End-to-end: the iperf series feeds the paper's V(t) computation and
	// produces a decreasing curve (Fig. 12's qualitative shape).
	link := testLink(t, "O_Sp100", 25)
	res, err := Run(link, Config{Duration: 4 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	// 4 s at 0.5 ms slots supports scales through 512 ms (k=0..10);
	// Curve drops the 1 s/2 s scales, which have <5 blocks here.
	curve := analysis.Curve(res.ThroughputMbpsSeries(), res.SlotDuration, 12)
	if len(curve) < 11 {
		t.Fatalf("curve too short: %d points", len(curve))
	}
	if curve[len(curve)-1].V >= curve[0].V {
		t.Errorf("V(t) should decrease with scale: %g → %g", curve[0].V, curve[len(curve)-1].V)
	}
}

func TestDefaultDemandSaturates(t *testing.T) {
	link := testLink(t, "T_Ge", 26)
	res, err := Run(link, Config{Duration: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if res.DLMbps <= 0 || res.ULMbps <= 0 {
		t.Error("default demand should saturate both directions")
	}
}
