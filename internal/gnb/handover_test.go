package gnb

import (
	"testing"

	"github.com/midband5g/midband/internal/channel"
)

// TestHandoverInterruptsData drives a UE across two cells and checks that
// every serving-cell change is followed by an interruption gap.
func TestHandoverInterruptsData(t *testing.T) {
	c := testCarrier(t, func(cfg *CarrierConfig) {
		cfg.Channel.Deployment.Sites = []channel.Point{{X: 0}, {X: 400}}
		// Drive back and forth across the midpoint.
		cfg.Channel.Route = channel.Route{
			Waypoints: []channel.Point{{X: 100, Y: 60}, {X: 300, Y: 60}},
			SpeedMPS:  11,
		}
		cfg.Channel.ShadowSigmaDB = 0.5 // keep the crossing crisp
	})
	lastCell := -1
	handovers := 0
	interrupted := 0
	for i := 0; i < 200000; i++ { // 100 s of driving
		r := c.Step(FullBuffer, Demand{})
		if lastCell >= 0 && r.Sample.ServingCell != lastCell {
			handovers++
			// The next ~100 slots must carry no data.
			if r.DL != nil {
				t.Fatalf("slot %d: allocation during handover execution", r.Slot)
			}
			interrupted++
		}
		lastCell = r.Sample.ServingCell
	}
	if handovers == 0 {
		t.Fatal("route crossing two cells produced no handovers")
	}
	if interrupted == 0 {
		t.Fatal("handovers did not interrupt data")
	}
}

// TestHandoverDisabled checks the opt-out.
func TestHandoverDisabled(t *testing.T) {
	c := testCarrier(t, func(cfg *CarrierConfig) {
		cfg.HandoverInterruptionSlots = -1
		cfg.Channel.Deployment.Sites = []channel.Point{{X: 0}, {X: 400}}
		cfg.Channel.Route = channel.Route{
			Waypoints: []channel.Point{{X: 100, Y: 60}, {X: 300, Y: 60}},
			SpeedMPS:  11,
		}
	})
	lastCell := -1
	for i := 0; i < 100000; i++ {
		r := c.Step(FullBuffer, Demand{})
		if lastCell >= 0 && r.Sample.ServingCell != lastCell {
			// With interruption disabled, data can flow on the very
			// handover slot (if it is a DL slot with CSI primed).
			if c.cfg.Pattern.DLSymbols(r.Slot) > 0 && r.DL == nil && r.Slot > 100 {
				t.Fatalf("slot %d: unexpected gap with handover interruption disabled", r.Slot)
			}
		}
		lastCell = r.Sample.ServingCell
	}
}
