package gnb

import (
	"math"
	"testing"

	"github.com/midband5g/midband/internal/channel"
	"github.com/midband5g/midband/internal/fault"
)

// lockstepCells builds two identically-configured contention cells: one
// stepped through a CellBatch, one as the scalar reference.
func lockstepCells(t *testing.T, cfg CellConfig) (*CellBatch, *Cell) {
	t.Helper()
	scalar, err := NewCell(cfg)
	if err != nil {
		t.Fatal(err)
	}
	adopted, err := NewCell(cfg)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := NewCellBatch(adopted)
	if err != nil {
		t.Fatal(err)
	}
	return batch, scalar
}

// assertSlotEqual compares one slot's outcome bit-for-bit: the alloc
// sequence (grant order included), the SINR samples, and the cell-side
// PF/load state the schedulers feed back on.
func assertSlotEqual(t *testing.T, slot int, got, want CellSlot, batch *CellBatch, scalar *Cell) {
	t.Helper()
	if got.Slot != want.Slot || got.Time != want.Time {
		t.Fatalf("slot %d: header (%d, %v) vs scalar (%d, %v)", slot, got.Slot, got.Time, want.Slot, want.Time)
	}
	if len(got.Allocs) != len(want.Allocs) {
		t.Fatalf("slot %d: %d allocs vs scalar %d", slot, len(got.Allocs), len(want.Allocs))
	}
	for j := range got.Allocs {
		g, w := got.Allocs[j], want.Allocs[j]
		if math.Float64bits(g.SINRdB) != math.Float64bits(w.SINRdB) {
			t.Fatalf("slot %d alloc %d: SINR bits %x vs scalar %x", slot, j,
				math.Float64bits(g.SINRdB), math.Float64bits(w.SINRdB))
		}
		if g != w {
			t.Fatalf("slot %d alloc %d: %+v vs scalar %+v", slot, j, g, w)
		}
	}
	for i := 0; i < scalar.NumUEs(); i++ {
		if math.Float64bits(batch.ServedRate(i)) != math.Float64bits(scalar.ServedRate(i)) {
			t.Fatalf("slot %d UE %d: served bits %x vs scalar %x", slot, i,
				math.Float64bits(batch.ServedRate(i)), math.Float64bits(scalar.ServedRate(i)))
		}
	}
	if math.Float64bits(batch.LoadEMA()) != math.Float64bits(scalar.LoadEMA()) {
		t.Fatalf("slot %d: loadEMA bits %x vs scalar %x", slot,
			math.Float64bits(batch.LoadEMA()), math.Float64bits(scalar.LoadEMA()))
	}
}

var lockstepPolicies = []SchedulerPolicy{
	SchedulerEqualShare, SchedulerProportionalFair, SchedulerMaxRate, SchedulerRoundRobin,
}

// TestCellBatchLockstepScalar is the tentpole bit-identity contract: for
// every scheduler policy, ≥100k batch-stepped slots reproduce the scalar
// contention path's allocations, SINR samples, PF served rates and load
// EMA to the exact bit — full-buffer and finite-traffic mixes alike.
func TestCellBatchLockstepScalar(t *testing.T) {
	ues := []channel.Point{{X: 0, Y: 45}, {X: 0, Y: 90}, {X: 0, Y: 117}, {X: 0, Y: 150}}
	traffics := []struct {
		name    string
		traffic []UETraffic
	}{
		{"full-buffer", nil},
		{"finite-mix", []UETraffic{{OfferedMbps: 20}, {}, {OfferedMbps: 5}, {OfferedMbps: 60}}},
	}
	for _, pol := range lockstepPolicies {
		for _, tr := range traffics {
			t.Run(pol.String()+"/"+tr.name, func(t *testing.T) {
				cfg := contentionConfig(t, pol, ues)
				cfg.Traffic = tr.traffic
				batch, scalar := lockstepCells(t, cfg)
				if batch.FastLanes() != len(ues) {
					t.Fatalf("fast lanes %d, want %d (stationary fault-free UEs)", batch.FastLanes(), len(ues))
				}
				for slot := 0; slot < 100_000; slot++ {
					assertSlotEqual(t, slot, batch.Step(), scalar.Step(), batch, scalar)
				}
			})
		}
	}
}

// TestCellBatchLockstepFaults runs the same contract with blackout fault
// injection armed: every UE channel then carries per-slot fault state, so
// all lanes take the scalar fallback inside the channel batch — and the
// outcome must still be bit-identical, outages included.
func TestCellBatchLockstepFaults(t *testing.T) {
	ues := []channel.Point{{X: 0, Y: 45}, {X: 0, Y: 117}, {X: 0, Y: 150}}
	for _, pol := range lockstepPolicies {
		t.Run(pol.String(), func(t *testing.T) {
			cfg := contentionConfig(t, pol, ues)
			cfg.Carrier.Channel.Fault = &fault.Blackout{
				ProbPerSlot: 0.002, DurationSlots: 60, DepthDB: 50, Seed: 41,
			}
			cfg.Traffic = []UETraffic{{OfferedMbps: 30}, {}, {OfferedMbps: 10}}
			batch, scalar := lockstepCells(t, cfg)
			if batch.FastLanes() != 0 {
				t.Fatalf("fast lanes %d, want 0 (blackout channels must fall back)", batch.FastLanes())
			}
			for slot := 0; slot < 100_000; slot++ {
				assertSlotEqual(t, slot, batch.Step(), scalar.Step(), batch, scalar)
			}
		})
	}
}

// TestCellBatchDetach pins the handoff contract: after Detach the cell
// continues on the scalar path exactly where the batch left it.
func TestCellBatchDetach(t *testing.T) {
	ues := []channel.Point{{X: 0, Y: 45}, {X: 0, Y: 90}, {X: 0, Y: 150}}
	cfg := contentionConfig(t, SchedulerProportionalFair, ues)
	batch, scalar := lockstepCells(t, cfg)
	for slot := 0; slot < 20_000; slot++ {
		assertSlotEqual(t, slot, batch.Step(), scalar.Step(), batch, scalar)
	}
	cell := batch.Detach()
	for slot := 20_000; slot < 40_000; slot++ {
		got, want := cell.Step(), scalar.Step()
		if len(got.Allocs) != len(want.Allocs) {
			t.Fatalf("post-detach slot %d: %d allocs vs %d", slot, len(got.Allocs), len(want.Allocs))
		}
		for j := range got.Allocs {
			if got.Allocs[j] != want.Allocs[j] {
				t.Fatalf("post-detach slot %d alloc %d: %+v vs %+v", slot, j, got.Allocs[j], want.Allocs[j])
			}
		}
	}
}

// TestCellBatchRejectsShareModel: the share model is the bit-identity
// reference for the checked-in figures and stays scalar-only.
func TestCellBatchRejectsShareModel(t *testing.T) {
	cfg := testCellConfig(t, SchedulerEqualShare, []channel.Point{{X: 0, Y: 45}})
	cell, err := NewCell(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewCellBatch(cell); err == nil {
		t.Fatal("NewCellBatch accepted a share-model cell")
	}
	if _, err := NewCellBatch(nil); err == nil {
		t.Fatal("NewCellBatch accepted a nil cell")
	}
}

// TestCellBatchStepAllocs pins the whole batched slot loop — channel SoA
// step, CSI, HARQ, scheduler, PF window, load coupling — at zero
// steady-state allocations.
func TestCellBatchStepAllocs(t *testing.T) {
	ues := []channel.Point{{X: 0, Y: 45}, {X: 0, Y: 90}, {X: 0, Y: 117}, {X: 0, Y: 150}}
	for _, pol := range lockstepPolicies {
		t.Run(pol.String(), func(t *testing.T) {
			cfg := contentionConfig(t, pol, ues)
			cfg.Traffic = []UETraffic{{OfferedMbps: 40}, {}, {OfferedMbps: 10}, {}}
			cell, err := NewCell(cfg)
			if err != nil {
				t.Fatal(err)
			}
			batch, err := NewCellBatch(cell)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 20_000; i++ {
				batch.Step()
			}
			allocs := testing.AllocsPerRun(5000, func() {
				batch.Step()
			})
			if allocs > 0 {
				t.Errorf("CellBatch.Step allocates %.3f objects/slot, want 0", allocs)
			}
		})
	}
}
