package gnb

import (
	"fmt"
	"time"

	"github.com/midband5g/midband/internal/channel"
	"github.com/midband5g/midband/internal/phy"
	"github.com/midband5g/midband/internal/ue"
)

// This file is the structure-of-arrays slot engine for population-scale
// contention cells. A CellBatch adopts an existing contention-model Cell
// and advances its whole UE set per slot as tight loops over parallel
// slices: channel fading via channel.Batch (per-lane AR(1) constants
// hoisted, RSRQ conversion and Sample construction skipped), CSI-report
// CQI/RI/instSE as flat arrays, and the scheduler pass reading those
// arrays directly instead of an []ueState array-of-structs. The per-slot
// constants the scalar path re-derives per UE — the CQI→efficiency
// ladder, the TBS cache, the amcDerived factors — are hoisted once at
// adoption time.
//
// Determinism contract: CellBatch.Step is draw-for-draw and bit-identical
// to Cell.Step on the same configuration. Every RNG consumer keeps its
// own fleet.SplitSeed-derived stream (channel, CSI, UE ACK draws), and
// the slot algorithm below mirrors stepContention's exact operation
// order — sense loop, UL-slot early return, HARQ retransmissions in
// UE-index order, policy grants (including the PF co-sort that fixes the
// grant order), PF-window update, load-coupling push. The lockstep tests
// in cellbatch_test.go pin this with Float64bits equality over ≥100k
// slots for all four schedulers.

// CellBatch advances a contention-model Cell one slot per call using
// structure-of-arrays inner loops. It adopts the Cell passed to
// NewCellBatch: the UEs' channels move into a channel.Batch, and the
// Cell must not be stepped directly until Detach. Not safe for
// concurrent use.
type CellBatch struct {
	cell *Cell
	chb  *channel.Batch

	// Per-UE per-slot state, index-matched with the cell's UE set.
	sinr   []float64
	outage []bool
	cqi    []phy.CQI
	ri     []int
	instSE []float64
	ready  []bool

	// order is the scheduler's working set: the UE indices eligible for
	// fresh grants this slot, in the policy's grant order (ascending UE
	// index except PF, which co-sorts by descending metric exactly as the
	// scalar path reorders its ready slice).
	order []int
	rb    []int

	// effByCQI hoists the CSI table's CQI→spectral-efficiency column so
	// the sense loop indexes a flat array instead of calling Lookup (with
	// its error path) once per UE per slot. Row 0 is 0 ("out of range").
	effByCQI [phy.MaxCQI + 1]float64
}

// NewCellBatch adopts a contention-model Cell into a batch stepper. The
// Cell keeps all its state (RNG streams, HARQ queues, buffers, OLLA and
// PF arrays); the batch only relocates the channels' fading state and
// hoists read-only constants. The Cell must not be stepped directly
// while adopted.
func NewCellBatch(cell *Cell) (*CellBatch, error) {
	if cell == nil {
		return nil, fmt.Errorf("gnb: batch needs a cell")
	}
	if cell.cfg.Model != CellModelContention {
		return nil, fmt.Errorf("gnb: batch stepping requires CellModelContention (share model is the scalar reference)")
	}
	chs := make([]*channel.Channel, len(cell.ues))
	for i, u := range cell.ues {
		chs[i] = u.ch
	}
	chb, err := channel.NewBatch(chs)
	if err != nil {
		return nil, fmt.Errorf("gnb: batch: %w", err)
	}
	n := len(cell.ues)
	b := &CellBatch{
		cell:   cell,
		chb:    chb,
		sinr:   make([]float64, n),
		outage: make([]bool, n),
		cqi:    make([]phy.CQI, n),
		ri:     make([]int, n),
		instSE: make([]float64, n),
		ready:  make([]bool, n),
		order:  make([]int, 0, n),
		rb:     make([]int, 0, n),
	}
	for q := phy.CQI(1); q <= phy.MaxCQI; q++ {
		row, err := cell.csiCfg.Table.Lookup(q)
		if err != nil {
			return nil, fmt.Errorf("gnb: batch: CQI ladder: %w", err)
		}
		b.effByCQI[q] = row.Efficiency
	}
	return b, nil
}

// Step advances one slot for the whole UE population. The returned
// CellSlot's Allocs slice is owned by the underlying Cell and valid
// until the next Step call. The algorithm is stepContention's, restated
// over the SoA views; see the file comment for the equivalence contract.
//
//detlint:zeroalloc
func (b *CellBatch) Step() CellSlot {
	c := b.cell
	slot := c.slot
	c.slot++
	res := CellSlot{Slot: slot, Time: time.Duration(slot) * c.slotDur}

	// Sense: all channels advance in one SoA pass, then the CSI loops and
	// arrival processes run over the fresh SINR array. Draw order per UE
	// is unchanged (channel stream, then CSI stream); cross-UE order is
	// free because every stream is independent.
	b.chb.StepInto(b.sinr, b.outage)
	for i, u := range c.ues {
		u.csi.Observe(slot, b.sinr[i])
		u.buf.Arrive()
		rep, ok := u.csi.Current()
		b.cqi[i] = rep.CQI
		b.ri[i] = rep.RI
		b.instSE[i] = 0
		ready := ok && rep.CQI > 0 && !b.outage[i] && u.buf.Backlogged()
		b.ready[i] = ready
		if ready && rep.CQI <= phy.MaxCQI {
			b.instSE[i] = b.effByCQI[rep.CQI] * float64(rep.RI)
		}
	}

	dlSym := c.dlSymbols(slot)
	if dlSym == 0 {
		return res
	}

	budget := c.cfg.Carrier.NRB
	res.Allocs = c.allocs[:0]
	sched := c.scheduled
	for i := range sched {
		sched[i] = false
	}

	// HARQ retransmissions first, in UE-index order (same preemption rule
	// as the scalar path: RTT-ready, fits the remaining budget, link up).
	for i, u := range c.ues {
		if budget < 1 {
			break
		}
		if b.outage[i] {
			continue
		}
		job, ok := popReadyFit(&u.harq, slot, budget)
		if !ok {
			continue
		}
		budget -= job.rbs
		sched[i] = true
		if a, ok := c.deliver(slot, i, job, b.sinr[i]); ok {
			res.Allocs = append(res.Allocs, UEAlloc{
				UE: i, Alloc: a, SINRdB: b.sinr[i], CQI: b.cqi[i],
			})
		}
	}

	// Fresh grants over the SoA views: order collects the eligible UE
	// indices, rb their integer RB shares, both in grant order.
	order := b.order[:0]
	for i := range c.ues {
		if b.ready[i] && !sched[i] {
			order = append(order, i)
		}
	}
	b.order = order
	if budget > 0 && len(order) > 0 {
		rb := b.rb[:0]
		switch c.cfg.Policy {
		case SchedulerMaxRate:
			best := 0
			for k, idx := range order[1:] {
				if b.instSE[idx] > b.instSE[order[best]] {
					best = k + 1
				}
			}
			for k := range order {
				w := 0
				if k == best {
					w = budget
				}
				rb = append(rb, w)
			}
		case SchedulerRoundRobin:
			n := len(c.ues)
			chosen := -1
			for off := 0; off < n && chosen < 0; off++ {
				cand := (c.rr + off) % n
				if b.ready[cand] && !sched[cand] {
					chosen = cand
				}
			}
			c.rr = (chosen + 1) % n
			for _, idx := range order {
				w := 0
				if idx == chosen {
					w = budget
				}
				rb = append(rb, w)
			}
		case SchedulerProportionalFair:
			// Identical to the scalar PF pass: metrics in UE-index order,
			// insertion sort descending co-sorting order, integer shares
			// with a descending-prefix remainder. The co-sort matters:
			// grant order fixes the Allocs order the callers see.
			ss := c.scores[:0]
			total := 0.0
			for _, idx := range order {
				m := b.instSE[idx] / c.served[idx]
				ss = append(ss, pfScore{idx, m})
				total += m
			}
			c.scores = ss
			for i := 1; i < len(ss); i++ {
				for j := i; j > 0 && ss[j].metric > ss[j-1].metric; j-- {
					ss[j], ss[j-1] = ss[j-1], ss[j]
					order[j], order[j-1] = order[j-1], order[j]
				}
			}
			left := budget
			for _, s := range ss {
				w := 0
				if total > 0 {
					w = int(float64(budget) * s.metric / total)
				}
				rb = append(rb, w)
				left -= w
			}
			for i := 0; i < len(rb) && left > 0; i++ {
				rb[i]++
				left--
			}
		default: // equal share
			q, r := budget/len(order), budget%len(order)
			for k := range order {
				w := q
				if k < r {
					w++
				}
				rb = append(rb, w)
			}
		}
		b.rb = rb

		for k, idx := range order {
			rbs := rb[k]
			if rbs < 1 {
				continue
			}
			rep := ue.Report{CQI: b.cqi[idx], RI: b.ri[idx]}
			job, ok := c.newContentionTB(slot, idx, rep, dlSym, rbs)
			if !ok {
				continue
			}
			if a, ok := c.deliver(slot, idx, job, b.sinr[idx]); ok {
				res.Allocs = append(res.Allocs, UEAlloc{
					UE: idx, Alloc: a, SINRdB: b.sinr[idx], CQI: b.cqi[idx],
				})
			}
		}
	}

	c.allocs = res.Allocs
	if len(res.Allocs) == 0 {
		res.Allocs = nil
	}
	c.updatePFWindow(res.Allocs)

	// Load coupling, with the push fanned out through the channel batch
	// (lane order is UE-index order, matching the scalar loop).
	granted := 0
	for _, a := range res.Allocs {
		granted += a.Alloc.RBs
	}
	util := float64(granted) / float64(c.cfg.Carrier.NRB)
	c.loadEMA += (util - c.loadEMA) / loadEMAWindow
	if !c.cfg.DisableLoadCoupling && len(c.ues) > 1 && slot%loadPushPeriod == loadPushPeriod-1 {
		b.chb.SetNeighborLoad(c.loadEMA)
	}
	return res
}

// Cell returns the adopted cell for its read-only accessors (LoadEMA,
// ServedRate, NumUEs, Config). Step it only after Detach.
func (b *CellBatch) Cell() *Cell { return b.cell }

// NumUEs returns the number of UEs sharing the cell.
func (b *CellBatch) NumUEs() int { return len(b.cell.ues) }

// SlotDuration returns the cell's slot length.
func (b *CellBatch) SlotDuration() time.Duration { return b.cell.slotDur }

// LoadEMA returns the smoothed RB utilization (see Cell.LoadEMA).
func (b *CellBatch) LoadEMA() float64 { return b.cell.loadEMA }

// ServedRate returns UE i's PF-smoothed served rate (see Cell.ServedRate).
func (b *CellBatch) ServedRate(i int) float64 { return b.cell.served[i] }

// FastLanes returns how many UE channels run on the SoA fast path.
func (b *CellBatch) FastLanes() int { return b.chb.FastLanes() }

// Detach writes the batched fading state back into the UEs' channels and
// returns the cell, which can then be stepped directly (Cell.Step picks
// up exactly where the batch left off). The batch must not be stepped
// afterwards.
func (b *CellBatch) Detach() *Cell {
	b.chb.Detach()
	return b.cell
}
