package gnb

import (
	"testing"

	"github.com/midband5g/midband/internal/channel"
	"github.com/midband5g/midband/internal/phy"
	"github.com/midband5g/midband/internal/tdd"
)

func testCellConfig(t *testing.T, policy SchedulerPolicy, ues []channel.Point) CellConfig {
	t.Helper()
	return CellConfig{
		Carrier: CarrierConfig{
			Label:      "cell/60MHz",
			Numerology: phy.Mu1,
			NRB:        162,
			Pattern:    tdd.MustParse("DDDSU"),
			MCSTable:   phy.MCSTable256QAM,
			Channel: channel.Config{
				CarrierFreqMHz:           3750,
				Route:                    channel.Stationary(channel.Point{X: 45}), // template; overridden per UE
				Deployment:               channel.Deployment{Sites: []channel.Point{{}}, TxPowerDBmPerRE: 18},
				OtherCellInterferenceDBm: -100,
				ShadowSigmaDB:            2,
				FastSigmaDB:              1,
				SINRBiasDB:               -18,
			},
		},
		UEs:    ues,
		Policy: policy,
		Seed:   13,
	}
}

// run aggregates a cell simulation.
type cellStats struct {
	bits  []float64 // per-UE delivered bits
	rbs   []float64 // per-UE mean RBs over scheduled slots
	slots []float64
}

func runCell(t *testing.T, cfg CellConfig, n int) cellStats {
	t.Helper()
	cell, err := NewCell(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := cellStats{
		bits:  make([]float64, len(cfg.UEs)),
		rbs:   make([]float64, len(cfg.UEs)),
		slots: make([]float64, len(cfg.UEs)),
	}
	for i := 0; i < n; i++ {
		res := cell.Step()
		for _, a := range res.Allocs {
			s.bits[a.UE] += float64(a.Alloc.DeliveredBits)
			s.rbs[a.UE] += float64(a.Alloc.RBs)
			s.slots[a.UE]++
		}
	}
	for i := range s.rbs {
		if s.slots[i] > 0 {
			s.rbs[i] /= s.slots[i]
		}
	}
	return s
}

func TestCellValidation(t *testing.T) {
	cfg := testCellConfig(t, SchedulerEqualShare, nil)
	if _, err := NewCell(cfg); err == nil {
		t.Error("cell without UEs should fail")
	}
	cfg = testCellConfig(t, SchedulerEqualShare, []channel.Point{{X: 45}})
	cfg.Carrier.NRB = 0
	if _, err := NewCell(cfg); err == nil {
		t.Error("invalid carrier should fail")
	}
}

func TestCellEqualShareHalvesResources(t *testing.T) {
	// The Fig. 14 observation, now with two real UEs: each gets ≈ half
	// the RBs and ≈ half the throughput of a lone UE.
	solo := runCell(t, testCellConfig(t, SchedulerEqualShare, []channel.Point{{X: 0, Y: 45}}), 40000)
	duo := runCell(t, testCellConfig(t, SchedulerEqualShare,
		[]channel.Point{{X: 0, Y: 45}, {X: 0, Y: 117}}), 40000)
	rbRatio := duo.rbs[0] / solo.rbs[0]
	if rbRatio < 0.42 || rbRatio > 0.58 {
		t.Errorf("two-UE RB ratio = %.2f, want ≈ 0.5", rbRatio)
	}
	tputRatio := duo.bits[0] / solo.bits[0]
	if tputRatio < 0.35 || tputRatio > 0.65 {
		t.Errorf("two-UE throughput ratio = %.2f, want ≈ 0.5", tputRatio)
	}
	// Both UEs are served.
	if duo.bits[1] == 0 {
		t.Error("second UE starved under equal share")
	}
}

func TestCellMaxRateFavorsNearUE(t *testing.T) {
	s := runCell(t, testCellConfig(t, SchedulerMaxRate,
		[]channel.Point{{X: 0, Y: 45}, {X: 0, Y: 117}}), 40000)
	if s.bits[0] <= s.bits[1] {
		t.Errorf("max-rate should favor the near UE: near=%.0f far=%.0f", s.bits[0], s.bits[1])
	}
	// The far UE gets (almost) nothing — the fairness price of max-rate.
	if s.bits[1] > 0.25*s.bits[0] {
		t.Errorf("max-rate should starve the far UE: near=%.0f far=%.0f", s.bits[0], s.bits[1])
	}
}

func TestCellPFBetweenExtremes(t *testing.T) {
	near := channel.Point{X: 0, Y: 45}
	far := channel.Point{X: 0, Y: 117}
	eq := runCell(t, testCellConfig(t, SchedulerEqualShare, []channel.Point{near, far}), 40000)
	pf := runCell(t, testCellConfig(t, SchedulerProportionalFair, []channel.Point{near, far}), 40000)
	mr := runCell(t, testCellConfig(t, SchedulerMaxRate, []channel.Point{near, far}), 40000)

	total := func(s cellStats) float64 { return s.bits[0] + s.bits[1] }
	fairness := func(s cellStats) float64 { // Jain's index for 2 users
		a, b := s.bits[0], s.bits[1]
		return (a + b) * (a + b) / (2 * (a*a + b*b))
	}
	// PF trades between equal-share fairness and max-rate capacity.
	// With only two UEs the capacity edge over equal share is small;
	// allow a statistical tie.
	if total(pf) < 0.95*total(eq) {
		t.Errorf("PF capacity %.0f should be ≈≥ equal share %.0f", total(pf), total(eq))
	}
	if total(mr) < total(pf) {
		t.Errorf("max-rate capacity %.0f should be ≥ PF %.0f", total(mr), total(pf))
	}
	if fairness(pf) < fairness(mr) {
		t.Errorf("PF fairness %.3f should be ≥ max-rate %.3f", fairness(pf), fairness(mr))
	}
	// Sanity: the far UE is not starved under PF.
	if pf.bits[1] < 0.05*pf.bits[0] {
		t.Errorf("PF starved the far UE: near=%.0f far=%.0f", pf.bits[0], pf.bits[1])
	}
}

func TestCellTDDGating(t *testing.T) {
	cell, err := NewCell(testCellConfig(t, SchedulerEqualShare, []channel.Point{{X: 0, Y: 45}}))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20000; i++ {
		res := cell.Step()
		if len(res.Allocs) > 0 && cell.cfg.Carrier.Pattern.DLSymbols(res.Slot) == 0 {
			t.Fatalf("slot %d: allocation on a non-DL slot", res.Slot)
		}
	}
}

func TestSchedulerPolicyString(t *testing.T) {
	if SchedulerEqualShare.String() != "equal-share" ||
		SchedulerProportionalFair.String() != "proportional-fair" ||
		SchedulerMaxRate.String() != "max-rate" ||
		SchedulerRoundRobin.String() != "round-robin" {
		t.Error("policy strings wrong")
	}
}
