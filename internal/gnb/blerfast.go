package gnb

// Fast ACK decision against the BLER curve. The slot path never needs the
// block-error probability itself — only the comparison `draw >= p` that
// decides whether a transport block decoded. p = 1/(1+e^((z)/0.7)) is
// monotone decreasing in the SINR margin z = sinr − req, so a precomputed
// table of rigorous [pLo, pHi] bounds per margin bin decides almost every
// comparison without evaluating math.Exp; only draws that land inside a
// bin's bounds gap (the margin sits near a decision boundary, well under
// 1% of transport blocks) fall back to the exact bler expression. The
// bounds are conservative — bin-edge evaluations of the same bler
// function widened far beyond its few-ulp rounding envelope — so the
// returned ACK is bit-identical to computing `draw >= bler(sinr, req)`
// directly.

const (
	blerXMin   = -8.4 // margin (dB) below which p is pinned near 1
	blerXMax   = 8.4  // margin (dB) above which p is pinned near 0
	blerBins   = 1024
	blerMargin = 1e-9 // dwarfs bler's ~1e-14 relative rounding error
)

var (
	blerInvW   float64
	blerLo     [blerBins]float64 // lower bound on p for margins in bin i
	blerHi     [blerBins]float64 // upper bound on p for margins in bin i
	blerTailHi float64           // upper bound on p for margins ≥ blerXMax
	blerTailLo float64           // lower bound on p for margins ≤ blerXMin
)

func init() {
	w := (blerXMax - blerXMin) / blerBins
	blerInvW = 1 / w
	for i := 0; i < blerBins; i++ {
		z0 := blerXMin + float64(i)*w
		z1 := blerXMin + float64(i+1)*w
		blerHi[i] = bler(z0, 0) + blerMargin // p decreases with margin
		blerLo[i] = bler(z1, 0) - blerMargin
	}
	blerTailHi = bler(blerXMax, 0) + blerMargin
	blerTailLo = bler(blerXMin, 0) - blerMargin
}

// blerAck reports whether a transport block with SINR margin
// sinrDB − reqSINRdB decodes given the uniform draw. It is exactly
// equivalent to `draw >= bler(sinrDB, reqSINRdB)`.
//
//detlint:zeroalloc
func blerAck(draw, sinrDB, reqSINRdB float64) bool {
	z := sinrDB - reqSINRdB
	if z > blerXMin && z < blerXMax {
		i := int((z - blerXMin) * blerInvW)
		if i >= blerBins { // guard FP rounding at the grid edge
			i = blerBins - 1
		}
		if draw >= blerHi[i] {
			return true
		}
		if draw < blerLo[i] {
			return false
		}
	} else if z >= blerXMax {
		if draw >= blerTailHi {
			return true
		}
	} else if z <= blerXMin {
		if draw < blerTailLo {
			return false
		}
	}
	// Inside the bounds gap (or non-finite margin): exact evaluation.
	return draw >= bler(sinrDB, reqSINRdB)
}
