package gnb

import (
	"fmt"
	"math"
	"strings"
	"time"

	"github.com/midband5g/midband/internal/obs"
	"github.com/midband5g/midband/internal/phy"
	"github.com/midband5g/midband/internal/ue"
)

// This file is the full multi-UE contention model behind CellModelContention:
// per-UE HARQ processes and RLC-style buffers, integer-RB schedulers that
// allocate the carrier's NRB across the whole contending set, and
// load-coupled interference (the cell's own RB utilization replaces the
// statistical channel.Config.NeighborLoad). The legacy share model in
// cell.go stays bit-identical — the checked-in figures depend on it — so
// everything here is opt-in via CellConfig.Model.

// CellModel selects the cell's scheduling fidelity.
type CellModel uint8

const (
	// CellModelShare is the legacy model: per-slot fractional RB splits
	// with no HARQ and full-buffer UEs. The zero value, bit-identical to
	// earlier releases (the extd figure arm depends on that).
	CellModelShare CellModel = iota
	// CellModelContention is the full shared-resource model: per-UE HARQ
	// and RLC-style buffers, integer-RB grants across the contending UE
	// set, and load-dependent interference.
	CellModelContention
)

func (m CellModel) String() string {
	if m == CellModelContention {
		return "contention"
	}
	return "share"
}

// UETraffic is one UE's offered downlink load in a contention cell.
type UETraffic struct {
	// OfferedMbps bounds the UE's arrival rate; 0 (or negative) is a
	// saturating full-buffer UE.
	OfferedMbps float64
}

// ParsePolicy resolves a scheduler-policy name (long form or the usual
// two-letter abbreviation) for CLI flags.
func ParsePolicy(s string) (SchedulerPolicy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "eq", "equal", "equal-share":
		return SchedulerEqualShare, nil
	case "pf", "proportional-fair":
		return SchedulerProportionalFair, nil
	case "mt", "mr", "max-rate":
		return SchedulerMaxRate, nil
	case "rr", "round-robin":
		return SchedulerRoundRobin, nil
	}
	return 0, fmt.Errorf("gnb: unknown scheduler policy %q (want eq, pf, mt or rr)", s)
}

const (
	// loadEMAWindow smooths the cell's RB utilization into the neighbor
	// activity factor (DL-capable slots only — neighbors on the same
	// synchronized TDD frame interfere during DL slots, so UL slots say
	// nothing about DL activity; ~128 ms at 30 kHz SCS).
	loadEMAWindow = 256
	// loadPushPeriod is how often the smoothed utilization is pushed
	// into the UEs' channels. Pushing every slot would recompute the
	// static-geometry noise term per slot for no modeling gain.
	loadPushPeriod = 64
)

// stepContention is Step for CellModelContention. Scheduling order within
// a slot: HARQ retransmissions first (in UE-index order, each keeping its
// original RB footprint), then fresh transport blocks for the remaining
// backlogged UEs under the configured policy, all within the carrier's
// NRB budget. The returned Allocs slice is owned by the Cell.
//
//detlint:zeroalloc
func (c *Cell) stepContention() CellSlot {
	slot := c.slot
	c.slot++
	res := CellSlot{Slot: slot, Time: time.Duration(slot) * c.slotDur}

	states := c.states[:0]
	for i, u := range c.ues {
		s := u.ch.Step()
		u.csi.Observe(slot, s.SINRdB)
		u.buf.Arrive()
		rep, ok := u.csi.Current()
		st := ueState{idx: i, sample: s, report: rep,
			ready: ok && rep.CQI > 0 && !s.Outage && u.buf.Backlogged()}
		if st.ready {
			row, err := c.csiCfg.Table.Lookup(rep.CQI)
			if err == nil {
				st.instSE = row.Efficiency * float64(rep.RI)
			}
		}
		states = append(states, st)
	}
	c.states = states

	dlSym := c.dlSymbols(slot)
	if dlSym == 0 {
		return res
	}

	budget := c.cfg.Carrier.NRB
	res.Allocs = c.allocs[:0]
	sched := c.scheduled
	for i := range sched {
		sched[i] = false
	}

	// HARQ retransmissions preempt fresh data: a pending TB is re-sent as
	// soon as its RTT elapses and its original RB footprint fits the
	// remaining budget. Retransmissions need no fresh CQI (they were
	// sized by an earlier report) but do need a link (no outage).
	for i, u := range c.ues {
		if budget < 1 {
			break
		}
		if states[i].sample.Outage {
			continue
		}
		job, ok := popReadyFit(&u.harq, slot, budget)
		if !ok {
			continue
		}
		budget -= job.rbs
		sched[i] = true
		if a, ok := c.deliver(slot, i, job, states[i].sample.SINRdB); ok {
			res.Allocs = append(res.Allocs, UEAlloc{
				UE: i, Alloc: a, SINRdB: states[i].sample.SINRdB, CQI: states[i].report.CQI,
			})
		}
	}

	// Fresh grants for the backlogged UEs that did not retransmit.
	ready := c.ready[:0]
	for _, st := range states {
		if st.ready && !sched[st.idx] {
			ready = append(ready, st)
		}
	}
	c.ready = ready
	if budget > 0 && len(ready) > 0 {
		rb := c.rbAlloc[:0]
		switch c.cfg.Policy {
		case SchedulerMaxRate:
			// Whole remaining budget to the best instantaneous spectral
			// efficiency (ties break on the lower UE index).
			best := 0
			for i, st := range ready[1:] {
				if st.instSE > ready[best].instSE {
					best = i + 1
				}
			}
			for i := range ready {
				w := 0
				if i == best {
					w = budget
				}
				rb = append(rb, w)
			}
		case SchedulerRoundRobin:
			// Whole-slot time-domain rotation over backlogged UEs: the
			// cursor remembers who is next, so every contender gets the
			// same share of slots regardless of channel quality.
			n := len(c.ues)
			chosen := -1
			for off := 0; off < n && chosen < 0; off++ {
				cand := (c.rr + off) % n
				if states[cand].ready && !sched[cand] {
					chosen = cand
				}
			}
			c.rr = (chosen + 1) % n
			for i := range ready {
				w := 0
				if ready[i].idx == chosen {
					w = budget
				}
				rb = append(rb, w)
			}
		case SchedulerProportionalFair:
			// Frequency-domain PF across the whole ready set: each UE's
			// integer RB share is proportional to its PF metric
			// (instantaneous rate over window-smoothed served rate), with
			// the rounding remainder going to the highest metrics. The
			// served-rate window below is what makes this fair over time.
			// ready is reordered by descending metric so the remainder
			// pass is a prefix walk.
			ss := c.scores[:0]
			total := 0.0
			for _, st := range ready {
				m := st.instSE / c.served[st.idx]
				ss = append(ss, pfScore{st.idx, m})
				total += m
			}
			c.scores = ss
			for i := 1; i < len(ss); i++ {
				for j := i; j > 0 && ss[j].metric > ss[j-1].metric; j-- {
					ss[j], ss[j-1] = ss[j-1], ss[j]
					ready[j], ready[j-1] = ready[j-1], ready[j]
				}
			}
			left := budget
			for _, s := range ss {
				w := 0
				if total > 0 {
					w = int(float64(budget) * s.metric / total)
				}
				rb = append(rb, w)
				left -= w
			}
			// Σ⌊x⌋ > budget − n, so one descending prefix pass places the
			// remainder (at most one extra RB per UE).
			for i := 0; i < len(rb) && left > 0; i++ {
				rb[i]++
				left--
			}
		default: // equal share
			q, r := budget/len(ready), budget%len(ready)
			for i := range ready {
				w := q
				if i < r {
					w++
				}
				rb = append(rb, w)
			}
		}
		c.rbAlloc = rb

		for i, st := range ready {
			rbs := rb[i]
			if rbs < 1 {
				continue
			}
			job, ok := c.newContentionTB(slot, st.idx, st.report, dlSym, rbs)
			if !ok {
				continue
			}
			if a, ok := c.deliver(slot, st.idx, job, st.sample.SINRdB); ok {
				res.Allocs = append(res.Allocs, UEAlloc{
					UE: st.idx, Alloc: a, SINRdB: st.sample.SINRdB, CQI: st.report.CQI,
				})
			}
		}
	}

	c.allocs = res.Allocs
	if len(res.Allocs) == 0 {
		res.Allocs = nil
	}
	c.updatePFWindow(res.Allocs)

	// Load coupling: fold this slot's RB utilization into the EMA and
	// periodically mirror it into each UE's channel as the neighbor
	// activity factor. Real co-UEs thus replace the statistical
	// NeighborLoad: a saturated cell sees saturated neighbors.
	granted := 0
	for _, a := range res.Allocs {
		granted += a.Alloc.RBs
	}
	util := float64(granted) / float64(c.cfg.Carrier.NRB)
	c.loadEMA += (util - c.loadEMA) / loadEMAWindow
	if !c.cfg.DisableLoadCoupling && len(c.ues) > 1 && slot%loadPushPeriod == loadPushPeriod-1 {
		for _, u := range c.ues {
			u.ch.SetNeighborLoad(c.loadEMA)
		}
	}
	return res
}

// newContentionTB sizes a fresh transport block for an integer RB grant,
// mirroring the share model's CQI→efficiency→OLLA→MCS chain (no RB
// jitter: the scheduler's split already decides the exact footprint).
//
//detlint:zeroalloc
func (c *Cell) newContentionTB(slot int64, idx int, report ue.Report, symbols, rbs int) (harqJob, bool) {
	cfg := c.cfg.Carrier
	u := c.ues[idx]
	row, err := c.csiCfg.Table.Lookup(report.CQI)
	if err != nil {
		return harqJob{}, false
	}
	eff := row.Efficiency * c.ollaPow(idx)
	mcs := cfg.MCSTable.HighestMCSForEfficiency(eff)
	tbs, err := c.tbs.TBS(symbols, rbs, mcs, report.RI)
	if err != nil {
		return harqJob{}, false
	}
	// A finite-traffic UE does not need its whole policy share for the
	// last TB of a burst: shrink the grant to the backlog (BSR-style),
	// leaving the unused RBs idle this slot — which is exactly the
	// load-dependent utilization the coupling below mirrors out.
	if need := u.buf.BacklogBits(); !u.buf.Full() && need < float64(tbs) && rbs > 1 {
		shrunk := int(math.Ceil(float64(rbs) * need / float64(tbs)))
		if shrunk < 1 {
			shrunk = 1
		}
		if shrunk < rbs {
			if t2, err := c.tbs.TBS(symbols, shrunk, mcs, report.RI); err == nil {
				rbs, tbs = shrunk, t2
			}
		}
	}
	dmrs := cfg.DMRSPerPRB
	if m := phy.SubcarriersPerRB * symbols; dmrs > m {
		dmrs = m
	}
	params := phy.TBSParams{
		Symbols: symbols, DMRSPerPRB: dmrs, PRBs: rbs, Layers: report.RI,
	}
	return harqJob{
		readySlot: slot,
		rank:      report.RI,
		table:     cfg.MCSTable,
		mcs:       mcs,
		rbs:       rbs,
		res:       params.REs(),
		tbs:       tbs,
	}, true
}

// deliver decodes one TB (fresh or retransmission) at the UE's current
// channel state, updating its OLLA offset, HARQ queue and RLC buffer.
//
//detlint:zeroalloc
func (c *Cell) deliver(slot int64, idx int, job harqJob, sinrDB float64) (Alloc, bool) {
	cfg := c.cfg.Carrier
	u := c.ues[idx]
	perLayer := sinrDB - c.amc.layerPenalty(c.csiCfg.LayerPenaltyExp, job.rank)
	perLayer += harqCombineGainDB * float64(job.retx)
	req, err := job.table.RequiredSINRdB(job.mcs)
	if err != nil {
		return Alloc{}, false
	}
	ack := blerAck(u.rng.Float64(), perLayer, req)
	if !cfg.DisableOLLA {
		if ack {
			c.olla[idx] += 0.05 * cfg.TargetBLER / (1 - cfg.TargetBLER)
		} else {
			c.olla[idx] -= 0.05
		}
		c.olla[idx] = math.Max(-6, math.Min(3, c.olla[idx]))
	}
	delivered := 0
	if ack {
		delivered = u.buf.Drain(job.tbs)
	} else if !cfg.DisableHARQ && int(job.retx) < cfg.MaxHARQRetx {
		u.harq = append(u.harq, harqJob{
			readySlot: slot + int64(cfg.HARQRTTSlots),
			retx:      job.retx + 1,
			rank:      job.rank,
			table:     job.table,
			mcs:       job.mcs,
			rbs:       job.rbs,
			res:       job.res,
			tbs:       job.tbs,
		})
	}
	if obs.Enabled() {
		obs.Sim.MCS.Observe(float64(job.mcs))
		obs.Sim.Rank.Observe(float64(job.rank))
		obs.Sim.HARQRetx.Observe(float64(job.retx))
		if ack {
			obs.Sim.TBAcks.Inc()
		} else {
			obs.Sim.TBNacks.Inc()
		}
	}
	return Alloc{
		RBs: job.rbs, REs: job.res, Table: job.table, MCS: job.mcs,
		Rank: job.rank, TBSBits: job.tbs, HARQRetx: job.retx, ACK: ack,
		DeliveredBits: delivered,
	}, true
}

// popReadyFit pops the first queued job that is both RTT-ready and fits
// the remaining RB budget. Jobs too large for this slot's leftovers stay
// queued — next slot's budget starts fresh at NRB, so they always fit
// eventually (rbs ≤ NRB by construction).
//
//detlint:zeroalloc
func popReadyFit(queue *[]harqJob, slot int64, maxRBs int) (harqJob, bool) {
	q := *queue
	for i := range q {
		if q[i].readySlot <= slot && q[i].rbs <= maxRBs {
			j := q[i]
			*queue = append(q[:i], q[i+1:]...)
			return j, true
		}
	}
	return harqJob{}, false
}

// LoadEMA returns the smoothed RB-utilization the load coupling mirrors
// into the UEs' channels (0 until traffic flows).
func (c *Cell) LoadEMA() float64 { return c.loadEMA }
