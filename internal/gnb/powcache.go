package gnb

import "math"

// powCache is a direct-mapped memo for 10^(dB/10) keyed by the argument's
// exact float bits. The OLLA offset it serves moves by a small ack/nack
// increment on every transport block, so at the outer loop's equilibrium
// (ack rate ≈ 1−TargetBLER, zero drift) the walk revisits recent values
// about half the time but almost never sits still — a single-entry memo
// misses every probe, while a few hundred direct-mapped slots capture
// most of the revisits. A collision or first visit recomputes with the
// exact math.Pow expression the inline code used, so every returned value
// is bit-identical to an unmemoized evaluation.
//
// The table is sized for the number of independent OLLA walks hashing
// into it: a Carrier owns one walk, a Cell owns one per UE, and the
// revisit locality that makes the memo pay is per walk. Sizing at 64
// slots per walk (512 minimum) keeps the effective per-walk capacity
// roughly constant from a single link up to population-scale cells
// instead of letting hundreds of interleaved walks thrash a fixed table.
//
// The zero key is live: Float64bits(0) == 0, and 10^(0/10) == 1, so the
// constructor fills every slot with {bits: 0, val: 1} and the cache needs
// no occupancy bits. Owners are single-threaded, so there is no
// synchronization.
type powCache struct {
	entries []powEntry
	mask    uint64
}

type powEntry struct {
	bits uint64
	val  float64
}

// newPowCache builds a cache sized for the given number of independent
// OLLA walks (see type comment).
func newPowCache(walks int) powCache {
	size := 512
	for size < 64*walks {
		size *= 2
	}
	entries := make([]powEntry, size)
	for i := range entries {
		entries[i].val = 1
	}
	return powCache{entries: entries, mask: uint64(size - 1)}
}

// pow10 returns 10^(db/10), memoized.
//
//detlint:zeroalloc
func (p *powCache) pow10(db float64) float64 {
	bits := math.Float64bits(db)
	e := &p.entries[(bits^bits>>17^bits>>33)&p.mask]
	if e.bits != bits {
		e.bits = bits
		e.val = math.Pow(10, db/10)
	}
	return e.val
}
