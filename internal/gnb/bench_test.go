package gnb

import (
	"testing"

	"github.com/midband5g/midband/internal/channel"
	"github.com/midband5g/midband/internal/phy"
	"github.com/midband5g/midband/internal/tdd"
)

func benchCarrierConfig() CarrierConfig {
	return CarrierConfig{
		Label:      "bench/90MHz",
		Numerology: phy.Mu1,
		NRB:        245,
		Pattern:    tdd.MustParse("DDDDDDDSUU"),
		MCSTable:   phy.MCSTable256QAM,
		Channel: channel.Config{
			CarrierFreqMHz:           3500,
			Route:                    channel.Stationary(channel.Point{X: 450}),
			Deployment:               channel.Deployment{Sites: []channel.Point{{}}, TxPowerDBmPerRE: 18},
			OtherCellInterferenceDBm: -100,
			ShadowSigmaDB:            2,
			FastSigmaDB:              1.2,
		},
		ULSINROffsetDB: 6,
		ULMaxRank:      2,
		Seed:           77,
	}
}

var sinkSlot SlotResult

// BenchmarkCarrierStep is the full per-slot scheduler path: channel step,
// CSI loop, AMC, TBS, BLER draw, HARQ bookkeeping.
func BenchmarkCarrierStep(b *testing.B) {
	c, err := NewCarrier(benchCarrierConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkSlot = c.Step(FullBuffer, FullBuffer)
	}
}

// TestCarrierStepAllocs pins the steady-state slot loop at zero
// allocations per Step: after warm-up (CSI queue and HARQ queues at
// their working size), scheduling a slot must not touch the allocator.
func TestCarrierStepAllocs(t *testing.T) {
	c, err := NewCarrier(benchCarrierConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20_000; i++ {
		c.Step(FullBuffer, FullBuffer)
	}
	allocs := testing.AllocsPerRun(5000, func() {
		sinkSlot = c.Step(FullBuffer, FullBuffer)
	})
	if allocs > 0 {
		t.Errorf("Carrier.Step allocates %.3f objects/slot in steady state, want 0", allocs)
	}
}

// BenchmarkCellMultiUE is the contention-model slot path with four UEs on
// one cell under proportional fair: per-UE channel + CSI steps, HARQ
// queues, integer-RB PF split, TB sizing and delivery.
func BenchmarkCellMultiUE(b *testing.B) {
	cell, err := NewCell(CellConfig{
		Carrier: benchCarrierConfig(),
		UEs:     []channel.Point{{X: 120}, {X: 300}, {X: 480}, {X: 650}},
		Policy:  SchedulerProportionalFair,
		Model:   CellModelContention,
		Seed:    31,
	})
	if err != nil {
		b.Fatal(err)
	}
	var sink CellSlot
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink = cell.Step()
	}
	_ = sink
}

// TestCellStepAllocs pins the multi-UE scheduler's steady-state slot loop
// at zero allocations, across all three policies.
func TestCellStepAllocs(t *testing.T) {
	for _, policy := range []SchedulerPolicy{SchedulerEqualShare, SchedulerProportionalFair, SchedulerMaxRate} {
		t.Run(policy.String(), func(t *testing.T) {
			cell, err := NewCell(CellConfig{
				Carrier: benchCarrierConfig(),
				UEs:     []channel.Point{{X: 120}, {X: 650}},
				Policy:  policy,
				Seed:    31,
			})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 20_000; i++ {
				cell.Step()
			}
			allocs := testing.AllocsPerRun(5000, func() {
				cell.Step()
			})
			if allocs > 0 {
				t.Errorf("Cell.Step (%v) allocates %.3f objects/slot in steady state, want 0", policy, allocs)
			}
		})
	}
}

// TestCellContentionStepAllocs pins the contention model's steady-state
// slot loop at zero allocations across all four policies. HARQ queues and
// scratch slices reach their working size during warm-up; after that a
// slot must not touch the allocator.
func TestCellContentionStepAllocs(t *testing.T) {
	for _, policy := range []SchedulerPolicy{
		SchedulerEqualShare, SchedulerProportionalFair, SchedulerMaxRate, SchedulerRoundRobin,
	} {
		t.Run(policy.String(), func(t *testing.T) {
			cell, err := NewCell(CellConfig{
				Carrier: benchCarrierConfig(),
				UEs:     []channel.Point{{X: 120}, {X: 300}, {X: 480}, {X: 650}},
				Policy:  policy,
				Model:   CellModelContention,
				Seed:    31,
			})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 20_000; i++ {
				cell.Step()
			}
			allocs := testing.AllocsPerRun(5000, func() {
				cell.Step()
			})
			if allocs > 0 {
				t.Errorf("Cell.Step contention (%v) allocates %.3f objects/slot in steady state, want 0", policy, allocs)
			}
		})
	}
}
