package gnb

import (
	"fmt"
	"testing"

	"github.com/midband5g/midband/internal/channel"
	"github.com/midband5g/midband/internal/phy"
	"github.com/midband5g/midband/internal/tdd"
)

func benchCarrierConfig() CarrierConfig {
	return CarrierConfig{
		Label:      "bench/90MHz",
		Numerology: phy.Mu1,
		NRB:        245,
		Pattern:    tdd.MustParse("DDDDDDDSUU"),
		MCSTable:   phy.MCSTable256QAM,
		Channel: channel.Config{
			CarrierFreqMHz:           3500,
			Route:                    channel.Stationary(channel.Point{X: 450}),
			Deployment:               channel.Deployment{Sites: []channel.Point{{}}, TxPowerDBmPerRE: 18},
			OtherCellInterferenceDBm: -100,
			ShadowSigmaDB:            2,
			FastSigmaDB:              1.2,
		},
		ULSINROffsetDB: 6,
		ULMaxRank:      2,
		Seed:           77,
	}
}

var sinkSlot SlotResult

// BenchmarkCarrierStep is the full per-slot scheduler path: channel step,
// CSI loop, AMC, TBS, BLER draw, HARQ bookkeeping.
func BenchmarkCarrierStep(b *testing.B) {
	c, err := NewCarrier(benchCarrierConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkSlot = c.Step(FullBuffer, FullBuffer)
	}
}

// TestCarrierStepAllocs pins the steady-state slot loop at zero
// allocations per Step: after warm-up (CSI queue and HARQ queues at
// their working size), scheduling a slot must not touch the allocator.
func TestCarrierStepAllocs(t *testing.T) {
	c, err := NewCarrier(benchCarrierConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20_000; i++ {
		c.Step(FullBuffer, FullBuffer)
	}
	allocs := testing.AllocsPerRun(5000, func() {
		sinkSlot = c.Step(FullBuffer, FullBuffer)
	})
	if allocs > 0 {
		t.Errorf("Carrier.Step allocates %.3f objects/slot in steady state, want 0", allocs)
	}
}

// benchUEs lays n UEs on a deterministic grid across the cell so every
// population size in the BenchmarkCellMultiUE family sees the same mix
// of near, mid and edge channel geometries.
func benchUEs(n int) []channel.Point {
	pts := make([]channel.Point, n)
	for i := range pts {
		pts[i] = channel.Point{X: 80 + float64(i%16)*55, Y: float64(i/16) * 45}
	}
	return pts
}

// BenchmarkCellMultiUE is the contention-model slot path under
// proportional fair — per-UE channel + CSI steps, HARQ queues,
// integer-RB PF split, TB sizing and delivery — swept over population
// sizes on the batched SoA engine. Each size reports ns/UE-slot, the
// per-UE cost of one scheduled slot; the curve should bend DOWN as the
// population grows (shared per-slot work amortizes), which is what the
// bench gate watches.
func BenchmarkCellMultiUE(b *testing.B) {
	for _, n := range []int{4, 16, 64, 256} {
		b.Run(fmt.Sprintf("ues=%d", n), func(b *testing.B) {
			cell, err := NewCell(CellConfig{
				Carrier: benchCarrierConfig(),
				UEs:     benchUEs(n),
				Policy:  SchedulerProportionalFair,
				Model:   CellModelContention,
				Seed:    31,
			})
			if err != nil {
				b.Fatal(err)
			}
			batch, err := NewCellBatch(cell)
			if err != nil {
				b.Fatal(err)
			}
			var sink CellSlot
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sink = batch.Step()
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(n), "ns/UE-slot")
			_ = sink
		})
	}
}

// TestCellStepAllocs pins the multi-UE scheduler's steady-state slot loop
// at zero allocations, across all three policies.
func TestCellStepAllocs(t *testing.T) {
	for _, policy := range []SchedulerPolicy{SchedulerEqualShare, SchedulerProportionalFair, SchedulerMaxRate} {
		t.Run(policy.String(), func(t *testing.T) {
			cell, err := NewCell(CellConfig{
				Carrier: benchCarrierConfig(),
				UEs:     []channel.Point{{X: 120}, {X: 650}},
				Policy:  policy,
				Seed:    31,
			})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 20_000; i++ {
				cell.Step()
			}
			allocs := testing.AllocsPerRun(5000, func() {
				cell.Step()
			})
			if allocs > 0 {
				t.Errorf("Cell.Step (%v) allocates %.3f objects/slot in steady state, want 0", policy, allocs)
			}
		})
	}
}

// TestCellContentionStepAllocs pins the contention model's steady-state
// slot loop at zero allocations across all four policies. HARQ queues and
// scratch slices reach their working size during warm-up; after that a
// slot must not touch the allocator.
func TestCellContentionStepAllocs(t *testing.T) {
	for _, policy := range []SchedulerPolicy{
		SchedulerEqualShare, SchedulerProportionalFair, SchedulerMaxRate, SchedulerRoundRobin,
	} {
		t.Run(policy.String(), func(t *testing.T) {
			cell, err := NewCell(CellConfig{
				Carrier: benchCarrierConfig(),
				UEs:     []channel.Point{{X: 120}, {X: 300}, {X: 480}, {X: 650}},
				Policy:  policy,
				Model:   CellModelContention,
				Seed:    31,
			})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 20_000; i++ {
				cell.Step()
			}
			allocs := testing.AllocsPerRun(5000, func() {
				cell.Step()
			})
			if allocs > 0 {
				t.Errorf("Cell.Step contention (%v) allocates %.3f objects/slot in steady state, want 0", policy, allocs)
			}
		})
	}
}
