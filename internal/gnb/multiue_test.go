package gnb

import (
	"testing"

	"github.com/midband5g/midband/internal/channel"
)

// contentionConfig is testCellConfig with the full contention model armed.
func contentionConfig(t *testing.T, policy SchedulerPolicy, ues []channel.Point) CellConfig {
	t.Helper()
	cfg := testCellConfig(t, policy, ues)
	cfg.Model = CellModelContention
	return cfg
}

func TestContentionDeterminism(t *testing.T) {
	ues := []channel.Point{{X: 0, Y: 45}, {X: 0, Y: 90}, {X: 0, Y: 117}, {X: 0, Y: 150}}
	run := func() []CellSlot {
		cell, err := NewCell(contentionConfig(t, SchedulerProportionalFair, ues))
		if err != nil {
			t.Fatal(err)
		}
		out := make([]CellSlot, 0, 4000)
		for i := 0; i < 4000; i++ {
			res := cell.Step()
			// Deep-copy the allocs: the slice is owned by the cell.
			res.Allocs = append([]UEAlloc(nil), res.Allocs...)
			out = append(out, res)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if len(a[i].Allocs) != len(b[i].Allocs) {
			t.Fatalf("slot %d: %d vs %d allocs", i, len(a[i].Allocs), len(b[i].Allocs))
		}
		for j := range a[i].Allocs {
			if a[i].Allocs[j] != b[i].Allocs[j] {
				t.Fatalf("slot %d alloc %d: %+v vs %+v", i, j, a[i].Allocs[j], b[i].Allocs[j])
			}
		}
	}
}

func TestContentionHARQRecovers(t *testing.T) {
	// A far UE with a marginal link NACKs often enough that HARQ
	// retransmissions must both occur and succeed.
	ues := []channel.Point{{X: 0, Y: 45}, {X: 0, Y: 160}}
	cell, err := NewCell(contentionConfig(t, SchedulerProportionalFair, ues))
	if err != nil {
		t.Fatal(err)
	}
	var retxSent, retxDelivered int
	for i := 0; i < 40000; i++ {
		for _, a := range cell.Step().Allocs {
			if int(a.Alloc.HARQRetx) > cell.cfg.Carrier.MaxHARQRetx {
				t.Fatalf("slot %d: retx %d exceeds cap %d", i, a.Alloc.HARQRetx, cell.cfg.Carrier.MaxHARQRetx)
			}
			if a.Alloc.HARQRetx > 0 {
				retxSent++
				if a.Alloc.ACK {
					retxDelivered++
				}
			}
		}
	}
	if retxSent == 0 {
		t.Fatal("no HARQ retransmissions in 40000 slots; link should NACK sometimes")
	}
	if retxDelivered == 0 {
		t.Error("HARQ retransmissions never delivered; combining gain should help")
	}
}

func TestContentionRoundRobinRotates(t *testing.T) {
	// Four equidistant full-buffer UEs: RR must hand each the same share
	// of scheduled slots (and therefore roughly the same RB count).
	ues := []channel.Point{{X: 0, Y: 90}, {X: 90, Y: 0}, {X: 0, Y: -90}, {X: -90, Y: 0}}
	cell, err := NewCell(contentionConfig(t, SchedulerRoundRobin, ues))
	if err != nil {
		t.Fatal(err)
	}
	slots := make([]float64, len(ues))
	for i := 0; i < 40000; i++ {
		for _, a := range cell.Step().Allocs {
			if a.Alloc.HARQRetx == 0 {
				slots[a.UE]++
			}
		}
	}
	var total float64
	for _, s := range slots {
		total += s
	}
	for i, s := range slots {
		share := s / total
		if share < 0.2 || share > 0.3 {
			t.Errorf("UE %d fresh-grant share %.3f, want ≈ 0.25", i, share)
		}
	}
}

func TestContentionLoadCoupling(t *testing.T) {
	// A saturated cell should push its own RB utilization into the UEs'
	// channels as the neighbor activity factor, raising interference
	// above the statistical default (0.1) and costing goodput.
	ues := []channel.Point{{X: 0, Y: 45}, {X: 0, Y: 117}}
	run := func(disable bool) (bits float64, load float64) {
		cfg := contentionConfig(t, SchedulerProportionalFair, ues)
		cfg.DisableLoadCoupling = disable
		// testCellConfig has no neighbor sites, so the activity factor
		// would have nothing to scale; give the UEs two real neighbors.
		cfg.Carrier.Channel.Deployment.Sites = []channel.Point{{}, {X: 500}, {X: -500}}
		cell, err := NewCell(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 40000; i++ {
			for _, a := range cell.Step().Allocs {
				bits += float64(a.Alloc.DeliveredBits)
			}
		}
		return bits, cell.ues[0].ch.NeighborLoad()
	}
	coupled, coupledLoad := run(false)
	isolated, isolatedLoad := run(true)
	if coupledLoad <= 0.1 {
		t.Errorf("coupled neighbor load = %.3f, want > statistical default 0.1", coupledLoad)
	}
	if isolatedLoad != 0.1 {
		t.Errorf("DisableLoadCoupling left neighbor load at %.3f, want untouched 0.1", isolatedLoad)
	}
	if coupled >= isolated {
		t.Errorf("load coupling should cost goodput: coupled %.0f ≥ isolated %.0f bits", coupled, isolated)
	}
}

func TestContentionFiniteTraffic(t *testing.T) {
	// A lightly loaded UE must be served ≈ its offered rate while the
	// full-buffer co-UE absorbs the slack.
	const offeredMbps = 5.0
	ues := []channel.Point{{X: 0, Y: 45}, {X: 0, Y: 60}}
	cfg := contentionConfig(t, SchedulerProportionalFair, ues)
	cfg.Traffic = []UETraffic{{OfferedMbps: offeredMbps}, {}}
	cell, err := NewCell(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const slots = 40000
	bits := make([]float64, len(ues))
	for i := 0; i < slots; i++ {
		for _, a := range cell.Step().Allocs {
			bits[a.UE] += float64(a.Alloc.DeliveredBits)
		}
	}
	secs := float64(slots) * cell.SlotDuration().Seconds()
	lightMbps := bits[0] / secs / 1e6
	if lightMbps < 0.7*offeredMbps || lightMbps > 1.1*offeredMbps {
		t.Errorf("finite-traffic UE served %.1f Mbps, want ≈ offered %.1f", lightMbps, offeredMbps)
	}
	if bits[1] < 5*bits[0] {
		t.Errorf("full-buffer co-UE should absorb the slack: %.0f vs %.0f bits", bits[1], bits[0])
	}
}

func TestContentionTrafficValidation(t *testing.T) {
	ues := []channel.Point{{X: 0, Y: 45}, {X: 0, Y: 60}}
	cfg := contentionConfig(t, SchedulerProportionalFair, ues)
	cfg.Traffic = []UETraffic{{OfferedMbps: 5}}
	if _, err := NewCell(cfg); err == nil {
		t.Error("traffic/UE length mismatch should fail")
	}
	cfg = testCellConfig(t, SchedulerProportionalFair, ues)
	cfg.Traffic = []UETraffic{{OfferedMbps: 5}, {}}
	if _, err := NewCell(cfg); err == nil {
		t.Error("traffic on the share model should fail")
	}
}

func TestParsePolicy(t *testing.T) {
	cases := map[string]SchedulerPolicy{
		"eq": SchedulerEqualShare, "equal-share": SchedulerEqualShare,
		"pf": SchedulerProportionalFair, "Proportional-Fair": SchedulerProportionalFair,
		"mt": SchedulerMaxRate, "mr": SchedulerMaxRate, "max-rate": SchedulerMaxRate,
		"rr": SchedulerRoundRobin, "round-robin": SchedulerRoundRobin,
	}
	for in, want := range cases {
		got, err := ParsePolicy(in)
		if err != nil || got != want {
			t.Errorf("ParsePolicy(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParsePolicy("wfq"); err == nil {
		t.Error("unknown policy should fail")
	}
}

func TestCellModelString(t *testing.T) {
	if CellModelShare.String() != "share" || CellModelContention.String() != "contention" {
		t.Error("cell model strings wrong")
	}
}
