package gnb

import (
	"math"
	"testing"

	"github.com/midband5g/midband/internal/channel"
	"github.com/midband5g/midband/internal/phy"
	"github.com/midband5g/midband/internal/tdd"
)

// testCarrier returns a 90 MHz n78-style carrier with a channel that sits
// around 20 dB SINR — the regime where 64QAM dominates and rank 4 is common.
func testCarrier(t *testing.T, mutate func(*CarrierConfig)) *Carrier {
	t.Helper()
	cfg := CarrierConfig{
		Label:      "test/90MHz",
		Numerology: phy.Mu1,
		NRB:        245,
		Pattern:    tdd.MustParse("DDDDDDDSUU"),
		MCSTable:   phy.MCSTable256QAM,
		Channel: channel.Config{
			CarrierFreqMHz:           3500,
			Route:                    channel.Stationary(channel.Point{X: 450}),
			Deployment:               channel.Deployment{Sites: []channel.Point{{}}, TxPowerDBmPerRE: 18},
			OtherCellInterferenceDBm: -100,
			ShadowSigmaDB:            2,
			FastSigmaDB:              1.2,
		},
		ULSINROffsetDB: 6,
		ULMaxRank:      2,
		Seed:           77,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	c, err := NewCarrier(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// runDL simulates n slots of full-buffer DL and returns aggregate stats.
type runStats struct {
	dlBits, ulBits   float64
	dlSlots, ulSlots int
	dlErr            int
	rbs              []float64
	ranks            []float64
	mods             []phy.Modulation
	retx             int
	seconds          float64
}

func run(c *Carrier, slots int, dl, ul Demand) runStats {
	var s runStats
	for i := 0; i < slots; i++ {
		r := c.Step(dl, ul)
		if r.DL != nil {
			s.dlSlots++
			s.dlBits += float64(r.DL.DeliveredBits)
			s.rbs = append(s.rbs, float64(r.DL.RBs))
			s.ranks = append(s.ranks, float64(r.DL.Rank))
			s.mods = append(s.mods, r.DL.Modulation())
			if !r.DL.ACK {
				s.dlErr++
			}
			if r.DL.HARQRetx > 0 {
				s.retx++
			}
		}
		if r.UL != nil {
			s.ulSlots++
			s.ulBits += float64(r.UL.DeliveredBits)
		}
	}
	s.seconds = float64(slots) * c.SlotDuration().Seconds()
	return s
}

func (s runStats) dlMbps() float64 { return s.dlBits / s.seconds / 1e6 }
func (s runStats) ulMbps() float64 { return s.ulBits / s.seconds / 1e6 }

func TestCarrierDeterminism(t *testing.T) {
	a := testCarrier(t, nil)
	b := testCarrier(t, nil)
	for i := 0; i < 5000; i++ {
		ra, rb := a.Step(FullBuffer, FullBuffer), b.Step(FullBuffer, FullBuffer)
		if (ra.DL == nil) != (rb.DL == nil) || (ra.DL != nil && *ra.DL != *rb.DL) {
			t.Fatalf("slot %d: DL diverged", i)
		}
		if (ra.UL == nil) != (rb.UL == nil) || (ra.UL != nil && *ra.UL != *rb.UL) {
			t.Fatalf("slot %d: UL diverged", i)
		}
	}
}

func TestCarrierDLThroughputPlausible(t *testing.T) {
	c := testCarrier(t, nil)
	s := run(c, 60000, FullBuffer, Demand{}) // 30 s
	mbps := s.dlMbps()
	// A 90 MHz mid-band carrier at ~20 dB SINR delivers hundreds of Mbps,
	// bounded by the §3.2 theoretical max.
	if mbps < 300 || mbps > 1400 {
		t.Errorf("DL throughput = %.0f Mbps, want within [300, 1400]", mbps)
	}
	maxMbps := c.TheoreticalMaxMbps(true)
	if mbps >= maxMbps {
		t.Errorf("measured %.0f Mbps exceeds theoretical max %.0f", mbps, maxMbps)
	}
	// DL slots follow the TDD pattern: 7 D + 1 S out of 10.
	frac := float64(s.dlSlots) / 60000
	if frac < 0.70 || frac > 0.85 {
		t.Errorf("DL-scheduled slot fraction = %.2f, want ≈ 0.8", frac)
	}
}

func TestCarrierNearMaxRBs(t *testing.T) {
	c := testCarrier(t, nil)
	s := run(c, 20000, FullBuffer, Demand{})
	mean := 0.0
	for _, rb := range s.rbs {
		mean += rb
	}
	mean /= float64(len(s.rbs))
	// Fig. 4: full-buffer load drives allocations close to N_RB.
	if mean < 0.9*245 || mean > 245 {
		t.Errorf("mean RB allocation = %.0f, want ≈ 245", mean)
	}
}

func TestCarrierBLERNearTarget(t *testing.T) {
	c := testCarrier(t, nil)
	s := run(c, 120000, FullBuffer, Demand{})
	bler := float64(s.dlErr) / float64(s.dlSlots)
	if bler < 0.02 || bler > 0.25 {
		t.Errorf("DL BLER = %.3f, want near the 0.10 OLLA target", bler)
	}
	if s.retx == 0 {
		t.Error("HARQ retransmissions should occur")
	}
}

func TestCarrierOLLAAblation(t *testing.T) {
	on := run(testCarrier(t, nil), 80000, FullBuffer, Demand{})
	off := run(testCarrier(t, func(c *CarrierConfig) { c.DisableOLLA = true }),
		80000, FullBuffer, Demand{})
	blerOn := float64(on.dlErr) / float64(on.dlSlots)
	blerOff := float64(off.dlErr) / float64(off.dlSlots)
	// Without the outer loop the stale-CQI mismatch goes uncorrected.
	if math.Abs(blerOn-0.10) > math.Abs(blerOff-0.10) {
		t.Errorf("OLLA should pull BLER toward target: on=%.3f off=%.3f", blerOn, blerOff)
	}
}

func TestCarrierMCSTableEffect(t *testing.T) {
	// The §4.1 Spain finding: at equal bandwidth and channel, the 64QAM
	// table caps spectral efficiency and loses throughput.
	hi := run(testCarrier(t, func(c *CarrierConfig) {
		c.Channel.SINRBiasDB = 6 // strong channel where 256QAM matters
	}), 60000, FullBuffer, Demand{})
	lo := run(testCarrier(t, func(c *CarrierConfig) {
		c.Channel.SINRBiasDB = 6
		c.MCSTable = phy.MCSTable64QAM
	}), 60000, FullBuffer, Demand{})
	if hi.dlMbps() <= lo.dlMbps() {
		t.Errorf("256QAM table (%.0f Mbps) should beat 64QAM table (%.0f Mbps)",
			hi.dlMbps(), lo.dlMbps())
	}
	for _, m := range lo.mods {
		if m == phy.QAM256 {
			t.Fatal("64QAM-table carrier transmitted 256QAM")
		}
	}
}

func TestCarrierRankTracksDeploymentQuality(t *testing.T) {
	rankShare := func(bias float64) float64 {
		s := run(testCarrier(t, func(c *CarrierConfig) { c.Channel.SINRBiasDB = bias }),
			40000, FullBuffer, Demand{})
		four := 0
		for _, r := range s.ranks {
			if r == 4 {
				four++
			}
		}
		return float64(four) / float64(len(s.ranks))
	}
	good, poor := rankShare(4), rankShare(-6)
	if good <= poor {
		t.Errorf("better coverage should raise rank-4 share: good=%.2f poor=%.2f", good, poor)
	}
	if good < 0.5 {
		t.Errorf("good coverage rank-4 share = %.2f, want well above half", good)
	}
}

func TestCarrierShareSplitsThroughput(t *testing.T) {
	// Fig. 14: two simultaneous UEs each get ≈ half the RBs and half the
	// throughput, with channel quality unchanged.
	full := run(testCarrier(t, nil), 60000, FullBuffer, Demand{})
	half := run(testCarrier(t, nil), 60000, Demand{Active: true, Share: 0.5}, Demand{})
	ratio := half.dlMbps() / full.dlMbps()
	if ratio < 0.40 || ratio > 0.62 {
		t.Errorf("half-share throughput ratio = %.2f, want ≈ 0.5", ratio)
	}
}

func TestCarrierULBelowDL(t *testing.T) {
	c := testCarrier(t, nil)
	s := run(c, 60000, FullBuffer, FullBuffer)
	if s.ulMbps() <= 0 {
		t.Fatal("UL throughput should be positive")
	}
	// §4.2: UL sits far below DL (TDD slot split + power deficit).
	if s.ulMbps() > 0.35*s.dlMbps() {
		t.Errorf("UL %.0f Mbps vs DL %.0f Mbps: asymmetry too small", s.ulMbps(), s.dlMbps())
	}
	// UL slots are the 2 U slots out of 10.
	frac := float64(s.ulSlots) / 60000
	if frac < 0.15 || frac > 0.25 {
		t.Errorf("UL slot fraction = %.2f, want ≈ 0.2", frac)
	}
}

func TestCarrierFDDSchedulesEverySlot(t *testing.T) {
	c := testCarrier(t, func(cfg *CarrierConfig) {
		cfg.FDD = true
		cfg.Pattern = tdd.Pattern{}
		cfg.Numerology = phy.Mu0
		cfg.NRB = 106
	})
	s := run(c, 20000, FullBuffer, FullBuffer)
	// After CSI warm-up every slot carries both directions.
	if float64(s.dlSlots) < 0.95*20000 || float64(s.ulSlots) < 0.95*20000 {
		t.Errorf("FDD should schedule nearly every slot: dl=%d ul=%d", s.dlSlots, s.ulSlots)
	}
}

func TestCarrierValidation(t *testing.T) {
	bad := []func(*CarrierConfig){
		func(c *CarrierConfig) { c.NRB = 0 },
		func(c *CarrierConfig) { c.Pattern = tdd.Pattern{} },
		func(c *CarrierConfig) { c.MCSTable = 9 },
		func(c *CarrierConfig) { c.TargetBLER = 1.5 },
		func(c *CarrierConfig) { c.ULRBFraction = 2 },
		func(c *CarrierConfig) { c.Channel.CarrierFreqMHz = 0 },
	}
	for i, mutate := range bad {
		cfg := CarrierConfig{
			Label:      "bad",
			Numerology: phy.Mu1,
			NRB:        245,
			Pattern:    tdd.MustParse("DDDSU"),
			MCSTable:   phy.MCSTable256QAM,
			Channel: channel.Config{
				CarrierFreqMHz: 3500,
				Route:          channel.Stationary(channel.Point{}),
				Deployment:     channel.Deployment{Sites: []channel.Point{{}}, TxPowerDBmPerRE: 18},
			},
		}
		mutate(&cfg)
		if _, err := NewCarrier(cfg); err == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
}

func TestTheoreticalMaxMatchesPaper(t *testing.T) {
	// Configured like the Spanish 90 MHz carriers, the carrier's own
	// theoretical max reproduces the §3.2 value for Qm=6.
	c := testCarrier(t, func(cfg *CarrierConfig) {
		cfg.MCSTable = phy.MCSTable64QAM
	})
	got := c.TheoreticalMaxMbps(true)
	if math.Abs(got-1213.44) > 0.01 {
		t.Errorf("theoretical max = %.2f, want 1213.44", got)
	}
	// Without duty derating it is the raw TS 38.306 number.
	raw := c.TheoreticalMaxMbps(false)
	if raw <= got {
		t.Error("raw bound should exceed duty-derated bound")
	}
}

func TestCarrierHARQAblation(t *testing.T) {
	with := run(testCarrier(t, nil), 60000, FullBuffer, Demand{})
	without := run(testCarrier(t, func(c *CarrierConfig) { c.DisableHARQ = true }),
		60000, FullBuffer, Demand{})
	if without.retx != 0 {
		t.Error("HARQ-disabled carrier should never retransmit")
	}
	if with.retx == 0 {
		t.Error("HARQ-enabled carrier should retransmit")
	}
}

func TestCarrierModulationMix(t *testing.T) {
	// In the calibrated regime the paper's Fig. 5 shape holds: 64QAM
	// dominates, 256QAM appears but rarely.
	s := run(testCarrier(t, nil), 80000, FullBuffer, Demand{})
	counts := map[phy.Modulation]int{}
	for _, m := range s.mods {
		counts[m]++
	}
	total := float64(len(s.mods))
	q64 := float64(counts[phy.QAM64]) / total
	q256 := float64(counts[phy.QAM256]) / total
	if q64 < 0.5 {
		t.Errorf("64QAM share = %.2f, should dominate", q64)
	}
	if q256 > 0.4 {
		t.Errorf("256QAM share = %.2f, should be the minority", q256)
	}
}

// TestCarrierHandoverInterruptionDefaults pins the zero-value semantics
// of the interruption knob: the bool makes "no interruption" expressible
// without hijacking the 0 ⇒ 100-slot default.
func TestCarrierHandoverInterruptionDefaults(t *testing.T) {
	cases := []struct {
		name    string
		slots   int
		disable bool
		want    int
	}{
		{"zero value defaults to 100", 0, false, 100},
		{"explicit value preserved", 37, false, 37},
		{"disabled forces zero", 0, true, 0},
		{"disabled overrides explicit value", 37, true, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := CarrierConfig{
				HandoverInterruptionSlots:   tc.slots,
				DisableHandoverInterruption: tc.disable,
			}
			if got := cfg.withDefaults().HandoverInterruptionSlots; got != tc.want {
				t.Fatalf("HandoverInterruptionSlots = %d, want %d", got, tc.want)
			}
		})
	}
	// End to end: drive a mobile UE across a cell border. With the
	// default interruption, the serving-cell change opens a ≥100-slot
	// data gap; with the knob disabled, scheduling continues through the
	// handover and no such gap can appear.
	drive := func(disable bool) (handovers, maxGap int) {
		c := testCarrier(t, func(c *CarrierConfig) {
			c.DisableHandoverInterruption = disable
			c.Channel.Route = channel.Route{
				Waypoints: []channel.Point{{X: 0}, {X: 2000}},
				SpeedMPS:  50,
			}
			c.Channel.Deployment.Sites = []channel.Point{{}, {X: 1000}}
		})
		serving, lastDL := -2, -1
		for i := 0; i < 40000; i++ {
			r := c.Step(FullBuffer, Demand{})
			if serving != -2 && r.Sample.ServingCell != serving {
				handovers++
			}
			serving = r.Sample.ServingCell
			if r.DL != nil {
				if lastDL >= 0 && i-lastDL > maxGap {
					maxGap = i - lastDL
				}
				lastDL = i
			}
		}
		return handovers, maxGap
	}
	hoOn, gapOn := drive(false)
	hoOff, gapOff := drive(true)
	if hoOn == 0 || hoOff == 0 {
		t.Fatalf("route crossed a cell border but no handover happened (%d/%d)", hoOn, hoOff)
	}
	if gapOn < 100 {
		t.Errorf("default interruption: max DL gap %d slots, want >= the 100-slot window", gapOn)
	}
	if gapOff >= 100 {
		t.Errorf("disabled interruption: max DL gap %d slots — handover still stalls data", gapOff)
	}
}
