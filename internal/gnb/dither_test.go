package gnb

import (
	"testing"

	"github.com/midband5g/midband/internal/analysis"
)

// TestDitherCreatesSlotScaleVariability verifies the per-slot DCI dither
// produces the finest-scale parameter variability the paper's Fig. 12
// measures, and that disabling it removes exactly that component.
func TestDitherCreatesSlotScaleVariability(t *testing.T) {
	collect := func(mutate func(*CarrierConfig)) (vMCS, vRank float64) {
		c := testCarrier(t, mutate)
		var mcs, rank []float64
		for i := 0; i < 40000; i++ {
			r := c.Step(FullBuffer, Demand{})
			if r.DL != nil {
				mcs = append(mcs, float64(r.DL.MCS))
				rank = append(rank, float64(r.DL.Rank))
			}
		}
		vm, err := analysis.Variability(mcs, 1)
		if err != nil {
			t.Fatal(err)
		}
		vr, err := analysis.Variability(rank, 1)
		if err != nil {
			t.Fatal(err)
		}
		return vm, vr
	}
	vOn, rOn := collect(nil)
	vOff, rOff := collect(func(c *CarrierConfig) {
		c.MCSDither = -1
		c.RankDitherProb = -1
	})
	// With ±1 dither the slot-scale MCS variability sits near the paper's
	// Fig. 12 values (V(τ) of a few MCS steps); without it, the MCS only
	// moves at CQI-report boundaries.
	if vOn < 0.5 {
		t.Errorf("dithered slot-scale MCS V = %.2f, want ≥ 0.5", vOn)
	}
	if vOff >= vOn/3 {
		t.Errorf("undithered MCS V = %.2f should be far below dithered %.2f", vOff, vOn)
	}
	if rOn <= rOff {
		t.Errorf("rank dither should raise slot-scale rank V: on=%.3f off=%.3f", rOn, rOff)
	}
}

// TestDitherDoesNotBreakOLLA: the outer loop still holds BLER near target
// with dithering active.
func TestDitherDoesNotBreakOLLA(t *testing.T) {
	c := testCarrier(t, nil)
	errs, n := 0, 0
	for i := 0; i < 120000; i++ {
		r := c.Step(FullBuffer, Demand{})
		if r.DL != nil {
			n++
			if !r.DL.ACK {
				errs++
			}
		}
	}
	bler := float64(errs) / float64(n)
	if bler < 0.02 || bler > 0.3 {
		t.Errorf("BLER with dither = %.3f, should remain near the 10%% target", bler)
	}
}
