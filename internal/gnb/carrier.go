// Package gnb simulates the base-station side of one NR component carrier:
// per-slot scheduling against a TDD pattern, adaptive modulation and coding
// driven by delayed CQI feedback with outer-loop link adaptation, MIMO rank
// adaptation, and HARQ retransmissions. Together with internal/channel and
// internal/ue it generates the slot-level KPI processes whose distributions
// the paper measures in §4 and whose dynamics it measures in §5.
package gnb

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"github.com/midband5g/midband/internal/channel"
	"github.com/midband5g/midband/internal/fault"
	"github.com/midband5g/midband/internal/fleet"
	"github.com/midband5g/midband/internal/obs"
	"github.com/midband5g/midband/internal/phy"
	"github.com/midband5g/midband/internal/tdd"
	"github.com/midband5g/midband/internal/ue"
)

// CarrierConfig describes one component carrier and its radio environment.
type CarrierConfig struct {
	// Label names the carrier in traces (e.g. "n78/90MHz").
	Label string
	// Numerology sets SCS and slot duration.
	Numerology phy.Numerology
	// NRB is the maximum transmission bandwidth in resource blocks.
	NRB int
	// FDD carriers schedule DL and UL every slot; TDD carriers follow
	// Pattern.
	FDD bool
	// Pattern is the TDD UL/DL pattern (ignored for FDD).
	Pattern tdd.Pattern
	// MCSTable is the vendor-configured PDSCH table (256QAM vs 64QAM
	// grade — the §4.1 Orange-Spain-100MHz distinction).
	MCSTable phy.MCSTable
	// CSI configures the UE feedback loop.
	CSI ue.CSIConfig
	// Channel configures the radio environment.
	Channel channel.Config
	// ULSINROffsetDB derates UL SINR relative to DL (UE power limits).
	ULSINROffsetDB float64
	// ULMaxRank caps uplink MIMO layers (typically 1–2).
	ULMaxRank int
	// ULRBFraction is the fraction of NRB granted to UL transmissions.
	ULRBFraction float64
	// PDCCHSymbols is control overhead at the head of DL slots.
	PDCCHSymbols int
	// DMRSPerPRB is the per-PRB DMRS overhead in REs.
	DMRSPerPRB int
	// TargetBLER is the outer-loop link adaptation target.
	TargetBLER float64
	// DisableOLLA turns outer-loop link adaptation off (ablation).
	DisableOLLA bool
	// DisableHARQ turns retransmissions off (ablation): failed TBs are
	// simply lost.
	DisableHARQ bool
	// HARQRTTSlots is the retransmission round trip in slots.
	HARQRTTSlots int
	// MaxHARQRetx bounds retransmissions per TB.
	MaxHARQRetx int
	// RBJitterFrac randomizes the per-slot RB grant slightly, as real
	// schedulers do around the maximum (Fig. 4 shows near-max RBs with a
	// short tail).
	RBJitterFrac float64
	// HandoverInterruptionSlots is the data interruption when the
	// serving cell changes along a route (NR handover execution takes
	// ~50 ms; default 100 slots at 30 kHz). The zero value selects the
	// default; to model instantaneous handovers set
	// DisableHandoverInterruption instead.
	HandoverInterruptionSlots int
	// DisableHandoverInterruption makes a zero interruption expressible:
	// when set, serving-cell changes never interrupt data and
	// HandoverInterruptionSlots is ignored (mirroring the
	// channel.Config.DisableNeighborLoad pattern; the zero value of
	// HandoverInterruptionSlots alone selects the 100-slot default).
	DisableHandoverInterruption bool
	// MCSDither is the ± range of per-slot MCS variation around the
	// link-adaptation point. Real gNBs schedule different sub-bands and
	// re-evaluate per slot, so the DCI-signaled MCS jitters at the
	// finest time scale (§3.1: parameters signaled per slot; the paper's
	// Fig. 12 MCS variability is highest at τ). Default 1; negative
	// disables.
	MCSDither int
	// RankDitherProb is the per-slot probability of scheduling one
	// layer fewer than reported (per-allocation rank adaptation).
	// Default 0.08; negative disables.
	RankDitherProb float64
	// Fault, when non-nil, injects deterministic radio-link failures:
	// data stops for ReestablishSlots (RRC re-establishment) and the
	// CSI loop desyncs and must re-prime. The injector draws from its
	// own seeded RNG, so a nil Fault leaves the scheduler's random
	// sequence untouched.
	Fault *fault.RLF
	// Seed drives scheduler randomness.
	Seed int64
}

func (c CarrierConfig) withDefaults() CarrierConfig {
	if c.ULMaxRank == 0 {
		c.ULMaxRank = 1
	}
	if c.ULRBFraction == 0 {
		c.ULRBFraction = 1
	}
	if c.PDCCHSymbols == 0 {
		// Effective control overhead after PDSCH rate-matching around
		// the CORESET: one symbol for a single-UE full-buffer load.
		c.PDCCHSymbols = 1
	}
	if c.DMRSPerPRB == 0 {
		c.DMRSPerPRB = 12
	}
	if c.TargetBLER == 0 {
		c.TargetBLER = 0.10
	}
	if c.HARQRTTSlots == 0 {
		c.HARQRTTSlots = 8
	}
	if c.MaxHARQRetx == 0 {
		c.MaxHARQRetx = 3
	}
	if c.RBJitterFrac == 0 {
		c.RBJitterFrac = 0.04
	}
	if c.DisableHandoverInterruption {
		c.HandoverInterruptionSlots = 0
	} else if c.HandoverInterruptionSlots == 0 {
		c.HandoverInterruptionSlots = 100
	}
	if c.MCSDither == 0 {
		c.MCSDither = 1
	}
	if c.RankDitherProb == 0 {
		c.RankDitherProb = 0.08
	}
	if c.CSI.Table == 0 {
		if c.MCSTable == phy.MCSTable256QAM {
			c.CSI.Table = phy.CQITable256QAM
		} else {
			c.CSI.Table = phy.CQITable64QAM
		}
	}
	return c
}

// Validate checks the configuration.
func (c CarrierConfig) Validate() error {
	c = c.withDefaults()
	if c.NRB < 1 {
		return fmt.Errorf("gnb: carrier %q NRB %d invalid", c.Label, c.NRB)
	}
	if !c.FDD && c.Pattern.Period() == 0 {
		return fmt.Errorf("gnb: carrier %q is TDD but has no pattern", c.Label)
	}
	if c.MCSTable != phy.MCSTable64QAM && c.MCSTable != phy.MCSTable256QAM {
		return fmt.Errorf("gnb: carrier %q MCS table %d invalid", c.Label, c.MCSTable)
	}
	if c.TargetBLER <= 0 || c.TargetBLER >= 1 {
		return fmt.Errorf("gnb: carrier %q target BLER %g invalid", c.Label, c.TargetBLER)
	}
	if c.ULRBFraction < 0 || c.ULRBFraction > 1 {
		return fmt.Errorf("gnb: carrier %q UL RB fraction %g invalid", c.Label, c.ULRBFraction)
	}
	return nil
}

// Alloc is one scheduled transport block in a slot.
type Alloc struct {
	// RBs and REs are the allocated resources.
	RBs, REs int
	// Table and MCS identify the modulation and coding scheme.
	Table phy.MCSTable
	MCS   uint8
	// Rank is the number of MIMO layers.
	Rank int
	// TBSBits is the transport block size.
	TBSBits int
	// HARQRetx counts prior attempts (0 = initial transmission).
	HARQRetx uint8
	// ACK reports whether the TB decoded.
	ACK bool
	// DeliveredBits is TBSBits on first-time success of the final
	// attempt, else 0.
	DeliveredBits int
}

// Modulation returns the modulation order of the allocation.
func (a Alloc) Modulation() phy.Modulation {
	m, err := a.Table.Lookup(a.MCS)
	if err != nil {
		return 0
	}
	return m.Modulation
}

// SlotResult is everything that happened on the carrier in one slot.
type SlotResult struct {
	// Slot is the slot index; Time its offset from start.
	Slot int64
	Time time.Duration
	// Sample is the radio state.
	Sample channel.Sample
	// CQI is the feedback report in effect at the gNB.
	CQI phy.CQI
	// DL and UL are the scheduled allocations (nil when the slot carries
	// none for that direction).
	DL, UL *Alloc
}

// Demand tells the scheduler whether the UE has traffic and what share of
// the carrier's resources it gets (1 for a lone full-buffer UE; 0.5 each
// for the Fig. 14 two-UE experiment).
type Demand struct {
	Active bool
	Share  float64
}

// FullBuffer is a lone saturating UE.
var FullBuffer = Demand{Active: true, Share: 1}

type harqJob struct {
	readySlot int64
	retx      uint8
	rank      int
	table     phy.MCSTable
	mcs       uint8
	rbs       int
	res       int
	tbs       int
}

// amcDerived holds per-carrier constants of the AMC slot path: the
// layer-split penalties, the UL power/backoff factors and the CQI
// optimism deflation are fixed per session, yet the scheduler used to
// recompute them (pow/log each) for every transport block. They are
// computed once at construction from the exact same expressions, so the
// precomputed path is bit-identical.
type amcDerived struct {
	// layerPenaltyDB[r] = 10·LayerPenaltyExp·log10(r) for rank r.
	layerPenaltyDB [5]float64
	// rankPow[r] = r^LayerPenaltyExp.
	rankPow [5]float64
	// optimismLin = 10^(CQIOptimismDB/10).
	optimismLin float64
	// ulDerateLin = 10^(−ULSINROffsetDB/10).
	ulDerateLin float64
	// ulBackoffLin = 10^(−ulBackoffDB/10).
	ulBackoffLin float64
}

func newAMCDerived(csiCfg ue.CSIConfig, cfg CarrierConfig) amcDerived {
	var a amcDerived
	exp := csiCfg.LayerPenaltyExp
	for r := 1; r < len(a.layerPenaltyDB); r++ {
		a.layerPenaltyDB[r] = 10 * exp * math.Log10(float64(r))
		a.rankPow[r] = math.Pow(float64(r), exp)
	}
	a.optimismLin = math.Pow(10, csiCfg.CQIOptimismDB/10)
	a.ulDerateLin = math.Pow(10, -cfg.ULSINROffsetDB/10)
	a.ulBackoffLin = math.Pow(10, -ulBackoffDB/10)
	return a
}

// layerPenalty returns 10·exp·log10(rank), from the precomputed table for
// the ranks the CSI loop can report.
func (a *amcDerived) layerPenalty(exp float64, rank int) float64 {
	if rank >= 1 && rank < len(a.layerPenaltyDB) {
		return a.layerPenaltyDB[rank]
	}
	return 10 * exp * math.Log10(float64(rank))
}

// rankPowAt returns rank^exp, precomputed for the reportable ranks.
func (a *amcDerived) rankPowAt(exp float64, rank int) float64 {
	if rank >= 1 && rank < len(a.rankPow) {
		return a.rankPow[rank]
	}
	return math.Pow(float64(rank), exp)
}

// Carrier is the per-carrier simulator. Not safe for concurrent use.
type Carrier struct {
	cfg  CarrierConfig
	ch   *channel.Channel
	csi  *ue.CSI
	rng  *rand.Rand
	slot int64

	ollaDB  float64
	harqDL  []harqJob
	harqUL  []harqJob
	serving int   // last serving cell (-1 before first sample)
	hoUntil int64 // data interrupted until this slot (handover execution)
	dlAlloc Alloc // reused storage for SlotResult.DL
	ulAlloc Alloc

	rlf      *fault.RLFState
	rlfUntil int64 // data interrupted until this slot (RRC re-establishment)
	rlfCount int64

	// Slot-path constants (see amcDerived).
	slotDur time.Duration
	csiCfg  ue.CSIConfig // csi.Config(), cached to avoid per-TB copies
	amc     amcDerived
	tbs     *phy.TBSCache
	maxMCS  int // cfg.MCSTable.MaxIndex(), hoisted off the dither path

	// pow memoizes 10^(ollaDB/10) over the outer loop's recent values
	// (see powCache); misses recompute with the exact expression newTB
	// used inline, so the memo is bit-identical.
	pow powCache

	// effByCQI hoists the CSI table's CQI→spectral-efficiency column so
	// newTB indexes a flat array instead of calling Lookup (with its
	// error path) once per transport block. Row 0 is 0 ("out of range").
	effByCQI [phy.MaxCQI + 1]float64

	// dlSymTab/ulSymTab precompute dlSymbols/ulSymbols over one TDD
	// period (length 1 for FDD) so the per-slot query is a table index
	// instead of a pattern walk. Values are exactly what the inline
	// pattern logic produced.
	dlSymTab []int
	ulSymTab []int

	// ulEff[cqi][dlRank] precomputes the UL link-adaptation chain (SRS
	// reconstruction, power derate, layer re-split, backoff) for every
	// reportable CQI and DL rank; ulRank[dlRank] is the matching UL rank
	// clamp. The chain is a pure function of (CQI, RI) and the per-session
	// amc factors, evaluated at construction with the same expressions, so
	// the table lookup is bit-identical to the inline pow/log sequence.
	ulEff  [phy.MaxCQI + 1][5]float64
	ulRank [5]int
}

// NewCarrier builds a carrier simulator.
func NewCarrier(cfg CarrierConfig) (*Carrier, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg.Channel.SlotDuration = cfg.Numerology.SlotDuration()
	if cfg.Channel.Seed == 0 {
		cfg.Channel.Seed = fleet.SplitSeed(cfg.Seed, "gnb/channel", 0)
	}
	ch, err := channel.New(cfg.Channel)
	if err != nil {
		return nil, fmt.Errorf("gnb: carrier %q: %w", cfg.Label, err)
	}
	csiCfg := cfg.CSI
	if csiCfg.Seed == 0 {
		csiCfg.Seed = fleet.SplitSeed(cfg.Seed, "gnb/csi", 0)
	}
	csi, err := ue.NewCSI(csiCfg)
	if err != nil {
		return nil, fmt.Errorf("gnb: carrier %q: %w", cfg.Label, err)
	}
	csiCfg2 := csi.Config()
	c := &Carrier{
		cfg:     cfg,
		ch:      ch,
		csi:     csi,
		rng:     rand.New(rand.NewSource(fleet.SplitSeed(cfg.Seed, "gnb/sched", 0))),
		serving: -1,
		slotDur: cfg.Numerology.SlotDuration(),
		csiCfg:  csiCfg2,
		amc:     newAMCDerived(csiCfg2, cfg),
		tbs:     phy.NewTBSCache(cfg.MCSTable, cfg.DMRSPerPRB, 0),
		maxMCS:  int(cfg.MCSTable.MaxIndex()),
		rlf:     fault.NewRLFState(cfg.Fault),
	}
	c.pow = newPowCache(1)
	for cqi := phy.CQI(1); cqi <= phy.MaxCQI; cqi++ {
		if row, err := csiCfg2.Table.Lookup(cqi); err == nil {
			c.effByCQI[cqi] = row.Efficiency
		}
	}
	// Precompute the per-slot symbol budgets over one TDD period (FDD
	// carriers are phase-invariant) so the slot path never touches the
	// pattern parser.
	if cfg.FDD {
		c.dlSymTab = []int{phy.SymbolsPerSlot - cfg.PDCCHSymbols}
		c.ulSymTab = []int{phy.SymbolsPerSlot}
	} else {
		period := cfg.Pattern.Period()
		c.dlSymTab = make([]int, period)
		c.ulSymTab = make([]int, period)
		for i := 0; i < period; i++ {
			if d := cfg.Pattern.DLSymbols(int64(i)); d > 0 {
				if s := d - cfg.PDCCHSymbols; s >= 1 {
					c.dlSymTab[i] = s
				}
			}
			if cfg.Pattern.Slot(int64(i)) == tdd.Uplink {
				c.ulSymTab[i] = phy.SymbolsPerSlot
			}
		}
	}
	// Precompute the UL link-adaptation chain for the reportable CQI and
	// rank grid (see the field comment; newTB falls back to the inline
	// expressions outside this grid).
	exp := csiCfg2.LayerPenaltyExp
	for cqi := phy.CQI(1); cqi <= phy.MaxCQI; cqi++ {
		row, err := csiCfg2.Table.Lookup(cqi)
		if err != nil {
			continue
		}
		for dlRank := 1; dlRank < len(c.ulRank); dlRank++ {
			rank := dlRank
			if rank > cfg.ULMaxRank {
				rank = cfg.ULMaxRank
			}
			totalLin := (math.Pow(2, row.Efficiency) - 1) / c.amc.optimismLin * c.amc.rankPowAt(exp, dlRank)
			perLayerLin := totalLin * c.amc.ulDerateLin /
				c.amc.rankPowAt(exp, rank)
			c.ulEff[cqi][dlRank] = math.Log2(1+perLayerLin) * c.amc.ulBackoffLin
			c.ulRank[dlRank] = rank
		}
	}
	return c, nil
}

// Config returns the effective configuration.
func (c *Carrier) Config() CarrierConfig { return c.cfg }

// Slot returns the next slot index to be simulated.
func (c *Carrier) Slot() int64 { return c.slot }

// RLFs returns the number of injected radio-link failures so far.
func (c *Carrier) RLFs() int64 { return c.rlfCount }

// InRLF reports whether data is currently interrupted by a radio-link
// failure (RRC re-establishment in progress).
func (c *Carrier) InRLF() bool { return c.slot < c.rlfUntil }

// SlotDuration returns the slot length.
func (c *Carrier) SlotDuration() time.Duration { return c.cfg.Numerology.SlotDuration() }

// dlSymbols returns the DL data symbols available in the slot, from the
// per-period table built at construction (slots are never negative).
func (c *Carrier) dlSymbols(slot int64) int {
	return c.dlSymTab[slot%int64(len(c.dlSymTab))]
}

// ulSymbols returns the UL data symbols available in the slot. Special-slot
// UL symbols are too few for PUSCH data and are reserved for control, so
// only full UL slots count (matching commercial mid-band behaviour).
func (c *Carrier) ulSymbols(slot int64) int {
	return c.ulSymTab[slot%int64(len(c.ulSymTab))]
}

// bler returns the block error probability for a TB whose MCS requires
// reqSINRdB when decoded at effective per-layer SINR sinrDB.
func bler(sinrDB, reqSINRdB float64) float64 {
	const slopeDB = 0.7
	return 1 / (1 + math.Exp((sinrDB-reqSINRdB)/slopeDB))
}

const harqCombineGainDB = 2.5

// ulBackoffDB is the fixed UL link-adaptation backoff (see newTB).
const ulBackoffDB = 1.0

// Step simulates one slot. The returned SlotResult's DL/UL pointers are
// owned by the Carrier and valid until the next Step call.
//
//detlint:zeroalloc
func (c *Carrier) Step(dl, ul Demand) SlotResult {
	var res SlotResult
	c.StepInto(&res, dl, ul)
	return res
}

// SetRSRQNeeded forwards the RSRQ need-hint to the carrier's channel
// (see channel.Channel.SetRSRQNeeded): callers that never read
// Sample.RSRQdB — warm-up traffic, uncaptured secondary carriers — skip
// the per-slot conversion without touching any random stream.
func (c *Carrier) SetRSRQNeeded(needed bool) { c.ch.SetRSRQNeeded(needed) }

// StepInto is Step writing the result in place: the link's slot loop owns
// per-carrier result storage, and threading it down here keeps the
// ~100-byte SlotResult from being copied at every layer boundary. All
// fields of res are overwritten.
//
//detlint:zeroalloc
func (c *Carrier) StepInto(res *SlotResult, dl, ul Demand) {
	slot := c.slot
	c.slot++
	res.Slot = slot
	res.Time = time.Duration(slot) * c.slotDur
	res.DL, res.UL = nil, nil
	c.ch.StepInto(&res.Sample)
	c.csi.Observe(slot, res.Sample.SINRdB)
	report, haveCSI := c.csi.Current()
	res.CQI = report.CQI

	// Handover: a serving-cell change interrupts data while the UE
	// executes the switch (random access on the target cell).
	if c.serving >= 0 && res.Sample.ServingCell != c.serving && c.cfg.HandoverInterruptionSlots > 0 {
		c.hoUntil = slot + int64(c.cfg.HandoverInterruptionSlots)
		if obs.Enabled() {
			obs.Sim.Handovers.Inc()
		}
	}
	c.serving = res.Sample.ServingCell
	// Injected radio-link failure: data stops while the UE re-establishes
	// the RRC connection, and the CSI loop desyncs — scheduling cannot
	// resume until a fresh report matures (the recovery ⇒ re-sync
	// invariant internal/simtest checks). Exactly one injector draw per
	// slot, so fault timing never depends on scheduler state.
	if c.rlf != nil && c.rlf.Step() {
		if slot >= c.rlfUntil {
			c.rlfCount++
			if obs.Enabled() {
				obs.Sim.RLFs.Inc()
			}
		}
		c.rlfUntil = slot + int64(c.rlf.ReestablishSlots)
		c.csi.Reset()
	}
	if !haveCSI || slot < c.hoUntil || slot < c.rlfUntil {
		return
	}

	if sym := c.dlSymbols(slot); sym > 0 && dl.Active && dl.Share > 0 {
		res.DL = c.transmit(&c.dlAlloc, &c.harqDL, slot, sym, dl.Share, report, res.Sample.SINRdB, res.Sample.Outage, false)
	}
	if sym := c.ulSymbols(slot); sym > 0 && ul.Active && ul.Share > 0 {
		res.UL = c.transmit(&c.ulAlloc, &c.harqUL, slot, sym, ul.Share, report, res.Sample.SINRdB, res.Sample.Outage, true)
	}
}

// transmit schedules one TB (new or HARQ retransmission) in this slot.
//
//detlint:zeroalloc
func (c *Carrier) transmit(store *Alloc, queue *[]harqJob, slot int64, symbols int,
	share float64, report ue.Report, sinrDB float64, outage, uplink bool) *Alloc {

	if outage {
		return nil // nothing schedulable without a link
	}

	var job harqJob
	if j, ok := popReady(queue, slot); ok {
		job = j
	} else {
		job = c.newTB(slot, symbols, share, report, uplink)
		if job.tbs == 0 {
			return nil
		}
	}

	// Decode at the *current* per-layer SINR (the report that chose the
	// MCS is stale — that gap is what OLLA and HARQ absorb).
	sinr := sinrDB
	if uplink {
		sinr -= c.cfg.ULSINROffsetDB
	}
	perLayer := sinr - c.amc.layerPenalty(c.csiCfg.LayerPenaltyExp, job.rank)
	perLayer += harqCombineGainDB * float64(job.retx)
	req, err := job.table.RequiredSINRdB(job.mcs)
	if err != nil {
		return nil
	}
	ack := blerAck(c.rng.Float64(), perLayer, req)

	if !uplink && !c.cfg.DisableOLLA {
		// Outer loop: nudge toward the BLER target.
		if ack {
			c.ollaDB += 0.05 * c.cfg.TargetBLER / (1 - c.cfg.TargetBLER)
		} else {
			c.ollaDB -= 0.05
		}
		c.ollaDB = math.Max(-6, math.Min(3, c.ollaDB))
	}

	delivered := 0
	if ack {
		delivered = job.tbs
	} else if !c.cfg.DisableHARQ && int(job.retx) < c.cfg.MaxHARQRetx {
		*queue = append(*queue, harqJob{
			readySlot: slot + int64(c.cfg.HARQRTTSlots),
			retx:      job.retx + 1,
			rank:      job.rank,
			table:     job.table,
			mcs:       job.mcs,
			rbs:       job.rbs,
			res:       job.res,
			tbs:       job.tbs,
		})
	}

	*store = Alloc{
		RBs: job.rbs, REs: job.res, Table: job.table, MCS: job.mcs,
		Rank: job.rank, TBSBits: job.tbs, HARQRetx: job.retx, ACK: ack,
		DeliveredBits: delivered,
	}
	// Observability only — recorded after every scheduling decision is
	// final, never read back, so metrics cannot perturb the simulation.
	if obs.Enabled() {
		obs.Sim.MCS.Observe(float64(job.mcs))
		obs.Sim.Rank.Observe(float64(job.rank))
		obs.Sim.HARQRetx.Observe(float64(job.retx))
		if ack {
			obs.Sim.TBAcks.Inc()
		} else {
			obs.Sim.TBNacks.Inc()
		}
	}
	return store
}

// ollaPow returns 10^(ollaDB/10), memoized (see powCache).
//
//detlint:zeroalloc
func (c *Carrier) ollaPow() float64 {
	return c.pow.pow10(c.ollaDB)
}

// newTB builds a fresh transport block from the CSI in effect.
//
//detlint:zeroalloc
func (c *Carrier) newTB(slot int64, symbols int, share float64, report ue.Report, uplink bool) harqJob {
	rank := report.RI
	cqi := report.CQI
	table := c.cfg.MCSTable

	if cqi == 0 || rank < 1 || cqi > phy.MaxCQI {
		return harqJob{}
	}

	// Vendor CQI→MCS mapping: match the reported spectral efficiency
	// (hoisted into effByCQI at construction), shifted by the outer-loop
	// offset. A zero entry means the CSI table's Lookup failed at
	// construction (every valid row has positive efficiency), matching
	// the inline lookup's error return.
	eff := c.effByCQI[cqi]
	if eff == 0 {
		return harqJob{}
	}

	if uplink {
		// The gNB estimates UL quality from sounding reference signals:
		// reconstruct the total-SINR estimate behind the DL report,
		// derate by the UL power deficit, and re-split across UL layers.
		// The DL outer-loop offset does not apply; UL link adaptation
		// carries its own fixed backoff instead. The whole chain is a pure
		// function of (CQI, RI), so the construction-time ulEff table
		// covers the reportable grid; the inline expressions remain for
		// anything outside it.
		share *= c.cfg.ULRBFraction
		if cqi <= phy.MaxCQI && rank < len(c.ulRank) {
			eff = c.ulEff[cqi][rank]
			rank = c.ulRank[rank]
		} else {
			exp := c.csiCfg.LayerPenaltyExp
			dlRank := rank
			if rank > c.cfg.ULMaxRank {
				rank = c.cfg.ULMaxRank
			}
			// Deflate the report's optimism (the gNB calibrates for it).
			totalLin := (math.Pow(2, eff) - 1) / c.amc.optimismLin * c.amc.rankPowAt(exp, dlRank)
			perLayerLin := totalLin * c.amc.ulDerateLin /
				c.amc.rankPowAt(exp, rank)
			eff = math.Log2(1+perLayerLin) * c.amc.ulBackoffLin
		}
	} else {
		eff *= c.ollaPow()
	}
	mcs := table.HighestMCSForEfficiency(eff)

	// Per-slot link-adaptation dither (sub-band scheduling, per-slot
	// re-evaluation): the DCI-signaled MCS and rank move at slot scale.
	if d := c.cfg.MCSDither; d > 0 {
		m := int(mcs) + c.rng.Intn(2*d+1) - d
		if m < 0 {
			m = 0
		}
		if m > c.maxMCS {
			m = c.maxMCS
		}
		mcs = uint8(m)
	}
	if c.cfg.RankDitherProb > 0 && rank > 1 && c.rng.Float64() < c.cfg.RankDitherProb {
		rank--
	}

	// Near-maximum RB allocation with scheduler jitter (Fig. 4).
	rbs := int(float64(c.cfg.NRB) * share * (1 - c.cfg.RBJitterFrac*c.rng.Float64()))
	if rbs < 1 {
		rbs = 1
	}
	tbs, err := c.tbs.TBS(symbols, rbs, mcs, rank)
	if err != nil {
		return harqJob{}
	}
	// REs for the trace record: same DMRS clamp the cache applies
	// internally (MCS does not enter the RE count).
	dmrs := c.cfg.DMRSPerPRB
	if maxDMRS := phy.SubcarriersPerRB * symbols; dmrs > maxDMRS {
		dmrs = maxDMRS
	}
	params := phy.TBSParams{
		Symbols:    symbols,
		DMRSPerPRB: dmrs,
		PRBs:       rbs,
		Layers:     rank,
	}
	return harqJob{
		readySlot: slot,
		rank:      rank,
		table:     table,
		mcs:       mcs,
		rbs:       rbs,
		res:       params.REs(),
		tbs:       tbs,
	}
}

//detlint:zeroalloc
func popReady(queue *[]harqJob, slot int64) (harqJob, bool) {
	q := *queue
	for i := range q {
		if q[i].readySlot <= slot {
			j := q[i]
			*queue = append(q[:i], q[i+1:]...)
			return j, true
		}
	}
	return harqJob{}, false
}

// TheoreticalMaxMbps returns the TS 38.306 bound for this carrier,
// optionally derated by the TDD DL duty cycle (paper §3.2).
func (c *Carrier) TheoreticalMaxMbps(applyDuty bool) float64 {
	duty := 1.0
	if applyDuty && !c.cfg.FDD {
		duty = c.cfg.Pattern.DLDutyCycle()
	}
	maxRank := c.csiCfg.MaxRank
	if maxRank == 0 {
		maxRank = 4
	}
	return phy.MaxRateMbps(phy.CarrierRateParams{
		Layers:      maxRank,
		Modulation:  c.cfg.MCSTable.MaxModulation(),
		Numerology:  c.cfg.Numerology,
		NRB:         c.cfg.NRB,
		Overhead:    phy.OverheadDLFR1,
		DLDutyCycle: duty,
	})
}
