package gnb

import (
	"testing"

	"github.com/midband5g/midband/internal/phy"
)

// TestCarrierInvariants checks per-slot structural invariants over a long
// mixed DL/UL run: resource accounting, HARQ bounds and goodput consistency.
func TestCarrierInvariants(t *testing.T) {
	c := testCarrier(t, nil)
	cfg := c.Config()
	for i := 0; i < 100000; i++ {
		r := c.Step(FullBuffer, FullBuffer)
		for _, a := range []*Alloc{r.DL, r.UL} {
			if a == nil {
				continue
			}
			if a.RBs < 1 || a.RBs > cfg.NRB {
				t.Fatalf("slot %d: RBs %d outside [1, %d]", i, a.RBs, cfg.NRB)
			}
			if a.REs > a.RBs*phy.REsPerPRBCap {
				t.Fatalf("slot %d: REs %d exceed cap for %d RBs", i, a.REs, a.RBs)
			}
			if a.Rank < 1 || a.Rank > 4 {
				t.Fatalf("slot %d: rank %d", i, a.Rank)
			}
			if int(a.HARQRetx) > cfg.MaxHARQRetx {
				t.Fatalf("slot %d: retx %d exceeds max %d", i, a.HARQRetx, cfg.MaxHARQRetx)
			}
			if a.DeliveredBits != 0 && a.DeliveredBits != a.TBSBits {
				t.Fatalf("slot %d: delivered %d not 0 or TBS %d", i, a.DeliveredBits, a.TBSBits)
			}
			if a.ACK != (a.DeliveredBits > 0) {
				t.Fatalf("slot %d: ACK %v inconsistent with delivered %d", i, a.ACK, a.DeliveredBits)
			}
			if _, err := a.Table.Lookup(a.MCS); err != nil {
				t.Fatalf("slot %d: invalid MCS %d in table %v", i, a.MCS, a.Table)
			}
		}
		// UL allocations only on UL slots, DL only on DL-capable slots.
		if r.DL != nil && c.Config().Pattern.DLSymbols(r.Slot) == 0 {
			t.Fatalf("slot %d: DL allocation on a non-DL slot", i)
		}
		if r.UL != nil && c.Config().Pattern.ULSymbols(r.Slot) == 0 {
			t.Fatalf("slot %d: UL allocation on a non-UL slot", i)
		}
	}
}

// TestHARQEventuallyDelivers confirms retransmissions recover most failed
// blocks: goodput with HARQ exceeds the ideal-minus-BLER floor of the
// no-HARQ configuration.
func TestHARQEventuallyDelivers(t *testing.T) {
	c := testCarrier(t, nil)
	firstTxFail, retxDeliver := 0, 0
	for i := 0; i < 200000; i++ {
		r := c.Step(FullBuffer, Demand{})
		if r.DL == nil {
			continue
		}
		if r.DL.HARQRetx == 0 && !r.DL.ACK {
			firstTxFail++
		}
		if r.DL.HARQRetx > 0 && r.DL.ACK {
			retxDeliver++
		}
	}
	if firstTxFail == 0 {
		t.Fatal("no first-transmission failures in 100 s; BLER model broken")
	}
	recovery := float64(retxDeliver) / float64(firstTxFail)
	if recovery < 0.7 {
		t.Errorf("HARQ recovered only %.0f%% of failures", 100*recovery)
	}
}

// TestCQIReflectsChannel: the reported CQI distribution shifts with
// deployment quality, the §4.1 causal link.
func TestCQIReflectsChannel(t *testing.T) {
	mean := func(bias float64) float64 {
		c := testCarrier(t, func(cfg *CarrierConfig) { cfg.Channel.SINRBiasDB = bias })
		tot, n := 0.0, 0
		for i := 0; i < 40000; i++ {
			r := c.Step(FullBuffer, Demand{})
			if r.CQI > 0 {
				tot += float64(r.CQI)
				n++
			}
		}
		return tot / float64(n)
	}
	if good, poor := mean(5), mean(-8); good <= poor {
		t.Errorf("CQI should track channel quality: good=%.1f poor=%.1f", good, poor)
	}
}
