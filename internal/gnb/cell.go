package gnb

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"github.com/midband5g/midband/internal/channel"
	"github.com/midband5g/midband/internal/fleet"
	"github.com/midband5g/midband/internal/obs"
	"github.com/midband5g/midband/internal/phy"
	"github.com/midband5g/midband/internal/ue"
)

// This file implements a true multi-UE cell: several UEs, each with its own
// radio channel and CSI loop, contending for the same carrier's resource
// blocks under a configurable scheduler. The single-UE Carrier with a
// `Share` knob is sufficient for most of the paper's experiments; the Cell
// is the faithful version of the §5.2 multi-user experiment (Fig. 14) and
// the substrate for scheduler ablations.

// SchedulerPolicy selects how the cell splits RBs among backlogged UEs.
type SchedulerPolicy uint8

const (
	// SchedulerEqualShare splits the RBs evenly among backlogged UEs —
	// what the paper observes ("the number of RBs allocated to each UE
	// has reduced by about 1/2").
	SchedulerEqualShare SchedulerPolicy = iota
	// SchedulerProportionalFair allocates each slot's RBs by the
	// classic PF metric (instantaneous rate / smoothed served rate),
	// splitting between the two highest-metric UEs.
	SchedulerProportionalFair
	// SchedulerMaxRate gives the whole slot to the UE with the best
	// instantaneous spectral efficiency (throughput-optimal, unfair).
	SchedulerMaxRate
	// SchedulerRoundRobin rotates whole slots over the backlogged UEs in
	// index order (time-domain TDM: equal slot share regardless of
	// channel quality).
	SchedulerRoundRobin
)

func (p SchedulerPolicy) String() string {
	switch p {
	case SchedulerProportionalFair:
		return "proportional-fair"
	case SchedulerMaxRate:
		return "max-rate"
	case SchedulerRoundRobin:
		return "round-robin"
	default:
		return "equal-share"
	}
}

// CellConfig describes a multi-UE cell.
type CellConfig struct {
	// Carrier is the shared carrier configuration; its Channel field is
	// used as the template for each UE (the route is overridden per UE).
	Carrier CarrierConfig
	// UEs are the per-UE positions (each UE gets an independent channel
	// realization at its own position).
	UEs []channel.Point
	// Policy is the RB-split policy.
	Policy SchedulerPolicy
	// PFWindowSlots is the PF averaging window (default 200 slots).
	PFWindowSlots int
	// Seed drives per-UE randomness.
	Seed int64
	// Model selects the scheduling fidelity. The zero value keeps the
	// legacy per-slot fractional-share model bit-identical to earlier
	// releases; CellModelContention enables per-UE HARQ, RLC-style
	// buffers, integer-RB grants and load-coupled interference (see
	// multiue.go).
	Model CellModel
	// Traffic optionally bounds each UE's offered load, index-matched
	// with UEs (nil, or a zero entry, is a full-buffer UE). Contention
	// model only.
	Traffic []UETraffic
	// DisableLoadCoupling keeps the statistical NeighborLoad
	// interference even when real co-UEs share the cell (ablation;
	// contention model only).
	DisableLoadCoupling bool
}

// Validate checks the configuration.
func (c CellConfig) Validate() error {
	if len(c.UEs) == 0 {
		return fmt.Errorf("gnb: cell needs at least one UE")
	}
	if c.Traffic != nil && len(c.Traffic) != len(c.UEs) {
		return fmt.Errorf("gnb: cell has %d UEs but %d traffic entries", len(c.UEs), len(c.Traffic))
	}
	if c.Model == CellModelShare && c.Traffic != nil {
		return fmt.Errorf("gnb: finite per-UE traffic requires CellModelContention (the share model is full-buffer)")
	}
	return c.Carrier.Validate()
}

// cellUE is the per-UE state inside a cell. The harq queue and buf are
// used by the contention model only (see multiue.go); the share model
// keeps them zero so its behavior — and RNG draw sequence — is
// bit-identical to before they existed. Scalar per-UE quantities that the
// schedulers scan every slot (OLLA offsets, PF served rates) live in the
// Cell's structure-of-arrays slices instead, shared with the batch
// stepper in cellbatch.go.
type cellUE struct {
	ch   *channel.Channel
	csi  *ue.CSI
	rng  *rand.Rand
	harq []harqJob
	buf  ue.Buffer
}

// ueState is one UE's per-slot scheduling input.
type ueState struct {
	idx    int
	sample channel.Sample
	report ue.Report
	ready  bool
	instSE float64 // estimated instantaneous rate ∝ metric input
}

// grant is one UE's share of a slot's RBs.
type grant struct {
	idx  int
	frac float64
}

// pfScore is one UE's proportional-fair metric.
type pfScore struct {
	idx    int
	metric float64
}

// Cell simulates one carrier shared by several UEs.
type Cell struct {
	cfg  CellConfig
	ues  []*cellUE
	slot int64

	// Per-UE structure-of-arrays state, index-matched with ues. The
	// schedulers read these in tight loops over the whole population, so
	// they live in parallel slices rather than inside cellUE.
	olla   []float64 // OLLA offsets (dB)
	served []float64 // PF-smoothed served rates (bits/slot)
	// pow memoizes 10^(olla/10) (see powCache). The value depends only
	// on the offset's bits, so one table serves every UE, sized for the
	// population so the per-UE walks don't evict each other.
	pow powCache

	// Slot-path constants, shared by all UEs (they differ only in seeds).
	slotDur  time.Duration
	csiCfg   ue.CSIConfig
	amc      amcDerived
	tbs      *phy.TBSCache
	dlSymTab []int // dlSymbols per TDD-period phase (length 1 for FDD)

	// Per-slot scratch, reused so the steady-state loop allocates nothing.
	states    []ueState
	ready     []ueState
	grants    []grant
	scores    []pfScore
	servedNow []float64
	allocs    []UEAlloc

	// Contention-model state (multiue.go): round-robin cursor, smoothed
	// RB-utilization for load coupling, and the per-slot scheduled set.
	rr        int
	loadEMA   float64
	scheduled []bool
	rbAlloc   []int
}

// UEAlloc is one UE's outcome in a slot.
type UEAlloc struct {
	// UE is the index into CellConfig.UEs.
	UE int
	// Alloc is the scheduled transport block.
	Alloc Alloc
	// SINRdB is the UE's channel state this slot.
	SINRdB float64
	// CQI is the report in effect.
	CQI phy.CQI
}

// CellSlot is everything that happened in one slot.
type CellSlot struct {
	Slot   int64
	Time   time.Duration
	Allocs []UEAlloc
}

// NewCell builds the cell.
func NewCell(cfg CellConfig) (*Cell, error) {
	cfg.Carrier = cfg.Carrier.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.PFWindowSlots == 0 {
		cfg.PFWindowSlots = 200
	}
	cell := &Cell{cfg: cfg}
	for i, pos := range cfg.UEs {
		chCfg := cfg.Carrier.Channel
		chCfg.Route = channel.Stationary(pos)
		chCfg.SlotDuration = cfg.Carrier.Numerology.SlotDuration()
		chCfg.Seed = fleet.SplitSeed(cfg.Seed, "gnb/cell/channel", i)
		ch, err := channel.New(chCfg)
		if err != nil {
			return nil, fmt.Errorf("gnb: cell UE %d: %w", i, err)
		}
		csiCfg := cfg.Carrier.CSI
		csiCfg.Seed = fleet.SplitSeed(cfg.Seed, "gnb/cell/csi", i)
		csi, err := ue.NewCSI(csiCfg)
		if err != nil {
			return nil, fmt.Errorf("gnb: cell UE %d: %w", i, err)
		}
		cell.ues = append(cell.ues, &cellUE{
			ch:  ch,
			csi: csi,
			rng: rand.New(rand.NewSource(fleet.SplitSeed(cfg.Seed, "gnb/cell/ue", i))),
		})
	}
	n := len(cell.ues)
	cell.olla = make([]float64, n)
	cell.served = make([]float64, n)
	for i := range cell.served {
		cell.served[i] = 1
	}
	cell.pow = newPowCache(n)
	cell.slotDur = cfg.Carrier.Numerology.SlotDuration()
	cell.csiCfg = cell.ues[0].csi.Config() // UEs differ only in seed
	cell.amc = newAMCDerived(cell.csiCfg, cfg.Carrier)
	cell.tbs = phy.NewTBSCache(cfg.Carrier.MCSTable, cfg.Carrier.DMRSPerPRB, 0)
	ccfg := cfg.Carrier
	if ccfg.FDD {
		cell.dlSymTab = []int{phy.SymbolsPerSlot - ccfg.PDCCHSymbols}
	} else {
		cell.dlSymTab = make([]int, ccfg.Pattern.Period())
		for i := range cell.dlSymTab {
			if d := ccfg.Pattern.DLSymbols(int64(i)); d > 0 {
				if s := d - ccfg.PDCCHSymbols; s >= 1 {
					cell.dlSymTab[i] = s
				}
			}
		}
	}
	cell.states = make([]ueState, 0, n)
	cell.ready = make([]ueState, 0, n)
	cell.grants = make([]grant, 0, n)
	cell.scores = make([]pfScore, 0, n)
	cell.servedNow = make([]float64, n)
	cell.allocs = make([]UEAlloc, 0, n)
	if cfg.Model == CellModelContention {
		cell.scheduled = make([]bool, n)
		cell.rbAlloc = make([]int, 0, n)
		for i, u := range cell.ues {
			offered := 0.0
			if cfg.Traffic != nil {
				offered = cfg.Traffic[i].OfferedMbps
			}
			u.buf = ue.NewBuffer(offered, cell.slotDur)
			u.harq = make([]harqJob, 0, 8)
		}
	}
	// Observability only: record the cell's attached-UE population.
	if obs.Enabled() {
		obs.Sim.CellAttachedUEs.Set(float64(n))
	}
	return cell, nil
}

// Step advances one slot with all UEs backlogged on the downlink. The
// returned CellSlot's Allocs slice is owned by the Cell and valid until
// the next Step call. Under CellModelContention the slot instead runs
// the full shared-resource loop in multiue.go (HARQ first, then fresh
// grants, with per-UE buffers gating eligibility).
//
//detlint:zeroalloc
func (c *Cell) Step() CellSlot {
	if c.cfg.Model == CellModelContention {
		return c.stepContention()
	}
	slot := c.slot
	c.slot++
	res := CellSlot{Slot: slot, Time: time.Duration(slot) * c.slotDur}

	states := c.states[:0]
	for i, u := range c.ues {
		s := u.ch.Step()
		u.csi.Observe(slot, s.SINRdB)
		rep, ok := u.csi.Current()
		st := ueState{idx: i, sample: s, report: rep, ready: ok && rep.CQI > 0 && !s.Outage}
		if st.ready {
			row, err := c.csiCfg.Table.Lookup(rep.CQI)
			if err == nil {
				st.instSE = row.Efficiency * float64(rep.RI)
			}
		}
		states = append(states, st)
	}
	c.states = states

	dlSym := c.dlSymbols(slot)
	if dlSym == 0 {
		return res
	}

	// Pick the scheduled set and their RB fractions.
	grants := c.grants[:0]
	ready := c.ready[:0]
	for _, st := range states {
		if st.ready {
			ready = append(ready, st)
		}
	}
	c.ready = ready
	if len(ready) == 0 {
		return res
	}
	switch c.cfg.Policy {
	case SchedulerMaxRate:
		best := ready[0]
		for _, st := range ready[1:] {
			if st.instSE > best.instSE {
				best = st
			}
		}
		grants = append(grants, grant{best.idx, 1})
	case SchedulerRoundRobin:
		// Whole-slot rotation over backlogged UEs (time-domain TDM).
		n := len(c.ues)
		for off := 0; off < n; off++ {
			cand := (c.rr + off) % n
			if states[cand].ready {
				grants = append(grants, grant{cand, 1})
				c.rr = (cand + 1) % n
				break
			}
		}
	case SchedulerProportionalFair:
		// Rank by PF metric; split the slot between the top two
		// proportionally to their metrics.
		ss := c.scores[:0]
		for _, st := range ready {
			m := st.instSE / c.served[st.idx]
			ss = append(ss, pfScore{st.idx, m})
		}
		c.scores = ss
		for i := 1; i < len(ss); i++ {
			for j := i; j > 0 && ss[j].metric > ss[j-1].metric; j-- {
				ss[j], ss[j-1] = ss[j-1], ss[j]
			}
		}
		if len(ss) == 1 {
			grants = append(grants, grant{ss[0].idx, 1})
		} else {
			total := ss[0].metric + ss[1].metric
			grants = append(grants,
				grant{ss[0].idx, ss[0].metric / total},
				grant{ss[1].idx, ss[1].metric / total},
			)
		}
	default: // equal share
		frac := 1 / float64(len(ready))
		for _, st := range ready {
			grants = append(grants, grant{st.idx, frac})
		}
	}
	c.grants = grants

	res.Allocs = c.allocs[:0]
	for _, g := range grants {
		st := &states[g.idx]
		alloc, ok := c.transmitUE(g.idx, st.report, st.sample, dlSym, g.frac)
		if !ok {
			continue
		}
		res.Allocs = append(res.Allocs, UEAlloc{
			UE: g.idx, Alloc: alloc, SINRdB: st.sample.SINRdB, CQI: st.report.CQI,
		})
	}
	c.allocs = res.Allocs
	if len(res.Allocs) == 0 {
		res.Allocs = nil // keep the no-traffic result shape of the old API
	}
	c.updatePFWindow(res.Allocs)
	return res
}

// updatePFWindow folds one slot's delivered bits into every UE's
// PF-smoothed served rate (also decaying unserved UEs), clamped ≥ 1 so
// the PF metric can never divide by zero.
//
//detlint:zeroalloc
func (c *Cell) updatePFWindow(allocs []UEAlloc) {
	w := float64(c.cfg.PFWindowSlots)
	servedNow := c.servedNow
	for i := range servedNow {
		servedNow[i] = 0
	}
	for _, a := range allocs {
		servedNow[a.UE] = float64(a.Alloc.DeliveredBits)
	}
	served := c.served
	for i := range served {
		served[i] = (1-1/w)*served[i] + servedNow[i]/w
		if served[i] < 1 {
			served[i] = 1
		}
	}
}

// ollaPow returns 10^(olla[i]/10), memoized (see powCache); misses
// recompute with the exact expression the schedulers used inline, so the
// memoized path is bit-identical.
//
//detlint:zeroalloc
func (c *Cell) ollaPow(i int) float64 {
	return c.pow.pow10(c.olla[i])
}

func (c *Cell) dlSymbols(slot int64) int {
	return c.dlSymTab[slot%int64(len(c.dlSymTab))]
}

// transmitUE schedules one TB for a UE with the given RB fraction,
// mirroring Carrier.transmit's AMC/OLLA/BLER behaviour (without HARQ —
// multi-UE HARQ bookkeeping adds little to the Fig. 14 questions).
//
//detlint:zeroalloc
func (c *Cell) transmitUE(idx int, report ue.Report, sample channel.Sample, symbols int, frac float64) (Alloc, bool) {
	cfg := c.cfg.Carrier
	u := c.ues[idx]
	row, err := c.csiCfg.Table.Lookup(report.CQI)
	if err != nil {
		return Alloc{}, false
	}
	eff := row.Efficiency * c.ollaPow(idx)
	mcs := cfg.MCSTable.HighestMCSForEfficiency(eff)
	rbs := int(float64(cfg.NRB) * frac * (1 - cfg.RBJitterFrac*u.rng.Float64()))
	if rbs < 1 {
		rbs = 1
	}
	tbs, err := c.tbs.TBS(symbols, rbs, mcs, report.RI)
	if err != nil {
		return Alloc{}, false
	}
	// REs for the record: same DMRS clamp the cache applies internally.
	dmrs := cfg.DMRSPerPRB
	if m := phy.SubcarriersPerRB * symbols; dmrs > m {
		dmrs = m
	}
	params := phy.TBSParams{
		Symbols: symbols, DMRSPerPRB: dmrs, PRBs: rbs,
		Layers: report.RI,
	}
	req, err := cfg.MCSTable.RequiredSINRdB(mcs)
	if err != nil {
		return Alloc{}, false
	}
	perLayer := sample.SINRdB - c.amc.layerPenalty(c.csiCfg.LayerPenaltyExp, report.RI)
	ack := blerAck(u.rng.Float64(), perLayer, req)
	if ack {
		c.olla[idx] += 0.05 * cfg.TargetBLER / (1 - cfg.TargetBLER)
	} else {
		c.olla[idx] -= 0.05
	}
	c.olla[idx] = math.Max(-6, math.Min(3, c.olla[idx]))
	delivered := 0
	if ack {
		delivered = tbs
	}
	return Alloc{
		RBs: rbs, REs: params.REs(), Table: cfg.MCSTable, MCS: mcs,
		Rank: report.RI, TBSBits: tbs, ACK: ack, DeliveredBits: delivered,
	}, true
}

// SlotDuration returns the cell's slot length.
// Config returns the cell's effective configuration, with carrier and
// PF-window defaults applied.
func (c *Cell) Config() CellConfig { return c.cfg }

func (c *Cell) SlotDuration() time.Duration {
	return c.slotDur
}

// NumUEs returns the number of UEs sharing the cell.
func (c *Cell) NumUEs() int {
	return len(c.ues)
}

// ServedRate returns UE i's PF-window-smoothed served rate in
// bits/slot — the denominator of the proportional-fair metric. The
// window update clamps it to ≥ 1 so the metric can never divide by
// zero; the simtest harness asserts that invariant across policies.
func (c *Cell) ServedRate(i int) float64 {
	return c.served[i]
}
