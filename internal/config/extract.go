// Package config implements the Appendix 10.1 extraction procedure: it
// recovers each carrier's channel configuration (Tables 2 and 3 of the
// paper) from the control-plane signaling captured in an xcal trace — MIB,
// SIB1 and DCI frames — rather than from any hard-coded table. Channel
// bandwidth is recovered from carrierBandwidth (in RBs) via the TS 38.101-1
// lookup, and the in-use MCS table from the observed DCI format mix.
package config

import (
	"fmt"
	"io"

	"github.com/midband5g/midband/internal/bands"
	"github.com/midband5g/midband/internal/phy"
	"github.com/midband5g/midband/internal/xcal"
)

// ChannelConfig is one recovered carrier configuration — a row of Table 2
// or 3.
type ChannelConfig struct {
	// CellID is the physical cell identity from SIB1.
	CellID uint32
	// Band is the NR band designator.
	Band string
	// FrequencyMHz is the carrier frequency recovered from
	// absoluteFrequencyPointA.
	FrequencyMHz float64
	// SCSkHz is the subcarrier spacing.
	SCSkHz int
	// NRB is the carrierBandwidth in resource blocks.
	NRB int
	// BandwidthMHz is the channel bandwidth recovered from NRB via
	// TS 38.101-1 Table 5.3.2-1 (0 when the lookup fails).
	BandwidthMHz int
	// Duplex is "TDD" or "FDD".
	Duplex string
	// TDDPattern is the UL/DL pattern for TDD carriers.
	TDDPattern string
	// MaxMIMOLayers is the configured DL layer cap.
	MaxMIMOLayers int
	// MCSTable is the configured PDSCH table from SIB/RRC (1 or 2).
	MCSTable int
	// DCI11Share is the fraction of captured DCIs using format 1_1
	// (256QAM table); DCICount is the sample size.
	DCI11Share float64
	DCICount   int
	// Note flags inconsistencies found during extraction, e.g. an N_RB
	// that does not match any standard channelization at the signaled
	// SCS (the paper's own Table 3 prints such a combination for
	// T-Mobile's n25 carriers).
	Note string
}

// Extraction is the result of scanning one trace.
type Extraction struct {
	Meta     xcal.Meta
	MIBs     int
	Carriers []ChannelConfig
}

// Extract scans a trace and recovers the channel configuration of every
// carrier whose SIB1 appears in it.
func Extract(r *xcal.Reader) (*Extraction, error) {
	ex := &Extraction{Meta: r.Meta()}
	dciTotal := map[uint32]int{} // keyed by cell-order index
	dci11 := map[uint32]int{}
	var order []uint32
	byCell := map[uint32]*ChannelConfig{}

	for {
		ft, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("config: reading trace: %w", err)
		}
		switch ft {
		case xcal.FrameMIB:
			ex.MIBs++
		case xcal.FrameSIB1:
			sib := r.SIB1 // copy
			cc, err := fromSIB1(&sib)
			if err != nil {
				return nil, err
			}
			if _, ok := byCell[sib.CellID]; !ok {
				order = append(order, sib.CellID)
			}
			byCell[sib.CellID] = &cc
		case xcal.FrameDCI:
			key := uint32(r.DCI.Carrier)
			dciTotal[key]++
			if r.DCI.Format == xcal.DCI11 {
				dci11[key]++
			}
		}
	}

	for i, id := range order {
		cc := byCell[id]
		// DCI frames are keyed by carrier index in capture order.
		if n := dciTotal[uint32(i)]; n > 0 {
			cc.DCICount = n
			cc.DCI11Share = float64(dci11[uint32(i)]) / float64(n)
		}
		ex.Carriers = append(ex.Carriers, *cc)
	}
	if len(ex.Carriers) == 0 {
		return nil, fmt.Errorf("config: trace %q contains no SIB1 frames", ex.Meta.Scenario)
	}
	return ex, nil
}

func fromSIB1(s *xcal.SIB1) (ChannelConfig, error) {
	cc := ChannelConfig{
		CellID:        s.CellID,
		Band:          s.Band,
		SCSkHz:        int(s.SCSkHz),
		NRB:           int(s.CarrierBandwidthRB),
		TDDPattern:    s.TDDPattern,
		MaxMIMOLayers: int(s.MaxMIMOLayers),
		MCSTable:      int(s.MCSTable),
		Duplex:        "TDD",
	}
	if s.FDD {
		cc.Duplex = "FDD"
	}
	if f, err := bands.ARFCNToFreq(s.AbsoluteFrequencyPointA); err == nil {
		cc.FrequencyMHz = f
	}
	mu, err := phy.FromSCS(cc.SCSkHz)
	if err != nil {
		return cc, fmt.Errorf("config: cell %d: %w", s.CellID, err)
	}
	fr := bands.FR1
	if b, err := bands.ByName(s.Band); err == nil {
		fr = b.Range
		// Sanity-check the recovered frequency against the band edges.
		if cc.FrequencyMHz != 0 && (cc.FrequencyMHz < b.LowMHz || cc.FrequencyMHz > b.HighMHz) {
			cc.Note = appendNote(cc.Note, fmt.Sprintf("frequency %.0f MHz outside %s", cc.FrequencyMHz, b.Name))
		}
	}
	bw, err := bands.BandwidthForNRB(fr, mu, cc.NRB)
	if err != nil {
		// The T-Mobile n25 case: the printed N_RB matches no standard
		// channelization at the signaled SCS. Try the 30 kHz column,
		// which is what the paper's Table 3 values actually are.
		if alt, err2 := bands.BandwidthForNRB(fr, phy.Mu1, cc.NRB); err2 == nil {
			bw = alt
			cc.Note = appendNote(cc.Note,
				fmt.Sprintf("N_RB=%d matches no %d kHz channelization; %d MHz assumes the 30 kHz column (as printed in the paper's Table 3)", cc.NRB, cc.SCSkHz, alt))
		} else {
			cc.Note = appendNote(cc.Note, fmt.Sprintf("N_RB=%d matches no standard channelization", cc.NRB))
		}
	}
	cc.BandwidthMHz = bw
	return cc, nil
}

func appendNote(existing, note string) string {
	if existing == "" {
		return note
	}
	return existing + "; " + note
}
