package config

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"github.com/midband5g/midband/internal/core"
	"github.com/midband5g/midband/internal/net5g"
	"github.com/midband5g/midband/internal/operators"
	"github.com/midband5g/midband/internal/xcal"
)

// captureTrace runs a short session for an operator and returns the trace.
func captureTrace(t *testing.T, acr string) []byte {
	t.Helper()
	op, err := operators.ByAcronym(acr)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := core.NewSession(op, operators.Stationary(31))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w, err := xcal.NewWriter(&buf, sess.Meta())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.RunIperf(time.Second, net5g.Saturate, w); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func extract(t *testing.T, trace []byte) *Extraction {
	t.Helper()
	r, err := xcal.NewReader(bytes.NewReader(trace))
	if err != nil {
		t.Fatal(err)
	}
	ex, err := Extract(r)
	if err != nil {
		t.Fatal(err)
	}
	return ex
}

func TestExtractTable2Row(t *testing.T) {
	// End-to-end Appendix 10.1: run V_Sp, decode its signaling, recover
	// the Table 2 row: n78, 30 kHz, TDD, 90 MHz, N_RB 245, 4 layers.
	ex := extract(t, captureTrace(t, "V_Sp"))
	if ex.MIBs == 0 {
		t.Error("no MIB captured")
	}
	if len(ex.Carriers) != 1 {
		t.Fatalf("V_Sp should have 1 carrier, got %d", len(ex.Carriers))
	}
	c := ex.Carriers[0]
	if c.Band != "n78" || c.SCSkHz != 30 || c.Duplex != "TDD" {
		t.Errorf("recovered %+v, want n78/30kHz TDD", c)
	}
	if c.NRB != 245 || c.BandwidthMHz != 90 {
		t.Errorf("N_RB=%d → %d MHz, want 245 → 90", c.NRB, c.BandwidthMHz)
	}
	if c.TDDPattern != "DDDDDDDSUU" {
		t.Errorf("TDD pattern %q", c.TDDPattern)
	}
	if c.MaxMIMOLayers != 4 || c.MCSTable != 2 {
		t.Errorf("layers=%d table=%d, want 4/2", c.MaxMIMOLayers, c.MCSTable)
	}
	// The recovered frequency sits inside n78.
	if c.FrequencyMHz < 3300 || c.FrequencyMHz > 3800 {
		t.Errorf("frequency %.0f MHz outside n78", c.FrequencyMHz)
	}
	if c.Note != "" {
		t.Errorf("unexpected extraction note: %s", c.Note)
	}
	// DCI format mix: a 256QAM-table operator uses format 1_1.
	if c.DCICount == 0 || c.DCI11Share < 0.9 {
		t.Errorf("DCI: count=%d 1_1 share=%.2f, want mostly 1_1", c.DCICount, c.DCI11Share)
	}
}

func TestExtract64QAMOperatorUsesDCI10(t *testing.T) {
	ex := extract(t, captureTrace(t, "O_Sp100"))
	c := ex.Carriers[0]
	if c.MCSTable != 1 {
		t.Errorf("O_Sp100 table = %d, want 1", c.MCSTable)
	}
	if c.DCICount == 0 || c.DCI11Share > 0.1 {
		t.Errorf("64QAM operator should use DCI 1_0: share=%.2f", c.DCI11Share)
	}
	if c.BandwidthMHz != 100 || c.NRB != 273 {
		t.Errorf("recovered %d MHz / %d RB, want 100/273", c.BandwidthMHz, c.NRB)
	}
}

func TestExtractTMobileCA(t *testing.T) {
	// Table 3's most intricate row: four carriers, two of them the n25
	// FDD channels whose printed N_RB values don't match the signaled
	// 15 kHz SCS — extraction must flag exactly that.
	ex := extract(t, captureTrace(t, "Tmb_US"))
	if len(ex.Carriers) != 4 {
		t.Fatalf("T-Mobile should expose 4 carriers, got %d", len(ex.Carriers))
	}
	pc := ex.Carriers[0]
	if pc.Band != "n41" || pc.BandwidthMHz != 100 || pc.NRB != 273 {
		t.Errorf("PCell recovered as %+v", pc)
	}
	flagged := 0
	for _, c := range ex.Carriers {
		if c.Band != "n25" {
			if c.Note != "" {
				t.Errorf("%s unexpectedly flagged: %s", c.Band, c.Note)
			}
			continue
		}
		if c.Duplex != "FDD" {
			t.Errorf("n25 should be FDD, got %s", c.Duplex)
		}
		if !strings.Contains(c.Note, "30 kHz column") {
			t.Errorf("n25 N_RB=%d should be flagged as the paper's 30 kHz-column value, note=%q", c.NRB, c.Note)
		} else {
			flagged++
		}
		if c.BandwidthMHz != 20 && c.BandwidthMHz != 5 {
			t.Errorf("n25 recovered bandwidth %d, want 20 or 5", c.BandwidthMHz)
		}
	}
	if flagged != 2 {
		t.Errorf("expected both n25 carriers flagged, got %d", flagged)
	}
}

func TestExtractErrors(t *testing.T) {
	// A trace with no SIB1 fails extraction.
	var buf bytes.Buffer
	w, err := xcal.NewWriter(&buf, xcal.Meta{Scenario: "empty"})
	if err != nil {
		t.Fatal(err)
	}
	k := xcal.SlotKPI{Slot: 1}
	if err := w.WriteKPI(&k); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := xcal.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Extract(r); err == nil {
		t.Error("extraction without SIB1 should fail")
	}
}
