package channel

import (
	"math"
	"testing"
	"time"
)

func testConfig(seed int64) Config {
	return Config{
		CarrierFreqMHz: 3500,
		Seed:           seed,
		Route:          Stationary(Point{X: 100}),
		Deployment: Deployment{
			Sites:           []Point{{0, 0}},
			TxPowerDBmPerRE: 18,
		},
	}
}

func TestChannelDeterminism(t *testing.T) {
	a, err := New(testConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := New(testConfig(7))
	for i := 0; i < 1000; i++ {
		sa, sb := a.Step(), b.Step()
		if sa != sb {
			t.Fatalf("slot %d: same seed diverged: %+v vs %+v", i, sa, sb)
		}
	}
	c, _ := New(testConfig(8))
	diff := false
	for i := 0; i < 100; i++ {
		if a.Step() != c.Step() {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("different seeds should diverge")
	}
}

func TestChannelStationaryStats(t *testing.T) {
	ch, err := New(testConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		s := ch.Step()
		sum += s.SINRdB
		sumsq += s.SINRdB * s.SINRdB
	}
	mean := sum / n
	std := math.Sqrt(sumsq/n - mean*mean)
	// Deterministic geometry: RSRP = 18 − PL(100 m, 3.5 GHz); PL =
	// 28 + 22·2 + 20·log10(3.5) ≈ 82.9 dB → RSRP ≈ −64.9 dBm. Noise+interf
	// ≈ −109.7 dBm → mean SINR ≈ 44.8 dB (single cell, no interference).
	if mean < 40 || mean > 50 {
		t.Errorf("stationary mean SINR = %.1f dB, want ≈ 44.8", mean)
	}
	// Total variation = sqrt(shadow² + fast²) = sqrt(16+4) ≈ 4.5 dB.
	if std < 3 || std > 6 {
		t.Errorf("stationary SINR std = %.1f dB, want ≈ 4.5", std)
	}
}

func TestChannelInterferenceLowersSINR(t *testing.T) {
	solo := testConfig(1)
	dense := testConfig(1)
	dense.Deployment.Sites = []Point{{0, 0}, {180, 0}}
	a, _ := New(solo)
	b, _ := New(dense)
	var ma, mb float64
	const n = 50000
	for i := 0; i < n; i++ {
		ma += a.Step().SINRdB / n
		mb += b.Step().SINRdB / n
	}
	if mb >= ma {
		t.Errorf("neighbor-cell interference should lower SINR: solo %.1f, dense %.1f", ma, mb)
	}
}

func TestMobilityIncreasesShortScaleVariation(t *testing.T) {
	mk := func(speed float64) []float64 {
		cfg := testConfig(3)
		cfg.Route = Route{Waypoints: []Point{{100, 0}, {100, 2000}}, SpeedMPS: speed}
		ch, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]float64, 40000)
		for i := range out {
			out[i] = ch.Step().SINRdB
		}
		return out
	}
	shortVar := func(xs []float64) float64 {
		// mean |x_{i+1}-x_i| at slot scale: a direct proxy for the
		// paper's V(τ) at the finest scale.
		tot := 0.0
		for i := 1; i < len(xs); i++ {
			tot += math.Abs(xs[i] - xs[i-1])
		}
		return tot / float64(len(xs)-1)
	}
	still := shortVar(mk(0))
	drive := shortVar(mk(MobilityDriving))
	if drive <= still {
		t.Errorf("driving slot-scale variation %.3f should exceed stationary %.3f", drive, still)
	}
}

func TestBlockageOutagesScaleWithSpeed(t *testing.T) {
	mk := func(speed float64) float64 {
		cfg := testConfig(9)
		cfg.Blockage = &DefaultBlockage
		if speed > 0 {
			cfg.Route = Route{Waypoints: []Point{{50, 0}, {50, 5000}}, SpeedMPS: speed}
		}
		ch, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		outages := 0
		const n = 400000 // 200 s
		for i := 0; i < n; i++ {
			if ch.Step().Outage {
				outages++
			}
		}
		return float64(outages) / n
	}
	still := mk(0)
	drive := mk(MobilityDriving)
	if drive <= still {
		t.Errorf("driving outage fraction %.4f should exceed stationary %.4f", drive, still)
	}
	if still <= 0 {
		t.Error("stationary mmWave should still see some outage")
	}
}

func TestRSRQFromSINR(t *testing.T) {
	if got := RSRQFromSINR(math.Inf(-1)); got != -20 {
		t.Errorf("outage RSRQ = %g, want -20", got)
	}
	prev := -25.0
	for s := -15.0; s <= 40; s += 5 {
		r := RSRQFromSINR(s)
		if r < -20 || r > -3 {
			t.Errorf("RSRQ(%g) = %g outside reportable range", s, r)
		}
		if r < prev {
			t.Errorf("RSRQ should be nondecreasing in SINR: %g then %g", prev, r)
		}
		prev = r
	}
	// The paper's good-coverage threshold: decent SINR must clear −12 dB.
	if RSRQFromSINR(15) < -12 {
		t.Error("15 dB SINR should correspond to RSRQ ≥ -12 (good coverage)")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{},                     // no frequency
		{CarrierFreqMHz: 3500}, // no route/deployment
		func() Config { c := testConfig(0); c.Route = Route{SpeedMPS: -1, Waypoints: []Point{{}}}; return c }(),
		func() Config { c := testConfig(0); c.Route = Route{SpeedMPS: 2, Waypoints: []Point{{}}}; return c }(),
		func() Config { c := testConfig(0); c.Deployment.Sites = nil; return c }(),
		func() Config {
			c := testConfig(0)
			c.Blockage = &BlockageConfig{NLOSLossDB: -1}
			return c
		}(),
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestRoutePosition(t *testing.T) {
	r := Route{Waypoints: []Point{{0, 0}, {100, 0}}, SpeedMPS: 10}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := r.Position(5); math.Abs(got.X-50) > 1e-9 {
		t.Errorf("position at 5s = %+v, want X=50", got)
	}
	// Ping-pong: at t=15s the UE has turned around and is heading back.
	if got := r.Position(15); math.Abs(got.X-50) > 1e-9 {
		t.Errorf("position at 15s = %+v, want X=50 (returning)", got)
	}
	if got := r.Position(20); math.Abs(got.X-0) > 1e-9 {
		t.Errorf("position at 20s = %+v, want X=0", got)
	}
	if r.Length() != 100 {
		t.Errorf("route length = %g, want 100", r.Length())
	}
}

func TestPathLossMonotone(t *testing.T) {
	prev := 0.0
	for d := 10.0; d < 2000; d *= 1.5 {
		pl := PathLossDB(d, 3500)
		if pl <= prev {
			t.Errorf("path loss at %gm = %g not increasing", d, pl)
		}
		prev = pl
	}
	// mmWave at 28 GHz pays ≈ 18 dB more than 3.5 GHz at equal distance.
	diff := PathLossDB(100, 28000) - PathLossDB(100, 3500)
	if math.Abs(diff-20*math.Log10(8)) > 1e-9 {
		t.Errorf("FR2 penalty = %g dB, want %g", diff, 20*math.Log10(8))
	}
	// Distances below 10 m clamp.
	if PathLossDB(1, 3500) != PathLossDB(10, 3500) {
		t.Error("sub-10m distances should clamp")
	}
}

func TestSlotCounter(t *testing.T) {
	ch, _ := New(testConfig(0))
	if ch.Slot() != 0 {
		t.Error("fresh channel should be at slot 0")
	}
	ch.Step()
	ch.Step()
	if ch.Slot() != 2 {
		t.Errorf("after two steps Slot() = %d", ch.Slot())
	}
}

func TestSlotDurationDefault(t *testing.T) {
	cfg := testConfig(0).withDefaults()
	if cfg.SlotDuration != 500*time.Microsecond {
		t.Errorf("default slot duration = %v", cfg.SlotDuration)
	}
}
