package channel

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPointDistance(t *testing.T) {
	if d := (Point{0, 0}).Distance(Point{3, 4}); d != 5 {
		t.Errorf("distance = %g, want 5", d)
	}
	if d := (Point{1, 1}).Distance(Point{1, 1}); d != 0 {
		t.Errorf("self distance = %g", d)
	}
}

func TestStrongestSiteSelection(t *testing.T) {
	d := Deployment{
		Sites:           []Point{{0, 0}, {500, 0}, {1000, 0}},
		TxPowerDBmPerRE: 18,
	}
	// Near each site, that site serves.
	for i, near := range []Point{{10, 30}, {510, 30}, {990, 30}} {
		idx, rsrp, interf := d.StrongestSite(near, 3500)
		if idx != i {
			t.Errorf("at %+v serving = %d, want %d", near, idx, i)
		}
		if rsrp > 18 || rsrp < -120 {
			t.Errorf("rsrp %g implausible", rsrp)
		}
		if interf <= 0 {
			t.Error("other sites should contribute interference")
		}
	}
	// Single-site deployment has zero modeled interference.
	solo := Deployment{Sites: []Point{{0, 0}}, TxPowerDBmPerRE: 18}
	if _, _, interf := solo.StrongestSite(Point{100, 0}, 3500); interf != 0 {
		t.Errorf("solo site interference = %g, want 0", interf)
	}
}

func TestStrongestSiteRSRPMonotoneInDistance(t *testing.T) {
	d := Deployment{Sites: []Point{{0, 0}}, TxPowerDBmPerRE: 18}
	f := func(aRaw, bRaw uint16) bool {
		a := 10 + float64(aRaw%2000)
		b := 10 + float64(bRaw%2000)
		_, ra, _ := d.StrongestSite(Point{a, 0}, 3500)
		_, rb, _ := d.StrongestSite(Point{b, 0}, 3500)
		if a < b {
			return ra >= rb
		}
		return rb >= ra
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRouteEdgeCases(t *testing.T) {
	// Zero-length moving route pins at the waypoint.
	r := Route{Waypoints: []Point{{5, 5}, {5, 5}}, SpeedMPS: 3}
	if p := r.Position(100); p != (Point{5, 5}) {
		t.Errorf("degenerate route position = %+v", p)
	}
	// Multi-segment routes traverse in order.
	r = Route{Waypoints: []Point{{0, 0}, {10, 0}, {10, 10}}, SpeedMPS: 1}
	if p := r.Position(15); math.Abs(p.X-10) > 1e-9 || math.Abs(p.Y-5) > 1e-9 {
		t.Errorf("position at 15s = %+v, want (10,5)", p)
	}
	if r.Length() != 20 {
		t.Errorf("length = %g, want 20", r.Length())
	}
	// Empty route is invalid.
	if err := (Route{}).Validate(); err == nil {
		t.Error("empty route should be invalid")
	}
}

func TestRoutePingPongProperty(t *testing.T) {
	// The UE never leaves the polyline's bounding segment.
	r := Route{Waypoints: []Point{{0, 0}, {100, 0}}, SpeedMPS: 7}
	f := func(tRaw uint16) bool {
		p := r.Position(float64(tRaw) * 0.37)
		return p.X >= -1e-9 && p.X <= 100+1e-9 && p.Y == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDeploymentValidate(t *testing.T) {
	if err := (Deployment{}).Validate(); err == nil {
		t.Error("empty deployment should be invalid")
	}
	if err := (Deployment{Sites: []Point{{}}}).Validate(); err != nil {
		t.Errorf("single-site deployment should be valid: %v", err)
	}
}
