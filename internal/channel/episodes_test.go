package channel

import (
	"math/rand"
	"testing"
)

func TestEpisodeValidation(t *testing.T) {
	bad := []EpisodeConfig{
		{RatePerSec: -1, MeanSeconds: 10, MaxDepthDB: 5},
		{RatePerSec: 0.1, MeanSeconds: 0, MaxDepthDB: 5},
		{RatePerSec: 0.1, MeanSeconds: 10, MinDepthDB: 8, MaxDepthDB: 5},
		{RatePerSec: 0.1, MeanSeconds: 10, MinDepthDB: -1, MaxDepthDB: 5},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
	good := EpisodeConfig{RatePerSec: 1.0 / 60, MeanSeconds: 15, MinDepthDB: 4, MaxDepthDB: 12}
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestEpisodeStatistics(t *testing.T) {
	cfg := EpisodeConfig{RatePerSec: 1.0 / 30, MeanSeconds: 8, MinDepthDB: 5, MaxDepthDB: 15}
	e := newEpisodeState(cfg, rand.New(rand.NewSource(3)))
	const dt = 0.0005
	const n = 8_000_000 // 4000 s
	degraded := 0
	maxDepth := 0.0
	episodes := 0
	prev := 0.0
	for i := 0; i < n; i++ {
		d := e.step(dt)
		if d < 0 {
			t.Fatal("negative degradation")
		}
		if d > cfg.MaxDepthDB {
			t.Fatalf("degradation %g exceeds max depth", d)
		}
		if d > 0.5 {
			degraded++
		}
		if d > maxDepth {
			maxDepth = d
		}
		if prev == 0 && d > 0 {
			episodes++
		}
		prev = d
	}
	// Stationary degraded fraction ≈ rate × mean duration = 8/30 ≈ 0.27.
	frac := float64(degraded) / n
	if frac < 0.15 || frac > 0.40 {
		t.Errorf("degraded fraction = %.2f, want ≈ 0.27", frac)
	}
	// Arrivals roughly once per 30+8 s busy cycle.
	if episodes < 60 || episodes > 200 {
		t.Errorf("episodes = %d over 4000 s, want ≈ 105", episodes)
	}
	// Depths span toward the configured maximum.
	if maxDepth < 12 {
		t.Errorf("max observed depth %.1f never approached %g", maxDepth, cfg.MaxDepthDB)
	}
}

func TestEpisodeRampIsGradual(t *testing.T) {
	cfg := EpisodeConfig{RatePerSec: 100, MeanSeconds: 10, MinDepthDB: 10, MaxDepthDB: 10}
	e := newEpisodeState(cfg, rand.New(rand.NewSource(1)))
	const dt = 0.0005
	prev := 0.0
	for i := 0; i < 100000; i++ {
		d := e.step(dt)
		// The ramp limits the per-slot change to depth·dt per second unit.
		if diff := d - prev; diff > cfg.MaxDepthDB*dt*1.01 {
			t.Fatalf("step %d: degradation jumped by %.4f dB in one slot", i, diff)
		}
		prev = d
	}
	if prev < 9.9 {
		t.Errorf("with constant arrivals the process should sit at full depth, got %.1f", prev)
	}
}

func TestChannelWithEpisodesSags(t *testing.T) {
	cfg := testConfig(5)
	cfg.Episodes = &EpisodeConfig{RatePerSec: 1.0 / 10, MeanSeconds: 5, MinDepthDB: 10, MaxDepthDB: 10}
	with, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	without, err := New(testConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	var sumW, sumWo float64
	const n = 400000
	for i := 0; i < n; i++ {
		sumW += with.Step().SINRdB
		sumWo += without.Step().SINRdB
	}
	// Episodes only ever subtract.
	if sumW >= sumWo {
		t.Errorf("episodes should lower mean SINR: with=%.1f without=%.1f", sumW/n, sumWo/n)
	}
	if diff := (sumWo - sumW) / n; diff < 1 || diff > 6 {
		t.Errorf("mean SINR deficit = %.2f dB, want the episode share ≈ 3 dB", diff)
	}
}

func TestChannelEpisodeValidationWired(t *testing.T) {
	cfg := testConfig(1)
	cfg.Episodes = &EpisodeConfig{RatePerSec: 0.1, MeanSeconds: -1}
	if _, err := New(cfg); err == nil {
		t.Error("invalid episode config should fail channel construction")
	}
}
