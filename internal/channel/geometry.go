// Package channel models the radio environment the measurement campaign
// sampled in the field: path loss against a deployment of gNB sites,
// correlated shadowing, Doppler-scaled fast fading, and (for the §7 mmWave
// comparison) a blockage/outage process. It produces per-slot SINR, RSRP and
// RSRQ samples — the inputs that drive CQI reporting, MCS selection, rank
// adaptation and therefore all the KPI distributions in §4 and §5.
package channel

import (
	"fmt"
	"math"
)

// Point is a 2D position in meters.
type Point struct{ X, Y float64 }

// Distance returns the Euclidean distance to q in meters.
func (p Point) Distance(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Route is a polyline the UE traverses at constant speed; a single waypoint
// means the UE is stationary.
type Route struct {
	Waypoints []Point
	// SpeedMPS is the UE speed in m/s (0 for stationary).
	SpeedMPS float64
}

// Stationary returns a route pinned at p.
func Stationary(p Point) Route { return Route{Waypoints: []Point{p}} }

// Validate checks the route is usable.
func (r Route) Validate() error {
	if len(r.Waypoints) == 0 {
		return fmt.Errorf("channel: route needs at least one waypoint")
	}
	if r.SpeedMPS < 0 {
		return fmt.Errorf("channel: negative speed %g", r.SpeedMPS)
	}
	if r.SpeedMPS > 0 && len(r.Waypoints) < 2 {
		return fmt.Errorf("channel: moving route needs at least two waypoints")
	}
	return nil
}

// Length returns the total polyline length in meters.
func (r Route) Length() float64 {
	total := 0.0
	for i := 1; i < len(r.Waypoints); i++ {
		total += r.Waypoints[i-1].Distance(r.Waypoints[i])
	}
	return total
}

// Position returns the UE position after traveling for t seconds. The route
// is walked back and forth (ping-pong) so long experiments stay on it.
func (r Route) Position(tSec float64) Point {
	if r.SpeedMPS == 0 || len(r.Waypoints) == 1 {
		return r.Waypoints[0]
	}
	total := r.Length()
	if total == 0 {
		return r.Waypoints[0]
	}
	d := math.Mod(r.SpeedMPS*tSec, 2*total)
	if d > total {
		d = 2*total - d // walking back
	}
	for i := 1; i < len(r.Waypoints); i++ {
		seg := r.Waypoints[i-1].Distance(r.Waypoints[i])
		if d <= seg && seg > 0 {
			f := d / seg
			a, b := r.Waypoints[i-1], r.Waypoints[i]
			return Point{a.X + f*(b.X-a.X), a.Y + f*(b.Y-a.Y)}
		}
		d -= seg
	}
	return r.Waypoints[len(r.Waypoints)-1]
}

// Mobility profiles used by the paper's experiments.
var (
	// MobilityStationary keeps the UE on a flat surface (§2 step ❹).
	MobilityStationary = 0.0
	// MobilityWalking is a pedestrian pace.
	MobilityWalking = 1.4
	// MobilityDriving is urban driving.
	MobilityDriving = 11.0
)

// Deployment is a set of gNB sites sharing one carrier.
type Deployment struct {
	// Sites are the gNB positions. Coverage density — the count and
	// spacing of sites — is the §4.1/Appendix 10.3 explanation for the
	// Vodafone-vs-Orange Spain RSRQ difference.
	Sites []Point
	// TxPowerDBmPerRE is the per-resource-element transmit power.
	TxPowerDBmPerRE float64
}

// Validate checks the deployment is usable.
func (d Deployment) Validate() error {
	if len(d.Sites) == 0 {
		return fmt.Errorf("channel: deployment needs at least one site")
	}
	return nil
}

// StrongestSite returns the index of the site with the least path loss from
// p at carrier frequency fcMHz and the corresponding received per-RE power
// (dBm), plus the total interference power (mW) from all other sites.
func (d Deployment) StrongestSite(p Point, fcMHz float64) (idx int, rsrpDBm float64, interfMW float64) {
	return d.strongestSite(p, fcMHz, make([]float64, len(d.Sites)))
}

// strongestSite is StrongestSite with a caller-provided scratch slice
// (len ≥ len(d.Sites)) so the per-slot hot path allocates nothing.
//
//detlint:zeroalloc
func (d Deployment) strongestSite(p Point, fcMHz float64, powers []float64) (idx int, rsrpDBm float64, interfMW float64) {
	best := math.Inf(-1)
	idx = -1
	powers = powers[:len(d.Sites)]
	for i, s := range d.Sites {
		rx := d.TxPowerDBmPerRE - PathLossDB(p.Distance(s), fcMHz)
		powers[i] = rx
		if rx > best {
			best = rx
			idx = i
		}
	}
	for i, rx := range powers {
		if i != idx {
			interfMW += math.Pow(10, rx/10)
		}
	}
	return idx, best, interfMW
}

// PathLossDB is a 3GPP UMa-style line-of-sight path-loss model:
// 28.0 + 22·log10(d) + 20·log10(fc_GHz), with a 10 m minimum distance.
func PathLossDB(dMeters, fcMHz float64) float64 {
	if dMeters < 10 {
		dMeters = 10
	}
	return 28.0 + 22*math.Log10(dMeters) + 20*math.Log10(fcMHz/1000)
}
