package channel

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"github.com/midband5g/midband/internal/fault"
	"github.com/midband5g/midband/internal/obs"
)

// Config parameterizes a per-carrier radio channel process.
type Config struct {
	// CarrierFreqMHz is the carrier center frequency.
	CarrierFreqMHz float64
	// SlotDuration is the sampling period (one NR slot).
	SlotDuration time.Duration
	// Seed makes the process reproducible.
	Seed int64
	// Route is the UE trajectory.
	Route Route
	// Deployment is the serving gNB layout.
	Deployment Deployment
	// NoisePerREdBm is thermal noise + noise figure per resource element.
	// Zero selects the default −122 dBm (30 kHz RE, 7 dB noise figure).
	NoisePerREdBm float64
	// OtherCellInterferenceDBm is the per-RE interference floor from
	// cells outside the modeled deployment. Zero selects −110 dBm.
	OtherCellInterferenceDBm float64
	// NeighborLoad scales interference from the modeled neighbor sites:
	// the fraction of time/power they actually transmit toward this UE
	// (activity factor × beam separation). Zero selects 0.1; to model
	// fully idle neighbors set DisableNeighborLoad instead.
	NeighborLoad float64
	// DisableNeighborLoad makes a zero NeighborLoad expressible: when
	// set, the modeled neighbor sites contribute no interference at all
	// and NeighborLoad is ignored (the zero value of NeighborLoad alone
	// selects the 0.1 default, so "no neighbor activity" needs this
	// explicit flag).
	DisableNeighborLoad bool
	// ShadowSigmaDB is the lognormal shadowing standard deviation
	// (default 4 dB).
	ShadowSigmaDB float64
	// ShadowCorrMeters is the shadowing decorrelation distance
	// (default 50 m).
	ShadowCorrMeters float64
	// ShadowCorrSeconds is the temporal decorrelation for a stationary
	// UE — the slow environment churn the paper observes at the 0.2–0.5 s
	// scale (default 0.4 s).
	ShadowCorrSeconds float64
	// FastSigmaDB is the fast-fading standard deviation (default 2 dB;
	// mmWave uses larger values).
	FastSigmaDB float64
	// FastCorrSeconds is the fast-fading coherence time for a stationary
	// UE (default 40 ms); mobility shortens it via Doppler.
	FastCorrSeconds float64
	// SlowSigmaDB adds a slow environment/load drift: neighbor-cell load,
	// passing obstructions and scheduler pressure move the operating
	// point over tens of seconds. This is what produces the multi-second
	// throughput sags visible in the paper's Figs. 13 and 16 (and hence
	// video stalls). Zero disables it.
	SlowSigmaDB float64
	// SlowCorrSeconds is the drift's correlation time (default 10 s).
	SlowCorrSeconds float64
	// SINRBiasDB shifts the whole SINR process; operator profiles use it
	// to encode deployment quality beyond site geometry.
	SINRBiasDB float64
	// Episodes, when non-nil, adds occasional multi-second degradation
	// episodes (congestion/interference sags).
	Episodes *EpisodeConfig
	// Blockage, when non-nil, adds the mmWave LOS/NLOS/outage process.
	Blockage *BlockageConfig
	// Fault, when non-nil, injects deterministic SINR blackout windows
	// (deep coverage holes). The injector draws from its own seeded RNG,
	// so a nil Fault leaves every other random sequence untouched.
	Fault *fault.Blackout
}

func (c Config) withDefaults() Config {
	if c.NoisePerREdBm == 0 {
		c.NoisePerREdBm = -122
	}
	if c.OtherCellInterferenceDBm == 0 {
		c.OtherCellInterferenceDBm = -110
	}
	if c.DisableNeighborLoad {
		c.NeighborLoad = 0
	} else if c.NeighborLoad == 0 {
		c.NeighborLoad = 0.1
	}
	if c.ShadowSigmaDB == 0 {
		c.ShadowSigmaDB = 4
	}
	if c.ShadowCorrMeters == 0 {
		c.ShadowCorrMeters = 50
	}
	if c.ShadowCorrSeconds == 0 {
		c.ShadowCorrSeconds = 0.4
	}
	if c.FastSigmaDB == 0 {
		c.FastSigmaDB = 2
	}
	if c.FastCorrSeconds == 0 {
		c.FastCorrSeconds = 0.040
	}
	if c.SlowCorrSeconds == 0 {
		c.SlowCorrSeconds = 10
	}
	if c.SlotDuration == 0 {
		c.SlotDuration = 500 * time.Microsecond
	}
	return c
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.CarrierFreqMHz <= 0 {
		return fmt.Errorf("channel: carrier frequency %g MHz invalid", c.CarrierFreqMHz)
	}
	if c.NeighborLoad < 0 {
		return fmt.Errorf("channel: neighbor load %g negative (use DisableNeighborLoad for zero)", c.NeighborLoad)
	}
	if err := c.Route.Validate(); err != nil {
		return err
	}
	if err := c.Deployment.Validate(); err != nil {
		return err
	}
	if c.Blockage != nil {
		if err := c.Blockage.Validate(); err != nil {
			return err
		}
	}
	if c.Episodes != nil {
		if err := c.Episodes.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Sample is one slot's radio state.
type Sample struct {
	// Pos is the UE position.
	Pos Point
	// ServingCell is the index of the serving site in the deployment.
	ServingCell int
	// RSRPdBm is the reference-signal received power (includes shadowing,
	// excludes fast fading, as a filtered RSRP measurement would).
	RSRPdBm float64
	// RSRQdB is the reference-signal received quality.
	RSRQdB float64
	// SINRdB is the instantaneous post-fading SINR.
	SINRdB float64
	// LOS reports the blockage state (always true without a blockage
	// process).
	LOS bool
	// Outage reports total service loss (mmWave coverage holes).
	Outage bool
}

// fadingKernel holds the per-slot AR(1) coefficients of the three fading
// processes. dt and all correlation times are fixed per session and the
// UE speed is a route constant, so the (ρ, √(1−ρ²)) pairs are computed
// once at construction — with exactly the expressions Step used to
// evaluate per slot, so the precomputed path is bit-identical — and only
// recomputed if the Doppler input (the speed) ever changes.
type fadingKernel struct {
	speedBits uint64 // math.Float64bits of the speed this kernel is valid for
	shadowRho float64
	shadowSq  float64 // √(1−ρ²)
	fastRho   float64
	fastSq    float64
	slowRho   float64
	slowSq    float64
}

func computeKernel(cfg Config, dt, speed float64) fadingKernel {
	k := fadingKernel{speedBits: math.Float64bits(speed)}

	// Ornstein–Uhlenbeck shadowing: decorrelates with both distance
	// traveled and time.
	shadowRate := speed/cfg.ShadowCorrMeters + 1/cfg.ShadowCorrSeconds
	k.shadowRho = math.Exp(-dt * shadowRate)
	k.shadowSq = math.Sqrt(1 - k.shadowRho*k.shadowRho)

	// Fast fading: coherence time shrinks with Doppler (∝ speed·fc).
	coh := cfg.FastCorrSeconds
	if speed > 0 {
		doppler := speed * cfg.CarrierFreqMHz * 1e6 / 3e8
		if tc := 0.423 / doppler; tc < coh {
			coh = tc
		}
	}
	k.fastRho = math.Exp(-dt / coh)
	k.fastSq = math.Sqrt(1 - k.fastRho*k.fastRho)

	// Slow environment/load drift.
	if cfg.SlowSigmaDB > 0 {
		k.slowRho = math.Exp(-dt / cfg.SlowCorrSeconds)
		k.slowSq = math.Sqrt(1 - k.slowRho*k.slowRho)
	}
	return k
}

// rsrqLoad is the assumed neighbor activity inside the RSRQ measurement
// bandwidth: reference-signal REs of all neighbors are always on, and the
// measurement integrates roughly half-loaded neighbors.
const rsrqLoad = 0.5

// Channel is the per-slot radio process. It is not safe for concurrent use.
type Channel struct {
	cfg      Config
	rng      *rand.Rand
	slot     int64
	shadowDB float64
	fastDB   float64
	slowDB   float64
	blk      *blockageState
	epi      *episodeState
	blackout *fault.BlackoutState

	// Precomputed constants of the slot path (see fadingKernel).
	dt      float64 // SlotDuration in seconds
	k       fadingKernel
	noiseMW float64 // 10^(NoisePerREdBm/10)
	floorMW float64 // 10^(OtherCellInterferenceDBm/10)

	// Route geometry: segment lengths are fixed, and for a stationary UE
	// the whole site scan (serving cell, RSRP, interference and the two
	// noise+interference log terms) is a session constant.
	segs       []float64 // per-segment lengths of the route polyline
	segTotal   float64
	staticGeo  bool
	geoCell    int
	geoRSRP    float64
	geoInterf  float64
	geoDataDBm float64 // 10·log10(noiseMW + data interference)
	geoRSRQDBm float64 // 10·log10(noiseMW + RSRQ interference)
	powers     []float64

	// skipRSRQ, when set via SetRSRQNeeded(false), elides the RSRQ
	// conversion (a pow and a log per slot) and reports Sample.RSRQdB as
	// 0. Callers that consume nothing but SINR/outage — warm-up sessions,
	// secondary carriers outside trace captures — toggle this; it touches
	// no RNG stream, so every other field stays bit-identical.
	skipRSRQ bool
}

// New creates a channel process.
func New(cfg Config) (*Channel, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ch := &Channel{
		cfg: cfg,
		rng: rand.New(rand.NewSource(cfg.Seed)),
	}
	// Start the correlated processes at a random draw from their
	// stationary distributions.
	ch.shadowDB = ch.rng.NormFloat64() * cfg.ShadowSigmaDB
	ch.fastDB = ch.rng.NormFloat64() * cfg.FastSigmaDB
	// The slow drift starts at its neutral point: sessions begin in a
	// typical state and drift from there.
	if cfg.Blockage != nil {
		ch.blk = newBlockageState(*cfg.Blockage, ch.rng)
	}
	if cfg.Episodes != nil {
		ch.epi = newEpisodeState(*cfg.Episodes, ch.rng)
	}
	ch.blackout = fault.NewBlackoutState(cfg.Fault)

	ch.dt = cfg.SlotDuration.Seconds()
	ch.k = computeKernel(cfg, ch.dt, cfg.Route.SpeedMPS)
	ch.noiseMW = math.Pow(10, cfg.NoisePerREdBm/10)
	ch.floorMW = math.Pow(10, cfg.OtherCellInterferenceDBm/10)
	if n := len(cfg.Route.Waypoints); n > 1 {
		ch.segs = make([]float64, n-1)
		for i := 1; i < n; i++ {
			ch.segs[i-1] = cfg.Route.Waypoints[i-1].Distance(cfg.Route.Waypoints[i])
			ch.segTotal += ch.segs[i-1]
		}
	}
	ch.powers = make([]float64, len(cfg.Deployment.Sites))
	ch.staticGeo = cfg.Route.SpeedMPS == 0 || len(cfg.Route.Waypoints) == 1
	if ch.staticGeo {
		pos := cfg.Route.Waypoints[0]
		ch.geoCell, ch.geoRSRP, ch.geoInterf =
			cfg.Deployment.strongestSite(pos, cfg.CarrierFreqMHz, ch.powers)
		interfData := ch.geoInterf*cfg.NeighborLoad + ch.floorMW
		ch.geoDataDBm = 10 * math.Log10(ch.noiseMW+interfData)
		interfRSRQ := ch.geoInterf*rsrqLoad + ch.floorMW
		ch.geoRSRQDBm = 10 * math.Log10(ch.noiseMW+interfRSRQ)
	}
	return ch, nil
}

// Slot returns the index of the next sample to be produced.
func (c *Channel) Slot() int64 { return c.slot }

// SetNeighborLoad retunes the neighbor-cell activity factor mid-session.
// The multi-UE contention cell calls this to replace the fixed
// statistical load with its own measured RB utilization (neighbor sites
// are assumed to carry a similar load), making interference — and
// therefore SINR and throughput — load-dependent. Negative loads and
// channels built with DisableNeighborLoad are ignored; RSRQ keeps its
// own fixed measurement load (see rsrqLoad). Draws no randomness and
// allocates nothing, so it is safe on the zero-alloc slot path and
// cannot perturb the fading processes.
func (c *Channel) SetNeighborLoad(load float64) {
	if c.cfg.DisableNeighborLoad || load < 0 {
		return
	}
	if math.Float64bits(load) == math.Float64bits(c.cfg.NeighborLoad) {
		return
	}
	c.cfg.NeighborLoad = load
	if c.staticGeo {
		interfData := c.geoInterf*load + c.floorMW
		c.geoDataDBm = 10 * math.Log10(c.noiseMW+interfData)
	}
}

// NeighborLoad reports the activity factor currently in effect.
func (c *Channel) NeighborLoad() float64 { return c.cfg.NeighborLoad }

// SetRSRQNeeded declares whether upcoming samples' RSRQdB field will be
// read. When not needed the conversion is skipped and RSRQdB reports 0;
// SINR, RSRP and every random draw are unaffected, so flipping the hint
// mid-session never perturbs the fading processes. New channels default
// to needed.
func (c *Channel) SetRSRQNeeded(needed bool) { c.skipRSRQ = !needed }

// position is Route.Position with the segment lengths precomputed at
// construction; the arithmetic mirrors Route.Position exactly.
func (c *Channel) position(tSec float64) Point {
	r := c.cfg.Route
	if r.SpeedMPS == 0 || len(r.Waypoints) == 1 {
		return r.Waypoints[0]
	}
	total := c.segTotal
	if total == 0 {
		return r.Waypoints[0]
	}
	d := math.Mod(r.SpeedMPS*tSec, 2*total)
	if d > total {
		d = 2*total - d // walking back
	}
	for i := 1; i < len(r.Waypoints); i++ {
		seg := c.segs[i-1]
		if d <= seg && seg > 0 {
			f := d / seg
			a, b := r.Waypoints[i-1], r.Waypoints[i]
			return Point{a.X + f*(b.X-a.X), a.Y + f*(b.Y-a.Y)}
		}
		d -= seg
	}
	return r.Waypoints[len(r.Waypoints)-1]
}

// Step advances one slot and returns the new radio sample.
//
//detlint:zeroalloc
func (c *Channel) Step() Sample {
	var s Sample
	c.StepInto(&s)
	return s
}

// StepInto is Step writing the sample in place — the carrier slot loop
// threads one Sample through the whole chain instead of copying the
// struct at every return.
//
//detlint:zeroalloc
func (c *Channel) StepInto(out *Sample) {
	dt := c.dt
	tSec := float64(c.slot) * dt
	pos := c.position(tSec)
	speed := c.cfg.Route.SpeedMPS

	// AR(1) fading updates with the precomputed (ρ, √(1−ρ²)) kernel; the
	// multiplication order matches the inline expressions they replace,
	// so every sample is bit-identical to the per-slot recomputation.
	if math.Float64bits(speed) != c.k.speedBits {
		c.k = computeKernel(c.cfg, dt, speed)
	}
	c.shadowDB = c.k.shadowRho*c.shadowDB + c.k.shadowSq*c.rng.NormFloat64()*c.cfg.ShadowSigmaDB
	c.fastDB = c.k.fastRho*c.fastDB + c.k.fastSq*c.rng.NormFloat64()*c.cfg.FastSigmaDB
	if c.cfg.SlowSigmaDB > 0 {
		c.slowDB = c.k.slowRho*c.slowDB + c.k.slowSq*c.rng.NormFloat64()*c.cfg.SlowSigmaDB
	}

	var cell int
	//detlint:unit dBm
	var rsrp, interfMW float64
	if c.staticGeo {
		cell, rsrp, interfMW = c.geoCell, c.geoRSRP, c.geoInterf
	} else {
		cell, rsrp, interfMW = c.cfg.Deployment.strongestSite(pos, c.cfg.CarrierFreqMHz, c.powers)
	}
	rsrp += c.shadowDB

	los, outage := true, false
	blockLossDB := 0.0
	if c.blk != nil {
		los, outage, blockLossDB = c.blk.step(dt, speed)
	}
	if c.epi != nil {
		blockLossDB += c.epi.step(dt)
	}
	if c.blackout != nil {
		if loss := c.blackout.Step(); loss > 0 {
			blockLossDB += loss
			if obs.Enabled() {
				obs.Sim.FaultBlackoutSlots.Inc()
			}
		}
	}

	var noiseDataDBm float64
	if c.staticGeo {
		noiseDataDBm = c.geoDataDBm
	} else {
		interfData := interfMW*c.cfg.NeighborLoad + c.floorMW
		noiseDataDBm = 10 * math.Log10(c.noiseMW+interfData)
	}
	sinrDB := rsrp - blockLossDB + c.fastDB + c.slowDB + c.cfg.SINRBiasDB - noiseDataDBm
	rsrqDB := 0.0
	if !c.skipRSRQ {
		// RSRQ is measured against a busier RSSI than the data SINR
		// sees (see rsrqLoad).
		var noiseRSRQDBm float64
		if c.staticGeo {
			noiseRSRQDBm = c.geoRSRQDBm
		} else {
			interfRSRQ := interfMW*rsrqLoad + c.floorMW
			noiseRSRQDBm = 10 * math.Log10(c.noiseMW+interfRSRQ)
		}
		sinrRSRQ := rsrp - blockLossDB + c.slowDB + c.cfg.SINRBiasDB - noiseRSRQDBm
		if outage {
			sinrRSRQ = math.Inf(-1)
		}
		rsrqDB = RSRQFromSINR(sinrRSRQ)
	}
	if outage {
		sinrDB = math.Inf(-1)
	}

	c.slot++
	// Observability only — nothing below feeds back into channel state,
	// so instrumented runs stay byte-identical to uninstrumented ones.
	if obs.Enabled() {
		obs.Sim.SlotsStepped.Inc()
		if outage {
			obs.Sim.Outages.Inc()
		} else {
			obs.Sim.SINRdB.Observe(sinrDB)
		}
	}
	*out = Sample{
		Pos:         pos,
		ServingCell: cell,
		RSRPdBm:     rsrp - blockLossDB,
		RSRQdB:      rsrqDB,
		SINRdB:      sinrDB,
		LOS:         los,
		Outage:      outage,
	}
}

// RSRQFromSINR converts a wideband signal-to-rest ratio into RSRQ:
// RSRQ = −10·log10(12) − 10·log10(1 + 1/sinr), clamped to the reportable
// [−20, −3] dB range. A fully dominant serving cell saturates near
// −10.8 dB; the paper's "good coverage" scouting threshold (RSRQ ≥ −12 dB)
// corresponds to the rest of the RSSI staying ≳ 5 dB below the signal.
func RSRQFromSINR(sinrDB float64) float64 {
	if math.IsInf(sinrDB, -1) {
		return -20
	}
	sinr := math.Pow(10, sinrDB/10)
	rsrq := -10.79 - 10*math.Log10(1+1/sinr)
	return math.Max(-20, math.Min(-3, rsrq))
}
