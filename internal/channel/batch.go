package channel

import (
	"fmt"
	"math/rand"

	"github.com/midband5g/midband/internal/obs"
)

// This file is the structure-of-arrays batch stepper behind the multi-UE
// cell engine: N adopted channels advance one slot per call as tight loops
// over parallel slices, with every per-slot constant (AR(1) kernel factors,
// fading sigmas, static-geometry RSRP and noise terms) hoisted into the
// batch at adoption time. The batch produces only what the contention
// scheduler consumes — SINR and outage — so the RSRQ conversion and the
// full Sample construction are skipped entirely on the fast path.
//
// Determinism contract: a batch-stepped channel produces bit-identical
// SINR samples, in draw-for-draw identical RNG order, to the same channel
// stepped via Channel.Step. The fast lane replays Step's exact arithmetic
// (same operand order, same factor grouping) against the same *rand.Rand
// stream; channels whose slot path is not statically reducible — mobile
// routes, blockage, degradation episodes, fault blackouts — fall back to
// calling Channel.Step, so every configuration stays exact.

// Batch advances several Channels one slot per call. It adopts the
// channels passed to NewBatch: their mutable fading state moves into the
// batch's SoA slices, and they must not be stepped directly (or have
// their load retuned) except through the Batch until Detach is called.
// Not safe for concurrent use.
type Batch struct {
	chs []*Channel

	// fast and fallback partition the channel indices: fast lanes run
	// the SoA loop below, fallback lanes delegate to Channel.Step.
	fast     []int
	fallback []int

	// Mutable AR(1) state (fast lanes only; indexed by channel position).
	shadow []float64
	fastf  []float64
	slowf  []float64

	// Hoisted per-lane constants of the slot path.
	shRho, shSq, shSig []float64
	faRho, faSq, faSig []float64
	slRho, slSq, slSig []float64
	slowOn             []bool
	geoRSRP            []float64
	biasDB             []float64
	dataDBm            []float64 // 10·log10(noise + data interference)
	rngs               []*rand.Rand
}

// batchFastLane reports whether a channel's slot path is statically
// reducible to the SoA fast loop: fixed geometry (stationary route), no
// blockage/episode/blackout processes (their per-slot draws and loss
// terms need the full scalar path).
func batchFastLane(c *Channel) bool {
	return c.staticGeo && c.blk == nil && c.epi == nil && c.blackout == nil
}

// NewBatch adopts the given channels into a batch stepper. The channels
// keep their identities (seeds, RNG streams, configs); the batch only
// relocates their mutable fading state. Adopted channels must not be
// stepped directly until Detach returns them.
func NewBatch(chs []*Channel) (*Batch, error) {
	if len(chs) == 0 {
		return nil, fmt.Errorf("channel: batch needs at least one channel")
	}
	n := len(chs)
	b := &Batch{
		chs:     chs,
		shadow:  make([]float64, n),
		fastf:   make([]float64, n),
		slowf:   make([]float64, n),
		shRho:   make([]float64, n),
		shSq:    make([]float64, n),
		shSig:   make([]float64, n),
		faRho:   make([]float64, n),
		faSq:    make([]float64, n),
		faSig:   make([]float64, n),
		slRho:   make([]float64, n),
		slSq:    make([]float64, n),
		slSig:   make([]float64, n),
		slowOn:  make([]bool, n),
		geoRSRP: make([]float64, n),
		biasDB:  make([]float64, n),
		dataDBm: make([]float64, n),
		rngs:    make([]*rand.Rand, n),
	}
	for i, c := range chs {
		if c == nil {
			return nil, fmt.Errorf("channel: batch lane %d is nil", i)
		}
		if !batchFastLane(c) {
			b.fallback = append(b.fallback, i)
			continue
		}
		b.fast = append(b.fast, i)
		b.adopt(i, c)
	}
	return b, nil
}

// adopt hoists one fast lane's state and constants into the SoA slices.
func (b *Batch) adopt(i int, c *Channel) {
	b.shadow[i] = c.shadowDB
	b.fastf[i] = c.fastDB
	b.slowf[i] = c.slowDB
	b.shRho[i] = c.k.shadowRho
	b.shSq[i] = c.k.shadowSq
	b.shSig[i] = c.cfg.ShadowSigmaDB
	b.faRho[i] = c.k.fastRho
	b.faSq[i] = c.k.fastSq
	b.faSig[i] = c.cfg.FastSigmaDB
	b.slRho[i] = c.k.slowRho
	b.slSq[i] = c.k.slowSq
	b.slSig[i] = c.cfg.SlowSigmaDB
	b.slowOn[i] = c.cfg.SlowSigmaDB > 0
	b.geoRSRP[i] = c.geoRSRP
	b.biasDB[i] = c.cfg.SINRBiasDB
	b.dataDBm[i] = c.geoDataDBm
	b.rngs[i] = c.rng
}

// Len returns the number of adopted channels.
func (b *Batch) Len() int { return len(b.chs) }

// FastLanes returns how many channels run on the SoA fast path (the rest
// fall back to Channel.Step per slot).
func (b *Batch) FastLanes() int { return len(b.fast) }

// StepInto advances every adopted channel one slot, writing lane i's
// instantaneous SINR into sinr[i] and its outage flag into outage[i].
// Both slices must have length Len(). Fast lanes replay Channel.Step's
// exact arithmetic over the hoisted constants; fallback lanes call
// Channel.Step and keep only the two consumed fields.
//
//detlint:zeroalloc
func (b *Batch) StepInto(sinr []float64, outage []bool) {
	_ = sinr[len(b.chs)-1]
	_ = outage[len(b.chs)-1]
	obsOn := obs.Enabled()
	for _, i := range b.fast {
		rng := b.rngs[i]
		// The exact Step expressions: ρ·x + √(1−ρ²)·N(0,1)·σ, evaluated
		// left to right so every intermediate rounding matches.
		b.shadow[i] = b.shRho[i]*b.shadow[i] + b.shSq[i]*rng.NormFloat64()*b.shSig[i]
		b.fastf[i] = b.faRho[i]*b.fastf[i] + b.faSq[i]*rng.NormFloat64()*b.faSig[i]
		if b.slowOn[i] {
			b.slowf[i] = b.slRho[i]*b.slowf[i] + b.slSq[i]*rng.NormFloat64()*b.slSig[i]
		}
		// Step computes rsrp = geoRSRP + shadow, then
		// sinr = rsrp − blockLoss + fast + slow + bias − noiseData.
		// Fast lanes have no blockage/episode/blackout process, so
		// blockLoss is exactly 0.0 and "− blockLoss" is the identity;
		// every other term is applied in Step's order.
		rsrp := b.geoRSRP[i] + b.shadow[i]
		s := rsrp + b.fastf[i] + b.slowf[i] + b.biasDB[i] - b.dataDBm[i]
		sinr[i] = s
		outage[i] = false
		b.chs[i].slot++
		// Same observability hooks as Channel.Step (write-only; nothing
		// feeds back into the simulation).
		if obsOn {
			obs.Sim.SlotsStepped.Inc()
			obs.Sim.SINRdB.Observe(s)
		}
	}
	for _, i := range b.fallback {
		s := b.chs[i].Step()
		sinr[i] = s.SINRdB
		outage[i] = s.Outage
	}
}

// SetNeighborLoad retunes every adopted channel's neighbor activity
// factor (see Channel.SetNeighborLoad) and refreshes the hoisted noise
// terms of the fast lanes. Channels are updated in lane order, with the
// exact arithmetic of the scalar method.
//
//detlint:zeroalloc
func (b *Batch) SetNeighborLoad(load float64) {
	for i, c := range b.chs {
		c.SetNeighborLoad(load)
		b.dataDBm[i] = c.geoDataDBm
	}
}

// Detach writes the SoA fading state back into the adopted channels and
// returns them, so they can be stepped directly again (e.g. to continue a
// session on the scalar path). The batch must not be stepped afterwards.
func (b *Batch) Detach() []*Channel {
	for _, i := range b.fast {
		c := b.chs[i]
		c.shadowDB = b.shadow[i]
		c.fastDB = b.fastf[i]
		c.slowDB = b.slowf[i]
	}
	return b.chs
}
