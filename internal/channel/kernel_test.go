package channel

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// referenceChannel is the straightforward per-slot implementation the
// precomputed kernel replaced: every slot recomputes the AR(1)
// coefficients, the dB→mW constants and the full site scan from scratch.
// It replicates the pre-optimization Step expression for expression; the
// production Channel must match it bit for bit.
type referenceChannel struct {
	cfg      Config
	rng      *rand.Rand
	slot     int64
	shadowDB float64
	fastDB   float64
	slowDB   float64
	blk      *blockageState
	epi      *episodeState
}

func newReferenceChannel(t *testing.T, cfg Config) *referenceChannel {
	t.Helper()
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("reference config: %v", err)
	}
	ch := &referenceChannel{
		cfg: cfg,
		rng: rand.New(rand.NewSource(cfg.Seed)),
	}
	ch.shadowDB = ch.rng.NormFloat64() * cfg.ShadowSigmaDB
	ch.fastDB = ch.rng.NormFloat64() * cfg.FastSigmaDB
	if cfg.Blockage != nil {
		ch.blk = newBlockageState(*cfg.Blockage, ch.rng)
	}
	if cfg.Episodes != nil {
		ch.epi = newEpisodeState(*cfg.Episodes, ch.rng)
	}
	return ch
}

func (c *referenceChannel) step() Sample {
	dt := c.cfg.SlotDuration.Seconds()
	tSec := float64(c.slot) * dt
	pos := c.cfg.Route.Position(tSec)
	speed := c.cfg.Route.SpeedMPS

	shadowRate := speed/c.cfg.ShadowCorrMeters + 1/c.cfg.ShadowCorrSeconds
	rho := math.Exp(-dt * shadowRate)
	c.shadowDB = rho*c.shadowDB + math.Sqrt(1-rho*rho)*c.rng.NormFloat64()*c.cfg.ShadowSigmaDB

	coh := c.cfg.FastCorrSeconds
	if speed > 0 {
		doppler := speed * c.cfg.CarrierFreqMHz * 1e6 / 3e8
		if tc := 0.423 / doppler; tc < coh {
			coh = tc
		}
	}
	rhoF := math.Exp(-dt / coh)
	c.fastDB = rhoF*c.fastDB + math.Sqrt(1-rhoF*rhoF)*c.rng.NormFloat64()*c.cfg.FastSigmaDB

	if c.cfg.SlowSigmaDB > 0 {
		rhoS := math.Exp(-dt / c.cfg.SlowCorrSeconds)
		c.slowDB = rhoS*c.slowDB + math.Sqrt(1-rhoS*rhoS)*c.rng.NormFloat64()*c.cfg.SlowSigmaDB
	}

	cell, rsrp, interfMW := c.cfg.Deployment.StrongestSite(pos, c.cfg.CarrierFreqMHz)
	rsrp += c.shadowDB

	los, outage := true, false
	blockLossDB := 0.0
	if c.blk != nil {
		los, outage, blockLossDB = c.blk.step(dt, speed)
	}
	if c.epi != nil {
		blockLossDB += c.epi.step(dt)
	}

	noiseMW := math.Pow(10, c.cfg.NoisePerREdBm/10)
	floorMW := math.Pow(10, c.cfg.OtherCellInterferenceDBm/10)
	interfData := interfMW*c.cfg.NeighborLoad + floorMW
	sinrDB := rsrp - blockLossDB + c.fastDB + c.slowDB + c.cfg.SINRBiasDB -
		10*math.Log10(noiseMW+interfData)
	interfRSRQ := interfMW*rsrqLoad + floorMW
	sinrRSRQ := rsrp - blockLossDB + c.slowDB + c.cfg.SINRBiasDB -
		10*math.Log10(noiseMW+interfRSRQ)
	if outage {
		sinrDB = math.Inf(-1)
		sinrRSRQ = math.Inf(-1)
	}

	c.slot++
	return Sample{
		Pos:         pos,
		ServingCell: cell,
		RSRPdBm:     rsrp - blockLossDB,
		RSRQdB:      RSRQFromSINR(sinrRSRQ),
		SINRdB:      sinrDB,
		LOS:         los,
		Outage:      outage,
	}
}

// kernelTrajectories covers all the specialized paths of the optimized
// Step: static geometry, Doppler-shortened coherence, multi-segment route
// ping-pong, slow drift, episodes and the blockage chain.
func kernelTrajectories() map[string]Config {
	deploy := Deployment{
		Sites:           []Point{{0, 0}, {900, 200}, {-400, 800}},
		TxPowerDBmPerRE: 18,
	}
	return map[string]Config{
		"stationary": {
			CarrierFreqMHz: 3500,
			Seed:           11,
			Route:          Stationary(Point{X: 240, Y: -60}),
			Deployment:     deploy,
			SlowSigmaDB:    1.5,
		},
		"stationary-episodes": {
			CarrierFreqMHz: 3700,
			Seed:           23,
			Route:          Stationary(Point{X: 510}),
			Deployment:     deploy,
			SlowSigmaDB:    2,
			Episodes: &EpisodeConfig{
				RatePerSec:  1.0 / 20,
				MeanSeconds: 5,
				MinDepthDB:  3,
				MaxDepthDB:  9,
			},
		},
		"walking": {
			CarrierFreqMHz: 3500,
			Seed:           37,
			Route: Route{
				Waypoints: []Point{{0, 0}, {150, 40}, {150, 300}, {-80, 420}},
				SpeedMPS:  MobilityWalking,
			},
			Deployment: deploy,
		},
		"driving-blockage": {
			CarrierFreqMHz: 28000,
			Seed:           41,
			Route: Route{
				Waypoints: []Point{{-500, 0}, {500, 0}},
				SpeedMPS:  MobilityDriving,
			},
			Deployment:  deploy,
			SlowSigmaDB: 1,
			Blockage:    &DefaultBlockage,
			Episodes: &EpisodeConfig{
				RatePerSec:  1.0 / 40,
				MeanSeconds: 8,
				MinDepthDB:  2,
				MaxDepthDB:  6,
			},
		},
	}
}

// TestKernelBitIdentity locks the precomputed slot path to the reference
// implementation: every float64 of every sample must be identical to the
// last bit over long trajectories. This is the determinism contract for
// the performance work — precomputation must change cost, never output.
func TestKernelBitIdentity(t *testing.T) {
	const slots = 200_000 // 100 simulated seconds at 0.5 ms slots
	for name, cfg := range kernelTrajectories() {
		t.Run(name, func(t *testing.T) {
			opt, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			ref := newReferenceChannel(t, cfg)
			for i := 0; i < slots; i++ {
				so, sr := opt.Step(), ref.step()
				if !samplesBitIdentical(so, sr) {
					t.Fatalf("slot %d: optimized %+v != reference %+v", i, so, sr)
				}
			}
		})
	}
}

func samplesBitIdentical(a, b Sample) bool {
	return math.Float64bits(a.Pos.X) == math.Float64bits(b.Pos.X) &&
		math.Float64bits(a.Pos.Y) == math.Float64bits(b.Pos.Y) &&
		a.ServingCell == b.ServingCell &&
		math.Float64bits(a.RSRPdBm) == math.Float64bits(b.RSRPdBm) &&
		math.Float64bits(a.RSRQdB) == math.Float64bits(b.RSRQdB) &&
		math.Float64bits(a.SINRdB) == math.Float64bits(b.SINRdB) &&
		a.LOS == b.LOS &&
		a.Outage == b.Outage
}

// TestKernelMatchesInlineExpressions pins the precomputed coefficients to
// the exact inline expressions they replaced.
func TestKernelMatchesInlineExpressions(t *testing.T) {
	cfg := Config{
		CarrierFreqMHz: 3500,
		Seed:           5,
		Route: Route{
			Waypoints: []Point{{0, 0}, {1000, 0}},
			SpeedMPS:  MobilityDriving,
		},
		Deployment:  Deployment{Sites: []Point{{0, 0}}, TxPowerDBmPerRE: 18},
		SlowSigmaDB: 1.5,
	}
	cfg = cfg.withDefaults()
	dt := cfg.SlotDuration.Seconds()
	speed := cfg.Route.SpeedMPS
	k := computeKernel(cfg, dt, speed)

	shadowRate := speed/cfg.ShadowCorrMeters + 1/cfg.ShadowCorrSeconds
	rho := math.Exp(-dt * shadowRate)
	if math.Float64bits(k.shadowRho) != math.Float64bits(rho) ||
		math.Float64bits(k.shadowSq) != math.Float64bits(math.Sqrt(1-rho*rho)) {
		t.Errorf("shadow kernel (%v,%v) != inline (%v,%v)", k.shadowRho, k.shadowSq, rho, math.Sqrt(1-rho*rho))
	}
	coh := cfg.FastCorrSeconds
	doppler := speed * cfg.CarrierFreqMHz * 1e6 / 3e8
	if tc := 0.423 / doppler; tc < coh {
		coh = tc
	}
	rhoF := math.Exp(-dt / coh)
	if math.Float64bits(k.fastRho) != math.Float64bits(rhoF) ||
		math.Float64bits(k.fastSq) != math.Float64bits(math.Sqrt(1-rhoF*rhoF)) {
		t.Errorf("fast kernel (%v,%v) != inline (%v,%v)", k.fastRho, k.fastSq, rhoF, math.Sqrt(1-rhoF*rhoF))
	}
	rhoS := math.Exp(-dt / cfg.SlowCorrSeconds)
	if math.Float64bits(k.slowRho) != math.Float64bits(rhoS) ||
		math.Float64bits(k.slowSq) != math.Float64bits(math.Sqrt(1-rhoS*rhoS)) {
		t.Errorf("slow kernel (%v,%v) != inline (%v,%v)", k.slowRho, k.slowSq, rhoS, math.Sqrt(1-rhoS*rhoS))
	}
}

// TestPositionMatchesRoutePosition locks the segment-cached position
// walker to Route.Position over a dense time sweep.
func TestPositionMatchesRoutePosition(t *testing.T) {
	cfg := Config{
		CarrierFreqMHz: 3500,
		Seed:           7,
		Route: Route{
			Waypoints: []Point{{0, 0}, {100, 0}, {100, 100}, {-50, 130}},
			SpeedMPS:  3.3,
		},
		Deployment: Deployment{Sites: []Point{{0, 0}}, TxPowerDBmPerRE: 18},
	}
	ch, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500_000; i++ {
		tSec := float64(i) * 0.0005
		got, want := ch.position(tSec), ch.cfg.Route.Position(tSec)
		if math.Float64bits(got.X) != math.Float64bits(want.X) ||
			math.Float64bits(got.Y) != math.Float64bits(want.Y) {
			t.Fatalf("t=%gs: position %+v != Route.Position %+v", tSec, got, want)
		}
	}
}

// TestDisableNeighborLoad covers the withDefaults zero-value fix: the
// zero value still defaults to 0.1, an explicit value is kept, and
// DisableNeighborLoad makes "no neighbor activity" expressible.
func TestDisableNeighborLoad(t *testing.T) {
	base := Config{
		CarrierFreqMHz: 3500,
		SlotDuration:   500 * time.Microsecond,
		Route:          Stationary(Point{X: 100}),
		Deployment:     Deployment{Sites: []Point{{0, 0}, {300, 0}}, TxPowerDBmPerRE: 18},
	}

	if got := base.withDefaults().NeighborLoad; got != 0.1 {
		t.Errorf("zero NeighborLoad: got %g, want default 0.1", got)
	}
	explicit := base
	explicit.NeighborLoad = 0.3
	if got := explicit.withDefaults().NeighborLoad; got != 0.3 {
		t.Errorf("explicit NeighborLoad: got %g, want 0.3", got)
	}
	disabled := base
	disabled.DisableNeighborLoad = true
	disabled.NeighborLoad = 0.7 // ignored when disabled
	if got := disabled.withDefaults().NeighborLoad; got != 0 {
		t.Errorf("DisableNeighborLoad: got %g, want 0", got)
	}

	negative := base
	negative.NeighborLoad = -0.1
	if err := negative.withDefaults().Validate(); err == nil {
		t.Error("negative NeighborLoad: want validation error, got nil")
	}

	// Disabling neighbor interference must raise SINR: same seed, same
	// geometry, strictly less interference on every slot.
	on, err := New(base)
	if err != nil {
		t.Fatal(err)
	}
	offCfg := base
	offCfg.DisableNeighborLoad = true
	off, err := New(offCfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		son, soff := on.Step(), off.Step()
		if soff.SINRdB <= son.SINRdB {
			t.Fatalf("slot %d: disabled-neighbor SINR %.3f not above loaded SINR %.3f", i, soff.SINRdB, son.SINRdB)
		}
	}
}
