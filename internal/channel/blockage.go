package channel

import (
	"fmt"
	"math/rand"
)

// BlockageConfig parameterizes the mmWave LOS/NLOS/outage Markov process
// that makes FR2 channels erratic (§7 of the paper: limited coverage,
// sensitivity to obstructions, outages under driving).
type BlockageConfig struct {
	// NLOSLossDB is the extra loss while blocked (typ. 15–25 dB).
	NLOSLossDB float64
	// BlockRatePerSec is the LOS→NLOS transition rate when stationary.
	BlockRatePerSec float64
	// RecoverRatePerSec is the NLOS→LOS transition rate.
	RecoverRatePerSec float64
	// OutageRatePerSec is the NLOS→outage transition rate.
	OutageRatePerSec float64
	// OutageRecoverPerSec is the outage→LOS transition rate.
	OutageRecoverPerSec float64
	// SpeedFactor scales the block and outage rates per m/s of UE speed;
	// this is what makes driving so much worse than walking on mmWave.
	SpeedFactor float64
}

// DefaultBlockage is a 28 GHz urban profile. Blockage transitions are
// frequent — pedestrians, foliage and self-blockage swing the link between
// boresight LOS and a heavily attenuated NLOS state several times per
// second once the UE moves, which is what makes FR2 throughput so erratic
// in §7 of the paper.
var DefaultBlockage = BlockageConfig{
	NLOSLossDB:          16,
	BlockRatePerSec:     1.0,
	RecoverRatePerSec:   1.8,
	OutageRatePerSec:    1.0,
	OutageRecoverPerSec: 4.0,
	SpeedFactor:         0.12,
}

// Validate checks the rates are non-negative.
func (b BlockageConfig) Validate() error {
	if b.NLOSLossDB < 0 || b.BlockRatePerSec < 0 || b.RecoverRatePerSec <= 0 ||
		b.OutageRatePerSec < 0 || b.OutageRecoverPerSec <= 0 || b.SpeedFactor < 0 {
		return fmt.Errorf("channel: invalid blockage config %+v", b)
	}
	return nil
}

type blockState uint8

const (
	stateLOS blockState = iota
	stateNLOS
	stateOutage
)

type blockageState struct {
	cfg   BlockageConfig
	rng   *rand.Rand
	state blockState
}

func newBlockageState(cfg BlockageConfig, rng *rand.Rand) *blockageState {
	return &blockageState{cfg: cfg, rng: rng, state: stateLOS}
}

// step advances the chain by dt seconds at the given UE speed and returns
// (los, outage, lossDB).
//
//detlint:zeroalloc
func (b *blockageState) step(dt, speed float64) (los, outage bool, lossDB float64) {
	mob := 1 + b.cfg.SpeedFactor*speed
	switch b.state {
	case stateLOS:
		if b.rng.Float64() < b.cfg.BlockRatePerSec*mob*dt {
			b.state = stateNLOS
		}
	case stateNLOS:
		switch r := b.rng.Float64(); {
		case r < b.cfg.RecoverRatePerSec*dt:
			b.state = stateLOS
		case r < (b.cfg.RecoverRatePerSec+b.cfg.OutageRatePerSec*mob)*dt:
			b.state = stateOutage
		}
	case stateOutage:
		if b.rng.Float64() < b.cfg.OutageRecoverPerSec*dt {
			b.state = stateLOS
		}
	}
	switch b.state {
	case stateNLOS:
		return false, false, b.cfg.NLOSLossDB
	case stateOutage:
		return false, true, 0
	default:
		return true, false, 0
	}
}
