package channel

import (
	"fmt"
	"math/rand"
)

// EpisodeConfig parameterizes an episodic degradation process: occasional
// multi-second interference/congestion episodes that depress the link by
// several dB and then clear. Unlike the symmetric Gaussian drift, episodes
// are negative-only and heavy-tailed — they reproduce the deep 20–40 s
// throughput sags of the paper's Figs. 13 and 16 (the direct cause of the
// video stalls in §6) while leaving the upper-quantile statistics (MIMO
// rank and modulation shares, §4.1) nearly untouched.
type EpisodeConfig struct {
	// RatePerSec is the episode arrival rate (e.g. 1/75 ≈ one every
	// 75 s).
	RatePerSec float64
	// MeanSeconds is the mean episode duration (exponentially
	// distributed).
	MeanSeconds float64
	// MinDepthDB and MaxDepthDB bound the uniform per-episode depth.
	MinDepthDB, MaxDepthDB float64
}

// Validate checks the configuration.
func (e EpisodeConfig) Validate() error {
	if e.RatePerSec < 0 || e.MeanSeconds <= 0 ||
		e.MinDepthDB < 0 || e.MaxDepthDB < e.MinDepthDB {
		return fmt.Errorf("channel: invalid episode config %+v", e)
	}
	return nil
}

type episodeState struct {
	cfg       EpisodeConfig
	rng       *rand.Rand
	remaining float64 // seconds left in the current episode (0 = none)
	depthDB   float64
	ramp      float64 // current applied depth (episodes ramp in/out)
}

func newEpisodeState(cfg EpisodeConfig, rng *rand.Rand) *episodeState {
	return &episodeState{cfg: cfg, rng: rng}
}

// step advances dt seconds and returns the current degradation in dB (≥ 0).
//
//detlint:zeroalloc
func (e *episodeState) step(dt float64) float64 {
	if e.remaining <= 0 {
		if e.rng.Float64() < e.cfg.RatePerSec*dt {
			e.remaining = e.rng.ExpFloat64() * e.cfg.MeanSeconds
			e.depthDB = e.cfg.MinDepthDB + e.rng.Float64()*(e.cfg.MaxDepthDB-e.cfg.MinDepthDB)
		}
	} else {
		e.remaining -= dt
	}
	// Ramp toward the target over ~1 s so onsets look like congestion
	// building rather than step functions.
	target := 0.0
	if e.remaining > 0 {
		target = e.depthDB
	}
	const rampPerSec = 1.0
	if e.ramp < target {
		e.ramp += rampPerSec * dt * e.depthDB
		if e.ramp > target {
			e.ramp = target
		}
	} else if e.ramp > target {
		d := e.depthDB
		if d == 0 {
			d = 1
		}
		e.ramp -= rampPerSec * dt * d
		if e.ramp < target {
			e.ramp = target
		}
	}
	return e.ramp
}
