package channel

import (
	"testing"
)

func benchChannel(b *testing.B, cfg Config) {
	ch, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkSample = ch.Step()
	}
}

// sinkSample keeps the compiler from eliding Step.
var sinkSample Sample

// BenchmarkChannelStep exercises the per-slot hot path the campaign
// spends ~40% of its time in: stationary (static-geometry fast path),
// mobile multi-site (per-slot scan), and the episode/blockage decorated
// variants.
func BenchmarkChannelStep(b *testing.B) {
	for name, cfg := range kernelTrajectories() {
		b.Run(name, func(b *testing.B) { benchChannel(b, cfg) })
	}
}

// TestChannelStepAllocs pins the steady-state slot loop at zero
// allocations per Step.
func TestChannelStepAllocs(t *testing.T) {
	for name, cfg := range kernelTrajectories() {
		t.Run(name, func(t *testing.T) {
			ch, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			// Warm up past any one-time growth.
			for i := 0; i < 1000; i++ {
				ch.Step()
			}
			allocs := testing.AllocsPerRun(1000, func() {
				sinkSample = ch.Step()
			})
			if allocs > 0 {
				t.Errorf("Channel.Step allocates %.2f objects/slot, want 0", allocs)
			}
		})
	}
}
