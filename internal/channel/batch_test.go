package channel

import (
	"math"
	"testing"
	"time"

	"github.com/midband5g/midband/internal/fault"
)

func batchTestConfig(seed int64) Config {
	return Config{
		CarrierFreqMHz:           3500,
		SlotDuration:             500 * time.Microsecond,
		Seed:                     seed,
		Route:                    Stationary(Point{X: 300, Y: 120}),
		Deployment:               Deployment{Sites: []Point{{}, {X: 900}}, TxPowerDBmPerRE: 18},
		OtherCellInterferenceDBm: -100,
		ShadowSigmaDB:            3,
		FastSigmaDB:              1.5,
		SINRBiasDB:               2,
	}
}

// mustPair builds two channels from the same config — one to step through
// the batch, one as the scalar reference sharing the identical RNG seed.
func mustPair(t *testing.T, cfg Config) (*Channel, *Channel) {
	t.Helper()
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return a, b
}

// TestBatchLockstepScalar is the bit-identity contract of the SoA fast
// lane: 100k slots of batch stepping must reproduce the scalar Step's
// SINR samples to the exact bit, across slow-drift on/off and a
// mid-session neighbor-load retune.
func TestBatchLockstepScalar(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"default", func(*Config) {}},
		{"slow-drift", func(c *Config) { c.SlowSigmaDB = 1.5; c.SlowCorrSeconds = 5 }},
		{"no-neighbor-load", func(c *Config) { c.DisableNeighborLoad = true }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var scalars []*Channel
			var adopted []*Channel
			for i := 0; i < 3; i++ {
				cfg := batchTestConfig(1000 + int64(i))
				cfg.Route = Stationary(Point{X: 100 + 200*float64(i)})
				tc.mut(&cfg)
				s, a := mustPair(t, cfg)
				scalars = append(scalars, s)
				adopted = append(adopted, a)
			}
			b, err := NewBatch(adopted)
			if err != nil {
				t.Fatal(err)
			}
			if b.FastLanes() != len(adopted) {
				t.Fatalf("fast lanes %d, want %d (all stationary fault-free channels)", b.FastLanes(), len(adopted))
			}
			sinr := make([]float64, b.Len())
			outage := make([]bool, b.Len())
			for slot := 0; slot < 100_000; slot++ {
				if slot == 40_000 {
					// Mid-session load retune, as the contention cell's
					// load coupling performs.
					for _, s := range scalars {
						s.SetNeighborLoad(0.73)
					}
					b.SetNeighborLoad(0.73)
				}
				b.StepInto(sinr, outage)
				for i, s := range scalars {
					want := s.Step()
					if math.Float64bits(want.SINRdB) != math.Float64bits(sinr[i]) {
						t.Fatalf("slot %d lane %d: batch SINR %v (bits %x), scalar %v (bits %x)",
							slot, i, sinr[i], math.Float64bits(sinr[i]), want.SINRdB, math.Float64bits(want.SINRdB))
					}
					if want.Outage != outage[i] {
						t.Fatalf("slot %d lane %d: batch outage %v, scalar %v", slot, i, outage[i], want.Outage)
					}
				}
			}
		})
	}
}

// TestBatchFallbackLanes pins the fallback contract: channels whose slot
// path cannot be hoisted — mobile routes, fault blackouts — still advance
// bit-identically (they delegate to Channel.Step), and mixed batches keep
// every lane exact.
func TestBatchFallbackLanes(t *testing.T) {
	mobile := batchTestConfig(7)
	mobile.Route = Route{Waypoints: []Point{{X: 50}, {X: 1200}}, SpeedMPS: 1.4}

	blackout := batchTestConfig(8)
	blackout.Fault = &fault.Blackout{ProbPerSlot: 0.001, DurationSlots: 40, DepthDB: 60, Seed: 99}

	fastCfg := batchTestConfig(9)

	var scalars, adopted []*Channel
	for _, cfg := range []Config{mobile, blackout, fastCfg} {
		s, a := mustPair(t, cfg)
		scalars = append(scalars, s)
		adopted = append(adopted, a)
	}
	b, err := NewBatch(adopted)
	if err != nil {
		t.Fatal(err)
	}
	if b.FastLanes() != 1 {
		t.Fatalf("fast lanes %d, want 1 (mobile and blackout lanes must fall back)", b.FastLanes())
	}
	sinr := make([]float64, b.Len())
	outage := make([]bool, b.Len())
	for slot := 0; slot < 50_000; slot++ {
		b.StepInto(sinr, outage)
		for i, s := range scalars {
			want := s.Step()
			if math.Float64bits(want.SINRdB) != math.Float64bits(sinr[i]) {
				t.Fatalf("slot %d lane %d: batch SINR bits %x, scalar bits %x",
					slot, i, math.Float64bits(sinr[i]), math.Float64bits(want.SINRdB))
			}
			if want.Outage != outage[i] {
				t.Fatalf("slot %d lane %d: batch outage %v, scalar %v", slot, i, outage[i], want.Outage)
			}
		}
	}
}

// TestBatchDetach checks that Detach hands the fading state back so the
// channels can continue on the scalar path exactly where the batch left
// them.
func TestBatchDetach(t *testing.T) {
	cfg := batchTestConfig(21)
	ref, ad := mustPair(t, cfg)
	b, err := NewBatch([]*Channel{ad})
	if err != nil {
		t.Fatal(err)
	}
	sinr := make([]float64, 1)
	outage := make([]bool, 1)
	for slot := 0; slot < 10_000; slot++ {
		b.StepInto(sinr, outage)
		ref.Step()
	}
	chs := b.Detach()
	if chs[0].Slot() != ref.Slot() {
		t.Fatalf("detached slot %d, reference %d", chs[0].Slot(), ref.Slot())
	}
	for slot := 0; slot < 10_000; slot++ {
		got := chs[0].Step()
		want := ref.Step()
		if math.Float64bits(want.SINRdB) != math.Float64bits(got.SINRdB) {
			t.Fatalf("post-detach slot %d: SINR bits %x, want %x",
				slot, math.Float64bits(got.SINRdB), math.Float64bits(want.SINRdB))
		}
	}
}

// TestBatchStepAllocs pins the SoA loop at zero allocations per slot.
func TestBatchStepAllocs(t *testing.T) {
	var chs []*Channel
	for i := 0; i < 16; i++ {
		cfg := batchTestConfig(int64(100 + i))
		ch, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		chs = append(chs, ch)
	}
	b, err := NewBatch(chs)
	if err != nil {
		t.Fatal(err)
	}
	sinr := make([]float64, b.Len())
	outage := make([]bool, b.Len())
	for i := 0; i < 1000; i++ {
		b.StepInto(sinr, outage)
	}
	allocs := testing.AllocsPerRun(2000, func() {
		b.StepInto(sinr, outage)
	})
	if allocs > 0 {
		t.Errorf("Batch.StepInto allocates %.3f objects/slot, want 0", allocs)
	}
}
