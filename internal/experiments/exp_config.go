package experiments

import (
	"bytes"

	"fmt"
	"github.com/midband5g/midband/internal/analysis"
	"time"

	"github.com/midband5g/midband/internal/config"
	"github.com/midband5g/midband/internal/core"
	"github.com/midband5g/midband/internal/net5g"
	"github.com/midband5g/midband/internal/operators"
	"github.com/midband5g/midband/internal/phy"
	"github.com/midband5g/midband/internal/tdd"
	"github.com/midband5g/midband/internal/xcal"
)

// Table1 reproduces the dataset statistics table by running a (scaled-down)
// campaign across all mid-band operators.
func Table1(o Options) (*core.CampaignStats, error) {
	return core.RunCampaign(core.CampaignConfig{
		SessionDuration: o.sessionSeconds(48),
		LatencyProbes:   1000,
		Seed:            o.seed(),
		Faults:          o.Faults,
	})
}

// ConfigRow is one recovered Table 2/3 row.
type ConfigRow struct {
	Operator string
	Country  string
	Carriers []config.ChannelConfig
	CA       bool
}

// Tables23 reproduces the network-configuration tables by capturing each
// operator's signaling in a trace and running the Appendix 10.1 extraction
// over it — the configurations are recovered from decoded MIB/SIB1/DCI,
// not copied from the registry.
func Tables23(o Options) ([]ConfigRow, error) {
	var rows []ConfigRow
	for i, op := range operators.MidBand() {
		sess, err := core.NewSession(op, operators.Stationary(o.seed()+int64(i)*97))
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		w, err := xcal.NewWriter(&buf, sess.Meta())
		if err != nil {
			return nil, err
		}
		if _, err := sess.RunIperf(o.sessionSeconds(1.5), net5g.Saturate, w); err != nil {
			return nil, err
		}
		if err := w.Flush(); err != nil {
			return nil, err
		}
		r, err := xcal.NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			return nil, err
		}
		ex, err := config.Extract(r)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", op.Acronym, err)
		}
		rows = append(rows, ConfigRow{
			Operator: op.Acronym,
			Country:  op.Country,
			Carriers: ex.Carriers,
			CA:       len(ex.Carriers) > 1,
		})
	}
	return rows, nil
}

// Sec32Result compares the §3.2 theoretical PHY maxima with the maximum
// observed throughput, reproducing the "14% and 29% higher" finding for
// Vodafone and Orange Spain.
type Sec32Result struct {
	Operator       string
	BandwidthMHz   int
	TheoreticalMax float64 // Mbps, paper's formula (Qm=6, duty-derated)
	ObservedMax    float64 // Mbps, 100 ms-window maximum
	GapPct         float64 // (theory − observed) / observed × 100
}

// Sec32 runs the theoretical-vs-observed comparison for the two Spanish
// carriers the paper quotes (1213.44 and 1352.12 Mbps).
func Sec32(o Options) ([]Sec32Result, error) {
	duty := tdd.MustParse("DDDDDDDSUU").DLDutyCycle()
	cases := []struct {
		acr string
		bw  int
		nrb int
	}{
		{"V_Sp", 90, 245},
		{"O_Sp100", 100, 273},
	}
	var out []Sec32Result
	for _, c := range cases {
		res, err := measure(c.acr, o.sessionSeconds(30), net5g.Demand{DL: true}, o.seed())
		if err != nil {
			return nil, err
		}
		// Observed max over 1 s windows — the sustained peak a speed
		// test reports, not a single lucky frame.
		window := int(1.0 / res.SlotDuration.Seconds())
		maxMbps := 0.0
		series := res.DLBitsPerSlot
		for i := 0; i+window <= len(series); i += window {
			sum := 0.0
			for _, b := range series[i : i+window] {
				sum += b
			}
			if mbps := sum / 1.0 / 1e6; mbps > maxMbps {
				maxMbps = mbps
			}
		}
		theory := phy.MaxRateMbps(phy.CarrierRateParams{
			Layers: 4, Modulation: phy.QAM64, Numerology: phy.Mu1,
			NRB: c.nrb, Overhead: phy.OverheadDLFR1, DLDutyCycle: duty,
		})
		out = append(out, Sec32Result{
			Operator:       c.acr,
			BandwidthMHz:   c.bw,
			TheoreticalMax: theory,
			ObservedMax:    maxMbps,
			GapPct:         (theory - maxMbps) / maxMbps * 100,
		})
	}
	return out, nil
}

// Fig11Row is one operator's user-plane latency pair.
type Fig11Row struct {
	Operator     string
	BandwidthMHz int
	Pattern      string
	CleanMs      float64 // BLER = 0 (mean)
	RetxMs       float64 // BLER > 0 (mean)
	// CleanP5Ms and CleanP95Ms bound the BLER=0 distribution (the box
	// whiskers of the paper's Fig. 11).
	CleanP5Ms, CleanP95Ms float64
}

// Fig11 reproduces the PHY user-plane latency figure for the four European
// operators the paper shows.
func Fig11(o Options) ([]Fig11Row, error) {
	probes := 30000
	if o.Quick {
		probes = 4000
	}
	var rows []Fig11Row
	for _, acr := range []string{"V_It", "V_Ge", "O_Fr", "T_Ge"} {
		op, err := operators.ByAcronym(acr)
		if err != nil {
			return nil, err
		}
		sess, err := core.NewSession(op, operators.Stationary(o.seed()))
		if err != nil {
			return nil, err
		}
		clean, retx, err := sess.RunLatency(probes, 0.08)
		if err != nil {
			return nil, err
		}
		ms := make([]float64, len(clean))
		for j, d := range clean {
			ms[j] = float64(d) / 1e6
		}
		rows = append(rows, Fig11Row{
			Operator:     acr,
			BandwidthMHz: op.PCell().BandwidthMHz,
			Pattern:      op.PCell().TDDPattern,
			CleanMs:      meanMs(clean),
			RetxMs:       meanMs(retx),
			CleanP5Ms:    analysis.Percentile(ms, 5),
			CleanP95Ms:   analysis.Percentile(ms, 95),
		})
	}
	return rows, nil
}

func meanMs(ds []time.Duration) float64 {
	if len(ds) == 0 {
		return 0
	}
	var s time.Duration
	for _, d := range ds {
		s += d
	}
	return float64(s) / float64(len(ds)) / 1e6
}
