package experiments

import "testing"

func TestExtNSAvsSA(t *testing.T) {
	rows, err := ExtNSAvsSA(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatal("want NSA and SA rows")
	}
	nsa, sa := rows[0], rows[1]
	// NSA T-Mobile routes UL to LTE; SA has no anchor at all.
	if nsa.NRULMbps != 0 || nsa.LTEULMbps <= 0 {
		t.Errorf("NSA UL split wrong: NR=%.1f LTE=%.1f", nsa.NRULMbps, nsa.LTEULMbps)
	}
	if sa.LTEULMbps != 0 || sa.NRULMbps <= 0 {
		t.Errorf("SA UL split wrong: NR=%.1f LTE=%.1f", sa.NRULMbps, sa.LTEULMbps)
	}
	// The observed motivation for prefer-LTE: T-Mobile's LTE UL beats its
	// NR mid-band UL.
	if nsa.ULMbps <= sa.ULMbps {
		t.Logf("note: NSA %.1f vs SA %.1f (paper reports LTE UL above NR UL for T-Mobile)",
			nsa.ULMbps, sa.ULMbps)
	}
}

func TestExtTDDSweep(t *testing.T) {
	rows, err := ExtTDDSweep(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatal("want 4 patterns")
	}
	get := func(pat string) ExtTDDSweepRow {
		for _, r := range rows {
			if r.Pattern == pat {
				return r
			}
		}
		t.Fatalf("missing %s", pat)
		return ExtTDDSweepRow{}
	}
	// DL throughput tracks the DL duty cycle; UL moves the other way.
	dlHeavy, ulHeavy := get("DDDDDDDDSU"), get("DDSUU")
	if dlHeavy.DLMbps <= ulHeavy.DLMbps {
		t.Errorf("DL-heavy frame should out-download UL-heavy: %.0f vs %.0f",
			dlHeavy.DLMbps, ulHeavy.DLMbps)
	}
	if dlHeavy.ULMbps >= ulHeavy.ULMbps {
		t.Errorf("UL-heavy frame should out-upload DL-heavy: %.0f vs %.0f",
			dlHeavy.ULMbps, ulHeavy.ULMbps)
	}
	// Latency: frequent UL opportunities (DDDSU, DDSUU) beat bunched ones.
	if get("DDSUU").LatencyMs >= get("DDDDDDDDSU").LatencyMs {
		t.Error("UL-rich frame should have lower user-plane latency")
	}
	// The SR cycle always costs extra.
	for _, r := range rows {
		if r.LatencySRMs <= r.LatencyMs {
			t.Errorf("%s: SR latency %.2f should exceed preconfigured %.2f",
				r.Pattern, r.LatencySRMs, r.LatencyMs)
		}
	}
}

func TestExtABRComparison(t *testing.T) {
	rows, err := ExtABRComparison(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("want 5 algorithms, got %d", len(rows))
	}
	names := map[string]bool{}
	for _, r := range rows {
		names[r.ABR] = true
		if r.NormBitrate <= 0 || r.NormBitrate > 1 {
			t.Errorf("%s: norm bitrate %.2f out of range", r.ABR, r.NormBitrate)
		}
		if r.StallPct < 0 || r.StallPct > 60 {
			t.Errorf("%s: stall %.1f%% implausible", r.ABR, r.StallPct)
		}
	}
	for _, want := range []string{"bola", "throughput", "dynamic", "l2a", "lolp"} {
		if !names[want] {
			t.Errorf("missing algorithm %s", want)
		}
	}
}

func TestExtSchedulers(t *testing.T) {
	rows, err := ExtSchedulers(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatal("want 3 policies")
	}
	get := func(p string) ExtSchedulerRow {
		for _, r := range rows {
			if r.Policy == p {
				return r
			}
		}
		t.Fatalf("missing %s", p)
		return ExtSchedulerRow{}
	}
	if eq := get("equal-share"); eq.JainFairness < 0.8 {
		t.Errorf("equal share fairness %.2f too low", eq.JainFairness)
	}
	if mr := get("max-rate"); mr.JainFairness >= get("equal-share").JainFairness {
		t.Error("max-rate should be less fair than equal share")
	}
	if pf := get("proportional-fair"); pf.NearMbps <= 0 || pf.FarMbps <= 0 {
		t.Error("PF should serve both UEs")
	}
}

func TestULRoutingShare(t *testing.T) {
	share, err := ULRoutingShare(quick(), "V_Sp")
	if err != nil {
		t.Fatal(err)
	}
	// A healthy European NSA deployment sends most (not necessarily all)
	// UL on NR under the dynamic policy.
	if share <= 0.5 || share > 1 {
		t.Errorf("V_Sp NR UL share = %.2f, want mostly NR", share)
	}
	if _, err := ULRoutingShare(quick(), "nope"); err == nil {
		t.Error("unknown operator should fail")
	}
}

func TestExtTransport(t *testing.T) {
	rows, err := ExtTransport(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatal("want 3 operators")
	}
	for _, r := range rows {
		if r.GoodputMbps <= 0 || r.GoodputMbps > r.PHYMbps+1 {
			t.Errorf("%s: goodput %.0f vs PHY %.0f inconsistent", r.Operator, r.GoodputMbps, r.PHYMbps)
		}
		if r.EfficiencyPc < 50 || r.EfficiencyPc > 100.5 {
			t.Errorf("%s: transport efficiency %.0f%% implausible", r.Operator, r.EfficiencyPc)
		}
		if r.MeanRTTms <= 0 {
			t.Errorf("%s: no RTT measured", r.Operator)
		}
	}
}

func TestExtHandover(t *testing.T) {
	rows, err := ExtHandover(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatal("want walking and driving")
	}
	for _, r := range rows {
		if r.WithMbps <= 0 || r.WithoutMbps <= 0 {
			t.Errorf("%s: zero throughput", r.Mobility)
		}
		// Handover interruptions can only cost throughput.
		if r.WithMbps > r.WithoutMbps*1.02 {
			t.Errorf("%s: interruption-enabled %.0f exceeds disabled %.0f",
				r.Mobility, r.WithMbps, r.WithoutMbps)
		}
	}
	// Driving crosses more cell boundaries than walking.
	if rows[1].InterruptionPct < rows[0].InterruptionPct-0.5 {
		t.Errorf("driving handover cost %.1f%% should be ≥ walking %.1f%%",
			rows[1].InterruptionPct, rows[0].InterruptionPct)
	}
}
