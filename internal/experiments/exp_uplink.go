package experiments

import (
	"time"

	"github.com/midband5g/midband/internal/iperf"
	"github.com/midband5g/midband/internal/lte"
	"github.com/midband5g/midband/internal/net5g"
	"github.com/midband5g/midband/internal/operators"
)

// Fig09Row is one European operator's NR UL throughput under good channel
// conditions.
type Fig09Row struct {
	Operator     string
	BandwidthMHz int
	ULMbps       float64
}

// fig9Order follows the paper's bandwidth-sorted bar order.
var fig9Order = []string{"V_It", "S_Fr", "V_Ge", "T_Ge", "O_Fr", "V_Sp", "O_Sp90", "O_Sp100"}

// Fig09 reproduces the European PHY UL throughput figure (CQI ≥ 12): all
// well below 120 Mbps and uncorrelated with channel bandwidth.
func Fig09(o Options) ([]Fig09Row, error) {
	var rows []Fig09Row
	for i, acr := range fig9Order {
		op, err := operators.ByAcronym(acr)
		if err != nil {
			return nil, err
		}
		// CQI-conditioned UL needs enough qualifying slots.
		d := 30 * time.Second
		if o.Quick {
			d = 10 * time.Second
		}
		res, err := ulOnlyNR(acr, d, o.seed()+int64(i)*37)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig09Row{
			Operator:     acr,
			BandwidthMHz: op.PCell().BandwidthMHz,
			ULMbps:       ulMbpsWithCQI(res, func(c int) bool { return c >= 12 }),
		})
	}
	return rows, nil
}

// ulOnlyNRDegraded measures NR-only uplink at a cell-edge position.
func ulOnlyNRDegraded(acr string, d time.Duration, seed int64) (*iperf.Result, error) {
	op, err := operators.ByAcronym(acr)
	if err != nil {
		return nil, err
	}
	cfg, err := op.LinkConfig(operators.Stationary(seed))
	if err != nil {
		return nil, err
	}
	cfg.ULPolicy = lte.ULNROnly
	cfg.Carriers[0].Channel.SINRBiasDB -= 13
	link, err := net5g.NewLink(cfg)
	if err != nil {
		return nil, err
	}
	if _, err := iperf.Run(link, iperf.Config{Duration: time.Second}); err != nil {
		return nil, err
	}
	return iperf.Run(link, iperf.Config{Duration: d, Demand: net5g.Saturate})
}

// ulMbpsWithCQI averages the UL goodput over slots whose CQI matches.
func ulMbpsWithCQI(res *iperf.Result, keep func(int) bool) float64 {
	var bits float64
	var n int
	for i, b := range res.ULBitsPerSlot {
		if keep(int(res.CQI[i])) {
			bits += b
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return bits / (float64(n) * res.SlotDuration.Seconds()) / 1e6
}

// Fig10Row is one US channel's UL throughput under good and poor channel
// conditions.
type Fig10Row struct {
	Channel    string // "40", "60", "100" (MHz) or "LTE_US"
	Operator   string
	GoodULMbps float64 // CQI ≥ 12
	PoorULMbps float64 // CQI < 10
}

// Fig10 reproduces the US PHY UL figure, including the LTE anchor box that
// explains why T-Mobile prefers the 4G leg for uplink.
func Fig10(o Options) ([]Fig10Row, error) {
	cases := []struct {
		channel, acr string
	}{
		{"40", "Att_US"}, {"60", "Vzw_US"}, {"100", "Tmb_US"},
	}
	var rows []Fig10Row
	d := 30 * time.Second // conditioning needs samples; see Fig09
	if o.Quick {
		d = 10 * time.Second
	}
	for i, c := range cases {
		res, err := ulOnlyNR(c.acr, d, o.seed()+int64(i)*41)
		if err != nil {
			return nil, err
		}
		// Good stationary spots rarely report CQI < 10; like the paper's
		// campaign, the poor-channel box comes from measurements at a
		// degraded location (cell edge).
		resPoor, err := ulOnlyNRDegraded(c.acr, d, o.seed()+int64(i)*41+7)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig10Row{
			Channel:    c.channel,
			Operator:   c.acr,
			GoodULMbps: ulMbpsWithCQI(res, func(cqi int) bool { return cqi >= 12 }),
			PoorULMbps: ulMbpsWithCQI(resPoor, func(cqi int) bool { return cqi > 0 && cqi < 10 }),
		})
	}
	// LTE_US: T-Mobile's anchor measured with the prefer-LTE policy it
	// actually uses. Good/poor conditioning uses the anchor's own CQI,
	// which the UL record stream carries via the LTE leg.
	op, err := operators.ByAcronym("Tmb_US")
	if err != nil {
		return nil, err
	}
	cfg, err := op.LinkConfig(operators.Stationary(o.seed() + 500))
	if err != nil {
		return nil, err
	}
	cfg.ULPolicy = lte.ULPreferLTE
	link, err := net5g.NewLink(cfg)
	if err != nil {
		return nil, err
	}
	if _, err := iperf.Run(link, iperf.Config{Duration: time.Second}); err != nil {
		return nil, err
	}
	// Measure good/poor LTE UL by degrading the anchor mid-run is not
	// meaningful in a stationary scenario; report the overall mean in the
	// good bucket and a degraded-share estimate in the poor bucket by
	// re-running with a worse anchor position.
	res, err := iperf.Run(link, iperf.Config{Duration: d, Demand: net5g.Saturate})
	if err != nil {
		return nil, err
	}
	good := res.LTEULMbps

	cfgPoor, err := op.LinkConfig(operators.Stationary(o.seed() + 501))
	if err != nil {
		return nil, err
	}
	cfgPoor.ULPolicy = lte.ULPreferLTE
	cfgPoor.LTEAnchor.Channel.SINRBiasDB -= 14 // cell-edge anchor
	linkPoor, err := net5g.NewLink(cfgPoor)
	if err != nil {
		return nil, err
	}
	if _, err := iperf.Run(linkPoor, iperf.Config{Duration: time.Second}); err != nil {
		return nil, err
	}
	resPoor, err := iperf.Run(linkPoor, iperf.Config{Duration: d, Demand: net5g.Saturate})
	if err != nil {
		return nil, err
	}
	rows = append(rows, Fig10Row{
		Channel:    "LTE_US",
		Operator:   "Tmb_US",
		GoodULMbps: good,
		PoorULMbps: resPoor.LTEULMbps,
	})
	return rows, nil
}
