package experiments

import (
	"math"
	"strings"
	"testing"

	"github.com/midband5g/midband/internal/phy"
)

// quick returns the fast options used across the suite. Seeds are fixed so
// failures are reproducible.
func quick() Options { return Options{Quick: true, Seed: 77} }

func byOp[T any](t *testing.T, rows []T, key func(T) string) map[string]T {
	t.Helper()
	out := map[string]T{}
	for _, r := range rows {
		out[key(r)] = r
	}
	return out
}

func TestTable1(t *testing.T) {
	stats, err := Table1(quick())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Operators != 11 {
		t.Errorf("operators = %d, want 11", stats.Operators)
	}
	if len(stats.Countries) != 5 || len(stats.Cities) != 5 {
		t.Errorf("countries=%d cities=%d, want 5/5", len(stats.Countries), len(stats.Cities))
	}
	if stats.DataTB <= 0 || stats.Minutes <= 0 {
		t.Error("campaign volume should be positive")
	}
}

func TestTables23(t *testing.T) {
	rows, err := Tables23(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 11 {
		t.Fatalf("rows = %d, want 11", len(rows))
	}
	for _, r := range rows {
		eu := r.Country != "USA"
		if eu {
			if r.CA {
				t.Errorf("%s: EU operators have no CA", r.Operator)
			}
			if r.Carriers[0].Band != "n78" {
				t.Errorf("%s: EU band %s, want n78", r.Operator, r.Carriers[0].Band)
			}
		} else if !r.CA {
			t.Errorf("%s: US operators use CA", r.Operator)
		}
		for _, c := range r.Carriers {
			if c.BandwidthMHz == 0 {
				t.Errorf("%s: carrier without recovered bandwidth: %+v", r.Operator, c)
			}
		}
	}
	// T-Mobile's n25 rows carry the printed-table inconsistency note.
	m := byOp(t, rows, func(r ConfigRow) string { return r.Operator })
	notes := 0
	for _, c := range m["Tmb_US"].Carriers {
		if strings.Contains(c.Note, "30 kHz column") {
			notes++
		}
	}
	if notes != 2 {
		t.Errorf("T-Mobile n25 notes = %d, want 2", notes)
	}
}

func TestSec32(t *testing.T) {
	rows, err := Sec32(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatal("want 2 rows")
	}
	// The theoretical values are exact reproductions of §3.2.
	if math.Abs(rows[0].TheoreticalMax-1213.44) > 0.01 {
		t.Errorf("90 MHz theory = %.2f, want 1213.44", rows[0].TheoreticalMax)
	}
	if math.Abs(rows[1].TheoreticalMax-1352.13) > 0.01 {
		t.Errorf("100 MHz theory = %.2f, want 1352.13", rows[1].TheoreticalMax)
	}
	for _, r := range rows {
		if r.ObservedMax <= 0 || r.ObservedMax >= r.TheoreticalMax {
			t.Errorf("%s: observed max %.0f should sit below theory %.0f",
				r.Operator, r.ObservedMax, r.TheoreticalMax)
		}
		if r.GapPct <= 0 {
			t.Errorf("%s: gap %.1f%% should be positive", r.Operator, r.GapPct)
		}
	}
}

func TestFig01Shape(t *testing.T) {
	rows, err := Fig01(quick())
	if err != nil {
		t.Fatal(err)
	}
	m := byOp(t, rows, func(r Fig01Row) string { return r.Operator })
	// EU: V_It tops the chart; O_Sp100 and T_Ge trail; all within the
	// paper's 550–850 Mbps band (± simulation noise).
	if m["V_It"].DLMbps <= m["O_Sp100"].DLMbps {
		t.Error("V_It should beat O_Sp100")
	}
	if m["V_Sp"].DLMbps <= m["O_Sp100"].DLMbps {
		t.Error("V_Sp should beat O_Sp100")
	}
	for _, acr := range fig1EU {
		v := m[acr].DLMbps
		if v < 400 || v > 1000 {
			t.Errorf("%s DL = %.0f Mbps outside plausible EU band", acr, v)
		}
	}
	// US: CA pushes T-Mobile and Verizon beyond 1 Gbps; AT&T lags far
	// behind (paper: 0.4 Gbps).
	if m["Tmb_US"].DLMbps < 1000 || m["Vzw_US"].DLMbps < 1000 {
		t.Errorf("CA operators should exceed 1 Gbps: Tmb=%.0f Vzw=%.0f",
			m["Tmb_US"].DLMbps, m["Vzw_US"].DLMbps)
	}
	if m["Att_US"].DLMbps >= 700 {
		t.Errorf("AT&T = %.0f Mbps, should trail far behind", m["Att_US"].DLMbps)
	}
}

func TestFig02Shape(t *testing.T) {
	rows, err := Fig02(quick())
	if err != nil {
		t.Fatal(err)
	}
	m := byOp(t, rows, func(r Fig02Row) string { return r.Operator })
	// The headline §4.1 finding: under good channel conditions both
	// 90 MHz channels clearly beat the 100 MHz one (paper: ≈ +37%).
	gap := (m["V_Sp"].DLMbps - m["O_Sp100"].DLMbps) / m["O_Sp100"].DLMbps
	if gap < 0.15 {
		t.Errorf("V_Sp should beat O_Sp100 by a wide margin, got +%.0f%%", gap*100)
	}
	if m["O_Sp90"].DLMbps <= m["O_Sp100"].DLMbps {
		t.Error("O_Sp90 should beat O_Sp100 at equal operator")
	}
}

func TestFig03Shape(t *testing.T) {
	series, err := Fig03(quick())
	if err != nil {
		t.Fatal(err)
	}
	m := byOp(t, series, func(s Fig03Series) string { return s.Operator })
	// The 100 MHz channel allocates *more* REs (wider channel), ruling
	// out resource allocation as the §4.1 culprit.
	if m["O_Sp100"].CDF.Quantile(0.5) <= m["V_Sp"].CDF.Quantile(0.5) {
		t.Errorf("O_Sp100 median REs %.0f should exceed V_Sp %.0f",
			m["O_Sp100"].CDF.Quantile(0.5), m["V_Sp"].CDF.Quantile(0.5))
	}
}

func TestFig04Shape(t *testing.T) {
	rows, err := Fig04(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 11 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Alloc.Mean < 0.85*float64(r.NRB) {
			t.Errorf("%s: mean RBs %.0f well below N_RB %d", r.Operator, r.Alloc.Mean, r.NRB)
		}
		if r.Alloc.Max > float64(r.NRB) {
			t.Errorf("%s: allocation exceeds N_RB", r.Operator)
		}
	}
}

func TestFig05Shape(t *testing.T) {
	rows, err := Fig05(quick())
	if err != nil {
		t.Fatal(err)
	}
	m := byOp(t, rows, func(r Fig05Row) string { return r.Operator })
	for acr, r := range m {
		if r.Shares[phy.QAM64] < 0.5 {
			t.Errorf("%s: 64QAM share %.2f should dominate", acr, r.Shares[phy.QAM64])
		}
	}
	// 256QAM appears on the 256QAM-table carriers (single-digit %), and
	// never on Orange's 64QAM-table 100 MHz channel.
	if m["O_Sp100"].Shares[phy.QAM256] != 0 {
		t.Error("O_Sp100 must not transmit 256QAM")
	}
	if m["V_Sp"].Shares[phy.QAM256] <= 0 || m["V_Sp"].Shares[phy.QAM256] > 0.3 {
		t.Errorf("V_Sp 256QAM share = %.3f, want small but positive", m["V_Sp"].Shares[phy.QAM256])
	}
}

func TestFig06Shape(t *testing.T) {
	rows, err := Fig06(quick())
	if err != nil {
		t.Fatal(err)
	}
	m := byOp(t, rows, func(r Fig06Row) string { return r.Operator })
	// Paper: V_Sp 87%/O_Sp90 84% four-layer; O_Sp100 only ~14%, mostly 3.
	if m["V_Sp"].Shares[4] < 0.6 || m["O_Sp90"].Shares[4] < 0.6 {
		t.Errorf("90 MHz carriers should run rank 4 most of the time: V_Sp=%.2f O_Sp90=%.2f",
			m["V_Sp"].Shares[4], m["O_Sp90"].Shares[4])
	}
	if m["O_Sp100"].Shares[4] > 0.4 {
		t.Errorf("O_Sp100 rank-4 share = %.2f, should be the minority", m["O_Sp100"].Shares[4])
	}
	if m["O_Sp100"].Shares[3] < m["O_Sp100"].Shares[4] {
		t.Error("O_Sp100 should mostly use 3 layers")
	}
}

func TestFig07Shape(t *testing.T) {
	series, err := Fig07(quick())
	if err != nil {
		t.Fatal(err)
	}
	m := byOp(t, series, func(s Fig07Series) string { return s.Operator })
	// Denser Vodafone deployment → better RSRQ along the same route.
	if m["V_Sp"].MeanRSRQ <= m["O_Sp100"].MeanRSRQ {
		t.Errorf("V_Sp mean RSRQ %.1f should beat O_Sp %.1f",
			m["V_Sp"].MeanRSRQ, m["O_Sp100"].MeanRSRQ)
	}
	if m["V_Sp"].Sites != 3 || m["O_Sp100"].Sites != 2 {
		t.Error("site counts wrong")
	}
	if len(m["V_Sp"].Points) < 5 {
		t.Error("route trace too short")
	}
}

func TestFig08Shape(t *testing.T) {
	rows, err := Fig08(quick())
	if err != nil {
		t.Fatal(err)
	}
	m := byOp(t, rows, func(r Fig08Row) string { return r.Operator })
	// The spider plot's joint story: O_Sp100 has the widest channel and
	// most REs yet the lowest throughput, fewer layers and a lower
	// maximum modulation.
	o100, vsp := m["O_Sp100"], m["V_Sp"]
	if !(o100.BandwidthMHz > vsp.BandwidthMHz && o100.MeanREs > vsp.MeanREs) {
		t.Error("O_Sp100 should have more bandwidth and REs")
	}
	if !(o100.DLMbps < vsp.DLMbps && o100.MeanRank < vsp.MeanRank) {
		t.Error("O_Sp100 should have less throughput and fewer layers")
	}
	if o100.MaxModulation != phy.QAM64 || vsp.MaxModulation != phy.QAM256 {
		t.Error("mode scheme axis wrong")
	}
}

func TestFig09Shape(t *testing.T) {
	rows, err := Fig09(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d, want 8", len(rows))
	}
	m := byOp(t, rows, func(r Fig09Row) string { return r.Operator })
	for _, r := range rows {
		// §4.2: all UL well below 120 Mbps.
		if r.ULMbps <= 0 || r.ULMbps > 120 {
			t.Errorf("%s UL = %.1f Mbps outside the paper's band", r.Operator, r.ULMbps)
		}
	}
	// Bandwidth has little bearing: the 90 MHz O_Sp90 beats the 100 MHz
	// O_Sp100, and 80 MHz V_It beats both German 80/90 MHz channels.
	if m["O_Sp90"].ULMbps <= m["O_Sp100"].ULMbps {
		t.Error("O_Sp90 UL should beat O_Sp100 despite less bandwidth")
	}
	if m["V_It"].ULMbps <= m["V_Ge"].ULMbps || m["V_It"].ULMbps <= m["T_Ge"].ULMbps {
		t.Error("V_It UL should lead despite its 80 MHz channel")
	}
}

func TestFig10Shape(t *testing.T) {
	rows, err := Fig10(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	m := byOp(t, rows, func(r Fig10Row) string { return r.Channel })
	for _, r := range rows {
		if r.GoodULMbps <= r.PoorULMbps {
			t.Errorf("%s: good-channel UL %.1f should beat poor %.1f",
				r.Channel, r.GoodULMbps, r.PoorULMbps)
		}
	}
	// T-Mobile's 100 MHz NR UL underperforms its LTE anchor — the reason
	// it prefers LTE for uplink.
	if m["100"].GoodULMbps >= m["LTE_US"].GoodULMbps {
		t.Errorf("T-Mobile NR UL %.1f should trail LTE %.1f",
			m["100"].GoodULMbps, m["LTE_US"].GoodULMbps)
	}
}

func TestFig11Shape(t *testing.T) {
	rows, err := Fig11(quick())
	if err != nil {
		t.Fatal(err)
	}
	m := byOp(t, rows, func(r Fig11Row) string { return r.Operator })
	// Paper ordering: V_Ge 2.13 < T_Ge 2.48 < O_Fr 5.33 < V_It 6.93, and
	// BLER>0 is always slower. Bandwidth is irrelevant; the TDD frame
	// and grant configuration decide.
	if !(m["V_Ge"].CleanMs < m["T_Ge"].CleanMs &&
		m["T_Ge"].CleanMs < m["O_Fr"].CleanMs &&
		m["O_Fr"].CleanMs < m["V_It"].CleanMs) {
		t.Errorf("latency ordering broken: V_Ge=%.2f T_Ge=%.2f O_Fr=%.2f V_It=%.2f",
			m["V_Ge"].CleanMs, m["T_Ge"].CleanMs, m["O_Fr"].CleanMs, m["V_It"].CleanMs)
	}
	for _, r := range rows {
		if r.RetxMs <= r.CleanMs {
			t.Errorf("%s: BLER>0 (%.2f) should exceed BLER=0 (%.2f)", r.Operator, r.RetxMs, r.CleanMs)
		}
	}
	// Absolute scale: the fast operators land near 2 ms, the slow one
	// several ms (paper: 2.13–6.93).
	if m["V_Ge"].CleanMs < 1.5 || m["V_Ge"].CleanMs > 3.2 {
		t.Errorf("V_Ge latency %.2f ms off the ≈2.1 ms mark", m["V_Ge"].CleanMs)
	}
	if m["V_It"].CleanMs < 5.5 || m["V_It"].CleanMs > 9 {
		t.Errorf("V_It latency %.2f ms off the ≈7 ms mark", m["V_It"].CleanMs)
	}
}

func TestFig12Shape(t *testing.T) {
	series, err := Fig12(quick())
	if err != nil {
		t.Fatal(err)
	}
	m := byOp(t, series, func(s Fig12Series) string { return s.Operator })
	for acr, s := range m {
		if len(s.Tput) < 10 {
			t.Fatalf("%s: curve too short", acr)
		}
		// V(t) falls from small to large time scales.
		if s.Tput[len(s.Tput)-1].V >= s.Tput[0].V {
			t.Errorf("%s: throughput variability should decrease with scale", acr)
		}
		// Throughput stabilizes in the paper's 0.05–1 s window.
		if s.Stabilization == 0 || s.Stabilization.Seconds() > 1.1 {
			t.Errorf("%s: stabilization at %v, want ≤ ≈1 s", acr, s.Stabilization)
		}
	}
	// O_Sp100 is the most variable channel, V_It the steadiest (both in
	// MCS and MIMO terms) — the Fig. 12 ranking.
	if m["O_Sp100"].MCSMean <= m["V_It"].MCSMean {
		t.Error("O_Sp100 MCS variability should exceed V_It")
	}
	if m["O_Sp100"].MIMOMean <= m["V_It"].MIMOMean {
		t.Error("O_Sp100 MIMO variability should exceed V_It")
	}
}

func TestFig13Shape(t *testing.T) {
	res, err := Fig13(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TputMbps) != len(res.MCS) || len(res.MCS) != len(res.MIMO) || len(res.MIMO) != len(res.RBs) {
		t.Fatal("series lengths differ")
	}
	if len(res.TputMbps) < 100 {
		t.Fatalf("series too short: %d", len(res.TputMbps))
	}
	// The paper's observation: RB allocation fluctuates far less
	// (relative to its mean) than MCS.
	if res.RBVariability >= res.MCSVariability {
		t.Errorf("relative RB variability %.4f should be below MCS %.4f",
			res.RBVariability, res.MCSVariability)
	}
}

func TestFig14Shape(t *testing.T) {
	cells, err := Fig14(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 4 {
		t.Fatalf("cells = %d, want 4", len(cells))
	}
	get := func(loc string, seq bool) Fig14Cell {
		for _, c := range cells {
			if c.Location == loc && c.Sequential == seq {
				return c
			}
		}
		t.Fatalf("missing cell %s/%v", loc, seq)
		return Fig14Cell{}
	}
	for _, loc := range []string{"A", "B"} {
		seq, sim := get(loc, true), get(loc, false)
		ratio := sim.DLMbps / seq.DLMbps
		if ratio < 0.38 || ratio > 0.65 {
			t.Errorf("%s: simultaneous/sequential tput ratio %.2f, want ≈ 0.5", loc, ratio)
		}
		rbRatio := sim.MeanRBs / seq.MeanRBs
		if rbRatio < 0.4 || rbRatio > 0.6 {
			t.Errorf("%s: RB ratio %.2f, want ≈ 0.5", loc, rbRatio)
		}
		// Channel variability is a property of the location, not of the
		// number of users.
		if seq.VMCS > 0 && math.Abs(sim.VMCS-seq.VMCS)/seq.VMCS > 0.8 {
			t.Errorf("%s: sharing changed MCS variability too much (%.3f vs %.3f)",
				loc, sim.VMCS, seq.VMCS)
		}
	}
	// The farther location suffers more (scale-free) joint variability:
	// compare V normalized by the mean of each parameter.
	rel := func(c Fig14Cell) float64 { return c.VMCS/c.MeanMCS + c.VMIMO/c.MeanRank }
	if rel(get("B", true)) <= rel(get("A", true)) {
		t.Errorf("117 m location should be more variable than 45 m: B=%.3f A=%.3f",
			rel(get("B", true)), rel(get("A", true)))
	}
}

func TestFig23Shape(t *testing.T) {
	rows, err := Fig23(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatal("want 3 combos")
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].DLMbps <= rows[i-1].DLMbps {
			t.Errorf("CA combo %s (%.0f) should beat %s (%.0f)",
				rows[i].Combo, rows[i].DLMbps, rows[i-1].Combo, rows[i-1].DLMbps)
		}
	}
	// Paper: CA reaches ≈1.3 Gbps average vs a single carrier well below.
	if rows[2].DLMbps < 1.2*rows[0].DLMbps {
		t.Errorf("full CA (%.0f) should exceed single carrier (%.0f) by ≥20%%",
			rows[2].DLMbps, rows[0].DLMbps)
	}
}
