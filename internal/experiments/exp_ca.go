package experiments

import (
	"github.com/midband5g/midband/internal/net5g"
	"github.com/midband5g/midband/internal/operators"
)

// Fig23Row is one carrier-aggregation combination's throughput.
type Fig23Row struct {
	Combo        string
	BandwidthMHz int
	DLMbps       float64
}

// Fig23 reproduces the T-Mobile CA benefit figure: a single n41 100 MHz
// carrier versus the 140 MHz (n41+n41) and 160 MHz (n41+n41+n25) aggregated
// channels.
func Fig23(o Options) ([]Fig23Row, error) {
	op, err := operators.ByAcronym("Tmb_US")
	if err != nil {
		return nil, err
	}
	combos := []struct {
		name     string
		carriers []int // indices into the T-Mobile carrier list
		bw       int
	}{
		{"n41-100", []int{0}, 100},
		{"n41-100+n41-40", []int{0, 1}, 140},
		{"n41-100+n41-40+n25-20", []int{0, 1, 2}, 160},
	}
	var rows []Fig23Row
	for _, combo := range combos {
		sub := op
		sub.Carriers = nil
		for _, idx := range combo.carriers {
			sub.Carriers = append(sub.Carriers, op.Carriers[idx])
		}
		// Same seed for every combo: the PCell channel realization is
		// identical, so the deltas isolate the aggregated carriers.
		res, err := measureOp(sub, operators.Stationary(o.seed()), o.sessionSeconds(10), net5g.Demand{DL: true})
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig23Row{Combo: combo.name, BandwidthMHz: combo.bw, DLMbps: res.DLMbps})
	}
	return rows, nil
}
