package experiments

import (
	"time"

	"github.com/midband5g/midband/internal/iperf"

	"github.com/midband5g/midband/internal/analysis"
	"github.com/midband5g/midband/internal/net5g"
	"github.com/midband5g/midband/internal/operators"
	"github.com/midband5g/midband/internal/video"
)

// §7 compares the T-Mobile mid-band CA deployment against the mmWave
// profile under walking and driving.
const (
	midBandAcr = "Tmb_US"
	mmWaveAcr  = "Vzw_mmW"
)

func mobilityScenario(mobility string, seed int64) operators.Scenario {
	if mobility == "driving" {
		return operators.Driving(seed)
	}
	return operators.Walking(seed)
}

// Fig18Series is one (technology, mobility) variability curve.
type Fig18Series struct {
	Tech     string // "midband" or "mmwave"
	Mobility string // "walking" or "driving"
	DLMbps   float64
	Curve    []analysis.ScalePoint
	// OutagePct is the fraction of slots with no service.
	OutagePct float64
}

// Fig18 reproduces the mid-band vs mmWave variability comparison across
// time scales under walking and driving.
func Fig18(o Options) ([]Fig18Series, error) {
	var out []Fig18Series
	for _, tech := range []struct{ name, acr string }{{"midband", midBandAcr}, {"mmwave", mmWaveAcr}} {
		for _, mob := range []string{"walking", "driving"} {
			op, err := operators.ByAcronym(tech.acr)
			if err != nil {
				return nil, err
			}
			// The §7 comparison needs stable statistics across blockage
			// cycles; it keeps 20 s sessions even under Quick options.
			res, err := measureOp(op, mobilityScenario(mob, o.seed()+79), 20*time.Second, net5g.Demand{DL: true})
			if err != nil {
				return nil, err
			}
			outage := 0.0
			for _, s := range res.SINRdB {
				if s < -50 {
					outage++
				}
			}
			out = append(out, Fig18Series{
				Tech:      tech.name,
				Mobility:  mob,
				DLMbps:    res.DLMbps,
				Curve:     analysis.Curve(res.DLThroughputProcess(), res.SlotDuration, 12),
				OutagePct: 100 * outage / float64(len(res.SINRdB)),
			})
		}
	}
	return out, nil
}

// Fig19Point is one streaming session of the §7 QoE comparison.
type Fig19Point struct {
	Tech        string
	Mobility    string
	Ladder      string // "400Mbps" or "1.25Gbps"
	NormBitrate float64
	StallPct    float64
}

// Fig19 reproduces the QoE comparison: (a) both technologies walking on the
// standard ladder — mmWave gains bitrate but pays in stalls; (b) the
// scaled-up ladder on mmWave only, walking vs driving — driving struggles.
func Fig19(o Options) ([]Fig19Point, error) {
	reps := 2
	if o.Quick {
		reps = 1
	}
	play := func(acr, mob string, ladder video.Ladder, ladderName string, seedOff int64) (Fig19Point, error) {
		var nb, sp float64
		for rep := 0; rep < reps; rep++ {
			op, err := operators.ByAcronym(acr)
			if err != nil {
				return Fig19Point{}, err
			}
			cfg, err := op.LinkConfig(mobilityScenario(mob, o.seed()+seedOff+int64(rep)*13))
			if err != nil {
				return Fig19Point{}, err
			}
			link, err := net5g.NewLink(cfg)
			if err != nil {
				return Fig19Point{}, err
			}
			for i := 0; i < 2000; i++ {
				link.Step(net5g.Demand{DL: true})
			}
			res, err := video.Play(link, video.SessionConfig{
				Ladder:        ladder,
				ChunkLength:   time.Second, // §7 uses 1 s chunks
				VideoDuration: o.videoDuration(240),
				ABR:           video.NewBOLA(),
			})
			if err != nil {
				return Fig19Point{}, err
			}
			nb += res.AvgNormBitrate
			sp += res.StallPct()
		}
		tech := "midband"
		if acr == mmWaveAcr {
			tech = "mmwave"
		}
		return Fig19Point{
			Tech: tech, Mobility: mob, Ladder: ladderName,
			NormBitrate: nb / float64(reps), StallPct: sp / float64(reps),
		}, nil
	}

	var out []Fig19Point
	// (a) standard ladder, walking, both technologies.
	for _, acr := range []string{midBandAcr, mmWaveAcr} {
		p, err := play(acr, "walking", video.Ladder400, "400Mbps", 83)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	// (b) scaled-up ladder, mmWave walking and driving.
	for _, mob := range []string{"walking", "driving"} {
		p, err := play(mmWaveAcr, mob, video.LadderMmWave, "1.25Gbps", 89)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// Sec7Aggregate reproduces the §7 headline numbers: aggregate throughput of
// mid-band vs mmWave under walking and driving, plus the relative stability
// (the paper: mid-band is ≈41–42% more stable).
type Sec7Row struct {
	Mobility    string
	MidBandMbps float64
	MmWaveMbps  float64
	// StabilityGainPct is how much lower mid-band's slot-scale relative
	// variability is compared to mmWave (positive = mid-band steadier).
	StabilityGainPct float64
}

// Sec7 computes the aggregate mobility comparison.
func Sec7(o Options) ([]Sec7Row, error) {
	relVar := func(res *iperf.Result) (float64, error) {
		series := res.DLThroughputProcess()
		// Fixed 128 ms comparison scale regardless of numerology.
		scale := int(0.128 / res.SlotDuration.Seconds())
		v, err := analysis.Variability(series, scale)
		if err != nil {
			return 0, err
		}
		m := analysis.Mean(series)
		if m == 0 {
			return 0, nil
		}
		return v / m, nil
	}
	var out []Sec7Row
	for _, mob := range []string{"walking", "driving"} {
		mid, err := measureOp(mustOp(midBandAcr), mobilityScenario(mob, o.seed()+97), 20*time.Second, net5g.Demand{DL: true})
		if err != nil {
			return nil, err
		}
		mmw, err := measureOp(mustOp(mmWaveAcr), mobilityScenario(mob, o.seed()+97), 20*time.Second, net5g.Demand{DL: true})
		if err != nil {
			return nil, err
		}
		vMid, err := relVar(mid)
		if err != nil {
			return nil, err
		}
		vMmw, err := relVar(mmw)
		if err != nil {
			return nil, err
		}
		gain := 0.0
		if vMmw > 0 {
			gain = 100 * (1 - vMid/vMmw)
		}
		out = append(out, Sec7Row{
			Mobility:         mob,
			MidBandMbps:      mid.DLMbps,
			MmWaveMbps:       mmw.DLMbps,
			StabilityGainPct: gain,
		})
	}
	return out, nil
}

func mustOp(acr string) operators.Operator {
	op, err := operators.ByAcronym(acr)
	if err != nil {
		panic(err)
	}
	return op
}
