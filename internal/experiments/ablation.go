package experiments

import (
	"fmt"

	"github.com/midband5g/midband/internal/gnb"
	"github.com/midband5g/midband/internal/iperf"
	"github.com/midband5g/midband/internal/net5g"
	"github.com/midband5g/midband/internal/operators"
	"github.com/midband5g/midband/internal/video"
	"github.com/midband5g/midband/internal/xcal"
)

// This file implements the ablation studies DESIGN.md calls out: each
// toggles one design choice of the simulator or the ABR stack and reports
// the delta, quantifying how much that choice contributes to the
// reproduced behaviour.

// AblationResult is a (variant, metric) pair.
type AblationResult struct {
	Variant string
	Value   float64
	Unit    string
}

// ablationLink builds a V_Sp link with a carrier-config mutation applied.
func ablationLink(o Options, mutate func(*gnb.CarrierConfig)) (*net5g.Link, error) {
	op, err := operators.ByAcronym("V_Sp")
	if err != nil {
		return nil, err
	}
	cfg, err := op.LinkConfig(operators.Stationary(o.seed() + 999))
	if err != nil {
		return nil, err
	}
	if mutate != nil {
		mutate(&cfg.Carriers[0])
	}
	return net5g.NewLink(cfg)
}

func ablationMeasureFull(o Options, mutate func(*gnb.CarrierConfig)) (dlMbps, bler, residualLoss float64, err error) {
	link, err := ablationLink(o, mutate)
	if err != nil {
		return 0, 0, 0, err
	}
	res, err := iperf.Run(link, iperf.Config{Duration: o.sessionSeconds(10), Demand: net5g.Demand{DL: true}, KeepRecords: true})
	if err != nil {
		return 0, 0, 0, err
	}
	nacks, n := 0.0, 0.0
	for i := range res.ACK {
		if res.RBs[i] > 0 {
			n++
			if res.ACK[i] == 0 {
				nacks++
			}
		}
	}
	// Residual loss: transport blocks that exhausted their transmission
	// attempts without delivery (application-visible loss, left for TCP
	// to recover).
	maxRetx := 3
	if mutate != nil {
		probe := gnb.CarrierConfig{}
		mutate(&probe)
		if probe.DisableHARQ {
			maxRetx = 0
		}
	}
	lost, tbs := 0.0, 0.0
	for _, r := range res.Records {
		if r.Dir != xcal.DL || r.RAT != xcal.NR || r.TBSBits == 0 {
			continue
		}
		tbs++
		if !r.ACK && int(r.HARQRetx) >= maxRetx {
			lost++
		}
	}
	if tbs > 0 {
		residualLoss = lost / tbs
	}
	return res.DLMbps, nacks / n, residualLoss, nil
}

// ablationVariants runs one ablationMeasure per (name, mutation) arm
// through the fleet pool; each arm builds its own link, so the arms are
// fully independent and the row order follows the variant order.
func ablationVariants(o Options, names []string, mutations []func(*gnb.CarrierConfig)) ([]measuredVariant, error) {
	return runArms(o, names, func(i int) (measuredVariant, error) {
		dl, bler, loss, err := ablationMeasureFull(o, mutations[i])
		return measuredVariant{dl: dl, bler: bler, loss: loss}, err
	})
}

type measuredVariant struct {
	dl, bler, loss float64
}

// AblationOLLA compares outer-loop link adaptation on vs off: without it
// the stale-CQI mismatch goes uncorrected and BLER drifts off target.
func AblationOLLA(o Options) ([]AblationResult, error) {
	vs, err := ablationVariants(o,
		[]string{"olla-on", "olla-off"},
		[]func(*gnb.CarrierConfig){nil, func(c *gnb.CarrierConfig) { c.DisableOLLA = true }})
	if err != nil {
		return nil, err
	}
	return []AblationResult{
		{"olla-on", vs[0].bler, "BLER"},
		{"olla-off", vs[1].bler, "BLER"},
	}, nil
}

// AblationHARQ compares HARQ retransmissions on vs off. Full-buffer
// goodput is nearly invariant (a retransmission slot and a fresh-TB slot
// carry similar bits), so the metric that matters is the residual loss
// rate: the fraction of transport blocks that are never delivered and must
// be recovered end-to-end. HARQ drives it to ≈BLER^4; without HARQ every
// first-transmission error is application-visible.
func AblationHARQ(o Options) ([]AblationResult, error) {
	vs, err := ablationVariants(o,
		[]string{"harq-on", "harq-off"},
		[]func(*gnb.CarrierConfig){nil, func(c *gnb.CarrierConfig) { c.DisableHARQ = true }})
	if err != nil {
		return nil, err
	}
	return []AblationResult{
		{"harq-on", vs[0].dl, "Mbps"},
		{"harq-off", vs[1].dl, "Mbps"},
		{"harq-on", vs[0].loss, "residual-loss"},
		{"harq-off", vs[1].loss, "residual-loss"},
	}, nil
}

// AblationRankAdaptation compares adaptive rank against a fixed rank-1
// configuration — the 4× MIMO leverage §4.1 identifies.
func AblationRankAdaptation(o Options) ([]AblationResult, error) {
	vs, err := ablationVariants(o,
		[]string{"rank-adaptive", "rank-1-fixed"},
		[]func(*gnb.CarrierConfig){nil, func(c *gnb.CarrierConfig) { c.CSI.MaxRank = 1 }})
	if err != nil {
		return nil, err
	}
	return []AblationResult{
		{"rank-adaptive", vs[0].dl, "Mbps"},
		{"rank-1-fixed", vs[1].dl, "Mbps"},
	}, nil
}

// AblationCQIMapping compares vendor CQI→MCS aggressiveness by shifting the
// UE's reported-CQI optimism (3GPP leaves the mapping to vendors, §3.1).
func AblationCQIMapping(o Options) ([]AblationResult, error) {
	variants := []struct {
		name string
		db   float64
	}{{"conservative(1dB)", 1}, {"default(3dB)", 3}, {"aggressive(6dB)", 6}}
	names := make([]string, len(variants))
	mutations := make([]func(*gnb.CarrierConfig), len(variants))
	for i, v := range variants {
		db := v.db
		names[i] = v.name
		mutations[i] = func(c *gnb.CarrierConfig) { c.CSI.CQIOptimismDB = db }
	}
	vs, err := ablationVariants(o, names, mutations)
	if err != nil {
		return nil, err
	}
	var out []AblationResult
	for i, v := range variants {
		out = append(out,
			AblationResult{v.name, vs[i].dl, "Mbps"},
			AblationResult{v.name, vs[i].bler, "BLER"})
	}
	return out, nil
}

// AblationScheduler compares the lone-UE full allocation with an
// equal-share two-UE split (the Fig. 14 scheduler policy).
func AblationScheduler(o Options) ([]AblationResult, error) {
	shares := []float64{1, 0.5}
	dl, err := runArms(o, []string{"share-1.0", "share-0.5"}, func(i int) (float64, error) {
		link, err := ablationLink(o, nil)
		if err != nil {
			return 0, err
		}
		res, err := iperf.Run(link, iperf.Config{Duration: o.sessionSeconds(8), Demand: net5g.Demand{DL: true, Share: shares[i]}})
		if err != nil {
			return 0, err
		}
		return res.DLMbps, nil
	})
	if err != nil {
		return nil, err
	}
	return []AblationResult{
		{"share-1.0", dl[0], "Mbps"},
		{"share-0.5", dl[1], "Mbps"},
	}, nil
}

// AblationBOLAGamma sweeps BOLA's gamma-p parameter, the knob trading
// bitrate against rebuffering risk. With the dash.js coupling Vp =
// minBuffer/gp, larger gp compresses the per-quality buffer thresholds:
// top quality is reached at shallower (riskier) buffer levels, so average
// bitrate grows with gp.
func AblationBOLAGamma(o Options) ([]AblationResult, error) {
	gps := []float64{0.5, 1, 2, 5}
	names := make([]string, len(gps))
	for i, gp := range gps {
		names[i] = fmt.Sprintf("gp=%.1f", gp)
	}
	type qoe struct{ normrate, stallPct float64 }
	arms, err := runArms(o, names, func(i int) (qoe, error) {
		link, err := ablationLink(o, nil)
		if err != nil {
			return qoe{}, err
		}
		res, err := video.Play(link, video.SessionConfig{
			Ladder:        video.Ladder400,
			ChunkLength:   4_000_000_000,
			VideoDuration: o.videoDuration(120),
			ABR:           &video.BOLA{MinBufferSec: 10, GammaP: gps[i]},
		})
		if err != nil {
			return qoe{}, err
		}
		return qoe{res.AvgNormBitrate, res.StallPct()}, nil
	})
	if err != nil {
		return nil, err
	}
	var out []AblationResult
	for i := range gps {
		out = append(out,
			AblationResult{names[i], arms[i].normrate, "normrate"},
			AblationResult{names[i], arms[i].stallPct, "stall%"})
	}
	return out, nil
}
