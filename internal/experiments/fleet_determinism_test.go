package experiments

import (
	"reflect"
	"testing"
)

// The sweeps that fan out through the fleet pool must produce identical
// rows for any worker count: every arm derives its randomness from the
// Options seed and its arm index, never from scheduling.

func TestExtTDDSweepParallelDeterminism(t *testing.T) {
	serial, err := ExtTDDSweep(Options{Quick: true, Seed: 11, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := ExtTDDSweep(Options{Quick: true, Seed: 11, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("TDD sweep diverges:\nworkers=1: %+v\nworkers=8: %+v", serial, parallel)
	}
}

func TestExtABRComparisonParallelDeterminism(t *testing.T) {
	serial, err := ExtABRComparison(Options{Quick: true, Seed: 11, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := ExtABRComparison(Options{Quick: true, Seed: 11, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("ABR comparison diverges:\nworkers=1: %+v\nworkers=8: %+v", serial, parallel)
	}
}
