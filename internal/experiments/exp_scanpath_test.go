package experiments

import (
	"testing"
	"time"

	"github.com/midband5g/midband/internal/net5g"
)

// TestScanSeriesMatchesDirect pins the figure-regeneration contract: the
// series rebuilt from a columnar trace scan must equal the in-memory
// iperf.Result series exactly — not approximately — so figures generated
// through the scan path stay byte-identical to the pre-pipeline outputs.
func TestScanSeriesMatchesDirect(t *testing.T) {
	const seed = 2024 + 47
	d := 3 * time.Second
	demand := net5g.Demand{DL: true}

	direct, err := measure("V_Sp", d, demand, seed)
	if err != nil {
		t.Fatal(err)
	}
	scanned, err := measureViaScan("V_Sp", d, demand, seed)
	if err != nil {
		t.Fatal(err)
	}

	if scanned.SlotDuration != direct.SlotDuration {
		t.Fatalf("slot duration %v vs %v", scanned.SlotDuration, direct.SlotDuration)
	}
	eq := func(name string, got, want []float64) {
		t.Helper()
		if len(got) != len(want) {
			t.Fatalf("%s: %d slots scanned vs %d direct", name, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s[%d]: scanned %v, direct %v", name, i, got[i], want[i])
			}
		}
	}
	eq("DLBitsPerSlot", scanned.DLBitsPerSlot, direct.DLBitsPerSlot)
	eq("MCS", scanned.MCS, direct.MCS)
	eq("Rank", scanned.Rank, direct.Rank)
	eq("RBs", scanned.RBs, direct.RBs)

	// The derived series the figures actually consume.
	eq("ThroughputMbpsSeries", scanned.ThroughputMbpsSeries(), direct.ThroughputMbpsSeries())
	eq("DLThroughputProcess", scanned.DLThroughputProcess(), direct.DLThroughputProcess())
	eq("FilterDL(MCS)", scanned.FilterDL(scanned.MCS), direct.FilterDL(direct.MCS))
	eq("FilterDL(Rank)", scanned.FilterDL(scanned.Rank), direct.FilterDL(direct.Rank))
}
