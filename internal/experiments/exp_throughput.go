package experiments

import (
	"time"

	"github.com/midband5g/midband/internal/analysis"
	"github.com/midband5g/midband/internal/channel"
	"github.com/midband5g/midband/internal/fleet"
	"github.com/midband5g/midband/internal/net5g"
	"github.com/midband5g/midband/internal/operators"
	"github.com/midband5g/midband/internal/phy"
)

// Fig01Row is one operator's PHY DL throughput bar.
type Fig01Row struct {
	Operator string
	Region   string // "EU" or "US"
	DLMbps   float64
}

// euOrder and usOrder follow the paper's Figure 1 bar order.
var (
	fig1EU = []string{"V_It", "V_Sp", "O_Sp90", "T_Ge", "O_Fr", "O_Sp100"}
	fig1US = []string{"Tmb_US", "Vzw_US", "Att_US"}
)

// Fig01 reproduces the downlink throughput comparison. As the headline
// figure it keeps 10 s sessions even under Quick options (short windows
// are dominated by congestion-episode luck).
func Fig01(o Options) ([]Fig01Row, error) {
	var rows []Fig01Row
	d, reps := 15*time.Second, 10
	if o.Quick {
		d, reps = 8*time.Second, 2
	}
	for i, acr := range fig1EU {
		mbps, err := measureAvgDL(acr, d, reps, o.seed()+int64(i))
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig01Row{Operator: acr, Region: "EU", DLMbps: mbps})
	}
	for i, acr := range fig1US {
		mbps, err := measureAvgDL(acr, d, reps, o.seed()+100+int64(i))
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig01Row{Operator: acr, Region: "US", DLMbps: mbps})
	}
	return rows, nil
}

// SpainCarriers are the §4.1 case-study channels.
var SpainCarriers = []string{"V_Sp", "O_Sp90", "O_Sp100"}

// Fig02Row is a good-channel (CQI ≥ 12) DL throughput bar.
type Fig02Row struct {
	Operator     string
	BandwidthMHz int
	DLMbps       float64
}

// Fig02 reproduces the Spain CQI≥12 comparison: the 100 MHz channel loses
// to both 90 MHz channels.
func Fig02(o Options) ([]Fig02Row, error) {
	var rows []Fig02Row
	for i, acr := range SpainCarriers {
		op, err := operators.ByAcronym(acr)
		if err != nil {
			return nil, err
		}
		// This headline comparison needs stable statistics across
		// congestion episodes.
		d := 30 * time.Second
		if o.Quick {
			d = 10 * time.Second
		}
		res, err := measure(acr, d, net5g.Demand{DL: true}, o.seed()+int64(i)*11)
		if err != nil {
			return nil, err
		}
		good := res.FilterByCQI(func(c int) bool { return c >= 12 })
		rows = append(rows, Fig02Row{
			Operator:     acr,
			BandwidthMHz: op.PCell().BandwidthMHz,
			DLMbps:       res.MbpsOf(good),
		})
	}
	return rows, nil
}

// Fig03Series is one carrier's RE-allocation CDF.
type Fig03Series struct {
	Operator string
	CDF      analysis.CDF
}

// Fig03 reproduces the resource-element allocation CDFs: the 100 MHz
// channel allocates *more* REs, ruling resource allocation out as the
// throughput culprit.
func Fig03(o Options) ([]Fig03Series, error) {
	var out []Fig03Series
	for i, acr := range SpainCarriers {
		res, err := measure(acr, o.sessionSeconds(8), net5g.Demand{DL: true}, o.seed()+int64(i)*13)
		if err != nil {
			return nil, err
		}
		var res2 []float64
		for j, re := range res.REs {
			if res.RBs[j] > 0 {
				res2 = append(res2, re)
			}
		}
		out = append(out, Fig03Series{Operator: acr, CDF: analysis.NewCDF(res2)})
	}
	return out, nil
}

// Fig04Row is one operator's RB-allocation summary.
type Fig04Row struct {
	Operator     string
	BandwidthMHz int
	NRB          int
	Alloc        analysis.Summary
}

// Fig04 reproduces the maximum-RB figure: every operator allocates close to
// its transmission bandwidth configuration under full-buffer load.
func Fig04(o Options) ([]Fig04Row, error) {
	order := []string{"Att_US", "Vzw_US", "S_Fr", "V_It", "V_Ge", "O_Sp90", "V_Sp", "O_Fr", "T_Ge", "Tmb_US", "O_Sp100"}
	var rows []Fig04Row
	for i, acr := range order {
		op, err := operators.ByAcronym(acr)
		if err != nil {
			return nil, err
		}
		res, err := measure(acr, o.sessionSeconds(5), net5g.Demand{DL: true}, o.seed()+int64(i)*17)
		if err != nil {
			return nil, err
		}
		var rbs []float64
		for _, rb := range res.RBs {
			if rb > 0 {
				rbs = append(rbs, rb)
			}
		}
		nrb, err := op.PCell().NRB()
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig04Row{
			Operator:     acr,
			BandwidthMHz: op.PCell().BandwidthMHz,
			NRB:          nrb,
			Alloc:        analysis.Summarize(rbs),
		})
	}
	return rows, nil
}

// Fig05Row is a modulation-order utilization breakdown.
type Fig05Row struct {
	Operator string
	Shares   map[phy.Modulation]float64
}

// Fig05 reproduces the modulation-scheme utilization shares for Spain:
// 64QAM dominates everywhere; 256QAM appears only on the 256QAM-table
// carriers and only a few percent of the time.
func Fig05(o Options) ([]Fig05Row, error) {
	reps := 4
	if o.Quick {
		reps = 2
	}
	var rows []Fig05Row
	for i, acr := range SpainCarriers {
		var mods []phy.Modulation
		for r := 0; r < reps; r++ {
			// Pool slots across independent sessions, as the paper's
			// multi-day shares do.
			res, err := measure(acr, o.sessionSeconds(15), net5g.Demand{DL: true},
				o.seed()+int64(i)*19+int64(r)*7919)
			if err != nil {
				return nil, err
			}
			for j, m := range res.ModOrder {
				if res.RBs[j] > 0 {
					mods = append(mods, phy.Modulation(m))
				}
			}
		}
		rows = append(rows, Fig05Row{Operator: acr, Shares: analysis.Shares(mods)})
	}
	return rows, nil
}

// Fig06Row is a MIMO-layer utilization breakdown.
type Fig06Row struct {
	Operator string
	Shares   map[int]float64
}

// Fig06 reproduces the MIMO-layer utilization shares for Spain: the 90 MHz
// carriers run 4 layers ~85% of the time; the 100 MHz carrier mostly 3.
func Fig06(o Options) ([]Fig06Row, error) {
	reps := 4
	if o.Quick {
		reps = 2
	}
	var rows []Fig06Row
	for i, acr := range SpainCarriers {
		var ranks []int
		for rep := 0; rep < reps; rep++ {
			res, err := measure(acr, o.sessionSeconds(15), net5g.Demand{DL: true},
				o.seed()+int64(i)*23+int64(rep)*7919)
			if err != nil {
				return nil, err
			}
			for j, r := range res.Rank {
				if res.RBs[j] > 0 {
					ranks = append(ranks, int(r))
				}
			}
		}
		rows = append(rows, Fig06Row{Operator: acr, Shares: analysis.Shares(ranks)})
	}
	return rows, nil
}

// Fig07Point is one position sample along the walking route.
type Fig07Point struct {
	PosM   float64
	RSRQdB float64
}

// Fig07Series is one operator's RSRQ-vs-position trace.
type Fig07Series struct {
	Operator string
	Sites    int
	Points   []Fig07Point
	MeanRSRQ float64
}

// Fig07 reproduces the RSRQ coverage maps of Figs. 7/22: the UE walks the
// full route past both deployments' sites and reports RSRQ per position.
// Vodafone's three-site layout keeps RSRQ high along the whole route;
// Orange's two sparse sites leave weak stretches between and beyond them.
func Fig07(o Options) ([]Fig07Series, error) {
	var out []Fig07Series
	for _, acr := range []string{"V_Sp", "O_Sp100"} {
		op, err := operators.ByAcronym(acr)
		if err != nil {
			return nil, err
		}
		cc, err := op.CarrierConfig(0, operators.Stationary(fleet.SplitSeed(o.seed(), "fig07/"+acr, 0)))
		if err != nil {
			return nil, err
		}
		pc := op.PCell()
		// The common route spans past both deployments: 900 m parallel to
		// the site rows at the operator's measurement offset.
		const routeLen = 900.0
		const stepM = 20.0
		series := Fig07Series{Operator: acr, Sites: pc.Sites}
		total, n := 0.0, 0.0
		for pos := 0.0; pos <= routeLen; pos += stepM {
			chCfg := cc.Channel
			chCfg.Route = channel.Stationary(channel.Point{X: pos, Y: pc.UEDistanceM})
			// One independent channel per route position: the domain
			// carries the operator, the index the position, so no
			// (operator, position) pair can collide the way the old
			// i*29+pos arithmetic could.
			chCfg.Seed = fleet.SplitSeed(o.seed(), "fig07/"+acr, int(pos))
			ch, err := channel.New(chCfg)
			if err != nil {
				return nil, err
			}
			// Average a short burst of samples at this spot.
			sum := 0.0
			const burst = 400
			for k := 0; k < burst; k++ {
				sum += ch.Step().RSRQdB
			}
			rsrq := sum / burst
			series.Points = append(series.Points, Fig07Point{PosM: pos, RSRQdB: rsrq})
			total += rsrq
			n++
		}
		series.MeanRSRQ = total / n
		out = append(out, series)
	}
	return out, nil
}

// Fig08Row is the spider-plot factor summary for one carrier.
type Fig08Row struct {
	Operator      string
	DLMbps        float64
	BandwidthMHz  int
	MeanREs       float64
	MeanRank      float64
	Mod256Share   float64
	MaxModulation phy.Modulation
}

// Fig08 reproduces the factor-interplay summary behind the spider plot.
func Fig08(o Options) ([]Fig08Row, error) {
	var rows []Fig08Row
	for i, acr := range SpainCarriers {
		op, err := operators.ByAcronym(acr)
		if err != nil {
			return nil, err
		}
		res, err := measure(acr, o.sessionSeconds(8), net5g.Demand{DL: true}, o.seed()+int64(i)*31)
		if err != nil {
			return nil, err
		}
		var re, rank, m256, n float64
		for j := range res.RBs {
			if res.RBs[j] == 0 {
				continue
			}
			re += res.REs[j]
			rank += res.Rank[j]
			m256 += res.Mod256[j]
			n++
		}
		rows = append(rows, Fig08Row{
			Operator:      acr,
			DLMbps:        res.DLMbps,
			BandwidthMHz:  op.PCell().BandwidthMHz,
			MeanREs:       re / n,
			MeanRank:      rank / n,
			Mod256Share:   m256 / n,
			MaxModulation: op.PCell().MCSTable.MaxModulation(),
		})
	}
	return rows, nil
}
