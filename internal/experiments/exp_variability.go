package experiments

import (
	"time"

	"github.com/midband5g/midband/internal/analysis"
	"github.com/midband5g/midband/internal/net5g"
	"github.com/midband5g/midband/internal/operators"
)

// Fig12Series is one carrier's variability curves for throughput, MCS and
// MIMO layers across dyadic time scales.
type Fig12Series struct {
	Operator string
	// Tput, MCS, MIMO are V(t) curves from 0.5 ms to ~2 s.
	Tput, MCS, MIMO []analysis.ScalePoint
	// Annotations: mean ± std of each curve (the Fig. 12 labels).
	TputMean, TputStd float64
	MCSMean, MCSStd   float64
	MIMOMean, MIMOStd float64
	// Stabilization is where the throughput curve flattens (the paper
	// observes ≈ 0.2–0.5 s).
	Stabilization time.Duration
}

// fig12Carriers are the four channels the figure shows.
var fig12Carriers = []string{"O_Sp100", "O_Sp90", "V_Sp", "V_It"}

// Fig12 reproduces the multi-scale variability figure. Like Fig01 it
// keeps long sessions even under Quick: the curve's 2 s scale needs many
// blocks per session, and short windows are congestion-episode lottery.
// The per-slot series come from a columnar trace scan (measureViaScan),
// proving the figure is reproducible from captured traces alone.
func Fig12(o Options) ([]Fig12Series, error) {
	maxK := 12 // 2^12 × 0.5 ms ≈ 2 s
	d := 20 * time.Second
	if o.Quick {
		d = 12 * time.Second
	}
	var out []Fig12Series
	for i, acr := range fig12Carriers {
		res, err := measureViaScan(acr, d, net5g.Demand{DL: true}, o.seed()+int64(i)*43)
		if err != nil {
			return nil, err
		}
		s := Fig12Series{Operator: acr}
		s.Tput = analysis.Curve(res.DLThroughputProcess(), res.SlotDuration, maxK)
		s.MCS = analysis.Curve(res.FilterDL(res.MCS), res.SlotDuration, maxK)
		s.MIMO = analysis.Curve(res.FilterDL(res.Rank), res.SlotDuration, maxK)
		s.TputMean, s.TputStd = analysis.CurveStats(s.Tput)
		s.MCSMean, s.MCSStd = analysis.CurveStats(s.MCS)
		s.MIMOMean, s.MIMOStd = analysis.CurveStats(s.MIMO)
		if d, ok := analysis.StabilizationScale(s.Tput, 0.25); ok {
			s.Stabilization = d
		}
		out = append(out, s)
	}
	return out, nil
}

// Fig13Result is the 60 ms time-series deep dive for Vodafone Spain.
type Fig13Result struct {
	Operator string
	// StepSec is the plotting granularity (0.060 s).
	StepSec float64
	// TputMbps, MCS, MIMO, RBs are resampled series over the trace.
	TputMbps, MCS, MIMO, RBs []float64
	// RBVariability and MCSVariability compare how much each parameter
	// contributes to throughput variability (the paper: RB allocation
	// contributes less).
	RBVariability, MCSVariability float64
}

// Fig13 reproduces the 4.4-minute V_Sp time-series figure at 60 ms
// granularity.
func Fig13(o Options) (*Fig13Result, error) {
	dur := 264.0
	if o.Quick {
		dur = 20
	}
	res, err := measureViaScan("V_Sp", time.Duration(dur*float64(time.Second)), net5g.Demand{DL: true}, o.seed()+47)
	if err != nil {
		return nil, err
	}
	factor := int(0.060 / res.SlotDuration.Seconds()) // 120 slots
	out := &Fig13Result{
		Operator: "V_Sp",
		StepSec:  0.060,
		TputMbps: analysis.Resample(res.ThroughputMbpsSeries(), factor),
		MCS:      analysis.Resample(res.MCS, factor),
		MIMO:     analysis.Resample(res.Rank, factor),
		RBs:      analysis.Resample(res.RBs, factor),
	}
	// Normalized variability (V(t)/mean) lets parameters with different
	// units be compared.
	rbV, err := analysis.Variability(out.RBs, 1)
	if err != nil {
		return nil, err
	}
	mcsV, err := analysis.Variability(out.MCS, 1)
	if err != nil {
		return nil, err
	}
	out.RBVariability = rbV / analysis.Mean(out.RBs)
	out.MCSVariability = mcsV / analysis.Mean(out.MCS)
	return out, nil
}

// Fig14Cell is one (location, mode) measurement of the multi-user
// experiment.
type Fig14Cell struct {
	// Location distinguishes A (45 m) and B (117 m).
	Location   string
	DistanceM  float64
	Sequential bool
	// DLMbps and MeanRBs are the measured aggregates.
	DLMbps  float64
	MeanRBs float64
	// VMCS and VMIMO are the joint channel-variability coordinates;
	// MeanMCS and MeanRank allow scale-free comparison across locations.
	VMCS, VMIMO       float64
	MeanMCS, MeanRank float64
}

// Fig14 reproduces the locations/users experiment: sequential runs at two
// distances, then simultaneous runs sharing the cell. Throughput halves via
// RB competition; channel variability stays put.
func Fig14(o Options) ([]Fig14Cell, error) {
	op, err := operators.ByAcronym("Vzw_US")
	if err != nil {
		return nil, err
	}
	// The paper's Fig. 14 cell averages ≈595 Mbps — about half of
	// Verizon's headline 1.26 Gbps — i.e. a different, weaker spot of the
	// same network: single cell, ordinary transmit power. Model that by
	// dropping the CA SCell and the saturation-grade SINR bias.
	op.Carriers = op.Carriers[:1]
	op.Carriers[0].SINRBiasDB = -4
	op.Carriers[0].ShadowSigmaDB = 2.2
	d := o.sessionSeconds(12)
	scale := int(0.150 / 0.0005) // 150 ms joint-variability scale
	var out []Fig14Cell
	for _, loc := range []struct {
		name string
		dist float64
	}{{"A", 45}, {"B", 117}} {
		for _, seq := range []bool{true, false} {
			sc := operators.Stationary(o.seed() + 53)
			sc.UEDistanceM = loc.dist
			share := 1.0
			if !seq {
				share = 0.5 // two simultaneous UEs split the cell
			}
			res, err := measureOp(op, sc, d, net5g.Demand{DL: true, Share: share})
			if err != nil {
				return nil, err
			}
			var rbs, n float64
			for _, rb := range res.RBs {
				if rb > 0 {
					rbs += rb
					n++
				}
			}
			vm, vl, err := analysis.JointVariability(res.FilterDL(res.MCS), res.FilterDL(res.Rank), scale)
			if err != nil {
				return nil, err
			}
			out = append(out, Fig14Cell{
				Location:   loc.name,
				DistanceM:  loc.dist,
				Sequential: seq,
				DLMbps:     res.DLMbps,
				MeanRBs:    rbs / n,
				VMCS:       vm,
				VMIMO:      vl,
				MeanMCS:    analysis.Mean(res.FilterDL(res.MCS)),
				MeanRank:   analysis.Mean(res.FilterDL(res.Rank)),
			})
		}
	}
	return out, nil
}
