// Package experiments implements one reproduction per table and figure of
// the paper's evaluation. Each experiment builds its workload from the
// operator registry, runs the simulator through the same measurement
// pipeline the campaign uses (iperf sessions → slot KPI series → analysis),
// and returns the rows/series the paper plots. cmd/figures prints them and
// bench_test.go regenerates them under `go test -bench`.
package experiments

import (
	"context"
	"fmt"
	"time"

	"github.com/midband5g/midband/internal/core"
	"github.com/midband5g/midband/internal/fault"
	"github.com/midband5g/midband/internal/fleet"
	"github.com/midband5g/midband/internal/iperf"
	"github.com/midband5g/midband/internal/lte"
	"github.com/midband5g/midband/internal/net5g"
	"github.com/midband5g/midband/internal/operators"
)

// Options scale an experiment.
type Options struct {
	// Seed drives all randomness (default 2024).
	Seed int64
	// Quick shortens sessions for benchmarks and CI; full runs use the
	// durations the figures need for stable statistics.
	Quick bool
	// Workers bounds the parallel fan-out of multi-arm sweeps
	// (<=0: GOMAXPROCS; 1 forces serial execution). Every arm derives
	// its randomness from Seed and its arm index, so any worker count
	// produces identical rows.
	Workers int
	// Faults, when non-nil, threads a deterministic fault-injection
	// schedule into the campaign-based experiments (Table1). Nil — the
	// default — keeps every figure byte-identical to the fault-free
	// artifacts.
	Faults *fault.Schedule
}

// runArms fans the arms of a sweep through the fleet worker pool and
// returns their results in arm order regardless of completion order.
// Arms must be independent: each builds its own link/session from the
// Options seed, never sharing mutable simulator state.
func runArms[T any](o Options, keys []string, run func(i int) (T, error)) ([]T, error) {
	jobs := make([]fleet.Job[T], len(keys))
	for i := range jobs {
		i := i
		jobs[i] = fleet.Job[T]{
			Key: keys[i],
			Run: func(context.Context) (T, error) { return run(i) },
		}
	}
	results, err := fleet.Run(context.Background(), jobs, fleet.Options{Workers: o.Workers})
	if err != nil {
		return nil, err
	}
	out := make([]T, len(results))
	for i := range results {
		out[i] = results[i].Value
	}
	return out, nil
}

func (o Options) seed() int64 {
	if o.Seed == 0 {
		return 2024
	}
	return o.Seed
}

// sessionSeconds returns the iperf session length.
func (o Options) sessionSeconds(full float64) time.Duration {
	if o.Quick {
		full = full / 5
		if full < 1.5 {
			full = 1.5
		}
	}
	return time.Duration(full * float64(time.Second))
}

// measure runs a stationary full-buffer session for an operator and
// returns the iperf result.
func measure(acr string, d time.Duration, demand net5g.Demand, seed int64) (*iperf.Result, error) {
	op, err := operators.ByAcronym(acr)
	if err != nil {
		return nil, err
	}
	return measureOp(op, operators.Stationary(seed), d, demand)
}

func measureOp(op operators.Operator, sc operators.Scenario, d time.Duration, demand net5g.Demand) (*iperf.Result, error) {
	sess, err := core.NewSession(op, sc)
	if err != nil {
		return nil, err
	}
	return sess.RunIperf(d, demand, nil)
}

// ulOnly measures the NR uplink by forcing the NR-only routing policy, as
// the paper's per-channel UL boxes require.
func ulOnlyNR(acr string, d time.Duration, seed int64) (*iperf.Result, error) {
	op, err := operators.ByAcronym(acr)
	if err != nil {
		return nil, err
	}
	cfg, err := op.LinkConfig(operators.Stationary(seed))
	if err != nil {
		return nil, err
	}
	cfg.ULPolicy = lte.ULNROnly
	link, err := net5g.NewLink(cfg)
	if err != nil {
		return nil, err
	}
	// Warm-up then measure.
	if _, err := iperf.Run(link, iperf.Config{Duration: time.Second}); err != nil {
		return nil, err
	}
	return iperf.Run(link, iperf.Config{Duration: d, Demand: net5g.Saturate})
}

// measureAvgDL averages the DL throughput over several independent
// sessions, as the paper's multi-day campaign does — single short windows
// are dominated by congestion-episode luck.
func measureAvgDL(acr string, d time.Duration, reps int, seed int64) (float64, error) {
	total := 0.0
	for r := 0; r < reps; r++ {
		res, err := measure(acr, d, net5g.Demand{DL: true}, seed+int64(r)*7919)
		if err != nil {
			return 0, err
		}
		total += res.DLMbps
	}
	return total / float64(reps), nil
}

// OperatorValue is a generic (operator, value) row.
type OperatorValue struct {
	Operator string
	Label    string
	Value    float64
}

func (v OperatorValue) String() string {
	return fmt.Sprintf("%-8s %-12s %8.1f", v.Operator, v.Label, v.Value)
}
