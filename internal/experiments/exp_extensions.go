package experiments

import (
	"fmt"
	"time"

	"github.com/midband5g/midband/internal/channel"
	"github.com/midband5g/midband/internal/core"
	"github.com/midband5g/midband/internal/fleet"
	"github.com/midband5g/midband/internal/gnb"
	"github.com/midband5g/midband/internal/iperf"
	"github.com/midband5g/midband/internal/net5g"
	"github.com/midband5g/midband/internal/operators"
	"github.com/midband5g/midband/internal/tdd"
	"github.com/midband5g/midband/internal/transport"
	"github.com/midband5g/midband/internal/video"
)

// This file holds the extension experiments beyond the paper's figures:
// the NSA-vs-SA comparison the paper sets aside (§3.1 notes T-Mobile runs
// both), the TDD frame-structure sweep it defers to future work (§3.1),
// and the extended ABR comparison including the two algorithms footnote 6
// mentions without results (L2A, LoLP).

// ExtNSAvsSARow compares T-Mobile's two deployment modes.
type ExtNSAvsSARow struct {
	Mode      string // "NSA" or "SA"
	ULMbps    float64
	NRULMbps  float64
	LTEULMbps float64
}

// ExtNSAvsSA measures T-Mobile uplink in NSA mode (UL preferring the LTE
// anchor, as observed) against the SA variant (all UL on NR).
func ExtNSAvsSA(o Options) ([]ExtNSAvsSARow, error) {
	op, err := operators.ByAcronym("Tmb_US")
	if err != nil {
		return nil, err
	}
	run := func(op operators.Operator, mode string) (ExtNSAvsSARow, error) {
		sess, err := core.NewSession(op, operators.Stationary(o.seed()+311))
		if err != nil {
			return ExtNSAvsSARow{}, err
		}
		res, err := sess.RunIperf(o.sessionSeconds(15), net5g.Saturate, nil)
		if err != nil {
			return ExtNSAvsSARow{}, err
		}
		return ExtNSAvsSARow{
			Mode: mode, ULMbps: res.ULMbps,
			NRULMbps: res.NRULMbps, LTEULMbps: res.LTEULMbps,
		}, nil
	}
	nsa, err := run(op, "NSA")
	if err != nil {
		return nil, err
	}
	sa, err := run(op.AsSA(), "SA")
	if err != nil {
		return nil, err
	}
	return []ExtNSAvsSARow{nsa, sa}, nil
}

// ExtTDDSweepRow is one frame structure's DL/UL/latency tradeoff.
type ExtTDDSweepRow struct {
	Pattern     string
	DLDuty      float64
	DLMbps      float64
	ULMbps      float64
	LatencyMs   float64 // BLER=0 user-plane latency, preconfigured grants
	LatencySRMs float64 // with the SR cycle
}

// ExtTDDSweep explores the TDD frame-structure design space the paper
// defers ("we delegate the discussion of TDD frame structure and its
// implications on 5G performance to future works"): the same 90 MHz carrier
// under different UL/DL splits.
func ExtTDDSweep(o Options) ([]ExtTDDSweepRow, error) {
	op, err := operators.ByAcronym("V_Sp")
	if err != nil {
		return nil, err
	}
	patterns := []string{"DDDSU", "DDSUU", "DDDDDDDSUU", "DDDDDDDDSU"}
	// Each frame structure is an independent arm: its own sub-operator,
	// link and latency models, seeded by the arm index — so the sweep
	// fans out across the fleet pool without changing a single row.
	return runArms(o, patterns, func(i int) (ExtTDDSweepRow, error) {
		pat := patterns[i]
		sub := op
		sub.Carriers = append([]operators.Carrier(nil), op.Carriers...)
		sub.Carriers[0].TDDPattern = pat
		res, err := measureOp(sub, operators.Stationary(o.seed()+int64(i)*157), o.sessionSeconds(12), net5g.Saturate)
		if err != nil {
			return ExtTDDSweepRow{}, err
		}
		p := tdd.MustParse(pat)
		mkLat := func(sr bool) (float64, error) {
			m, err := net5g.NewLatencyModel(net5g.LatencyConfig{
				Pattern:      p,
				SlotDuration: 500 * time.Microsecond,
				UEProcess:    150 * time.Microsecond,
				GNBProcess:   150 * time.Microsecond,
				SRBasedUL:    sr,
				Seed:         fleet.SplitSeed(o.seed(), "ext/tddlat", i),
			})
			if err != nil {
				return 0, err
			}
			clean, _ := m.Samples(5000)
			return meanMs(clean), nil
		}
		lat, err := mkLat(false)
		if err != nil {
			return ExtTDDSweepRow{}, err
		}
		latSR, err := mkLat(true)
		if err != nil {
			return ExtTDDSweepRow{}, err
		}
		return ExtTDDSweepRow{
			Pattern: pat, DLDuty: p.DLDutyCycle(),
			DLMbps: res.DLMbps, ULMbps: res.NRULMbps,
			LatencyMs: lat, LatencySRMs: latSR,
		}, nil
	})
}

// ExtABRRow is one algorithm's QoE under the busy-hour profile.
type ExtABRRow struct {
	ABR         string
	NormBitrate float64
	StallPct    float64
	Switches    int
}

// ExtABRComparison runs all five ABR implementations — the paper's three
// plus L2A and LoLP (footnote 6) — over the same busy-hour V_Sp channel.
func ExtABRComparison(o Options) ([]ExtABRRow, error) {
	op, err := busyOp("V_Sp")
	if err != nil {
		return nil, err
	}
	// Fresh ABR state per arm: the constructors run inside the job so no
	// algorithm object is shared across workers.
	algs := []func() video.ABR{
		func() video.ABR { return video.NewBOLA() },
		func() video.ABR { return &video.ThroughputABR{} },
		func() video.ABR { return video.NewDynamic() },
		func() video.ABR { return video.NewL2A() },
		func() video.ABR { return video.NewLoLP() },
	}
	keys := make([]string, len(algs))
	for i, mk := range algs {
		keys[i] = mk().Name()
	}
	return runArms(o, keys, func(i int) (ExtABRRow, error) {
		abr := algs[i]()
		link, err := videoLinkOp(op, operators.Stationary(o.seed()+401))
		if err != nil {
			return ExtABRRow{}, err
		}
		res, err := video.Play(link, video.SessionConfig{
			Ladder:        video.Ladder400,
			ChunkLength:   time.Second,
			VideoDuration: o.videoDuration(180),
			ABR:           abr,
		})
		if err != nil {
			return ExtABRRow{}, fmt.Errorf("experiments: ext abr %s: %w", abr.Name(), err)
		}
		return ExtABRRow{
			ABR:         abr.Name(),
			NormBitrate: res.AvgNormBitrate,
			StallPct:    res.StallPct(),
			Switches:    res.Switches,
		}, nil
	})
}

// ExtSchedulerRow is one scheduler policy's two-UE outcome.
type ExtSchedulerRow struct {
	Policy       string
	NearMbps     float64
	FarMbps      float64
	JainFairness float64
}

// ExtSchedulers runs the multi-UE cell under all three scheduler policies —
// the substrate behind Fig. 14, exercised faithfully with two concurrent
// UEs instead of a share parameter.
func ExtSchedulers(o Options) ([]ExtSchedulerRow, error) {
	op, err := operators.ByAcronym("Vzw_US")
	if err != nil {
		return nil, err
	}
	pols := []gnb.SchedulerPolicy{
		gnb.SchedulerEqualShare, gnb.SchedulerProportionalFair, gnb.SchedulerMaxRate,
	}
	keys := make([]string, len(pols))
	for i, pol := range pols {
		keys[i] = pol.String()
	}
	// Each policy arm rebuilds its carrier config from the registry so
	// no simulator state is shared between workers.
	return runArms(o, keys, func(idx int) (ExtSchedulerRow, error) {
		cc, err := op.CarrierConfig(0, operators.Stationary(o.seed()+509))
		if err != nil {
			return ExtSchedulerRow{}, err
		}
		cc.Channel.SINRBiasDB = -4 // the weaker Fig. 14 cell
		slots := int(o.sessionSeconds(12) / cc.Numerology.SlotDuration())
		cell, err := gnb.NewCell(gnb.CellConfig{
			Carrier: cc,
			UEs:     []channel.Point{{X: 0, Y: 45}, {X: 0, Y: 117}},
			Policy:  pols[idx],
			// Every policy arm shares one seed on purpose: identical
			// channel draws make the scheduler comparison controlled.
			Seed: fleet.SplitSeed(o.seed(), "ext/scheduler", 0),
		})
		if err != nil {
			return ExtSchedulerRow{}, err
		}
		var near, far float64
		for i := 0; i < slots; i++ {
			res := cell.Step()
			for _, a := range res.Allocs {
				if a.UE == 0 {
					near += float64(a.Alloc.DeliveredBits)
				} else {
					far += float64(a.Alloc.DeliveredBits)
				}
			}
		}
		secs := float64(slots) * cc.Numerology.SlotDuration().Seconds()
		nearMbps, farMbps := near/secs/1e6, far/secs/1e6
		jain := 1.0
		if nearMbps+farMbps > 0 {
			jain = (nearMbps + farMbps) * (nearMbps + farMbps) /
				(2 * (nearMbps*nearMbps + farMbps*farMbps))
		}
		return ExtSchedulerRow{
			Policy: pols[idx].String(), NearMbps: nearMbps, FarMbps: farMbps, JainFairness: jain,
		}, nil
	})
}

// ULRoutingShare measures the fraction of uplink bits carried by each RAT
// under the dynamic NSA policy for a European operator — the §4.2
// "UL transmissions use both 5G and 4G channels" observation quantified.
func ULRoutingShare(o Options, acr string) (nrShare float64, err error) {
	op, err := operators.ByAcronym(acr)
	if err != nil {
		return 0, err
	}
	cfg, err := op.LinkConfig(operators.Stationary(o.seed() + 601))
	if err != nil {
		return 0, err
	}
	link, err := net5g.NewLink(cfg)
	if err != nil {
		return 0, err
	}
	res, err := iperf.Run(link, iperf.Config{Duration: o.sessionSeconds(10)})
	if err != nil {
		return 0, err
	}
	total := res.NRULMbps + res.LTEULMbps
	if total == 0 {
		return 0, fmt.Errorf("experiments: no uplink traffic for %s", acr)
	}
	return res.NRULMbps / total, nil
}

// ExtTransportRow is one operator's PHY-vs-TCP goodput comparison.
type ExtTransportRow struct {
	Operator     string
	PHYMbps      float64
	GoodputMbps  float64
	EfficiencyPc float64
	MeanRTTms    float64
}

// ExtTransport quantifies the transport-layer gap: the paper's iPerf runs
// measure PHY goodput through a TCP flow, and the congestion controller
// gives back a few percent at the bottleneck (more under heavy episodes).
func ExtTransport(o Options) ([]ExtTransportRow, error) {
	var rows []ExtTransportRow
	for i, acr := range []string{"V_Sp", "O_Sp100", "Vzw_US"} {
		op, err := operators.ByAcronym(acr)
		if err != nil {
			return nil, err
		}
		cfg, err := op.LinkConfig(operators.Stationary(o.seed() + 701 + int64(i)*11))
		if err != nil {
			return nil, err
		}
		link, err := net5g.NewLink(cfg)
		if err != nil {
			return nil, err
		}
		// CSI warm-up.
		for k := 0; k < 2000; k++ {
			link.Step(net5g.Demand{DL: true})
		}
		res, err := transport.Run(link, transport.FlowConfig{}, o.sessionSeconds(12))
		if err != nil {
			return nil, err
		}
		eff := 0.0
		if res.PHYMbps > 0 {
			eff = 100 * res.GoodputMbps / res.PHYMbps
		}
		rows = append(rows, ExtTransportRow{
			Operator:     acr,
			PHYMbps:      res.PHYMbps,
			GoodputMbps:  res.GoodputMbps,
			EfficiencyPc: eff,
			MeanRTTms:    float64(res.MeanRTT) / 1e6,
		})
	}
	return rows, nil
}

// ExtHandoverRow quantifies the mobility handover cost.
type ExtHandoverRow struct {
	Mobility        string
	WithMbps        float64 // handover interruption modeled
	WithoutMbps     float64 // interruption disabled
	InterruptionPct float64 // throughput cost of handovers
}

// ExtHandover measures the throughput cost of handover interruptions for
// T-Mobile's mid-band deployment under walking and driving — part of the
// mobility story behind §7's driving degradation.
func ExtHandover(o Options) ([]ExtHandoverRow, error) {
	op, err := operators.ByAcronym("Tmb_US")
	if err != nil {
		return nil, err
	}
	var rows []ExtHandoverRow
	for _, mob := range []string{"walking", "driving"} {
		run := func(disable bool) (float64, error) {
			cfg, err := op.LinkConfig(mobilityScenario(mob, o.seed()+811))
			if err != nil {
				return 0, err
			}
			if disable {
				for i := range cfg.Carriers {
					cfg.Carriers[i].HandoverInterruptionSlots = -1
				}
			}
			link, err := net5g.NewLink(cfg)
			if err != nil {
				return 0, err
			}
			res, err := iperf.Run(link, iperf.Config{Duration: o.sessionSeconds(15), Demand: net5g.Demand{DL: true}})
			if err != nil {
				return 0, err
			}
			return res.DLMbps, nil
		}
		with, err := run(false)
		if err != nil {
			return nil, err
		}
		without, err := run(true)
		if err != nil {
			return nil, err
		}
		cost := 0.0
		if without > 0 {
			cost = 100 * (1 - with/without)
		}
		rows = append(rows, ExtHandoverRow{
			Mobility: mob, WithMbps: with, WithoutMbps: without, InterruptionPct: cost,
		})
	}
	return rows, nil
}
