package experiments

import (
	"bytes"
	"fmt"
	"io"
	"time"

	"github.com/midband5g/midband/internal/core"
	"github.com/midband5g/midband/internal/net5g"
	"github.com/midband5g/midband/internal/operators"
	"github.com/midband5g/midband/internal/xcal"
	"github.com/midband5g/midband/internal/xcol"
)

// scanSeries is the per-slot view of a session reconstructed from a
// columnar trace scan. It carries exactly the series the variability
// figures consume, rebuilt record by record from the Goodput projection
// so the figures exercise the same decode path a post-hoc analysis of
// campaign traces would — and its accessors mirror iperf.Result's, so the
// outputs are byte-identical to the in-memory path.
type scanSeries struct {
	SlotDuration time.Duration
	// DLBitsPerSlot aggregates NR DL goodput across carriers per link
	// step, like iperf.Run's step loop does.
	DLBitsPerSlot []float64
	// MCS, Rank, RBs are the PCell DL allocation series; zero where the
	// PCell scheduled no DL data, matching the in-memory convention.
	MCS, Rank, RBs []float64
}

// ThroughputMbpsSeries mirrors iperf.Result.ThroughputMbpsSeries.
func (s *scanSeries) ThroughputMbpsSeries() []float64 {
	out := make([]float64, len(s.DLBitsPerSlot))
	scale := 1 / s.SlotDuration.Seconds() / 1e6
	for i, b := range s.DLBitsPerSlot {
		out[i] = b * scale
	}
	return out
}

// DLThroughputProcess mirrors iperf.Result.DLThroughputProcess.
func (s *scanSeries) DLThroughputProcess() []float64 {
	out := make([]float64, 0, len(s.DLBitsPerSlot))
	scale := 1 / s.SlotDuration.Seconds() / 1e6
	for i, b := range s.DLBitsPerSlot {
		if s.RBs[i] > 0 {
			out = append(out, b*scale)
		}
	}
	return out
}

// FilterDL mirrors iperf.Result.FilterDL.
func (s *scanSeries) FilterDL(series []float64) []float64 {
	out := make([]float64, 0, len(series))
	for i, v := range series {
		if i < len(s.RBs) && s.RBs[i] > 0 {
			out = append(out, v)
		}
	}
	return out
}

// measureViaScan runs the same stationary session as measure, but routes
// the result through the columnar trace pipeline: the session captures to
// an in-memory .xcol container, and the returned series are rebuilt by
// scanning it with the Goodput projection (plus Time, which keys records
// back to link steps). This is the figure-regeneration path for the
// multi-scale variability figures: what they plot is provably derivable
// from a trace scan with bounded memory, not only from a live session.
func measureViaScan(acr string, d time.Duration, demand net5g.Demand, seed int64) (*scanSeries, error) {
	op, err := operators.ByAcronym(acr)
	if err != nil {
		return nil, err
	}
	sess, err := core.NewSession(op, operators.Stationary(seed))
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	w, err := xcol.NewWriter(&buf, sess.Meta())
	if err != nil {
		return nil, err
	}
	if _, err := sess.RunIperf(d, demand, w); err != nil {
		return nil, err
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return scanTraceSeries(bytes.NewReader(buf.Bytes()), int64(buf.Len()), sess.Link.SlotDuration(), d)
}

// scanTraceSeries reconstructs the per-step series from a columnar trace.
// Records carry Time = slot × carrier slot duration; every carrier's slot
// duration is a power-of-two multiple of the link step, so each record's
// Time equals the link time of the step that produced it and
// (Time - start) / step recovers the step index exactly. The first record
// in block order belongs to the first measured step (the fastest carrier
// ticks every step), which pins the start offset left behind by warm-up.
func scanTraceSeries(r io.ReaderAt, size int64, slotDur, d time.Duration) (*scanSeries, error) {
	steps := int(d / slotDur)
	out := &scanSeries{
		SlotDuration:  slotDur,
		DLBitsPerSlot: make([]float64, steps),
		MCS:           make([]float64, steps),
		Rank:          make([]float64, steps),
		RBs:           make([]float64, steps),
	}
	s, err := xcol.NewScanner(r, size)
	if err != nil {
		return nil, err
	}
	s.SetProjection(xcol.GoodputColumns | 1<<xcol.ColTime)

	start := time.Duration(-1)
	for {
		blk, err := s.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		// Projected decode: only the requested column slices are
		// populated, so read them directly rather than through Row.
		for i := 0; i < blk.Count; i++ {
			if start < 0 {
				start = blk.Time[i]
			}
			if xcal.RAT(blk.RAT[i]) != xcal.NR || xcal.Direction(blk.Dir[i]) != xcal.DL {
				continue
			}
			step := int((blk.Time[i] - start) / slotDur)
			if step < 0 || step >= steps {
				continue
			}
			out.DLBitsPerSlot[step] += float64(blk.DeliveredBits[i])
			if blk.Carrier[i] == 0 {
				out.MCS[step] = float64(blk.MCS[i])
				out.Rank[step] = float64(blk.Rank[i])
				out.RBs[step] = float64(blk.RBs[i])
			}
		}
	}
	if be := s.Corrupt(); len(be) > 0 {
		return nil, fmt.Errorf("trace scan skipped %d corrupt block(s); first: %v", len(be), be[0].Err)
	}
	return out, nil
}
