package experiments

import "testing"

func findAblation(t *testing.T, rows []AblationResult, variant, unit string) float64 {
	t.Helper()
	for _, r := range rows {
		if r.Variant == variant && r.Unit == unit {
			return r.Value
		}
	}
	t.Fatalf("missing ablation row %s/%s in %v", variant, unit, rows)
	return 0
}

func TestAblationOLLA(t *testing.T) {
	rows, err := AblationOLLA(quick())
	if err != nil {
		t.Fatal(err)
	}
	on := findAblation(t, rows, "olla-on", "BLER")
	off := findAblation(t, rows, "olla-off", "BLER")
	dOn, dOff := abs(on-0.10), abs(off-0.10)
	if dOn > dOff {
		t.Errorf("OLLA should hold BLER near 10%%: on=%.3f off=%.3f", on, off)
	}
}

func TestAblationHARQ(t *testing.T) {
	rows, err := AblationHARQ(quick())
	if err != nil {
		t.Fatal(err)
	}
	on := findAblation(t, rows, "harq-on", "Mbps")
	off := findAblation(t, rows, "harq-off", "Mbps")
	if on <= 0 || off <= 0 {
		t.Fatal("zero throughput")
	}
	// Residual (application-visible) loss: near zero with HARQ, ≈BLER
	// without it.
	lossOn := findAblation(t, rows, "harq-on", "residual-loss")
	lossOff := findAblation(t, rows, "harq-off", "residual-loss")
	if lossOn > 0.01 {
		t.Errorf("HARQ-on residual loss %.4f should be ≈ 0", lossOn)
	}
	if lossOff < 0.03 {
		t.Errorf("HARQ-off residual loss %.4f should be ≈ the 10%% BLER", lossOff)
	}
}

func TestAblationRankAdaptation(t *testing.T) {
	rows, err := AblationRankAdaptation(quick())
	if err != nil {
		t.Fatal(err)
	}
	adaptive := findAblation(t, rows, "rank-adaptive", "Mbps")
	fixed := findAblation(t, rows, "rank-1-fixed", "Mbps")
	// V_Sp runs rank 4 most of the time; pinning rank 1 forfeits close to
	// 4× the spatial multiplexing gain.
	if adaptive < 2.5*fixed {
		t.Errorf("adaptive rank %.0f should be ≥2.5× rank-1 %.0f", adaptive, fixed)
	}
}

func TestAblationCQIMapping(t *testing.T) {
	rows, err := AblationCQIMapping(quick())
	if err != nil {
		t.Fatal(err)
	}
	// More aggressive mappings push BLER up (the outer loop clamps at its
	// bound eventually).
	cons := findAblation(t, rows, "conservative(1dB)", "BLER")
	aggr := findAblation(t, rows, "aggressive(6dB)", "BLER")
	if aggr < cons {
		t.Errorf("aggressive mapping BLER %.3f should be ≥ conservative %.3f", aggr, cons)
	}
	for _, r := range rows {
		if r.Unit == "Mbps" && r.Value <= 0 {
			t.Errorf("%s: zero throughput", r.Variant)
		}
	}
}

func TestAblationScheduler(t *testing.T) {
	rows, err := AblationScheduler(quick())
	if err != nil {
		t.Fatal(err)
	}
	full := findAblation(t, rows, "share-1.0", "Mbps")
	half := findAblation(t, rows, "share-0.5", "Mbps")
	ratio := half / full
	if ratio < 0.38 || ratio > 0.65 {
		t.Errorf("half share ratio %.2f, want ≈ 0.5", ratio)
	}
}

func TestAblationBOLAGamma(t *testing.T) {
	rows, err := AblationBOLAGamma(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d, want 8", len(rows))
	}
	// With Vp tied to the minimum buffer (Vp = minBuf/gp), larger gp
	// compresses the utility thresholds toward shallow buffers: the
	// algorithm reaches high quality earlier (and more riskily), so
	// bitrate grows with gp while small gp pins quality low.
	lo := findAblation(t, rows, "gp=0.5", "normrate")
	hi := findAblation(t, rows, "gp=5.0", "normrate")
	if hi < lo {
		t.Errorf("gp=5 bitrate %.2f should be ≥ gp=0.5 %.2f", hi, lo)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
