package experiments

import (
	"fmt"
	"time"

	"github.com/midband5g/midband/internal/analysis"
	"github.com/midband5g/midband/internal/net5g"
	"github.com/midband5g/midband/internal/operators"
	"github.com/midband5g/midband/internal/video"
)

// videoLink builds a warm link for a streaming session.
func videoLink(acr string, sc operators.Scenario) (*net5g.Link, error) {
	op, err := operators.ByAcronym(acr)
	if err != nil {
		return nil, err
	}
	return videoLinkOp(op, sc)
}

// busyOp returns the operator with a busy-hour congestion profile: more
// frequent and deeper interference/congestion episodes. The paper's §6
// deep-dive sessions (Fig. 16's 9.96% stall time, Fig. 17's >1% stalls at
// 4 s chunks) were captured under exactly such conditions — its own Fig. 15
// scatter shows most sessions stalling far less.
func busyOp(acr string) (operators.Operator, error) {
	op, err := operators.ByAcronym(acr)
	if err != nil {
		return operators.Operator{}, err
	}
	op.Carriers = append([]operators.Carrier(nil), op.Carriers...)
	for i := range op.Carriers {
		op.Carriers[i].EpisodeRatePerSec = 1.0 / 50
		op.Carriers[i].EpisodeMeanSeconds = 22
		op.Carriers[i].EpisodeDepthDB = [2]float64{10, 26}
	}
	return op, nil
}

func videoLinkOp(op operators.Operator, sc operators.Scenario) (*net5g.Link, error) {
	cfg, err := op.LinkConfig(sc)
	if err != nil {
		return nil, err
	}
	link, err := net5g.NewLink(cfg)
	if err != nil {
		return nil, err
	}
	// RRC/CSI warm-up (§2 methodology step ❺).
	for i := 0; i < 2000; i++ {
		link.Step(net5g.Demand{DL: true})
	}
	return link, nil
}

func (o Options) videoDuration(fullSec float64) time.Duration {
	if o.Quick {
		fullSec /= 4
		if fullSec < 20 {
			fullSec = 20
		}
	}
	return time.Duration(fullSec * float64(time.Second))
}

// Fig15Point is one streaming experiment: its QoE coordinates and the
// channel-variability coordinates measured during the same session.
type Fig15Point struct {
	Operator    string
	AvgTputMbps float64
	NormBitrate float64
	StallPct    float64
	VMCS, VMIMO float64
}

// Fig15 reproduces the variability→QoE scatter: six sessions over V_It and
// O_Sp, where higher throughput drives bitrate and higher MCS/MIMO
// variability drives stalls.
func Fig15(o Options) ([]Fig15Point, error) {
	runs := []struct {
		acr  string
		seed int64
	}{
		{"V_It", 1}, {"V_It", 2}, {"V_It", 3},
		{"O_Sp100", 1}, {"O_Sp100", 2}, {"O_Sp100", 3},
	}
	scale := int(0.150 / 0.0005) // 150 ms
	var out []Fig15Point
	for _, r := range runs {
		link, err := videoLink(r.acr, operators.Stationary(o.seed()+r.seed*61))
		if err != nil {
			return nil, err
		}
		res, err := video.Play(link, video.SessionConfig{
			Ladder:        video.Ladder400,
			ChunkLength:   4 * time.Second,
			VideoDuration: o.videoDuration(180),
			ABR:           video.NewBOLA(),
		})
		if err != nil {
			return nil, err
		}
		// Channel variability over the session, measured on a parallel
		// full-buffer run of the same channel realization.
		probe, err := measure(r.acr, o.sessionSeconds(10), net5g.Demand{DL: true}, o.seed()+r.seed*61)
		if err != nil {
			return nil, err
		}
		vm, vl, err := analysis.JointVariability(probe.FilterDL(probe.MCS), probe.FilterDL(probe.Rank), scale)
		if err != nil {
			return nil, err
		}
		out = append(out, Fig15Point{
			Operator:    r.acr,
			AvgTputMbps: probe.DLMbps,
			NormBitrate: res.AvgNormBitrate,
			StallPct:    res.StallPct(),
			VMCS:        vm,
			VMIMO:       vl,
		})
	}
	return out, nil
}

// Fig16Result is the single-session deep dive.
type Fig16Result struct {
	Operator   string
	AvgQuality float64
	StallPct   float64
	// Decisions, Buffer and Throughput are the Fig. 16 panel series.
	Decisions  []video.ChunkRecord
	Buffer     [][2]float64
	Throughput []float64
	Stalls     []video.StallEvent
}

// Fig16 reproduces the 5-minute V_Sp BOLA session (paper: avg quality 5.41,
// stall 9.96% — a heavily congested example session; see busyOp).
func Fig16(o Options) (*Fig16Result, error) {
	op, err := busyOp("V_Sp")
	if err != nil {
		return nil, err
	}
	link, err := videoLinkOp(op, operators.Stationary(o.seed()+67))
	if err != nil {
		return nil, err
	}
	res, err := video.Play(link, video.SessionConfig{
		Ladder:        video.Ladder400,
		ChunkLength:   4 * time.Second,
		VideoDuration: o.videoDuration(300),
		ABR:           video.NewBOLA(),
	})
	if err != nil {
		return nil, err
	}
	return &Fig16Result{
		Operator:   "V_Sp",
		AvgQuality: res.AvgQuality,
		StallPct:   res.StallPct(),
		Decisions:  res.Chunks,
		Buffer:     res.BufferTrace,
		Throughput: res.ThroughputTrace,
		Stalls:     res.Stalls,
	}, nil
}

// Fig17Row compares chunk lengths for one operator.
type Fig17Row struct {
	Operator    string
	ChunkSec    float64
	NormBitrate float64
	StallPct    float64
}

// Fig17 reproduces the chunk-length experiment over O_Fr and V_Ge: 1 s
// chunks improve both average bitrate and stall time versus 4 s chunks.
func Fig17(o Options) ([]Fig17Row, error) {
	var rows []Fig17Row
	reps := 3
	if o.Quick {
		reps = 1
	}
	for _, acr := range []string{"O_Fr", "V_Ge"} {
		op, err := busyOp(acr)
		if err != nil {
			return nil, err
		}
		for _, chunk := range []float64{4, 1} {
			var nb, sp float64
			for rep := 0; rep < reps; rep++ {
				link, err := videoLinkOp(op, operators.Stationary(o.seed()+71+int64(rep)*7))
				if err != nil {
					return nil, err
				}
				// Stall statistics need sessions long enough to span
				// several congestion episodes; keep 3 minutes always.
				res, err := video.Play(link, video.SessionConfig{
					Ladder:        video.Ladder400,
					ChunkLength:   time.Duration(chunk * float64(time.Second)),
					VideoDuration: 180 * time.Second,
					ABR:           video.NewBOLA(),
				})
				if err != nil {
					return nil, err
				}
				nb += res.AvgNormBitrate
				sp += res.StallPct()
			}
			rows = append(rows, Fig17Row{
				Operator:    acr,
				ChunkSec:    chunk,
				NormBitrate: nb / float64(reps),
				StallPct:    sp / float64(reps),
			})
		}
	}
	return rows, nil
}

// Fig24Row compares ABR algorithms.
type Fig24Row struct {
	ABR         string
	Operator    string
	NormBitrate float64
	StallPct    float64
}

// Fig24 reproduces the appendix ABR comparison: BOLA generally beats the
// throughput-based and dynamic algorithms on this ladder.
func Fig24(o Options) ([]Fig24Row, error) {
	mk := func(name string) video.ABR {
		switch name {
		case "bola":
			return video.NewBOLA()
		case "throughput":
			return &video.ThroughputABR{}
		default:
			return video.NewDynamic()
		}
	}
	var rows []Fig24Row
	for _, acr := range []string{"V_Sp", "Vzw_US"} {
		for _, abr := range []string{"bola", "throughput", "dynamic"} {
			link, err := videoLink(acr, operators.Stationary(o.seed()+73))
			if err != nil {
				return nil, err
			}
			res, err := video.Play(link, video.SessionConfig{
				Ladder:        video.Ladder400,
				ChunkLength:   4 * time.Second,
				VideoDuration: o.videoDuration(180),
				ABR:           mk(abr),
			})
			if err != nil {
				return nil, fmt.Errorf("experiments: fig24 %s/%s: %w", acr, abr, err)
			}
			rows = append(rows, Fig24Row{
				ABR:         abr,
				Operator:    acr,
				NormBitrate: res.AvgNormBitrate,
				StallPct:    res.StallPct(),
			})
		}
	}
	return rows, nil
}
