package experiments

import (
	"testing"
	"time"
)

func TestFig15Shape(t *testing.T) {
	points, err := Fig15(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 6 {
		t.Fatalf("points = %d, want 6", len(points))
	}
	// Group by operator: V_It is the steady high-throughput channel,
	// O_Sp100 the variable one. The paper's causal arrows: throughput →
	// bitrate; variability → stalls.
	var vit, osp []Fig15Point
	for _, p := range points {
		if p.Operator == "V_It" {
			vit = append(vit, p)
		} else {
			osp = append(osp, p)
		}
	}
	avg := func(ps []Fig15Point, f func(Fig15Point) float64) float64 {
		s := 0.0
		for _, p := range ps {
			s += f(p)
		}
		return s / float64(len(ps))
	}
	if avg(vit, func(p Fig15Point) float64 { return p.NormBitrate }) <=
		avg(osp, func(p Fig15Point) float64 { return p.NormBitrate }) {
		t.Error("higher-throughput V_It should achieve higher bitrate")
	}
	if avg(vit, func(p Fig15Point) float64 { return p.VMCS }) >=
		avg(osp, func(p Fig15Point) float64 { return p.VMCS }) {
		t.Error("O_Sp100 should show higher MCS variability")
	}
	if avg(vit, func(p Fig15Point) float64 { return p.StallPct }) >
		avg(osp, func(p Fig15Point) float64 { return p.StallPct }) {
		t.Error("the more variable channel should stall more")
	}
}

func TestFig16Shape(t *testing.T) {
	res, err := Fig16(quick())
	if err != nil {
		t.Fatal(err)
	}
	// Paper: avg quality 5.41, stall 9.96% on a V_Sp session.
	if res.AvgQuality < 3 || res.AvgQuality > 6.5 {
		t.Errorf("avg quality = %.2f, want the 4–6 regime", res.AvgQuality)
	}
	if res.StallPct < 0 || res.StallPct > 40 {
		t.Errorf("stall%% = %.1f implausible", res.StallPct)
	}
	if len(res.Decisions) < 10 || len(res.Buffer) == 0 || len(res.Throughput) == 0 {
		t.Error("Fig16 panels missing data")
	}
}

func TestFig17Shape(t *testing.T) {
	rows, err := Fig17(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	get := func(op string, chunk float64) Fig17Row {
		for _, r := range rows {
			if r.Operator == op && r.ChunkSec == chunk {
				return r
			}
		}
		t.Fatalf("missing %s/%g", op, chunk)
		return Fig17Row{}
	}
	// §6.2: smaller chunks sharply cut stall time; average bitrate holds
	// (the paper reports gains on both axes — our reproduction gets the
	// stall axis strongly and the bitrate axis approximately, see
	// EXPERIMENTS.md).
	for _, op := range []string{"O_Fr", "V_Ge"} {
		long, short := get(op, 4), get(op, 1)
		if short.NormBitrate < long.NormBitrate-0.08 {
			t.Errorf("%s: 1 s chunks bitrate %.2f should be ≈≥ 4 s %.2f",
				op, short.NormBitrate, long.NormBitrate)
		}
		if short.StallPct > long.StallPct {
			t.Errorf("%s: 1 s chunks stall %.2f%% should be ≤ 4 s %.2f%%",
				op, short.StallPct, long.StallPct)
		}
	}
	// At least one operator shows a clear stall reduction.
	if !(get("O_Fr", 1).StallPct < get("O_Fr", 4).StallPct ||
		get("V_Ge", 1).StallPct < get("V_Ge", 4).StallPct) {
		t.Error("no stall improvement from shorter chunks anywhere")
	}
}

func TestFig24Shape(t *testing.T) {
	rows, err := Fig24(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	// The appendix claim: BOLA consistently performs well — per operator
	// it is never clearly dominated on both axes by another algorithm.
	byAlg := map[string]map[string]Fig24Row{}
	for _, r := range rows {
		if byAlg[r.Operator] == nil {
			byAlg[r.Operator] = map[string]Fig24Row{}
		}
		byAlg[r.Operator][r.ABR] = r
	}
	for op, algs := range byAlg {
		bola := algs["bola"]
		for name, other := range algs {
			if name == "bola" {
				continue
			}
			if other.NormBitrate > bola.NormBitrate+0.02 && other.StallPct < bola.StallPct-0.5 {
				t.Errorf("%s: %s strictly dominates BOLA (%.2f/%.1f%% vs %.2f/%.1f%%)",
					op, name, other.NormBitrate, other.StallPct, bola.NormBitrate, bola.StallPct)
			}
		}
	}
}

func TestFig18Shape(t *testing.T) {
	series, err := Fig18(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 4 {
		t.Fatalf("series = %d, want 4", len(series))
	}
	get := func(tech, mob string) Fig18Series {
		for _, s := range series {
			if s.Tech == tech && s.Mobility == mob {
				return s
			}
		}
		t.Fatalf("missing %s/%s", tech, mob)
		return Fig18Series{}
	}
	// §7: mmWave offers more throughput but far more variability, and
	// driving makes mmWave worse while mid-band barely notices.
	for _, mob := range []string{"walking", "driving"} {
		mid, mmw := get("midband", mob), get("mmwave", mob)
		if mmw.DLMbps <= mid.DLMbps {
			t.Errorf("%s: mmWave %.0f should out-throughput mid-band %.0f",
				mob, mmw.DLMbps, mid.DLMbps)
		}
		// Compare relative variability at a matching ≈256 ms time scale,
		// where blockage dynamics dominate and TDD-frame alignment
		// artifacts have averaged out (the technologies run different
		// slot durations and frame layouts).
		at := func(s Fig18Series) float64 {
			for _, p := range s.Curve {
				if p.Duration >= 256*time.Millisecond {
					return p.V / s.DLMbps
				}
			}
			t.Fatal("curve too short")
			return 0
		}
		relMid := at(mid)
		relMmw := at(mmw)
		if relMmw <= relMid {
			t.Errorf("%s: mmWave relative variability %.3f should exceed mid-band %.3f",
				mob, relMmw, relMid)
		}
	}
	if get("mmwave", "driving").OutagePct <= get("mmwave", "walking").OutagePct {
		t.Error("driving should suffer more mmWave outages than walking")
	}
	if get("midband", "walking").OutagePct != 0 {
		t.Error("mid-band should not have outages")
	}
	// The walking throughput gap narrows under driving (coverage holes).
	walkGap := get("mmwave", "walking").DLMbps / get("midband", "walking").DLMbps
	driveGap := get("mmwave", "driving").DLMbps / get("midband", "driving").DLMbps
	if driveGap >= walkGap {
		t.Errorf("driving should narrow the mmWave advantage: walk ×%.2f, drive ×%.2f", walkGap, driveGap)
	}
}

func TestFig19Shape(t *testing.T) {
	points, err := Fig19(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("points = %d, want 4", len(points))
	}
	get := func(tech, mob, ladder string) Fig19Point {
		for _, p := range points {
			if p.Tech == tech && p.Mobility == mob && p.Ladder == ladder {
				return p
			}
		}
		t.Fatalf("missing %s/%s/%s", tech, mob, ladder)
		return Fig19Point{}
	}
	// (a) On the standard ladder walking, mmWave achieves at least the
	// mid-band bitrate but with no stall advantage.
	mid := get("midband", "walking", "400Mbps")
	mmw := get("mmwave", "walking", "400Mbps")
	if mmw.NormBitrate < mid.NormBitrate-0.05 {
		t.Errorf("mmWave bitrate %.2f should be ≥ mid-band %.2f", mmw.NormBitrate, mid.NormBitrate)
	}
	if mmw.StallPct < mid.StallPct-0.1 {
		t.Errorf("mmWave stalls %.2f%% should not beat mid-band %.2f%%", mmw.StallPct, mid.StallPct)
	}
	// (b) Scaled-up ladder: driving degrades both axes versus walking.
	walk := get("mmwave", "walking", "1.25Gbps")
	drive := get("mmwave", "driving", "1.25Gbps")
	if drive.NormBitrate >= walk.NormBitrate {
		t.Errorf("driving bitrate %.2f should trail walking %.2f", drive.NormBitrate, walk.NormBitrate)
	}
	if drive.StallPct < walk.StallPct {
		t.Errorf("driving stalls %.2f%% should be at least walking's %.2f%%", drive.StallPct, walk.StallPct)
	}
	if drive.StallPct == 0 && drive.NormBitrate > 0.9 {
		t.Error("driving on the scaled ladder should show QoE degradation")
	}
}

func TestSec7Shape(t *testing.T) {
	rows, err := Sec7(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatal("want walking and driving rows")
	}
	for _, r := range rows {
		if r.MmWaveMbps <= r.MidBandMbps {
			t.Errorf("%s: mmWave %.0f should exceed mid-band %.0f", r.Mobility, r.MmWaveMbps, r.MidBandMbps)
		}
		// Paper: mid-band is ≈41–42%% more stable than mmWave.
		if r.StabilityGainPct <= 10 {
			t.Errorf("%s: stability gain %.0f%% too small", r.Mobility, r.StabilityGainPct)
		}
	}
	// mmWave degrades more from walking to driving than mid-band does.
	mmwDrop := rows[0].MmWaveMbps - rows[1].MmWaveMbps
	midDrop := rows[0].MidBandMbps - rows[1].MidBandMbps
	if mmwDrop <= midDrop {
		t.Errorf("mmWave should lose more under driving: mmw −%.0f vs mid −%.0f", mmwDrop, midDrop)
	}
}
