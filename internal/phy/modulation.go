package phy

import "fmt"

// Modulation is an NR modulation order. The paper's Figure 5 reports the
// share of slots transmitted with each of these.
type Modulation uint8

const (
	// QPSK carries 2 bits per symbol.
	QPSK Modulation = 2
	// QAM16 carries 4 bits per symbol.
	QAM16 Modulation = 4
	// QAM64 carries 6 bits per symbol.
	QAM64 Modulation = 6
	// QAM256 carries 8 bits per symbol.
	QAM256 Modulation = 8
)

// BitsPerSymbol returns the modulation order Qm.
func (m Modulation) BitsPerSymbol() int { return int(m) }

// Valid reports whether m is one of the defined NR modulation orders.
func (m Modulation) Valid() bool {
	switch m {
	case QPSK, QAM16, QAM64, QAM256:
		return true
	}
	return false
}

func (m Modulation) String() string {
	switch m {
	case QPSK:
		return "QPSK"
	case QAM16:
		return "16QAM"
	case QAM64:
		return "64QAM"
	case QAM256:
		return "256QAM"
	default:
		return fmt.Sprintf("Modulation(%d)", uint8(m))
	}
}
