package phy

import (
	"math"
	"testing"
)

// TestPaperSec32Numbers reproduces the two theoretical maxima quoted in §3.2
// of the paper: 1213.44 Mbps for a 90 MHz channel (N_RB=245) and
// 1352.12 Mbps for 100 MHz (N_RB=273). The paper's numbers correspond to
// υ=4 layers, Qm=6, f=1, Rmax=948/1024, OH=0.14 and the DL duty cycle of the
// DDDDDDDSUU frame counting the special slot's 10 DL symbols (108/140).
func TestPaperSec32Numbers(t *testing.T) {
	duty := 108.0 / 140.0
	mk := func(nrb int) CarrierRateParams {
		return CarrierRateParams{
			Layers: 4, Modulation: QAM64, ScalingFactor: 1,
			Numerology: Mu1, NRB: nrb, Overhead: OverheadDLFR1,
			DLDutyCycle: duty,
		}
	}
	got90 := MaxRateMbps(mk(245))
	if math.Abs(got90-1213.44) > 0.01 {
		t.Errorf("90 MHz max rate = %.2f Mbps, want 1213.44", got90)
	}
	got100 := MaxRateMbps(mk(273))
	if math.Abs(got100-1352.13) > 0.01 {
		t.Errorf("100 MHz max rate = %.2f Mbps, want 1352.13", got100)
	}
}

func TestMaxRateDefaults(t *testing.T) {
	// Zero scaling factor and duty cycle are treated as 1.
	a := MaxRateMbps(CarrierRateParams{Layers: 2, Modulation: QAM256,
		Numerology: Mu1, NRB: 100, Overhead: OverheadDLFR1})
	b := MaxRateMbps(CarrierRateParams{Layers: 2, Modulation: QAM256,
		ScalingFactor: 1, DLDutyCycle: 1,
		Numerology: Mu1, NRB: 100, Overhead: OverheadDLFR1})
	if a != b {
		t.Errorf("defaulted = %g, explicit = %g", a, b)
	}
}

func TestMaxRateAggregatesCarriers(t *testing.T) {
	c := CarrierRateParams{Layers: 4, Modulation: QAM64, Numerology: Mu1,
		NRB: 106, Overhead: OverheadDLFR1}
	single := MaxRateMbps(c)
	double := MaxRateMbps(c, c)
	if math.Abs(double-2*single) > 1e-9 {
		t.Errorf("two identical carriers = %g, want %g", double, 2*single)
	}
}

func TestMaxRateScalesWithLayersAndQm(t *testing.T) {
	base := CarrierRateParams{Layers: 1, Modulation: QPSK, Numerology: Mu1,
		NRB: 245, Overhead: OverheadDLFR1}
	r1 := MaxRateMbps(base)
	base.Layers = 4
	r4 := MaxRateMbps(base)
	if math.Abs(r4-4*r1) > 1e-9 {
		t.Errorf("4 layers = %g, want %g", r4, 4*r1)
	}
	base.Modulation = QAM256
	r48 := MaxRateMbps(base)
	if math.Abs(r48-16*r1) > 1e-9 {
		t.Errorf("4 layers 256QAM = %g, want %g", r48, 16*r1)
	}
}
