package phy

import (
	"testing"
	"time"
)

func TestNumerologySCS(t *testing.T) {
	cases := []struct {
		mu   Numerology
		scs  int
		slot time.Duration
		spf  int
	}{
		{Mu0, 15, time.Millisecond, 10},
		{Mu1, 30, 500 * time.Microsecond, 20},
		{Mu2, 60, 250 * time.Microsecond, 40},
		{Mu3, 120, 125 * time.Microsecond, 80},
	}
	for _, c := range cases {
		if got := c.mu.SCSkHz(); got != c.scs {
			t.Errorf("µ=%d SCS = %d, want %d", c.mu, got, c.scs)
		}
		if got := c.mu.SlotDuration(); got != c.slot {
			t.Errorf("µ=%d slot = %v, want %v", c.mu, got, c.slot)
		}
		if got := c.mu.SlotsPerFrame(); got != c.spf {
			t.Errorf("µ=%d slots/frame = %d, want %d", c.mu, got, c.spf)
		}
	}
}

func TestFromSCS(t *testing.T) {
	for _, scs := range []int{15, 30, 60, 120} {
		mu, err := FromSCS(scs)
		if err != nil {
			t.Fatalf("FromSCS(%d): %v", scs, err)
		}
		if mu.SCSkHz() != scs {
			t.Errorf("FromSCS(%d) round trip = %d", scs, mu.SCSkHz())
		}
	}
	if _, err := FromSCS(45); err == nil {
		t.Error("FromSCS(45) should fail")
	}
}

func TestAvgSymbolDuration(t *testing.T) {
	// The paper: T_s^µ = 10^-3 / (14·2^µ); for µ=1 that is ≈ 35.714 µs.
	got := Mu1.AvgSymbolDuration()
	want := 1e-3 / 28
	if diff := got - want; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("AvgSymbolDuration(µ=1) = %g, want %g", got, want)
	}
}
