package phy

import (
	"math"
	"testing"
)

// TestTBSCacheMatchesTBS sweeps the scheduler's whole input space for
// both MCS tables and checks the memoized path returns exactly what the
// direct TS 38.214 computation returns — including the DMRS clamp the
// scheduler applies for short symbol allocations.
func TestTBSCacheMatchesTBS(t *testing.T) {
	symbols := []int{1, 2, 4, 10, 13, 14}
	prbs := []int{1, 11, 51, 245, 273, 1023}
	for _, table := range []MCSTable{MCSTable64QAM, MCSTable256QAM} {
		for _, dmrs := range []int{12, 24} {
			cache := NewTBSCache(table, dmrs, 0)
			for _, sym := range symbols {
				for _, rb := range prbs {
					for mcs := uint8(0); mcs <= table.MaxIndex(); mcs++ {
						for layers := 1; layers <= 4; layers++ {
							row, err := table.Lookup(mcs)
							if err != nil {
								t.Fatal(err)
							}
							d := dmrs
							if m := SubcarriersPerRB * sym; d > m {
								d = m
							}
							want, wantErr := TBS(TBSParams{
								Symbols: sym, DMRSPerPRB: d, PRBs: rb,
								MCS: row, Layers: layers,
							})
							// Twice: the first call fills the cache, the
							// second must hit it.
							for pass := 0; pass < 2; pass++ {
								got, gotErr := cache.TBS(sym, rb, mcs, layers)
								if (gotErr == nil) != (wantErr == nil) {
									t.Fatalf("table=%v dmrs=%d sym=%d rb=%d mcs=%d layers=%d: err %v, want %v",
										table, dmrs, sym, rb, mcs, layers, gotErr, wantErr)
								}
								if got != want {
									t.Fatalf("table=%v dmrs=%d sym=%d rb=%d mcs=%d layers=%d: TBS %d, want %d",
										table, dmrs, sym, rb, mcs, layers, got, want)
								}
							}
						}
					}
				}
			}
		}
	}
}

// TestTBSCacheRejectsBadInputs mirrors TBS's own validation on the
// uncached path.
func TestTBSCacheRejectsBadInputs(t *testing.T) {
	cache := NewTBSCache(MCSTable256QAM, 12, 0)
	if _, err := cache.TBS(13, 100, 99, 2); err == nil {
		t.Error("MCS 99: want error")
	}
	if _, err := cache.TBS(0, 100, 10, 2); err == nil {
		t.Error("symbols 0: want error")
	}
	if _, err := cache.TBS(13, 0, 10, 2); err == nil {
		t.Error("PRBs 0: want error")
	}
	if _, err := cache.TBS(13, 100, 10, 5); err == nil {
		t.Error("layers 5: want error")
	}
	if _, err := NewTBSCache(MCSTable(9), 12, 0).TBS(13, 100, 10, 2); err == nil {
		t.Error("unknown table: want error")
	}
}

// TestDerivedTablesBitIdentical locks the init-time precomputed spectral
// efficiency and required-SINR columns to the MCS methods they replace.
func TestDerivedTablesBitIdentical(t *testing.T) {
	for _, table := range []MCSTable{MCSTable64QAM, MCSTable256QAM} {
		for i := uint8(0); i <= table.MaxIndex(); i++ {
			row, err := table.Lookup(i)
			if err != nil {
				t.Fatal(err)
			}
			req, err := table.RequiredSINRdB(i)
			if err != nil {
				t.Fatal(err)
			}
			if math.Float64bits(req) != math.Float64bits(row.RequiredSINRdB()) {
				t.Errorf("table %v mcs %d: derived reqSINR %v != %v", table, i, req, row.RequiredSINRdB())
			}
			d := table.derived()
			if math.Float64bits(d.eff[i]) != math.Float64bits(row.SpectralEfficiency()) {
				t.Errorf("table %v mcs %d: derived eff %v != %v", table, i, d.eff[i], row.SpectralEfficiency())
			}
		}
		if _, err := table.RequiredSINRdB(table.MaxIndex() + 1); err == nil {
			t.Errorf("table %v: out-of-range index accepted", table)
		}
	}
	if _, err := MCSTable(9).RequiredSINRdB(0); err == nil {
		t.Error("unknown table accepted")
	}
}

// TestHighestMCSForEfficiencyMatchesScan locks the derived-table scan to
// a row-by-row recomputation across a dense efficiency sweep.
func TestHighestMCSForEfficiencyMatchesScan(t *testing.T) {
	for _, table := range []MCSTable{MCSTable64QAM, MCSTable256QAM} {
		rows, err := table.rows()
		if err != nil {
			t.Fatal(err)
		}
		for se := -0.5; se < 9; se += 0.01 {
			want := uint8(0)
			for _, m := range rows {
				if m.SpectralEfficiency() <= se {
					want = m.Index
				} else {
					break
				}
			}
			if got := table.HighestMCSForEfficiency(se); got != want {
				t.Fatalf("table %v se=%.3f: got %d, want %d", table, se, got, want)
			}
		}
	}
	if MCSTable(9).HighestMCSForEfficiency(3) != 0 {
		t.Error("unknown table: want index 0")
	}
}

// BenchmarkTBSCached measures the memoized slot-path lookup (compare with
// BenchmarkTBS, the direct ladder).
func BenchmarkTBSCached(b *testing.B) {
	cache := NewTBSCache(MCSTable256QAM, 12, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbs, err := cache.TBS(13, 245, 22, 4)
		if err != nil {
			b.Fatal(err)
		}
		sinkInt = tbs
	}
}

var sinkInt int
