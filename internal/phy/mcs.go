package phy

import (
	"fmt"
	"math"
)

// MCSTable identifies one of the standardized PDSCH MCS index tables
// (TS 38.214 §5.1.3.1). Which table a slot uses is signaled by the DCI
// format: DCI 1_1 selects Table 2 (up to 256QAM), DCI 1_0 selects Table 1
// (up to 64QAM) — the mechanism §3.1 of the paper describes.
type MCSTable uint8

const (
	// MCSTable64QAM is TS 38.214 Table 5.1.3.1-1 (maximum order 64QAM).
	MCSTable64QAM MCSTable = 1
	// MCSTable256QAM is TS 38.214 Table 5.1.3.1-2 (maximum order 256QAM).
	MCSTable256QAM MCSTable = 2
)

func (t MCSTable) String() string {
	switch t {
	case MCSTable64QAM:
		return "qam64"
	case MCSTable256QAM:
		return "qam256"
	default:
		return fmt.Sprintf("MCSTable(%d)", uint8(t))
	}
}

// MCS is one row of an MCS index table: a modulation order and a target code
// rate (expressed ×1024 as in the spec).
type MCS struct {
	Index      uint8
	Modulation Modulation
	// CodeRate1024 is the target code rate R × 1024. A value of 948
	// corresponds to the maximum rate R_max = 948/1024 used in the
	// TS 38.306 peak-rate formula.
	CodeRate1024 float64
}

// CodeRate returns the target code rate R as a fraction.
func (m MCS) CodeRate() float64 { return m.CodeRate1024 / 1024 }

// SpectralEfficiency returns Qm·R in bits per resource element.
func (m MCS) SpectralEfficiency() float64 {
	return float64(m.Modulation.BitsPerSymbol()) * m.CodeRate()
}

// RequiredSINRdB returns the approximate SINR (dB) at which this MCS reaches
// roughly its target block error rate on an AWGN channel, derived from the
// Shannon bound with an implementation margin. The link-level abstraction in
// internal/gnb uses it as the center of its BLER curve.
func (m MCS) RequiredSINRdB() float64 {
	const implMarginDB = 1.5 // gap to capacity of practical LDPC + estimation loss
	se := m.SpectralEfficiency()
	return 10*math.Log10(math.Pow(2, se)-1) + implMarginDB
}

// mcsTable1 is TS 38.214 Table 5.1.3.1-1 (PDSCH, max 64QAM), indices 0–28.
var mcsTable1 = []MCS{
	{0, QPSK, 120}, {1, QPSK, 157}, {2, QPSK, 193}, {3, QPSK, 251},
	{4, QPSK, 308}, {5, QPSK, 379}, {6, QPSK, 449}, {7, QPSK, 526},
	{8, QPSK, 602}, {9, QPSK, 679},
	{10, QAM16, 340}, {11, QAM16, 378}, {12, QAM16, 434}, {13, QAM16, 490},
	{14, QAM16, 553}, {15, QAM16, 616}, {16, QAM16, 658},
	{17, QAM64, 438}, {18, QAM64, 466}, {19, QAM64, 517}, {20, QAM64, 567},
	{21, QAM64, 616}, {22, QAM64, 666}, {23, QAM64, 719}, {24, QAM64, 772},
	{25, QAM64, 822}, {26, QAM64, 873}, {27, QAM64, 910}, {28, QAM64, 948},
}

// mcsTable2 is TS 38.214 Table 5.1.3.1-2 (PDSCH, max 256QAM), indices 0–27.
var mcsTable2 = []MCS{
	{0, QPSK, 120}, {1, QPSK, 193}, {2, QPSK, 308}, {3, QPSK, 449},
	{4, QPSK, 602},
	{5, QAM16, 378}, {6, QAM16, 434}, {7, QAM16, 490}, {8, QAM16, 553},
	{9, QAM16, 616}, {10, QAM16, 658},
	{11, QAM64, 466}, {12, QAM64, 517}, {13, QAM64, 567}, {14, QAM64, 616},
	{15, QAM64, 666}, {16, QAM64, 719}, {17, QAM64, 772}, {18, QAM64, 822},
	{19, QAM64, 873},
	{20, QAM256, 682.5}, {21, QAM256, 711}, {22, QAM256, 754},
	{23, QAM256, 797}, {24, QAM256, 841}, {25, QAM256, 885},
	{26, QAM256, 916.5}, {27, QAM256, 948},
}

// Lookup returns the MCS row for index i in table t.
func (t MCSTable) Lookup(i uint8) (MCS, error) {
	rows, err := t.rows()
	if err != nil {
		return MCS{}, err
	}
	if int(i) >= len(rows) {
		return MCS{}, fmt.Errorf("phy: MCS index %d out of range for table %v (max %d)", i, t, len(rows)-1)
	}
	return rows[i], nil
}

// MaxIndex returns the largest valid MCS index of the table (28 for Table 1,
// 27 for Table 2).
func (t MCSTable) MaxIndex() uint8 {
	rows, err := t.rows()
	if err != nil {
		return 0
	}
	return uint8(len(rows) - 1)
}

// MaxModulation returns the highest modulation order the table reaches.
func (t MCSTable) MaxModulation() Modulation {
	if t == MCSTable256QAM {
		return QAM256
	}
	return QAM64
}

func (t MCSTable) rows() ([]MCS, error) {
	switch t {
	case MCSTable64QAM:
		return mcsTable1, nil
	case MCSTable256QAM:
		return mcsTable2, nil
	default:
		return nil, fmt.Errorf("phy: unknown MCS table %d", uint8(t))
	}
}

// HighestMCSForEfficiency returns the largest MCS index in table t whose
// spectral efficiency does not exceed se bits per RE. It returns index 0 if
// even the lowest MCS exceeds se. The scan runs over the efficiencies
// precomputed at init (row index equals MCS index in both tables).
func (t MCSTable) HighestMCSForEfficiency(se float64) uint8 {
	d := t.derived()
	if d == nil {
		return 0
	}
	best := uint8(0)
	for i, e := range d.eff {
		if e <= se {
			best = uint8(i)
		} else {
			break
		}
	}
	return best
}
