// Package phy implements the 3GPP NR physical-layer primitives the paper's
// analysis depends on: numerology and slot timing (TS 38.211), the MCS and
// CQI tables (TS 38.214 §5.1.3.1 and §5.2.2.1), transport-block size
// determination (TS 38.214 §5.1.3.2), and the theoretical maximum data-rate
// formula (TS 38.306 §4.1.2) that §3.2 of the paper uses.
//
// Everything in this package is pure computation over standardized tables;
// it contains no simulation state.
package phy

import (
	"fmt"
	"time"
)

// Numerology is the 5G NR numerology µ (TS 38.211 §4.2). Subcarrier spacing
// is 15 kHz × 2^µ; a slot always spans 14 OFDM symbols, so slot duration is
// 1 ms / 2^µ.
type Numerology uint8

const (
	// Mu0 is 15 kHz SCS (1 ms slots), used by LTE-like FDD carriers.
	Mu0 Numerology = 0
	// Mu1 is 30 kHz SCS (0.5 ms slots), used by every 5G mid-band TDD
	// carrier in the study.
	Mu1 Numerology = 1
	// Mu2 is 60 kHz SCS (0.25 ms slots).
	Mu2 Numerology = 2
	// Mu3 is 120 kHz SCS (0.125 ms slots), used by FR2 mmWave carriers.
	Mu3 Numerology = 3
)

// SymbolsPerSlot is the number of OFDM symbols in one slot with the normal
// cyclic prefix (TS 38.211 §4.3.2).
const SymbolsPerSlot = 14

// SubcarriersPerRB is the number of subcarriers in one resource block in the
// frequency domain (TS 38.211 §4.4.4.1).
const SubcarriersPerRB = 12

// SCSkHz returns the subcarrier spacing in kHz.
func (mu Numerology) SCSkHz() int { return 15 << mu }

// SlotDuration returns the duration of one slot.
func (mu Numerology) SlotDuration() time.Duration {
	return time.Millisecond >> mu
}

// SlotsPerSubframe returns the number of slots per 1 ms subframe.
func (mu Numerology) SlotsPerSubframe() int { return 1 << mu }

// SlotsPerFrame returns the number of slots per 10 ms radio frame.
func (mu Numerology) SlotsPerFrame() int { return 10 << mu }

// AvgSymbolDuration returns T_s^µ = 10^-3 / (14 · 2^µ) seconds, the average
// OFDM symbol duration used by the TS 38.306 maximum data-rate formula.
func (mu Numerology) AvgSymbolDuration() float64 {
	return 1e-3 / (SymbolsPerSlot * float64(int(1)<<mu))
}

// FromSCS returns the numerology for a subcarrier spacing in kHz.
func FromSCS(scsKHz int) (Numerology, error) {
	switch scsKHz {
	case 15:
		return Mu0, nil
	case 30:
		return Mu1, nil
	case 60:
		return Mu2, nil
	case 120:
		return Mu3, nil
	default:
		return 0, fmt.Errorf("phy: no numerology for SCS %d kHz", scsKHz)
	}
}

func (mu Numerology) String() string {
	return fmt.Sprintf("µ=%d (%d kHz)", uint8(mu), mu.SCSkHz())
}
