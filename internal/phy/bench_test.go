package phy

import "testing"

func BenchmarkTBS(b *testing.B) {
	mcs, err := MCSTable256QAM.Lookup(22)
	if err != nil {
		b.Fatal(err)
	}
	p := TBSParams{Symbols: 13, DMRSPerPRB: 12, PRBs: 245, MCS: mcs, Layers: 4}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := TBS(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHighestMCSForEfficiency(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MCSTable256QAM.HighestMCSForEfficiency(4.5)
	}
}

func BenchmarkMaxRateMbps(b *testing.B) {
	c := CarrierRateParams{Layers: 4, Modulation: QAM256, Numerology: Mu1,
		NRB: 273, Overhead: OverheadDLFR1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MaxRateMbps(c)
	}
}
