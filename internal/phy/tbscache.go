package phy

// Key layout for the TBSCache table: symbols (4 bits) · PRBs (10 bits) ·
// MCS index (5 bits) · layers (3 bits). Tuples outside these ranges take
// the uncached path. No packable tuple produces key 0 (symbols ≥ 1 sets a
// high bit), so 0 marks an empty table slot.
const (
	tbsKeyLayerBits   = 3
	tbsKeyMCSBits     = 5
	tbsKeyPRBBits     = 10
	tbsKeyMCSShift    = tbsKeyLayerBits
	tbsKeyPRBShift    = tbsKeyMCSShift + tbsKeyMCSBits
	tbsKeySymbolShift = tbsKeyPRBShift + tbsKeyPRBBits
)

// tbsEntry is one open-addressing slot: the packed tuple key and its TBS.
type tbsEntry struct {
	key uint32
	tbs int32
}

// TBSCache memoizes TBS over its small discrete input space for one
// carrier's fixed MCS table and DMRS/overhead configuration. The
// scheduler calls TBS once per scheduled transport block, but its inputs
// — (symbols, PRBs, MCS, layers) — take only a few thousand distinct
// values per session, so the TS 38.214 ladder (log2/pow plus a table
// scan) collapses to one probe of a small open-addressed table after
// warm-up. Open addressing with a multiplicative hash beats both a
// builtin map (no hash-function call, no bucket indirection) and a dense
// per-tuple slab (a campaign constructs hundreds of carriers, and
// zeroing megabytes of mostly-unused slab per construction costs more
// than it saves). Misses are computed by the exact same TBS function, so
// cached results are bit-identical by construction.
//
// A TBSCache belongs to one carrier; it is not safe for concurrent use.
type TBSCache struct {
	table    MCSTable
	dmrs     int
	overhead int

	entries []tbsEntry // power-of-two open-addressing table
	mask    uint32     // len(entries) - 1
	used    int        // occupied slots; grow at 3/4 load
}

// tbsCacheInitSize is the initial table size (a power of two). 2048
// slots × 8 bytes keeps construction cheap; steady state for one carrier
// rarely needs more than one doubling.
const tbsCacheInitSize = 2048

// NewTBSCache builds a cache for one carrier's MCS table and configured
// per-PRB DMRS/xOverhead REs.
func NewTBSCache(table MCSTable, dmrsPerPRB, overheadPerPRB int) *TBSCache {
	return &TBSCache{
		table:    table,
		dmrs:     dmrsPerPRB,
		overhead: overheadPerPRB,
		entries:  make([]tbsEntry, tbsCacheInitSize),
		mask:     tbsCacheInitSize - 1,
	}
}

// params reconstructs the full TBSParams for a tuple, applying the same
// DMRS clamp the scheduler applies (DMRS REs cannot exceed the REs of the
// allocated symbols).
func (c *TBSCache) params(symbols, prbs int, row MCS, layers int) TBSParams {
	dmrs := c.dmrs
	if maxDMRS := SubcarriersPerRB * symbols; dmrs > maxDMRS {
		dmrs = maxDMRS
	}
	return TBSParams{
		Symbols:        symbols,
		DMRSPerPRB:     dmrs,
		OverheadPerPRB: c.overhead,
		PRBs:           prbs,
		MCS:            row,
		Layers:         layers,
	}
}

// TBS returns the transport block size for the tuple, memoized. It is
// equivalent to calling the package-level TBS with the carrier's DMRS
// clamp applied.
func (c *TBSCache) TBS(symbols, prbs int, mcs uint8, layers int) (int, error) {
	row, err := c.table.Lookup(mcs)
	if err != nil {
		return 0, err
	}
	if symbols < 1 || symbols > SymbolsPerSlot ||
		prbs < 1 || prbs >= 1<<tbsKeyPRBBits ||
		layers < 1 || layers > 4 {
		// Not packable into a key; let TBS validate and compute directly.
		return TBS(c.params(symbols, prbs, row, layers))
	}
	key := uint32(symbols)<<tbsKeySymbolShift |
		uint32(prbs)<<tbsKeyPRBShift |
		uint32(mcs)<<tbsKeyMCSShift |
		uint32(layers)
	i := (key * 2654435761) & c.mask // Fibonacci hashing, linear probing
	for {
		e := &c.entries[i]
		if e.key == key {
			return int(e.tbs), nil
		}
		if e.key == 0 {
			break
		}
		i = (i + 1) & c.mask
	}
	tbs, err := TBS(c.params(symbols, prbs, row, layers))
	if err != nil {
		return 0, err
	}
	c.insert(key, int32(tbs))
	return tbs, nil
}

// insert stores a computed entry, doubling the table when it passes 3/4
// load so probe chains stay short.
func (c *TBSCache) insert(key uint32, tbs int32) {
	if c.used+1 > len(c.entries)*3/4 {
		old := c.entries
		c.entries = make([]tbsEntry, 2*len(old))
		c.mask = uint32(len(c.entries) - 1)
		for _, e := range old {
			if e.key != 0 {
				c.place(e.key, e.tbs)
			}
		}
	}
	c.place(key, tbs)
	c.used++
}

// place writes an entry into the first free probe slot (the key is known
// to be absent).
func (c *TBSCache) place(key uint32, tbs int32) {
	i := (key * 2654435761) & c.mask
	for c.entries[i].key != 0 {
		i = (i + 1) & c.mask
	}
	c.entries[i] = tbsEntry{key: key, tbs: tbs}
}
