package phy

// Key layout for the TBSCache map: symbols (4 bits) · PRBs (10 bits) ·
// MCS index (5 bits) · layers (3 bits). Tuples outside these ranges take
// the uncached path.
const (
	tbsKeyLayerBits   = 3
	tbsKeyMCSBits     = 5
	tbsKeyPRBBits     = 10
	tbsKeyMCSShift    = tbsKeyLayerBits
	tbsKeyPRBShift    = tbsKeyMCSShift + tbsKeyMCSBits
	tbsKeySymbolShift = tbsKeyPRBShift + tbsKeyPRBBits
)

// TBSCache memoizes TBS over its small discrete input space for one
// carrier's fixed MCS table and DMRS/overhead configuration. The
// scheduler calls TBS once per scheduled transport block, but its inputs
// — (symbols, PRBs, MCS, layers) — take only a few hundred distinct
// values per session, so the TS 38.214 ladder (log2/pow plus a table
// scan) collapses to one map probe after warm-up. Misses are computed by
// the exact same TBS function, so cached results are bit-identical by
// construction.
//
// A TBSCache belongs to one carrier; it is not safe for concurrent use.
type TBSCache struct {
	table    MCSTable
	dmrs     int
	overhead int
	m        map[uint32]int32
}

// NewTBSCache builds a cache for one carrier's MCS table and configured
// per-PRB DMRS/xOverhead REs.
func NewTBSCache(table MCSTable, dmrsPerPRB, overheadPerPRB int) *TBSCache {
	return &TBSCache{
		table:    table,
		dmrs:     dmrsPerPRB,
		overhead: overheadPerPRB,
		m:        make(map[uint32]int32, 256),
	}
}

// params reconstructs the full TBSParams for a tuple, applying the same
// DMRS clamp the scheduler applies (DMRS REs cannot exceed the REs of the
// allocated symbols).
func (c *TBSCache) params(symbols, prbs int, row MCS, layers int) TBSParams {
	dmrs := c.dmrs
	if maxDMRS := SubcarriersPerRB * symbols; dmrs > maxDMRS {
		dmrs = maxDMRS
	}
	return TBSParams{
		Symbols:        symbols,
		DMRSPerPRB:     dmrs,
		OverheadPerPRB: c.overhead,
		PRBs:           prbs,
		MCS:            row,
		Layers:         layers,
	}
}

// TBS returns the transport block size for the tuple, memoized. It is
// equivalent to calling the package-level TBS with the carrier's DMRS
// clamp applied.
func (c *TBSCache) TBS(symbols, prbs int, mcs uint8, layers int) (int, error) {
	row, err := c.table.Lookup(mcs)
	if err != nil {
		return 0, err
	}
	if symbols < 1 || symbols > SymbolsPerSlot ||
		prbs < 1 || prbs >= 1<<tbsKeyPRBBits ||
		layers < 1 || layers > 4 {
		// Not packable into a key; let TBS validate and compute directly.
		return TBS(c.params(symbols, prbs, row, layers))
	}
	key := uint32(symbols)<<tbsKeySymbolShift |
		uint32(prbs)<<tbsKeyPRBShift |
		uint32(mcs)<<tbsKeyMCSShift |
		uint32(layers)
	if v, ok := c.m[key]; ok {
		return int(v), nil
	}
	tbs, err := TBS(c.params(symbols, prbs, row, layers))
	if err != nil {
		return 0, err
	}
	c.m[key] = int32(tbs)
	return tbs, nil
}
