package phy

// This file implements the approximate maximum data-rate formula of
// TS 38.306 §4.1.2, which §3.2 of the paper uses to bound the attainable
// PHY throughput of each operator configuration:
//
//	rate(Mbps) = 1e-6 · Σ_j { υ_j · Qm_j · f_j · Rmax · 12·N_RB / T_s^µ · (1 − OH_j) }

// RMax is the maximum LDPC code rate 948/1024 used by the formula.
const RMax = 948.0 / 1024.0

// Overhead values per TS 38.306 §4.1.2, by link direction and frequency
// range. For all 5G mid-band (FR1): DL 0.14, UL 0.08 (paper §3.2).
const (
	OverheadDLFR1 = 0.14
	OverheadULFR1 = 0.08
	OverheadDLFR2 = 0.18
	OverheadULFR2 = 0.10
)

// CarrierRateParams describes one component carrier j in the maximum
// data-rate formula.
type CarrierRateParams struct {
	// Layers is υ, the number of MIMO layers.
	Layers int
	// Modulation supplies the maximum modulation order Qm.
	Modulation Modulation
	// ScalingFactor is f ∈ {1, 0.8, 0.75, 0.4}; 1 when no CA is used.
	ScalingFactor float64
	// Numerology determines T_s^µ.
	Numerology Numerology
	// NRB is the maximum RB allocation N_RB^{BW,µ} for the carrier
	// bandwidth.
	NRB int
	// Overhead is OH (one of the Overhead* constants).
	Overhead float64
	// DLDutyCycle optionally derates the rate by the TDD downlink duty
	// cycle (fraction of symbols usable for the link direction). Use 1
	// (or 0, treated as 1) for the pure TS 38.306 number; the paper's
	// §3.2 figures of 1213.44/1352.12 Mbps bake in the duty cycle of the
	// DDDDDDDSUU frame the Spanish carriers use.
	DLDutyCycle float64
}

// MaxRateMbps computes the aggregate maximum data rate in Mbps over all
// component carriers.
func MaxRateMbps(carriers ...CarrierRateParams) float64 {
	total := 0.0
	for _, c := range carriers {
		f := c.ScalingFactor
		if f == 0 {
			f = 1
		}
		duty := c.DLDutyCycle
		if duty == 0 {
			duty = 1
		}
		ts := c.Numerology.AvgSymbolDuration()
		rate := float64(c.Layers) * float64(c.Modulation.BitsPerSymbol()) * f *
			RMax * float64(SubcarriersPerRB*c.NRB) / ts * (1 - c.Overhead) * duty
		total += rate * 1e-6
	}
	return total
}
