package phy

import (
	"testing"
	"testing/quick"
)

func mustMCS(t *testing.T, table MCSTable, idx uint8) MCS {
	t.Helper()
	m, err := table.Lookup(idx)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestTBSKnownVectors(t *testing.T) {
	cases := []struct {
		name string
		p    TBSParams
		want int
	}{
		{
			// N_RE=132, Ninfo≈175.05 → step 8 → 168 → table hit 168.
			name: "small single PRB",
			p: TBSParams{Symbols: 12, DMRSPerPRB: 12, PRBs: 1,
				MCS: mustMCS(t, MCSTable64QAM, 9), Layers: 1},
			want: 168,
		},
		{
			// Tiny allocation floors at the minimum TBS of 24 bits.
			name: "floor at 24",
			p: TBSParams{Symbols: 2, DMRSPerPRB: 6, PRBs: 1,
				MCS: mustMCS(t, MCSTable64QAM, 0), Layers: 1},
			want: 24,
		},
		{
			// Peak 100 MHz config: 273 PRBs, 256QAM MCS 27, 4 layers.
			// Ninfo≈1261669.5 → step 2^15 → 1277952; C=152 → 1277992.
			name: "peak 273 PRB 4 layer",
			p: TBSParams{Symbols: 14, DMRSPerPRB: 12, PRBs: 273,
				MCS: mustMCS(t, MCSTable256QAM, 27), Layers: 4},
			want: 1277992,
		},
		{
			// Low-rate branch (R ≤ 1/4) with segmentation at 3816.
			name: "low rate large block",
			p: TBSParams{Symbols: 14, DMRSPerPRB: 12, PRBs: 60,
				MCS: mustMCS(t, MCSTable64QAM, 3), Layers: 2},
			want: 9216,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got, err := TBS(c.p)
			if err != nil {
				t.Fatal(err)
			}
			if got != c.want {
				t.Errorf("TBS = %d, want %d", got, c.want)
			}
		})
	}
}

func TestTBSValidation(t *testing.T) {
	base := TBSParams{Symbols: 14, DMRSPerPRB: 12, PRBs: 100,
		MCS: mustMCS(t, MCSTable64QAM, 10), Layers: 2}
	bad := []func(*TBSParams){
		func(p *TBSParams) { p.Symbols = 0 },
		func(p *TBSParams) { p.Symbols = 15 },
		func(p *TBSParams) { p.PRBs = 0 },
		func(p *TBSParams) { p.Layers = 0 },
		func(p *TBSParams) { p.Layers = 5 },
		func(p *TBSParams) { p.OverheadPerPRB = 5 },
		func(p *TBSParams) { p.DMRSPerPRB = -1 },
		func(p *TBSParams) { p.MCS.Modulation = 3 },
	}
	for i, mutate := range bad {
		p := base
		mutate(&p)
		if _, err := TBS(p); err == nil {
			t.Errorf("case %d: expected validation error for %+v", i, p)
		}
	}
	if _, err := TBS(base); err != nil {
		t.Errorf("base params should validate: %v", err)
	}
}

func TestTBSRECapAt156(t *testing.T) {
	// 14 symbols with no overhead would be 168 RE/PRB; the spec caps at 156.
	p := TBSParams{Symbols: 14, DMRSPerPRB: 0, PRBs: 10,
		MCS: mustMCS(t, MCSTable64QAM, 5), Layers: 1}
	if got := p.REs(); got != 1560 {
		t.Errorf("REs = %d, want 1560 (156 cap × 10 PRB)", got)
	}
}

func TestTBSMonotoneInPRBs(t *testing.T) {
	mcs := mustMCS(t, MCSTable256QAM, 20)
	prev := 0
	for prb := 1; prb <= 273; prb += 3 {
		p := TBSParams{Symbols: 13, DMRSPerPRB: 12, PRBs: prb, MCS: mcs, Layers: 4}
		got, err := TBS(p)
		if err != nil {
			t.Fatal(err)
		}
		if got < prev {
			t.Fatalf("TBS decreased from %d to %d at PRB=%d", prev, got, prb)
		}
		prev = got
	}
}

func TestTBSMonotoneInMCSAndLayersProperty(t *testing.T) {
	f := func(prb uint16, idx uint8, layers uint8, useTable2 bool) bool {
		table := MCSTable64QAM
		if useTable2 {
			table = MCSTable256QAM
		}
		nPRB := int(prb%273) + 1
		i := idx % table.MaxIndex() // leaves room for i+1
		if table == MCSTable64QAM && i == 16 {
			// Table 1 dips in spectral efficiency from index 16 to 17
			// (spec artifact); skip the one pair where TBS may shrink.
			i = 15
		}
		l := int(layers%3) + 1 // leaves room for l+1
		at := func(mcsIdx uint8, lay int) int {
			m, err := table.Lookup(mcsIdx)
			if err != nil {
				return -1
			}
			v, err := TBS(TBSParams{Symbols: 13, DMRSPerPRB: 12, PRBs: nPRB, MCS: m, Layers: lay})
			if err != nil {
				return -1
			}
			return v
		}
		base := at(i, l)
		// Higher MCS index and more layers never shrink the TB, and every
		// TBS is a positive multiple of 8.
		return base > 0 && base%8 == 0 && at(i+1, l) >= base && at(i, l+1) >= base
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMustTBSPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustTBS should panic on invalid params")
		}
	}()
	MustTBS(TBSParams{})
}
