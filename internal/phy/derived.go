package phy

import "fmt"

// derivedMCS caches per-row spectral efficiency and required SINR for one
// MCS index table. Both are pure functions of the static TS 38.214 rows,
// yet the slot path used to recompute them (a pow + log each) for every
// transport block; here they are computed once at package init by calling
// the exact same MCS methods, so every lookup is bit-identical to the
// inline computation it replaces.
type derivedMCS struct {
	eff     []float64 // SpectralEfficiency() per index
	reqSINR []float64 // RequiredSINRdB() per index
}

func deriveMCS(rows []MCS) derivedMCS {
	d := derivedMCS{
		eff:     make([]float64, len(rows)),
		reqSINR: make([]float64, len(rows)),
	}
	for i, m := range rows {
		d.eff[i] = m.SpectralEfficiency()
		d.reqSINR[i] = m.RequiredSINRdB()
	}
	return d
}

var (
	derivedTable1 = deriveMCS(mcsTable1)
	derivedTable2 = deriveMCS(mcsTable2)
)

func (t MCSTable) derived() *derivedMCS {
	switch t {
	case MCSTable64QAM:
		return &derivedTable1
	case MCSTable256QAM:
		return &derivedTable2
	default:
		return nil
	}
}

// RequiredSINRdB returns Lookup(i).RequiredSINRdB() from the table
// precomputed at init — the link abstraction needs it for every decoded
// transport block.
func (t MCSTable) RequiredSINRdB(i uint8) (float64, error) {
	d := t.derived()
	if d == nil {
		return 0, fmt.Errorf("phy: unknown MCS table %d", uint8(t))
	}
	if int(i) >= len(d.reqSINR) {
		return 0, fmt.Errorf("phy: MCS index %d out of range for table %v (max %d)", i, t, len(d.reqSINR)-1)
	}
	return d.reqSINR[i], nil
}
