package phy

import (
	"testing"
	"testing/quick"
)

func TestMCSTableSpotValues(t *testing.T) {
	// Spot checks against TS 38.214 Tables 5.1.3.1-1 and 5.1.3.1-2.
	cases := []struct {
		table MCSTable
		idx   uint8
		mod   Modulation
		rate  float64
	}{
		{MCSTable64QAM, 0, QPSK, 120},
		{MCSTable64QAM, 9, QPSK, 679},
		{MCSTable64QAM, 10, QAM16, 340},
		{MCSTable64QAM, 16, QAM16, 658},
		{MCSTable64QAM, 17, QAM64, 438},
		{MCSTable64QAM, 28, QAM64, 948},
		{MCSTable256QAM, 0, QPSK, 120},
		{MCSTable256QAM, 4, QPSK, 602},
		{MCSTable256QAM, 5, QAM16, 378},
		{MCSTable256QAM, 11, QAM64, 466},
		{MCSTable256QAM, 19, QAM64, 873},
		{MCSTable256QAM, 20, QAM256, 682.5},
		{MCSTable256QAM, 27, QAM256, 948},
	}
	for _, c := range cases {
		m, err := c.table.Lookup(c.idx)
		if err != nil {
			t.Fatalf("%v[%d]: %v", c.table, c.idx, err)
		}
		if m.Modulation != c.mod || m.CodeRate1024 != c.rate {
			t.Errorf("%v[%d] = (%v, %g), want (%v, %g)",
				c.table, c.idx, m.Modulation, m.CodeRate1024, c.mod, c.rate)
		}
	}
}

func TestMCSTableBounds(t *testing.T) {
	if got := MCSTable64QAM.MaxIndex(); got != 28 {
		t.Errorf("table1 max index = %d, want 28", got)
	}
	if got := MCSTable256QAM.MaxIndex(); got != 27 {
		t.Errorf("table2 max index = %d, want 27", got)
	}
	if _, err := MCSTable64QAM.Lookup(29); err == nil {
		t.Error("lookup past end of table 1 should fail")
	}
	if _, err := MCSTable(9).Lookup(0); err == nil {
		t.Error("unknown table should fail")
	}
}

func TestMCSEfficiencyMonotone(t *testing.T) {
	// The real Table 5.1.3.1-1 has one non-monotonic step at the
	// 16QAM→64QAM boundary (index 16: 2.5703 vs index 17: 2.5664); we
	// reproduce the spec faithfully, so that single dip is expected.
	for _, table := range []MCSTable{MCSTable64QAM, MCSTable256QAM} {
		prev := -1.0
		for i := uint8(0); i <= table.MaxIndex(); i++ {
			m, err := table.Lookup(i)
			if err != nil {
				t.Fatal(err)
			}
			se := m.SpectralEfficiency()
			if table == MCSTable64QAM && i == 17 {
				if se >= prev {
					t.Errorf("table 1 index 17 should dip below 16 per spec")
				}
				prev = se
				continue
			}
			if se <= prev {
				t.Errorf("%v[%d] efficiency %g not > previous %g", table, i, se, prev)
			}
			prev = se
		}
	}
}

func TestMCSMaxModulation(t *testing.T) {
	if MCSTable64QAM.MaxModulation() != QAM64 {
		t.Error("table 1 max modulation should be 64QAM")
	}
	if MCSTable256QAM.MaxModulation() != QAM256 {
		t.Error("table 2 max modulation should be 256QAM")
	}
}

func TestHighestMCSForEfficiency(t *testing.T) {
	// Max table-2 efficiency is 8×948/1024 ≈ 7.4; asking for more caps at 27.
	if got := MCSTable256QAM.HighestMCSForEfficiency(100); got != 27 {
		t.Errorf("very high efficiency → MCS %d, want 27", got)
	}
	// Below the lowest row (2×120/1024 ≈ 0.234) we floor to 0.
	if got := MCSTable256QAM.HighestMCSForEfficiency(0.01); got != 0 {
		t.Errorf("tiny efficiency → MCS %d, want 0", got)
	}
}

func TestHighestMCSForEfficiencyProperty(t *testing.T) {
	// Property: the chosen MCS never exceeds the requested efficiency
	// (unless it is index 0), and the next index always would.
	f := func(se float64, useTable2 bool) bool {
		if se < 0 || se > 20 {
			se = 3.3
		}
		table := MCSTable64QAM
		if useTable2 {
			table = MCSTable256QAM
		}
		idx := table.HighestMCSForEfficiency(se)
		m, err := table.Lookup(idx)
		if err != nil {
			return false
		}
		if idx > 0 && m.SpectralEfficiency() > se {
			return false
		}
		if idx < table.MaxIndex() {
			next, err := table.Lookup(idx + 1)
			if err != nil {
				return false
			}
			if next.SpectralEfficiency() <= se {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRequiredSINRMonotone(t *testing.T) {
	for _, table := range []MCSTable{MCSTable64QAM, MCSTable256QAM} {
		prev := -100.0
		for i := uint8(0); i <= table.MaxIndex(); i++ {
			if table == MCSTable64QAM && i == 17 {
				// Non-monotonic spec row; see TestMCSEfficiencyMonotone.
				continue
			}
			m, _ := table.Lookup(i)
			req := m.RequiredSINRdB()
			if req <= prev {
				t.Errorf("%v[%d] required SINR %g not > previous %g", table, i, req, prev)
			}
			prev = req
		}
	}
}

func TestModulationString(t *testing.T) {
	cases := map[Modulation]string{
		QPSK: "QPSK", QAM16: "16QAM", QAM64: "64QAM", QAM256: "256QAM",
		Modulation(3): "Modulation(3)",
	}
	for m, want := range cases {
		if got := m.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", m, got, want)
		}
	}
	if Modulation(5).Valid() {
		t.Error("Modulation(5) should be invalid")
	}
}
