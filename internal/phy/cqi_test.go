package phy

import (
	"testing"
	"testing/quick"
)

func TestCQITableSpotValues(t *testing.T) {
	cases := []struct {
		table CQITable
		cqi   CQI
		mod   Modulation
		eff   float64
	}{
		{CQITable64QAM, 1, QPSK, 0.1523},
		{CQITable64QAM, 7, QAM16, 1.4766},
		{CQITable64QAM, 15, QAM64, 5.5547},
		{CQITable256QAM, 1, QPSK, 0.1523},
		{CQITable256QAM, 11, QAM64, 5.1152},
		{CQITable256QAM, 12, QAM256, 5.5547},
		{CQITable256QAM, 15, QAM256, 7.4063},
	}
	for _, c := range cases {
		row, err := c.table.Lookup(c.cqi)
		if err != nil {
			t.Fatal(err)
		}
		if row.Modulation != c.mod || row.Efficiency != c.eff {
			t.Errorf("%d.Lookup(%d) = (%v, %g), want (%v, %g)",
				c.table, c.cqi, row.Modulation, row.Efficiency, c.mod, c.eff)
		}
	}
}

func TestCQILookupErrors(t *testing.T) {
	if _, err := CQITable64QAM.Lookup(16); err == nil {
		t.Error("CQI 16 should be rejected")
	}
	if _, err := CQITable(7).Lookup(4); err == nil {
		t.Error("unknown CQI table should be rejected")
	}
}

func TestCQIEfficiencyMonotone(t *testing.T) {
	for _, table := range []CQITable{CQITable64QAM, CQITable256QAM} {
		prev := 0.0
		for c := CQI(1); c <= MaxCQI; c++ {
			row, err := table.Lookup(c)
			if err != nil {
				t.Fatal(err)
			}
			if row.Efficiency <= prev {
				t.Errorf("table %d CQI %d efficiency %g not increasing", table, c, row.Efficiency)
			}
			prev = row.Efficiency
		}
	}
}

func TestCQIFromEfficiency(t *testing.T) {
	if got := CQITable256QAM.CQIFromEfficiency(100); got != 15 {
		t.Errorf("huge efficiency → CQI %d, want 15", got)
	}
	if got := CQITable256QAM.CQIFromEfficiency(0.01); got != 0 {
		t.Errorf("tiny efficiency → CQI %d, want 0", got)
	}
	// Exactly at a row boundary the row itself is reported.
	if got := CQITable64QAM.CQIFromEfficiency(5.5547); got != 15 {
		t.Errorf("boundary efficiency → CQI %d, want 15", got)
	}
}

func TestCQIFromEfficiencyProperty(t *testing.T) {
	f := func(se float64, useTable2 bool) bool {
		if se < 0 || se > 10 {
			se = 2.5
		}
		table := CQITable64QAM
		if useTable2 {
			table = CQITable256QAM
		}
		c := table.CQIFromEfficiency(se)
		if c == 0 {
			return true
		}
		row, err := table.Lookup(c)
		if err != nil {
			return false
		}
		// Reported CQI must be sustainable, and the next one must not be.
		if row.Efficiency > se {
			return false
		}
		if c < MaxCQI {
			next, err := table.Lookup(c + 1)
			if err != nil {
				return false
			}
			if next.Efficiency <= se {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
