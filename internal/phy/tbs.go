package phy

import (
	"fmt"
	"math"
)

// tbsTable is TS 38.214 Table 5.1.3.2-1: the 93 quantized transport block
// sizes used when the intermediate information bit count N_info ≤ 3824.
var tbsTable = []int{
	24, 32, 40, 48, 56, 64, 72, 80, 88, 96, 104, 112, 120, 128, 136, 144,
	152, 160, 168, 176, 184, 192, 208, 224, 240, 256, 272, 288, 304, 320,
	336, 352, 368, 384, 408, 432, 456, 480, 504, 528, 552, 576, 608, 640,
	672, 704, 736, 768, 808, 848, 888, 928, 984, 1032, 1064, 1128, 1160,
	1192, 1224, 1256, 1288, 1320, 1352, 1416, 1480, 1544, 1608, 1672, 1736,
	1800, 1864, 1928, 2024, 2088, 2152, 2216, 2280, 2408, 2472, 2536, 2600,
	2664, 2728, 2792, 2856, 2976, 3104, 3240, 3368, 3496, 3624, 3752, 3824,
}

// TBSParams are the inputs to the transport block size determination of
// TS 38.214 §5.1.3.2. The data transmitted in a slot is one transport block
// (per codeword); its size follows deterministically from these values —
// this is the "given N_RB allocated, the TB size is determined by the MCS"
// relationship §3.1 of the paper calls out.
type TBSParams struct {
	// Symbols is the number of OFDM symbols allocated to the PDSCH/PUSCH
	// within the slot (≤ 14).
	Symbols int
	// DMRSPerPRB is the number of REs per PRB occupied by demodulation
	// reference signals (N^PRB_DMRS).
	DMRSPerPRB int
	// OverheadPerPRB is the configured higher-layer overhead N^PRB_oh
	// (0, 6, 12 or 18).
	OverheadPerPRB int
	// PRBs is the number of allocated physical resource blocks n_PRB.
	PRBs int
	// MCS provides the modulation order and target code rate.
	MCS MCS
	// Layers is the number of MIMO layers υ (1–4 per codeword).
	Layers int
}

// REsPerPRBCap is the cap on resource elements counted per PRB in the TBS
// computation (TS 38.214 step 2).
const REsPerPRBCap = 156

// REs returns N_RE, the number of resource elements available for data:
// min(156, 12·N_symb − N_dmrs − N_oh) · n_PRB.
func (p TBSParams) REs() int {
	perPRB := SubcarriersPerRB*p.Symbols - p.DMRSPerPRB - p.OverheadPerPRB
	if perPRB < 0 {
		perPRB = 0
	}
	if perPRB > REsPerPRBCap {
		perPRB = REsPerPRBCap
	}
	return perPRB * p.PRBs
}

// Validate reports whether the parameters are in range.
func (p TBSParams) Validate() error {
	switch {
	case p.Symbols < 1 || p.Symbols > SymbolsPerSlot:
		return fmt.Errorf("phy: TBS symbols %d out of range [1,14]", p.Symbols)
	case p.DMRSPerPRB < 0 || p.DMRSPerPRB > SubcarriersPerRB*p.Symbols:
		return fmt.Errorf("phy: TBS DMRS overhead %d out of range", p.DMRSPerPRB)
	case p.OverheadPerPRB != 0 && p.OverheadPerPRB != 6 && p.OverheadPerPRB != 12 && p.OverheadPerPRB != 18:
		return fmt.Errorf("phy: TBS xOverhead %d not one of 0/6/12/18", p.OverheadPerPRB)
	case p.PRBs < 1:
		return fmt.Errorf("phy: TBS PRBs %d must be ≥ 1", p.PRBs)
	case p.Layers < 1 || p.Layers > 4:
		return fmt.Errorf("phy: TBS layers %d out of range [1,4]", p.Layers)
	case !p.MCS.Modulation.Valid():
		return fmt.Errorf("phy: TBS modulation %v invalid", p.MCS.Modulation)
	}
	return nil
}

// TBS computes the transport block size in bits following TS 38.214
// §5.1.3.2 steps 1–4, including the LDPC code-block segmentation rules for
// large blocks.
func TBS(p TBSParams) (int, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	nRE := p.REs()
	r := p.MCS.CodeRate()
	qm := float64(p.MCS.Modulation.BitsPerSymbol())
	nInfo := float64(nRE) * r * qm * float64(p.Layers)
	if nInfo <= 0 {
		return 0, nil
	}

	if nInfo <= 3824 {
		// Step 3: quantize and read the table.
		n := math.Max(3, math.Floor(math.Log2(nInfo))-6)
		step := math.Pow(2, n)
		nInfoQ := math.Max(24, step*math.Floor(nInfo/step))
		for _, tbs := range tbsTable {
			if float64(tbs) >= nInfoQ {
				return tbs, nil
			}
		}
		return tbsTable[len(tbsTable)-1], nil
	}

	// Step 4: large blocks.
	n := math.Floor(math.Log2(nInfo-24)) - 5
	step := math.Pow(2, n)
	nInfoQ := math.Max(3840, step*math.Round((nInfo-24)/step))
	if r <= 0.25 {
		c := math.Ceil((nInfoQ + 24) / 3816)
		return int(8*c*math.Ceil((nInfoQ+24)/(8*c)) - 24), nil
	}
	if nInfoQ > 8424 {
		c := math.Ceil((nInfoQ + 24) / 8424)
		return int(8*c*math.Ceil((nInfoQ+24)/(8*c)) - 24), nil
	}
	return int(8*math.Ceil((nInfoQ+24)/8) - 24), nil
}

// MustTBS is TBS but panics on invalid parameters. It is intended for
// callers that construct parameters from already-validated configuration.
func MustTBS(p TBSParams) int {
	tbs, err := TBS(p)
	if err != nil {
		panic(err)
	}
	return tbs
}
