package phy

import "fmt"

// CQI is a channel quality indicator in [0, 15]. 0 means "out of range";
// 15 indicates the best channel condition (paper §3.1).
type CQI uint8

// MaxCQI is the highest CQI value.
const MaxCQI CQI = 15

// Valid reports whether the CQI is within [0, 15].
func (c CQI) Valid() bool { return c <= MaxCQI }

// CQIRow is one row of a CQI table: the modulation, code rate and spectral
// efficiency the UE declares it could sustain at ~10% BLER.
type CQIRow struct {
	CQI          CQI
	Modulation   Modulation
	CodeRate1024 float64
	// Efficiency is the spectral efficiency in bits per resource element.
	Efficiency float64
}

// CQITable identifies one of the standardized CQI tables (TS 38.214
// §5.2.2.1). Like the MCS tables, which one is configured determines whether
// the UE can report 256QAM-grade channel quality.
type CQITable uint8

const (
	// CQITable64QAM is TS 38.214 Table 5.2.2.1-2.
	CQITable64QAM CQITable = 1
	// CQITable256QAM is TS 38.214 Table 5.2.2.1-3.
	CQITable256QAM CQITable = 2
)

// cqiTable1 is TS 38.214 Table 5.2.2.1-2 (max 64QAM). Index 0 is reserved
// ("out of range").
var cqiTable1 = []CQIRow{
	{0, 0, 0, 0},
	{1, QPSK, 78, 0.1523}, {2, QPSK, 120, 0.2344}, {3, QPSK, 193, 0.3770},
	{4, QPSK, 308, 0.6016}, {5, QPSK, 449, 0.8770}, {6, QPSK, 602, 1.1758},
	{7, QAM16, 378, 1.4766}, {8, QAM16, 490, 1.9141}, {9, QAM16, 616, 2.4063},
	{10, QAM64, 466, 2.7305}, {11, QAM64, 567, 3.3223}, {12, QAM64, 666, 3.9023},
	{13, QAM64, 772, 4.5234}, {14, QAM64, 873, 5.1152}, {15, QAM64, 948, 5.5547},
}

// cqiTable2 is TS 38.214 Table 5.2.2.1-3 (max 256QAM).
var cqiTable2 = []CQIRow{
	{0, 0, 0, 0},
	{1, QPSK, 78, 0.1523}, {2, QPSK, 193, 0.3770}, {3, QPSK, 449, 0.8770},
	{4, QAM16, 378, 1.4766}, {5, QAM16, 490, 1.9141}, {6, QAM16, 616, 2.4063},
	{7, QAM64, 466, 2.7305}, {8, QAM64, 567, 3.3223}, {9, QAM64, 666, 3.9023},
	{10, QAM64, 772, 4.5234}, {11, QAM64, 873, 5.1152},
	{12, QAM256, 711, 5.5547}, {13, QAM256, 797, 6.2266},
	{14, QAM256, 885, 6.9141}, {15, QAM256, 948, 7.4063},
}

func (t CQITable) rows() ([]CQIRow, error) {
	switch t {
	case CQITable64QAM:
		return cqiTable1, nil
	case CQITable256QAM:
		return cqiTable2, nil
	default:
		return nil, fmt.Errorf("phy: unknown CQI table %d", uint8(t))
	}
}

// Lookup returns the row for CQI c.
func (t CQITable) Lookup(c CQI) (CQIRow, error) {
	rows, err := t.rows()
	if err != nil {
		return CQIRow{}, err
	}
	if !c.Valid() {
		return CQIRow{}, fmt.Errorf("phy: CQI %d out of range", c)
	}
	return rows[c], nil
}

// CQIFromEfficiency returns the highest CQI whose spectral efficiency does
// not exceed se bits per RE (the reporting rule of TS 38.214 §5.2.2.1:
// the UE reports the highest CQI it could receive at ≤10%% BLER).
func (t CQITable) CQIFromEfficiency(se float64) CQI {
	rows, err := t.rows()
	if err != nil {
		return 0
	}
	best := CQI(0)
	for _, r := range rows[1:] {
		if r.Efficiency <= se {
			best = r.CQI
		} else {
			break
		}
	}
	return best
}
