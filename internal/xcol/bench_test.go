package xcol

import (
	"bytes"
	"io"
	"testing"

	"github.com/midband5g/midband/internal/xcal"
)

// benchRecords is sized so a pass covers many blocks but the encoded
// traces stay cache-resident enough to measure decode, not disk.
const benchRecords = 32 * BlockCap

func benchStream(b *testing.B) []xcal.SlotKPI {
	b.Helper()
	return genKPIsB(benchRecords, 2024)
}

// genKPIsB mirrors the test generator without a *testing.T.
func genKPIsB(n int, seed int64) []xcal.SlotKPI {
	return genKPIs(n, seed)
}

func encodeCol(b *testing.B, records []xcal.SlotKPI) []byte {
	b.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, testMeta())
	if err != nil {
		b.Fatal(err)
	}
	for i := range records {
		if err := w.WriteKPI(&records[i]); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	return buf.Bytes()
}

func encodeRow(b *testing.B, records []xcal.SlotKPI) []byte {
	b.Helper()
	var buf bytes.Buffer
	w, err := xcal.NewWriter(&buf, testMeta())
	if err != nil {
		b.Fatal(err)
	}
	for i := range records {
		if err := w.WriteKPI(&records[i]); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	return buf.Bytes()
}

// BenchmarkBlockScan measures decoding the same KPI stream three ways:
// the full columnar decode, the goodput-projection decode (what the
// figure pipeline reads) and the row xcal.Reader baseline. ns/op is
// per record. The benchgate baseline pins the columnar variants; the
// acceptance bar is Goodput ≥ 10x faster than RowReader with 0
// allocs/op steady-state — the projection is what the analysis path
// actually decodes, and it is where columnar layout pays: a row reader
// must touch all 64 bytes of every record regardless of projection.
func BenchmarkBlockScan(b *testing.B) {
	records := benchStream(b)
	col := encodeCol(b, records)
	row := encodeRow(b, records)

	scan := func(b *testing.B, proj ColumnSet) {
		s, err := NewScanner(BytesReaderAt(col), int64(len(col)))
		if err != nil {
			b.Fatal(err)
		}
		s.SetProjection(proj)
		var sink uint64
		// Warm pass sizes the decode buffers.
		for {
			blk, err := s.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
			sink += uint64(blk.Count)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Reset()
			n := 0
			for {
				blk, err := s.Next()
				if err == io.EOF {
					break
				}
				if err != nil {
					b.Fatal(err)
				}
				n += blk.Count
				if len(blk.DeliveredBits) > 0 {
					sink += uint64(blk.DeliveredBits[blk.Count-1])
				}
			}
			if n != benchRecords {
				b.Fatalf("scanned %d records, want %d", n, benchRecords)
			}
		}
		b.StopTimer()
		if sink == 0 {
			b.Fatal("empty sink")
		}
		perRecord(b)
	}

	b.Run("Full", func(b *testing.B) { scan(b, 0) })
	b.Run("Goodput", func(b *testing.B) { scan(b, GoodputColumns) })
	b.Run("RowReader", func(b *testing.B) {
		b.ReportAllocs()
		var sink uint64
		for i := 0; i < b.N; i++ {
			r, err := xcal.NewReader(bytes.NewReader(row))
			if err != nil {
				b.Fatal(err)
			}
			n := 0
			for {
				t, err := r.Next()
				if err == io.EOF {
					break
				}
				if err != nil {
					b.Fatal(err)
				}
				if t == xcal.FrameKPI {
					n++
					sink += uint64(r.KPI.DeliveredBits)
				}
			}
			if n != benchRecords {
				b.Fatalf("read %d records, want %d", n, benchRecords)
			}
		}
		b.StopTimer()
		if sink == 0 {
			b.Fatal("empty sink")
		}
		perRecord(b)
	})
}

// perRecord reports ns/record so the three variants compare directly.
func perRecord(b *testing.B) {
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/benchRecords, "ns/record")
}

// BenchmarkBlockWrite measures the streaming encode path end to end
// (column build + encode + CRC + framing), per record.
func BenchmarkBlockWrite(b *testing.B) {
	records := benchStream(b)
	w, err := NewWriter(io.Discard, testMeta())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range records {
			if err := w.WriteKPI(&records[j]); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	perRecord(b)
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
}
