package xcol

import (
	"context"
	"errors"
	"fmt"
	"io"

	"github.com/midband5g/midband/internal/fleet"
)

// ScanOptions configure one ScanBlocks call.
type ScanOptions struct {
	// Workers is the decode pool size; <=0 means GOMAXPROCS.
	Workers int
	// Window bounds decoded-but-unemitted blocks; <=0 means 2×workers.
	// Peak memory is O(Window × BlockCap) regardless of trace size.
	Window int
	// Columns restricts which columns are decoded; zero means all.
	Columns ColumnSet
}

// ScanStats summarizes one completed scan.
type ScanStats struct {
	// Blocks is the number of KPI blocks delivered.
	Blocks int
	// Records is the number of KPI records delivered.
	Records uint64
	// Skipped is the provenance of every corrupt block, in file order.
	Skipped []BlockError
}

// scanUnit is one pooled decode target: a job reads and decodes into
// it, the emit path drains it and returns it to the free list, so a
// scan allocates O(Window) units total.
type scanUnit struct {
	buf  []byte
	blk  Block
	berr *BlockError
}

// ScanBlocks streams every KPI block of a columnar trace through emit
// in file order, decoding blocks in parallel on a bounded window
// (fleet.Stream). Corrupt blocks are skipped with provenance in
// Skipped; only I/O and emit errors abort the scan. The *Block passed
// to emit is pooled — valid only until emit returns.
//
// Determinism: for a fixed input the emit sequence and the returned
// stats are identical for any Workers/Window setting — workers shard
// the decode, never the semantics.
func ScanBlocks(ctx context.Context, r io.ReaderAt, size int64, opts ScanOptions, emit func(*Block) error) (*ScanStats, error) {
	s, err := NewScanner(r, size)
	if err != nil {
		return nil, err
	}
	s.SetProjection(opts.Columns)
	stats := &ScanStats{}
	if s.Sequential() || len(s.kpi) == 0 {
		// No usable index: the block boundaries are only discoverable by
		// walking, so decode serially.
		for {
			b, err := s.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return stats, err
			}
			stats.Blocks++
			stats.Records += uint64(b.Count)
			if err := emit(b); err != nil {
				return stats, err
			}
		}
		stats.Skipped = s.Corrupt()
		return stats, nil
	}

	workers := fleet.EffectiveWorkers(opts.Workers)
	if workers > len(s.kpi) {
		workers = len(s.kpi)
	}
	window := opts.Window
	if window <= 0 {
		window = 2 * workers
	}
	if window < workers {
		window = workers
	}
	if window > len(s.kpi) {
		window = len(s.kpi)
	}

	free := make(chan *scanUnit, window)
	for i := 0; i < window; i++ {
		free <- &scanUnit{}
	}
	br, _ := r.(ByteRanger)
	jobs := make([]fleet.Job[*scanUnit], len(s.kpi))
	for ji, ord := range s.kpi {
		e := s.index[ord]
		ord := ord
		jobs[ji] = fleet.Job[*scanUnit]{
			Key: fmt.Sprintf("block-%d", ord),
			Run: func(ctx context.Context) (*scanUnit, error) {
				// ctx-aware acquire: after a cancel the emit path stops
				// returning units, and a bare receive would hang the pool.
				var u *scanUnit
				select {
				case u = <-free:
				case <-ctx.Done():
					return nil, ctx.Err()
				}
				u.berr = nil
				var payload []byte
				if br != nil {
					var err error
					payload, err = br.ByteRange(int64(e.Offset+headerSize), int(e.Len))
					if err != nil {
						free <- u
						return nil, fmt.Errorf("block %d at offset %d: reading payload: %w", ord, e.Offset, err)
					}
				} else {
					if cap(u.buf) < int(e.Len) {
						u.buf = make([]byte, e.Len)
					}
					u.buf = u.buf[:e.Len]
					if _, err := r.ReadAt(u.buf, int64(e.Offset+headerSize)); err != nil {
						free <- u
						return nil, fmt.Errorf("block %d at offset %d: reading payload: %w", ord, e.Offset, err)
					}
					payload = u.buf
				}
				if checksum(payload) != e.CRC {
					u.berr = &BlockError{Offset: e.Offset, Kind: e.Kind, Index: ord,
						Err: errors.New("payload CRC mismatch")}
					return u, nil
				}
				if err := decodeKPIBlock(payload, int(e.Count), &u.blk, opts.Columns, e.First); err != nil {
					u.berr = &BlockError{Offset: e.Offset, Kind: e.Kind, Index: ord, Err: err}
					return u, nil
				}
				return u, nil
			},
		}
	}
	streamErr := fleet.Stream(ctx, jobs, fleet.StreamOptions{Workers: workers, Window: window},
		func(res fleet.Result[*scanUnit]) error {
			u := res.Value
			if res.Err != nil || u == nil {
				return nil // Stream fail-fasts on res.Err itself
			}
			defer func() { free <- u }()
			if u.berr != nil {
				stats.Skipped = append(stats.Skipped, *u.berr)
				return nil
			}
			stats.Blocks++
			stats.Records += uint64(u.blk.Count)
			return emit(&u.blk)
		})
	if streamErr != nil {
		return stats, streamErr
	}
	return stats, nil
}
