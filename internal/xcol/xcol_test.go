package xcol

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"github.com/midband5g/midband/internal/xcal"
)

func testMeta() xcal.Meta {
	return xcal.Meta{
		Operator:     "Verizon",
		Country:      "US",
		City:         "Chicago",
		CarrierLabel: "n77 100 MHz",
		Scenario:     "driving",
		SlotDuration: 500 * time.Microsecond,
		Start:        time.Unix(0, 0).UTC(),
	}
}

// genKPIs produces a deterministic, realistically-shaped KPI stream:
// monotone slots, cycling carriers, slowly-moving scheduler fields and
// correlated radio floats — the texture the column encodings are tuned
// for.
func genKPIs(n int, seed int64) []xcal.SlotKPI {
	rng := rand.New(rand.NewSource(seed))
	out := make([]xcal.SlotKPI, n)
	sinr, rsrp := float32(18.0), float32(-85.0)
	cqi, mcs := uint8(11), uint8(19)
	for i := range out {
		if rng.Intn(64) == 0 {
			sinr += float32(rng.NormFloat64())
			rsrp += float32(rng.NormFloat64()) * 0.5
		}
		if rng.Intn(128) == 0 {
			cqi = uint8(3 + rng.Intn(12))
			mcs = uint8(5 + rng.Intn(23))
		}
		slot := int64(i / 3)
		carrier := uint8(i % 3)
		ack := rng.Intn(10) != 0
		rbs := uint16(240 + rng.Intn(33))
		tbs := uint32(rbs) * 1600
		delivered := uint32(0)
		if ack {
			delivered = tbs
		}
		out[i] = xcal.SlotKPI{
			Slot:          slot,
			Time:          time.Duration(slot) * 500 * time.Microsecond,
			Carrier:       carrier,
			RAT:           xcal.NR,
			Dir:           xcal.DL,
			CQI:           cqi,
			MCSTable:      2,
			MCS:           mcs,
			Rank:          uint8(1 + i%2),
			HARQRetx:      uint8(rng.Intn(2)),
			ACK:           ack,
			Outage:        rng.Intn(512) == 0,
			RBs:           rbs,
			ServingCell:   77,
			REs:           uint32(rbs) * 144,
			TBSBits:       tbs,
			DeliveredBits: delivered,
			SINRdB:        sinr,
			RSRPdBm:       rsrp,
			RSRQdB:        -11.5,
			PosX:          float32(i) * 0.01,
			PosY:          20,
		}
	}
	return out
}

// writeTestTrace writes records plus a sprinkling of signaling frames
// and returns the encoded columnar trace.
func writeTestTrace(t *testing.T, records []xcal.SlotKPI, withAux bool) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, testMeta())
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	if withAux {
		if err := w.WriteMIB(&xcal.MIB{SFN: 1}); err != nil {
			t.Fatalf("WriteMIB: %v", err)
		}
	}
	for i := range records {
		if err := w.WriteKPI(&records[i]); err != nil {
			t.Fatalf("WriteKPI: %v", err)
		}
		if withAux && i%1000 == 500 {
			if err := w.WriteDCI(&xcal.DCI{Slot: records[i].Slot, MCS: records[i].MCS}); err != nil {
				t.Fatalf("WriteDCI: %v", err)
			}
		}
	}
	if withAux {
		if err := w.WriteEvent(xcal.Event{Time: time.Second, Kind: "stall"}); err != nil {
			t.Fatalf("WriteEvent: %v", err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if got := w.Records(); got != uint64(len(records)) {
		t.Fatalf("Records() = %d, want %d", got, len(records))
	}
	return buf.Bytes()
}

func scanAll(t *testing.T, data []byte) []xcal.SlotKPI {
	t.Helper()
	s, err := NewScanner(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatalf("NewScanner: %v", err)
	}
	var got []xcal.SlotKPI
	for {
		b, err := s.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		got = b.AppendRows(got)
	}
	if len(s.Corrupt()) != 0 {
		t.Fatalf("unexpected corrupt blocks: %v", s.Corrupt())
	}
	return got
}

func TestRoundTrip(t *testing.T) {
	// Sizes straddle the block boundary: partial, exact, multi-block.
	for _, n := range []int{1, 7, BlockCap - 1, BlockCap, BlockCap + 1, 3*BlockCap + 17} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			records := genKPIs(n, int64(n))
			data := writeTestTrace(t, records, true)
			got := scanAll(t, data)
			if len(got) != len(records) {
				t.Fatalf("decoded %d records, want %d", len(got), len(records))
			}
			for i := range records {
				if got[i] != records[i] {
					t.Fatalf("record %d mismatch:\n got %+v\nwant %+v", i, got[i], records[i])
				}
			}
		})
	}
}

func TestRoundTripAdversarialValues(t *testing.T) {
	// Extremes exercise the mod-2^64 delta arithmetic and float paths.
	records := []xcal.SlotKPI{
		{Slot: math.MaxInt64, Time: time.Duration(math.MinInt64), SINRdB: float32(math.Inf(1))},
		{Slot: math.MinInt64, Time: time.Duration(math.MaxInt64), RSRPdBm: float32(math.NaN())},
		{Slot: 0, REs: math.MaxUint32, RBs: math.MaxUint16, PosX: -0},
		{Slot: -1, TBSBits: 1, DeliveredBits: math.MaxUint32},
	}
	data := writeTestTrace(t, records, false)
	got := scanAll(t, data)
	if len(got) != len(records) {
		t.Fatalf("decoded %d records, want %d", len(got), len(records))
	}
	for i := range records {
		a, b := got[i], records[i]
		// NaN breaks struct equality; compare bit patterns instead.
		if math.Float32bits(a.RSRPdBm) != math.Float32bits(b.RSRPdBm) {
			t.Fatalf("record %d RSRPdBm bits mismatch", i)
		}
		a.RSRPdBm, b.RSRPdBm = 0, 0
		if a != b {
			t.Fatalf("record %d mismatch:\n got %+v\nwant %+v", i, a, b)
		}
	}
}

func TestMetaRoundTrip(t *testing.T) {
	data := writeTestTrace(t, genKPIs(10, 1), false)
	s, err := NewScanner(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatalf("NewScanner: %v", err)
	}
	if got, want := s.Meta(), testMeta(); got != want {
		t.Fatalf("Meta = %+v, want %+v", got, want)
	}
	if s.Sequential() {
		t.Fatal("well-formed trace should scan indexed")
	}
	if got, want := s.NumRecords(), uint64(10); got != want {
		t.Fatalf("NumRecords = %d, want %d", got, want)
	}
}

func TestAuxFramesReplay(t *testing.T) {
	records := genKPIs(2500, 3)
	data := writeTestTrace(t, records, true)
	s, err := NewScanner(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatalf("NewScanner: %v", err)
	}
	type frame struct {
		t   xcal.FrameType
		pos uint64
	}
	var frames []frame
	err = s.AuxFrames(func(ft xcal.FrameType, pos uint64, payload []byte) error {
		frames = append(frames, frame{ft, pos})
		return nil
	})
	if err != nil {
		t.Fatalf("AuxFrames: %v", err)
	}
	want := []frame{
		{xcal.FrameMIB, 0},
		{xcal.FrameDCI, 501},  // written after record index 500
		{xcal.FrameDCI, 1501}, // i%1000 == 500
		{xcal.FrameEvent, 2500},
	}
	if len(frames) != len(want) {
		t.Fatalf("got %d aux frames %v, want %v", len(frames), frames, want)
	}
	for i := range want {
		if frames[i] != want[i] {
			t.Fatalf("aux frame %d = %+v, want %+v", i, frames[i], want[i])
		}
	}
}

func TestProjection(t *testing.T) {
	records := genKPIs(2*BlockCap+100, 9)
	data := writeTestTrace(t, records, false)
	s, err := NewScanner(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatalf("NewScanner: %v", err)
	}
	s.SetProjection(GoodputColumns)
	i := 0
	for {
		b, err := s.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if len(b.Time) != 0 || len(b.SINRdB) != 0 {
			t.Fatal("unselected columns should be empty")
		}
		if len(b.Slot) != b.Count || len(b.DeliveredBits) != b.Count {
			t.Fatal("selected columns should be materialized")
		}
		for j := 0; j < b.Count; j++ {
			r := &records[i]
			if b.Slot[j] != r.Slot || b.Carrier[j] != r.Carrier ||
				b.MCS[j] != r.MCS || b.DeliveredBits[j] != r.DeliveredBits {
				t.Fatalf("record %d projection mismatch", i)
			}
			i++
		}
	}
	if i != len(records) {
		t.Fatalf("scanned %d records, want %d", i, len(records))
	}
}

func TestScanBlocksMatchesSerialAndWorkers(t *testing.T) {
	records := genKPIs(5*BlockCap+321, 11)
	data := writeTestTrace(t, records, true)
	serial := scanAll(t, data)

	for _, workers := range []int{1, 4} {
		var got []xcal.SlotKPI
		stats, err := ScanBlocks(context.Background(), bytes.NewReader(data), int64(len(data)),
			ScanOptions{Workers: workers}, func(b *Block) error {
				got = b.AppendRows(got)
				return nil
			})
		if err != nil {
			t.Fatalf("workers=%d: ScanBlocks: %v", workers, err)
		}
		if stats.Records != uint64(len(records)) || len(stats.Skipped) != 0 {
			t.Fatalf("workers=%d: stats = %+v", workers, stats)
		}
		if len(got) != len(serial) {
			t.Fatalf("workers=%d: %d records, want %d", workers, len(got), len(serial))
		}
		for i := range got {
			if got[i] != serial[i] {
				t.Fatalf("workers=%d: record %d differs from serial scan", workers, i)
			}
		}
	}
}

func TestScanBlocksEmitError(t *testing.T) {
	data := writeTestTrace(t, genKPIs(4*BlockCap, 5), false)
	wantErr := fmt.Errorf("stop")
	calls := 0
	_, err := ScanBlocks(context.Background(), bytes.NewReader(data), int64(len(data)),
		ScanOptions{Workers: 2}, func(b *Block) error {
			calls++
			if calls == 2 {
				return wantErr
			}
			return nil
		})
	if err == nil || err.Error() != "stop" {
		t.Fatalf("err = %v, want stop", err)
	}
	if calls != 2 {
		t.Fatalf("emit called %d times, want 2", calls)
	}
}

func TestConvertRoundTrip(t *testing.T) {
	// Build a canonical row trace with interleaved signaling.
	var row bytes.Buffer
	w, err := xcal.NewWriter(&row, testMeta())
	if err != nil {
		t.Fatalf("xcal.NewWriter: %v", err)
	}
	if err := w.WriteMIB(&xcal.MIB{SFN: 12, SCSkHz: 30}); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteSIB1(&xcal.SIB1{CellID: 501, Band: "n77"}); err != nil {
		t.Fatal(err)
	}
	records := genKPIs(2*BlockCap+777, 21)
	for i := range records {
		if err := w.WriteKPI(&records[i]); err != nil {
			t.Fatal(err)
		}
		if i%700 == 13 {
			if err := w.WriteDCI(&xcal.DCI{Slot: records[i].Slot}); err != nil {
				t.Fatal(err)
			}
		}
		if i == 1000 {
			if err := w.WriteEvent(xcal.Event{Time: time.Second, Kind: "chunk-request", Data: "q=7"}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := w.WriteEvent(xcal.Event{Time: 2 * time.Second, Kind: "session-end"}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	var col bytes.Buffer
	n, err := ConvertRowToCol(bytes.NewReader(row.Bytes()), &col)
	if err != nil {
		t.Fatalf("ConvertRowToCol: %v", err)
	}
	if n != uint64(len(records)) {
		t.Fatalf("converted %d records, want %d", n, len(records))
	}

	var back bytes.Buffer
	n, err = ConvertColToRow(bytes.NewReader(col.Bytes()), int64(col.Len()), &back)
	if err != nil {
		t.Fatalf("ConvertColToRow: %v", err)
	}
	if n != uint64(len(records)) {
		t.Fatalf("converted back %d records, want %d", n, len(records))
	}
	if !bytes.Equal(row.Bytes(), back.Bytes()) {
		t.Fatalf("row → col → row is not byte-identical: %d vs %d bytes",
			row.Len(), back.Len())
	}
}

// countWriter counts bytes so the memory test can confirm data really
// streamed out.
type countWriter struct{ n int64 }

func (c *countWriter) Write(p []byte) (int, error) {
	c.n += int64(len(p))
	return len(p), nil
}

func TestWriterMemoryBounded(t *testing.T) {
	n := 4 << 20 // ~256 MB of row-equivalent KPI data
	if testing.Short() {
		n = 1 << 19
	}
	var sink countWriter
	w, err := NewWriter(&sink, testMeta())
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	records := genKPIs(BlockCap, 31)
	runtime.GC()
	var m0 runtime.MemStats
	runtime.ReadMemStats(&m0)
	var k xcal.SlotKPI
	for i := 0; i < n; i++ {
		k = records[i%BlockCap]
		k.Slot = int64(i)
		if err := w.WriteKPI(&k); err != nil {
			t.Fatalf("WriteKPI: %v", err)
		}
		if i%8 == 0 {
			// Signaling interleave keeps the aux path exercised too.
			if err := w.WriteDCI(&xcal.DCI{Slot: k.Slot}); err != nil {
				t.Fatalf("WriteDCI: %v", err)
			}
		}
		if i%(1<<20) == 0 && i > 0 {
			runtime.GC()
			var m runtime.MemStats
			runtime.ReadMemStats(&m)
			growth := int64(m.HeapAlloc) - int64(m0.HeapAlloc)
			// O(block) bound: one block of columns, encode scratch, the
			// capped aux buffer and the index. 16 MB is an order of
			// magnitude above that and three orders below the stream.
			if growth > 16<<20 {
				t.Fatalf("heap grew by %d bytes after %d records — writer memory is not O(block)", growth, i)
			}
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if sink.n == 0 {
		t.Fatal("no bytes written")
	}
	t.Logf("wrote %d records in %d bytes (%.2f bytes/record)", n, sink.n, float64(sink.n)/float64(n))
}

func TestScannerZeroAllocSteadyState(t *testing.T) {
	data := writeTestTrace(t, genKPIs(8*BlockCap, 41), false)
	s, err := NewScanner(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatalf("NewScanner: %v", err)
	}
	scan := func() {
		s.Reset()
		for {
			_, err := s.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("Next: %v", err)
			}
		}
	}
	scan() // warm the decode buffers
	if avg := testing.AllocsPerRun(20, scan); avg != 0 {
		t.Fatalf("steady-state scan allocates %.1f times per pass, want 0", avg)
	}
}

func TestWriteAfterClose(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, testMeta())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil { // idempotent
		t.Fatalf("second Close: %v", err)
	}
	k := xcal.SlotKPI{}
	if err := w.WriteKPI(&k); err != ErrClosed {
		t.Fatalf("WriteKPI after Close = %v, want ErrClosed", err)
	}
}

func writeFile(path string, data []byte) error { return os.WriteFile(path, data, 0o644) }

func TestDetectFormat(t *testing.T) {
	dir := t.TempDir()
	colPath := dir + "/t.xcol"
	if err := writeFile(colPath, writeTestTrace(t, genKPIs(5, 1), false)); err != nil {
		t.Fatal(err)
	}
	var row bytes.Buffer
	w, err := xcal.NewWriter(&row, testMeta())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	rowPath := dir + "/t.xcal"
	if err := writeFile(rowPath, row.Bytes()); err != nil {
		t.Fatal(err)
	}
	if f, err := DetectFormat(colPath); err != nil || f != "xcol" {
		t.Fatalf("DetectFormat(col) = %q, %v", f, err)
	}
	if f, err := DetectFormat(rowPath); err != nil || f != "xcal" {
		t.Fatalf("DetectFormat(row) = %q, %v", f, err)
	}
	junk := dir + "/junk"
	if err := writeFile(junk, []byte("not a trace at all")); err != nil {
		t.Fatal(err)
	}
	if _, err := DetectFormat(junk); err == nil {
		t.Fatal("DetectFormat(junk) should fail")
	}
}
