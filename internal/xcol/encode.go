package xcol

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"
)

// Column codecs. Encoders are decode-speed-first: they pick the
// cheapest representation among those that decode in tight loops
// (const fill, run fills, bit-unpack, raw copy) and only fall back to
// varint-per-row delta coding when it shrinks the column by 4x —
// a varint decode per row is exactly the per-record cost the columnar
// format exists to escape. Decoders are strict: every byte of a column
// payload must be consumed and every run must land exactly on the row
// count, so corruption is detected rather than smeared.
//
// All delta arithmetic is mod 2^64: encode computes cur-prev on the
// uint64 bit patterns and decode adds the (un-zigzagged) delta back
// with the same wraparound, so even adversarial extreme values round
// trip losslessly.

func zigzag(d uint64) uint64 {
	v := int64(d)
	return uint64(v<<1) ^ uint64(v>>63)
}

func unzigzag(z uint64) uint64 {
	return (z >> 1) ^ (^(z & 1) + 1)
}

func uvarintLen(v uint64) int {
	return (bits.Len64(v|1) + 6) / 7
}

// uvarint decodes at pos; it returns the next position, or -1 on
// truncated or overflowing input. The single-byte case is first so the
// common path is branch-predictable.
func uvarint(b []byte, pos int) (uint64, int) {
	if pos >= 0 && pos < len(b) && b[pos] < 0x80 {
		return uint64(b[pos]), pos + 1
	}
	if pos < 0 {
		return 0, -1
	}
	var v uint64
	var shift uint
	for i := pos; i < len(b); i++ {
		c := b[i]
		if c < 0x80 {
			if shift == 63 && c > 1 {
				return 0, -1 // overflows uint64
			}
			return v | uint64(c)<<shift, i + 1
		}
		v |= uint64(c&0x7f) << shift
		shift += 7
		if shift > 63 {
			return 0, -1
		}
	}
	return 0, -1
}

type intColumn interface {
	~int64 | ~uint8 | ~uint16 | ~uint32
}

// appendRawInts emits fixed-width little-endian values.
func appendRawInts[T intColumn](dst []byte, xs []T, width int) []byte {
	switch width {
	case 1:
		for _, x := range xs {
			dst = append(dst, byte(x))
		}
	case 2:
		for _, x := range xs {
			dst = binary.LittleEndian.AppendUint16(dst, uint16(x))
		}
	case 4:
		for _, x := range xs {
			dst = binary.LittleEndian.AppendUint32(dst, uint32(x))
		}
	default:
		for _, x := range xs {
			dst = binary.LittleEndian.AppendUint64(dst, uint64(x))
		}
	}
	return dst
}

// maxPackWidth caps the frame-of-reference bit width: the 39-bit load
// window of the unpack fast path (7 shift + 32 value bits) must fit a
// 64-bit load.
const maxPackWidth = 32

// colStats is the one-pass sizing summary encodeIntCol chooses from.
type colStats struct {
	allSame   bool
	deltaSize int // zigzag-varint per delta
	rleSize   int // (delta, run) pairs
	runs      int
	base      uint64 // unsigned minimum
	rangeV    uint64 // max - base (unsigned)
	packWidth int    // bits.Len64(rangeV), 0 when allSame
}

func sizeIntCol[T intColumn](xs []T) colStats {
	n := len(xs)
	first := uint64(xs[0])
	st := colStats{allSame: true, base: first}
	st.deltaSize = uvarintLen(zigzag(first))
	st.rleSize = st.deltaSize
	maxV := first
	prev := first
	var runDelta uint64
	runLen := 0
	for i := 1; i < n; i++ {
		cur := uint64(xs[i])
		d := cur - prev
		prev = cur
		if d != 0 {
			st.allSame = false
		}
		if cur < st.base {
			st.base = cur
		}
		if cur > maxV {
			maxV = cur
		}
		st.deltaSize += uvarintLen(zigzag(d))
		if runLen > 0 && d == runDelta {
			runLen++
			continue
		}
		if runLen > 0 {
			st.rleSize += uvarintLen(zigzag(runDelta)) + uvarintLen(uint64(runLen))
			st.runs++
		}
		runDelta, runLen = d, 1
	}
	if runLen > 0 {
		st.rleSize += uvarintLen(zigzag(runDelta)) + uvarintLen(uint64(runLen))
		st.runs++
	}
	st.rangeV = maxV - st.base
	st.packWidth = bits.Len64(st.rangeV)
	return st
}

func gcdU64(a, b uint64) uint64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// colScale returns the GCD of the offsets from base, or 1 when no
// common factor survives. Only called when the plain pack width is
// wide enough that a factor could pay for its header; the divisibility
// pre-check keeps the pass to one division per value once the factor
// stabilizes, and the scan exits as soon as it collapses to 1.
func colScale[T intColumn](xs []T, base uint64) uint64 {
	var g uint64
	for _, x := range xs {
		e := uint64(x) - base
		if g != 0 && e%g == 0 {
			continue
		}
		g = gcdU64(g, e)
		if g == 1 {
			return 1
		}
	}
	if g == 0 {
		return 1
	}
	return g
}

// roundWidth rounds a bit width up to the nearest lane width the
// decoder unpacks without variable shifts: sub-byte powers of two or
// whole little-endian lanes. The few extra bits per value buy a decode
// loop that is a plain copy-and-add — the decode-speed-first trade.
func roundWidth(w int) int {
	switch {
	case w <= 1:
		return 1
	case w <= 2:
		return 2
	case w <= 4:
		return 4
	case w <= 8:
		return 8
	case w <= 16:
		return 16
	default:
		return 32
	}
}

func packedSize(base uint64, width, n int) int {
	return uvarintLen(base) + 1 + (n*width+7)/8
}

// appendPacked emits [base uvarint][width u8][values - base, LSB-first
// width-bit packed].
func appendPacked[T intColumn](dst []byte, xs []T, base uint64, width int) []byte {
	dst = binary.AppendUvarint(dst, base)
	dst = append(dst, uint8(width))
	var acc uint64
	accBits := 0
	for _, x := range xs {
		acc |= (uint64(x) - base) << accBits
		accBits += width
		for accBits >= 8 {
			dst = append(dst, byte(acc))
			acc >>= 8
			accBits -= 8
		}
	}
	if accBits > 0 {
		dst = append(dst, byte(acc))
	}
	return dst
}

// appendPackedScale emits [base uvarint][scale uvarint][width u8]
// [(values - base) / scale, LSB-first width-bit packed].
func appendPackedScale[T intColumn](dst []byte, xs []T, st colStats, scale uint64, width int) []byte {
	dst = binary.AppendUvarint(dst, st.base)
	dst = binary.AppendUvarint(dst, scale)
	dst = append(dst, uint8(width))
	var acc uint64
	accBits := 0
	for _, x := range xs {
		acc |= (uint64(x) - st.base) / scale << accBits
		accBits += width
		for accBits >= 8 {
			dst = append(dst, byte(acc))
			acc >>= 8
			accBits -= 8
		}
	}
	if accBits > 0 {
		dst = append(dst, byte(acc))
	}
	return dst
}

func appendDeltaRLE[T intColumn](dst []byte, xs []T) []byte {
	first := uint64(xs[0])
	dst = binary.AppendUvarint(dst, zigzag(first))
	prev := first
	var runDelta uint64
	runLen := 0
	for i := 1; i < len(xs); i++ {
		cur := uint64(xs[i])
		d := cur - prev
		prev = cur
		if runLen > 0 && d == runDelta {
			runLen++
			continue
		}
		if runLen > 0 {
			dst = binary.AppendUvarint(dst, zigzag(runDelta))
			dst = binary.AppendUvarint(dst, uint64(runLen))
		}
		runDelta, runLen = d, 1
	}
	if runLen > 0 {
		dst = binary.AppendUvarint(dst, zigzag(runDelta))
		dst = binary.AppendUvarint(dst, uint64(runLen))
	}
	return dst
}

// encodeIntCol appends the chosen encoding of xs and returns its tag.
// width is the raw byte width of T. Selection is deterministic:
// identical inputs always produce identical bytes.
func encodeIntCol[T intColumn](dst []byte, xs []T, width int) (uint8, []byte) {
	n := len(xs)
	st := sizeIntCol(xs)
	if st.allSame {
		return encConst, binary.AppendUvarint(dst, zigzag(uint64(xs[0])))
	}
	rawSize := n * width

	// Decode-speed-first selection. Raw is the floor; packed must earn
	// its bit-twiddling with a 1.5x size win; RLE must both shrink the
	// column and have long runs (short runs decode at varint speed);
	// delta-varint needs a 4x win over the best so far.
	enc, size := encRaw, rawSize
	packW := roundWidth(st.packWidth)
	if st.packWidth <= maxPackWidth {
		if ps := packedSize(st.base, packW, n); ps+ps/2 <= rawSize && ps < size {
			enc, size = encPacked, ps
		}
	}
	var scale uint64 = 1
	var scaleWidth int
	if st.packWidth >= 10 {
		if g := colScale(xs, st.base); g >= 2 {
			scaleWidth = roundWidth(bits.Len64(st.rangeV / g))
			if scaleWidth <= maxPackWidth {
				ss := uvarintLen(st.base) + uvarintLen(g) + 1 + (n*scaleWidth+7)/8
				if ss+ss/2 <= rawSize && ss < size {
					enc, size, scale = encPackedScale, ss, g
				}
			}
		}
	}
	if st.runs*8 <= n && st.rleSize < size {
		enc, size = encDeltaRLE, st.rleSize
	}
	if st.deltaSize*4 < size {
		enc, size = encDelta, st.deltaSize
	}

	switch enc {
	case encPacked:
		return encPacked, appendPacked(dst, xs, st.base, packW)
	case encPackedScale:
		return encPackedScale, appendPackedScale(dst, xs, st, scale, scaleWidth)
	case encDeltaRLE:
		return encDeltaRLE, appendDeltaRLE(dst, xs)
	case encDelta:
		first := uint64(xs[0])
		dst = binary.AppendUvarint(dst, zigzag(first))
		prev := first
		for i := 1; i < n; i++ {
			cur := uint64(xs[i])
			dst = binary.AppendUvarint(dst, zigzag(cur-prev))
			prev = cur
		}
		return encDelta, dst
	default:
		return encRaw, appendRawInts(dst, xs, width)
	}
}

// fill sets every element of out to v in O(log n) memmoves — much
// faster than an element loop for the const and zero-run fills that
// dominate well-behaved traces.
func fill[T any](out []T, v T) {
	if len(out) == 0 {
		return
	}
	out[0] = v
	for f := 1; f < len(out); f *= 2 {
		copy(out[f:], out[:f])
	}
}

// decodePacked unpacks len(out) width-bit values. Byte-aligned widths
// get dedicated copy loops; sub-byte widths unpack several values per
// byte; the rest run a bit-reader refilled 32 bits at a time. No load
// ever crosses the end of data.
func decodePacked[T intColumn](data []byte, out []T) error {
	base, pos := uvarint(data, 0)
	if pos < 0 || pos >= len(data) {
		return fmt.Errorf("packed column: truncated header")
	}
	width := int(data[pos])
	pos++
	if width < 1 || width > maxPackWidth {
		return fmt.Errorf("packed column: bad width %d", width)
	}
	n := len(out)
	if len(data)-pos != (n*width+7)/8 {
		return fmt.Errorf("packed column: %d payload bytes for %d rows of width %d", len(data)-pos, n, width)
	}
	p := data[pos:]
	switch width {
	case 1:
		i := 0
		for ; i+8 <= n; i += 8 {
			b := p[i>>3]
			out[i] = T(base + uint64(b&1))
			out[i+1] = T(base + uint64(b>>1&1))
			out[i+2] = T(base + uint64(b>>2&1))
			out[i+3] = T(base + uint64(b>>3&1))
			out[i+4] = T(base + uint64(b>>4&1))
			out[i+5] = T(base + uint64(b>>5&1))
			out[i+6] = T(base + uint64(b>>6&1))
			out[i+7] = T(base + uint64(b>>7&1))
		}
		for ; i < n; i++ {
			out[i] = T(base + uint64(p[i>>3]>>(i&7)&1))
		}
	case 2:
		i := 0
		for ; i+4 <= n; i += 4 {
			b := p[i>>2]
			out[i] = T(base + uint64(b&3))
			out[i+1] = T(base + uint64(b>>2&3))
			out[i+2] = T(base + uint64(b>>4&3))
			out[i+3] = T(base + uint64(b>>6&3))
		}
		for ; i < n; i++ {
			out[i] = T(base + uint64(p[i>>2]>>(2*(i&3))&3))
		}
	case 4:
		i := 0
		for ; i+2 <= n; i += 2 {
			b := p[i>>1]
			out[i] = T(base + uint64(b&15))
			out[i+1] = T(base + uint64(b>>4))
		}
		if i < n {
			out[i] = T(base + uint64(p[i>>1]&15))
		}
	case 8:
		i := 0
		for ; i+8 <= n; i += 8 {
			v := binary.LittleEndian.Uint64(p[i:])
			out[i] = T(base + (v & 0xff))
			out[i+1] = T(base + (v >> 8 & 0xff))
			out[i+2] = T(base + (v >> 16 & 0xff))
			out[i+3] = T(base + (v >> 24 & 0xff))
			out[i+4] = T(base + (v >> 32 & 0xff))
			out[i+5] = T(base + (v >> 40 & 0xff))
			out[i+6] = T(base + (v >> 48 & 0xff))
			out[i+7] = T(base + (v >> 56))
		}
		for ; i < n; i++ {
			out[i] = T(base + uint64(p[i]))
		}
	case 16:
		i := 0
		for ; i+4 <= n; i += 4 {
			v := binary.LittleEndian.Uint64(p[2*i:])
			out[i] = T(base + (v & 0xffff))
			out[i+1] = T(base + (v >> 16 & 0xffff))
			out[i+2] = T(base + (v >> 32 & 0xffff))
			out[i+3] = T(base + (v >> 48))
		}
		for ; i < n; i++ {
			out[i] = T(base + uint64(binary.LittleEndian.Uint16(p[2*i:])))
		}
	case 32:
		i := 0
		for ; i+2 <= n; i += 2 {
			v := binary.LittleEndian.Uint64(p[4*i:])
			out[i] = T(base + (v & 0xffffffff))
			out[i+1] = T(base + (v >> 32))
		}
		if i < n {
			out[i] = T(base + uint64(binary.LittleEndian.Uint32(p[4*i:])))
		}
	default:
		// The encoder rounds widths to the aligned lanes above, so this
		// path only sees foreign or corrupt input. One value per 64-bit
		// window load, byte-accumulated near the end of the payload so
		// no load crosses it.
		mask := uint64(1)<<width - 1
		bit := 0
		for i := range out {
			off := bit >> 3
			var v uint64
			if off+8 <= len(p) {
				v = binary.LittleEndian.Uint64(p[off:])
			} else {
				for b := 0; b < 8 && off+b < len(p); b++ {
					v |= uint64(p[off+b]) << (8 * b)
				}
			}
			out[i] = T(base + (v>>(bit&7))&mask)
			bit += width
		}
	}
	return nil
}

// decodePackedMul is decodePacked for scaled columns: each field is
// multiplied by the common factor before the base is added back. All
// arithmetic is mod 2^64, matching the encoder.
func decodePackedMul[T intColumn](data []byte, out []T) error {
	base, pos := uvarint(data, 0)
	if pos < 0 {
		return fmt.Errorf("scaled column: truncated header")
	}
	scale, pos := uvarint(data, pos)
	if pos < 0 || pos >= len(data) {
		return fmt.Errorf("scaled column: truncated header")
	}
	if scale < 2 {
		return fmt.Errorf("scaled column: scale %d below 2", scale)
	}
	width := int(data[pos])
	pos++
	if width < 1 || width > maxPackWidth {
		return fmt.Errorf("scaled column: bad width %d", width)
	}
	n := len(out)
	if len(data)-pos != (n*width+7)/8 {
		return fmt.Errorf("scaled column: %d payload bytes for %d rows of width %d", len(data)-pos, n, width)
	}
	p := data[pos:]
	switch width {
	case 8:
		i := 0
		for ; i+8 <= n; i += 8 {
			v := binary.LittleEndian.Uint64(p[i:])
			out[i] = T(base + scale*(v&0xff))
			out[i+1] = T(base + scale*(v>>8&0xff))
			out[i+2] = T(base + scale*(v>>16&0xff))
			out[i+3] = T(base + scale*(v>>24&0xff))
			out[i+4] = T(base + scale*(v>>32&0xff))
			out[i+5] = T(base + scale*(v>>40&0xff))
			out[i+6] = T(base + scale*(v>>48&0xff))
			out[i+7] = T(base + scale*(v>>56))
		}
		for ; i < n; i++ {
			out[i] = T(base + scale*uint64(p[i]))
		}
	case 16:
		i := 0
		for ; i+4 <= n; i += 4 {
			v := binary.LittleEndian.Uint64(p[2*i:])
			out[i] = T(base + scale*(v&0xffff))
			out[i+1] = T(base + scale*(v>>16&0xffff))
			out[i+2] = T(base + scale*(v>>32&0xffff))
			out[i+3] = T(base + scale*(v>>48))
		}
		for ; i < n; i++ {
			out[i] = T(base + scale*uint64(binary.LittleEndian.Uint16(p[2*i:])))
		}
	case 32:
		i := 0
		for ; i+2 <= n; i += 2 {
			v := binary.LittleEndian.Uint64(p[4*i:])
			out[i] = T(base + scale*(v&0xffffffff))
			out[i+1] = T(base + scale*(v>>32))
		}
		if i < n {
			out[i] = T(base + scale*uint64(binary.LittleEndian.Uint32(p[4*i:])))
		}
	default:
		// Sub-byte and foreign widths: one value per 64-bit window load.
		mask := uint64(1)<<width - 1
		bit := 0
		for i := range out {
			off := bit >> 3
			var v uint64
			if off+8 <= len(p) {
				v = binary.LittleEndian.Uint64(p[off:])
			} else {
				for b := 0; b < 8 && off+b < len(p); b++ {
					v |= uint64(p[off+b]) << (8 * b)
				}
			}
			out[i] = T(base + scale*(v>>(bit&7)&mask))
			bit += width
		}
	}
	return nil
}

// decodeIntCol decodes a column of len(out) values from data.
func decodeIntCol[T intColumn](data []byte, enc uint8, out []T, width int) error {
	n := len(out)
	switch enc {
	case encConst:
		z, pos := uvarint(data, 0)
		if pos != len(data) {
			return fmt.Errorf("const column: bad payload")
		}
		fill(out, T(unzigzag(z)))
		return nil
	case encRaw:
		if len(data) != n*width {
			return fmt.Errorf("raw column: %d bytes for %d rows of width %d", len(data), n, width)
		}
		switch width {
		case 1:
			for i := range out {
				out[i] = T(data[i])
			}
		case 2:
			for i := range out {
				out[i] = T(binary.LittleEndian.Uint16(data[2*i:]))
			}
		case 4:
			for i := range out {
				out[i] = T(binary.LittleEndian.Uint32(data[4*i:]))
			}
		default:
			for i := range out {
				out[i] = T(binary.LittleEndian.Uint64(data[8*i:]))
			}
		}
		return nil
	case encPacked:
		return decodePacked(data, out)
	case encPackedScale:
		return decodePackedMul(data, out)
	case encDelta:
		z, pos := uvarint(data, 0)
		if pos < 0 {
			return fmt.Errorf("delta column: truncated first value")
		}
		cur := unzigzag(z)
		out[0] = T(cur)
		for i := 1; i < n; i++ {
			z, pos = uvarint(data, pos)
			if pos < 0 {
				return fmt.Errorf("delta column: truncated at row %d", i)
			}
			cur += unzigzag(z)
			out[i] = T(cur)
		}
		if pos != len(data) {
			return fmt.Errorf("delta column: %d trailing bytes", len(data)-pos)
		}
		return nil
	case encDeltaRLE:
		z, pos := uvarint(data, 0)
		if pos < 0 {
			return fmt.Errorf("rle column: truncated first value")
		}
		cur := unzigzag(z)
		out[0] = T(cur)
		i := 1
		for i < n {
			z, pos = uvarint(data, pos)
			if pos < 0 {
				return fmt.Errorf("rle column: truncated delta at row %d", i)
			}
			d := unzigzag(z)
			run, p := uvarint(data, pos)
			pos = p
			if pos < 0 || run == 0 || run > uint64(n-i) {
				return fmt.Errorf("rle column: bad run at row %d", i)
			}
			if d == 0 {
				fill(out[i:i+int(run)], T(cur))
				i += int(run)
				continue
			}
			for j := uint64(0); j < run; j++ {
				cur += d
				out[i] = T(cur)
				i++
			}
		}
		if pos != len(data) {
			return fmt.Errorf("rle column: %d trailing bytes", len(data)-pos)
		}
		return nil
	default:
		return fmt.Errorf("int column: unknown encoding %d", enc)
	}
}

// Bit-spread tables for packed byte columns: entry b expands the
// 8/4/2 packed fields of source byte b into one output byte each, so
// the unpack loop is one table load + one wide store per source byte.
var (
	spread1 [256]uint64
	spread2 [256]uint32
	spread4 [256]uint16
)

func init() {
	for b := 0; b < 256; b++ {
		for j := 0; j < 8; j++ {
			spread1[b] |= uint64(b>>j&1) << (8 * j)
		}
		for j := 0; j < 4; j++ {
			spread2[b] |= uint32(b>>(2*j)&3) << (8 * j)
		}
		spread4[b] = uint16(b&15) | uint16(b>>4)<<8
	}
}

// decodeU8Col is decodeIntCol specialized for byte columns: raw is a
// memmove and the sub-byte packed widths expand through the spread
// tables, several values per store.
func decodeU8Col(data []byte, enc uint8, out []uint8) error {
	if enc == encRaw {
		if len(data) != len(out) {
			return fmt.Errorf("raw column: %d bytes for %d rows of width 1", len(data), len(out))
		}
		copy(out, data)
		return nil
	}
	if enc == encPacked {
		return decodePackedU8(data, out)
	}
	return decodeIntCol(data, enc, out, 1)
}

// decodePackedU8 is the packed decoder for byte columns. A valid
// encoder never emits base+range past one byte, so the check below is
// strictness, not a compatibility limit.
func decodePackedU8(data []byte, out []uint8) error {
	base, pos := uvarint(data, 0)
	if pos < 0 || pos >= len(data) {
		return fmt.Errorf("packed column: truncated header")
	}
	width := int(data[pos])
	pos++
	if width < 1 || width > 8 {
		return fmt.Errorf("packed byte column: bad width %d", width)
	}
	n := len(out)
	if len(data)-pos != (n*width+7)/8 {
		return fmt.Errorf("packed column: %d payload bytes for %d rows of width %d", len(data)-pos, n, width)
	}
	if base+(uint64(1)<<width-1) > 0xff {
		return fmt.Errorf("packed byte column: base %d exceeds one byte", base)
	}
	p := data[pos:]
	i := 0
	switch width {
	case 1:
		rep := base * 0x0101010101010101
		for ; i+8 <= n; i += 8 {
			binary.LittleEndian.PutUint64(out[i:], spread1[p[i>>3]]+rep)
		}
		for ; i < n; i++ {
			out[i] = uint8(base) + p[i>>3]>>(i&7)&1
		}
	case 2:
		rep := uint32(base) * 0x01010101
		for ; i+4 <= n; i += 4 {
			binary.LittleEndian.PutUint32(out[i:], spread2[p[i>>2]]+rep)
		}
		for ; i < n; i++ {
			out[i] = uint8(base) + p[i>>2]>>(2*(i&3))&3
		}
	case 4:
		rep := uint16(base) * 0x0101
		for ; i+2 <= n; i += 2 {
			binary.LittleEndian.PutUint16(out[i:], spread4[p[i>>1]]+rep)
		}
		if i < n {
			out[i] = uint8(base) + p[i>>1]&15
		}
	case 8:
		for i := range out {
			out[i] = uint8(base) + p[i]
		}
	default:
		// Odd widths never beat raw for byte columns, but decode them
		// anyway: one value per byte-window load.
		mask := uint8(1)<<width - 1
		bit := 0
		for i := range out {
			off := bit >> 3
			w := uint32(p[off])
			if off+1 < len(p) {
				w |= uint32(p[off+1]) << 8
			}
			out[i] = uint8(base) + uint8(w>>(bit&7))&mask
			bit += width
		}
	}
	return nil
}

// encodeBoolCol appends a bool column (const or bit-packed).
func encodeBoolCol(dst []byte, xs []bool) (uint8, []byte) {
	allSame := true
	for i := 1; i < len(xs); i++ {
		if xs[i] != xs[0] {
			allSame = false
			break
		}
	}
	if allSame {
		v := byte(0)
		if xs[0] {
			v = 1
		}
		return encConst, append(dst, v)
	}
	nb := (len(xs) + 7) / 8
	start := len(dst)
	for i := 0; i < nb; i++ {
		dst = append(dst, 0)
	}
	for i, x := range xs {
		if x {
			dst[start+i>>3] |= 1 << (i & 7)
		}
	}
	return encBits, dst
}

func decodeBoolCol(data []byte, enc uint8, out []bool) error {
	switch enc {
	case encConst:
		if len(data) != 1 || data[0] > 1 {
			return fmt.Errorf("const bool column: bad payload")
		}
		fill(out, data[0] == 1)
		return nil
	case encBits:
		if len(data) != (len(out)+7)/8 {
			return fmt.Errorf("bit column: %d bytes for %d rows", len(data), len(out))
		}
		n := len(out)
		i := 0
		// Eight rows per byte, unrolled.
		for ; i+8 <= n; i += 8 {
			b := data[i>>3]
			out[i] = b&1 != 0
			out[i+1] = b&2 != 0
			out[i+2] = b&4 != 0
			out[i+3] = b&8 != 0
			out[i+4] = b&16 != 0
			out[i+5] = b&32 != 0
			out[i+6] = b&64 != 0
			out[i+7] = b&128 != 0
		}
		for ; i < n; i++ {
			out[i] = data[i>>3]>>(i&7)&1 == 1
		}
		return nil
	default:
		return fmt.Errorf("bool column: unknown encoding %d", enc)
	}
}

// encodeFloatCol appends a float32 column. Radio measurements hold
// steady for runs of slots, so runs of identical bit patterns are
// coded as (xor, run) pairs — decode is O(runs). High-entropy columns
// fall back to a raw copy; there is deliberately no varint-per-row
// float path.
func encodeFloatCol(dst []byte, xs []float32) (uint8, []byte) {
	n := len(xs)
	first := math.Float32bits(xs[0])
	allSame := true
	rleSize := uvarintLen(uint64(first))
	runs := 0
	prev := first
	var runXor uint32
	runLen := 0
	for i := 1; i < n; i++ {
		cur := math.Float32bits(xs[i])
		if cur != first {
			allSame = false
		}
		x := prev ^ cur
		prev = cur
		if runLen > 0 && x == runXor {
			runLen++
			continue
		}
		if runLen > 0 {
			rleSize += uvarintLen(uint64(runXor)) + uvarintLen(uint64(runLen))
			runs++
		}
		runXor, runLen = x, 1
	}
	if runLen > 0 {
		rleSize += uvarintLen(uint64(runXor)) + uvarintLen(uint64(runLen))
		runs++
	}
	if allSame {
		return encConst, binary.LittleEndian.AppendUint32(dst, first)
	}
	if runs*8 <= n && rleSize < 4*n {
		dst = binary.AppendUvarint(dst, uint64(first))
		prev = first
		runLen = 0
		for i := 1; i < n; i++ {
			cur := math.Float32bits(xs[i])
			x := prev ^ cur
			prev = cur
			if runLen > 0 && x == runXor {
				runLen++
				continue
			}
			if runLen > 0 {
				dst = binary.AppendUvarint(dst, uint64(runXor))
				dst = binary.AppendUvarint(dst, uint64(runLen))
			}
			runXor, runLen = x, 1
		}
		dst = binary.AppendUvarint(dst, uint64(runXor))
		dst = binary.AppendUvarint(dst, uint64(runLen))
		return encXorRLE, dst
	}
	for _, x := range xs {
		dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(x))
	}
	return encRaw, dst
}

func decodeFloatCol(data []byte, enc uint8, out []float32) error {
	switch enc {
	case encConst:
		if len(data) != 4 {
			return fmt.Errorf("const float column: bad payload")
		}
		fill(out, math.Float32frombits(binary.LittleEndian.Uint32(data)))
		return nil
	case encRaw:
		if len(data) != 4*len(out) {
			return fmt.Errorf("raw float column: %d bytes for %d rows", len(data), len(out))
		}
		i := 0
		for ; i+2 <= len(out); i += 2 {
			v := binary.LittleEndian.Uint64(data[4*i:])
			out[i] = math.Float32frombits(uint32(v))
			out[i+1] = math.Float32frombits(uint32(v >> 32))
		}
		if i < len(out) {
			out[i] = math.Float32frombits(binary.LittleEndian.Uint32(data[4*i:]))
		}
		return nil
	case encXorRLE:
		n := len(out)
		z, pos := uvarint(data, 0)
		if pos < 0 || z > math.MaxUint32 {
			return fmt.Errorf("xor-rle float column: bad first value")
		}
		cur := uint32(z)
		out[0] = math.Float32frombits(cur)
		i := 1
		for i < n {
			z, pos = uvarint(data, pos)
			if pos < 0 || z > math.MaxUint32 {
				return fmt.Errorf("xor-rle float column: bad xor at row %d", i)
			}
			x := uint32(z)
			run, p := uvarint(data, pos)
			pos = p
			if pos < 0 || run == 0 || run > uint64(n-i) {
				return fmt.Errorf("xor-rle float column: bad run at row %d", i)
			}
			if x == 0 {
				fill(out[i:i+int(run)], math.Float32frombits(cur))
				i += int(run)
				continue
			}
			for j := uint64(0); j < run; j++ {
				cur ^= x
				out[i] = math.Float32frombits(cur)
				i++
			}
		}
		if pos != len(data) {
			return fmt.Errorf("xor-rle float column: %d trailing bytes", len(data)-pos)
		}
		return nil
	default:
		return fmt.Errorf("float column: unknown encoding %d", enc)
	}
}
