// Package xcol implements the columnar block trace container the
// campaign pipeline streams through. Where package xcal stores one
// 64-byte frame per SlotKPI record, xcol transposes fixed-capacity
// batches of records into per-column encodings — delta/varint with
// zigzag for signed KPIs, run-length encoding for the slowly-moving
// scheduler fields, raw little-endian for high-entropy radio floats —
// so a scan touches only the bytes of the columns it projects.
//
// Container layout:
//
//	magic "XCOL5GMB" | version u16 | blocks... | index block | tail
//
// Every block is [kind u8][count u32][payloadLen u32][crc32c u32]
// followed by the payload. The first block is the verbatim JSON trace
// metadata (kind meta); KPI blocks hold up to BlockCap records in
// columnar form; aux blocks carry the row-format signaling frames
// (MIB/SIB1/DCI/Event) verbatim, each tagged with its position in the
// KPI stream so a row↔columnar conversion re-interleaves the frames
// byte-identically. The file ends with an index block (one fixed-size
// entry per preceding block) and a fixed 24-byte tail locating it, so
// readers seek straight to any block; when the tail or index is
// damaged the Scanner degrades to a sequential walk of the block
// headers.
//
// Integrity and recovery: every payload carries a CRC32-C. A block
// that fails its CRC, fails to decode, or is cut off by truncation is
// skipped and recorded as a BlockError — scans never panic on corrupt
// input and never silently drop data.
//
// Memory: the Writer buffers exactly one block of records plus one
// encode buffer (O(BlockCap), independent of trace length); the
// Scanner decodes into a Block it owns and reuses, following the
// preallocated-decode idiom of xcal.Reader — the returned Block is
// valid only until the next call.
package xcol

import (
	"fmt"
	"hash/crc32"
)

// Magic identifies a columnar trace file; the row container uses
// "XCAL5GMB".
var Magic = [8]byte{'X', 'C', 'O', 'L', '5', 'G', 'M', 'B'}

// tailMagic terminates a well-formed file, directly after the tail's
// index pointer.
var tailMagic = [8]byte{'X', 'C', 'O', 'L', 'I', 'D', 'X', '1'}

// Version is the current format version.
const Version uint16 = 1

const (
	// BlockCap is the number of KPI records per full block. One block
	// of 22 columns decodes into ~300 KB of column storage — small
	// enough that a bounded scan window stays cache-friendly, large
	// enough that per-block overhead (header, index entry, CRC) is
	// noise.
	BlockCap = 2048

	// headerSize is the fixed per-block header:
	// [kind u8][count u32][payloadLen u32][crc u32].
	headerSize = 13
	// fileHeaderSize is magic + version.
	fileHeaderSize = 10
	// tailSize is [indexOff u64][indexLen u32][indexCRC u32][tailMagic].
	tailSize = 24

	// Decode-side hard limits; anything larger is corruption.
	maxBlockRecords = 1 << 16
	maxBlockBytes   = 1 << 24

	// auxFlushBytes bounds the Writer's signaling-frame buffer.
	auxFlushBytes = 1 << 16
)

// Block kinds.
const (
	kindMeta  uint8 = 1
	kindKPI   uint8 = 2
	kindAux   uint8 = 3
	kindIndex uint8 = 4
)

// Column identifiers, in canonical (file) order. They mirror the
// fields of xcal.SlotKPI.
const (
	ColSlot = iota
	ColTime
	ColCarrier
	ColRAT
	ColDir
	ColCQI
	ColMCSTable
	ColMCS
	ColRank
	ColHARQRetx
	ColACK
	ColOutage
	ColRBs
	ColServingCell
	ColREs
	ColTBSBits
	ColDeliveredBits
	ColSINRdB
	ColRSRPdBm
	ColRSRQdB
	ColPosX
	ColPosY

	numColumns
)

// ColumnSet selects the columns a scan decodes; zero means all.
type ColumnSet uint32

// AllColumns selects every column.
const AllColumns ColumnSet = 1<<numColumns - 1

// GoodputColumns is the projection the throughput/figure path reads:
// enough to rebuild the per-slot goodput and PCell scheduling series.
// Slot (not Time) carries the time axis — it is the canonical slot
// index the series are keyed by and packs ~3x narrower.
const GoodputColumns ColumnSet = 1<<ColSlot | 1<<ColCarrier | 1<<ColRAT |
	1<<ColDir | 1<<ColMCS | 1<<ColRank | 1<<ColRBs | 1<<ColDeliveredBits

// Has reports whether column id is selected.
func (c ColumnSet) Has(id int) bool {
	if c == 0 {
		return true
	}
	return c&(1<<id) != 0
}

// Column encodings. Values are part of the on-disk format.
const (
	encConst    uint8 = 0 // one value, all rows equal
	encRaw      uint8 = 1 // fixed-width little-endian values
	encBits     uint8 = 2 // bools, LSB-first bit-packed
	encDelta    uint8 = 3 // zigzag-varint first value, then deltas
	encDeltaRLE uint8 = 4 // zigzag-varint first value, then (delta, run) pairs
	encXorRLE   uint8 = 5 // float32 bits: varint first, then (xor, run) pairs
	encPacked   uint8 = 6 // frame-of-reference: base + fixed-bit-width packed offsets
	// encPackedScale divides the offsets by their GCD before packing:
	// base + scale × packed. Physical KPIs are products of a counter and
	// a unit (bits = RBs × bits-per-RB, time = slot × slot duration), so
	// factoring the unit out collapses the bit width.
	encPackedScale uint8 = 7
)

// castagnoli is the CRC32-C table every payload checksum uses.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

func checksum(b []byte) uint32 { return crc32.Checksum(b, castagnoli) }

// IndexEntry describes one block in the footer index.
type IndexEntry struct {
	// Kind is the block kind (meta, KPI, aux).
	Kind uint8
	// Offset is the file offset of the block header.
	Offset uint64
	// Len is the payload length in bytes.
	Len uint32
	// Count is the number of KPI records (KPI blocks) or sub-frames
	// (aux blocks) in the payload.
	Count uint32
	// First is the absolute index of the block's first KPI record, or
	// for aux blocks the KPI position of the first sub-frame.
	First uint64
	// FirstSlot is the first record's Slot (KPI blocks only).
	FirstSlot int64
	// CRC is the payload CRC32-C, duplicated from the block header so
	// an indexed reader can detect rot without touching the block.
	CRC uint32
}

// indexEntrySize is the fixed encoded size of an IndexEntry.
const indexEntrySize = 1 + 8 + 4 + 4 + 8 + 8 + 4

// BlockError is the provenance of one skipped block: where it was,
// what it claimed to be, and why it was rejected.
type BlockError struct {
	// Offset is the file offset of the block header (or of the bytes
	// that failed to parse as one).
	Offset uint64
	// Kind is the block kind from the header, 0 when unknown.
	Kind uint8
	// Index is the block ordinal in file order, -1 when unknown.
	Index int
	// Err is the reason the block was skipped.
	Err error
}

func (e BlockError) Error() string {
	return fmt.Sprintf("xcol: block %d at offset %d (kind %d): %v", e.Index, e.Offset, e.Kind, e.Err)
}

// Unwrap exposes the underlying cause.
func (e BlockError) Unwrap() error { return e.Err }
