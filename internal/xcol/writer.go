package xcol

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"

	"github.com/midband5g/midband/internal/xcal"
)

// ErrClosed is returned by writes after Close.
var ErrClosed = errors.New("xcol: writer is closed")

// Writer streams KPI records and signaling frames into a columnar
// trace. Memory is bounded by one block of records plus one encode
// buffer and the (capped) signaling buffer — independent of how many
// records pass through, so campaigns of any length write in O(block).
//
// Writer implements xcal.TraceWriter. Flush pushes completed blocks to
// the underlying writer; Close encodes the final partial block, the
// buffered signaling, the index and the tail. A trace without a Close
// is still recoverable through the Scanner's sequential fallback.
type Writer struct {
	w      *bufio.Writer
	err    error
	closed bool
	off    uint64

	blk      Block
	blkFirst uint64 // absolute record index of blk's first record
	enc      blockEncoder
	buf      []byte // block payload staging
	auxBuf   []byte // per-frame encode scratch

	aux      []byte // pending aux sub-frames
	auxCount uint32
	auxFirst uint64 // KPI position of the first pending sub-frame

	nKPI  uint64
	index []IndexEntry
}

// NewWriter writes the file header and metadata block to w.
func NewWriter(w io.Writer, meta xcal.Meta) (*Writer, error) {
	mb, err := json.Marshal(meta)
	if err != nil {
		return nil, fmt.Errorf("xcol: encoding meta: %w", err)
	}
	return NewWriterMetaJSON(w, mb)
}

// NewWriterMetaJSON is NewWriter with the metadata JSON supplied
// verbatim — the conversion path uses it to preserve the source
// trace's meta bytes exactly.
func NewWriterMetaJSON(w io.Writer, metaJSON []byte) (*Writer, error) {
	tw := &Writer{w: bufio.NewWriterSize(w, 1<<16)}
	if _, err := tw.w.Write(Magic[:]); err != nil {
		return nil, err
	}
	var v [2]byte
	binary.LittleEndian.PutUint16(v[:], Version)
	if _, err := tw.w.Write(v[:]); err != nil {
		return nil, err
	}
	tw.off = fileHeaderSize
	tw.writeBlock(kindMeta, 1, 0, 0, metaJSON)
	return tw, tw.err
}

// writeBlock emits one block (header + payload) and records its index
// entry.
func (w *Writer) writeBlock(kind uint8, count uint32, first uint64, firstSlot int64, payload []byte) {
	if w.err != nil {
		return
	}
	crc := checksum(payload)
	var head [headerSize]byte
	head[0] = kind
	binary.LittleEndian.PutUint32(head[1:], count)
	binary.LittleEndian.PutUint32(head[5:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(head[9:], crc)
	if _, err := w.w.Write(head[:]); err != nil {
		w.err = err
		return
	}
	if _, err := w.w.Write(payload); err != nil {
		w.err = err
		return
	}
	w.index = append(w.index, IndexEntry{
		Kind:      kind,
		Offset:    w.off,
		Len:       uint32(len(payload)),
		Count:     count,
		First:     first,
		FirstSlot: firstSlot,
		CRC:       crc,
	})
	w.off += headerSize + uint64(len(payload))
}

func (w *Writer) flushKPI() {
	if w.blk.Count == 0 || w.err != nil {
		return
	}
	w.buf = w.enc.encodeKPIBlock(w.buf[:0], &w.blk)
	w.writeBlock(kindKPI, uint32(w.blk.Count), w.blkFirst, w.blk.Slot[0], w.buf)
	w.blk.reset()
	w.blkFirst = w.nKPI
}

func (w *Writer) flushAux() {
	if w.auxCount == 0 || w.err != nil {
		return
	}
	w.writeBlock(kindAux, w.auxCount, w.auxFirst, 0, w.aux)
	w.aux = w.aux[:0]
	w.auxCount = 0
}

// WriteKPI appends a slot KPI record, flushing a block when full.
func (w *Writer) WriteKPI(k *xcal.SlotKPI) error {
	if w.closed {
		return ErrClosed
	}
	if w.err != nil {
		return w.err
	}
	w.blk.appendKPI(k)
	w.nKPI++
	if w.blk.Count >= BlockCap {
		w.flushKPI()
	}
	return w.err
}

// appendAux buffers one signaling sub-frame:
// [type u8][pos uvarint][len uvarint][payload], where pos is the
// number of KPI records written before the frame — the interleaving
// key a row conversion replays.
func (w *Writer) appendAux(t xcal.FrameType, payload []byte) error {
	if w.closed {
		return ErrClosed
	}
	if w.err != nil {
		return w.err
	}
	if w.auxCount == 0 {
		w.auxFirst = w.nKPI
	}
	w.aux = append(w.aux, uint8(t))
	w.aux = binary.AppendUvarint(w.aux, w.nKPI)
	w.aux = appendUvarintBytes(w.aux, payload)
	w.auxCount++
	if len(w.aux) >= auxFlushBytes {
		w.flushAux()
	}
	return w.err
}

// WriteMIB appends a MIB capture.
func (w *Writer) WriteMIB(m *xcal.MIB) error {
	w.auxBuf = m.AppendTo(w.auxBuf[:0])
	return w.appendAux(xcal.FrameMIB, w.auxBuf)
}

// WriteSIB1 appends a SIB1 capture.
func (w *Writer) WriteSIB1(s *xcal.SIB1) error {
	w.auxBuf = s.AppendTo(w.auxBuf[:0])
	return w.appendAux(xcal.FrameSIB1, w.auxBuf)
}

// WriteDCI appends a DCI capture.
func (w *Writer) WriteDCI(d *xcal.DCI) error {
	w.auxBuf = d.AppendTo(w.auxBuf[:0])
	return w.appendAux(xcal.FrameDCI, w.auxBuf)
}

// WriteEvent appends an application event annotation.
func (w *Writer) WriteEvent(e xcal.Event) error {
	b, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("xcol: encoding event: %w", err)
	}
	return w.appendAux(xcal.FrameEvent, b)
}

// writeRawAux appends a signaling frame payload verbatim (conversion
// path).
func (w *Writer) writeRawAux(t xcal.FrameType, payload []byte) error {
	return w.appendAux(t, payload)
}

// Records returns how many KPI records have been written.
func (w *Writer) Records() uint64 { return w.nKPI }

// Flush pushes completed blocks to the underlying writer. The current
// partial block stays buffered — only Close finalizes the stream.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

// Close encodes the final partial block and buffered signaling, writes
// the index block and tail, and flushes. It does not close the
// underlying writer. Close is idempotent; writes after Close fail with
// ErrClosed.
func (w *Writer) Close() error {
	if w.closed {
		return w.err
	}
	w.closed = true
	w.flushKPI()
	w.flushAux()
	if w.err != nil {
		return w.err
	}
	idx := w.buf[:0]
	idx = binary.AppendUvarint(idx, uint64(len(w.index)))
	for _, e := range w.index {
		idx = append(idx, e.Kind)
		idx = binary.LittleEndian.AppendUint64(idx, e.Offset)
		idx = binary.LittleEndian.AppendUint32(idx, e.Len)
		idx = binary.LittleEndian.AppendUint32(idx, e.Count)
		idx = binary.LittleEndian.AppendUint64(idx, e.First)
		idx = binary.LittleEndian.AppendUint64(idx, uint64(e.FirstSlot))
		idx = binary.LittleEndian.AppendUint32(idx, e.CRC)
	}
	w.buf = idx
	indexOff := w.off + headerSize // tail points at the index payload
	crc := checksum(idx)
	var head [headerSize]byte
	head[0] = kindIndex
	binary.LittleEndian.PutUint32(head[1:], uint32(len(w.index)))
	binary.LittleEndian.PutUint32(head[5:], uint32(len(idx)))
	binary.LittleEndian.PutUint32(head[9:], crc)
	if _, err := w.w.Write(head[:]); err != nil {
		w.err = err
		return w.err
	}
	if _, err := w.w.Write(idx); err != nil {
		w.err = err
		return w.err
	}
	var tail [tailSize]byte
	binary.LittleEndian.PutUint64(tail[0:], indexOff)
	binary.LittleEndian.PutUint32(tail[8:], uint32(len(idx)))
	binary.LittleEndian.PutUint32(tail[12:], crc)
	copy(tail[16:], tailMagic[:])
	if _, err := w.w.Write(tail[:]); err != nil {
		w.err = err
		return w.err
	}
	w.err = w.w.Flush()
	return w.err
}

// CreateFile creates a columnar trace file on disk.
func CreateFile(path string, meta xcal.Meta) (*Writer, *os.File, error) {
	return CreateFileVia(path, meta, nil)
}

// CreateFileVia is CreateFile with the on-disk sink wrapped by wrap
// before the trace writer buffers on top of it — the same fault
// injection hook xcal.CreateFileVia exposes, so campaigns exercise
// trace I/O errors identically in either format.
func CreateFileVia(path string, meta xcal.Meta, wrap func(io.Writer) io.Writer) (*Writer, *os.File, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	var sink io.Writer = f
	if wrap != nil {
		sink = wrap(f)
	}
	w, err := NewWriter(sink, meta)
	if err != nil {
		f.Close()
		os.Remove(path)
		return nil, nil, err
	}
	return w, f, nil
}
