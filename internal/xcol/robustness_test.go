package xcol

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"strings"
	"testing"

	"github.com/midband5g/midband/internal/xcal"
)

// encodeTrace builds a columnar trace of n records (plus a couple of
// aux frames) for corruption tests.
func encodeTrace(t *testing.T, n int) ([]byte, []xcal.SlotKPI) {
	t.Helper()
	records := genKPIs(n, 7)
	var buf bytes.Buffer
	w, err := NewWriter(&buf, testMeta())
	if err != nil {
		t.Fatal(err)
	}
	mib := xcal.MIB{SFN: 1, SCSkHz: 30}
	if err := w.WriteMIB(&mib); err != nil {
		t.Fatal(err)
	}
	for i := range records {
		if err := w.WriteKPI(&records[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), records
}

// scanAll drains a scanner, returning the materialized rows.
func drainScanner(t *testing.T, s *Scanner) []xcal.SlotKPI {
	t.Helper()
	var rows []xcal.SlotKPI
	for {
		blk, err := s.Next()
		if err != nil {
			break
		}
		rows = blk.AppendRows(rows)
	}
	return rows
}

// TestCorruptBlockSkippedWithProvenance flips one payload byte in the
// middle KPI block: the scan must skip exactly that block, record its
// offset and kind, and decode every other block intact.
func TestCorruptBlockSkippedWithProvenance(t *testing.T) {
	trace, records := encodeTrace(t, 3*BlockCap)
	s, err := NewScanner(BytesReaderAt(trace), int64(len(trace)))
	if err != nil {
		t.Fatal(err)
	}
	var kpi []IndexEntry
	for _, e := range s.Index() {
		if e.Kind == kindKPI {
			kpi = append(kpi, e)
		}
	}
	if len(kpi) != 3 {
		t.Fatalf("got %d KPI blocks, want 3", len(kpi))
	}
	victim := kpi[1]
	mut := append([]byte(nil), trace...)
	mut[victim.Offset+headerSize+uint64(victim.Len)/2] ^= 0x40

	s2, err := NewScanner(BytesReaderAt(mut), int64(len(mut)))
	if err != nil {
		t.Fatal(err)
	}
	rows := drainScanner(t, s2)
	want := append(append([]xcal.SlotKPI(nil), records[:BlockCap]...), records[2*BlockCap:]...)
	if len(rows) != len(want) {
		t.Fatalf("scanned %d rows, want %d", len(rows), len(want))
	}
	for i := range rows {
		if rows[i] != want[i] {
			t.Fatalf("row %d diverged after skip: %+v vs %+v", i, rows[i], want[i])
		}
	}
	corrupt := s2.Corrupt()
	if len(corrupt) != 1 {
		t.Fatalf("got %d corrupt blocks, want 1: %v", len(corrupt), corrupt)
	}
	be := corrupt[0]
	if be.Offset != victim.Offset || be.Kind != kindKPI {
		t.Fatalf("provenance %+v does not point at the corrupted block (offset %d)", be, victim.Offset)
	}
	if !strings.Contains(be.Err.Error(), "CRC") {
		t.Fatalf("skip reason %q does not mention the CRC", be.Err)
	}
}

// TestTruncationSweep scans every prefix length of a small trace: a
// truncated file may fail to open or yield fewer records, but it must
// never panic and never fabricate rows.
func TestTruncationSweep(t *testing.T) {
	trace, records := encodeTrace(t, BlockCap+17)
	for cut := 0; cut <= len(trace); cut++ {
		prefix := trace[:cut]
		s, err := NewScanner(BytesReaderAt(prefix), int64(cut))
		if err != nil {
			continue // unopenable prefix is a valid outcome
		}
		rows := drainScanner(t, s)
		if len(rows) > len(records) {
			t.Fatalf("cut %d: scanned %d rows from a %d-record trace", cut, len(rows), len(records))
		}
		for i := range rows {
			if rows[i] != records[i] {
				t.Fatalf("cut %d: row %d fabricated: %+v vs %+v", cut, i, rows[i], records[i])
			}
		}
	}
}

// TestBadTailSequentialParity damages the tail magic: the scanner must
// fall back to the sequential walk and still produce every record.
func TestBadTailSequentialParity(t *testing.T) {
	trace, records := encodeTrace(t, 2*BlockCap+5)
	mut := append([]byte(nil), trace...)
	mut[len(mut)-1] ^= 0xff // last tailMagic byte

	s, err := NewScanner(BytesReaderAt(mut), int64(len(mut)))
	if err != nil {
		t.Fatal(err)
	}
	if !s.Sequential() {
		t.Fatal("scanner did not fall back to sequential mode")
	}
	if s.IndexErr() == nil {
		t.Fatal("sequential scanner reports no index error")
	}
	rows := drainScanner(t, s)
	if len(rows) != len(records) {
		t.Fatalf("sequential scan got %d rows, want %d", len(rows), len(records))
	}
	for i := range rows {
		if rows[i] != records[i] {
			t.Fatalf("row %d diverged in sequential mode", i)
		}
	}
	// Aux frames must replay in sequential mode too.
	aux := 0
	err = s.AuxFrames(func(ft xcal.FrameType, pos uint64, payload []byte) error {
		aux++
		return nil
	})
	if err != nil || aux != 1 {
		t.Fatalf("sequential aux replay: %d frames, err %v; want 1, nil", aux, err)
	}
}

// TestCorruptIndexFallsBack damages the index payload (tail intact):
// the CRC check must reject it and the sequential walk must match the
// indexed scan of the pristine trace.
func TestCorruptIndexFallsBack(t *testing.T) {
	trace, records := encodeTrace(t, BlockCap+100)
	s, err := NewScanner(BytesReaderAt(trace), int64(len(trace)))
	if err != nil {
		t.Fatal(err)
	}
	if s.Sequential() {
		t.Fatal("pristine trace opened in sequential mode")
	}
	// The index block is the last block before the tail; damage a byte
	// well inside its payload.
	mut := append([]byte(nil), trace...)
	mut[len(mut)-tailSize-8] ^= 0x01

	s2, err := NewScanner(BytesReaderAt(mut), int64(len(mut)))
	if err != nil {
		t.Fatal(err)
	}
	if !s2.Sequential() {
		t.Fatal("scanner accepted a corrupt index")
	}
	rows := drainScanner(t, s2)
	if len(rows) != len(records) {
		t.Fatalf("fallback scan got %d rows, want %d", len(rows), len(records))
	}
}

// overflowIndexFooter builds an index payload + tail whose varint entry
// count n is chosen so n*indexEntrySize wraps modulo 2^64 to exactly the
// remaining payload length: a size check that multiplies instead of
// dividing accepts it and then panics in make([]IndexEntry, 0, n). The
// tail points the index at file offset off with a valid CRC.
func overflowIndexFooter(off uint64) []byte {
	// indexEntrySize is odd, so it is invertible mod 2^64; Newton
	// iteration converges to the inverse in 6 steps.
	inv := uint64(indexEntrySize)
	for i := 0; i < 6; i++ {
		inv *= 2 - uint64(indexEntrySize)*inv
	}
	const rem = 10 // not a multiple of indexEntrySize
	payload := binary.AppendUvarint(nil, rem*inv)
	payload = append(payload, make([]byte, rem)...)
	var tail [tailSize]byte
	binary.LittleEndian.PutUint64(tail[0:], off)
	binary.LittleEndian.PutUint32(tail[8:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(tail[12:], checksum(payload))
	copy(tail[16:], tailMagic[:])
	return append(payload, tail[:]...)
}

// TestIndexCountOverflowRejected opens a file whose footer carries the
// overflowing entry count: loadIndex must reject it as malformed (no
// panic), leaving NewScanner to fail cleanly on the missing meta block.
func TestIndexCountOverflowRejected(t *testing.T) {
	file := append([]byte(nil), Magic[:]...)
	file = binary.LittleEndian.AppendUint16(file, Version)
	file = append(file, overflowIndexFooter(fileHeaderSize)...)

	if _, err := NewScanner(BytesReaderAt(file), int64(len(file))); err == nil {
		t.Fatal("scanner accepted a file with an overflowing index count")
	}
}

// TestSequentialFirstIndexParityAfterCRCSkip corrupts one KPI block's
// payload (CRC mismatch) and scans the trace both ways: the sequential
// walk must report the same FirstIndex for every surviving block as the
// indexed scan — a skipped block's records still advance the stream
// position.
func TestSequentialFirstIndexParityAfterCRCSkip(t *testing.T) {
	trace, _ := encodeTrace(t, 3*BlockCap)
	s, err := NewScanner(BytesReaderAt(trace), int64(len(trace)))
	if err != nil {
		t.Fatal(err)
	}
	var kpi []IndexEntry
	for _, e := range s.Index() {
		if e.Kind == kindKPI {
			kpi = append(kpi, e)
		}
	}
	mut := append([]byte(nil), trace...)
	mut[kpi[1].Offset+headerSize] ^= 0x10

	firsts := func(trace []byte) []uint64 {
		s, err := NewScanner(BytesReaderAt(trace), int64(len(trace)))
		if err != nil {
			t.Fatal(err)
		}
		var out []uint64
		for {
			blk, err := s.Next()
			if err != nil {
				break
			}
			out = append(out, blk.FirstIndex)
		}
		if len(s.Corrupt()) != 1 {
			t.Fatalf("got %d corrupt blocks, want 1", len(s.Corrupt()))
		}
		return out
	}

	indexed := firsts(mut)
	seq := append([]byte(nil), mut...)
	seq[len(seq)-1] ^= 0xff // break tailMagic → sequential walk
	sequential := firsts(seq)

	if len(indexed) != 2 || indexed[1] != 2*BlockCap {
		t.Fatalf("indexed FirstIndex = %v, want [0 %d]", indexed, 2*BlockCap)
	}
	if len(sequential) != len(indexed) {
		t.Fatalf("sequential scan returned %d blocks, indexed %d", len(sequential), len(indexed))
	}
	for i := range indexed {
		if sequential[i] != indexed[i] {
			t.Fatalf("sequential FirstIndex %v diverges from indexed %v", sequential, indexed)
		}
	}
}

// TestCorruptMetaRejected damages the metadata payload: open must fail
// with an error, not a panic and not a half-initialized scanner.
func TestCorruptMetaRejected(t *testing.T) {
	trace, _ := encodeTrace(t, 10)
	mut := append([]byte(nil), trace...)
	mut[fileHeaderSize+headerSize] ^= 0x80 // first byte of meta JSON

	if _, err := NewScanner(BytesReaderAt(mut), int64(len(mut))); err == nil {
		t.Fatal("scanner accepted a trace with corrupt metadata")
	}
}

// TestRandomCorruptionNeverPanics flips random bytes all over the file
// and checks the full read surface stays panic-free.
func TestRandomCorruptionNeverPanics(t *testing.T) {
	trace, _ := encodeTrace(t, BlockCap/2)
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 300; trial++ {
		mut := append([]byte(nil), trace...)
		for flips := 1 + rng.Intn(4); flips > 0; flips-- {
			mut[rng.Intn(len(mut))] ^= byte(1 + rng.Intn(255))
		}
		s, err := NewScanner(BytesReaderAt(mut), int64(len(mut)))
		if err != nil {
			continue
		}
		drainScanner(t, s)
		_ = s.AuxFrames(func(xcal.FrameType, uint64, []byte) error { return nil })
	}
}

// appendBits packs vals at an arbitrary bit width, LSB-first — the
// layout decodePacked expects — so tests can exercise widths the
// encoder itself no longer produces (it rounds up to byte-aligned
// lanes).
func appendBits(dst []byte, vals []uint64, width int) []byte {
	acc, nbits := uint64(0), 0
	for _, v := range vals {
		acc |= v << nbits
		nbits += width
		for nbits >= 8 {
			dst = append(dst, byte(acc))
			acc >>= 8
			nbits -= 8
		}
	}
	if nbits > 0 {
		dst = append(dst, byte(acc))
	}
	return dst
}

// TestDecodePackedOddWidths hand-builds packed columns at widths the
// encoder never emits (3, 5, 7, 11, 13, 27): foreign writers may, and
// the per-value fallback path must decode them exactly.
func TestDecodePackedOddWidths(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, width := range []int{3, 5, 7, 11, 13, 27} {
		n := 101
		base := uint64(rng.Intn(1000))
		vals := make([]uint64, n)
		want := make([]int64, n)
		for i := range vals {
			vals[i] = rng.Uint64() & (1<<width - 1)
			want[i] = int64(base + vals[i])
		}
		payload := binary.AppendUvarint(nil, base)
		payload = append(payload, byte(width))
		payload = appendBits(payload, vals, width)

		out := make([]int64, n)
		if err := decodePacked(payload, out); err != nil {
			t.Fatalf("width %d: %v", width, err)
		}
		for i := range out {
			if out[i] != want[i] {
				t.Fatalf("width %d: row %d = %d, want %d", width, i, out[i], want[i])
			}
		}
	}
}

// TestDecodePackedScaleOddWidths does the same for the scaled variant.
func TestDecodePackedScaleOddWidths(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, width := range []int{3, 9, 17, 21} {
		n := 67
		base, scale := uint64(rng.Intn(500)), uint64(2+rng.Intn(100))
		vals := make([]uint64, n)
		want := make([]uint32, n)
		for i := range vals {
			vals[i] = rng.Uint64() & (1<<width - 1)
			want[i] = uint32(base + scale*vals[i])
		}
		payload := binary.AppendUvarint(nil, base)
		payload = binary.AppendUvarint(payload, scale)
		payload = append(payload, byte(width))
		payload = appendBits(payload, vals, width)

		out := make([]uint32, n)
		if err := decodePackedMul(payload, out); err != nil {
			t.Fatalf("width %d: %v", width, err)
		}
		for i := range out {
			if out[i] != want[i] {
				t.Fatalf("width %d: row %d = %d, want %d", width, i, out[i], want[i])
			}
		}
	}
}
