package xcol

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"

	"github.com/midband5g/midband/internal/xcal"
)

// Scanner reads a columnar trace. With an intact footer it seeks
// straight to KPI blocks through the index; when the tail or index is
// damaged it falls back to a sequential walk of the block headers.
// Either way, a block that fails its CRC or decode is skipped and
// recorded — Corrupt() returns the provenance in file order — and
// malformed input produces errors, never panics.
//
// Next decodes into a Block owned by the Scanner (preallocated-decode
// idiom): the returned Block and its column slices are valid only
// until the next call.
// ByteRanger is an optional interface an io.ReaderAt may implement to
// hand out zero-copy views of its bytes. In-memory scans (BytesReaderAt)
// use it to skip the per-block payload copy entirely.
type ByteRanger interface {
	// ByteRange returns a read-only view of n bytes at off, valid for
	// the life of the ranger.
	ByteRange(off int64, n int) ([]byte, error)
}

// BytesReaderAt adapts an in-memory trace to the scanner interfaces
// with zero-copy reads.
type BytesReaderAt []byte

// ReadAt implements io.ReaderAt.
func (b BytesReaderAt) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 || off > int64(len(b)) {
		return 0, fmt.Errorf("xcol: read at %d out of range", off)
	}
	n := copy(p, b[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// ByteRange implements ByteRanger.
func (b BytesReaderAt) ByteRange(off int64, n int) ([]byte, error) {
	if off < 0 || n < 0 || off+int64(n) > int64(len(b)) {
		return nil, fmt.Errorf("xcol: range [%d,%d) out of range", off, off+int64(n))
	}
	return b[off : off+int64(n)], nil
}

type Scanner struct {
	r    io.ReaderAt
	br   ByteRanger // non-nil when r supports zero-copy views
	size int64

	meta    xcal.Meta
	metaRaw []byte

	index    []IndexEntry // nil in sequential mode
	kpi      []int        // index positions of KPI blocks
	pos      int          // next kpi entry (indexed) / block ordinal (sequential)
	seqOff   int64        // next block header offset (sequential)
	seqStart int64        // offset of the first post-meta block (sequential)
	seqRecs  uint64       // KPI records decoded so far (sequential)
	indexErr error        // why the footer was unusable (sequential mode)

	proj    ColumnSet
	blk     Block
	buf     []byte
	corrupt []BlockError
	done    bool
}

// NewScanner validates the header, loads the index (or arms the
// sequential fallback) and reads the metadata block.
func NewScanner(r io.ReaderAt, size int64) (*Scanner, error) {
	s := &Scanner{r: r, size: size}
	if br, ok := r.(ByteRanger); ok {
		s.br = br
	}
	var head [fileHeaderSize]byte
	if _, err := r.ReadAt(head[:], 0); err != nil {
		return nil, fmt.Errorf("xcol: reading file header: %w", err)
	}
	if [8]byte(head[:8]) != Magic {
		return nil, errors.New("xcol: bad magic: not a columnar trace")
	}
	if v := binary.LittleEndian.Uint16(head[8:]); v != Version {
		return nil, fmt.Errorf("xcol: unsupported version %d", v)
	}
	if err := s.loadIndex(); err != nil {
		s.indexErr = err
		s.index = nil
		s.kpi = nil
	}
	if err := s.loadMeta(); err != nil {
		return nil, err
	}
	return s, nil
}

// OpenFile opens a columnar trace file for scanning.
func OpenFile(path string) (*Scanner, *os.File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	s, err := NewScanner(f, fi.Size())
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	return s, f, nil
}

func (s *Scanner) loadIndex() error {
	if s.size < fileHeaderSize+tailSize {
		return errors.New("no footer: file too short")
	}
	var tail [tailSize]byte
	if _, err := s.r.ReadAt(tail[:], s.size-tailSize); err != nil {
		return fmt.Errorf("reading tail: %w", err)
	}
	if [8]byte(tail[16:]) != tailMagic {
		return errors.New("no tail magic")
	}
	off := binary.LittleEndian.Uint64(tail[0:])
	l := binary.LittleEndian.Uint32(tail[8:])
	crc := binary.LittleEndian.Uint32(tail[12:])
	if off < fileHeaderSize || uint64(l) > uint64(s.size-tailSize) ||
		off+uint64(l) > uint64(s.size-tailSize) {
		return errors.New("index out of bounds")
	}
	payload := make([]byte, l)
	if _, err := s.r.ReadAt(payload, int64(off)); err != nil {
		return fmt.Errorf("reading index: %w", err)
	}
	if checksum(payload) != crc {
		return errors.New("index CRC mismatch")
	}
	n, pos := uvarint(payload, 0)
	if pos < 0 {
		return errors.New("index size mismatch")
	}
	// Divide instead of multiplying n*indexEntrySize: a crafted varint n
	// could wrap the product in uint64 and push an absurd cap into make.
	rem := uint64(len(payload) - pos)
	if rem%indexEntrySize != 0 || n != rem/indexEntrySize {
		return errors.New("index size mismatch")
	}
	index := make([]IndexEntry, 0, n)
	var kpi []int
	for i := 0; i < int(n); i++ {
		e := IndexEntry{
			Kind:      payload[pos],
			Offset:    binary.LittleEndian.Uint64(payload[pos+1:]),
			Len:       binary.LittleEndian.Uint32(payload[pos+9:]),
			Count:     binary.LittleEndian.Uint32(payload[pos+13:]),
			First:     binary.LittleEndian.Uint64(payload[pos+17:]),
			FirstSlot: int64(binary.LittleEndian.Uint64(payload[pos+25:])),
			CRC:       binary.LittleEndian.Uint32(payload[pos+33:]),
		}
		pos += indexEntrySize
		if e.Kind < kindMeta || e.Kind > kindAux {
			return fmt.Errorf("index entry %d: bad kind %d", i, e.Kind)
		}
		if e.Offset < fileHeaderSize || e.Len > maxBlockBytes ||
			e.Offset+headerSize+uint64(e.Len) > uint64(s.size) ||
			e.Count > maxBlockRecords {
			return fmt.Errorf("index entry %d: out of bounds", i)
		}
		if e.Kind == kindKPI {
			kpi = append(kpi, i)
		}
		index = append(index, e)
	}
	if len(index) == 0 || index[0].Kind != kindMeta {
		return errors.New("index missing meta block")
	}
	s.index, s.kpi = index, kpi
	return nil
}

func (s *Scanner) loadMeta() error {
	var payload []byte
	if s.index != nil {
		e := s.index[0]
		payload = make([]byte, e.Len)
		if _, err := s.r.ReadAt(payload, int64(e.Offset+headerSize)); err != nil {
			return fmt.Errorf("xcol: reading meta: %w", err)
		}
		if checksum(payload) != e.CRC {
			return errors.New("xcol: meta CRC mismatch")
		}
	} else {
		// Sequential mode: read the first block and leave the cursor
		// positioned after it for Next.
		s.seqOff = fileHeaderSize
		kind, _, p, _, err := s.readSeqBlock()
		if err != nil {
			return fmt.Errorf("xcol: reading meta block: %w", err)
		}
		if kind != kindMeta {
			return fmt.Errorf("xcol: first block is kind %d, want meta", kind)
		}
		payload = append([]byte(nil), p...)
		s.pos = 1
		s.seqStart = s.seqOff
	}
	if err := json.Unmarshal(payload, &s.meta); err != nil {
		return fmt.Errorf("xcol: decoding meta: %w", err)
	}
	s.metaRaw = payload
	return nil
}

// Meta returns the trace metadata.
func (s *Scanner) Meta() xcal.Meta { return s.meta }

// MetaJSON returns the verbatim metadata payload.
func (s *Scanner) MetaJSON() []byte { return s.metaRaw }

// Index returns the block index, or nil when the scanner is running on
// the sequential fallback.
func (s *Scanner) Index() []IndexEntry { return s.index }

// Sequential reports whether the footer was unusable; Err then reports
// why.
func (s *Scanner) Sequential() bool { return s.index == nil }

// IndexErr returns the reason the footer was rejected, or nil.
func (s *Scanner) IndexErr() error { return s.indexErr }

// NumRecords returns the indexed KPI record count (0 in sequential
// mode — count by scanning).
func (s *Scanner) NumRecords() uint64 {
	var n uint64
	for _, i := range s.kpi {
		n += uint64(s.index[i].Count)
	}
	return n
}

// SetProjection restricts which columns Next materializes; zero means
// all columns.
func (s *Scanner) SetProjection(cols ColumnSet) { s.proj = cols }

// Corrupt returns the provenance of every block skipped so far, in
// file order.
func (s *Scanner) Corrupt() []BlockError { return s.corrupt }

// Reset rewinds the scanner to the first KPI block, reusing its decode
// buffers. Accumulated corruption provenance is cleared.
func (s *Scanner) Reset() {
	s.done = false
	s.corrupt = s.corrupt[:0]
	s.seqRecs = 0
	if s.index != nil {
		s.pos = 0
		return
	}
	s.pos = 1
	s.seqOff = s.seqStart
}

func (s *Scanner) skip(off uint64, kind uint8, idx int, err error) {
	s.corrupt = append(s.corrupt, BlockError{Offset: off, Kind: kind, Index: idx, Err: err})
}

// payload returns length bytes at off — a zero-copy view when the
// source supports it, the scanner's reused buffer otherwise.
func (s *Scanner) payload(off int64, length int) ([]byte, error) {
	if s.br != nil {
		return s.br.ByteRange(off, length)
	}
	if cap(s.buf) < length {
		s.buf = make([]byte, length)
	}
	s.buf = s.buf[:length]
	if _, err := s.r.ReadAt(s.buf, off); err != nil {
		return nil, err
	}
	return s.buf, nil
}

// readSeqBlock reads the block at seqOff, advancing past it. The
// returned payload aliases the scanner's buffer.
func (s *Scanner) readSeqBlock() (kind uint8, count uint32, payload []byte, off uint64, err error) {
	off = uint64(s.seqOff)
	if s.seqOff+headerSize > s.size {
		return 0, 0, nil, off, io.EOF
	}
	var head [headerSize]byte
	if _, err := s.r.ReadAt(head[:], s.seqOff); err != nil {
		return 0, 0, nil, off, fmt.Errorf("reading block header: %w", err)
	}
	kind = head[0]
	count = binary.LittleEndian.Uint32(head[1:])
	l := binary.LittleEndian.Uint32(head[5:])
	crc := binary.LittleEndian.Uint32(head[9:])
	if kind < kindMeta || kind > kindIndex || l > maxBlockBytes || count > maxBlockRecords {
		return kind, 0, nil, off, fmt.Errorf("implausible block header (kind %d, %d bytes)", kind, l)
	}
	if s.seqOff+headerSize+int64(l) > s.size {
		return kind, count, nil, off, fmt.Errorf("block truncated: %d payload bytes past end of file", l)
	}
	if cap(s.buf) < int(l) {
		s.buf = make([]byte, l)
	}
	s.buf = s.buf[:l]
	if _, err := s.r.ReadAt(s.buf, s.seqOff+headerSize); err != nil {
		return kind, count, nil, off, fmt.Errorf("reading block payload: %w", err)
	}
	s.seqOff += headerSize + int64(l)
	if checksum(s.buf) != crc {
		return kind, count, nil, off, errors.New("payload CRC mismatch")
	}
	return kind, count, s.buf, off, nil
}

// Next returns the next KPI block, skipping non-KPI blocks and
// recording corrupt ones. It returns io.EOF at end of trace.
//
//detlint:zeroalloc
func (s *Scanner) Next() (*Block, error) {
	if s.done {
		return nil, io.EOF
	}
	if s.index != nil {
		for s.pos < len(s.kpi) {
			e := s.index[s.kpi[s.pos]]
			ord := s.kpi[s.pos]
			s.pos++
			payload, err := s.payload(int64(e.Offset+headerSize), int(e.Len))
			if err != nil {
				s.skip(e.Offset, e.Kind, ord, fmt.Errorf("reading payload: %w", err)) //detlint:allow allocfree corrupt-block cold path; steady-state scans never reach it
				continue
			}
			if checksum(payload) != e.CRC {
				s.skip(e.Offset, e.Kind, ord, errors.New("payload CRC mismatch"))
				continue
			}
			if err := decodeKPIBlock(payload, int(e.Count), &s.blk, s.proj, e.First); err != nil {
				s.skip(e.Offset, e.Kind, ord, err)
				continue
			}
			return &s.blk, nil
		}
		s.done = true
		return nil, io.EOF
	}
	// Sequential fallback: walk headers. A header that fails its
	// plausibility checks ends the walk — without the index there is
	// no way to resynchronize past it.
	for {
		if s.seqOff == s.size-tailSize || s.seqOff == s.size {
			s.done = true
			return nil, io.EOF
		}
		kind, count, payload, off, err := s.readSeqBlock()
		ord := s.pos
		s.pos++
		if err == io.EOF {
			s.done = true
			return nil, io.EOF
		}
		if err != nil {
			s.skip(off, kind, ord, err)
			if payload == nil && s.seqOff == int64(off) {
				// Framing lost: the walk cannot continue.
				s.done = true
				return nil, io.EOF
			}
			// The header parsed (count is trustworthy), only the payload
			// was bad: account for the skipped records so later blocks'
			// FirstIndex matches indexed-mode semantics.
			if kind == kindKPI {
				s.seqRecs += uint64(count)
			}
			continue
		}
		switch kind {
		case kindKPI:
			if err := decodeKPIBlock(payload, int(count), &s.blk, s.proj, s.seqRecs); err != nil {
				s.skip(off, kind, ord, err)
				s.seqRecs += uint64(count)
				continue
			}
			s.seqRecs += uint64(count)
			return &s.blk, nil
		case kindIndex:
			// The index precedes the tail; nothing but the tail follows.
			s.done = true
			return nil, io.EOF
		default:
			continue
		}
	}
}

// AuxFrames replays every signaling sub-frame (MIB/SIB1/DCI/Event) in
// file order, calling fn with the frame type, its position in the KPI
// stream (the number of KPI records written before it) and its payload.
// The payload aliases an internal buffer — copy to retain. Corrupt aux
// blocks are skipped with provenance like KPI blocks.
func (s *Scanner) AuxFrames(fn func(t xcal.FrameType, pos uint64, payload []byte) error) error {
	emit := func(payload []byte, count uint32, off uint64, ord int) error {
		p := 0
		for i := uint32(0); i < count; i++ {
			if p >= len(payload) {
				s.skip(off, kindAux, ord, fmt.Errorf("aux block: truncated at frame %d", i))
				return nil
			}
			t := xcal.FrameType(payload[p])
			pos, pp := uvarint(payload, p+1)
			if pp < 0 {
				s.skip(off, kindAux, ord, fmt.Errorf("aux block: bad position at frame %d", i))
				return nil
			}
			l, pp2 := uvarint(payload, pp)
			if pp2 < 0 || l > uint64(len(payload)-pp2) {
				s.skip(off, kindAux, ord, fmt.Errorf("aux block: bad length at frame %d", i))
				return nil
			}
			if err := fn(t, pos, payload[pp2:pp2+int(l)]); err != nil {
				return err
			}
			p = pp2 + int(l)
		}
		if p != len(payload) {
			s.skip(off, kindAux, ord, fmt.Errorf("aux block: %d trailing bytes", len(payload)-p))
		}
		return nil
	}
	if s.index != nil {
		for ord, e := range s.index {
			if e.Kind != kindAux {
				continue
			}
			buf := make([]byte, e.Len)
			if _, err := s.r.ReadAt(buf, int64(e.Offset+headerSize)); err != nil {
				s.skip(e.Offset, e.Kind, ord, fmt.Errorf("reading payload: %w", err))
				continue
			}
			if checksum(buf) != e.CRC {
				s.skip(e.Offset, e.Kind, ord, errors.New("payload CRC mismatch"))
				continue
			}
			if err := emit(buf, e.Count, e.Offset, ord); err != nil {
				return err
			}
		}
		return nil
	}
	// Sequential: independent walk from the first block.
	off := int64(fileHeaderSize)
	ord := 0
	for off+headerSize <= s.size && off != s.size-tailSize {
		var head [headerSize]byte
		if _, err := s.r.ReadAt(head[:], off); err != nil {
			return nil
		}
		kind := head[0]
		count := binary.LittleEndian.Uint32(head[1:])
		l := binary.LittleEndian.Uint32(head[5:])
		crc := binary.LittleEndian.Uint32(head[9:])
		if kind < kindMeta || kind > kindIndex || l > maxBlockBytes || count > maxBlockRecords ||
			off+headerSize+int64(l) > s.size {
			return nil
		}
		if kind == kindAux {
			buf := make([]byte, l)
			if _, err := s.r.ReadAt(buf, off+headerSize); err != nil {
				return nil
			}
			if checksum(buf) == crc {
				if err := emit(buf, count, uint64(off), ord); err != nil {
					return err
				}
			} else {
				s.skip(uint64(off), kind, ord, errors.New("payload CRC mismatch"))
			}
		}
		off += headerSize + int64(l)
		ord++
	}
	return nil
}
