package xcol

import (
	"bytes"
	"io"
	"testing"

	"github.com/midband5g/midband/internal/xcal"
)

// Native fuzz targets for the columnar decoders, mirroring the xcal
// set. `go test` exercises the seed corpus; the CI fuzz-smoke job runs
// each target for a short wall-clock budget.

// kpiPayload encodes n records into one raw KPI block payload.
func kpiPayload(f *testing.F, n int) []byte {
	f.Helper()
	var blk Block
	records := genKPIs(n, 3)
	for i := range records {
		blk.appendKPI(&records[i])
	}
	var e blockEncoder
	return e.encodeKPIBlock(nil, &blk)
}

// FuzzDecodeBlock feeds arbitrary bytes to the KPI block decoder. A
// payload it accepts must re-encode and re-decode to identical rows —
// the decode is the format's source of truth, so any divergence means
// either the decoder fabricated data or the encoder cannot represent a
// decodable state.
func FuzzDecodeBlock(f *testing.F) {
	f.Add(kpiPayload(f, 1), 1)
	f.Add(kpiPayload(f, 57), 57)
	f.Add(kpiPayload(f, BlockCap), BlockCap)
	f.Add([]byte{}, 1)
	f.Add([]byte{22}, 3)
	f.Fuzz(func(t *testing.T, data []byte, count int) {
		var blk Block
		if err := decodeKPIBlock(data, count, &blk, 0, 0); err != nil {
			return
		}
		rows := blk.AppendRows(nil)
		var re Block
		for i := range rows {
			re.appendKPI(&rows[i])
		}
		var e blockEncoder
		enc := e.encodeKPIBlock(nil, &re)
		var back Block
		if err := decodeKPIBlock(enc, count, &back, 0, 0); err != nil {
			t.Fatalf("re-encode of accepted block does not decode: %v", err)
		}
		rows2 := back.AppendRows(nil)
		for i := range rows {
			if rows[i] != rows2[i] {
				t.Fatalf("row %d diverged across re-encode: %+v vs %+v", i, rows[i], rows2[i])
			}
		}
	})
}

// FuzzDecodeFooter splices arbitrary bytes over a valid trace's index
// block and tail: the scanner must either parse a usable index or fall
// back to the sequential walk — never panic, never fabricate records.
func FuzzDecodeFooter(f *testing.F) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, testMeta())
	if err != nil {
		f.Fatal(err)
	}
	records := genKPIs(300, 9)
	for i := range records {
		if err := w.WriteKPI(&records[i]); err != nil {
			f.Fatal(err)
		}
	}
	bodyLen := buf.Len() // blocks only: index + tail not yet written
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	trace := buf.Bytes()
	body := trace[:bodyLen]
	footer := trace[bodyLen:]

	f.Add(footer)
	f.Add([]byte{})
	f.Add(footer[:len(footer)/2])
	f.Add(overflowIndexFooter(uint64(bodyLen)))
	f.Fuzz(func(t *testing.T, tail []byte) {
		file := append(append([]byte(nil), body...), tail...)
		s, err := NewScanner(BytesReaderAt(file), int64(len(file)))
		if err != nil {
			return
		}
		n := 0
		for {
			blk, err := s.Next()
			if err != nil {
				break
			}
			rows := blk.AppendRows(nil)
			for _, r := range rows {
				if n < len(records) && r != records[n] {
					t.Fatalf("record %d fabricated under fuzzed footer", n)
				}
				n++
			}
		}
		if n > len(records) {
			t.Fatalf("scanned %d records from a %d-record body", n, len(records))
		}
	})
}

// FuzzColScanner feeds arbitrary bytes to the whole read surface:
// open, scan, aux replay.
func FuzzColScanner(f *testing.F) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, testMeta())
	if err != nil {
		f.Fatal(err)
	}
	k := xcal.SlotKPI{Slot: 1, RBs: 245, TBSBits: 392000, DeliveredBits: 392000, ACK: true}
	_ = w.WriteKPI(&k)
	d := xcal.DCI{Slot: 1, Format: xcal.DCI11, MCS: 22, RBs: 245}
	_ = w.WriteDCI(&d)
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("XCOL5GMB"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := NewScanner(BytesReaderAt(data), int64(len(data)))
		if err != nil {
			return
		}
		for i := 0; i < 1000; i++ {
			if _, err := s.Next(); err == io.EOF {
				break
			} else if err != nil {
				return
			}
		}
		_ = s.AuxFrames(func(xcal.FrameType, uint64, []byte) error { return nil })
	})
}
