package xcol

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"github.com/midband5g/midband/internal/xcal"
)

// TestConvertFileRoundTrip drives the file-level conversion entry point
// (what `xcaldump -convert` calls) both ways: row → columnar → row must
// reproduce the original file byte for byte, including the interleaved
// signaling frames.
func TestConvertFileRoundTrip(t *testing.T) {
	var row bytes.Buffer
	w, err := xcal.NewWriter(&row, testMeta())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteMIB(&xcal.MIB{SFN: 3, SCSkHz: 30}); err != nil {
		t.Fatal(err)
	}
	records := genKPIs(BlockCap+321, 13)
	for i := range records {
		if err := w.WriteKPI(&records[i]); err != nil {
			t.Fatal(err)
		}
		if i == 100 {
			d := xcal.DCI{Slot: records[i].Slot, Format: xcal.DCI11, MCS: 20, RBs: 200}
			if err := w.WriteDCI(&d); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	src := filepath.Join(dir, "trace.xcal")
	mid := filepath.Join(dir, "trace.xcol")
	back := filepath.Join(dir, "back.xcal")
	if err := os.WriteFile(src, row.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	dirn, n, err := ConvertFile(src, mid)
	if err != nil {
		t.Fatal(err)
	}
	if dirn != "xcal→xcol" || n != uint64(len(records)) {
		t.Fatalf("forward conversion: %s, %d records", dirn, n)
	}
	if format, err := DetectFormat(mid); err != nil || format != "xcol" {
		t.Fatalf("converted file detects as %q, %v", format, err)
	}

	dirn, n, err = ConvertFile(mid, back)
	if err != nil {
		t.Fatal(err)
	}
	if dirn != "xcol→xcal" || n != uint64(len(records)) {
		t.Fatalf("backward conversion: %s, %d records", dirn, n)
	}
	got, err := os.ReadFile(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, row.Bytes()) {
		t.Fatalf("row → col → row not byte-identical: %d vs %d bytes", len(got), row.Len())
	}
}
