package xcol

import (
	"bytes"
	"fmt"
	"time"

	"github.com/midband5g/midband/internal/xcal"
)

// Block is one decoded batch of KPI records in column (structure-of-
// arrays) form. Scanners decode into a reusable Block: the slices are
// owned by the producer and valid only until its next Next/emit call —
// the same ownership contract as xcal.Reader's frame storage. Columns
// excluded by a projection have length zero.
type Block struct {
	// Count is the number of records in the block.
	Count int
	// FirstIndex is the absolute index of the block's first record in
	// the trace's KPI stream.
	FirstIndex uint64

	Slot []int64
	Time []time.Duration
	// Carrier..HARQRetx mirror the uint8 fields of xcal.SlotKPI; RAT
	// and Dir hold the numeric xcal.RAT / xcal.Direction codes.
	Carrier, RAT, Dir, CQI, MCSTable, MCS, Rank, HARQRetx []uint8
	ACK, Outage                                           []bool
	RBs, ServingCell                                      []uint16
	REs, TBSBits, DeliveredBits                           []uint32
	SINRdB, RSRPdBm, RSRQdB, PosX, PosY                   []float32

	// Const-fill memo: constN[id] > 0 means the column's backing array
	// holds constN[id] leading copies of the const value whose encoded
	// payload is constP[id][:constL[id]] — the decode of an identical
	// const column is then a no-op. Invalidated whenever the array is
	// reallocated or the column decodes non-const. Well-behaved traces
	// keep fields like RAT, Dir or MCSTable constant for the whole run,
	// so this turns their per-block fills into cache hits.
	constN [numColumns]int32
	constL [numColumns]int8
	constP [numColumns][10]byte
}

func grow[T any](s []T, n int, inval *int32) []T {
	if cap(s) < n {
		*inval = 0
		return make([]T, n)
	}
	return s[:n]
}

// resize sets every selected column to length n (reusing capacity) and
// truncates the rest.
func (b *Block) resize(n int, cols ColumnSet) {
	b.Count = n
	size := func(id int) int {
		if cols.Has(id) {
			return n
		}
		return 0
	}
	b.Slot = grow(b.Slot, size(ColSlot), &b.constN[ColSlot])
	b.Time = grow(b.Time, size(ColTime), &b.constN[ColTime])
	b.Carrier = grow(b.Carrier, size(ColCarrier), &b.constN[ColCarrier])
	b.RAT = grow(b.RAT, size(ColRAT), &b.constN[ColRAT])
	b.Dir = grow(b.Dir, size(ColDir), &b.constN[ColDir])
	b.CQI = grow(b.CQI, size(ColCQI), &b.constN[ColCQI])
	b.MCSTable = grow(b.MCSTable, size(ColMCSTable), &b.constN[ColMCSTable])
	b.MCS = grow(b.MCS, size(ColMCS), &b.constN[ColMCS])
	b.Rank = grow(b.Rank, size(ColRank), &b.constN[ColRank])
	b.HARQRetx = grow(b.HARQRetx, size(ColHARQRetx), &b.constN[ColHARQRetx])
	b.ACK = grow(b.ACK, size(ColACK), &b.constN[ColACK])
	b.Outage = grow(b.Outage, size(ColOutage), &b.constN[ColOutage])
	b.RBs = grow(b.RBs, size(ColRBs), &b.constN[ColRBs])
	b.ServingCell = grow(b.ServingCell, size(ColServingCell), &b.constN[ColServingCell])
	b.REs = grow(b.REs, size(ColREs), &b.constN[ColREs])
	b.TBSBits = grow(b.TBSBits, size(ColTBSBits), &b.constN[ColTBSBits])
	b.DeliveredBits = grow(b.DeliveredBits, size(ColDeliveredBits), &b.constN[ColDeliveredBits])
	b.SINRdB = grow(b.SINRdB, size(ColSINRdB), &b.constN[ColSINRdB])
	b.RSRPdBm = grow(b.RSRPdBm, size(ColRSRPdBm), &b.constN[ColRSRPdBm])
	b.RSRQdB = grow(b.RSRQdB, size(ColRSRQdB), &b.constN[ColRSRQdB])
	b.PosX = grow(b.PosX, size(ColPosX), &b.constN[ColPosX])
	b.PosY = grow(b.PosY, size(ColPosY), &b.constN[ColPosY])
}

// constSkip reports whether decoding column id from payload col can be
// skipped because the backing array already holds its const fill. A
// non-const encoding invalidates the memo — the decode about to run
// will overwrite the array.
func (b *Block) constSkip(id int, enc uint8, col []byte, n int) bool {
	if enc != encConst {
		b.constN[id] = 0
		return false
	}
	return int(b.constN[id]) >= n && int(b.constL[id]) == len(col) &&
		bytes.Equal(col, b.constP[id][:b.constL[id]])
}

// noteConst records a successful const decode for constSkip.
func (b *Block) noteConst(id int, enc uint8, col []byte, n int) {
	if enc != encConst || len(col) > len(b.constP[id]) {
		return
	}
	b.constN[id] = int32(n)
	b.constL[id] = int8(len(col))
	copy(b.constP[id][:], col)
}

// reset empties the block, keeping capacity.
func (b *Block) reset() { b.resize(0, AllColumns) }

// appendKPI appends one record to every column (the Writer's builder
// path).
func (b *Block) appendKPI(k *xcal.SlotKPI) {
	b.Count++
	b.Slot = append(b.Slot, k.Slot)
	b.Time = append(b.Time, k.Time)
	b.Carrier = append(b.Carrier, k.Carrier)
	b.RAT = append(b.RAT, uint8(k.RAT))
	b.Dir = append(b.Dir, uint8(k.Dir))
	b.CQI = append(b.CQI, k.CQI)
	b.MCSTable = append(b.MCSTable, k.MCSTable)
	b.MCS = append(b.MCS, k.MCS)
	b.Rank = append(b.Rank, k.Rank)
	b.HARQRetx = append(b.HARQRetx, k.HARQRetx)
	b.ACK = append(b.ACK, k.ACK)
	b.Outage = append(b.Outage, k.Outage)
	b.RBs = append(b.RBs, k.RBs)
	b.ServingCell = append(b.ServingCell, k.ServingCell)
	b.REs = append(b.REs, k.REs)
	b.TBSBits = append(b.TBSBits, k.TBSBits)
	b.DeliveredBits = append(b.DeliveredBits, k.DeliveredBits)
	b.SINRdB = append(b.SINRdB, k.SINRdB)
	b.RSRPdBm = append(b.RSRPdBm, k.RSRPdBm)
	b.RSRQdB = append(b.RSRQdB, k.RSRQdB)
	b.PosX = append(b.PosX, k.PosX)
	b.PosY = append(b.PosY, k.PosY)
}

// Row materializes record i into k. It requires a full (unprojected)
// decode.
func (b *Block) Row(i int, k *xcal.SlotKPI) {
	k.Slot = b.Slot[i]
	k.Time = b.Time[i]
	k.Carrier = b.Carrier[i]
	k.RAT = xcal.RAT(b.RAT[i])
	k.Dir = xcal.Direction(b.Dir[i])
	k.CQI = b.CQI[i]
	k.MCSTable = b.MCSTable[i]
	k.MCS = b.MCS[i]
	k.Rank = b.Rank[i]
	k.HARQRetx = b.HARQRetx[i]
	k.ACK = b.ACK[i]
	k.Outage = b.Outage[i]
	k.RBs = b.RBs[i]
	k.ServingCell = b.ServingCell[i]
	k.REs = b.REs[i]
	k.TBSBits = b.TBSBits[i]
	k.DeliveredBits = b.DeliveredBits[i]
	k.SINRdB = b.SINRdB[i]
	k.RSRPdBm = b.RSRPdBm[i]
	k.RSRQdB = b.RSRQdB[i]
	k.PosX = b.PosX[i]
	k.PosY = b.PosY[i]
}

// AppendRows materializes every record onto dst and returns it.
func (b *Block) AppendRows(dst []xcal.SlotKPI) []xcal.SlotKPI {
	var k xcal.SlotKPI
	for i := 0; i < b.Count; i++ {
		b.Row(i, &k)
		dst = append(dst, k)
	}
	return dst
}

// blockEncoder holds the scratch buffer column encoding stages through.
type blockEncoder struct {
	scratch []byte
}

func (e *blockEncoder) col(dst []byte, id int, enc uint8, data []byte) []byte {
	dst = append(dst, uint8(id), enc)
	dst = appendUvarintBytes(dst, data)
	return dst
}

func appendUvarintBytes(dst, data []byte) []byte {
	var lenBuf [10]byte
	n := 0
	v := uint64(len(data))
	for v >= 0x80 {
		lenBuf[n] = byte(v) | 0x80
		v >>= 7
		n++
	}
	lenBuf[n] = byte(v)
	dst = append(dst, lenBuf[:n+1]...)
	return append(dst, data...)
}

// encodeKPIBlock appends the canonical columnar payload of b: the
// column count, then every column in ID order as
// [id u8][enc u8][len uvarint][data]. The encoding is deterministic —
// identical records always produce identical bytes.
func (e *blockEncoder) encodeKPIBlock(dst []byte, b *Block) []byte {
	dst = append(dst, uint8(numColumns))
	var enc uint8
	emit := func(dst []byte, id int) []byte { return e.col(dst, id, enc, e.scratch) }

	enc, e.scratch = encodeIntCol(e.scratch[:0], b.Slot, 8)
	dst = emit(dst, ColSlot)
	enc, e.scratch = encodeIntCol(e.scratch[:0], b.Time, 8)
	dst = emit(dst, ColTime)
	enc, e.scratch = encodeIntCol(e.scratch[:0], b.Carrier, 1)
	dst = emit(dst, ColCarrier)
	enc, e.scratch = encodeIntCol(e.scratch[:0], b.RAT, 1)
	dst = emit(dst, ColRAT)
	enc, e.scratch = encodeIntCol(e.scratch[:0], b.Dir, 1)
	dst = emit(dst, ColDir)
	enc, e.scratch = encodeIntCol(e.scratch[:0], b.CQI, 1)
	dst = emit(dst, ColCQI)
	enc, e.scratch = encodeIntCol(e.scratch[:0], b.MCSTable, 1)
	dst = emit(dst, ColMCSTable)
	enc, e.scratch = encodeIntCol(e.scratch[:0], b.MCS, 1)
	dst = emit(dst, ColMCS)
	enc, e.scratch = encodeIntCol(e.scratch[:0], b.Rank, 1)
	dst = emit(dst, ColRank)
	enc, e.scratch = encodeIntCol(e.scratch[:0], b.HARQRetx, 1)
	dst = emit(dst, ColHARQRetx)
	enc, e.scratch = encodeBoolCol(e.scratch[:0], b.ACK)
	dst = emit(dst, ColACK)
	enc, e.scratch = encodeBoolCol(e.scratch[:0], b.Outage)
	dst = emit(dst, ColOutage)
	enc, e.scratch = encodeIntCol(e.scratch[:0], b.RBs, 2)
	dst = emit(dst, ColRBs)
	enc, e.scratch = encodeIntCol(e.scratch[:0], b.ServingCell, 2)
	dst = emit(dst, ColServingCell)
	enc, e.scratch = encodeIntCol(e.scratch[:0], b.REs, 4)
	dst = emit(dst, ColREs)
	enc, e.scratch = encodeIntCol(e.scratch[:0], b.TBSBits, 4)
	dst = emit(dst, ColTBSBits)
	enc, e.scratch = encodeIntCol(e.scratch[:0], b.DeliveredBits, 4)
	dst = emit(dst, ColDeliveredBits)
	enc, e.scratch = encodeFloatCol(e.scratch[:0], b.SINRdB)
	dst = emit(dst, ColSINRdB)
	enc, e.scratch = encodeFloatCol(e.scratch[:0], b.RSRPdBm)
	dst = emit(dst, ColRSRPdBm)
	enc, e.scratch = encodeFloatCol(e.scratch[:0], b.RSRQdB)
	dst = emit(dst, ColRSRQdB)
	enc, e.scratch = encodeFloatCol(e.scratch[:0], b.PosX)
	dst = emit(dst, ColPosX)
	enc, e.scratch = encodeFloatCol(e.scratch[:0], b.PosY)
	dst = emit(dst, ColPosY)
	return dst
}

// decodeKPIBlock decodes a KPI block payload of count records into b,
// materializing only the selected columns. The input is untrusted:
// every structural claim is validated and an error is returned instead
// of panicking or reading out of bounds.
//
//detlint:zeroalloc
func decodeKPIBlock(data []byte, count int, b *Block, cols ColumnSet, firstIndex uint64) error {
	if count < 1 || count > maxBlockRecords {
		return fmt.Errorf("block count %d out of range", count)
	}
	if len(data) < 1 {
		return fmt.Errorf("empty block payload")
	}
	ncols := int(data[0])
	if ncols != numColumns {
		return fmt.Errorf("block has %d columns, want %d", ncols, numColumns)
	}
	b.resize(count, cols)
	b.FirstIndex = firstIndex
	pos := 1
	prevID := -1
	for c := 0; c < ncols; c++ {
		if pos+2 > len(data) {
			return fmt.Errorf("truncated column header")
		}
		id, enc := int(data[pos]), data[pos+1]
		if id <= prevID || id >= numColumns {
			return fmt.Errorf("column id %d out of order", id)
		}
		prevID = id
		l, p := uvarint(data, pos+2)
		if p < 0 || l > uint64(len(data)-p) {
			return fmt.Errorf("column %d: bad length", id)
		}
		col := data[p : p+int(l)]
		pos = p + int(l)
		if !cols.Has(id) {
			continue
		}
		if b.constSkip(id, enc, col, count) {
			continue
		}
		var err error
		switch id {
		case ColSlot:
			err = decodeIntCol(col, enc, b.Slot, 8)
		case ColTime:
			err = decodeIntCol(col, enc, b.Time, 8)
		case ColCarrier:
			err = decodeU8Col(col, enc, b.Carrier)
		case ColRAT:
			err = decodeU8Col(col, enc, b.RAT)
		case ColDir:
			err = decodeU8Col(col, enc, b.Dir)
		case ColCQI:
			err = decodeU8Col(col, enc, b.CQI)
		case ColMCSTable:
			err = decodeU8Col(col, enc, b.MCSTable)
		case ColMCS:
			err = decodeU8Col(col, enc, b.MCS)
		case ColRank:
			err = decodeU8Col(col, enc, b.Rank)
		case ColHARQRetx:
			err = decodeU8Col(col, enc, b.HARQRetx)
		case ColACK:
			err = decodeBoolCol(col, enc, b.ACK)
		case ColOutage:
			err = decodeBoolCol(col, enc, b.Outage)
		case ColRBs:
			err = decodeIntCol(col, enc, b.RBs, 2)
		case ColServingCell:
			err = decodeIntCol(col, enc, b.ServingCell, 2)
		case ColREs:
			err = decodeIntCol(col, enc, b.REs, 4)
		case ColTBSBits:
			err = decodeIntCol(col, enc, b.TBSBits, 4)
		case ColDeliveredBits:
			err = decodeIntCol(col, enc, b.DeliveredBits, 4)
		case ColSINRdB:
			err = decodeFloatCol(col, enc, b.SINRdB)
		case ColRSRPdBm:
			err = decodeFloatCol(col, enc, b.RSRPdBm)
		case ColRSRQdB:
			err = decodeFloatCol(col, enc, b.RSRQdB)
		case ColPosX:
			err = decodeFloatCol(col, enc, b.PosX)
		case ColPosY:
			err = decodeFloatCol(col, enc, b.PosY)
		}
		if err != nil {
			return fmt.Errorf("column %d: %w", id, err)
		}
		b.noteConst(id, enc, col, count)
	}
	if pos != len(data) {
		return fmt.Errorf("%d trailing bytes after columns", len(data)-pos)
	}
	return nil
}
