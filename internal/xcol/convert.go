package xcol

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"

	"github.com/midband5g/midband/internal/xcal"
)

// Format conversion between the row (.xcal) and columnar (.xcol)
// containers. Both directions preserve the metadata JSON and every
// signaling frame payload verbatim, and re-encode KPI records through
// the strict canonical codec — so converting a well-formed trace there
// and back reproduces it byte for byte (enforced by TestConvertRoundTrip
// and the xcaldump convert tests).

const rowMaxFrame = 1 << 20 // mirrors xcal's frame size limit

// ConvertRowToCol reads a row trace from r and writes it as a columnar
// trace to w, returning the number of KPI records converted.
func ConvertRowToCol(r io.Reader, w io.Writer) (uint64, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var head [10]byte
	if _, err := io.ReadFull(br, head[:]); err != nil {
		return 0, fmt.Errorf("xcol: reading row trace header: %w", err)
	}
	if [8]byte(head[:8]) != xcal.TraceMagic {
		return 0, errors.New("xcol: source is not a row trace")
	}
	if v := binary.LittleEndian.Uint16(head[8:]); v != xcal.TraceVersion {
		return 0, fmt.Errorf("xcol: unsupported row trace version %d", v)
	}
	var (
		cw  *Writer
		buf []byte
		kpi xcal.SlotKPI
	)
	for {
		var fh [5]byte
		if _, err := io.ReadFull(br, fh[:]); err != nil {
			if err == io.EOF {
				break
			}
			return 0, fmt.Errorf("xcol: reading row frame header: %w", err)
		}
		t := xcal.FrameType(fh[0])
		n := binary.LittleEndian.Uint32(fh[1:])
		if n > rowMaxFrame {
			return 0, fmt.Errorf("xcol: row frame of %d bytes exceeds limit", n)
		}
		if cap(buf) < int(n) {
			buf = make([]byte, n)
		}
		buf = buf[:n]
		if _, err := io.ReadFull(br, buf); err != nil {
			return 0, fmt.Errorf("xcol: reading row frame payload: %w", err)
		}
		if cw == nil {
			if t != xcal.FrameMeta {
				return 0, fmt.Errorf("xcol: first row frame is %d, want meta", t)
			}
			if !json.Valid(buf) {
				return 0, errors.New("xcol: row meta frame is not valid JSON")
			}
			var err error
			cw, err = NewWriterMetaJSON(w, buf)
			if err != nil {
				return 0, err
			}
			continue
		}
		switch t {
		case xcal.FrameKPI:
			if err := xcal.DecodeSlotKPI(buf, &kpi); err != nil {
				return 0, err
			}
			if err := cw.WriteKPI(&kpi); err != nil {
				return 0, err
			}
		case xcal.FrameMIB, xcal.FrameSIB1, xcal.FrameDCI, xcal.FrameEvent:
			if err := cw.writeRawAux(t, buf); err != nil {
				return 0, err
			}
		case xcal.FrameMeta:
			return 0, errors.New("xcol: duplicate meta frame in row trace")
		default:
			return 0, fmt.Errorf("xcol: unknown row frame type %d", t)
		}
	}
	if cw == nil {
		return 0, errors.New("xcol: row trace has no frames")
	}
	if err := cw.Close(); err != nil {
		return 0, err
	}
	return cw.Records(), nil
}

// auxFrame is one buffered signaling frame during columnar→row
// conversion.
type auxFrame struct {
	t       xcal.FrameType
	pos     uint64 // KPI records written before the frame
	ord     int    // arrival order, the tiebreak within a position
	payload []byte
}

// ConvertColToRow reads a columnar trace and writes it as a row trace,
// re-interleaving signaling frames at their recorded KPI positions. It
// returns the number of KPI records converted. Corrupt blocks abort the
// conversion — a converter must not silently drop data.
func ConvertColToRow(r io.ReaderAt, size int64, w io.Writer) (uint64, error) {
	s, err := NewScanner(r, size)
	if err != nil {
		return 0, err
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(xcal.TraceMagic[:]); err != nil {
		return 0, err
	}
	var v [2]byte
	binary.LittleEndian.PutUint16(v[:], xcal.TraceVersion)
	if _, err := bw.Write(v[:]); err != nil {
		return 0, err
	}
	frame := func(t xcal.FrameType, payload []byte) error {
		var fh [5]byte
		fh[0] = uint8(t)
		binary.LittleEndian.PutUint32(fh[1:], uint32(len(payload)))
		if _, err := bw.Write(fh[:]); err != nil {
			return err
		}
		_, err := bw.Write(payload)
		return err
	}
	if err := frame(xcal.FrameMeta, s.MetaJSON()); err != nil {
		return 0, err
	}

	// Buffer the signaling frames; they are tiny next to the KPI stream.
	var aux []auxFrame
	err = s.AuxFrames(func(t xcal.FrameType, pos uint64, payload []byte) error {
		aux = append(aux, auxFrame{t: t, pos: pos, ord: len(aux),
			payload: append([]byte(nil), payload...)})
		return nil
	})
	if err != nil {
		return 0, err
	}
	if len(s.Corrupt()) > 0 {
		return 0, s.Corrupt()[0]
	}
	// Aux blocks are already in file order, but be explicit that the
	// merge key is (position, arrival order).
	sort.SliceStable(aux, func(i, j int) bool { return aux[i].pos < aux[j].pos })

	var (
		nKPI uint64
		ai   int
		kbuf []byte
		kpi  xcal.SlotKPI
	)
	emitAuxThrough := func(pos uint64) error {
		for ai < len(aux) && aux[ai].pos <= pos {
			if err := frame(aux[ai].t, aux[ai].payload); err != nil {
				return err
			}
			ai++
		}
		return nil
	}
	for {
		b, err := s.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return 0, err
		}
		for i := 0; i < b.Count; i++ {
			if err := emitAuxThrough(nKPI); err != nil {
				return 0, err
			}
			b.Row(i, &kpi)
			kbuf = kpi.AppendTo(kbuf[:0])
			if err := frame(xcal.FrameKPI, kbuf); err != nil {
				return 0, err
			}
			nKPI++
		}
	}
	if len(s.Corrupt()) > 0 {
		return 0, s.Corrupt()[0]
	}
	// Frames recorded after the last KPI record.
	for ; ai < len(aux); ai++ {
		if err := frame(aux[ai].t, aux[ai].payload); err != nil {
			return 0, err
		}
	}
	return nKPI, bw.Flush()
}

// DetectFormat sniffs the container magic of the file at path. It
// returns "xcal" for the row container, "xcol" for the columnar one,
// and an error otherwise.
func DetectFormat(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	var head [8]byte
	if _, err := io.ReadFull(f, head[:]); err != nil {
		return "", fmt.Errorf("xcol: reading magic: %w", err)
	}
	switch head {
	case xcal.TraceMagic:
		return "xcal", nil
	case Magic:
		return "xcol", nil
	}
	return "", errors.New("xcol: unrecognized trace magic")
}

// ConvertFile converts the trace at src into the opposite container at
// dst, choosing the direction from src's magic. It returns the
// direction taken ("xcal→xcol" or "xcol→xcal") and the KPI record
// count.
func ConvertFile(src, dst string) (string, uint64, error) {
	format, err := DetectFormat(src)
	if err != nil {
		return "", 0, err
	}
	in, err := os.Open(src)
	if err != nil {
		return "", 0, err
	}
	defer in.Close()
	out, err := os.Create(dst)
	if err != nil {
		return "", 0, err
	}
	var n uint64
	var dir string
	switch format {
	case "xcal":
		dir = "xcal→xcol"
		n, err = ConvertRowToCol(in, out)
	case "xcol":
		dir = "xcol→xcal"
		fi, serr := in.Stat()
		if serr != nil {
			err = serr
			break
		}
		n, err = ConvertColToRow(in, fi.Size(), out)
	}
	if cerr := out.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(dst)
		return dir, 0, err
	}
	return dir, n, nil
}
