package analysis

import (
	"math"
	"testing"
)

func TestPairedStats(t *testing.T) {
	// Hand-checked: diffs {1, 3} → mean 2, sd √2, t = 2/(√2/√2) = 2.
	p, err := PairedStats([]float64{2, 5}, []float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if p.N != 2 || math.Abs(p.MeanDiff-2) > 1e-12 || math.Abs(p.StdDiff-math.Sqrt2) > 1e-12 {
		t.Fatalf("stats = %+v", p)
	}
	if math.Abs(p.T-2) > 1e-12 {
		t.Errorf("t = %g, want 2", p.T)
	}

	if _, err := PairedStats([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := PairedStats(nil, nil); err == nil {
		t.Error("empty comparison accepted")
	}

	// A single pair has no spread estimate: mean only, t stays 0.
	p, err = PairedStats([]float64{4}, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	if p.N != 1 || p.MeanDiff != 3 || p.StdDiff != 0 || p.T != 0 {
		t.Errorf("single pair stats = %+v", p)
	}
}

// Constant differences — exactly constant or constant up to float
// rounding — are a degenerate comparison: T must report 0, not the
// astronomic ratio the rounding noise would produce.
func TestPairedStatsDegenerateSpread(t *testing.T) {
	p, err := PairedStats([]float64{1.5, 2.5, 3.5}, []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if p.StdDiff != 0 || p.T != 0 {
		t.Errorf("constant diffs: %+v, want sd=0 t=0", p)
	}

	// Differences identical up to one ulp of noise.
	a := []float64{0.723, 0.8123}
	b := []float64{a[0] - 0.018, a[1] - 0.018 + 1e-17}
	p, err = PairedStats(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.T) > 10 {
		t.Errorf("rounding-noise spread produced t = %g, want the degenerate 0", p.T)
	}
}
