package analysis

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
)

// This file adds the mergeable online aggregates the streaming scan
// path reduces through: an exact count/sum/min/max accumulator and a
// bucketed quantile sketch. Both merge deterministically — the sketch
// bucket-wise over integers, so shard merge order cannot change the
// result — which is what lets a parallel block scan produce the same
// summary as a serial pass.

// Accum is an online count/sum/min/max accumulator.
type Accum struct {
	N   int64
	Sum float64
	Min float64
	Max float64
}

// Add folds one observation in. Non-finite values are ignored so a
// corrupt slot cannot poison a whole campaign summary.
func (a *Accum) Add(x float64) {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return
	}
	if a.N == 0 || x < a.Min {
		a.Min = x
	}
	if a.N == 0 || x > a.Max {
		a.Max = x
	}
	a.N++
	a.Sum += x
}

// Merge folds another accumulator in. Min/max/count are order-
// independent; the float sum is folded in shard order, so callers
// merging parallel shards must do so in a fixed order (fleet.Stream's
// ordered emission provides one).
func (a *Accum) Merge(b Accum) {
	if b.N == 0 {
		return
	}
	if a.N == 0 || b.Min < a.Min {
		a.Min = b.Min
	}
	if a.N == 0 || b.Max > a.Max {
		a.Max = b.Max
	}
	a.N += b.N
	a.Sum += b.Sum
}

// Mean returns Sum/N, or 0 for an empty accumulator.
func (a Accum) Mean() float64 {
	if a.N == 0 {
		return 0
	}
	return a.Sum / float64(a.N)
}

// SketchAlpha is the sketch's relative accuracy: a quantile estimate q̂
// satisfies |q̂ - q| ≤ SketchAlpha·|q| for values outside the
// collapsed-to-zero band.
const SketchAlpha = 0.005

// sketchZeroBand: magnitudes below this land in the zero bucket. The
// KPI metrics the pipeline sketches (Mbps, dB, dBm, slots) never live
// below 1e-9 in a meaningful way.
const sketchZeroBand = 1e-9

// Sketch is a DDSketch-style log-bucketed quantile sketch with
// relative accuracy SketchAlpha. Buckets hold integer counts, so Merge
// is bucket-wise addition — associative, commutative, and bit-exact
// regardless of shard order — and AppendBinary emits a canonical byte
// string: two sketches fed the same multiset of values serialize
// identically no matter how they were sharded or merged.
type Sketch struct {
	gamma    float64
	logGamma float64
	count    uint64
	zero     uint64
	pos      map[int32]uint64
	neg      map[int32]uint64
}

// NewSketch returns an empty sketch at the package accuracy.
func NewSketch() *Sketch {
	gamma := (1 + SketchAlpha) / (1 - SketchAlpha)
	return &Sketch{
		gamma:    gamma,
		logGamma: math.Log(gamma),
		pos:      make(map[int32]uint64),
		neg:      make(map[int32]uint64),
	}
}

func (s *Sketch) bucket(mag float64) int32 {
	return int32(math.Ceil(math.Log(mag) / s.logGamma))
}

// value returns the representative (midpoint) value of bucket idx.
func (s *Sketch) value(idx int32) float64 {
	return 2 * math.Pow(s.gamma, float64(idx)) / (s.gamma + 1)
}

// Add folds one observation in; non-finite values are ignored.
func (s *Sketch) Add(x float64) { s.AddN(x, 1) }

// AddN folds n copies of x in.
func (s *Sketch) AddN(x float64, n uint64) {
	if n == 0 || math.IsNaN(x) || math.IsInf(x, 0) {
		return
	}
	s.count += n
	switch {
	case x > sketchZeroBand:
		s.pos[s.bucket(x)] += n
	case x < -sketchZeroBand:
		s.neg[s.bucket(-x)] += n
	default:
		s.zero += n
	}
}

// Count returns the number of observations folded in.
func (s *Sketch) Count() uint64 { return s.count }

// Merge folds another sketch in, bucket-wise.
func (s *Sketch) Merge(o *Sketch) {
	s.count += o.count
	s.zero += o.zero
	for idx, n := range o.pos {
		s.pos[idx] += n
	}
	for idx, n := range o.neg {
		s.neg[idx] += n
	}
}

func sortedKeys(m map[int32]uint64) []int32 {
	keys := make([]int32, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// Quantile returns the estimate for q in [0,1]; NaN when empty. The
// walk visits buckets in ascending value order (most-negative first),
// so the result is deterministic.
func (s *Sketch) Quantile(q float64) float64 {
	if s.count == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(s.count-1))
	var seen uint64
	negKeys := sortedKeys(s.neg)
	for i := len(negKeys) - 1; i >= 0; i-- {
		seen += s.neg[negKeys[i]]
		if seen > rank {
			return -s.value(negKeys[i])
		}
	}
	seen += s.zero
	if seen > rank {
		return 0
	}
	for _, idx := range sortedKeys(s.pos) {
		seen += s.pos[idx]
		if seen > rank {
			return s.value(idx)
		}
	}
	// Unreachable for a consistent sketch; fall back to the top bucket.
	if len(s.pos) > 0 {
		return s.value(sortedKeys(s.pos)[len(s.pos)-1])
	}
	return 0
}

// AppendBinary appends the canonical serialization: alpha, total and
// zero counts, then each bucket map as (len, sorted (idx, count)
// pairs). Bucket maps are emitted in sorted index order, so the bytes
// are a pure function of the sketch's contents.
func (s *Sketch) AppendBinary(dst []byte) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(SketchAlpha))
	dst = binary.LittleEndian.AppendUint64(dst, s.count)
	dst = binary.LittleEndian.AppendUint64(dst, s.zero)
	for _, m := range []map[int32]uint64{s.neg, s.pos} {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(m)))
		for _, idx := range sortedKeys(m) {
			dst = binary.LittleEndian.AppendUint32(dst, uint32(idx))
			dst = binary.LittleEndian.AppendUint64(dst, m[idx])
		}
	}
	return dst
}

// SketchFromBinary parses an AppendBinary serialization.
func SketchFromBinary(data []byte) (*Sketch, error) {
	if len(data) < 24 {
		return nil, fmt.Errorf("analysis: sketch serialization too short")
	}
	// Bit equality on purpose: merges are only defined between sketches
	// built with the identical bucket base, so the serialized alpha must
	// be the exact constant.
	alphaBits := binary.LittleEndian.Uint64(data)
	if alphaBits != math.Float64bits(SketchAlpha) {
		return nil, fmt.Errorf("analysis: sketch alpha %g, want %g",
			math.Float64frombits(alphaBits), SketchAlpha)
	}
	s := NewSketch()
	s.count = binary.LittleEndian.Uint64(data[8:])
	s.zero = binary.LittleEndian.Uint64(data[16:])
	pos := 24
	var total uint64 = s.zero
	for _, m := range []map[int32]uint64{s.neg, s.pos} {
		if pos+4 > len(data) {
			return nil, fmt.Errorf("analysis: sketch serialization truncated")
		}
		n := int(binary.LittleEndian.Uint32(data[pos:]))
		pos += 4
		if n > (len(data)-pos)/12 {
			return nil, fmt.Errorf("analysis: sketch bucket count %d exceeds payload", n)
		}
		for i := 0; i < n; i++ {
			idx := int32(binary.LittleEndian.Uint32(data[pos:]))
			c := binary.LittleEndian.Uint64(data[pos+4:])
			pos += 12
			m[idx] = c
			total += c
		}
	}
	if pos != len(data) {
		return nil, fmt.Errorf("analysis: %d trailing bytes after sketch", len(data)-pos)
	}
	if total != s.count {
		return nil, fmt.Errorf("analysis: sketch bucket total %d != count %d", total, s.count)
	}
	return s, nil
}
