// Package analysis implements the data analytics of the paper: the scaled
// variability metric V(t) of §5 (equation 1), distribution summaries, CDFs,
// time-series resampling, and utilization shares (the Figure 5/6 style
// breakdowns).
package analysis

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Std returns the population standard deviation of xs.
func Std(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) using linear
// interpolation between order statistics.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	frac := rank - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Summary is a five-number-plus-moments distribution summary, the data
// behind the paper's box plots.
type Summary struct {
	N                   int
	Min, P25, Median    float64
	P75, Max, Mean, Std float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	return Summary{
		N:      len(xs),
		Min:    Percentile(xs, 0),
		P25:    Percentile(xs, 25),
		Median: Percentile(xs, 50),
		P75:    Percentile(xs, 75),
		Max:    Percentile(xs, 100),
		Mean:   Mean(xs),
		Std:    Std(xs),
	}
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.2f±%.2f [%.2f %.2f %.2f %.2f %.2f]",
		s.N, s.Mean, s.Std, s.Min, s.P25, s.Median, s.P75, s.Max)
}

// CDF is an empirical cumulative distribution function.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from xs.
func NewCDF(xs []float64) CDF {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return CDF{sorted: s}
}

// N returns the sample count.
func (c CDF) N() int { return len(c.sorted) }

// At returns P(X ≤ x).
func (c CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1).
func (c CDF) Quantile(q float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return c.sorted[0]
	}
	if q >= 1 {
		return c.sorted[len(c.sorted)-1]
	}
	return c.sorted[int(q*float64(len(c.sorted)-1))]
}

// Points returns up to n evenly spaced (x, P(X≤x)) pairs for plotting.
func (c CDF) Points(n int) [][2]float64 {
	if len(c.sorted) == 0 || n <= 0 {
		return nil
	}
	if n > len(c.sorted) {
		n = len(c.sorted)
	}
	out := make([][2]float64, n)
	for i := 0; i < n; i++ {
		idx := i * (len(c.sorted) - 1) / max(1, n-1)
		out[i] = [2]float64{c.sorted[idx], float64(idx+1) / float64(len(c.sorted))}
	}
	return out
}

// Resample aggregates xs into block means of the given factor, dropping any
// trailing partial block. It converts a slot-level series into one at a
// coarser time granularity (e.g. the 60 ms plots of Figure 13).
func Resample(xs []float64, factor int) []float64 {
	if factor <= 1 {
		return append([]float64(nil), xs...)
	}
	n := len(xs) / factor
	out := make([]float64, n)
	for j := 0; j < n; j++ {
		s := 0.0
		for i := j * factor; i < (j+1)*factor; i++ {
			s += xs[i]
		}
		out[j] = s / float64(factor)
	}
	return out
}

// Shares returns the fraction of samples equal to each distinct value, the
// computation behind the modulation-order (Fig. 5) and MIMO-layer (Fig. 6)
// utilization percentages.
func Shares[T comparable](xs []T) map[T]float64 {
	out := make(map[T]float64)
	if len(xs) == 0 {
		return out
	}
	for _, x := range xs {
		out[x]++
	}
	for k := range out {
		out[k] /= float64(len(xs))
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Correlation returns the Pearson correlation coefficient of two
// equal-length series — the cross-layer correlation tool behind the §6
// "cross-correlating 5G parameters with the application decision process"
// analysis. It returns 0 for degenerate inputs.
func Correlation(xs, ys []float64) float64 {
	n := len(xs)
	if n != len(ys) || n < 2 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}
