package analysis

import (
	"bytes"
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestAccum(t *testing.T) {
	var a Accum
	for _, x := range []float64{3, -1, 4, 1, 5} {
		a.Add(x)
	}
	if a.N != 5 || a.Min != -1 || a.Max != 5 || a.Sum != 12 {
		t.Fatalf("accum %+v", a)
	}
	if got := a.Mean(); got != 12.0/5 {
		t.Fatalf("mean %g", got)
	}
	a.Add(math.NaN())
	a.Add(math.Inf(1))
	if a.N != 5 {
		t.Fatalf("non-finite values counted: N=%d", a.N)
	}

	var b, c Accum
	b.Add(10)
	c.Merge(a)
	c.Merge(b)
	if c.N != 6 || c.Min != -1 || c.Max != 10 || c.Sum != 22 {
		t.Fatalf("merged %+v", c)
	}
	var empty Accum
	c.Merge(empty)
	if c.N != 6 {
		t.Fatalf("empty merge changed the accumulator: %+v", c)
	}
}

// TestSketchQuantileErrorBound checks the advertised relative-accuracy
// guarantee against exact quantiles on mixed-sign heavy-tailed data.
func TestSketchQuantileErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n := 200_000
	xs := make([]float64, n)
	s := NewSketch()
	for i := range xs {
		x := math.Exp(rng.NormFloat64()*2) * 50 // lognormal, ~Mbps scale
		if i%5 == 0 {
			x = -x // mix in negatives (dB-style metrics)
		}
		if i%1000 == 0 {
			x = 0 // outage slots
		}
		xs[i] = x
		s.Add(x)
	}
	sort.Float64s(xs)
	for _, q := range []float64{0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
		exact := xs[int(q*float64(n-1))]
		got := s.Quantile(q)
		if exact == 0 {
			if got != 0 {
				t.Errorf("q=%g: got %g, want 0", q, got)
			}
			continue
		}
		if rel := math.Abs(got-exact) / math.Abs(exact); rel > SketchAlpha {
			t.Errorf("q=%g: got %g, exact %g, relative error %g > %g", q, got, exact, rel, SketchAlpha)
		}
	}
}

// TestSketchMergeOrderByteIdentity shards one stream many ways and
// merges the shards in different orders: every path must serialize to
// the identical byte string as the serial sketch.
func TestSketchMergeOrderByteIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 50_000)
	for i := range xs {
		xs[i] = rng.NormFloat64() * 100
	}
	serial := NewSketch()
	for _, x := range xs {
		serial.Add(x)
	}
	want := serial.AppendBinary(nil)

	for _, shards := range []int{2, 3, 7, 16} {
		parts := make([]*Sketch, shards)
		for i := range parts {
			parts[i] = NewSketch()
		}
		for i, x := range xs {
			parts[i%shards].Add(x)
		}
		order := rng.Perm(shards)
		merged := NewSketch()
		for _, i := range order {
			merged.Merge(parts[i])
		}
		if got := merged.AppendBinary(nil); !bytes.Equal(got, want) {
			t.Fatalf("%d shards merged in order %v: digest diverged from serial", shards, order)
		}
	}
}

func TestSketchBinaryRoundTrip(t *testing.T) {
	s := NewSketch()
	for i := 0; i < 1000; i++ {
		s.Add(float64(i-500) * 1.37)
	}
	enc := s.AppendBinary(nil)
	back, err := SketchFromBinary(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back.AppendBinary(nil), enc) {
		t.Fatal("serialization not idempotent through parse")
	}
	if back.Count() != s.Count() || back.Quantile(0.5) != s.Quantile(0.5) {
		t.Fatal("parsed sketch diverged")
	}
	if _, err := SketchFromBinary(enc[:10]); err == nil {
		t.Fatal("accepted truncated serialization")
	}
	bad := append([]byte(nil), enc...)
	bad[8]++ // count no longer matches bucket totals
	if _, err := SketchFromBinary(bad); err == nil {
		t.Fatal("accepted inconsistent count")
	}
}

func TestSketchEmptyAndEdge(t *testing.T) {
	s := NewSketch()
	if !math.IsNaN(s.Quantile(0.5)) {
		t.Fatal("empty sketch quantile not NaN")
	}
	s.Add(math.NaN())
	s.Add(math.Inf(-1))
	if s.Count() != 0 {
		t.Fatal("non-finite values counted")
	}
	s.Add(42)
	for _, q := range []float64{-1, 0, 0.5, 1, 2} {
		if got := s.Quantile(q); math.Abs(got-42)/42 > SketchAlpha {
			t.Fatalf("single-value sketch q=%g: %g", q, got)
		}
	}
}
