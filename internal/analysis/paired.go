package analysis

import (
	"fmt"
	"math"
)

// Paired summarizes a matched-pairs comparison a[i] vs b[i]: the mean
// and sample standard deviation of the per-pair differences a−b and the
// paired t statistic mean/(std/√n). It is the statistic behind the
// scenario MEC grid's EDGE_ON-vs-EDGE_OFF columns, where both arms of
// every pair share a channel realization and differ only in treatment.
type Paired struct {
	// N is the number of pairs.
	N int
	// MeanDiff and StdDiff are the mean and sample (n−1) standard
	// deviation of the differences a−b.
	MeanDiff, StdDiff float64
	// T is the paired t statistic (0 when N < 2 or the differences are
	// constant — a degenerate comparison, not an infinitely strong one).
	T float64
}

// PairedStats computes Paired over matched slices (same length, ≥ 1).
func PairedStats(a, b []float64) (Paired, error) {
	if len(a) != len(b) {
		return Paired{}, fmt.Errorf("analysis: paired slices differ in length (%d vs %d)", len(a), len(b))
	}
	if len(a) == 0 {
		return Paired{}, fmt.Errorf("analysis: paired comparison needs at least one pair")
	}
	n := len(a)
	p := Paired{N: n}
	for i := range a {
		p.MeanDiff += a[i] - b[i]
	}
	p.MeanDiff /= float64(n)
	if n < 2 {
		return p, nil
	}
	var ss float64
	for i := range a {
		d := a[i] - b[i] - p.MeanDiff
		ss += d * d
	}
	p.StdDiff = math.Sqrt(ss / float64(n-1))
	// A spread that is pure float rounding relative to the effect size is
	// a constant difference: report the degenerate T=0, not the astronomic
	// ratio the noise would produce.
	if p.StdDiff > 1e-9*math.Abs(p.MeanDiff) && p.StdDiff > 0 {
		p.T = p.MeanDiff / (p.StdDiff / math.Sqrt(float64(n)))
	}
	return p, nil
}
