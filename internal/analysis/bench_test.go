package analysis

import (
	"math/rand"
	"testing"
	"time"
)

func benchSeries(n int) []float64 {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = rng.NormFloat64()*100 + 700
	}
	return xs
}

func BenchmarkVariability(b *testing.B) {
	xs := benchSeries(1 << 16) // ≈ 32 s of slots
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Variability(xs, 256); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCurve(b *testing.B) {
	xs := benchSeries(1 << 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Curve(xs, 500*time.Microsecond, 12)
	}
}

func BenchmarkCDF(b *testing.B) {
	xs := benchSeries(1 << 14)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := NewCDF(xs)
		c.Quantile(0.5)
	}
}
