package analysis

import (
	"fmt"
	"math"
	"time"
)

// Variability computes V(t), the scaled variability metric of the paper's
// equation (1), for a series sampled at the finest granularity τ and a time
// scale of `scale` samples (t = scale·τ):
//
//	V(t) = 1/(m−1) · Σ_{j=1}^{m−1} |X_{j+1} − X_j|
//
// where X_j is the mean of the j-th length-t block. Larger V(t) means the
// series moves more from one t-interval to the next. Trailing samples that
// do not fill a block are dropped.
func Variability(xs []float64, scale int) (float64, error) {
	if scale < 1 {
		return 0, fmt.Errorf("analysis: scale %d must be ≥ 1", scale)
	}
	m := len(xs) / scale
	if m < 2 {
		return 0, fmt.Errorf("analysis: need ≥ 2 blocks of %d samples, have %d samples", scale, len(xs))
	}
	prev := blockMean(xs, 0, scale)
	total := 0.0
	for j := 1; j < m; j++ {
		cur := blockMean(xs, j, scale)
		total += math.Abs(cur - prev)
		prev = cur
	}
	return total / float64(m-1), nil
}

func blockMean(xs []float64, j, scale int) float64 {
	s := 0.0
	for i := j * scale; i < (j+1)*scale; i++ {
		s += xs[i]
	}
	return s / float64(scale)
}

// ScalePoint is one (time scale, V(t)) pair of a variability curve.
type ScalePoint struct {
	// Scale is the block length in samples.
	Scale int
	// Duration is the corresponding time scale t = Scale·τ.
	Duration time.Duration
	// V is the variability V(t).
	V float64
}

// Curve computes V(t) across dyadic time scales t = 2^k·τ for k = 0..maxK,
// the x-axis of Figure 12 (0.5 ms up to 2 s for τ = 0.5 ms, maxK = 12).
// Scales with fewer than five complete blocks are omitted: V(t) averages
// the m−1 jumps between consecutive block means, and with only two or
// three blocks that average is a single noisy draw, not a variability
// estimate — short sessions would let it decide the tail of the curve.
func Curve(xs []float64, tau time.Duration, maxK int) []ScalePoint {
	const minBlocks = 5
	var out []ScalePoint
	for k := 0; k <= maxK; k++ {
		scale := 1 << k
		if len(xs)/scale < minBlocks {
			break
		}
		v, err := Variability(xs, scale)
		if err != nil {
			break
		}
		out = append(out, ScalePoint{Scale: scale, Duration: tau * time.Duration(scale), V: v})
	}
	return out
}

// CurveStats returns the mean and standard deviation of the V values of a
// curve — the "Mean ± Std" annotations of Figure 12.
func CurveStats(curve []ScalePoint) (mean, std float64) {
	vs := make([]float64, len(curve))
	for i, p := range curve {
		vs[i] = p.V
	}
	return Mean(vs), Std(vs)
}

// StabilizationScale returns the smallest time scale at which the curve has
// flattened: the first point whose V differs from the final V by at most
// frac (e.g. 0.25) of the total V range. The paper observes throughput
// variability stabilizing around 0.2–0.5 s.
func StabilizationScale(curve []ScalePoint, frac float64) (time.Duration, bool) {
	if len(curve) < 2 {
		return 0, false
	}
	last := curve[len(curve)-1].V
	lo, hi := curve[0].V, curve[0].V
	for _, p := range curve {
		lo = math.Min(lo, p.V)
		hi = math.Max(hi, p.V)
	}
	span := hi - lo
	if span == 0 {
		return curve[0].Duration, true
	}
	for _, p := range curve {
		if math.Abs(p.V-last) <= frac*span {
			return p.Duration, true
		}
	}
	return 0, false
}

// JointVariability computes the (V_mcs(t), V_mimo(t)) pair at a single time
// scale — the axes of the 2D channel-dynamics plots in Figures 14 and 15.
func JointVariability(mcs, mimo []float64, scale int) (vMCS, vMIMO float64, err error) {
	vMCS, err = Variability(mcs, scale)
	if err != nil {
		return 0, 0, err
	}
	vMIMO, err = Variability(mimo, scale)
	if err != nil {
		return 0, 0, err
	}
	return vMCS, vMIMO, nil
}
