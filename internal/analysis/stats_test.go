package analysis

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestMeanStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("Mean = %g, want 5", m)
	}
	if s := Std(xs); s != 2 {
		t.Errorf("Std = %g, want 2", s)
	}
	if Mean(nil) != 0 || Std(nil) != 0 || Std([]float64{3}) != 0 {
		t.Error("degenerate inputs should return 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {25, 2}, {50, 3}, {75, 4}, {100, 5}, {-5, 1}, {110, 5}, {10, 1.4},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("P%g = %g, want %g", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile should be 0")
	}
	// Percentile must not mutate its input.
	ys := []float64{3, 1, 2}
	Percentile(ys, 50)
	if ys[0] != 3 || ys[1] != 1 || ys[2] != 2 {
		t.Error("Percentile mutated input")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Min != 1 || s.Median != 3 || s.Max != 5 || s.Mean != 3 {
		t.Errorf("bad summary %+v", s)
	}
	if Summarize(nil).N != 0 {
		t.Error("empty summary should be zero")
	}
	if s.String() == "" {
		t.Error("summary string empty")
	}
}

func TestCDF(t *testing.T) {
	c := NewCDF([]float64{1, 2, 2, 3, 10})
	if c.N() != 5 {
		t.Errorf("N = %d", c.N())
	}
	cases := []struct{ x, want float64 }{
		{0, 0}, {1, 0.2}, {2, 0.6}, {2.5, 0.6}, {10, 1}, {99, 1},
	}
	for _, cse := range cases {
		if got := c.At(cse.x); math.Abs(got-cse.want) > 1e-12 {
			t.Errorf("At(%g) = %g, want %g", cse.x, got, cse.want)
		}
	}
	if got := c.Quantile(0); got != 1 {
		t.Errorf("Quantile(0) = %g", got)
	}
	if got := c.Quantile(1); got != 10 {
		t.Errorf("Quantile(1) = %g", got)
	}
	pts := c.Points(3)
	if len(pts) != 3 || pts[0][0] != 1 || pts[2][0] != 10 {
		t.Errorf("Points = %v", pts)
	}
	if NewCDF(nil).At(5) != 0 || NewCDF(nil).Quantile(0.5) != 0 {
		t.Error("empty CDF should be zero-valued")
	}
}

func TestCDFMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, 100)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
		}
		c := NewCDF(xs)
		prev := -1.0
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := c.At(c.Quantile(q))
			if v < prev {
				return false
			}
			prev = v
		}
		// At() of the max is exactly 1.
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		return c.At(sorted[len(sorted)-1]) == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestResample(t *testing.T) {
	xs := []float64{1, 3, 5, 7, 9, 11, 13}
	got := Resample(xs, 2)
	want := []float64{2, 6, 10} // trailing 13 dropped
	if len(got) != len(want) {
		t.Fatalf("Resample len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Resample[%d] = %g, want %g", i, got[i], want[i])
		}
	}
	same := Resample(xs, 1)
	if len(same) != len(xs) {
		t.Error("factor 1 should copy")
	}
	same[0] = 99
	if xs[0] == 99 {
		t.Error("Resample(.,1) must not alias input")
	}
}

func TestResampleMeanPreservedProperty(t *testing.T) {
	f := func(seed int64, factor uint8) bool {
		k := int(factor%8) + 1
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, 64*k) // exact multiple: mean preserved exactly
		for i := range xs {
			xs[i] = rng.Float64() * 100
		}
		return math.Abs(Mean(Resample(xs, k))-Mean(xs)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestShares(t *testing.T) {
	got := Shares([]string{"64QAM", "64QAM", "256QAM", "64QAM"})
	if got["64QAM"] != 0.75 || got["256QAM"] != 0.25 {
		t.Errorf("Shares = %v", got)
	}
	if len(Shares[int](nil)) != 0 {
		t.Error("empty shares should be empty")
	}
	// Shares always sum to 1.
	f := func(vals []uint8) bool {
		if len(vals) == 0 {
			return true
		}
		sum := 0.0
		for _, v := range Shares(vals) {
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if got := Correlation(xs, xs); math.Abs(got-1) > 1e-12 {
		t.Errorf("self correlation = %g, want 1", got)
	}
	neg := []float64{5, 4, 3, 2, 1}
	if got := Correlation(xs, neg); math.Abs(got+1) > 1e-12 {
		t.Errorf("reverse correlation = %g, want -1", got)
	}
	flat := []float64{2, 2, 2, 2, 2}
	if got := Correlation(xs, flat); got != 0 {
		t.Errorf("flat series correlation = %g, want 0", got)
	}
	if Correlation(xs, xs[:3]) != 0 {
		t.Error("length mismatch should return 0")
	}
	// Property: correlation is symmetric and bounded.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := make([]float64, 50)
		b := make([]float64, 50)
		for i := range a {
			a[i] = rng.NormFloat64()
			b[i] = a[i]*0.5 + rng.NormFloat64()
		}
		r1, r2 := Correlation(a, b), Correlation(b, a)
		return math.Abs(r1-r2) < 1e-12 && r1 >= -1.0000001 && r1 <= 1.0000001
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
