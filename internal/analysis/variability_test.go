package analysis

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestVariabilityHandComputed(t *testing.T) {
	// Blocks of 2 over {1,1, 3,3, 2,2}: X = {1,3,2} →
	// V = (|3−1| + |2−3|)/2 = 1.5.
	xs := []float64{1, 1, 3, 3, 2, 2}
	v, err := Variability(xs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if v != 1.5 {
		t.Errorf("V = %g, want 1.5", v)
	}
	// Scale 1: V = mean |Δ| = (0+2+0+1+0)/5 = 0.6.
	v1, _ := Variability(xs, 1)
	if v1 != 0.6 {
		t.Errorf("V(τ) = %g, want 0.6", v1)
	}
}

func TestVariabilityErrors(t *testing.T) {
	if _, err := Variability([]float64{1, 2}, 0); err == nil {
		t.Error("scale 0 should fail")
	}
	if _, err := Variability([]float64{1, 2, 3}, 2); err == nil {
		t.Error("fewer than 2 blocks should fail")
	}
}

func TestVariabilityConstantIsZeroProperty(t *testing.T) {
	f := func(c float64, n, scale uint8) bool {
		if math.IsNaN(c) || math.IsInf(c, 0) || math.Abs(c) > 1e100 {
			c = 5 // avoid overflow when summing blocks of extreme values
		}
		k := int(scale%16) + 1
		xs := make([]float64, (int(n%32)+2)*k)
		for i := range xs {
			xs[i] = c
		}
		v, err := Variability(xs, k)
		return err == nil && v == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVariabilityScalesLinearlyProperty(t *testing.T) {
	// V(a·x) = |a|·V(x): the metric is homogeneous, so "scaled" comparisons
	// across different units stay meaningful.
	f := func(seed int64, a float64) bool {
		if math.IsNaN(a) || math.IsInf(a, 0) || math.Abs(a) > 1e6 {
			a = -2.5
		}
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, 256)
		ys := make([]float64, 256)
		for i := range xs {
			xs[i] = rng.NormFloat64()
			ys[i] = a * xs[i]
		}
		vx, err1 := Variability(xs, 4)
		vy, err2 := Variability(ys, 4)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(vy-math.Abs(a)*vx) < 1e-9*(1+math.Abs(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVariabilityShiftInvariantProperty(t *testing.T) {
	f := func(seed int64, shift float64) bool {
		if math.IsNaN(shift) || math.IsInf(shift, 0) || math.Abs(shift) > 1e6 {
			shift = 100
		}
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, 128)
		ys := make([]float64, 128)
		for i := range xs {
			xs[i] = rng.Float64() * 10
			ys[i] = xs[i] + shift
		}
		vx, _ := Variability(xs, 2)
		vy, _ := Variability(ys, 2)
		return math.Abs(vx-vy) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCurveWhiteNoiseDecreases(t *testing.T) {
	// For i.i.d. noise V(t) ∝ 1/sqrt(t): the curve must fall with scale —
	// the qualitative shape of every panel in Figure 12.
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 1<<14)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	curve := Curve(xs, 500*time.Microsecond, 8)
	if len(curve) != 9 {
		t.Fatalf("curve has %d points, want 9", len(curve))
	}
	if curve[0].Duration != 500*time.Microsecond || curve[1].Duration != time.Millisecond {
		t.Errorf("durations wrong: %v, %v", curve[0].Duration, curve[1].Duration)
	}
	for k := 1; k < len(curve); k++ {
		if curve[k].V >= curve[k-1].V {
			t.Errorf("V at scale 2^%d (%g) not below scale 2^%d (%g)",
				k, curve[k].V, k-1, curve[k-1].V)
		}
	}
	// Ratio between adjacent dyadic scales ≈ 1/√2 for white noise.
	ratio := curve[4].V / curve[3].V
	if ratio < 0.6 || ratio > 0.82 {
		t.Errorf("white-noise dyadic ratio = %.3f, want ≈ 0.707", ratio)
	}
}

func TestCurveStopsWhenTooShort(t *testing.T) {
	xs := make([]float64, 16)
	curve := Curve(xs, time.Millisecond, 10)
	// 16 samples support scales 1,2 (≥5 blocks each); scale 4 leaves
	// only 4 blocks — too few jumps for a meaningful V — and is dropped.
	if len(curve) != 2 {
		t.Errorf("curve has %d points, want 2", len(curve))
	}
}

func TestCurveStats(t *testing.T) {
	curve := []ScalePoint{{V: 1}, {V: 2}, {V: 3}}
	mean, std := CurveStats(curve)
	if mean != 2 {
		t.Errorf("mean = %g", mean)
	}
	if math.Abs(std-math.Sqrt(2.0/3.0)) > 1e-12 {
		t.Errorf("std = %g", std)
	}
}

func TestStabilizationScale(t *testing.T) {
	curve := []ScalePoint{
		{Duration: 1 * time.Millisecond, V: 10},
		{Duration: 2 * time.Millisecond, V: 6},
		{Duration: 4 * time.Millisecond, V: 2.5},
		{Duration: 8 * time.Millisecond, V: 2.1},
		{Duration: 16 * time.Millisecond, V: 2.0},
	}
	d, ok := StabilizationScale(curve, 0.25)
	if !ok || d != 4*time.Millisecond {
		t.Errorf("stabilization = %v ok=%v, want 4ms", d, ok)
	}
	if _, ok := StabilizationScale(curve[:1], 0.25); ok {
		t.Error("single-point curve cannot stabilize")
	}
	flat := []ScalePoint{{Duration: time.Millisecond, V: 1}, {Duration: 2 * time.Millisecond, V: 1}}
	if d, ok := StabilizationScale(flat, 0.25); !ok || d != time.Millisecond {
		t.Error("flat curve stabilizes immediately")
	}
}

func TestJointVariability(t *testing.T) {
	mcs := []float64{20, 20, 24, 24, 18, 18}
	mimo := []float64{4, 4, 4, 4, 2, 2}
	vm, vl, err := JointVariability(mcs, mimo, 2)
	if err != nil {
		t.Fatal(err)
	}
	if vm != 5 { // (|24−20|+|18−24|)/2
		t.Errorf("vMCS = %g, want 5", vm)
	}
	if vl != 1 { // (0+2)/2
		t.Errorf("vMIMO = %g, want 1", vl)
	}
	if _, _, err := JointVariability(mcs[:1], mimo, 1); err == nil {
		t.Error("short mcs series should fail")
	}
	if _, _, err := JointVariability(mcs, mimo[:1], 1); err == nil {
		t.Error("short mimo series should fail")
	}
}
