// Package detlint statically enforces the simulator's determinism
// contract: byte-identical traces and aggregates for any worker count,
// with observability on or off (see docs/ARCHITECTURE.md, "Determinism
// rules"). The runtime tests (workers=1 vs 8, obs on vs off) catch a
// contract breach only when the breach happens to change the sampled
// outputs; these analyzers catch the *source* of a breach — a global
// RNG call, a wall-clock read, an unsorted map walk into a CSV — before
// it ever runs.
//
// Nine analyzers make up the suite:
//
//   - globalrand: simulation packages must not call math/rand's
//     package-level functions (or rand.Seed); randomness flows through a
//     seeded *rand.Rand, as in internal/channel.
//   - walltime: time.Now / time.Since are forbidden module-wide outside
//     tests; the few legitimate timing sites (obs, fleet, the CLIs,
//     core's metrics hooks) carry a //detlint:allow walltime directive.
//   - maprange: ranging over a map while writing to an io.Writer,
//     fmt.Fprint*, or appending into a slice that is never sorted is
//     flagged — map iteration order is random per process.
//   - obswriteonly: simulation packages may write metrics but never read
//     them back, so instrumentation cannot feed into results.
//   - floatcmp: == / != between floating-point operands outside _test.go
//     files is flagged; exact equality is representation-dependent.
//   - unitflow: a units-of-measure dataflow check seeded by the naming
//     convention (...dB, ...dBm, ...mW, ...Hz/kHz/MHz, ...Lin) and the
//     //detlint:unit <dim> directive; flags log/linear mixing, dBm↔dB
//     comparison and assignment, frequency-scale mismatches, and
//     double-applied 10^(x/10) conversions.
//   - allocfree: forbids allocation sources (make, map/slice literals,
//     closure captures, fmt, interface boxing, string conversion, append
//     to a non-reused slice) inside functions marked //detlint:zeroalloc
//     — the Step chains pinned by testing.AllocsPerRun.
//   - bufown: flags retention (field/global stores, channel sends,
//     goroutine captures) of results returned by methods documented
//     "owned ... until the next" call, using a small ownership fact
//     exported per package.
//   - seedflow: RNG constructions in simulation packages must derive
//     their seed through fleet.SplitSeed (or a config field/parameter) —
//     no literal seeds and no raw seed arithmetic.
//
// A site that is genuinely exempt carries a trailing
//
//	//detlint:allow <analyzer> <reason>
//
// comment on (or immediately above) the offending line. Directives with
// an unknown analyzer name or a missing reason are themselves
// diagnostics, and a directive that suppresses nothing is reported as
// stale, so the allowlist cannot rot.
//
// The suite runs in CI as a go vet tool: cmd/detlint speaks the vet
// unit-checker protocol, so `go vet -vettool=$(which detlint) ./...`
// checks every package in the module.
package detlint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer is one static rule of the determinism contract. It is a
// deliberately small mirror of golang.org/x/tools/go/analysis.Analyzer:
// the repository vendors no third-party modules, so the suite and its
// driver are built on go/ast and go/types alone.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //detlint:allow directives.
	Name string
	// Doc is a one-line description of the enforced rule.
	Doc string
	// Run inspects one type-checked package and reports violations
	// through pass.Report.
	Run func(*Pass)
}

// Pass carries one type-checked package through an analyzer.
type Pass struct {
	// Analyzer is the rule being applied.
	Analyzer *Analyzer
	// Fset maps token positions to file/line.
	Fset *token.FileSet
	// Files are the package's syntax trees. Test files (_test.go) are
	// already filtered out by the driver.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// Info holds the type-checker's results for Files.
	Info *types.Info
	// DepFacts maps dependency package paths to the facts they export
	// (see Facts). Nil when the driver carries no facts; analyzers that
	// consume facts must then fall back to intra-package information.
	DepFacts map[string]*Facts
	// Report records a diagnostic at pos.
	Report func(pos token.Pos, message string)
}

// Diagnostic is one reported violation.
type Diagnostic struct {
	// Pos locates the violation.
	Pos token.Pos
	// Analyzer names the rule that fired ("allow" for directive
	// problems and stale-directive reports).
	Analyzer string
	// Message explains the violation.
	Message string
}

// Suite returns the nine determinism analyzers in reporting order.
func Suite() []*Analyzer {
	return []*Analyzer{
		GlobalRand,
		WallTime,
		MapRange,
		ObsWriteOnly,
		FloatCmp,
		UnitFlow,
		AllocFree,
		BufOwn,
		SeedFlow,
	}
}

// KnownAnalyzers returns the set of analyzer names valid in a
// //detlint:allow directive.
func KnownAnalyzers() map[string]bool {
	m := make(map[string]bool)
	for _, a := range Suite() {
		m[a.Name] = true
	}
	return m
}

// pkgPathOf resolves the selector's receiver to an imported package
// path, or "" when x does not name an imported package.
func pkgPathOf(info *types.Info, x ast.Expr) string {
	id, ok := x.(*ast.Ident)
	if !ok {
		return ""
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return ""
	}
	return pn.Imported().Path()
}
