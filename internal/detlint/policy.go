package detlint

import "strings"

// simCore names the internal packages that form the deterministic
// simulation core: every byte they emit must be reproducible from the
// campaign seed alone. The scoped analyzers (globalrand, obswriteonly,
// seedflow) apply only here; the module-wide analyzers (walltime,
// maprange, floatcmp, unitflow) apply everywhere but tests, and the
// directive/fact-gated ones (allocfree, bufown) fire wherever a
// //detlint:zeroalloc annotation or an ownership fact reaches.
//
// fleet and obs are deliberately absent: fleet owns the wall-clock
// job timings and obs *is* the instrumentation layer, so both read the
// clock by design — their sites carry //detlint:allow walltime
// directives instead.
var simCore = map[string]bool{
	"channel":   true,
	"gnb":       true,
	"ue":        true,
	"lte":       true,
	"phy":       true,
	"tdd":       true,
	"net5g":     true,
	"core":      true,
	"video":     true,
	"iperf":     true,
	"transport": true,
	"fault":     true,
}

// internalSegments splits a package path at its "internal" element and
// returns the path segments below it, or nil when the path has no
// internal element. The go vet protocol reports test variants as
// "path [path.test]"; the bracket suffix is ignored.
func internalSegments(pkgPath string) []string {
	if i := strings.IndexByte(pkgPath, ' '); i >= 0 {
		pkgPath = pkgPath[:i]
	}
	segs := strings.Split(pkgPath, "/")
	for i, s := range segs {
		if s == "internal" && i+1 < len(segs) {
			return segs[i+1:]
		}
	}
	return nil
}

// IsSimPackage reports whether pkgPath belongs to the deterministic
// simulation core (an internal/<pkg> subtree listed in simCore).
func IsSimPackage(pkgPath string) bool {
	segs := internalSegments(pkgPath)
	return len(segs) > 0 && simCore[segs[0]]
}

// IsObsPackage reports whether pkgPath is the observability layer
// (internal/obs or a subpackage of it).
func IsObsPackage(pkgPath string) bool {
	segs := internalSegments(pkgPath)
	return len(segs) > 0 && segs[0] == "obs"
}
