package detlint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// RunAnalyzers applies the given analyzers to one type-checked package,
// honors //detlint:allow directives, and returns the surviving
// diagnostics (violations, malformed directives, stale directives)
// sorted by position. Test files (_test.go) are excluded: the contract
// governs what ships in the simulator, and tests legitimately measure
// time and compare exact floats.
//
// A directive is stale when it suppressed no diagnostic of its analyzer
// on its own or the following line; stale directives are reported so
// the allowlist shrinks when code is fixed. Directives naming an
// analyzer outside the running subset are left unjudged (their verdict
// would need that analyzer's diagnostics).
func RunAnalyzers(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) []Diagnostic {
	return RunAnalyzersWithFacts(fset, files, pkg, info, analyzers, nil)
}

// RunAnalyzersWithFacts is RunAnalyzers with cross-package facts: the
// driver hands each analyzer the Facts exported by the unit's
// dependencies (keyed by package path). cmd/detlint threads these
// through the vet .vetx files; dettest recomputes them from the fixture
// tree. A nil map degrades gracefully to intra-package analysis.
func RunAnalyzersWithFacts(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer, depFacts map[string]*Facts) []Diagnostic {
	var checked []*ast.File
	for _, f := range files {
		name := fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		checked = append(checked, f)
	}

	known := KnownAnalyzers()
	running := map[string]bool{}
	for _, a := range analyzers {
		running[a.Name] = true
	}

	var diags []Diagnostic
	var allows []*Allow
	for _, f := range checked {
		fa, fd := parseAllows(fset, f, known)
		allows = append(allows, fa...)
		diags = append(diags, fd...)
	}

	for _, a := range analyzers {
		a := a
		pass := &Pass{
			Analyzer: a,
			Fset:     fset,
			Files:    checked,
			Pkg:      pkg,
			Info:     info,
			DepFacts: depFacts,
			Report: func(pos token.Pos, message string) {
				line := fset.Position(pos).Line
				for _, al := range allows {
					if al.covers(a.Name, line) {
						al.used = true
						return
					}
				}
				diags = append(diags, Diagnostic{Pos: pos, Analyzer: a.Name, Message: message})
			},
		}
		a.Run(pass)
	}

	for _, al := range allows {
		if !al.used && running[al.Analyzer] {
			diags = append(diags, Diagnostic{
				Pos:      al.Pos,
				Analyzer: "allow",
				Message: fmt.Sprintf(
					"stale //detlint:allow %s: no %s diagnostic on this or the next line — remove the directive",
					al.Analyzer, al.Analyzer),
			})
		}
	}

	sort.SliceStable(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags
}
