package detlint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Facts is the cross-package information detlint exports for one
// package. The vet driver (cmd/detlint) serializes it to the unit's
// .vetx file and feeds each unit the facts of its dependencies, so an
// analyzer can reason about a method defined in another package without
// re-reading that package's source.
//
// The only fact today is buffer ownership: which methods return storage
// that the receiver reuses on the next call (the "owned until the next
// Step" contract from docs/ARCHITECTURE.md).
type Facts struct {
	// OwnedMethods lists methods whose results are owned by the
	// receiver until the next call, keyed by types.Func.FullName(),
	// e.g. "(*github.com/midband5g/midband/internal/gnb.Cell).Step".
	OwnedMethods []string `json:"owned_methods,omitempty"`
}

// Empty reports whether the facts carry no information, so drivers can
// skip serializing them.
func (f *Facts) Empty() bool {
	return f == nil || len(f.OwnedMethods) == 0
}

// ownedDoc reports whether a method's doc comment declares the
// owned-buffer contract. The codebase phrases it consistently: the
// returned storage "is owned by the <receiver> ... until the next
// <method> call" (gnb.Cell.Step, gnb.Carrier.Step, net5g.Link.Step,
// xcol.Scanner.Next). Both fragments must appear so prose that merely
// mentions ownership in passing does not export a fact.
func ownedDoc(doc string) bool {
	lower := strings.ToLower(doc)
	return strings.Contains(lower, "owned by the") && strings.Contains(lower, "until the next")
}

// CollectFacts scans one type-checked package's files and returns the
// facts it exports: every method whose doc comment declares the
// owned-buffer contract. Callers filter test files first, matching
// RunAnalyzers.
func CollectFacts(fset *token.FileSet, files []*ast.File, info *types.Info) *Facts {
	facts := &Facts{}
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Doc == nil {
				continue
			}
			if !ownedDoc(fd.Doc.Text()) {
				continue
			}
			fn, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			facts.OwnedMethods = append(facts.OwnedMethods, fn.FullName())
		}
	}
	return facts
}
