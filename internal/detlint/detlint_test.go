package detlint_test

import (
	"testing"

	"github.com/midband5g/midband/internal/detlint"
	"github.com/midband5g/midband/internal/detlint/dettest"
)

func TestGlobalRand(t *testing.T) {
	dettest.Run(t, "testdata", "sim/internal/channel", detlint.GlobalRand)
}

func TestWallTime(t *testing.T) {
	dettest.Run(t, "testdata", "sim/internal/gnb", detlint.WallTime)
}

func TestMapRange(t *testing.T) {
	dettest.Run(t, "testdata", "maprange", detlint.MapRange)
}

func TestObsWriteOnly(t *testing.T) {
	dettest.Run(t, "testdata", "sim/internal/ue", detlint.ObsWriteOnly)
}

// TestObsWriteOnlyOutsideSim checks the scoping: a non-sim package may
// read metric values (that is what reporting does).
func TestObsWriteOnlyOutsideSim(t *testing.T) {
	dettest.Run(t, "testdata", "tools/report", detlint.ObsWriteOnly)
}

func TestFloatCmp(t *testing.T) {
	dettest.Run(t, "testdata", "floatcmp", detlint.FloatCmp)
}

// TestAllowDirectives drives the directive parser end to end: a used
// directive suppresses, unknown names and missing reasons are reported,
// and a directive covering no diagnostic is stale.
func TestAllowDirectives(t *testing.T) {
	dettest.Run(t, "testdata", "allowfix", detlint.WallTime)
}

// TestGlobalRandScopedToSimPackages checks that the same global-rand
// pattern outside the simulation core is not flagged (CLI tooling may
// shuffle without a determinism contract).
func TestGlobalRandScopedToSimPackages(t *testing.T) {
	dettest.Run(t, "testdata", "tools/shuffle", detlint.GlobalRand)
}

func TestPolicy(t *testing.T) {
	for path, want := range map[string]bool{
		"github.com/midband5g/midband/internal/channel":                                                      true,
		"github.com/midband5g/midband/internal/gnb":                                                          true,
		"github.com/midband5g/midband/internal/core":                                                         true,
		"github.com/midband5g/midband/internal/obs":                                                          false,
		"github.com/midband5g/midband/internal/fleet":                                                        false,
		"github.com/midband5g/midband/internal/detlint":                                                      false,
		"github.com/midband5g/midband/cmd/campaign":                                                          false,
		"github.com/midband5g/midband/internal/channel [github.com/midband5g/midband/internal/channel.test]": true,
		"sim/internal/ue": true,
	} {
		if got := detlint.IsSimPackage(path); got != want {
			t.Errorf("IsSimPackage(%q) = %v, want %v", path, got, want)
		}
	}
	if !detlint.IsObsPackage("github.com/midband5g/midband/internal/obs") {
		t.Error("internal/obs not recognized as obs package")
	}
	if detlint.IsObsPackage("github.com/midband5g/midband/internal/core") {
		t.Error("internal/core wrongly recognized as obs package")
	}
}
