package detlint_test

import (
	"testing"

	"github.com/midband5g/midband/internal/detlint"
	"github.com/midband5g/midband/internal/detlint/dettest"
)

func TestGlobalRand(t *testing.T) {
	dettest.Run(t, "testdata", "sim/internal/channel", detlint.GlobalRand)
}

func TestWallTime(t *testing.T) {
	dettest.Run(t, "testdata", "sim/internal/gnb", detlint.WallTime)
}

func TestMapRange(t *testing.T) {
	dettest.Run(t, "testdata", "maprange", detlint.MapRange)
}

func TestObsWriteOnly(t *testing.T) {
	dettest.Run(t, "testdata", "sim/internal/ue", detlint.ObsWriteOnly)
}

// TestObsWriteOnlyOutsideSim checks the scoping: a non-sim package may
// read metric values (that is what reporting does).
func TestObsWriteOnlyOutsideSim(t *testing.T) {
	dettest.Run(t, "testdata", "tools/report", detlint.ObsWriteOnly)
}

func TestFloatCmp(t *testing.T) {
	dettest.Run(t, "testdata", "floatcmp", detlint.FloatCmp)
}

// TestAllowDirectives drives the directive parser end to end: a used
// directive suppresses (trailing or on the line above), several
// directives may share one comment, unknown names and missing reasons
// are reported, and a directive covering no diagnostic is stale.
func TestAllowDirectives(t *testing.T) {
	dettest.Run(t, "testdata", "allowfix", detlint.WallTime)
}

func TestUnitFlow(t *testing.T) {
	dettest.Run(t, "testdata", "unitflow", detlint.UnitFlow)
}

func TestAllocFree(t *testing.T) {
	dettest.Run(t, "testdata", "allocfree", detlint.AllocFree)
}

// TestBufOwn exercises the ownership facts end to end: package stepper
// exports the owned-method fact from its doc comment, and the consumer
// package is checked against it.
func TestBufOwn(t *testing.T) {
	dettest.Run(t, "testdata", "bufown/consumer", detlint.BufOwn)
}

// TestBufOwnDefiningPackage runs the analyzer over the package that
// exports the fact: reusing its own buffer is not retention.
func TestBufOwnDefiningPackage(t *testing.T) {
	dettest.Run(t, "testdata", "bufown/stepper", detlint.BufOwn)
}

func TestSeedFlow(t *testing.T) {
	dettest.Run(t, "testdata", "sim/internal/fault", detlint.SeedFlow)
}

// TestSeedFlowScopedToSimPackages checks that fixed seeds outside the
// simulation core are not flagged (tooling carries no determinism
// contract).
func TestSeedFlowScopedToSimPackages(t *testing.T) {
	dettest.Run(t, "testdata", "tools/shuffle", detlint.SeedFlow)
}

// TestFixtureCoverage asserts every analyzer in the suite has at least
// one caught and one allowed fixture, so an analyzer cannot land
// without tests for both sides of its contract.
func TestFixtureCoverage(t *testing.T) {
	inv, err := dettest.ScanFixtures("testdata")
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range detlint.Suite() {
		if inv.Caught[a.Name] == 0 {
			t.Errorf("analyzer %s has no caught fixture (no want %q annotation)", a.Name, a.Name+": ...")
		}
		if inv.Allowed[a.Name] == 0 {
			t.Errorf("analyzer %s has no allowed fixture (no //detlint:allow %s directive)", a.Name, a.Name)
		}
	}
}

// TestGlobalRandScopedToSimPackages checks that the same global-rand
// pattern outside the simulation core is not flagged (CLI tooling may
// shuffle without a determinism contract).
func TestGlobalRandScopedToSimPackages(t *testing.T) {
	dettest.Run(t, "testdata", "tools/shuffle", detlint.GlobalRand)
}

func TestPolicy(t *testing.T) {
	for path, want := range map[string]bool{
		"github.com/midband5g/midband/internal/channel":                                                      true,
		"github.com/midband5g/midband/internal/gnb":                                                          true,
		"github.com/midband5g/midband/internal/core":                                                         true,
		"github.com/midband5g/midband/internal/obs":                                                          false,
		"github.com/midband5g/midband/internal/fleet":                                                        false,
		"github.com/midband5g/midband/internal/detlint":                                                      false,
		"github.com/midband5g/midband/cmd/campaign":                                                          false,
		"github.com/midband5g/midband/internal/channel [github.com/midband5g/midband/internal/channel.test]": true,
		"sim/internal/ue": true,
	} {
		if got := detlint.IsSimPackage(path); got != want {
			t.Errorf("IsSimPackage(%q) = %v, want %v", path, got, want)
		}
	}
	if !detlint.IsObsPackage("github.com/midband5g/midband/internal/obs") {
		t.Error("internal/obs not recognized as obs package")
	}
	if detlint.IsObsPackage("github.com/midband5g/midband/internal/core") {
		t.Error("internal/core wrongly recognized as obs package")
	}
}
