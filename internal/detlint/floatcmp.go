package detlint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// FloatCmp flags == and != between floating-point operands outside
// _test.go files. Exact float equality depends on evaluation order,
// compiler fusion and accumulated rounding — the kind of
// representation detail that breaks byte-identical aggregates across
// refactors. Compare against a tolerance, restructure the sentinel as
// an integer/bool, or — when exact bit equality is genuinely meant —
// annotate with //detlint:allow floatcmp <reason>.
//
// Two comparison classes are deliberately exempt:
//
//   - both operands compile-time constants (folded exactly), and
//   - comparison against the constant zero — the zero-value sentinel
//     ("field unset, apply default") and the division guard (x == 0)
//     are exact by construction and deterministic, and they are the
//     dominant idiom throughout the config structs.
//
// Comparing against any other constant (rank == 4) or between two
// computed values stays flagged: those change truth value when an
// upstream refactor perturbs rounding.
var FloatCmp = &Analyzer{
	Name: "floatcmp",
	Doc:  "flag ==/!= between floating-point operands outside tests",
	Run:  runFloatCmp,
}

func runFloatCmp(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			tx, ty := pass.Info.Types[be.X], pass.Info.Types[be.Y]
			if !isFloat(tx.Type) && !isFloat(ty.Type) {
				return true
			}
			if tx.Value != nil && ty.Value != nil {
				return true // constant-folded exactly at compile time
			}
			if isConstZero(tx) || isConstZero(ty) {
				return true // zero-sentinel / division guard: exact
			}
			pass.Report(be.OpPos, fmt.Sprintf(
				"floatcmp: %s between floating-point operands is representation-dependent; compare with a tolerance or restructure the sentinel (//detlint:allow floatcmp <reason> if bit equality is meant)",
				be.Op))
			return true
		})
	}
}

// isConstZero reports whether the operand is the compile-time constant
// zero (the exempt sentinel/guard idiom).
func isConstZero(tv types.TypeAndValue) bool {
	if tv.Value == nil {
		return false
	}
	switch tv.Value.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(tv.Value) == 0
	}
	return false
}

// isFloat reports whether t is (or is based on) a floating-point type.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
