package detlint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// UnitFlow is a units-of-measure dataflow check over the link-budget
// arithmetic. The codebase encodes units in names — SINRdB, RSRPdBm,
// noiseMW, CarrierFreqMHz, SCSkHz, optimismLin — and the PHY math mixes
// log-domain (dB, dBm), linear power (mW), frequency (Hz, kHz, MHz) and
// dimensionless linear factors. A wrong `+` between a dBm field and a
// mW field compiles silently and skews every KPI downstream; this
// analyzer makes the convention load-bearing.
//
// Units are seeded from identifier/field/parameter suffixes and
// propagated through assignments, so an unnamed local inherits the unit
// of its initializer. A value with no derivable unit can be annotated:
//
//	//detlint:unit dBm
//	rsrp, cell := strongestSite(...)
//
// The directive covers its own line and the line below and applies to
// every declared variable there that has no unit suffix of its own.
// Known dimensions: dB, dBm, mW, Hz, kHz, MHz, linear.
//
// Flagged patterns:
//
//   - adding/subtracting across unit families (dB + mW, dBm + Hz);
//   - adding two absolute powers in the log domain (dBm + dBm);
//   - mixing frequency scales in one expression (MHz + kHz);
//   - comparing or assigning incompatible units (dBm vs dB, MHz vs kHz);
//   - passing an argument whose unit contradicts the parameter's name
//     suffix (kHz value into a ...MHz parameter);
//   - double-applied conversions: 10^(x/10) of an already-linear value,
//     or log10 of a log-domain value.
//
// dBm ± dB (offsetting an absolute level) and dBm − dBm (a level
// difference, yielding dB) are the correct idioms and stay silent.
var UnitFlow = &Analyzer{
	Name: "unitflow",
	Doc:  "check units-of-measure consistency derived from naming conventions and //detlint:unit directives",
	Run:  runUnitFlow,
}

// unit is one of the tracked dimensions.
type unit uint8

const (
	unitUnknown unit = iota
	unitDB           // relative decibels
	unitDBm          // absolute power, dB-milliwatts
	unitMW           // linear power, milliwatts
	unitHz           // frequency, hertz
	unitKHz          // frequency, kilohertz
	unitMHz          // frequency, megahertz
	unitLin          // dimensionless linear factor
)

func (u unit) String() string {
	switch u {
	case unitDB:
		return "dB"
	case unitDBm:
		return "dBm"
	case unitMW:
		return "mW"
	case unitHz:
		return "Hz"
	case unitKHz:
		return "kHz"
	case unitMHz:
		return "MHz"
	case unitLin:
		return "linear"
	}
	return "unknown"
}

// unitFamily groups units whose members may legally meet in + and −.
type unitFamily uint8

const (
	famNone unitFamily = iota
	famLog             // dB, dBm: log-domain levels and offsets
	famMW              // linear power
	famFreq            // Hz, kHz, MHz
	famLin             // dimensionless
)

func (u unit) family() unitFamily {
	switch u {
	case unitDB, unitDBm:
		return famLog
	case unitMW:
		return famMW
	case unitHz, unitKHz, unitMHz:
		return famFreq
	case unitLin:
		return famLin
	}
	return famNone
}

// unitDims maps //detlint:unit directive spellings to units.
var unitDims = map[string]unit{
	"dB":     unitDB,
	"dBm":    unitDBm,
	"mW":     unitMW,
	"Hz":     unitHz,
	"kHz":    unitKHz,
	"MHz":    unitMHz,
	"linear": unitLin,
}

// unitFromName derives a unit from an identifier's suffix (or, for
// short parameter names, the whole name). Longer suffixes are tested
// first so RSRPdBm is dBm, not dB, and SCSkHz is kHz, not Hz.
func unitFromName(name string) unit {
	switch strings.ToLower(name) {
	case "db":
		return unitDB
	case "dbm":
		return unitDBm
	case "mw":
		return unitMW
	case "hz":
		return unitHz
	case "khz":
		return unitKHz
	case "mhz":
		return unitMHz
	case "lin":
		return unitLin
	}
	switch {
	case strings.HasSuffix(name, "dBm") || strings.HasSuffix(name, "DBm"):
		return unitDBm
	case strings.HasSuffix(name, "dB") || strings.HasSuffix(name, "DB"):
		return unitDB
	case strings.HasSuffix(name, "MHz"):
		return unitMHz
	case strings.HasSuffix(name, "kHz") || strings.HasSuffix(name, "KHz"):
		return unitKHz
	case strings.HasSuffix(name, "Hz"):
		return unitHz
	case strings.HasSuffix(name, "mW") || strings.HasSuffix(name, "MW"):
		return unitMW
	case strings.HasSuffix(name, "Lin") || strings.HasSuffix(name, "Linear"):
		return unitLin
	}
	return unitUnknown
}

// unitPrefix is the directive marker for annotating unnamed locals:
//
//	//detlint:unit dBm
const unitPrefix = "detlint:unit"

// unitDirective is one parsed //detlint:unit annotation.
type unitDirective struct {
	dim  unit
	line int
	pos  token.Pos
	used bool
}

// parseUnitDirectives extracts //detlint:unit directives from a file;
// unknown or missing dimensions are diagnostics.
func parseUnitDirectives(pass *Pass, file *ast.File) []*unitDirective {
	var ds []*unitDirective
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//"+unitPrefix)
			if !ok || (text != "" && text[0] != ' ' && text[0] != '\t') {
				continue
			}
			fields := strings.Fields(text)
			if len(fields) == 0 {
				pass.Report(c.Pos(), "unitflow: malformed //detlint:unit: missing dimension (dB, dBm, mW, Hz, kHz, MHz, linear)")
				continue
			}
			dim, ok := unitDims[fields[0]]
			if !ok {
				pass.Report(c.Pos(), fmt.Sprintf(
					"unitflow: unknown dimension %q in //detlint:unit (known: dB, dBm, mW, Hz, kHz, MHz, linear)", fields[0]))
				continue
			}
			ds = append(ds, &unitDirective{
				dim:  dim,
				line: pass.Fset.Position(c.Pos()).Line,
				pos:  c.Pos(),
			})
		}
	}
	return ds
}

// unitEnv resolves expression units for one package.
type unitEnv struct {
	pass *Pass
	// explicit holds //detlint:unit-annotated variables and fields.
	explicit map[types.Object]unit
	// inferred holds units propagated through assignments.
	inferred map[types.Object]unit
}

// unitOfObj resolves a variable/constant unit: directive first, then
// name suffix, then dataflow inference.
func (e *unitEnv) unitOfObj(obj types.Object) unit {
	if obj == nil {
		return unitUnknown
	}
	if u, ok := e.explicit[obj]; ok {
		return u
	}
	if u := unitFromName(obj.Name()); u != unitUnknown {
		return u
	}
	return e.inferred[obj]
}

// declaredUnit resolves the unit an lvalue claims via its name or a
// directive — dataflow inference is deliberately excluded, so only
// stated intent participates in assignment checks.
func (e *unitEnv) declaredUnit(x ast.Expr) unit {
	switch x := x.(type) {
	case *ast.Ident:
		obj := e.pass.Info.Defs[x]
		if obj == nil {
			obj = e.pass.Info.Uses[x]
		}
		if obj == nil {
			return unitUnknown
		}
		if u, ok := e.explicit[obj]; ok {
			return u
		}
		return unitFromName(obj.Name())
	case *ast.SelectorExpr:
		obj := e.pass.Info.Uses[x.Sel]
		if _, ok := obj.(*types.Var); !ok {
			return unitUnknown
		}
		if u, ok := e.explicit[obj]; ok {
			return u
		}
		return unitFromName(obj.Name())
	case *ast.IndexExpr:
		return e.declaredUnit(x.X)
	case *ast.ParenExpr:
		return e.declaredUnit(x.X)
	}
	return unitUnknown
}

// unitOf infers the unit of an arbitrary expression.
func (e *unitEnv) unitOf(x ast.Expr) unit {
	switch x := x.(type) {
	case *ast.ParenExpr:
		return e.unitOf(x.X)
	case *ast.Ident:
		obj := e.pass.Info.Uses[x]
		if obj == nil {
			obj = e.pass.Info.Defs[x]
		}
		switch obj.(type) {
		case *types.Var, *types.Const:
			return e.unitOfObj(obj)
		}
		return unitUnknown
	case *ast.SelectorExpr:
		obj := e.pass.Info.Uses[x.Sel]
		switch obj.(type) {
		case *types.Var, *types.Const:
			return e.unitOfObj(obj)
		}
		return unitUnknown
	case *ast.IndexExpr:
		return e.unitOf(x.X)
	case *ast.UnaryExpr:
		if x.Op == token.SUB || x.Op == token.ADD {
			return e.unitOf(x.X)
		}
		return unitUnknown
	case *ast.BinaryExpr:
		return e.unitOfBinary(x)
	case *ast.CallExpr:
		return e.unitOfCall(x)
	}
	return unitUnknown
}

// unitOfBinary infers the result unit of an arithmetic expression.
func (e *unitEnv) unitOfBinary(be *ast.BinaryExpr) unit {
	ux, uy := e.unitOf(be.X), e.unitOf(be.Y)
	switch be.Op {
	case token.ADD, token.SUB:
		if ux == unitUnknown || uy == unitUnknown {
			return unitUnknown
		}
		if ux == uy {
			if ux == unitDBm {
				if be.Op == token.SUB {
					return unitDB // level difference
				}
				return unitUnknown // dBm + dBm is flagged, no meaningful unit
			}
			return ux
		}
		// dBm offset by a dB gain/loss stays an absolute level.
		if (ux == unitDBm && uy == unitDB) || (ux == unitDB && uy == unitDBm && be.Op == token.ADD) {
			return unitDBm
		}
		return unitUnknown
	case token.MUL:
		if u := e.tenLog10Unit(be); u != unitUnknown {
			return u
		}
		if (ux == unitMW && uy == unitLin) || (ux == unitLin && uy == unitMW) {
			return unitMW
		}
		if ux == unitLin && uy == unitLin {
			return unitLin
		}
		return unitUnknown
	case token.QUO:
		if ux != unitUnknown && ux == uy {
			return unitLin // ratio of like quantities
		}
		if ux == unitMW && uy == unitLin {
			return unitMW
		}
		return unitUnknown
	}
	return unitUnknown
}

// tenLog10Unit recognizes the 10*math.Log10(x) conversion idiom and
// returns dBm for linear power input, dB for a linear ratio.
func (e *unitEnv) tenLog10Unit(be *ast.BinaryExpr) unit {
	var call *ast.CallExpr
	if isConstTen(e.pass.Info, be.X) {
		call, _ = unparen(be.Y).(*ast.CallExpr)
	} else if isConstTen(e.pass.Info, be.Y) {
		call, _ = unparen(be.X).(*ast.CallExpr)
	}
	if call == nil || !isMathCall(e.pass.Info, call, "Log10") || len(call.Args) != 1 {
		return unitUnknown
	}
	switch e.unitOf(call.Args[0]) {
	case unitMW:
		return unitDBm
	case unitLin:
		return unitDB
	}
	return unitUnknown
}

// unitOfCall infers a unit from conversions, the math helpers, and
// callee name suffixes (b.CenterMHz() is MHz).
func (e *unitEnv) unitOfCall(call *ast.CallExpr) unit {
	if tv, ok := e.pass.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		return e.unitOf(call.Args[0]) // conversion preserves the unit
	}
	if num := pow1010Arg(e.pass.Info, call); num != nil {
		switch e.unitOf(num) {
		case unitDBm:
			return unitMW
		case unitDB:
			return unitLin
		}
		return unitUnknown
	}
	if isMathCall(e.pass.Info, call, "Abs") && len(call.Args) == 1 {
		return e.unitOf(call.Args[0])
	}
	if (isMathCall(e.pass.Info, call, "Max") || isMathCall(e.pass.Info, call, "Min")) && len(call.Args) == 2 {
		if ua := e.unitOf(call.Args[0]); ua != unitUnknown && ua == e.unitOf(call.Args[1]) {
			return ua
		}
		return unitUnknown
	}
	if fn := calleeFunc(e.pass.Info, call); fn != nil {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Results().Len() == 1 {
			return unitFromName(fn.Name())
		}
	}
	return unitUnknown
}

// pow1010Arg matches math.Pow(10, x/10) and math.Pow(10, x/20) and
// returns the numerator x, or nil when the call is not that idiom.
func pow1010Arg(info *types.Info, call *ast.CallExpr) ast.Expr {
	if !isMathCall(info, call, "Pow") || len(call.Args) != 2 || !isConstTen(info, call.Args[0]) {
		return nil
	}
	q, ok := unparen(call.Args[1]).(*ast.BinaryExpr)
	if !ok || q.Op != token.QUO {
		return nil
	}
	if !isConstTen(info, q.Y) && !isConstTwenty(info, q.Y) {
		return nil
	}
	return q.X
}

// isMathCall reports whether call invokes math.<name>.
func isMathCall(info *types.Info, call *ast.CallExpr, name string) bool {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	return pkgPathOf(info, sel.X) == "math"
}

// calleeFunc resolves the called function or method, or nil.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

func unparen(x ast.Expr) ast.Expr {
	for {
		p, ok := x.(*ast.ParenExpr)
		if !ok {
			return x
		}
		x = p.X
	}
}

// isConstTen reports whether x is the compile-time constant 10.
func isConstTen(info *types.Info, x ast.Expr) bool { return isConstVal(info, x, 10) }

// isConstTwenty reports whether x is the compile-time constant 20 (the
// amplitude-quantity form of the dB conversion).
func isConstTwenty(info *types.Info, x ast.Expr) bool { return isConstVal(info, x, 20) }

func isConstVal(info *types.Info, x ast.Expr, want int64) bool {
	tv, ok := info.Types[x]
	if !ok || tv.Value == nil {
		return false
	}
	v := constant.ToInt(tv.Value)
	n, exact := constant.Int64Val(v)
	return exact && n == want
}

func runUnitFlow(pass *Pass) {
	env := &unitEnv{
		pass:     pass,
		explicit: map[types.Object]unit{},
		inferred: map[types.Object]unit{},
	}

	// Pass 1: parse directives and attach them to the unit-less
	// variables declared on the covered lines.
	directives := make(map[*ast.File][]*unitDirective, len(pass.Files))
	for _, f := range pass.Files {
		directives[f] = parseUnitDirectives(pass, f)
	}
	for _, f := range pass.Files {
		ds := directives[f]
		if len(ds) == 0 {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			v, ok := pass.Info.Defs[id].(*types.Var)
			if !ok || v.Name() == "_" || unitFromName(v.Name()) != unitUnknown {
				return true
			}
			line := pass.Fset.Position(id.Pos()).Line
			for _, d := range ds {
				if d.line == line || d.line == line-1 {
					env.explicit[v] = d.dim
					d.used = true
				}
			}
			return true
		})
		for _, d := range ds {
			if !d.used {
				pass.Report(d.pos, fmt.Sprintf(
					"unitflow: //detlint:unit %s attaches to no unit-less variable on this or the next line — remove it or move it to the declaration", d.dim))
			}
		}
	}

	// Pass 2: walk expressions in source order, inferring units through
	// assignments and checking the mixing rules.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				env.checkAssign(n)
			case *ast.BinaryExpr:
				env.checkBinary(n)
			case *ast.CallExpr:
				env.checkCall(n)
			case *ast.CompositeLit:
				env.checkCompositeLit(n)
			}
			return true
		})
	}
}

// checkAssign verifies unit agreement between each lvalue's declared
// unit and its value, and propagates inferred units to unit-less
// locals.
func (e *unitEnv) checkAssign(a *ast.AssignStmt) {
	if len(a.Lhs) != len(a.Rhs) {
		return // multi-value call: no per-result inference
	}
	// Compound assignment is sugar for lhs = lhs <op> rhs: check it with
	// the binary mixing rules (so rsrpDBm += shadowDB stays legal) and
	// then compare the combined unit against the declared one.
	if op, ok := compoundOp(a.Tok); ok {
		syn := &ast.BinaryExpr{X: a.Lhs[0], OpPos: a.TokPos, Op: op, Y: a.Rhs[0]}
		e.checkBinary(syn)
		lu, ru := e.declaredUnit(a.Lhs[0]), e.unitOfBinary(syn)
		if lu != unitUnknown && ru != unitUnknown && lu != ru {
			e.pass.Report(a.Rhs[0].Pos(), fmt.Sprintf(
				"unitflow: %s leaves %s holding a %s value but it is declared %s — convert explicitly or fix the name",
				a.Tok, exprString(a.Lhs[0]), ru, lu))
		}
		return
	}
	for i, lhs := range a.Lhs {
		rhs := a.Rhs[i]
		lu := e.declaredUnit(lhs)
		ru := e.unitOf(rhs)
		if lu != unitUnknown && ru != unitUnknown && lu != ru {
			e.pass.Report(rhs.Pos(), fmt.Sprintf(
				"unitflow: assigning a %s expression to %s, declared %s — convert explicitly or fix the name",
				ru, exprString(lhs), lu))
			continue
		}
		if lu == unitUnknown && ru != unitUnknown {
			if id, ok := lhs.(*ast.Ident); ok {
				obj := e.pass.Info.Defs[id]
				if obj == nil {
					obj = e.pass.Info.Uses[id]
				}
				if v, ok := obj.(*types.Var); ok {
					if _, seen := e.inferred[v]; !seen {
						e.inferred[v] = ru
					}
				}
			}
		}
	}
}

// compoundOp maps a compound-assignment token to the binary operator it
// abbreviates; bit and shift assignments carry no unit semantics.
func compoundOp(tok token.Token) (token.Token, bool) {
	switch tok {
	case token.ADD_ASSIGN:
		return token.ADD, true
	case token.SUB_ASSIGN:
		return token.SUB, true
	case token.MUL_ASSIGN:
		return token.MUL, true
	case token.QUO_ASSIGN:
		return token.QUO, true
	}
	return token.ILLEGAL, false
}

// checkBinary applies the additive and comparison mixing rules.
func (e *unitEnv) checkBinary(be *ast.BinaryExpr) {
	switch be.Op {
	case token.ADD, token.SUB:
		ux, uy := e.unitOf(be.X), e.unitOf(be.Y)
		if ux == unitUnknown || uy == unitUnknown {
			return
		}
		switch {
		case ux == unitDBm && uy == unitDBm && be.Op == token.ADD:
			e.pass.Report(be.OpPos,
				"unitflow: adding two absolute powers (dBm + dBm) in the log domain; convert to mW, sum, and convert back")
		case ux.family() != uy.family():
			e.pass.Report(be.OpPos, fmt.Sprintf(
				"unitflow: %s mixes %s and %s operands; convert to a common unit first", be.Op, ux, uy))
		case ux.family() == famFreq && ux != uy:
			e.pass.Report(be.OpPos, fmt.Sprintf(
				"unitflow: frequency-scale mismatch: %s %s %s; scale to a common unit first", ux, be.Op, uy))
		}
	case token.LSS, token.GTR, token.LEQ, token.GEQ, token.EQL, token.NEQ:
		ux, uy := e.unitOf(be.X), e.unitOf(be.Y)
		if ux == unitUnknown || uy == unitUnknown || ux == uy {
			return
		}
		e.pass.Report(be.OpPos, fmt.Sprintf(
			"unitflow: comparing %s against %s; these are different units", ux, uy))
	}
}

// checkCall flags argument units that contradict the parameter's name
// suffix and double-applied dB↔linear conversions.
func (e *unitEnv) checkCall(call *ast.CallExpr) {
	if num := pow1010Arg(e.pass.Info, call); num != nil {
		switch e.unitOf(num) {
		case unitMW, unitLin, unitHz, unitKHz, unitMHz:
			e.pass.Report(call.Pos(), fmt.Sprintf(
				"unitflow: 10^(x/10) applied to a %s value, which is already linear — double conversion", e.unitOf(num)))
		}
		return
	}
	if isMathCall(e.pass.Info, call, "Log10") && len(call.Args) == 1 {
		switch e.unitOf(call.Args[0]) {
		case unitDB, unitDBm:
			e.pass.Report(call.Pos(), fmt.Sprintf(
				"unitflow: log10 of a %s value, which is already in the log domain — double conversion", e.unitOf(call.Args[0])))
		}
		return
	}
	if tv, ok := e.pass.Info.Types[call.Fun]; ok && tv.IsType() {
		return // conversion, not a call
	}
	fn := calleeFunc(e.pass.Info, call)
	if fn == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	n := sig.Params().Len()
	if sig.Variadic() {
		n--
	}
	if n > len(call.Args) {
		n = len(call.Args)
	}
	for i := 0; i < n; i++ {
		pu := unitFromName(sig.Params().At(i).Name())
		if pu == unitUnknown {
			continue
		}
		au := e.unitOf(call.Args[i])
		if au == unitUnknown || au == pu {
			continue
		}
		e.pass.Report(call.Args[i].Pos(), fmt.Sprintf(
			"unitflow: argument is %s but parameter %s of %s expects %s",
			au, sig.Params().At(i).Name(), fn.Name(), pu))
	}
}

// checkCompositeLit verifies keyed struct fields against their value's
// unit (Sample{SINRdB: rsrqMW} is a violation).
func (e *unitEnv) checkCompositeLit(cl *ast.CompositeLit) {
	for _, el := range cl.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		obj := e.pass.Info.Uses[key]
		if _, isVar := obj.(*types.Var); !isVar {
			continue
		}
		fu := e.unitOfObj(obj)
		if fu == unitUnknown {
			continue
		}
		vu := e.unitOf(kv.Value)
		if vu == unitUnknown || vu == fu {
			continue
		}
		e.pass.Report(kv.Value.Pos(), fmt.Sprintf(
			"unitflow: field %s is %s but its value is %s", key.Name, fu, vu))
	}
}

// exprString renders a short lvalue description for diagnostics.
func exprString(x ast.Expr) string {
	switch x := x.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	case *ast.IndexExpr:
		return exprString(x.X) + "[...]"
	case *ast.ParenExpr:
		return exprString(x.X)
	}
	return "lvalue"
}
