package detlint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// GlobalRand forbids math/rand's package-level convenience functions
// (and rand.Seed) inside the simulation core. The package-level
// functions draw from a process-global source that is shared across
// goroutines, so concurrent fleet jobs would interleave draws and the
// sequence would depend on worker count and scheduling — exactly the
// nondeterminism the contract rules out. Randomness must flow through a
// seeded *rand.Rand owned by the component, as internal/channel does:
//
//	rng: rand.New(rand.NewSource(cfg.Seed))
var GlobalRand = &Analyzer{
	Name: "globalrand",
	Doc:  "forbid math/rand package-level functions in simulation packages; use a seeded *rand.Rand",
	Run:  runGlobalRand,
}

// randConstructors are the math/rand and math/rand/v2 functions that
// build an owned generator or source rather than drawing from the
// global one. Everything else at package level is a global draw.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

func runGlobalRand(pass *Pass) {
	if !IsSimPackage(pass.Pkg.Path()) {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			path := pkgPathOf(pass.Info, sel.X)
			if path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			if _, isFunc := pass.Info.Uses[sel.Sel].(*types.Func); !isFunc {
				return true // type names like rand.Rand, rand.Source
			}
			name := sel.Sel.Name
			if randConstructors[name] {
				return true
			}
			verb := "draws from the process-global source"
			if name == "Seed" {
				verb = "reseeds the process-global source"
			}
			pass.Report(sel.Pos(), fmt.Sprintf(
				"globalrand: rand.%s %s, which is shared across fleet workers; use a seeded *rand.Rand (rand.New(rand.NewSource(seed)))",
				name, verb))
			return true
		})
	}
}
