package detlint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// SeedFlow verifies that every RNG construction in the simulation core
// derives its seed through fleet.SplitSeed. PR 3 centralized seed
// arithmetic there — SplitSeed(base, domain, index) mixes the campaign
// seed, a domain string and an index through a full-avalanche finalizer
// so sibling streams are uncorrelated — but nothing stopped new code
// from reviving `seed+i`, an xor, or a literal reseed, all of which
// produce correlated or colliding streams across the fleet.
//
// At each rand.NewSource / rand.NewPCG / (*rand.Rand).Seed site the
// seed expression must trace to one of:
//
//   - a fleet.SplitSeed (or fleet.SeedFor) call,
//   - a config field or function parameter (the caller already derived
//     it), or
//   - a local variable assigned from one of the above.
//
// Literal seeds, constant seeds, and raw arithmetic (`seed+i`,
// `seed^0x9e37`, shifts) are flagged. Calls to other helpers are
// trusted — the helper's own body is checked where it is defined.
var SeedFlow = &Analyzer{
	Name: "seedflow",
	Doc:  "require RNG seeds in simulation packages to derive from fleet.SplitSeed",
	Run:  runSeedFlow,
}

// seedConstructors are the math/rand (v1 and v2) constructors whose
// arguments are seeds.
var seedConstructors = map[string]bool{
	"NewSource": true,
	"NewPCG":    true,
}

func runSeedFlow(pass *Pass) {
	if !IsSimPackage(pass.Pkg.Path()) {
		return
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkSeedFlowFunc(pass, fd)
		}
	}
}

func checkSeedFlowFunc(pass *Pass, fd *ast.FuncDecl) {
	// assigns records the last RHS assigned to each local, so a seed
	// routed through `base := fleet.SplitSeed(...)` traces back.
	assigns := map[types.Object]ast.Expr{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				if id, ok := unparen(lhs).(*ast.Ident); ok {
					obj := pass.Info.Defs[id]
					if obj == nil {
						obj = pass.Info.Uses[id]
					}
					if obj != nil {
						assigns[obj] = n.Rhs[i]
					}
				}
			}
		case *ast.DeclStmt:
			if gd, ok := n.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok && len(vs.Values) == len(vs.Names) {
						for i, name := range vs.Names {
							if obj := pass.Info.Defs[name]; obj != nil {
								assigns[obj] = vs.Values[i]
							}
						}
					}
				}
			}
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if path := pkgPathOf(pass.Info, sel.X); path == "math/rand" || path == "math/rand/v2" {
			if seedConstructors[sel.Sel.Name] {
				for _, arg := range call.Args {
					checkSeedExpr(pass, arg, assigns, sel.Sel.Name)
				}
			}
			return true
		}
		// (*rand.Rand).Seed reseeds an owned generator in place.
		if fn, ok := pass.Info.Uses[sel.Sel].(*types.Func); ok && fn.Name() == "Seed" {
			if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
				if ptr, ok := recv.Type().(*types.Pointer); ok {
					if named, ok := ptr.Elem().(*types.Named); ok &&
						named.Obj().Name() == "Rand" && named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "math/rand" {
						for _, arg := range call.Args {
							checkSeedExpr(pass, arg, assigns, "Seed")
						}
					}
				}
			}
		}
		return true
	})
}

// checkSeedExpr reports seed expressions that do not trace to
// fleet.SplitSeed, a field, or a parameter.
func checkSeedExpr(pass *Pass, seed ast.Expr, assigns map[types.Object]ast.Expr, site string) {
	if why, bad := badSeed(pass, seed, assigns, map[types.Object]bool{}); bad {
		pass.Report(seed.Pos(), fmt.Sprintf(
			"seedflow: rand.%s seed %s; derive it with fleet.SplitSeed(base, domain, index) so sibling streams stay uncorrelated", site, why))
	}
}

// badSeed classifies a seed expression. Only provably hand-rolled
// derivations are bad: constants, and arithmetic/xor/shift mixing.
// Selectors, parameters, and calls (fleet.SplitSeed above all) pass.
func badSeed(pass *Pass, x ast.Expr, assigns map[types.Object]ast.Expr, visiting map[types.Object]bool) (string, bool) {
	if tv, ok := pass.Info.Types[x]; ok && tv.Value != nil {
		return "is a constant", true
	}
	switch x := unparen(x).(type) {
	case *ast.BinaryExpr:
		switch x.Op {
		case token.ADD, token.SUB, token.MUL, token.QUO, token.REM,
			token.XOR, token.OR, token.AND, token.AND_NOT, token.SHL, token.SHR:
			return fmt.Sprintf("is derived with raw %s arithmetic", x.Op), true
		}
		return "", false
	case *ast.UnaryExpr:
		return badSeed(pass, x.X, assigns, visiting)
	case *ast.CallExpr:
		// A conversion wraps its operand; any other call is trusted
		// (fleet.SplitSeed foremost — its result is the contract).
		if tv, ok := pass.Info.Types[x.Fun]; ok && tv.IsType() && len(x.Args) == 1 {
			return badSeed(pass, x.Args[0], assigns, visiting)
		}
		return "", false
	case *ast.Ident:
		obj := pass.Info.Uses[x]
		if obj == nil {
			obj = pass.Info.Defs[x]
		}
		if obj == nil || visiting[obj] {
			return "", false
		}
		if rhs, ok := assigns[obj]; ok {
			visiting[obj] = true
			why, bad := badSeed(pass, rhs, assigns, visiting)
			if bad {
				return fmt.Sprintf("(via %s) %s", x.Name, why), true
			}
		}
		return "", false
	}
	return "", false
}
