package detlint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// BufOwn flags retention of results returned by Step/Scan-style
// methods documented as owned by the receiver until the next call. The
// slot path reuses its result buffers (gnb.Cell.Step's Allocs,
// net5g.Link.Step's KPI slices, xcol.Scanner.Next's Block), so a caller
// that stores such a result in a field or global, sends it on a
// channel, or captures it in a goroutine is reading memory the next
// Step call will overwrite.
//
// Ownership is a fact, not a heuristic at the call site: CollectFacts
// exports the set of owned methods per package (detected from the doc
// comment contract "owned by the ... until the next"), the vet driver
// threads each unit its dependencies' facts, and this analyzer resolves
// the callee against that set. Within one package the facts are
// computed directly.
//
// Results are tainted through local assignments and field reads; a
// sink fires only when the escaping value's type still holds
// references (a slice, pointer, or map — copying a float out of an
// owned struct is fine). Laundering through an explicit copy
// (append([]T(nil), s...), copy into an owned buffer) clears the
// taint: builtin results are never tainted.
var BufOwn = &Analyzer{
	Name: "bufown",
	Doc:  "flag retention of buffers returned by methods documented owned-until-next-call",
	Run:  runBufOwn,
}

func runBufOwn(pass *Pass) {
	owned := map[string]bool{}
	for _, facts := range pass.DepFacts {
		for _, m := range facts.OwnedMethods {
			owned[m] = true
		}
	}
	for _, m := range CollectFacts(pass.Fset, pass.Files, pass.Info).OwnedMethods {
		owned[m] = true
	}
	if len(owned) == 0 {
		return
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkBufOwnFunc(pass, fd, owned)
		}
	}
}

// checkBufOwnFunc taints owned results inside one function and reports
// the escapes.
func checkBufOwnFunc(pass *Pass, fd *ast.FuncDecl, owned map[string]bool) {
	// Receiver and parameters: storing into them escapes the frame.
	boundary := map[types.Object]bool{}
	markBoundary := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				if obj := pass.Info.Defs[name]; obj != nil {
					boundary[obj] = true
				}
			}
		}
	}
	markBoundary(fd.Recv)
	markBoundary(fd.Type.Params)

	tainted := map[types.Object]string{} // local var -> owning method name

	// ownedCall returns the owned method's display name when call
	// resolves to one.
	ownedCall := func(x ast.Expr) (string, bool) {
		call, ok := unparen(x).(*ast.CallExpr)
		if !ok {
			return "", false
		}
		fn := calleeFunc(pass.Info, call)
		if fn == nil || !owned[fn.FullName()] {
			return "", false
		}
		return fn.Name(), true
	}

	// taintedExpr resolves an expression to the owning method when the
	// expression reads an owned result (directly or through a local).
	var taintedExpr func(x ast.Expr) (string, bool)
	taintedExpr = func(x ast.Expr) (string, bool) {
		switch x := unparen(x).(type) {
		case *ast.Ident:
			obj := pass.Info.Uses[x]
			if obj == nil {
				obj = pass.Info.Defs[x]
			}
			if m, ok := tainted[obj]; ok {
				return m, true
			}
			return "", false
		case *ast.SelectorExpr:
			return taintedExpr(x.X)
		case *ast.IndexExpr:
			return taintedExpr(x.X)
		case *ast.StarExpr:
			return taintedExpr(x.X)
		case *ast.SliceExpr:
			return taintedExpr(x.X)
		case *ast.UnaryExpr:
			return taintedExpr(x.X)
		case *ast.CallExpr:
			return ownedCall(x)
		}
		return "", false
	}

	// escapes reports whether storing through lhs leaves the frame: a
	// package-level variable, or anything rooted at the receiver or a
	// parameter.
	var rootObj func(x ast.Expr) types.Object
	rootObj = func(x ast.Expr) types.Object {
		switch x := unparen(x).(type) {
		case *ast.Ident:
			obj := pass.Info.Uses[x]
			if obj == nil {
				obj = pass.Info.Defs[x]
			}
			return obj
		case *ast.SelectorExpr:
			return rootObj(x.X)
		case *ast.IndexExpr:
			return rootObj(x.X)
		case *ast.StarExpr:
			return rootObj(x.X)
		}
		return nil
	}
	escapes := func(lhs ast.Expr) bool {
		obj := rootObj(lhs)
		if obj == nil {
			return false
		}
		if boundary[obj] {
			// Plain reassignment of a parameter local stays in-frame;
			// only stores *through* it (x.f, x[i], *x) escape.
			if _, isIdent := unparen(lhs).(*ast.Ident); isIdent {
				return false
			}
			return true
		}
		return obj.Parent() == pass.Pkg.Scope() // package-level var
	}

	report := func(pos ast.Node, method, how string) {
		pass.Report(pos.Pos(), fmt.Sprintf(
			"bufown: result of %s is owned by its receiver until the next call; %s retains the buffer — copy what outlives the call", method, how))
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			// Taint LHS locals whose RHS reads an owned result.
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					m, isTainted := taintedExpr(n.Rhs[i])
					if !isTainted {
						continue
					}
					if !holdsRefs(pass.Info.Types[n.Rhs[i]].Type) {
						continue // copying a scalar out is safe
					}
					if escapes(n.Lhs[i]) {
						report(n.Rhs[i], m, "storing it in a field or global")
						continue
					}
					if id, ok := unparen(n.Lhs[i]).(*ast.Ident); ok {
						obj := pass.Info.Defs[id]
						if obj == nil {
							obj = pass.Info.Uses[id]
						}
						if obj != nil {
							tainted[obj] = m
						}
					}
				}
			} else if len(n.Rhs) == 1 {
				// Multi-value: x, ok := s.Next() — taint every LHS that
				// holds references.
				if m, ok := ownedCall(n.Rhs[0]); ok {
					for _, lhs := range n.Lhs {
						id, ok := unparen(lhs).(*ast.Ident)
						if !ok {
							continue
						}
						obj := pass.Info.Defs[id]
						if obj == nil {
							obj = pass.Info.Uses[id]
						}
						if obj == nil || !holdsRefs(obj.Type()) {
							continue
						}
						if escapes(lhs) {
							report(lhs, m, "storing it in a field or global")
							continue
						}
						tainted[obj] = m
					}
				}
			}
		case *ast.SendStmt:
			if m, ok := taintedExpr(n.Value); ok && holdsRefs(pass.Info.Types[n.Value].Type) {
				report(n.Value, m, "sending it on a channel")
			}
		case *ast.GoStmt:
			if m, ok := goCaptures(pass, n, tainted); ok {
				report(n, m, "capturing it in a goroutine")
			}
		}
		return true
	})
}

// goCaptures reports whether the go statement's function or arguments
// reference a tainted value.
func goCaptures(pass *Pass, g *ast.GoStmt, tainted map[types.Object]string) (string, bool) {
	method := ""
	ast.Inspect(g.Call, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || method != "" {
			return method == ""
		}
		obj := pass.Info.Uses[id]
		if obj == nil {
			return true
		}
		if m, ok := tainted[obj]; ok {
			method = m
		}
		return true
	})
	return method, method != ""
}

// holdsRefs reports whether values of t carry references into the
// owned buffer: slices, pointers, maps, channels, interfaces, or
// structs/arrays containing any of those.
func holdsRefs(t types.Type) bool {
	return holdsRefsDepth(t, 0, map[types.Type]bool{})
}

func holdsRefsDepth(t types.Type, depth int, seen map[types.Type]bool) bool {
	if t == nil || depth > 10 || seen[t] {
		return false
	}
	seen[t] = true
	switch u := t.Underlying().(type) {
	case *types.Slice, *types.Pointer, *types.Map, *types.Chan, *types.Interface, *types.Signature:
		return true
	case *types.Array:
		return holdsRefsDepth(u.Elem(), depth+1, seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if holdsRefsDepth(u.Field(i).Type(), depth+1, seen) {
				return true
			}
		}
	}
	return false
}
