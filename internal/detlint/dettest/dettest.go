// Package dettest is a small analysistest-style harness for the detlint
// suite. Fixture packages live under testdata/src/<import-path>/ and
// annotate the lines where diagnostics are expected:
//
//	rand.Intn(6) // want "globalrand"
//
// The quoted string is a regular expression matched against the
// diagnostic message. A want comment alone on its line applies to the
// next line, so expectations can precede //detlint:allow directives
// (which would otherwise swallow a trailing comment as their reason).
//
// Fixtures are parsed and type-checked offline: imports resolve first
// against the fixture tree, then against the standard library compiled
// from GOROOT source, so no network or pre-built export data is needed.
package dettest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"github.com/midband5g/midband/internal/detlint"
)

// Run type-checks the fixture package at testdata/src/<pkgPath> under
// dir, applies the analyzers through the full directive machinery, and
// compares the diagnostics against the // want annotations.
func Run(t *testing.T, dir, pkgPath string, analyzers ...*detlint.Analyzer) {
	t.Helper()
	fset := token.NewFileSet()
	ld := &loader{
		fset: fset,
		root: filepath.Join(dir, "src"),
		std:  importer.ForCompiler(fset, "source", nil),
		pkgs: map[string]*loaded{},
	}
	lp, err := ld.load(pkgPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", pkgPath, err)
	}

	// Fixture dependencies export facts exactly like real dependencies
	// do through the vet driver, so cross-package analyzers (bufown)
	// are exercised end to end.
	depFacts := map[string]*detlint.Facts{}
	for path, dep := range ld.pkgs {
		if path == pkgPath {
			continue
		}
		depFacts[path] = detlint.CollectFacts(fset, dep.files, dep.info)
	}

	diags := detlint.RunAnalyzersWithFacts(fset, lp.files, lp.pkg, lp.info, analyzers, depFacts)
	checkExpectations(t, fset, lp.files, diags)
}

// loaded is one type-checked fixture package.
type loaded struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

// loader resolves fixture imports from the testdata tree first and the
// standard library (type-checked from GOROOT source) otherwise.
type loader struct {
	fset *token.FileSet
	root string
	std  types.Importer
	pkgs map[string]*loaded
}

func (l *loader) Import(path string) (*types.Package, error) {
	if dir := filepath.Join(l.root, filepath.FromSlash(path)); isDir(dir) {
		lp, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return lp.pkg, nil
	}
	return l.std.Import(path)
}

func (l *loader) load(pkgPath string) (*loaded, error) {
	if lp, ok := l.pkgs[pkgPath]; ok {
		return lp, nil
	}
	dir := filepath.Join(l.root, filepath.FromSlash(pkgPath))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(pkgPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", pkgPath, err)
	}
	lp := &loaded{pkg: pkg, files: files, info: info}
	l.pkgs[pkgPath] = lp
	return lp, nil
}

func isDir(path string) bool {
	fi, err := os.Stat(path)
	return err == nil && fi.IsDir()
}

// expectation is one parsed want annotation.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	met  bool
}

// wantRE matches `want "regexp"` occurrences inside a comment; the
// pattern may contain escaped quotes.
var wantRE = regexp.MustCompile(`want "((?:[^"\\]|\\.)*)"`)

// checkExpectations diffs diagnostics against the fixtures' want
// comments, failing the test on unmatched sides.
func checkExpectations(t *testing.T, fset *token.FileSet, files []*ast.File, diags []detlint.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range files {
		name := fset.Position(f.Pos()).Filename
		src, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		for i, lineText := range strings.Split(string(src), "\n") {
			ci := strings.Index(lineText, "//")
			if ci < 0 {
				continue
			}
			ms := wantRE.FindAllStringSubmatch(lineText[ci:], -1)
			if ms == nil {
				continue
			}
			// A want comment alone on its line annotates the next line.
			target := i + 1
			if strings.TrimSpace(lineText[:ci]) == "" {
				target = i + 2
			}
			for _, m := range ms {
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %q: %v", name, i+1, m[1], err)
				}
				wants = append(wants, &expectation{file: name, line: target, re: re})
			}
		}
	}

	// Collect every mismatch on both sides before failing, so one run
	// shows the full diff — all unexpected diagnostics and all missed
	// positions, not just the first.
	var unexpected []string
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if !w.met && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.met = true
				matched = true
				break
			}
		}
		if !matched {
			unexpected = append(unexpected, fmt.Sprintf("%s:%d: %s", pos.Filename, pos.Line, d.Message))
		}
	}
	sort.Slice(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	var missed []string
	for _, w := range wants {
		if !w.met {
			missed = append(missed, fmt.Sprintf("%s:%d: want %q", w.file, w.line, w.re))
		}
	}
	if len(unexpected) > 0 {
		t.Errorf("%d unexpected diagnostic(s):\n  %s", len(unexpected), strings.Join(unexpected, "\n  "))
	}
	if len(missed) > 0 {
		t.Errorf("%d expected diagnostic(s) not reported:\n  %s", len(missed), strings.Join(missed, "\n  "))
	}
}
