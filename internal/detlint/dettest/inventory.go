package dettest

import (
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// Inventory summarizes the fixture tree's coverage per analyzer: how
// many caught cases (want annotations whose pattern names the
// analyzer) and how many allowed cases (//detlint:allow directives
// naming it) exist. The shared coverage test asserts every analyzer in
// the suite has at least one of each, so a new analyzer cannot land
// without fixtures for both sides of its contract.
type Inventory struct {
	// Caught counts want annotations per analyzer name.
	Caught map[string]int
	// Allowed counts //detlint:allow directives per analyzer name.
	Allowed map[string]int
}

// wantNameRE extracts the leading analyzer name from a want pattern;
// diagnostic messages are prefixed "analyzer:" by convention, and the
// directive-machinery diagnostics ("unknown analyzer", "stale",
// "missing reason") match no name.
var wantNameRE = regexp.MustCompile(`want "([a-z]+):`)

// allowNameRE extracts the analyzer name from an allow directive.
var allowNameRE = regexp.MustCompile(`//detlint:allow ([a-z]+)`)

// ScanFixtures walks every fixture file under dir (the testdata root)
// and tallies caught and allowed cases per analyzer.
func ScanFixtures(dir string) (*Inventory, error) {
	inv := &Inventory{Caught: map[string]int{}, Allowed: map[string]int{}}
	root := filepath.Join(dir, "src")
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, m := range wantNameRE.FindAllStringSubmatch(string(src), -1) {
			inv.Caught[m[1]]++
		}
		for _, m := range allowNameRE.FindAllStringSubmatch(string(src), -1) {
			inv.Allowed[m[1]]++
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return inv, nil
}
