package detlint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AllocFree statically forbids allocation sources inside functions
// marked //detlint:zeroalloc. The slot path is pinned at runtime by
// testing.AllocsPerRun benchmarks (gnb, channel, net5g, ue, xcol);
// those pins fail only when the benchmark runs, while this analyzer
// fails `go vet` the moment an allocating construct is written into an
// annotated function.
//
// The directive sits in the function's doc comment:
//
//	// Step advances one slot.
//	//
//	//detlint:zeroalloc
//	func (c *Cell) Step(...) ...
//
// Flagged inside a marked function:
//
//   - make, new, map/slice literals, and &T{...} (heap composite);
//   - append whose destination is a plain local not traceable to a
//     reused buffer (a parameter, a struct field, or a reslice of one —
//     the `buf := c.buf[:0]` idiom stays silent);
//   - fmt calls and variadic-interface argument boxing;
//   - string concatenation and string↔[]byte/[]rune conversions;
//   - closures capturing outer variables, and go statements.
//
// One carve-out: `return fmt.Errorf(...)` is exempt — error returns
// are the cold path out of the steady state, and the AllocsPerRun pins
// never execute them. Plain struct literals (harqJob{...}) do not allocate
// and stay silent. A genuinely cold allocation elsewhere carries a
// //detlint:allow allocfree <reason>.
var AllocFree = &Analyzer{
	Name: "allocfree",
	Doc:  "forbid allocation sources inside functions marked //detlint:zeroalloc",
	Run:  runAllocFree,
}

// zeroallocDirective is the marker, placed in a function's doc comment.
const zeroallocDirective = "//detlint:zeroalloc"

func runAllocFree(pass *Pass) {
	for _, f := range pass.Files {
		attached := map[*ast.Comment]bool{}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			marked := false
			for _, c := range fd.Doc.List {
				if strings.TrimSpace(c.Text) == zeroallocDirective {
					attached[c] = true
					marked = true
				}
			}
			if marked {
				checkZeroAlloc(pass, fd)
			}
		}
		// A zeroalloc directive outside a function's doc comment marks
		// nothing; report it so the annotation cannot silently rot.
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if strings.TrimSpace(c.Text) == zeroallocDirective && !attached[c] {
					pass.Report(c.Pos(),
						"allocfree: //detlint:zeroalloc is not part of a function's doc comment — attach it to the declaration it should mark")
				}
			}
		}
	}
}

// sliceOrigin classifies an append destination.
type sliceOrigin uint8

const (
	originUnknown sliceOrigin = iota
	originReused              // parameter, field alias, or reslice of one
	originFresh               // nil/declared/make/literal local
)

// checkZeroAlloc walks one marked function and reports every
// allocation source.
func checkZeroAlloc(pass *Pass, fd *ast.FuncDecl) {
	if fd.Body == nil {
		return
	}
	origins := sliceOrigins(pass, fd)
	exemptReturns := returnExemptCalls(pass, fd)

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			pass.Report(n.Pos(), "allocfree: go statement in a zeroalloc function; spawning a goroutine allocates")
		case *ast.FuncLit:
			if captures(pass, fd, n) {
				pass.Report(n.Pos(), "allocfree: closure captures outer variables in a zeroalloc function; the closure and its captures escape to the heap")
			}
			return false // the literal's own body runs outside the marked frame
		case *ast.CompositeLit:
			switch pass.Info.Types[n].Type.Underlying().(type) {
			case *types.Map:
				pass.Report(n.Pos(), "allocfree: map literal allocates in a zeroalloc function")
			case *types.Slice:
				pass.Report(n.Pos(), "allocfree: slice literal allocates in a zeroalloc function")
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := unparen(n.X).(*ast.CompositeLit); ok {
					pass.Report(n.Pos(), "allocfree: &T{...} escapes to the heap in a zeroalloc function; reuse a preallocated value")
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringType(pass.Info.Types[n].Type) && pass.Info.Types[n].Value == nil {
				pass.Report(n.OpPos, "allocfree: string concatenation allocates in a zeroalloc function")
			}
		case *ast.CallExpr:
			checkZeroAllocCall(pass, n, origins, exemptReturns)
		}
		return true
	})
}

// checkZeroAllocCall applies the call-site rules: builtins, fmt,
// conversions, and interface boxing.
func checkZeroAllocCall(pass *Pass, call *ast.CallExpr, origins map[types.Object]sliceOrigin, exempt map[*ast.CallExpr]bool) {
	if exempt[call] {
		return
	}
	// Builtins.
	if id, ok := unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make":
				pass.Report(call.Pos(), "allocfree: make allocates in a zeroalloc function; preallocate in the constructor and reuse")
			case "new":
				pass.Report(call.Pos(), "allocfree: new allocates in a zeroalloc function; reuse a preallocated value")
			case "append":
				checkZeroAllocAppend(pass, call, origins)
			}
			return
		}
	}
	// Conversions: string↔[]byte/[]rune copy their input.
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to, from := tv.Type, pass.Info.Types[call.Args[0]].Type
		if (isStringType(to) && isByteOrRuneSlice(from)) || (isByteOrRuneSlice(to) && isStringType(from)) {
			pass.Report(call.Pos(), "allocfree: string conversion copies its input in a zeroalloc function")
		}
		return
	}
	// fmt always formats through interfaces.
	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok && pkgPathOf(pass.Info, sel.X) == "fmt" {
		pass.Report(call.Pos(), fmt.Sprintf(
			"allocfree: fmt.%s formats through interfaces and allocates in a zeroalloc function", sel.Sel.Name))
		return
	}
	// Boxing: concrete values passed to an ...interface{} tail.
	fn := calleeFunc(pass.Info, call)
	if fn == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || !sig.Variadic() || call.Ellipsis.IsValid() {
		return
	}
	last := sig.Params().At(sig.Params().Len() - 1)
	elem, ok := last.Type().(*types.Slice)
	if !ok {
		return
	}
	if _, isIface := elem.Elem().Underlying().(*types.Interface); !isIface {
		return
	}
	for _, arg := range call.Args[sig.Params().Len()-1:] {
		at := pass.Info.Types[arg].Type
		if at == nil {
			continue
		}
		if _, isIface := at.Underlying().(*types.Interface); isIface {
			continue // already an interface: no new box
		}
		if _, isPtr := at.Underlying().(*types.Pointer); isPtr {
			continue // pointers box without copying the pointee
		}
		pass.Report(arg.Pos(), fmt.Sprintf(
			"allocfree: argument boxes a concrete value into %s's variadic interface parameter in a zeroalloc function", fn.Name()))
	}
}

// checkZeroAllocAppend flags appends whose destination cannot be traced
// to a reused buffer.
func checkZeroAllocAppend(pass *Pass, call *ast.CallExpr, origins map[types.Object]sliceOrigin) {
	if len(call.Args) == 0 {
		return
	}
	switch dst := unparen(call.Args[0]).(type) {
	case *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
		return // field, pointer target, or element: long-lived storage the caller owns
	case *ast.SliceExpr:
		// Appending into a reslice of long-lived storage — the in-place
		// compaction idiom *q = append((*q)[:i], (*q)[i+1:]...) — reuses
		// the backing array; only a reslice of a fresh local is suspect.
		switch base := unparen(dst.X).(type) {
		case *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
			return
		case *ast.Ident:
			obj := pass.Info.Uses[base]
			if obj == nil {
				obj = pass.Info.Defs[base]
			}
			if origins[obj] != originFresh {
				return
			}
			pass.Report(call.Pos(), fmt.Sprintf(
				"allocfree: append to a reslice of %s, a fresh local slice, allocates when it grows; reslice a reusable buffer instead", base.Name))
			return
		}
		pass.Report(call.Pos(), "allocfree: append destination is not traceable to a reused buffer in a zeroalloc function")
	case *ast.Ident:
		obj := pass.Info.Uses[dst]
		if obj == nil {
			obj = pass.Info.Defs[dst]
		}
		switch origins[obj] {
		case originReused:
			return
		case originFresh:
			pass.Report(call.Pos(), fmt.Sprintf(
				"allocfree: append to %s, a fresh local slice, allocates when it grows; reslice a reusable buffer (buf := c.buf[:0]) instead", dst.Name))
		default:
			pass.Report(call.Pos(), fmt.Sprintf(
				"allocfree: append to %s, which is not traceable to a reused buffer, may allocate in a zeroalloc function", dst.Name))
		}
	default:
		pass.Report(call.Pos(), "allocfree: append destination is not traceable to a reused buffer in a zeroalloc function")
	}
}

// sliceOrigins classifies every local slice variable in fd: parameters
// and reslices/aliases of fields or parameters are reused; slices born
// from nil, make, or literals are fresh.
func sliceOrigins(pass *Pass, fd *ast.FuncDecl) map[types.Object]sliceOrigin {
	origins := map[types.Object]sliceOrigin{}
	markParams := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				if obj := pass.Info.Defs[name]; obj != nil {
					origins[obj] = originReused
				}
			}
		}
	}
	markParams(fd.Recv)
	markParams(fd.Type.Params)

	classify := func(rhs ast.Expr) sliceOrigin {
		switch rhs := unparen(rhs).(type) {
		case *ast.SliceExpr:
			switch base := unparen(rhs.X).(type) {
			case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
				return originReused
			case *ast.Ident:
				obj := pass.Info.Uses[base]
				if obj == nil {
					obj = pass.Info.Defs[base]
				}
				return origins[obj]
			}
			return originUnknown
		case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
			return originReused // alias of long-lived storage
		case *ast.CompositeLit:
			return originFresh
		case *ast.CallExpr:
			if id, ok := unparen(rhs.Fun).(*ast.Ident); ok {
				if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin {
					switch id.Name {
					case "make":
						return originFresh
					case "append":
						return originUnknown // keeps the destination's prior class
					}
				}
			}
			return originUnknown
		case *ast.Ident:
			if rhs.Name == "nil" {
				return originFresh
			}
			obj := pass.Info.Uses[rhs]
			if obj == nil {
				obj = pass.Info.Defs[rhs]
			}
			return origins[obj]
		}
		return originUnknown
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				id, ok := unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				obj := pass.Info.Defs[id]
				if obj == nil {
					obj = pass.Info.Uses[id]
				}
				if obj == nil || !isSliceType(obj.Type()) {
					continue
				}
				if o := classify(n.Rhs[i]); o != originUnknown {
					origins[obj] = o
				}
			}
		case *ast.DeclStmt:
			gd, ok := n.Decl.(*ast.GenDecl)
			if !ok {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					obj := pass.Info.Defs[name]
					if obj == nil || !isSliceType(obj.Type()) {
						continue
					}
					if len(vs.Values) == 0 {
						origins[obj] = originFresh // var s []T: nil slice
					} else if i < len(vs.Values) {
						if o := classify(vs.Values[i]); o != originUnknown {
							origins[obj] = o
						}
					}
				}
			}
		}
		return true
	})
	return origins
}

// returnExemptCalls collects fmt.Errorf calls nested in return
// statements — the cold error-return path the steady-state pins never
// execute. Other allocations in returns stay flagged.
func returnExemptCalls(pass *Pass, fd *ast.FuncDecl) map[*ast.CallExpr]bool {
	exempt := map[*ast.CallExpr]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			ast.Inspect(res, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok &&
					sel.Sel.Name == "Errorf" && pkgPathOf(pass.Info, sel.X) == "fmt" {
					exempt[call] = true
				}
				return true
			})
		}
		return true
	})
	return exempt
}

// captures reports whether the literal references a variable declared
// in the enclosing function outside the literal itself.
func captures(pass *Pass, fd *ast.FuncDecl, lit *ast.FuncLit) bool {
	captured := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || captured {
			return !captured
		}
		v, ok := pass.Info.Uses[id].(*types.Var)
		if !ok {
			return true
		}
		if v.Pos() >= fd.Pos() && v.Pos() < fd.End() && (v.Pos() < lit.Pos() || v.Pos() >= lit.End()) {
			captured = true
		}
		return true
	})
	return captured
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

func isSliceType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Slice)
	return ok
}
