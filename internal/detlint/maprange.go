package detlint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// MapRange flags ranging over a map when the loop body emits output
// (fmt.Fprint*/fmt.Print*, io.WriteString, or a Write*/Encode method
// call) or appends into a slice that is never sorted afterwards in the
// same function. Go randomizes map iteration order per process, so such
// a loop writes its rows in a different order on every run — the
// classic way a CSV or trace stops being byte-identical.
//
// The deterministic idiom — collect the keys, sort them, range over the
// sorted slice — is not flagged: the key-collecting append is followed
// by a sort.*/slices.* call on the same slice, and the emitting loop
// then ranges over a slice, not a map.
var MapRange = &Analyzer{
	Name: "maprange",
	Doc:  "flag map iteration that writes output or accumulates unsorted results; sort keys first",
	Run:  runMapRange,
}

// outputMethodNames are method names that, called inside a map-range
// body, almost certainly emit ordered output (io.Writer, bufio.Writer,
// csv.Writer, json.Encoder, strings.Builder, ...).
var outputMethodNames = map[string]bool{
	"Write":       true,
	"WriteString": true,
	"WriteByte":   true,
	"WriteRune":   true,
	"WriteAll":    true,
	"Encode":      true,
}

var fmtPrintNames = map[string]bool{
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Print": true, "Printf": true, "Println": true,
}

func runMapRange(pass *Pass) {
	for _, f := range pass.Files {
		funcs := collectFuncBodies(f)
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.Info.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			checkMapRange(pass, rs, enclosingBody(funcs, rs))
			return true
		})
	}
}

// collectFuncBodies gathers every function body in the file so a range
// statement can be matched to its innermost enclosing function.
func collectFuncBodies(f *ast.File) []*ast.BlockStmt {
	var bodies []*ast.BlockStmt
	ast.Inspect(f, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				bodies = append(bodies, fn.Body)
			}
		case *ast.FuncLit:
			bodies = append(bodies, fn.Body)
		}
		return true
	})
	return bodies
}

// enclosingBody returns the smallest function body containing n.
func enclosingBody(bodies []*ast.BlockStmt, n ast.Node) *ast.BlockStmt {
	var best *ast.BlockStmt
	for _, b := range bodies {
		if b.Pos() <= n.Pos() && n.End() <= b.End() {
			if best == nil || (best.Pos() <= b.Pos() && b.End() <= best.End()) {
				best = b
			}
		}
	}
	return best
}

// checkMapRange inspects one map-range loop body for output sinks and
// unsorted accumulation.
func checkMapRange(pass *Pass, rs *ast.RangeStmt, fnBody *ast.BlockStmt) {
	appended := map[*types.Var]ast.Expr{} // slice var -> first append site
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if name, isSink := outputSink(pass.Info, n); isSink {
				pass.Report(n.Pos(), fmt.Sprintf(
					"maprange: %s inside range over a map emits output in random iteration order; collect and sort the keys first", name))
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isBuiltinAppend(pass.Info, call) || i >= len(n.Lhs) {
					continue
				}
				if v := varOf(pass.Info, n.Lhs[i]); v != nil {
					if _, seen := appended[v]; !seen {
						appended[v] = call
					}
				}
			}
		}
		return true
	})
	for v, site := range appended {
		if !sortedAfter(pass.Info, fnBody, rs, v) {
			pass.Report(site.Pos(), fmt.Sprintf(
				"maprange: %q accumulates map-iteration results but is never sorted in this function; random map order leaks into it", v.Name()))
		}
	}
}

// outputSink reports whether the call writes ordered output, returning
// a short label for the diagnostic.
func outputSink(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	switch pkgPathOf(info, sel.X) {
	case "fmt":
		if fmtPrintNames[sel.Sel.Name] {
			return "fmt." + sel.Sel.Name, true
		}
		return "", false
	case "io":
		if sel.Sel.Name == "WriteString" {
			return "io.WriteString", true
		}
		return "", false
	}
	// A method call: only consider real method selections (not
	// qualified identifiers of other packages).
	if info.Selections[sel] != nil && outputMethodNames[sel.Sel.Name] {
		return "." + sel.Sel.Name, true
	}
	return "", false
}

// isBuiltinAppend reports whether call invokes the append builtin.
func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	_, builtin := info.Uses[id].(*types.Builtin)
	return builtin && id.Name == "append"
}

// varOf resolves an assignable expression to its variable, if any.
func varOf(info *types.Info, e ast.Expr) *types.Var {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	if v, ok := info.Uses[id].(*types.Var); ok {
		return v
	}
	if v, ok := info.Defs[id].(*types.Var); ok {
		return v
	}
	return nil
}

// sortedAfter reports whether, somewhere after the range loop in the
// enclosing function, v is passed to a sort/slices call — the
// collect-then-sort idiom that restores determinism.
func sortedAfter(info *types.Info, fnBody *ast.BlockStmt, rs *ast.RangeStmt, v *types.Var) bool {
	if fnBody == nil {
		return false
	}
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg := pkgPathOf(info, sel.X)
		if pkg != "sort" && pkg != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if mentionsVar(info, arg, v) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// mentionsVar reports whether expression e references v.
func mentionsVar(info *types.Info, e ast.Expr, v *types.Var) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == v {
			found = true
		}
		return !found
	})
	return found
}
