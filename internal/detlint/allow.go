package detlint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// allowPrefix is the directive marker. Like all Go directives it must
// be a // comment with no space before the keyword:
//
//	//detlint:allow walltime progress snapshots are observability-only
const allowPrefix = "detlint:allow"

// Allow is one parsed //detlint:allow directive. A directive suppresses
// diagnostics of the named analyzer on its own line and on the line
// immediately below, so it can trail the offending statement or sit on
// its own line above it.
type Allow struct {
	// Analyzer is the rule being excepted.
	Analyzer string
	// Reason is the mandatory free-text justification.
	Reason string
	// Line is the directive's own source line.
	Line int
	// Pos is the directive's position.
	Pos token.Pos
	// used records whether the directive suppressed any diagnostic.
	used bool
}

// parseAllows extracts //detlint:allow directives from a file.
// Malformed directives — unknown analyzer name, missing reason — are
// returned as diagnostics; a malformed directive never suppresses
// anything. One comment may carry several directives back to back
// (`//detlint:allow floatcmp <reason> //detlint:allow maprange
// <reason>`) so a single line can except more than one analyzer; each
// is parsed and judged independently.
func parseAllows(fset *token.FileSet, file *ast.File, known map[string]bool) ([]*Allow, []Diagnostic) {
	var allows []*Allow
	var diags []Diagnostic
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(c.Text, "//"+allowPrefix)
			if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
				continue
			}
			for _, text := range strings.Split(rest, "//"+allowPrefix) {
				a, d := parseOneAllow(fset, c.Pos(), text, known)
				if a != nil {
					allows = append(allows, a)
				}
				if d != nil {
					diags = append(diags, *d)
				}
			}
		}
	}
	return allows, diags
}

// parseOneAllow parses the body of a single //detlint:allow directive
// (the text after the marker) into an Allow or a malformed-directive
// diagnostic.
func parseOneAllow(fset *token.FileSet, pos token.Pos, text string, known map[string]bool) (*Allow, *Diagnostic) {
	fields := strings.Fields(text)
	if len(fields) == 0 {
		return nil, &Diagnostic{
			Pos:      pos,
			Analyzer: "allow",
			Message:  "malformed //detlint:allow: missing analyzer name",
		}
	}
	name := fields[0]
	if !known[name] {
		return nil, &Diagnostic{
			Pos:      pos,
			Analyzer: "allow",
			Message: fmt.Sprintf("unknown analyzer %q in //detlint:allow (known: %s)",
				name, strings.Join(knownNames(known), ", ")),
		}
	}
	if len(fields) < 2 {
		return nil, &Diagnostic{
			Pos:      pos,
			Analyzer: "allow",
			Message:  fmt.Sprintf("//detlint:allow %s: missing reason — say why this site is exempt", name),
		}
	}
	return &Allow{
		Analyzer: name,
		Reason:   strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(text), name)),
		Line:     fset.Position(pos).Line,
		Pos:      pos,
	}, nil
}

// knownNames returns the sorted analyzer names for error messages.
func knownNames(known map[string]bool) []string {
	names := make([]string, 0, len(known))
	for n := range known {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// covers reports whether the directive suppresses a diagnostic of
// analyzer at the given line.
func (a *Allow) covers(analyzer string, line int) bool {
	return a.Analyzer == analyzer && (a.Line == line || a.Line == line-1)
}
