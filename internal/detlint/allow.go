package detlint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// allowPrefix is the directive marker. Like all Go directives it must
// be a // comment with no space before the keyword:
//
//	//detlint:allow walltime progress snapshots are observability-only
const allowPrefix = "detlint:allow"

// Allow is one parsed //detlint:allow directive. A directive suppresses
// diagnostics of the named analyzer on its own line and on the line
// immediately below, so it can trail the offending statement or sit on
// its own line above it.
type Allow struct {
	// Analyzer is the rule being excepted.
	Analyzer string
	// Reason is the mandatory free-text justification.
	Reason string
	// Line is the directive's own source line.
	Line int
	// Pos is the directive's position.
	Pos token.Pos
	// used records whether the directive suppressed any diagnostic.
	used bool
}

// parseAllows extracts //detlint:allow directives from a file.
// Malformed directives — unknown analyzer name, missing reason — are
// returned as diagnostics; a malformed directive never suppresses
// anything.
func parseAllows(fset *token.FileSet, file *ast.File, known map[string]bool) ([]*Allow, []Diagnostic) {
	var allows []*Allow
	var diags []Diagnostic
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//"+allowPrefix)
			if !ok || (text != "" && text[0] != ' ' && text[0] != '\t') {
				continue
			}
			fields := strings.Fields(text)
			if len(fields) == 0 {
				diags = append(diags, Diagnostic{
					Pos:      c.Pos(),
					Analyzer: "allow",
					Message:  "malformed //detlint:allow: missing analyzer name",
				})
				continue
			}
			name := fields[0]
			if !known[name] {
				diags = append(diags, Diagnostic{
					Pos:      c.Pos(),
					Analyzer: "allow",
					Message: fmt.Sprintf("unknown analyzer %q in //detlint:allow (known: %s)",
						name, strings.Join(knownNames(known), ", ")),
				})
				continue
			}
			if len(fields) < 2 {
				diags = append(diags, Diagnostic{
					Pos:      c.Pos(),
					Analyzer: "allow",
					Message:  fmt.Sprintf("//detlint:allow %s: missing reason — say why this site is exempt", name),
				})
				continue
			}
			allows = append(allows, &Allow{
				Analyzer: name,
				Reason:   strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(text), name)),
				Line:     fset.Position(c.Pos()).Line,
				Pos:      c.Pos(),
			})
		}
	}
	return allows, diags
}

// knownNames returns the sorted analyzer names for error messages.
func knownNames(known map[string]bool) []string {
	names := make([]string, 0, len(known))
	for n := range known {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// covers reports whether the directive suppresses a diagnostic of
// analyzer at the given line.
func (a *Allow) covers(analyzer string, line int) bool {
	return a.Analyzer == analyzer && (a.Line == line || a.Line == line-1)
}
