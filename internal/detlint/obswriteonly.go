package detlint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// ObsWriteOnly keeps internal/obs strictly write-only from inside the
// simulation core: a sim package may create metric handles and call
// their recording methods (Add, Inc, Set, Observe) and may gate on
// obs.Enabled(), but it must never *read* a metric value back
// (Load, Count, Sum, BucketCounts, ...). If instrumentation could feed
// into simulation state, enabling -obs-listen would change the results
// — the invariant TestRunCampaignObsOnOffDeterminism checks at runtime.
var ObsWriteOnly = &Analyzer{
	Name: "obswriteonly",
	Doc:  "forbid simulation packages from reading internal/obs metric values; metrics are write-only",
	Run:  runObsWriteOnly,
}

// obsReadNames are the value-returning accessors of the obs metric
// types. Handle constructors (Counter, Gauge, Histogram, GoodputMbps)
// and recording methods are allowed; these are not.
var obsReadNames = map[string]bool{
	"Load":         true,
	"Count":        true,
	"Sum":          true,
	"Edges":        true,
	"BucketCounts": true,
	"WriteMetrics": true,
}

func runObsWriteOnly(pass *Pass) {
	if !IsSimPackage(pass.Pkg.Path()) {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if !obsReadNames[sel.Sel.Name] {
				return true
			}
			s := pass.Info.Selections[sel]
			if s == nil {
				return true // qualified identifier, not a method/field selection
			}
			recv := s.Recv()
			if recv == nil || !isObsType(recv) {
				return true
			}
			pass.Report(sel.Pos(), fmt.Sprintf(
				"obswriteonly: %s.%s reads an internal/obs metric from a simulation package; metrics are write-only so instrumentation can never feed back into results",
				types.TypeString(recv, func(p *types.Package) string { return p.Name() }), sel.Sel.Name))
			return true
		})
	}
}

// isObsType reports whether t (possibly a pointer) is a named type
// declared in the internal/obs package.
func isObsType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	pkg := named.Obj().Pkg()
	return pkg != nil && IsObsPackage(pkg.Path())
}
