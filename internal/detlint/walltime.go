package detlint

import (
	"fmt"
	"go/ast"
)

// WallTime forbids reading the wall clock (time.Now, time.Since)
// anywhere in the module outside tests. A wall-clock read that leaks
// into simulation state, a trace or an aggregate makes the output
// depend on when and how fast the host ran — the workers=1-vs-N and
// obs-on-vs-off determinism tests only catch such a leak when it
// happens to perturb the sampled bytes.
//
// Legitimate timing sites — observability instruments, fleet job
// timings, CLI progress and manifest wall-cost accounting — carry a
// //detlint:allow walltime <reason> directive.
var WallTime = &Analyzer{
	Name: "walltime",
	Doc:  "forbid time.Now/time.Since outside tests; annotate observability-only timing with //detlint:allow walltime",
	Run:  runWallTime,
}

var wallClockFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

func runWallTime(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if pkgPathOf(pass.Info, sel.X) != "time" || !wallClockFuncs[sel.Sel.Name] {
				return true
			}
			pass.Report(sel.Pos(), fmt.Sprintf(
				"walltime: time.%s reads the wall clock; simulated time must derive from the slot index (annotate observability-only timing with //detlint:allow walltime <reason>)",
				sel.Sel.Name))
			return true
		})
	}
}
