// Package report is outside the simulation core, so reading metric
// values (to render them) is allowed — obswriteonly scopes to sim
// packages only.
package report

import "sim/internal/obs"

// Render legitimately reads metrics: reporting is what they are for.
func Render() (int64, float64) {
	return obs.Slots.Load(), obs.Goodput.Sum()
}
