// Package shuffle sits outside the simulation core, so globalrand does
// not apply: ad-hoc tooling may use the global source.
package shuffle

import "math/rand"

// Pick draws from the global source — allowed outside sim packages.
func Pick(n int) int {
	return rand.Intn(n)
}

// Deck builds a fixed-seed generator; seedflow does not apply outside
// the simulation core.
func Deck() *rand.Rand {
	return rand.New(rand.NewSource(7))
}
