// Package unitflow is a unitflow fixture: units derive from name
// suffixes and //detlint:unit directives; log/linear mixing, unit
// mismatches, and double conversions are flagged, while the dBm±dB and
// dBm−dBm link-budget idioms are not.
package unitflow

import "math"

// Sample mirrors the channel KPI struct: units live in field names.
type Sample struct {
	SINRdB  float64
	RSRPdBm float64
}

// BadAdd mixes a log-domain level with linear power.
func BadAdd(rsrpDBm, noiseMW float64) float64 {
	return rsrpDBm + noiseMW // want "unitflow: \+ mixes dBm and mW operands"
}

// BadSum adds two absolute powers in the log domain.
func BadSum(aDBm, bDBm float64) float64 {
	return aDBm + bDBm // want "unitflow: adding two absolute powers"
}

// BadFreq adds across frequency scales.
func BadFreq(spanMHz, scskHz float64) float64 {
	return spanMHz + scskHz // want "unitflow: frequency-scale mismatch"
}

// BadCompare compares an absolute level against a relative offset.
func BadCompare(sinrDB, rsrpDBm float64) bool {
	return rsrpDBm > sinrDB // want "unitflow: comparing dBm against dB"
}

// NRBFor maps a channel bandwidth to a resource-block count.
func NRBFor(bandwidthMHz float64) int {
	return int(bandwidthMHz * 5)
}

// BadArg passes a kHz quantity where the parameter expects MHz.
func BadArg(scskHz float64) int {
	return NRBFor(scskHz) // want "unitflow: argument is kHz but parameter bandwidthMHz of NRBFor expects MHz"
}

// BadDouble converts an already-linear power a second time.
func BadDouble(noiseMW float64) float64 {
	return math.Pow(10, noiseMW/10) // want "unitflow: 10\^\(x/10\) applied to a mW value"
}

// BadLog takes the log of a value already in the log domain.
func BadLog(sinrDB float64) float64 {
	return 10 * math.Log10(sinrDB) // want "unitflow: log10 of a dB value"
}

// BadAssign stores a relative offset in an absolute-level variable.
func BadAssign(gainDB float64) float64 {
	var lossDBm float64
	lossDBm = gainDB // want "unitflow: assigning a dB expression to lossDBm, declared dBm"
	return lossDBm
}

// BadField fills a dB field with an absolute level.
func BadField(rsrpDBm float64) Sample {
	return Sample{SINRdB: rsrpDBm} // want "unitflow: field SINRdB is dB but its value is dBm"
}

// BadAccumulate mixes domains through a compound assignment.
func BadAccumulate(powMW, gainDB float64) float64 {
	powMW += gainDB // want "unitflow: \+ mixes mW and dB operands"
	return powMW
}

// BadDrain subtracts a level from a level in place: the result is a
// relative dB quantity, but the variable still claims to be a level.
func BadDrain(totalDBm, noiseDBm float64) float64 {
	totalDBm -= noiseDBm // want "unitflow: -= leaves totalDBm holding a dB value but it is declared dBm"
	return totalDBm
}

// GoodAccumulate offsets a level in place: dBm += dB stays a level.
func GoodAccumulate(rsrpDBm, shadowDB float64) float64 {
	rsrpDBm += shadowDB
	return rsrpDBm
}

// GoodOffset is the link-budget idiom: offsetting an absolute level by
// a relative gain/loss stays a level.
func GoodOffset(rsrpDBm, shadowDB float64) float64 {
	return rsrpDBm + shadowDB
}

// GoodDelta is the other idiom: the difference of two levels is a
// relative quantity and may live in a ...dB name.
func GoodDelta(sigDBm, noiseDBm float64) float64 {
	sinrDB := sigDBm - noiseDBm
	return sinrDB
}

// GoodRoundTrip converts to linear, accumulates, and converts back —
// each conversion applied exactly once.
func GoodRoundTrip(aDBm, bDBm float64) float64 {
	sumMW := math.Pow(10, aDBm/10) + math.Pow(10, bDBm/10)
	return 10 * math.Log10(sumMW)
}

// thermalFloor returns the per-RE noise floor; the name carries no
// unit, which is what the directive below is for.
func thermalFloor() float64 { return -121.4 }

// GoodDirective annotates a suffix-less local so the subtraction
// checks as dBm − dBm.
func GoodDirective(s Sample) float64 {
	//detlint:unit dBm
	floor := thermalFloor()
	return s.RSRPdBm - floor
}

// BadDirectiveDim names a dimension the analyzer does not know.
func BadDirectiveDim() {
	// want "unitflow: unknown dimension \"decibels\""
	//detlint:unit decibels
}

// StaleDirective attaches to no unit-less variable.
func StaleDirective() {
	// want "unitflow: //detlint:unit mW attaches to no unit-less variable"
	//detlint:unit mW
}

// AllowedMix carries a reviewed allow for a deliberate mixed-domain
// heuristic.
func AllowedMix(xDB, yMW float64) float64 {
	return xDB + yMW //detlint:allow unitflow fixture: deliberate mixed-domain scoring heuristic
}

// GoodStaleAllow is covered by a directive that suppresses nothing.
func GoodStaleAllow(aDB, bDB float64) float64 {
	// want "stale //detlint:allow unitflow"
	//detlint:allow unitflow these operands share a unit already
	return aDB + bDB
}
