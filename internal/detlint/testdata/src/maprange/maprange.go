// Package maprange is a maprange fixture: emitting or accumulating
// inside a map range is flagged; the collect-sort-emit idiom is not.
package maprange

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// BadFprintf writes CSV rows in random map order.
func BadFprintf(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s,%d\n", k, v) // want "maprange: fmt.Fprintf inside range over a map"
	}
}

// BadBuilder streams into a strings.Builder in random map order.
func BadBuilder(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k) // want "maprange: \.WriteString inside range over a map"
	}
	return b.String()
}

// BadAccum collects map values into a slice that is never sorted, so
// the random iteration order escapes to the caller.
func BadAccum(m map[string]float64) []float64 {
	var vals []float64
	for _, v := range m {
		vals = append(vals, v) // want "maprange: \"vals\" accumulates map-iteration results"
	}
	return vals
}

// Good collects the keys, sorts them, and emits over the sorted slice —
// the deterministic idiom. Neither loop is flagged: the key-collecting
// append is sorted right after, and the emitting loop ranges a slice.
func Good(w io.Writer, m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s,%d\n", k, m[k])
	}
}

// AllowedDebugDump intentionally prints in map order behind a
// reviewed allow.
func AllowedDebugDump(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) //detlint:allow maprange fixture: debug dump, order is irrelevant
	}
}

// GoodSliceSort uses the slices-package spelling of the same idiom.
func GoodSliceSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}
