// Package fleet is a miniature stand-in for the real internal/fleet so
// the seedflow fixture can route seeds through SplitSeed.
package fleet

// SplitSeed derives an uncorrelated child seed from a base seed, a
// domain label, and an index.
func SplitSeed(base int64, domain string, index int) int64 {
	h := base
	for _, c := range domain {
		h = h*31 + int64(c)
	}
	return h + int64(index)
}
