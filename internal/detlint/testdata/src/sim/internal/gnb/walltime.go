// Package gnb is a walltime fixture: simulated time derives from the
// slot index; wall-clock reads need a //detlint:allow directive.
package gnb

import "time"

// SlotTime is the deterministic way to track time: slot index times
// slot duration. Using the time package's types is fine — only the
// wall-clock reads are forbidden.
func SlotTime(slot int64, d time.Duration) time.Duration {
	return time.Duration(slot) * d
}

// Bad reads the wall clock into simulation scope.
func Bad() time.Time {
	return time.Now() // want "walltime: time.Now reads the wall clock"
}

// BadSince measures elapsed wall time.
func BadSince(t0 time.Time) time.Duration {
	return time.Since(t0) // want "walltime: time.Since reads the wall clock"
}

// Timed is an allowlisted observability-only timing site.
func Timed() time.Time {
	return time.Now() //detlint:allow walltime fixture for an observability-only site
}
