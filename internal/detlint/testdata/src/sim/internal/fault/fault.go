// Package fault is a seedflow fixture: RNG constructions in the
// simulation core must derive their seed through fleet.SplitSeed (or
// receive one already derived via a field or parameter); literal seeds
// and hand-rolled arithmetic are flagged.
package fault

import (
	"math/rand"

	"sim/internal/fleet"
)

// Config carries the campaign seed.
type Config struct{ Seed int64 }

// Good derives the stream seed through SplitSeed at the call site.
func Good(cfg Config, attempt int) *rand.Rand {
	return rand.New(rand.NewSource(fleet.SplitSeed(cfg.Seed, "fault/session", attempt)))
}

// GoodVia routes the derived seed through a local.
func GoodVia(cfg Config, attempt int) *rand.Rand {
	base := fleet.SplitSeed(cfg.Seed, "fault/retry", attempt)
	return rand.New(rand.NewSource(base))
}

// GoodField trusts a config field: the campaign already derived it.
func GoodField(cfg Config) *rand.Rand {
	return rand.New(rand.NewSource(cfg.Seed))
}

// GoodParam trusts a parameter for the same reason.
func GoodParam(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// BadLiteral seeds with a constant: every fleet worker gets the same
// stream.
func BadLiteral() *rand.Rand {
	return rand.New(rand.NewSource(42)) // want "seedflow: rand.NewSource seed is a constant"
}

// BadArith hand-rolls sibling derivation; adjacent indices produce
// correlated streams.
func BadArith(seed int64, i int) *rand.Rand {
	return rand.New(rand.NewSource(seed + int64(i))) // want "seedflow: rand.NewSource seed is derived with raw \+ arithmetic"
}

// BadXor mixes with xor instead of a full-avalanche split.
func BadXor(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed ^ 0x9e3779b9)) // want "seedflow: .*raw \^ arithmetic"
}

// BadVia traces a local back to raw arithmetic.
func BadVia(seed int64) *rand.Rand {
	derived := seed * 31
	return rand.New(rand.NewSource(derived)) // want "seedflow: .*via derived.*raw \* arithmetic"
}

// BadReseed reseeds an owned generator in place with a literal.
func BadReseed(r *rand.Rand) {
	r.Seed(7) // want "seedflow: rand.Seed seed is a constant"
}

// AllowedFixed keeps a fixed conformance probe stream behind a
// reviewed allow.
func AllowedFixed() *rand.Rand {
	return rand.New(rand.NewSource(1)) //detlint:allow seedflow fixture: fixed conformance probe stream
}

// GoodStaleAllow is covered by a directive that suppresses nothing.
func GoodStaleAllow(seed int64) *rand.Rand {
	// want "stale //detlint:allow seedflow"
	//detlint:allow seedflow seeds here are already derived
	return rand.New(rand.NewSource(seed))
}
