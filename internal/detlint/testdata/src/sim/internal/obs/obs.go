// Package obs is a miniature stand-in for the real internal/obs so the
// obswriteonly fixture can exercise metric reads and writes.
package obs

// Counter is a write-mostly cumulative metric.
type Counter struct{ v int64 }

// Add records n events.
func (c *Counter) Add(n int64) { c.v += n }

// Inc records one event.
func (c *Counter) Inc() { c.Add(1) }

// Load reads the count back — forbidden from simulation packages.
func (c *Counter) Load() int64 { return c.v }

// Histogram is a write-mostly distribution metric.
type Histogram struct {
	count int64
	sum   float64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.count++
	h.sum += v
}

// Count reads the sample count back.
func (h *Histogram) Count() int64 { return h.count }

// Sum reads the running sum back.
func (h *Histogram) Sum() float64 { return h.sum }

// Enabled gates hot-path instrumentation; reading the gate is allowed.
func Enabled() bool { return false }

// Slots counts simulated slots.
var Slots Counter

// Goodput tracks session goodput.
var Goodput Histogram
