package channel

import randv2 "math/rand/v2"

// Fading owns a v2 generator — the constructors are allowed.
type Fading struct {
	rng *randv2.Rand
}

// NewFading seeds an owned PCG source.
func NewFading(a, b uint64) *Fading {
	return &Fading{rng: randv2.New(randv2.NewPCG(a, b))}
}

// BadV2 draws from math/rand/v2's global source.
func BadV2(n int) int {
	return randv2.IntN(n) // want "globalrand: rand.IntN draws from the process-global source"
}
