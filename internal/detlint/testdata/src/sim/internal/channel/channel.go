// Package channel is a globalrand fixture: the seeded-generator idiom
// is allowed, package-level draws are not.
package channel

import "math/rand"

// Channel owns its generator, seeded from the config — the idiom the
// real internal/channel uses.
type Channel struct {
	rng *rand.Rand
}

// New builds a channel with an owned, seeded generator. The rand.New
// and rand.NewSource constructors are allowed: they create the owned
// source rather than drawing from the global one.
func New(seed int64) *Channel {
	return &Channel{rng: rand.New(rand.NewSource(seed))}
}

// Step draws from the owned generator — allowed.
func (c *Channel) Step() float64 {
	return c.rng.Float64()
}

// Bad draws from and reseeds the process-global source.
func Bad(n int) int {
	rand.Seed(42)     // want "globalrand: rand.Seed reseeds the process-global source"
	x := rand.Intn(n) // want "globalrand: rand.Intn draws from the process-global source"
	return x
}

// AllowedWarmup draws from the global source behind a reviewed allow.
func AllowedWarmup(n int) int {
	return rand.Intn(n) //detlint:allow globalrand fixture: warmup outside the deterministic phase
}
