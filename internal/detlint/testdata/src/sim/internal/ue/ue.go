// Package ue is an obswriteonly fixture: a simulation package may
// write metrics behind the Enabled gate but never read them back.
package ue

import "sim/internal/obs"

// Record instruments a sample: gating on Enabled and writing through
// Observe/Inc is the allowed pattern.
func Record(goodput float64) {
	if obs.Enabled() {
		obs.Goodput.Observe(goodput)
		obs.Slots.Inc()
	}
}

// BadThrottle lets instrumentation feed back into behavior.
func BadThrottle() bool {
	return obs.Slots.Load() > 10 // want "obswriteonly: .*Counter.Load reads an internal/obs metric"
}

// AllowedSelfCheck reads a metric behind a reviewed allow.
func AllowedSelfCheck() bool {
	return obs.Slots.Load() >= 0 //detlint:allow obswriteonly fixture: startup self-check outside the hot path
}

// BadMean derives simulation input from a recorded distribution.
func BadMean() float64 {
	if obs.Goodput.Count() == 0 { // want "obswriteonly: .*Histogram.Count reads an internal/obs metric"
		return 0
	}
	return obs.Goodput.Sum() // want "obswriteonly: .*Histogram.Sum reads an internal/obs metric"
}
