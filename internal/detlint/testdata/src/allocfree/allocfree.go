// Package allocfree is an allocfree fixture: functions marked
// //detlint:zeroalloc must not contain allocation sources; the
// reslice-and-reuse idiom of the slot path stays silent, and unmarked
// functions are never checked.
package allocfree

import "fmt"

// Buf is a reusable container in the style of the slot path.
type Buf struct {
	vals  []float64
	names []string
	n     int
}

// Step reuses its own storage — the annotated steady-state idiom.
//
//detlint:zeroalloc
func (b *Buf) Step(xs []float64) []float64 {
	vals := b.vals[:0]
	for _, x := range xs {
		vals = append(vals, x*2)
	}
	b.vals = vals
	return vals
}

// Fill appends through a pointer parameter — the caller owns the
// backing array, so the append is allowed.
//
//detlint:zeroalloc
func Fill(dst *[]float64, x float64) {
	*dst = append(*dst, x)
}

// BadMake allocates a fresh slice every call and grows it.
//
//detlint:zeroalloc
func (b *Buf) BadMake(n int) []float64 {
	out := make([]float64, 0, n) // want "allocfree: make allocates"
	for i := 0; i < n; i++ {
		out = append(out, float64(i)) // want "allocfree: append to out, a fresh local slice"
	}
	return out
}

// BadMap builds a map literal per call.
//
//detlint:zeroalloc
func (b *Buf) BadMap() map[string]int {
	return map[string]int{"a": 1} // want "allocfree: map literal allocates"
}

// BadFmt formats through interfaces on the hot path.
//
//detlint:zeroalloc
func (b *Buf) BadFmt(x float64) {
	fmt.Println(x) // want "allocfree: fmt.Println formats through interfaces"
}

// BadClosure captures local state, forcing a heap closure.
//
//detlint:zeroalloc
func (b *Buf) BadClosure(x float64) func() float64 {
	return func() float64 { return x } // want "allocfree: closure captures outer variables"
}

// BadConcat builds a string per call.
//
//detlint:zeroalloc
func (b *Buf) BadConcat(name string) string {
	return "ue-" + name // want "allocfree: string concatenation allocates"
}

// BadPointer escapes a fresh composite to the heap.
//
//detlint:zeroalloc
func (b *Buf) BadPointer() *Buf {
	return &Buf{} // want "escapes to the heap in a zeroalloc function"
}

// BadConvert copies the string into a fresh byte slice.
//
//detlint:zeroalloc
func (b *Buf) BadConvert(name string) []byte {
	return []byte(name) // want "allocfree: string conversion copies its input"
}

// GoodCompact pops element i in place: appending into a prefix reslice
// of the caller's queue reuses the backing array.
//
//detlint:zeroalloc
func GoodCompact(queue *[]float64, i int) float64 {
	x := (*queue)[i]
	*queue = append((*queue)[:i], (*queue)[i+1:]...)
	return x
}

// BadCompactFresh reslices a fresh local, which still grows on append.
//
//detlint:zeroalloc
func BadCompactFresh(n int) []float64 {
	tmp := make([]float64, 0, n) // want "allocfree: make allocates"
	return append(tmp[:0], 1, 2) // want "allocfree: append to a reslice of tmp, a fresh local slice"
}

// GoodErrorReturn exercises the carve-out: return fmt.Errorf is the
// cold path out of the steady state and is exempt.
//
//detlint:zeroalloc
func (b *Buf) GoodErrorReturn(n int) error {
	if n < 0 {
		return fmt.Errorf("negative count %d", n)
	}
	b.n = n
	return nil
}

// GoodUnmarked allocates freely: only annotated functions are checked.
func (b *Buf) GoodUnmarked() []float64 {
	return make([]float64, 8)
}

// AllowedWarm carries a reviewed allow for a deliberately cold
// allocation inside a marked function.
//
//detlint:zeroalloc
func (b *Buf) AllowedWarm(name string) {
	b.names = append(b.names, "ue-"+name) //detlint:allow allocfree fixture: rare admission event, not steady-state
}

// GoodStaleAllow is covered by a directive that suppresses nothing.
//
//detlint:zeroalloc
func (b *Buf) GoodStaleAllow(x float64) float64 {
	// want "stale //detlint:allow allocfree"
	//detlint:allow allocfree there is no allocation here
	return x * 2
}

// want "allocfree: //detlint:zeroalloc is not part of a function's doc comment"
//detlint:zeroalloc

var sink []float64
