package floatcmp

// exactEq lives in a _test.go file, where exact float comparison is
// legitimate (asserting byte-identical aggregates) — never flagged.
func exactEq(a, b float64) bool {
	return a == b
}
