// Package floatcmp is a floatcmp fixture: exact float equality is
// flagged outside tests; tolerance comparisons and constant folds are
// not.
package floatcmp

import "math"

const eps = 1e-9

// BadEq compares floats exactly.
func BadEq(a, b float64) bool {
	return a == b // want "floatcmp: == between floating-point operands"
}

// BadNeq compares float32s exactly.
func BadNeq(xs []float32, y float32) bool {
	for _, x := range xs {
		if x != y { // want "floatcmp: != between floating-point operands"
			return true
		}
	}
	return false
}

// BadNonZeroConst compares a computed float against a non-zero
// constant: truth flips if upstream rounding shifts by one ULP.
func BadNonZeroConst(rank float64) bool {
	return rank == 4 // want "floatcmp: == between floating-point operands"
}

// GoodZeroSentinel is the exempt idiom: the zero-value default check
// and the division guard compare against the constant zero, which is
// exact by construction.
func GoodZeroSentinel(rate float64) float64 {
	if rate == 0 {
		return 1.0
	}
	return 1 / rate
}

// Good compares within a tolerance.
func Good(a, b float64) bool {
	return math.Abs(a-b) < eps
}

// GoodInt compares integers — not a float comparison.
func GoodInt(a, b int) bool {
	return a == b
}

// GoodAllowed is a deliberate bit-equality site with a directive.
func GoodAllowed(a, b float64) bool {
	return a == b //detlint:allow floatcmp bitwise duplicate detection is intentional here
}

// constFold compares two compile-time constants, which the compiler
// folds exactly — not flagged.
const constFold = eps == 1e-9
