// Package consumer is a bufown fixture: retaining a Step result — in a
// field, a global, a channel, or a goroutine — is flagged through the
// ownership fact exported by package stepper; consuming it before the
// next Step, or copying it, is not.
package consumer

import "bufown/stepper"

// Cache wrongly retains owned buffers.
type Cache struct {
	last []float64
	n    int
}

var global []float64

// BadField stores the owned slice in a field: the next Step call
// overwrites it under the cache.
func (c *Cache) BadField(s *stepper.Source) {
	c.last = s.Step() // want "bufown: result of Step is owned by its receiver"
}

// BadGlobal stores it in a package-level variable.
func BadGlobal(s *stepper.Source) {
	global = s.Step() // want "bufown: result of Step is owned"
}

// BadSend hands the owned slice to another goroutine's timeline.
func BadSend(s *stepper.Source, ch chan []float64) {
	v := s.Step()
	ch <- v // want "bufown: result of Step .* sending it on a channel"
}

// BadGo captures the owned slice in a goroutine.
func BadGo(s *stepper.Source, f func([]float64)) {
	v := s.Step()
	go f(v) // want "bufown: result of Step .* capturing it in a goroutine"
}

// BadViaLocal taints through a local alias and a reslice.
func (c *Cache) BadViaLocal(s *stepper.Source) {
	v := s.Step()
	w := v[1:]
	c.last = w // want "bufown: result of Step is owned"
}

// GoodLocal consumes the buffer before the next call — the intended
// use.
func GoodLocal(s *stepper.Source) float64 {
	sum := 0.0
	for _, x := range s.Step() {
		sum += x
	}
	return sum
}

// GoodScalar copies a scalar out of the owned result; scalars carry no
// reference into the buffer.
func (c *Cache) GoodScalar(s *stepper.Source) {
	c.n = len(s.Step())
}

// GoodCopy launders through an explicit copy, which owns its own
// backing array.
func (c *Cache) GoodCopy(s *stepper.Source) {
	c.last = append(c.last[:0], s.Step()...)
}

// GoodPeek retains a result with no ownership contract.
func (c *Cache) GoodPeek(s *stepper.Source) {
	c.last = s.Peek()
}

// AllowedRetain carries a reviewed allow: the cache is invalidated
// before the next Step by construction.
func (c *Cache) AllowedRetain(s *stepper.Source) {
	c.last = s.Step() //detlint:allow bufown fixture: cache is dropped before the next Step by construction
}

// GoodStaleAllow is covered by a directive that suppresses nothing.
func GoodStaleAllow(s *stepper.Source) int {
	// want "stale //detlint:allow bufown"
	//detlint:allow bufown nothing is retained here
	return len(s.Step())
}
