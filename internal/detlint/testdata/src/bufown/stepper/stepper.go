// Package stepper defines an owned-buffer Step method in the style of
// the slot path: the doc-comment contract exports a bufown ownership
// fact that consuming packages are checked against.
package stepper

// Source produces per-tick samples into a reused buffer.
type Source struct {
	buf []float64
}

// Step advances one tick. The returned slice is owned by the Source
// and valid until the next Step call.
func (s *Source) Step() []float64 {
	s.buf = s.buf[:0]
	s.buf = append(s.buf, 1, 2, 3)
	return s.buf
}

// Peek returns a fresh copy each call — no ownership contract, so
// retaining its result is fine.
func (s *Source) Peek() []float64 {
	out := make([]float64, len(s.buf))
	copy(out, s.buf)
	return out
}
