// Package allowfix exercises the //detlint:allow directive parser:
// good directives suppress, malformed ones are diagnostics themselves,
// and stale ones are reported so the allowlist cannot rot.
package allowfix

import "time"

// used carries a directive that suppresses a real walltime diagnostic —
// the healthy case.
func used() time.Time {
	return time.Now() //detlint:allow walltime fixture for a legitimate timing site
}

// unknownName carries a directive naming a nonexistent analyzer.
func unknownName() {
	// want "unknown analyzer \"notananalyzer\""
	//detlint:allow notananalyzer some reason text
}

// missingReason carries a directive with no justification text.
func missingReason() {
	// want "missing reason"
	//detlint:allow walltime
}

// stale carries a directive on a line with no diagnostic, so the
// directive itself is reported.
func stale() int {
	// want "stale //detlint:allow walltime"
	//detlint:allow walltime there is no wall-clock read here
	return 1
}

// usedAbove places the directive on its own line above the read — the
// other accepted placement besides trailing.
func usedAbove() time.Time {
	//detlint:allow walltime fixture for the line-above form
	return time.Now()
}

// multi carries two directives in one comment: the first suppresses
// the walltime read here; the second names an analyzer outside the
// running subset and is left unjudged.
func multi() time.Time {
	return time.Now() //detlint:allow walltime fixture first of two //detlint:allow maprange fixture second directive parses too
}

// multiBad: the second directive in a shared comment is validated
// independently of the first.
func multiBad() time.Time {
	// want "unknown analyzer \"notreal\""
	return time.Now() //detlint:allow walltime fixture first of two //detlint:allow notreal reason
}
