package fleet

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func streamJobs(n int) []Job[int] {
	jobs := make([]Job[int], n)
	for i := range jobs {
		i := i
		jobs[i] = Job[int]{
			Key: fmt.Sprintf("job-%d", i),
			Run: func(ctx context.Context) (int, error) {
				// Finish out of submission order on purpose.
				time.Sleep(time.Duration((i%7)*137) * time.Microsecond)
				return i * i, nil
			},
		}
	}
	return jobs
}

// TestStreamOrderedEmission: results arrive in submission order no
// matter how the pool schedules them.
func TestStreamOrderedEmission(t *testing.T) {
	jobs := streamJobs(200)
	for _, workers := range []int{1, 2, 8} {
		var got []int
		err := Stream(context.Background(), jobs, StreamOptions{Workers: workers}, func(r Result[int]) error {
			got = append(got, r.Value)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != len(jobs) {
			t.Fatalf("workers=%d: emitted %d results, want %d", workers, len(got), len(jobs))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: position %d got %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

// TestStreamEmitErrorCancels: an error from emit stops the stream,
// is returned, and cancels jobs that have not started.
func TestStreamEmitErrorCancels(t *testing.T) {
	var started atomic.Int64
	jobs := make([]Job[int], 100)
	for i := range jobs {
		i := i
		jobs[i] = Job[int]{Key: fmt.Sprintf("j%d", i), Run: func(ctx context.Context) (int, error) {
			started.Add(1)
			return i, nil
		}}
	}
	sentinel := errors.New("enough")
	emitted := 0
	err := Stream(context.Background(), jobs, StreamOptions{Workers: 2, Window: 4}, func(r Result[int]) error {
		emitted++
		if emitted == 5 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("got %v, want sentinel", err)
	}
	if emitted != 5 {
		t.Fatalf("emit ran %d times after error, want 5", emitted)
	}
	if n := started.Load(); n == int64(len(jobs)) {
		t.Fatalf("all %d jobs ran despite early cancellation", n)
	}
}

// TestStreamJobErrorFailFast: the first job error is returned and the
// emit sequence ends at that job regardless of worker count.
func TestStreamJobErrorFailFast(t *testing.T) {
	boom := errors.New("boom")
	jobs := make([]Job[int], 50)
	for i := range jobs {
		i := i
		jobs[i] = Job[int]{Key: fmt.Sprintf("j%d", i), Run: func(ctx context.Context) (int, error) {
			if i == 20 {
				return 0, boom
			}
			return i, nil
		}}
	}
	for _, workers := range []int{1, 4} {
		var got []int
		err := Stream(context.Background(), jobs, StreamOptions{Workers: workers}, func(r Result[int]) error {
			got = append(got, r.Value)
			return nil
		})
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: got %v, want boom", workers, err)
		}
		// Deterministic emission: exactly jobs 0..20 (the failed job is
		// emitted carrying its error), independent of scheduling.
		if len(got) != 21 {
			t.Fatalf("workers=%d: emitted %d results, want 21", workers, len(got))
		}
	}
}

// TestStreamWindowBound: at most Window results exist between
// production and emission.
func TestStreamWindowBound(t *testing.T) {
	const window = 3
	var inFlight, maxInFlight atomic.Int64
	jobs := make([]Job[int], 60)
	for i := range jobs {
		i := i
		jobs[i] = Job[int]{Key: fmt.Sprintf("j%d", i), Run: func(ctx context.Context) (int, error) {
			n := inFlight.Add(1)
			for {
				m := maxInFlight.Load()
				if n <= m || maxInFlight.CompareAndSwap(m, n) {
					break
				}
			}
			return i, nil
		}}
	}
	// Workers ≤ Window: Stream clamps the window up to the worker count,
	// so the bound under test is the window itself only in this regime.
	err := Stream(context.Background(), jobs, StreamOptions{Workers: 2, Window: window}, func(r Result[int]) error {
		inFlight.Add(-1)
		// Slow consumer: forces producers against the window.
		time.Sleep(100 * time.Microsecond)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if m := maxInFlight.Load(); m > window {
		t.Fatalf("observed %d results in flight, window is %d", m, window)
	}
}

// TestStreamContextCancel: caller cancellation surfaces as the
// context's error.
func TestStreamContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	jobs := make([]Job[int], 100)
	for i := range jobs {
		jobs[i] = Job[int]{Key: fmt.Sprintf("j%d", i), Run: func(c context.Context) (int, error) {
			select {
			case <-c.Done():
				return 0, c.Err()
			case <-time.After(time.Millisecond):
				return 0, nil
			}
		}}
	}
	done := make(chan error, 1)
	go func() {
		done <- Stream(ctx, jobs, StreamOptions{Workers: 2}, func(r Result[int]) error { return nil })
	}()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("got %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stream did not return after cancellation")
	}
}
