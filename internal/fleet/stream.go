package fleet

import (
	"context"
	"sync"
	"sync/atomic"
)

// StreamOptions configure one Stream call.
type StreamOptions struct {
	// Workers is the pool size; <=0 means runtime.GOMAXPROCS(0).
	Workers int
	// Window bounds how many results may exist between "produced" and
	// "emitted" at once; <=0 means 2×workers. Together with workers it
	// caps Stream's memory at O(window) results regardless of job
	// count — the property Run, which materializes every result,
	// cannot give.
	Window int
	// Metrics, when non-nil, receives fleet-wide counters.
	Metrics *Metrics
}

// Stream executes jobs on a worker pool like Run, but delivers each
// result to emit in submission order as soon as it and all its
// predecessors are done, holding at most Window results in flight.
// Emit calls are serialized on the caller's goroutine ordering
// (one at a time, ascending index), so emit may touch shared state
// without locking.
//
// Stream fail-fasts: the first job error, or an error returned by
// emit, cancels the remaining jobs and is returned. Results for jobs
// cancelled before starting carry the context error and are not
// emitted. Determinism contract: for a fixed job slice, the emit
// sequence is identical for any Workers/Window setting.
func Stream[T any](ctx context.Context, jobs []Job[T], opts StreamOptions, emit func(Result[T]) error) error {
	if len(jobs) == 0 {
		return ctx.Err()
	}
	workers := EffectiveWorkers(opts.Workers)
	if workers > len(jobs) {
		workers = len(jobs)
	}
	window := opts.Window
	if window <= 0 {
		window = 2 * workers
	}
	if window < workers {
		window = workers
	}
	if window > len(jobs) {
		window = len(jobs)
	}
	if opts.Metrics != nil {
		opts.Metrics.JobsTotal.Add(int64(len(jobs)))
	}
	parent := ctx
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	type slot struct {
		res   Result[T]
		ready bool
	}
	var (
		next    atomic.Int64 // index dispenser
		tickets = make(chan struct{}, window)
		resCh   = make(chan int, window) // indices of completed jobs
		ring    = make([]slot, window)   // reorder buffer, slot i%window
		wg      sync.WaitGroup
	)
	for i := 0; i < window; i++ {
		tickets <- struct{}{}
	}

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				// A ticket is held from job start until the consumer has
				// emitted the result — that is the in-flight bound.
				select {
				case <-tickets:
				case <-ctx.Done():
					return
				}
				i := int(next.Add(1)) - 1
				if i >= len(jobs) {
					tickets <- struct{}{}
					return
				}
				j := jobs[i]
				r := Result[T]{Key: j.Key}
				if err := ctx.Err(); err != nil {
					r.Err = err
				} else {
					r.Value, r.Err = runOne(ctx, j, 0)
					r.Attempts = 1
				}
				if opts.Metrics != nil {
					opts.Metrics.JobsDone.Add(1)
				}
				// The consumer owns slot i%window: the ticket protocol
				// guarantees no other job with the same residue can start
				// before this result is emitted.
				ring[i%window] = slot{res: r, ready: true}
				select {
				case resCh <- i:
				case <-ctx.Done():
					return
				}
			}
		}()
	}

	var firstErr error
	pending := make(map[int]bool, window)
	emitted := 0
consume:
	for emitted < len(jobs) {
		select {
		case i := <-resCh:
			pending[i] = true
		case <-ctx.Done():
			break consume
		}
		for pending[emitted] {
			delete(pending, emitted)
			s := &ring[emitted%window]
			r := s.res
			*s = slot{}
			emitted++
			skip := r.Err != nil && r.Attempts == 0 // cancelled before start
			if !skip {
				if err := emit(r); err != nil {
					firstErr = err
					cancel()
					break consume
				}
			}
			if r.Err != nil {
				// Fail fast, and stop emitting here so the emit sequence
				// (everything up to and including the first error) does
				// not depend on scheduling.
				firstErr = r.Err
				cancel()
				break consume
			}
			// Returning the ticket only now keeps completed-but-unemitted
			// results bounded by the window.
			tickets <- struct{}{}
		}
	}
	cancel()
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	// Only the caller's cancellation is an error; our own cancel above
	// is just shutdown.
	return parent.Err()
}
