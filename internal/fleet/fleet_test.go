package fleet

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"
)

// jobN builds n jobs whose value is a function of the job key and a
// key-split seed — the canonical deterministic-job shape.
func jobN(n int, base int64) []Job[float64] {
	jobs := make([]Job[float64], n)
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("job/%d", i)
		jobs[i] = Job[float64]{
			Key: key,
			Run: func(context.Context) (float64, error) {
				rng := rand.New(rand.NewSource(SeedFor(base, key)))
				s := 0.0
				for k := 0; k < 100; k++ {
					s += rng.Float64()
				}
				return s, nil
			},
		}
	}
	return jobs
}

func values(t *testing.T, res []Result[float64]) []float64 {
	t.Helper()
	out := make([]float64, len(res))
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("job %s: %v", r.Key, r.Err)
		}
		out[i] = r.Value
	}
	return out
}

func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	for _, workers := range []int{2, 4, 8} {
		res1, err := Run(context.Background(), jobN(32, 7), Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		resN, err := Run(context.Background(), jobN(32, 7), Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		v1, vN := values(t, res1), values(t, resN)
		for i := range v1 {
			if v1[i] != vN[i] {
				t.Fatalf("workers=%d: job %d = %v, serial = %v", workers, i, vN[i], v1[i])
			}
		}
	}
}

func TestRunPreservesSubmissionOrder(t *testing.T) {
	jobs := make([]Job[int], 64)
	for i := range jobs {
		i := i
		jobs[i] = Job[int]{Key: fmt.Sprintf("%d", i), Run: func(context.Context) (int, error) { return i, nil }}
	}
	res, err := Run(context.Background(), jobs, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if r.Value != i || r.Key != fmt.Sprintf("%d", i) {
			t.Fatalf("result %d = (%s, %d)", i, r.Key, r.Value)
		}
	}
}

func TestRunPanicRecovery(t *testing.T) {
	jobs := []Job[int]{
		{Key: "ok", Run: func(context.Context) (int, error) { return 1, nil }},
		{Key: "boom", Run: func(context.Context) (int, error) { panic("kaboom") }},
		{Key: "ok2", Run: func(context.Context) (int, error) { return 2, nil }},
	}
	res, err := Run(context.Background(), jobs, Options{Workers: 1, OnError: CollectAll})
	if err == nil {
		t.Fatal("expected an error from the panicking job")
	}
	if !strings.Contains(err.Error(), "boom") || !strings.Contains(err.Error(), "kaboom") {
		t.Errorf("error should identify the panicking job: %v", err)
	}
	if res[0].Value != 1 || res[0].Err != nil || res[2].Value != 2 || res[2].Err != nil {
		t.Errorf("healthy jobs should survive a sibling panic: %+v", res)
	}
	if res[1].Err == nil || !strings.Contains(res[1].Err.Error(), "panic") {
		t.Errorf("panic should surface as the job's error, got %v", res[1].Err)
	}
}

func TestRunFailFastSkipsQueuedJobs(t *testing.T) {
	ran := 0
	sentinel := errors.New("sim diverged")
	jobs := []Job[int]{
		{Key: "a", Run: func(context.Context) (int, error) { ran++; return 0, nil }},
		{Key: "b", Run: func(context.Context) (int, error) { ran++; return 0, sentinel }},
		{Key: "c", Run: func(context.Context) (int, error) { ran++; return 0, nil }},
		{Key: "d", Run: func(context.Context) (int, error) { ran++; return 0, nil }},
	}
	// workers=1 makes the skip deterministic: c and d are queued behind b.
	res, err := Run(context.Background(), jobs, Options{Workers: 1})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want the triggering job error", err)
	}
	if !strings.Contains(err.Error(), "b") {
		t.Errorf("error should carry the job key: %v", err)
	}
	if ran != 2 {
		t.Errorf("fail-fast ran %d jobs, want 2", ran)
	}
	for _, r := range res[2:] {
		if !errors.Is(r.Err, context.Canceled) {
			t.Errorf("queued job %s should be cancelled, got %v", r.Key, r.Err)
		}
	}
}

func TestRunCollectAllJoinsErrors(t *testing.T) {
	e1, e2 := errors.New("first"), errors.New("second")
	jobs := []Job[int]{
		{Key: "a", Run: func(context.Context) (int, error) { return 0, e1 }},
		{Key: "b", Run: func(context.Context) (int, error) { return 7, nil }},
		{Key: "c", Run: func(context.Context) (int, error) { return 0, e2 }},
	}
	res, err := Run(context.Background(), jobs, Options{Workers: 4, OnError: CollectAll})
	if !errors.Is(err, e1) || !errors.Is(err, e2) {
		t.Fatalf("joined error should carry both failures: %v", err)
	}
	if res[1].Value != 7 || res[1].Err != nil {
		t.Errorf("healthy job lost: %+v", res[1])
	}
}

func TestRunExternalCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	var extra atomic.Int64
	jobs := []Job[int]{
		{Key: "blocker", Run: func(ctx context.Context) (int, error) {
			close(started)
			<-ctx.Done()
			return 0, ctx.Err()
		}},
	}
	for i := 0; i < 8; i++ {
		jobs = append(jobs, Job[int]{Key: fmt.Sprintf("tail/%d", i), Run: func(context.Context) (int, error) {
			extra.Add(1)
			return 1, nil
		}})
	}
	go func() {
		<-started
		cancel()
	}()
	res, err := Run(ctx, jobs, Options{Workers: 1})
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := extra.Load(); got != 0 {
		t.Errorf("%d queued jobs ran after cancellation", got)
	}
	if !errors.Is(res[0].Err, context.Canceled) {
		t.Errorf("blocker error = %v", res[0].Err)
	}
}

func TestRunProgressAndMetrics(t *testing.T) {
	var m Metrics
	var calls atomic.Int64
	maxDone := 0
	jobs := jobN(16, 3)
	_, err := Run(context.Background(), jobs, Options{
		Workers: 4,
		Metrics: &m,
		Progress: func(done, total int, key string) {
			calls.Add(1)
			if total != len(jobs) {
				t.Errorf("total = %d", total)
			}
			if done > maxDone { // serialized by the pool, no lock needed
				maxDone = done
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != int64(len(jobs)) || maxDone != len(jobs) {
		t.Errorf("progress calls=%d maxDone=%d, want %d", calls.Load(), maxDone, len(jobs))
	}
	if m.JobsDone.Load() != int64(len(jobs)) {
		t.Errorf("JobsDone = %d", m.JobsDone.Load())
	}
}

func TestRunEmptyAndDefaultWorkers(t *testing.T) {
	res, err := Run[int](context.Background(), nil, Options{})
	if err != nil || len(res) != 0 {
		t.Fatalf("empty run: %v %v", res, err)
	}
	// Workers<=0 falls back to GOMAXPROCS; more workers than jobs is fine.
	res2, err := Run(context.Background(), jobN(2, 1), Options{Workers: -3})
	if err != nil || len(res2) != 2 {
		t.Fatalf("default workers: %v %v", res2, err)
	}
}

func TestSeedForStableAndKeySensitive(t *testing.T) {
	if SeedFor(2024, "V_Sp/0") != SeedFor(2024, "V_Sp/0") {
		t.Error("SeedFor must be deterministic")
	}
	seen := map[int64]string{}
	for _, key := range []string{"V_Sp/0", "V_Sp/1", "V_Sp/2", "Vzw_US/0", "fig01", "fig02", ""} {
		for _, base := range []int64{0, 1, 2024, -7} {
			s := SeedFor(base, key)
			id := fmt.Sprintf("%s@%d", key, base)
			if prev, dup := seen[s]; dup {
				t.Errorf("seed collision: %s and %s both map to %d", prev, id, s)
			}
			seen[s] = id
		}
	}
	// Worker identity must never enter the derivation: the function has
	// no worker parameter by design; this pins the (base, key) contract.
	if SeedFor(1, "a") == SeedFor(2, "a") {
		t.Error("base must influence the seed")
	}
	if SeedFor(1, "a") == SeedFor(1, "b") {
		t.Error("key must influence the seed")
	}
}
