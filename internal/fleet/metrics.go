package fleet

import "sync/atomic"

// Metrics aggregates fleet-wide progress counters. The pool maintains
// JobsDone; jobs add their own simulation volume (slots stepped, trace
// bytes written) as they complete. All fields are safe for concurrent
// use; CLIs read them after (or while) a run to report throughput on
// stderr.
type Metrics struct {
	// JobsDone counts completed jobs (successful or failed).
	JobsDone atomic.Int64
	// JobsTotal is the size of the job list, stored by Run at submission
	// so progress reporters can compute done/total and an ETA while the
	// pool is still draining.
	JobsTotal atomic.Int64
	// SlotsSimulated counts simulated PHY slots stepped by the jobs.
	SlotsSimulated atomic.Int64
	// TraceBytes counts bytes of xcal traces written to disk.
	TraceBytes atomic.Int64
	// Retries counts job attempts beyond the first (see
	// Options.MaxAttempts).
	Retries atomic.Int64
	// BackoffSimNs is the total simulated retry backoff in nanoseconds
	// (advanced on the SimClock, never slept).
	BackoffSimNs atomic.Int64
}
