package fleet

import "sync/atomic"

// Metrics aggregates fleet-wide progress counters. The pool maintains
// JobsDone; jobs add their own simulation volume (slots stepped, trace
// bytes written) as they complete. All fields are safe for concurrent
// use; CLIs read them after (or while) a run to report throughput on
// stderr.
type Metrics struct {
	// JobsDone counts completed jobs (successful or failed).
	JobsDone atomic.Int64
	// SlotsSimulated counts simulated PHY slots stepped by the jobs.
	SlotsSimulated atomic.Int64
	// TraceBytes counts bytes of xcal traces written to disk.
	TraceBytes atomic.Int64
}
