package fleet

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// flakyJob fails its first failures attempts with a transient error,
// then succeeds. Attempt counting comes from RunAttempt's index, not
// shared state, so the job is safe under any worker count.
func flakyJob(key string, failures int) Job[string] {
	return Job[string]{
		Key: key,
		RunAttempt: func(_ context.Context, attempt int) (string, error) {
			if attempt < failures {
				return "", fmt.Errorf("transient failure on attempt %d", attempt)
			}
			return fmt.Sprintf("%s/ok@%d", key, attempt), nil
		},
	}
}

func TestRunRetriesTransientErrors(t *testing.T) {
	var clock SimClock
	var m Metrics
	res, err := Run(context.Background(), []Job[string]{flakyJob("flaky", 2)}, Options{
		Workers:     1,
		MaxAttempts: 3,
		Clock:       &clock,
		Metrics:     &m,
	})
	if err != nil {
		t.Fatalf("job should recover within 3 attempts: %v", err)
	}
	if res[0].Attempts != 3 {
		t.Fatalf("Attempts = %d, want 3", res[0].Attempts)
	}
	if res[0].Value != "flaky/ok@2" {
		t.Fatalf("Value = %q, want success on attempt 2", res[0].Value)
	}
	if got := m.Retries.Load(); got != 2 {
		t.Fatalf("Metrics.Retries = %d, want 2", got)
	}
	// Exponential backoff on the simulated clock: 100ms + 200ms.
	if want := 300 * time.Millisecond; clock.Now() != want {
		t.Fatalf("simulated backoff = %v, want %v", clock.Now(), want)
	}
	if got := m.BackoffSimNs.Load(); got != int64(300*time.Millisecond) {
		t.Fatalf("Metrics.BackoffSimNs = %d, want %d", got, int64(300*time.Millisecond))
	}
}

func TestRunRetryExhaustion(t *testing.T) {
	transient := errors.New("still broken")
	var clock SimClock
	res, err := Run(context.Background(), []Job[string]{{
		Key:        "doomed",
		RunAttempt: func(context.Context, int) (string, error) { return "", transient },
	}}, Options{Workers: 1, MaxAttempts: 3, Clock: &clock, OnError: CollectAll})
	if !errors.Is(err, transient) {
		t.Fatalf("err = %v, want the job's transient error", err)
	}
	if res[0].Attempts != 3 {
		t.Fatalf("Attempts = %d, want MaxAttempts=3", res[0].Attempts)
	}
	if want := 300 * time.Millisecond; clock.Now() != want {
		t.Fatalf("simulated backoff = %v, want %v (100+200ms despite final failure)", clock.Now(), want)
	}
}

func TestRunPermanentErrorsAreNotRetried(t *testing.T) {
	base := errors.New("session aborted")
	var calls atomic.Int64
	res, err := Run(context.Background(), []Job[string]{{
		Key: "aborted",
		RunAttempt: func(context.Context, int) (string, error) {
			calls.Add(1)
			return "", Permanent(base)
		},
	}}, Options{Workers: 1, MaxAttempts: 5, OnError: CollectAll})
	if !errors.Is(err, base) {
		t.Fatalf("err = %v, want wrapped base error", err)
	}
	if res[0].Attempts != 1 || calls.Load() != 1 {
		t.Fatalf("permanent error retried: Attempts=%d calls=%d, want 1/1", res[0].Attempts, calls.Load())
	}
}

func TestRunRetriesPanics(t *testing.T) {
	// An injected worker panic is transient: the retry loop must
	// re-attempt it, and a later attempt can succeed.
	res, err := Run(context.Background(), []Job[int]{{
		Key: "panicky",
		RunAttempt: func(_ context.Context, attempt int) (int, error) {
			if attempt == 0 {
				panic("injected worker panic")
			}
			return attempt, nil
		},
	}}, Options{Workers: 1, MaxAttempts: 2})
	if err != nil {
		t.Fatalf("panic should be retried into success: %v", err)
	}
	if res[0].Attempts != 2 || res[0].Value != 1 {
		t.Fatalf("Attempts=%d Value=%d, want 2/1", res[0].Attempts, res[0].Value)
	}

	// With retry disabled the panic surfaces as the job error.
	res, err = Run(context.Background(), []Job[int]{{
		Key:        "panicky",
		RunAttempt: func(context.Context, int) (int, error) { panic("boom") },
	}}, Options{Workers: 1, OnError: CollectAll})
	if err == nil || !strings.Contains(res[0].Err.Error(), "panic: boom") {
		t.Fatalf("unretried panic not surfaced: err=%v jobErr=%v", err, res[0].Err)
	}
}

func TestRunDoesNotRetryAfterCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var calls atomic.Int64
	res, _ := Run(ctx, []Job[string]{{
		Key: "cancelled",
		RunAttempt: func(context.Context, int) (string, error) {
			calls.Add(1)
			cancel() // the pool context dies while the job is in flight
			return "", errors.New("transient")
		},
	}}, Options{Workers: 1, MaxAttempts: 5, OnError: CollectAll})
	if calls.Load() != 1 {
		t.Fatalf("job re-attempted %d times after cancellation, want 1 run", calls.Load())
	}
	if res[0].Attempts != 1 {
		t.Fatalf("Attempts = %d, want 1", res[0].Attempts)
	}
}

func TestRunRetryDeterministicAcrossWorkerCounts(t *testing.T) {
	// Retries happen inline on the owning worker, so attempt counts,
	// values and total simulated backoff must not depend on pool size.
	mk := func() []Job[string] {
		jobs := make([]Job[string], 16)
		for i := range jobs {
			// Jobs 0, 3, 6, … fail twice; 1, 4, 7, … once; rest succeed.
			jobs[i] = flakyJob(fmt.Sprintf("job/%d", i), (3-i%3)%3)
		}
		return jobs
	}
	var clock1 SimClock
	res1, err := Run(context.Background(), mk(), Options{Workers: 1, MaxAttempts: 3, Clock: &clock1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		var clockN SimClock
		resN, err := Run(context.Background(), mk(), Options{Workers: workers, MaxAttempts: 3, Clock: &clockN})
		if err != nil {
			t.Fatal(err)
		}
		for i := range res1 {
			if res1[i].Value != resN[i].Value || res1[i].Attempts != resN[i].Attempts {
				t.Fatalf("workers=%d job %d: (%q, %d) != serial (%q, %d)",
					workers, i, resN[i].Value, resN[i].Attempts, res1[i].Value, res1[i].Attempts)
			}
		}
		if clock1.Now() != clockN.Now() {
			t.Fatalf("workers=%d: simulated backoff %v != serial %v", workers, clockN.Now(), clock1.Now())
		}
	}
}

func TestPermanentNilAndUnwrap(t *testing.T) {
	if Permanent(nil) != nil {
		t.Fatal("Permanent(nil) must be nil")
	}
	base := errors.New("root cause")
	err := Permanent(base)
	if !errors.Is(err, base) {
		t.Fatal("Permanent must unwrap to the original error")
	}
	if !IsPermanent(err) || !IsPermanent(fmt.Errorf("wrapped: %w", err)) {
		t.Fatal("IsPermanent must see through wrapping")
	}
	if IsPermanent(base) {
		t.Fatal("unmarked error reported permanent")
	}
	if !IsPermanent(context.Canceled) || !IsPermanent(context.DeadlineExceeded) {
		t.Fatal("context errors must be permanent")
	}
}
