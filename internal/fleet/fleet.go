// Package fleet is a deterministic, sharded worker pool for simulation
// jobs. Campaigns, figure regeneration and experiment sweeps are
// embarrassingly parallel — independent sessions over independent links —
// so fleet fans them out across workers while keeping every output
// byte-identical to a serial run:
//
//   - results are collected in submission order, never completion order;
//   - randomness must be derived from the job key via [SeedFor] (or an
//     equivalent stable formula), never from worker identity, so
//     workers=1 and workers=N walk identical random sequences;
//   - panics inside a job are recovered into that job's error instead of
//     tearing down the whole campaign.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"github.com/midband5g/midband/internal/obs"
)

// Job is one unit of simulation work.
type Job[T any] struct {
	// Key identifies the job (operator acronym, session index, figure
	// ID, sweep arm). Any randomness the job needs must be derived from
	// the key and the campaign base seed — see SeedFor — so results do
	// not depend on which worker ran the job or when.
	Key string
	// Run executes the job. The context is cancelled when the pool
	// fail-fasts or the caller cancels; long jobs may poll it.
	Run func(ctx context.Context) (T, error)
	// RunAttempt, when non-nil, is used instead of Run and receives the
	// 0-based attempt index, so a retried job can vary deterministically
	// (fault-injection schedules re-draw transient faults per attempt).
	// Jobs that don't set it are retried by re-running Run verbatim.
	RunAttempt func(ctx context.Context, attempt int) (T, error)
}

// ErrorMode selects how Run reacts to a failing job.
type ErrorMode int

const (
	// FailFast cancels the pool context on the first job error; queued
	// jobs are skipped (their Err is the context error) and Run returns
	// the triggering error. In-flight jobs still run to completion — a
	// simulation slot loop cannot be interrupted mid-step.
	FailFast ErrorMode = iota
	// CollectAll runs every job regardless of failures and returns all
	// errors joined in submission order.
	CollectAll
)

// Options configure one Run call.
type Options struct {
	// Workers is the pool size; <=0 means runtime.GOMAXPROCS(0).
	Workers int
	// OnError selects fail-fast (default) or collect-all handling.
	OnError ErrorMode
	// Metrics, when non-nil, receives fleet-wide counters (JobsDone is
	// maintained by the pool; jobs add slots/bytes themselves).
	Metrics *Metrics
	// Progress, when non-nil, is called after each job completes with
	// the running completion count. Calls are serialized.
	Progress func(done, total int, key string)
	// MaxAttempts bounds per-job attempts: a job whose error is
	// transient (not [Permanent], not a context error) is retried up to
	// MaxAttempts-1 times, inline on the same worker so retry order
	// cannot depend on pool scheduling. 0 or 1 disables retry.
	MaxAttempts int
	// RetryBackoff is the base of the exponential backoff between
	// attempts (base, 2·base, 4·base, …), advanced on the simulated
	// Clock — never slept — so retries are free at the wall and the
	// accumulated backoff is deterministic. Defaults to 100ms when
	// MaxAttempts enables retry.
	RetryBackoff time.Duration
	// Clock, when non-nil, accumulates the simulated retry backoff.
	Clock *SimClock
}

// Result pairs a job with its outcome. Run returns results in submission
// order regardless of completion order.
type Result[T any] struct {
	Key   string
	Value T
	Err   error
	// Attempts is how many times the job ran (1 without retry; 0 when
	// the job was skipped by fail-fast cancellation).
	Attempts int
}

// Run executes the jobs on a worker pool and returns their results in
// submission order. The returned error is nil only if every job
// succeeded; per-job errors are also available on the results, so
// collect-all callers can salvage partial output.
// EffectiveWorkers resolves an Options.Workers value to the pool size
// Run would actually use: n itself, or GOMAXPROCS when n <= 0. Callers
// recording a worker count (e.g. in a RunManifest) should store this,
// not the raw flag value.
func EffectiveWorkers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

func Run[T any](ctx context.Context, jobs []Job[T], opts Options) ([]Result[T], error) {
	results := make([]Result[T], len(jobs))
	if len(jobs) == 0 {
		return results, nil
	}
	workers := EffectiveWorkers(opts.Workers)
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if opts.Metrics != nil {
		opts.Metrics.JobsTotal.Add(int64(len(jobs)))
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		next     atomic.Int64 // index dispenser: shards jobs over workers
		done     atomic.Int64
		failOnce sync.Once
		failErr  error // the error that triggered fail-fast; read after wg.Wait
		mu       sync.Mutex
		wg       sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				j := jobs[i]
				results[i].Key = j.Key
				if err := ctx.Err(); err != nil {
					results[i].Err = err
					continue
				}
				var t0 time.Time
				if obs.Enabled() {
					t0 = time.Now() //detlint:allow walltime job wall-cost metric behind the obs gate
				}
				v, err := runOne(ctx, j, 0)
				results[i].Attempts = 1
				// Bounded retry with simulated backoff: transient
				// failures re-attempt inline (same worker, ascending
				// attempt index), so the result sequence is identical
				// for any pool size.
				for attempt := 1; attempt < opts.MaxAttempts && err != nil &&
					!IsPermanent(err) && ctx.Err() == nil; attempt++ {
					results[i].Attempts++
					backoff := opts.RetryBackoff
					if backoff <= 0 {
						backoff = 100 * time.Millisecond
					}
					backoff <<= attempt - 1
					if opts.Clock != nil {
						opts.Clock.Advance(backoff)
					}
					if opts.Metrics != nil {
						opts.Metrics.Retries.Add(1)
						opts.Metrics.BackoffSimNs.Add(int64(backoff))
					}
					if obs.Enabled() {
						obs.Sim.FleetRetries.Inc()
					}
					v, err = runOne(ctx, j, attempt)
				}
				results[i].Value, results[i].Err = v, err
				if obs.Enabled() {
					// Wall time only — recording never touches job state.
					obs.Sim.FleetJobSeconds.Observe(time.Since(t0).Seconds()) //detlint:allow walltime write-only metric, never read by job code
					if err != nil {
						obs.Sim.FleetJobFailures.Inc()
					}
				}
				if err != nil && opts.OnError == FailFast {
					failOnce.Do(func() {
						failErr = fmt.Errorf("fleet: %s: %w", j.Key, err)
						cancel()
					})
				}
				if opts.Metrics != nil {
					opts.Metrics.JobsDone.Add(1)
				}
				if opts.Progress != nil {
					n := int(done.Add(1))
					mu.Lock()
					opts.Progress(n, len(jobs), j.Key)
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()

	if opts.OnError == FailFast {
		if failErr != nil {
			return results, failErr
		}
		// No job failed on its own; surface an external cancellation.
		for i := range results {
			if results[i].Err != nil {
				return results, fmt.Errorf("fleet: %s: %w", results[i].Key, results[i].Err)
			}
		}
		return results, nil
	}
	var errs []error
	for i := range results {
		if results[i].Err != nil {
			errs = append(errs, fmt.Errorf("fleet: %s: %w", results[i].Key, results[i].Err))
		}
	}
	return results, errors.Join(errs...)
}

// runOne executes one attempt of a job with panic recovery: a panicking
// simulation arm becomes that job's error, carrying the stack for the
// report. Panics are transient for retry purposes — an injected worker
// panic is exactly the failure mode retry exists for.
func runOne[T any](ctx context.Context, j Job[T], attempt int) (v T, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v\n%s", r, debug.Stack())
		}
	}()
	if j.RunAttempt != nil {
		return j.RunAttempt(ctx, attempt)
	}
	return j.Run(ctx)
}
