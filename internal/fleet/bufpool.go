package fleet

import (
	"bytes"
	"sync"
)

// bufPool recycles the per-job render buffers of fan-out consumers
// (cmd/figures renders every figure into its own buffer before emitting
// them in order). Pooling keeps a campaign-sized fan-out from holding one
// grown buffer per completed job.
var bufPool = sync.Pool{
	New: func() any { return new(bytes.Buffer) },
}

// maxPooledBufBytes bounds what returns to the pool: a figure render is
// tens of KB, so anything larger is an outlier not worth keeping alive.
const maxPooledBufBytes = 4 << 20

// GetBuffer returns an empty buffer from the pool. Pooling never affects
// results — buffers carry rendered bytes only, and callers consume them
// in deterministic job order before returning them.
func GetBuffer() *bytes.Buffer {
	b := bufPool.Get().(*bytes.Buffer)
	b.Reset()
	return b
}

// PutBuffer returns a buffer to the pool once its contents are consumed.
// Oversized buffers are dropped to bound pool memory.
func PutBuffer(b *bytes.Buffer) {
	if b == nil || b.Cap() > maxPooledBufBytes {
		return
	}
	bufPool.Put(b)
}
