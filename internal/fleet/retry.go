package fleet

import (
	"context"
	"errors"
	"sync/atomic"
	"time"
)

// SimClock is a simulated clock: retry backoff advances it instead of
// sleeping, so retries cost zero wall time and — unlike a wall clock —
// the accumulated backoff is deterministic and assertable in tests. The
// zero value is ready to use and safe for concurrent workers.
type SimClock struct {
	ns atomic.Int64
}

// Now returns the accumulated simulated time.
func (c *SimClock) Now() time.Duration { return time.Duration(c.ns.Load()) }

// Advance moves the clock forward by d.
func (c *SimClock) Advance(d time.Duration) { c.ns.Add(int64(d)) }

// permanentError marks an error as non-retryable.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// Permanent wraps err so the pool's retry loop will not re-attempt the
// job: the failure is structural (an aborted session, invalid config),
// not transient. A nil err returns nil.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// IsPermanent reports whether err (or anything it wraps) was marked
// with [Permanent]. Context cancellation is treated as permanent too:
// retrying a cancelled job can only observe the same cancellation.
func IsPermanent(err error) bool {
	var pe *permanentError
	return errors.As(err, &pe) ||
		errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
