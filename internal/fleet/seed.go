package fleet

// SeedFor derives a job-specific RNG seed by splitting the campaign base
// seed with a stable hash of the job key. The split is determinism by
// construction: the seed depends only on (base, key) — never on worker
// identity, pool size or completion order — so a job produces the same
// random sequence whether the fleet runs with one worker or many, on any
// platform.
//
// The key is hashed with FNV-1a (64-bit), mixed with the base seed via a
// golden-ratio multiply, and finalized with the splitmix64 mixer so that
// adjacent bases and near-identical keys still land on well-separated
// seeds.
func SeedFor(base int64, key string) int64 {
	const (
		fnvOffset = 14695981039346656037
		fnvPrime  = 1099511628211
	)
	h := uint64(fnvOffset)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= fnvPrime
	}
	x := h ^ (uint64(base) * 0x9E3779B97F4A7C15)
	// splitmix64 finalizer.
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return int64(x)
}
