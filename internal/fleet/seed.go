package fleet

import "strconv"

// SeedFor derives a job-specific RNG seed by splitting the campaign base
// seed with a stable hash of the job key. The split is determinism by
// construction: the seed depends only on (base, key) — never on worker
// identity, pool size or completion order — so a job produces the same
// random sequence whether the fleet runs with one worker or many, on any
// platform.
//
// The key is hashed with FNV-1a (64-bit), mixed with the base seed via a
// golden-ratio multiply, and finalized with the splitmix64 mixer so that
// adjacent bases and near-identical keys still land on well-separated
// seeds.
func SeedFor(base int64, key string) int64 {
	const (
		fnvOffset = 14695981039346656037
		fnvPrime  = 1099511628211
	)
	h := uint64(fnvOffset)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= fnvPrime
	}
	x := h ^ (uint64(base) * 0x9E3779B97F4A7C15)
	// splitmix64 finalizer.
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return int64(x)
}

// SplitSeed derives the seed for one component instance from a parent
// seed, a domain label and an instance index. It is the single
// documented spelling of seed splitting in this repository, replacing
// the ad-hoc `base + i*911 + 3`-style arithmetic that used to be
// scattered across gnb, operators and core: additive offsets collide
// (base+3 for one component equals base+1 of a sibling two seeds over)
// and correlate adjacent generators, while SplitSeed routes every
// derivation through the same keyed splitmix64 mix as [SeedFor], so
//
//   - distinct (domain, index) pairs land on well-separated seeds,
//   - the derivation depends only on (base, domain, index) — never on
//     worker identity, pool size or evaluation order, and
//   - a new component can claim a fresh domain string without auditing
//     every other component's offset constants.
//
// Conventional domains look like "gnb/channel" or an operator acronym;
// index distinguishes instances within the domain (UE number, session
// number, carrier index), with 0 for singletons.
func SplitSeed(base int64, domain string, index int) int64 {
	return SeedFor(base, domain+"#"+strconv.Itoa(index))
}
