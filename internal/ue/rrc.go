package ue

import (
	"fmt"
	"time"
)

// RRCState is the radio resource control connection state.
type RRCState uint8

const (
	// RRCIdle means no active connection; data triggers a promotion.
	RRCIdle RRCState = iota
	// RRCConnecting is the promotion in progress.
	RRCConnecting
	// RRCConnected is fully connected.
	RRCConnected
)

func (s RRCState) String() string {
	switch s {
	case RRCIdle:
		return "idle"
	case RRCConnecting:
		return "connecting"
	default:
		return "connected"
	}
}

// RRCConfig parameterizes the state machine.
type RRCConfig struct {
	// PromotionDelay is the idle→connected latency (control-plane setup).
	PromotionDelay time.Duration
	// InactivityTimeout demotes connected→idle after this much silence.
	InactivityTimeout time.Duration
}

// DefaultRRC reflects typical NSA deployments: ~120 ms promotion, 10 s
// inactivity release.
var DefaultRRC = RRCConfig{
	PromotionDelay:    120 * time.Millisecond,
	InactivityTimeout: 10 * time.Second,
}

// RRC models the connection state over time. The paper's methodology plays
// 20 s of video and waits 5 s before each experiment so measurements always
// start in RRCConnected; the campaign runner reproduces that warm-up.
type RRC struct {
	cfg          RRCConfig
	state        RRCState
	stateSince   time.Duration
	lastActivity time.Duration
}

// NewRRC creates an idle state machine.
func NewRRC(cfg RRCConfig) (*RRC, error) {
	if cfg.PromotionDelay < 0 || cfg.InactivityTimeout <= 0 {
		return nil, fmt.Errorf("ue: invalid RRC config %+v", cfg)
	}
	return &RRC{cfg: cfg}, nil
}

// State returns the current state.
func (r *RRC) State() RRCState { return r.state }

// Touch records data activity at time now, promoting if idle. It returns
// the delay until the data can actually flow (zero when connected).
func (r *RRC) Touch(now time.Duration) time.Duration {
	r.lastActivity = now
	switch r.state {
	case RRCIdle:
		r.state = RRCConnecting
		r.stateSince = now
		return r.cfg.PromotionDelay
	case RRCConnecting:
		remaining := r.cfg.PromotionDelay - (now - r.stateSince)
		if remaining <= 0 {
			r.state = RRCConnected
			r.stateSince = now
			return 0
		}
		return remaining
	default:
		return 0
	}
}

// Reestablish models the RRC re-establishment a radio-link failure
// triggers: whatever the current state, the connection drops back to
// connecting at time now and the promotion delay must elapse again
// before data flows. It returns that delay, mirroring Touch.
func (r *RRC) Reestablish(now time.Duration) time.Duration {
	r.state = RRCConnecting
	r.stateSince = now
	r.lastActivity = now
	return r.cfg.PromotionDelay
}

// Tick advances time, completing promotions and applying the inactivity
// timeout.
func (r *RRC) Tick(now time.Duration) {
	switch r.state {
	case RRCConnecting:
		if now-r.stateSince >= r.cfg.PromotionDelay {
			r.state = RRCConnected
			r.stateSince = now
		}
	case RRCConnected:
		if now-r.lastActivity >= r.cfg.InactivityTimeout {
			r.state = RRCIdle
			r.stateSince = now
		}
	}
}
