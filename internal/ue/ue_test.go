package ue

import (
	"math"
	"testing"
	"time"

	"github.com/midband5g/midband/internal/phy"
)

func csiConfig() CSIConfig {
	return CSIConfig{Table: phy.CQITable256QAM, Seed: 4}
}

func TestCSIDefaultsAndValidation(t *testing.T) {
	c, err := NewCSI(csiConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := c.Config()
	if cfg.MaxRank != 4 || cfg.PeriodSlots != 40 || cfg.DelaySlots != 8 {
		t.Errorf("defaults wrong: %+v", cfg)
	}
	bad := csiConfig()
	bad.MaxRank = 5
	if _, err := NewCSI(bad); err == nil {
		t.Error("max rank 5 should fail")
	}
	bad = csiConfig()
	bad.RankThresholdsDB = [3]float64{10, 9, 8}
	if _, err := NewCSI(bad); err == nil {
		t.Error("non-increasing thresholds should fail")
	}
}

func TestCSIReportingDelay(t *testing.T) {
	c, err := NewCSI(csiConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Current(); ok {
		t.Error("no report before first observation matures")
	}
	// Report generated at slot 0 must not be visible until slot 8.
	for slot := int64(0); slot < 8; slot++ {
		c.Observe(slot, 20)
		if _, ok := c.Current(); ok && slot < 8 {
			t.Fatalf("report visible at slot %d, before the %d-slot delay", slot, 8)
		}
	}
	c.Observe(8, 20)
	rep, ok := c.Current()
	if !ok {
		t.Fatal("report should be visible at slot 8")
	}
	if rep.Slot != 0 {
		t.Errorf("report generated at slot %d, want 0", rep.Slot)
	}
	if rep.CQI == 0 || rep.RI < 1 {
		t.Errorf("suspicious report %+v", rep)
	}
}

func TestCSIRankTracksSINR(t *testing.T) {
	run := func(sinr float64) float64 {
		c, err := NewCSI(csiConfig())
		if err != nil {
			t.Fatal(err)
		}
		total, n := 0.0, 0
		for slot := int64(0); slot < 40*200; slot++ {
			c.Observe(slot, sinr)
			if rep, ok := c.Current(); ok && slot%40 == 39 {
				total += float64(rep.RI)
				n++
			}
		}
		return total / float64(n)
	}
	low, mid, high := run(4), run(14), run(26)
	if !(low < mid && mid < high) {
		t.Errorf("mean rank should grow with SINR: %g, %g, %g", low, mid, high)
	}
	if high < 3.8 {
		t.Errorf("26 dB SINR should almost always give rank 4, got mean %g", high)
	}
	if low > 1.5 {
		t.Errorf("4 dB SINR should mostly give rank 1, got mean %g", low)
	}
}

func TestCSICQIGradeCap(t *testing.T) {
	cfg := csiConfig()
	cfg.Table = phy.CQITable64QAM
	c, _ := NewCSI(cfg)
	for slot := int64(0); slot < 400; slot++ {
		c.Observe(slot, 40) // superb channel
	}
	rep, ok := c.Current()
	if !ok || rep.CQI != 15 {
		t.Fatalf("excellent channel should report CQI 15, got %+v ok=%v", rep, ok)
	}
}

func TestCSIOutageReportsZero(t *testing.T) {
	c, _ := NewCSI(csiConfig())
	for slot := int64(0); slot < 100; slot++ {
		c.Observe(slot, math.Inf(-1))
	}
	rep, ok := c.Current()
	if !ok || rep.CQI != 0 {
		t.Errorf("outage should produce CQI 0, got %+v", rep)
	}
}

func TestRRCLifecycle(t *testing.T) {
	r, err := NewRRC(DefaultRRC)
	if err != nil {
		t.Fatal(err)
	}
	if r.State() != RRCIdle {
		t.Error("fresh RRC should be idle")
	}
	d := r.Touch(0)
	if d != DefaultRRC.PromotionDelay || r.State() != RRCConnecting {
		t.Errorf("first touch: delay %v state %v", d, r.State())
	}
	// Touch midway through promotion returns the remaining time.
	if d := r.Touch(60 * time.Millisecond); d != 60*time.Millisecond {
		t.Errorf("mid-promotion remaining = %v, want 60ms", d)
	}
	r.Tick(130 * time.Millisecond)
	if r.State() != RRCConnected {
		t.Errorf("after promotion delay state = %v", r.State())
	}
	if d := r.Touch(200 * time.Millisecond); d != 0 {
		t.Errorf("connected touch should be free, got %v", d)
	}
	// Inactivity demotes.
	r.Tick(200*time.Millisecond + DefaultRRC.InactivityTimeout)
	if r.State() != RRCIdle {
		t.Errorf("after inactivity state = %v", r.State())
	}
	if _, err := NewRRC(RRCConfig{PromotionDelay: -1, InactivityTimeout: time.Second}); err == nil {
		t.Error("negative promotion delay should fail")
	}
	if RRCIdle.String() != "idle" || RRCConnecting.String() != "connecting" || RRCConnected.String() != "connected" {
		t.Error("state strings wrong")
	}
}
