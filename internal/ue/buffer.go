package ue

import "time"

// Buffer is a minimal RLC-style downlink buffer for one UE: traffic
// arrives at a configured offered rate, transport blocks drain it, and
// the scheduler asks Backlogged before granting. The zero value (and any
// non-positive offered rate) is a full buffer — always backlogged, never
// drained — which is the saturating iperf load the paper's bulk
// transfers apply. A finite offered rate makes the UE an intermittent
// contender: it empties its backlog in TB-sized bursts and goes quiet
// until arrivals refill it, which is what gives multi-UE cells their
// load-dependent RB utilization.
type Buffer struct {
	// arrivalBits is the per-slot arrival volume; negative marks the
	// full-buffer (saturating) mode.
	arrivalBits float64
	backlog     float64
}

// NewBuffer builds a buffer fed at offeredMbps with the given slot
// duration. offeredMbps <= 0 selects the full-buffer mode.
func NewBuffer(offeredMbps float64, slot time.Duration) Buffer {
	if offeredMbps <= 0 {
		return Buffer{arrivalBits: -1}
	}
	return Buffer{arrivalBits: offeredMbps * 1e6 * slot.Seconds()}
}

// Full reports whether the buffer is in the saturating full-buffer mode.
func (b *Buffer) Full() bool { return b.arrivalBits < 0 }

// Arrive credits one slot's worth of traffic. A no-op in full-buffer
// mode (the backlog is conceptually infinite).
func (b *Buffer) Arrive() {
	if b.arrivalBits > 0 {
		b.backlog += b.arrivalBits
	}
}

// Backlogged reports whether the UE has at least one bit to send — the
// scheduler's eligibility test.
func (b *Buffer) Backlogged() bool {
	return b.arrivalBits < 0 || b.backlog >= 1
}

// BacklogBits returns the queued volume (0 in full-buffer mode, whose
// backlog is unbounded by definition).
func (b *Buffer) BacklogBits() float64 {
	if b.arrivalBits < 0 {
		return 0
	}
	return b.backlog
}

// Drain removes a delivered transport block from the backlog and returns
// the payload it actually carried: the full TB in full-buffer mode, at
// most the backlog otherwise (the final TB of a burst carries padding,
// which is not goodput).
func (b *Buffer) Drain(bits int) int {
	if b.arrivalBits < 0 {
		return bits
	}
	p := float64(bits)
	if p > b.backlog {
		p = b.backlog
	}
	b.backlog -= p
	return int(p)
}
