// Package ue models the user-equipment side of the radio loop: periodic CSI
// feedback (CQI/RI, Appendix 10.2 of the paper) and the RRC state machine
// whose idle→connected promotion delay the measurement methodology controls
// for (§2, step ❺).
package ue

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/midband5g/midband/internal/obs"
	"github.com/midband5g/midband/internal/phy"
)

// CSIConfig parameterizes the feedback loop.
type CSIConfig struct {
	// Table is the configured CQI table (64QAM or 256QAM grade).
	Table phy.CQITable
	// MaxRank is the maximum rank the UE may report (≤ 4).
	MaxRank int
	// PeriodSlots is the reporting period (tens of ms in the paper;
	// 40 slots = 20 ms at 30 kHz SCS).
	PeriodSlots int
	// DelaySlots is the age of the report when the gNB applies it
	// (propagation + processing; 8 slots = 4 ms).
	DelaySlots int
	// RankThresholdsDB are the SINR thresholds (dB) above which the UE
	// reports rank 2, 3 and 4. Deployment quality shifts how often the
	// channel clears them — the §4.1 MIMO-layer mechanism.
	RankThresholdsDB [3]float64
	// RankHysteresisDB avoids rank flapping on small SINR moves.
	RankHysteresisDB float64
	// LayerPenaltyExp makes per-layer SINR sinr/r^exp; values > 1 model
	// inter-layer interference.
	LayerPenaltyExp float64
	// CQIOptimismDB is how optimistic the reported CQI is relative to the
	// Shannon mapping of the per-layer SINR. Real UEs report per-codeword
	// post-MMSE quality (including array gain), which runs a few dB above
	// the effective delivered efficiency; the gNB's outer loop absorbs
	// the bias when selecting MCS. Default 3 dB. This is why field CQI
	// sits at 12–15 in good coverage while delivered spectral efficiency
	// corresponds to CQI ≈ 10–11.
	CQIOptimismDB float64
	// Seed drives report jitter.
	Seed int64
}

func (c CSIConfig) withDefaults() CSIConfig {
	if c.MaxRank == 0 {
		c.MaxRank = 4
	}
	if c.PeriodSlots == 0 {
		c.PeriodSlots = 40
	}
	if c.DelaySlots == 0 {
		c.DelaySlots = 8
	}
	if c.RankThresholdsDB == [3]float64{} {
		c.RankThresholdsDB = [3]float64{8, 13, 17}
	}
	if c.RankHysteresisDB == 0 {
		c.RankHysteresisDB = 1
	}
	if c.LayerPenaltyExp == 0 {
		c.LayerPenaltyExp = 1.0
	}
	if c.CQIOptimismDB == 0 {
		c.CQIOptimismDB = 3.0
	}
	return c
}

// Validate checks the configuration.
func (c CSIConfig) Validate() error {
	c = c.withDefaults()
	if c.MaxRank < 1 || c.MaxRank > 4 {
		return fmt.Errorf("ue: max rank %d out of range", c.MaxRank)
	}
	if c.PeriodSlots < 1 || c.DelaySlots < 0 {
		return fmt.Errorf("ue: bad CSI timing period=%d delay=%d", c.PeriodSlots, c.DelaySlots)
	}
	if !(c.RankThresholdsDB[0] < c.RankThresholdsDB[1] && c.RankThresholdsDB[1] < c.RankThresholdsDB[2]) {
		return fmt.Errorf("ue: rank thresholds %v not increasing", c.RankThresholdsDB)
	}
	return nil
}

// Report is one CSI report: the rank indicator and CQI the UE feeds back.
type Report struct {
	// Slot is when the report was generated.
	Slot int64
	// RI is the rank indicator.
	RI int
	// CQI is the per-layer channel quality indicator.
	CQI phy.CQI
}

// CSI is the feedback state machine. The gNB queries Current to get the
// report in effect (the most recent one older than the feedback delay) —
// the lag is what makes AMC trail the channel, one of the §6 stall
// mechanisms.
type CSI struct {
	cfg      CSIConfig
	rng      *rand.Rand
	lastRank int
	pending  []Report // reports generated but not yet visible to the gNB
	current  Report
	primed   bool
}

// NewCSI creates a CSI feedback loop.
func NewCSI(cfg CSIConfig) (*CSI, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &CSI{
		cfg:      cfg,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		lastRank: 1,
	}, nil
}

// Config returns the effective configuration.
func (c *CSI) Config() CSIConfig { return c.cfg }

// rankFor picks the reported rank from the instantaneous SINR with
// hysteresis around the previous rank's threshold.
//
//detlint:zeroalloc
func (c *CSI) rankFor(sinrDB float64) int {
	jitter := c.rng.NormFloat64() * 0.5
	s := sinrDB + jitter
	rank := 1
	for i, th := range c.cfg.RankThresholdsDB {
		eff := th
		switch {
		case c.lastRank >= i+2:
			eff -= c.cfg.RankHysteresisDB // stickiness: keep high rank
		case c.lastRank < i+2:
			eff += c.cfg.RankHysteresisDB
		}
		if s > eff {
			rank = i + 2
		}
	}
	if rank > c.cfg.MaxRank {
		rank = c.cfg.MaxRank
	}
	return rank
}

// Observe feeds one slot's SINR into the loop. On reporting slots a new
// report is generated; reports become visible to Current after DelaySlots.
//
//detlint:zeroalloc
func (c *CSI) Observe(slot int64, sinrDB float64) {
	// Promote matured reports, compacting the queue in place so its
	// backing array is reused (re-slicing from the front would leak
	// capacity and re-allocate on every later append).
	n := 0
	for n < len(c.pending) && slot-c.pending[n].Slot >= int64(c.cfg.DelaySlots) {
		c.current = c.pending[n]
		c.primed = true
		n++
	}
	if n > 0 {
		c.pending = c.pending[:copy(c.pending, c.pending[n:])]
	}
	if slot%int64(c.cfg.PeriodSlots) != 0 {
		return
	}
	if math.IsInf(sinrDB, -1) { // outage: out-of-range report
		c.pending = append(c.pending, Report{Slot: slot, RI: 1, CQI: 0})
		if obs.Enabled() {
			obs.Sim.CQIReports.Inc()
			obs.Sim.CQI.Observe(0)
		}
		return
	}
	rank := c.rankFor(sinrDB)
	c.lastRank = rank
	perLayer := math.Pow(10, (sinrDB+c.cfg.CQIOptimismDB)/10) /
		math.Pow(float64(rank), c.cfg.LayerPenaltyExp)
	se := math.Log2(1 + perLayer)
	cqi := c.cfg.Table.CQIFromEfficiency(se)
	c.pending = append(c.pending, Report{Slot: slot, RI: rank, CQI: cqi})
	// Observability only; never read back into the feedback loop.
	if obs.Enabled() {
		obs.Sim.CQIReports.Inc()
		obs.Sim.CQI.Observe(float64(cqi))
	}
}

// Current returns the report in effect at the gNB, and false if no report
// has matured yet.
//
//detlint:zeroalloc
func (c *CSI) Current() (Report, bool) {
	return c.current, c.primed
}

// Reset desynchronizes the feedback loop, as a radio-link failure does:
// pending and current reports are discarded (the gNB's CSI context is
// gone after RRC re-establishment) and the rank memory returns to its
// initial state. The loop re-primes through Observe — a fresh report
// must be generated and mature through the feedback delay before
// Current reports true again. Reset draws no randomness and keeps the
// pending queue's backing array, so it is safe on the zero-alloc slot
// path.
//
//detlint:zeroalloc
func (c *CSI) Reset() {
	c.pending = c.pending[:0]
	c.current = Report{}
	c.primed = false
	c.lastRank = 1
}
