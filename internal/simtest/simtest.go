// Package simtest is a lightweight property/invariant harness for the
// simulator: each property runs over a deterministic sweep of derived
// seeds, and a failure prints the exact seed (and a replay command) so
// the offending realization can be re-run in isolation with
// SIMTEST_SEED. The invariants it enforces — resource conservation,
// feedback-loop sanity, capacity bounds, fault recovery — are the
// structural facts every figure in the paper quietly assumes; see
// invariants_test.go for the suite.
package simtest

import (
	"fmt"
	"os"
	"strconv"
	"testing"

	"github.com/midband5g/midband/internal/fleet"
)

// BaseSeed anchors the derived seed sweep. Properties never use it
// directly: each case seed is fleet.SplitSeed(BaseSeed, property, index),
// so adding a property (or widening one's sweep) never shifts the seeds
// of the others.
const BaseSeed int64 = 2024

// SeedEnv is the environment variable that replays a single failing
// seed: SIMTEST_SEED=<seed> go test ./internal/simtest -run <Property>.
const SeedEnv = "SIMTEST_SEED"

// Run executes property fn once per derived seed, as subtests named by
// the seed. With SeedEnv set, only that seed runs — the replay path for
// a reported failure. On failure the subtest logs the seed and a replay
// command, so a red CI run is reproducible from its output alone.
func Run(t *testing.T, property string, cases int, fn func(t *testing.T, seed int64)) {
	t.Helper()
	if env := os.Getenv(SeedEnv); env != "" {
		seed, err := strconv.ParseInt(env, 10, 64)
		if err != nil {
			t.Fatalf("simtest: %s=%q is not an int64: %v", SeedEnv, env, err)
		}
		runSeed(t, seed, fn)
		return
	}
	for i := 0; i < cases; i++ {
		runSeed(t, fleet.SplitSeed(BaseSeed, "simtest/"+property, i), fn)
	}
}

func runSeed(t *testing.T, seed int64, fn func(t *testing.T, seed int64)) {
	t.Helper()
	t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
		defer func() {
			if t.Failed() {
				t.Logf("replay: %s=%d go test -run '%s' ./internal/simtest", SeedEnv, seed, t.Name())
			}
		}()
		fn(t, seed)
	})
}
