package simtest_test

import (
	"testing"

	"github.com/midband5g/midband/internal/channel"
	"github.com/midband5g/midband/internal/gnb"
	"github.com/midband5g/midband/internal/simtest"
)

// checkContentionAlloc is checkAlloc relaxed for the contention model:
// finite-traffic UEs drain only their backlog from the final TB of a
// burst, so DeliveredBits may sit anywhere in [0, TBS] (the rest is
// padding). The structural bounds are unchanged.
func checkContentionAlloc(t *testing.T, slot int64, a gnb.Alloc, nrb int) {
	t.Helper()
	if a.RBs < 1 || a.RBs > nrb {
		t.Fatalf("slot %d: RBs %d outside [1, %d]", slot, a.RBs, nrb)
	}
	if a.Rank < 1 || a.Rank > 4 {
		t.Fatalf("slot %d: rank %d outside [1, 4]", slot, a.Rank)
	}
	if bound := a.REs * a.Rank * maxBitsPerRE; a.TBSBits > bound {
		t.Fatalf("slot %d: TBS %d bits exceeds capacity %d (REs=%d rank=%d)",
			slot, a.TBSBits, bound, a.REs, a.Rank)
	}
	if a.DeliveredBits < 0 || a.DeliveredBits > a.TBSBits {
		t.Fatalf("slot %d: goodput %d outside [0, TBS %d]", slot, a.DeliveredBits, a.TBSBits)
	}
	if !a.ACK && a.DeliveredBits != 0 {
		t.Fatalf("slot %d: NACKed TB delivered %d bits", slot, a.DeliveredBits)
	}
}

// contentionStepper is the slice of the cell API the invariant sweep
// needs; both the scalar *gnb.Cell and the batched *gnb.CellBatch
// satisfy it, so the same sweep certifies both engines.
type contentionStepper interface {
	Step() gnb.CellSlot
	NumUEs() int
	ServedRate(i int) float64
}

// sweepContentionInvariants drives one engine for 20000 slots and
// asserts per slot: RB conservation summed across the whole UE set, at
// most one grant per UE (a HARQ retransmission consumes the UE's slot),
// HARQ retransmission counts within the configured cap, CQI-0 slots
// carrying retransmissions only (they were sized by an earlier report;
// fresh grants need a current CQI), the structural per-TB bounds, and
// the PF window's ≥1 clamp.
func sweepContentionInvariants(t *testing.T, cell contentionStepper, nrb, maxRetx int) {
	granted := make([]bool, cell.NumUEs())
	for s := 0; s < 20000; s++ {
		slot := cell.Step()
		sum := 0
		for i := range granted {
			granted[i] = false
		}
		for _, a := range slot.Allocs {
			if granted[a.UE] {
				t.Fatalf("slot %d: UE %d granted twice", slot.Slot, a.UE)
			}
			granted[a.UE] = true
			if int(a.Alloc.HARQRetx) > maxRetx {
				t.Fatalf("slot %d: UE %d at retx %d, cap %d", slot.Slot, a.UE, a.Alloc.HARQRetx, maxRetx)
			}
			if a.CQI == 0 && a.Alloc.HARQRetx == 0 {
				t.Fatalf("slot %d: UE %d got a fresh grant with CQI 0", slot.Slot, a.UE)
			}
			checkContentionAlloc(t, slot.Slot, a.Alloc, nrb)
			sum += a.Alloc.RBs
		}
		if sum > nrb {
			t.Fatalf("slot %d: %d RBs granted on a %d-RB carrier", slot.Slot, sum, nrb)
		}
		for i := 0; i < cell.NumUEs(); i++ {
			if r := cell.ServedRate(i); r < 1 {
				t.Fatalf("slot %d: UE %d PF served rate %g below the ≥1 clamp", slot.Slot, i, r)
			}
		}
	}
}

// contentionSweepConfig is the shared mixed-traffic five-UE scenario the
// invariant sweeps run on.
func contentionSweepConfig(pol gnb.SchedulerPolicy, seed int64) gnb.CellConfig {
	return gnb.CellConfig{
		Carrier: carrierConfig(seed),
		UEs: []channel.Point{
			{X: 120}, {X: 450}, {X: 800, Y: 300}, {X: 1200}, {X: 300, Y: -200},
		},
		Traffic: []gnb.UETraffic{
			{}, {OfferedMbps: 20}, {}, {OfferedMbps: 5}, {},
		},
		Policy: pol,
		Model:  gnb.CellModelContention,
		Seed:   seed,
	}
}

var sweepPolicies = []gnb.SchedulerPolicy{
	gnb.SchedulerEqualShare,
	gnb.SchedulerProportionalFair,
	gnb.SchedulerMaxRate,
	gnb.SchedulerRoundRobin,
}

// TestContentionSchedulerInvariants sweeps every policy over the full
// contention model — five UEs, mixed full-buffer and finite traffic —
// on the scalar engine.
func TestContentionSchedulerInvariants(t *testing.T) {
	for _, pol := range sweepPolicies {
		pol := pol
		t.Run(pol.String(), func(t *testing.T) {
			simtest.Run(t, "contention/"+pol.String(), 3, func(t *testing.T, seed int64) {
				cfg := contentionSweepConfig(pol, seed)
				cell, err := gnb.NewCell(cfg)
				if err != nil {
					t.Fatal(err)
				}
				got := cell.Config().Carrier // defaults applied
				sweepContentionInvariants(t, cell, got.NRB, got.MaxHARQRetx)
			})
		})
	}
}

// TestBatchContentionSchedulerInvariants runs the identical sweep
// through the batched SoA engine. Lockstep tests already pin the batch
// engine to the scalar one draw-for-draw; this sweep asserts the
// scheduler contracts directly against the batch output, so a future
// batch-only fast path that drifts from the scalar reference still has
// the invariants checked at its own boundary.
func TestBatchContentionSchedulerInvariants(t *testing.T) {
	for _, pol := range sweepPolicies {
		pol := pol
		t.Run(pol.String(), func(t *testing.T) {
			simtest.Run(t, "batch/"+pol.String(), 3, func(t *testing.T, seed int64) {
				cfg := contentionSweepConfig(pol, seed)
				cell, err := gnb.NewCell(cfg)
				if err != nil {
					t.Fatal(err)
				}
				batch, err := gnb.NewCellBatch(cell)
				if err != nil {
					t.Fatal(err)
				}
				got := cell.Config().Carrier // defaults applied
				sweepContentionInvariants(t, batch, got.NRB, got.MaxHARQRetx)
			})
		})
	}
}

// TestContentionPFNoStarvation is the PF fairness contract: with every
// UE backlogged, the window-smoothed metric must hand each contender a
// non-trivial fraction of the scheduled slots — even the cell-edge UE
// whose instantaneous rate never wins outright.
func TestContentionPFNoStarvation(t *testing.T) {
	simtest.Run(t, "contention/pf-starvation", 3, func(t *testing.T, seed int64) {
		cfg := gnb.CellConfig{
			Carrier: carrierConfig(seed),
			UEs: []channel.Point{
				{X: 120}, {X: 450}, {X: 900}, {X: 1500},
			},
			Policy: gnb.SchedulerProportionalFair,
			Model:  gnb.CellModelContention,
			Seed:   seed,
		}
		cell, err := gnb.NewCell(cfg)
		if err != nil {
			t.Fatal(err)
		}
		bits := make([]float64, cell.NumUEs())
		slots := make([]float64, cell.NumUEs())
		var totalSlots float64
		for s := 0; s < 40000; s++ {
			for _, a := range cell.Step().Allocs {
				bits[a.UE] += float64(a.Alloc.DeliveredBits)
				slots[a.UE]++
				totalSlots++
			}
		}
		for i := range bits {
			if bits[i] == 0 {
				t.Errorf("UE %d delivered nothing in 40000 slots under PF", i)
			}
			if share := slots[i] / totalSlots; share < 0.01 {
				t.Errorf("UE %d scheduled-slot share %.4f, want ≥ 0.01 (PF must not starve)", i, share)
			}
		}
	})
}
