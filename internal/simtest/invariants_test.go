package simtest_test

import (
	"testing"

	"github.com/midband5g/midband/internal/channel"
	"github.com/midband5g/midband/internal/fault"
	"github.com/midband5g/midband/internal/gnb"
	"github.com/midband5g/midband/internal/phy"
	"github.com/midband5g/midband/internal/simtest"
	"github.com/midband5g/midband/internal/tdd"
)

// maxBitsPerRE is the hard spectral ceiling per resource element and
// layer: 256QAM carries 8 coded bits, and the code rate is < 1, so no
// transport block can pack more information bits than 8·REs·layers.
const maxBitsPerRE = 8

// carrierConfig is the shared mid-band carrier the invariants run on,
// shaped like the paper's 90 MHz n78 deployments.
func carrierConfig(seed int64) gnb.CarrierConfig {
	return gnb.CarrierConfig{
		Label:      "simtest/90MHz",
		Numerology: phy.Mu1,
		NRB:        245,
		Pattern:    tdd.MustParse("DDDDDDDSUU"),
		MCSTable:   phy.MCSTable256QAM,
		Channel: channel.Config{
			CarrierFreqMHz:           3500,
			Route:                    channel.Stationary(channel.Point{X: 450}),
			Deployment:               channel.Deployment{Sites: []channel.Point{{}}, TxPowerDBmPerRE: 18},
			OtherCellInterferenceDBm: -100,
			ShadowSigmaDB:            2,
			FastSigmaDB:              1.2,
		},
		ULSINROffsetDB: 6,
		ULMaxRank:      2,
		Seed:           seed,
	}
}

// checkAlloc asserts the per-allocation invariants every scheduled TB
// must satisfy regardless of policy, direction or fault state.
func checkAlloc(t *testing.T, slot int64, a gnb.Alloc, nrb int) {
	t.Helper()
	if a.RBs < 1 || a.RBs > nrb {
		t.Fatalf("slot %d: RBs %d outside [1, %d]", slot, a.RBs, nrb)
	}
	if a.Rank < 1 || a.Rank > 4 {
		t.Fatalf("slot %d: rank %d outside [1, 4]", slot, a.Rank)
	}
	if bound := a.REs * a.Rank * maxBitsPerRE; a.TBSBits > bound {
		t.Fatalf("slot %d: TBS %d bits exceeds capacity %d (REs=%d rank=%d)",
			slot, a.TBSBits, bound, a.REs, a.Rank)
	}
	if a.DeliveredBits != 0 && a.DeliveredBits != a.TBSBits {
		t.Fatalf("slot %d: delivered %d is neither 0 nor TBS %d", slot, a.DeliveredBits, a.TBSBits)
	}
	if a.DeliveredBits > a.TBSBits {
		t.Fatalf("slot %d: goodput %d exceeds TBS %d", slot, a.DeliveredBits, a.TBSBits)
	}
}

// TestCellSchedulerInvariants sweeps every scheduler policy and asserts,
// per slot: the granted RBs never exceed the carrier's NRB (resource
// conservation), no UE is granted twice, no UE with CQI 0 is scheduled,
// every allocation obeys the capacity bound, and the PF window stays at
// or above its ≥1 clamp (so the PF metric can never divide by zero).
func TestCellSchedulerInvariants(t *testing.T) {
	policies := []gnb.SchedulerPolicy{
		gnb.SchedulerEqualShare,
		gnb.SchedulerProportionalFair,
		gnb.SchedulerMaxRate,
	}
	for _, pol := range policies {
		pol := pol
		t.Run(pol.String(), func(t *testing.T) {
			simtest.Run(t, "cell/"+pol.String(), 3, func(t *testing.T, seed int64) {
				cfg := gnb.CellConfig{
					Carrier: carrierConfig(seed),
					UEs: []channel.Point{
						{X: 120}, {X: 450}, {X: 800, Y: 300}, {X: 1500},
					},
					Policy: pol,
					Seed:   seed,
				}
				cell, err := gnb.NewCell(cfg)
				if err != nil {
					t.Fatal(err)
				}
				granted := make([]bool, cell.NumUEs())
				for s := 0; s < 20000; s++ {
					slot := cell.Step()
					sum := 0
					for i := range granted {
						granted[i] = false
					}
					for _, a := range slot.Allocs {
						if granted[a.UE] {
							t.Fatalf("slot %d: UE %d granted twice", slot.Slot, a.UE)
						}
						granted[a.UE] = true
						if a.CQI == 0 {
							t.Fatalf("slot %d: UE %d scheduled with CQI 0", slot.Slot, a.UE)
						}
						checkAlloc(t, slot.Slot, a.Alloc, cfg.Carrier.NRB)
						sum += a.Alloc.RBs
					}
					if sum > cfg.Carrier.NRB {
						t.Fatalf("slot %d: %d RBs granted on a %d-RB carrier", slot.Slot, sum, cfg.Carrier.NRB)
					}
					for i := 0; i < cell.NumUEs(); i++ {
						if r := cell.ServedRate(i); r < 1 {
							t.Fatalf("slot %d: UE %d PF served rate %g below the ≥1 clamp", slot.Slot, i, r)
						}
					}
				}
			})
		})
	}
}

// TestCarrierGrantInvariants runs the single-UE carrier with mixed
// DL/UL full-buffer demand and asserts that a slot whose effective CQI
// report is 0 never carries a *new* grant — only HARQ retransmissions,
// which were sized by an earlier report, may proceed — and that every
// allocation obeys the structural bounds.
func TestCarrierGrantInvariants(t *testing.T) {
	simtest.Run(t, "carrier/grants", 4, func(t *testing.T, seed int64) {
		c, err := gnb.NewCarrier(carrierConfig(seed))
		if err != nil {
			t.Fatal(err)
		}
		nrb := c.Config().NRB
		for s := 0; s < 50000; s++ {
			r := c.Step(gnb.FullBuffer, gnb.FullBuffer)
			for _, a := range []*gnb.Alloc{r.DL, r.UL} {
				if a == nil {
					continue
				}
				checkAlloc(t, r.Slot, *a, nrb)
				if r.CQI == 0 && a.HARQRetx == 0 {
					t.Fatalf("slot %d: new grant (retx=0) with CQI 0", r.Slot)
				}
			}
		}
	})
}

// TestRLFRecoveryResyncs mirrors the carrier's injected radio-link
// failure process draw-for-draw (the injector is deterministic, so the
// test can predict every failure slot), then asserts the two sides of
// the recovery contract: while re-establishment is pending the carrier
// schedules nothing, and after the last failure clears, the desynced
// CSI loop re-primes and data eventually flows again.
func TestRLFRecoveryResyncs(t *testing.T) {
	simtest.Run(t, "carrier/rlf", 3, func(t *testing.T, seed int64) {
		const (
			slots      = 40000
			rlfProb    = 4e-4
			reestSlots = 200
		)
		cfg := carrierConfig(seed)
		cfg.FDD = true // every slot is DL-capable: no TDD holes in the assertion
		cfg.Pattern = tdd.Pattern{}
		cfg.Fault = &fault.RLF{ProbPerSlot: rlfProb, ReestablishSlots: reestSlots, Seed: seed}
		c, err := gnb.NewCarrier(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Lockstep mirror of the injector: same config, same seed, one
		// draw per slot — the test knows exactly when each RLF fires.
		mirror := fault.NewRLFState(&fault.RLF{ProbPerSlot: rlfProb, ReestablishSlots: reestSlots, Seed: seed})
		var blockedUntil, lastClear, fires int64
		deliveredAfterClear := false
		for s := int64(0); s < slots; s++ {
			r := c.Step(gnb.FullBuffer, gnb.Demand{})
			if mirror.Step() {
				if s >= blockedUntil {
					fires++ // the carrier counts window-opening fires only
				}
				blockedUntil = s + reestSlots
				lastClear = blockedUntil
			}
			if s < blockedUntil && r.DL != nil {
				t.Fatalf("slot %d: DL grant during RRC re-establishment (blocked until %d)", s, blockedUntil)
			}
			if s >= lastClear && r.DL != nil && r.DL.DeliveredBits > 0 {
				deliveredAfterClear = true
			}
		}
		if fires == 0 {
			t.Fatalf("no RLF fired in %d slots at p=%g — sweep too short to test recovery", slots, rlfProb)
		}
		if got := c.RLFs(); got != fires {
			t.Fatalf("carrier counted %d RLFs, mirror predicted %d", got, fires)
		}
		if lastClear < slots-2000 && !deliveredAfterClear {
			t.Fatalf("no data delivered after the last RLF cleared at slot %d (ran to %d): CSI never re-synced", lastClear, slots)
		}
	})
}
