package simtest_test

import (
	"bytes"
	"context"
	"math"
	"math/rand"
	"sort"
	"testing"
	"time"

	"github.com/midband5g/midband/internal/analysis"
	"github.com/midband5g/midband/internal/simtest"
	"github.com/midband5g/midband/internal/xcal"
	"github.com/midband5g/midband/internal/xcol"
)

// sketchValues draws the heavy-tailed mixed-sign stream (plus exact
// zeros, the outage-slot case) the quantile sketch must summarize.
func sketchValues(rng *rand.Rand, n int) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		x := math.Exp(rng.NormFloat64()*2) * 50
		if i%3 == 0 {
			x = -x
		}
		if i%500 == 0 {
			x = 0
		}
		xs[i] = x
	}
	return xs
}

// TestSketchMergeInvariants checks that sketch merging is associative
// and commutative in the strongest useful sense: any sharding of a
// stream, merged in any order and any grouping, serializes to the byte
// string of the serial sketch. This is what lets a parallel trace scan
// reduce per-block sketches without a deterministic merge schedule.
func TestSketchMergeInvariants(t *testing.T) {
	simtest.Run(t, "sketch-merge", 6, func(t *testing.T, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		xs := sketchValues(rng, 10_000+rng.Intn(20_000))

		ref := analysis.NewSketch()
		for _, x := range xs {
			ref.Add(x)
		}
		want := ref.AppendBinary(nil)

		for _, shards := range []int{2, 3, 7, 16} {
			parts := make([]*analysis.Sketch, shards)
			for i := range parts {
				parts[i] = analysis.NewSketch()
			}
			for i, x := range xs {
				parts[i%shards].Add(x)
			}

			// Commutativity: a seeded permutation of the merge order.
			order := rng.Perm(shards)
			merged := analysis.NewSketch()
			for _, i := range order {
				merged.Merge(parts[i])
			}
			if got := merged.AppendBinary(nil); !bytes.Equal(got, want) {
				t.Fatalf("%d shards merged in order %v: digest differs from serial sketch", shards, order)
			}

			// Associativity: left-fold vs right-fold groupings.
			left := analysis.NewSketch()
			for i := 0; i < shards; i++ {
				left.Merge(parts[i])
			}
			right := analysis.NewSketch()
			for i := shards - 1; i >= 0; i-- {
				right.Merge(parts[i])
			}
			lb, rb := left.AppendBinary(nil), right.AppendBinary(nil)
			if !bytes.Equal(lb, want) || !bytes.Equal(rb, want) {
				t.Fatalf("%d shards: fold direction changed the digest", shards)
			}
		}
	})
}

// TestSketchQuantileErrorBoundSweep sweeps seeds and stream sizes and
// checks the advertised relative-accuracy guarantee |q̂-q|/|q| ≤ α
// against exact sorted quantiles.
func TestSketchQuantileErrorBoundSweep(t *testing.T) {
	simtest.Run(t, "sketch-quantile", 8, func(t *testing.T, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		n := 5_000 + rng.Intn(45_000)
		xs := sketchValues(rng, n)
		s := analysis.NewSketch()
		for _, x := range xs {
			s.Add(x)
		}
		sort.Float64s(xs)
		for _, q := range []float64{0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
			exact := xs[int(q*float64(n-1))]
			got := s.Quantile(q)
			if exact == 0 {
				if got != 0 {
					t.Errorf("q=%g: got %g, want exact 0", q, got)
				}
				continue
			}
			if rel := math.Abs(got-exact) / math.Abs(exact); rel > analysis.SketchAlpha {
				t.Errorf("q=%g: got %g, exact %g, relative error %g > %g",
					q, got, exact, rel, analysis.SketchAlpha)
			}
		}
	})
}

// TestScanShardedSketchByteIdentity is the end-to-end worker-count
// invariant: sketching a columnar trace through the parallel block scan
// must produce byte-identical digests for workers=1 and workers=N, and
// both must match a plain sequential pass over the same records. The
// scan shards the decode, never the statistics.
func TestScanShardedSketchByteIdentity(t *testing.T) {
	simtest.Run(t, "scan-sketch", 3, func(t *testing.T, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		n := xcol.BlockCap*3 + rng.Intn(2*xcol.BlockCap)

		var buf bytes.Buffer
		w, err := xcol.NewWriter(&buf, xcal.Meta{Operator: "sim", SlotDuration: 500 * time.Microsecond})
		if err != nil {
			t.Fatal(err)
		}
		ref := analysis.NewSketch()
		for i := 0; i < n; i++ {
			sinr := float32(rng.NormFloat64()*8 + 15)
			k := xcal.SlotKPI{
				Slot:   int64(i),
				Time:   time.Duration(i) * 500 * time.Microsecond,
				RAT:    xcal.NR,
				SINRdB: sinr,
			}
			if err := w.WriteKPI(&k); err != nil {
				t.Fatal(err)
			}
			ref.Add(float64(sinr))
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		want := ref.AppendBinary(nil)

		data := bytes.NewReader(buf.Bytes())
		for _, workers := range []int{1, 4} {
			s := analysis.NewSketch()
			stats, err := xcol.ScanBlocks(context.Background(), data, int64(buf.Len()),
				xcol.ScanOptions{Workers: workers, Columns: 1 << xcol.ColSINRdB},
				func(b *xcol.Block) error {
					blockSketch := analysis.NewSketch()
					for i := 0; i < b.Count; i++ {
						blockSketch.Add(float64(b.SINRdB[i]))
					}
					s.Merge(blockSketch)
					return nil
				})
			if err != nil {
				t.Fatal(err)
			}
			if stats.Records != uint64(n) || len(stats.Skipped) != 0 {
				t.Fatalf("workers=%d: scanned %d/%d records, %d skipped",
					workers, stats.Records, n, len(stats.Skipped))
			}
			if got := s.AppendBinary(nil); !bytes.Equal(got, want) {
				t.Fatalf("workers=%d: merged digest differs from the sequential sketch", workers)
			}
		}
	})
}
