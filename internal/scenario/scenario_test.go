package scenario

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/midband5g/midband/internal/obs"
)

// validBulk is a minimal spec every mutation test starts from.
const validBulk = `{
	"schema": 1,
	"name": "t",
	"traffic": {"app": "bulk"},
	"route": {"kind": "stationary"},
	"band_plan": {"operators": ["V_Sp"]},
	"population": {},
	"sessions": {"count": 1, "duration_sec": 2}
}`

// Every shipped pack must decode through the strict path, keep its map
// key as its name, and hash to a stable digest — the identity run
// manifests record. A digest change here means the pack's semantics
// changed and downstream artifact comparisons silently broke.
func TestPacksDecode(t *testing.T) {
	wantDigests := map[string]string{
		"cloud-gaming": "fe339ccb69",
		"mec-video":    "987421c1ca",
		"uplink-heavy": "8952e01df6",
		"voip":         "b9fb408da3",
		"web-browsing": "fafc0f5918",
	}
	names := PackNames()
	if len(names) != len(wantDigests) {
		t.Fatalf("PackNames() = %v, want %d packs", names, len(wantDigests))
	}
	for _, name := range names {
		s, err := Pack(name)
		if err != nil {
			t.Fatalf("Pack(%q): %v", name, err)
		}
		if s.Name != name {
			t.Errorf("pack %q decodes with name %q", name, s.Name)
		}
		if s.Description == "" || s.Paper == "" {
			t.Errorf("pack %q ships without description or paper citation", name)
		}
		digest, err := s.Digest()
		if err != nil {
			t.Fatal(err)
		}
		if got := digest[:10]; got != wantDigests[name] {
			t.Errorf("pack %q digest %s..., want %s... — its canonical spec changed", name, got, wantDigests[name])
		}
	}
	if _, err := Pack("no-such-pack"); err == nil || !strings.Contains(err.Error(), "shipped:") {
		t.Errorf("unknown pack error %v must list the shipped packs", err)
	}
}

// Decode is strict: structural damage is an error naming the problem,
// never a half-parsed spec.
func TestDecodeStructuralErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"empty", ``, "decoding spec"},
		{"not json", `}{`, "decoding spec"},
		{"unknown field", `{"schema": 1, "name": "t", "bogus": 3}`, "bogus"},
		{"trailing data", validBulk + `{"schema": 1}`, "trailing data"},
		{"schema mismatch", `{"schema": 99, "name": "t", "traffic": {"app": "bulk"}, "sessions": {"duration_sec": 1}}`, "schema 99 unsupported"},
		{"wrong type", `{"schema": "one"}`, "decoding spec"},
	}
	for _, c := range cases {
		if _, err := Decode([]byte(c.src)); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: Decode = %v, want it to mention %q", c.name, err, c.want)
		}
	}
}

// Validate must reject every cross-field contradiction with a message
// that points at the offending JSON. Each case is the valid bulk spec
// plus one mutation.
func TestValidateCrossField(t *testing.T) {
	mutate := func(fn func(*Spec)) *Spec {
		s, err := Decode([]byte(validBulk))
		if err != nil {
			t.Fatal(err)
		}
		fn(s)
		return s
	}
	cases := []struct {
		name string
		fn   func(*Spec)
		want string
	}{
		{"no name", func(s *Spec) { s.Name = " " }, "no name"},
		{"unknown app", func(s *Spec) { s.Traffic.App = "ftp" }, `unknown traffic app "ftp"`},
		{"web knob on bulk", func(s *Spec) { s.Traffic.PageKB = 100 }, "page_kb/think_time_ms only apply"},
		{"probe knob on bulk", func(s *Spec) { s.Traffic.ProbeCount = 10 }, "probe_count only applies"},
		{"budget knob on bulk", func(s *Spec) { s.Traffic.LatencyBudgetMS = 30 }, "latency_budget_ms only applies"},
		{"negative probes", func(s *Spec) { s.Traffic.App = AppVoIP; s.Traffic.ProbeCount = -1 }, "negative probe_count"},
		{"unknown route", func(s *Spec) { s.Route.Kind = "flying" }, `unknown route kind "flying"`},
		{"stationary length", func(s *Spec) { s.Route.LengthM = 100 }, "length_m set on a stationary route"},
		{"negative geometry", func(s *Spec) { s.Route.Kind = RouteWalking; s.Route.LengthM = -5 }, "negative route geometry"},
		{"unknown operator", func(s *Spec) { s.BandPlan.Operators = []string{"Nope_XX"} }, "band plan"},
		{"duplicate operator", func(s *Spec) { s.BandPlan.Operators = []string{"V_Sp", "V_Sp"} }, "lists V_Sp twice"},
		{"compare_lte on bulk", func(s *Spec) { s.BandPlan.CompareLTE = true }, "compare_lte only applies"},
		{"negative ues", func(s *Spec) { s.Population.UEsPerCell = -2 }, "negative ues_per_cell"},
		{"policy without ues", func(s *Spec) { s.Population.CellPolicy = "pf" }, "without ues_per_cell"},
		{"bad policy", func(s *Spec) { s.Population.UEsPerCell = 4; s.Population.CellPolicy = "lifo" }, "lifo"},
		{"bad faults", func(s *Spec) { s.Faults = "bogus=1" }, `unknown spec key "bogus"`},
		{"inert faults", func(s *Spec) { s.Faults = "seed=4" }, "arms no fault class"},
		{"zero count", func(s *Spec) { s.Sessions.Count = -1 }, "sessions.count -1 < 1"},
		{"no duration", func(s *Spec) { s.Sessions.DurationSec = 0 }, "duration_sec 0 must be positive"},
		{"video section on bulk", func(s *Spec) { s.Video = &VideoGrid{ABRs: []string{"bola"}, Ladder: "400", ChunkSec: 4, MediaSec: 8} }, `video section set but traffic app is "bulk"`},
	}
	for _, c := range cases {
		if err := mutate(c.fn).Validate(); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: Validate = %v, want it to mention %q", c.name, err, c.want)
		}
	}
}

func TestValidateVideoGrid(t *testing.T) {
	base := func() *Spec {
		s, err := Pack("mec-video")
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	cases := []struct {
		name string
		fn   func(*Spec)
		want string
	}{
		{"duration on video", func(s *Spec) { s.Sessions.DurationSec = 5 }, "drop sessions.duration_sec"},
		{"no video section", func(s *Spec) { s.Video = nil }, "requires a video section"},
		{"no abrs", func(s *Spec) { s.Video.ABRs = nil }, "at least one ABR"},
		{"unknown abr", func(s *Spec) { s.Video.ABRs = []string{"oracle"} }, `unknown ABR "oracle"`},
		{"duplicate abr", func(s *Spec) { s.Video.ABRs = []string{"bola", "bola"} }, `lists ABR "bola" twice`},
		{"unknown ladder", func(s *Spec) { s.Video.Ladder = "8k" }, `unknown ladder "8k"`},
		{"zero chunk", func(s *Spec) { s.Video.ChunkSec = 0 }, "chunk_sec 0 must be positive"},
		{"short media", func(s *Spec) { s.Video.MediaSec = 1 }, "shorter than one chunk"},
		{"hit ratio", func(s *Spec) { s.Video.Edge.HitRatio = 1.5 }, "hit_ratio 1.5 outside [0,1]"},
		{"negative rtt", func(s *Spec) { s.Video.Edge.EdgeRTTMS = -1 }, "negative edge RTTs"},
		{"edge beyond origin", func(s *Spec) { s.Video.Edge.EdgeRTTMS = 50 }, "the cache must be closer"},
	}
	for _, c := range cases {
		s := base()
		c.fn(s)
		if err := s.Validate(); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: Validate = %v, want it to mention %q", c.name, err, c.want)
		}
	}
}

// Normalize is idempotent and materializes every default, so Canonical
// output round-trips through Decode to a DeepEqual spec.
func TestNormalizeIdempotentAndCanonicalRoundTrip(t *testing.T) {
	packs, err := Packs()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range packs {
		twice := *s
		twice.Normalize()
		if !reflect.DeepEqual(&twice, s) {
			t.Errorf("pack %s: Normalize is not idempotent: %+v vs %+v", s.Name, twice, *s)
		}
		canonical, err := s.Canonical()
		if err != nil {
			t.Fatal(err)
		}
		back, err := Decode(canonical)
		if err != nil {
			t.Fatalf("pack %s: canonical JSON does not re-decode: %v", s.Name, err)
		}
		if !reflect.DeepEqual(back, s) {
			t.Errorf("pack %s: Decode(Canonical()) is not the identity", s.Name)
		}
	}
}

// Defaults: a sparse spec fills in documented values.
func TestNormalizeDefaults(t *testing.T) {
	s, err := Decode([]byte(`{
		"schema": 1, "name": "defaults",
		"traffic": {"app": "web"},
		"route": {},
		"band_plan": {}, "population": {},
		"sessions": {"duration_sec": 3}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if s.SeedDomain != "defaults" {
		t.Errorf("seed domain %q, want the spec name", s.SeedDomain)
	}
	if s.Route.Kind != RouteStationary || s.Sessions.Count != 1 {
		t.Errorf("route/count defaults not applied: %+v", s)
	}
	if s.Traffic.PageKB != 1500 || s.Traffic.ThinkTimeMS != 2000 {
		t.Errorf("web defaults not applied: %+v", s.Traffic)
	}
	if s.Duration() != 3*time.Second {
		t.Errorf("Duration() = %v, want 3s", s.Duration())
	}
	ops, err := s.Operators()
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) < 5 {
		t.Errorf("empty band plan resolved to %d operators, want the full mid-band registry", len(ops))
	}
	sched, err := s.Schedule()
	if err != nil || sched != nil {
		t.Errorf("Schedule() on a fault-free spec = (%v, %v), want (nil, nil)", sched, err)
	}
}

// QuickScale shrinks without mutating the original, still validates,
// and changes the digest — a quick run must be attributable as one.
func TestQuickScale(t *testing.T) {
	packs, err := Packs()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range packs {
		before, err := s.Digest()
		if err != nil {
			t.Fatal(err)
		}
		q := s.QuickScale()
		after, err := s.Digest()
		if err != nil {
			t.Fatal(err)
		}
		if before != after {
			t.Fatalf("pack %s: QuickScale mutated the receiver", s.Name)
		}
		if err := q.Validate(); err != nil {
			t.Errorf("pack %s: quick spec invalid: %v", s.Name, err)
		}
		if q.Sessions.Count > 2 || q.Sessions.DurationSec > 2 || q.Traffic.ProbeCount > 200 {
			t.Errorf("pack %s: quick spec not shrunk: %+v", s.Name, q)
		}
		if q.Video != nil && q.Video.MediaSec > 24 {
			t.Errorf("pack %s: quick media_sec %g > 24", s.Name, q.Video.MediaSec)
		}
		qd, err := q.Digest()
		if err != nil {
			t.Fatal(err)
		}
		if shrunk := !reflect.DeepEqual(q, s); shrunk && qd == before {
			t.Errorf("pack %s: quick spec differs but digests collide", s.Name)
		}
	}
}

func TestStampManifest(t *testing.T) {
	s, err := Pack("voip")
	if err != nil {
		t.Fatal(err)
	}
	var m obs.RunManifest
	if err := s.StampManifest(&m); err != nil {
		t.Fatal(err)
	}
	digest, err := s.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if m.Scenario != "voip" || m.ScenarioDigest != digest {
		t.Errorf("manifest stamped as (%q, %q), want (voip, %s)", m.Scenario, m.ScenarioDigest, digest)
	}
}
