package scenario

import (
	"context"
	"fmt"
	"strings"
	"time"

	"github.com/midband5g/midband/internal/analysis"
	"github.com/midband5g/midband/internal/core"
	"github.com/midband5g/midband/internal/fault"
	"github.com/midband5g/midband/internal/fleet"
	"github.com/midband5g/midband/internal/gnb"
	"github.com/midband5g/midband/internal/obs"
)

// Options parameterizes one scenario run. The spec owns everything that
// shapes results except the base seed; Options carries only run-level
// concerns (seed, parallelism, observability) so the same spec file can
// be replayed at any seed and worker count.
type Options struct {
	// Seed is the campaign base seed (default 2024). Every job seed
	// derives from it through the spec's seed domain.
	Seed int64
	// Workers bounds the fleet fan-out (<=0: GOMAXPROCS).
	Workers int
	// Metrics, when non-nil, receives fleet counters.
	Metrics *fleet.Metrics
	// Progress, when non-nil, is called after each job completes.
	Progress func(done, total int, key string)
	// TraceDir/TraceFormat pass through to the bulk campaign (traces
	// are a bulk-app concern; app drivers produce KPI reports only).
	TraceDir    string
	TraceFormat string
}

func (o Options) withDefaults() Options {
	if o.Seed == 0 {
		o.Seed = 2024
	}
	return o
}

// Edge condition names, as the MEC evaluation pipelines print them.
const (
	EdgeOn  = "EDGE_ON"
	EdgeOff = "EDGE_OFF"
)

// AppReport aggregates one operator's sessions for an app workload.
// Which fields are meaningful depends on the app; report.Scenario
// renders only the relevant columns.
type AppReport struct {
	Operator string
	// Sessions is how many sessions contributed (less than the spec's
	// count when fault injection failed some).
	Sessions int

	// Web: mean pages per session and page-load latency over all
	// completed pages.
	Pages          float64
	PageLoadMeanMs float64
	PageLoadP95Ms  float64

	// VoIP/gaming: user-plane latency probes (with retransmissions),
	// the E-model MOS (voip) and the frame-budget violation fraction
	// (gaming).
	LatencyMeanMs float64
	LatencyP95Ms  float64
	MOS           float64
	LateFrac      float64

	// Throughput KPIs (uplink: the NR-vs-LTE leg split; gaming: DL
	// headroom).
	DLMbps, ULMbps, NRULMbps, LTEULMbps float64
}

// VideoCell is one (operator, ABR, edge condition) grid cell.
type VideoCell struct {
	Operator string
	ABR      string
	Edge     string // EdgeOn or EdgeOff
	Sessions int
	// NormBitrate, StallPct and QoE are means over contributing
	// sessions; QoE is normalized bitrate minus stall fraction.
	NormBitrate float64
	StallPct    float64
	QoE         float64
	// EdgeHitPct is the observed cache-hit percentage (0 for EdgeOff).
	EdgeHitPct float64
	// QoEs are the per-session scores, in session order, NaN for
	// failed sessions — the pairing material.
	QoEs []float64
}

// VideoPair is the paired EDGE_ON-vs-EDGE_OFF comparison for one
// (operator, ABR): both arms of every pair share a channel realization,
// so the difference isolates the cache.
type VideoPair struct {
	Operator string
	ABR      string
	// QoEOn/QoEOff are the paired-session means.
	QoEOn, QoEOff float64
	// Stats summarizes the per-session differences ON−OFF.
	Stats analysis.Paired
}

// VideoResult is the MEC grid outcome.
type VideoResult struct {
	Ladder   string
	ChunkSec float64
	HitRatio float64
	Cells    []VideoCell
	Pairs    []VideoPair
}

// Result is one scenario run's outcome. Exactly one of Bulk, Reports or
// Video is populated, per the spec's traffic app; MultiUE is the
// shared-cell contention arm when the population section arms it.
type Result struct {
	// Name and Digest identify the spec that ran.
	Name   string
	Digest string
	App    string

	// Bulk holds the legacy campaign statistics (AppBulk only). Its
	// failure provenance lives in Bulk.Failures.
	Bulk *core.CampaignStats
	// Reports holds per-operator app KPIs (web, voip, gaming, uplink).
	Reports []AppReport
	// Video holds the MEC grid (AppVideo only).
	Video *VideoResult

	// MultiUE is the contention arm, in band-plan order.
	MultiUE []core.MultiUEReport
	// Failures lists app/video sessions lost to faults after retries,
	// in submission order (bulk failures live in Bulk.Failures).
	Failures []core.SessionFailure
	// BackoffSim is the total simulated retry backoff.
	BackoffSim time.Duration
}

// CampaignConfig maps a bulk spec onto the legacy campaign
// configuration — the bridge that makes a spec mirroring today's CLI
// flags produce a DeepEqual campaign (conformance_test.go pins it).
func (s *Spec) CampaignConfig(opts Options) (core.CampaignConfig, error) {
	if s.Traffic.App != AppBulk {
		return core.CampaignConfig{}, fmt.Errorf("scenario: %s: app %q has no campaign mapping", s.Name, s.Traffic.App)
	}
	opts = opts.withDefaults()
	ops, err := s.Operators()
	if err != nil {
		return core.CampaignConfig{}, err
	}
	sched, err := s.Schedule()
	if err != nil {
		return core.CampaignConfig{}, err
	}
	cfg := core.CampaignConfig{
		Operators:           ops,
		SessionDuration:     s.Duration(),
		SessionsPerOperator: s.Sessions.Count,
		TraceDir:            opts.TraceDir,
		TraceFormat:         opts.TraceFormat,
		Seed:                opts.Seed,
		Workers:             opts.Workers,
		Faults:              sched,
		Metrics:             opts.Metrics,
		Progress:            opts.Progress,
	}
	if s.Population.UEsPerCell > 1 {
		cfg.UEsPerCell = s.Population.UEsPerCell
		policy, err := s.cellPolicy()
		if err != nil {
			return core.CampaignConfig{}, err
		}
		cfg.CellPolicy = policy
	}
	return cfg, nil
}

// Run executes the scenario: one fleet job per arm session, aggregated
// in spec order so results are byte-identical for any Workers value,
// with the spec's fault schedule (if any) driving graceful degradation
// exactly as the legacy campaign does.
func Run(ctx context.Context, s *Spec, opts Options) (*Result, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	digest, err := s.Digest()
	if err != nil {
		return nil, err
	}
	res := &Result{Name: s.Name, Digest: digest, App: s.Traffic.App}

	switch s.Traffic.App {
	case AppBulk:
		cfg, err := s.CampaignConfig(opts)
		if err != nil {
			return nil, err
		}
		stats, err := core.RunCampaignContext(ctx, cfg)
		if err != nil {
			return nil, fmt.Errorf("scenario: %s: %w", s.Name, err)
		}
		res.Bulk = stats
		res.MultiUE = stats.MultiUE
		res.BackoffSim = stats.BackoffSim
		return res, nil
	case AppVideo:
		if err := runVideoGrid(ctx, s, opts, res); err != nil {
			return nil, err
		}
	default:
		if err := runApp(ctx, s, opts, res); err != nil {
			return nil, err
		}
	}

	if s.Population.UEsPerCell > 1 {
		policy, err := s.cellPolicy()
		if err != nil {
			return nil, err
		}
		ops, err := s.Operators()
		if err != nil {
			return nil, err
		}
		mu, err := core.RunMultiUEContext(ctx, core.MultiUEConfig{
			Operators:  ops,
			UEsPerCell: s.Population.UEsPerCell,
			Policy:     policy,
			Duration:   s.Duration(),
			Seed:       opts.Seed,
			Workers:    opts.Workers,
			Metrics:    opts.Metrics,
		})
		if err != nil {
			return nil, fmt.Errorf("scenario: %s: multi-UE arm: %w", s.Name, err)
		}
		res.MultiUE = mu
	}
	return res, nil
}

// runJobs fans session jobs over the fleet with the campaign's
// graceful-degradation contract: with faults armed every job runs,
// transients retry with simulated backoff, and survivors become
// failure provenance. Results come back in submission order.
func runJobs[T any](ctx context.Context, s *Spec, opts Options, jobs []fleet.Job[T]) ([]fleet.Result[T], time.Duration, error) {
	sched, err := s.Schedule()
	if err != nil {
		return nil, 0, err
	}
	fopts := fleet.Options{
		Workers:  opts.Workers,
		Metrics:  opts.Metrics,
		Progress: opts.Progress,
	}
	var clock fleet.SimClock
	faultsOn := sched != nil
	if faultsOn {
		fopts.OnError = fleet.CollectAll
		fopts.MaxAttempts = sched.MaxAttempts()
		fopts.Clock = &clock
	}
	results, err := fleet.Run(ctx, jobs, fopts)
	if err != nil {
		if !faultsOn {
			return nil, 0, fmt.Errorf("scenario: %s: %w", s.Name, err)
		}
		if ctx.Err() != nil {
			return nil, 0, fmt.Errorf("scenario: %s cancelled: %w", s.Name, ctx.Err())
		}
	}
	return results, clock.Now(), nil
}

// recordFailure converts one failed fleet result into provenance on res.
func recordFailure[T any](res *Result, r *fleet.Result[T], op string, session int) {
	msg := r.Err.Error()
	if nl := strings.IndexByte(msg, '\n'); nl >= 0 {
		// First line only: recovered panic stacks carry goroutine IDs
		// that would break workers=1 vs workers=N byte-identity.
		msg = msg[:nl]
	}
	res.Failures = append(res.Failures, core.SessionFailure{
		Key:      r.Key,
		Operator: op,
		Session:  session,
		Attempts: r.Attempts,
		Stage:    core.FailureStage(r.Err),
		Err:      msg,
	})
	if obs.Enabled() {
		obs.Sim.SessionsFailed.Inc()
	}
}

func (s *Spec) cellPolicy() (gnb.SchedulerPolicy, error) {
	return gnb.ParsePolicy(s.Population.CellPolicy)
}

// sessionSeed derives the simulation seed for (operator, session) —
// attempt-independent, worker-independent, isolated by the spec's seed
// domain.
func (s *Spec) sessionSeed(base int64, acr string, k int) int64 {
	return fleet.SplitSeed(base, s.SeedDomain+"/"+acr, k)
}

// jobKey names one session job.
func (s *Spec) jobKey(acr string, k int) string {
	return fmt.Sprintf("%s/%s/%d", s.Name, acr, k)
}

// maybeAbort applies the fault plan's mid-session abort to an app
// session: app drivers produce KPI aggregates rather than traces, so an
// aborted session contributes provenance, not a partial capture.
func maybeAbort(fs *fault.Session) error {
	if fs == nil || !fs.Abort {
		return nil
	}
	if obs.Enabled() {
		obs.Sim.SessionAborts.Inc()
	}
	return fleet.Permanent(fault.ErrSessionAborted)
}
