package scenario

import (
	"context"
	"fmt"
	"math"
	"time"

	"github.com/midband5g/midband/internal/analysis"
	"github.com/midband5g/midband/internal/core"
	"github.com/midband5g/midband/internal/fleet"
	"github.com/midband5g/midband/internal/net5g"
	"github.com/midband5g/midband/internal/video"
)

// appOutcome is what one app-workload session job produces. Which
// fields are set depends on the app.
type appOutcome struct {
	// Web: completed pages and their load times in ms.
	pages int
	loads []float64
	// VoIP/gaming: per-probe user-plane latency in ms (with HARQ
	// retransmissions, like the §4.3 distributions).
	lat []float64
	// Throughput KPIs.
	dl, ul, nrUL, lteUL float64
}

// latencyBLER is the first-transmission error rate latency probes
// assume, matching the legacy campaign's §4.3 sampling.
const latencyBLER = 0.08

func msFloat(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func secDuration(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }

// runApp executes a web/voip/gaming/uplink scenario: one fleet job per
// (operator, session), aggregated per operator in band-plan order.
func runApp(ctx context.Context, s *Spec, opts Options, res *Result) error {
	ops, err := s.Operators()
	if err != nil {
		return err
	}
	sched, err := s.Schedule()
	if err != nil {
		return err
	}
	count := s.Sessions.Count
	d := s.Duration()

	jobs := make([]fleet.Job[appOutcome], 0, len(ops)*count)
	for _, op := range ops {
		for k := 0; k < count; k++ {
			op, k := op, k
			key := s.jobKey(op.Acronym, k)
			jobs = append(jobs, fleet.Job[appOutcome]{
				Key: key,
				RunAttempt: func(_ context.Context, attempt int) (appOutcome, error) {
					fs := sched.Session(key, attempt)
					if fs != nil && fs.Panic {
						panic(fmt.Sprintf("fault: injected worker panic (%s, attempt %d)", key, attempt))
					}
					if err := maybeAbort(fs); err != nil {
						return appOutcome{}, err
					}
					seed := s.sessionSeed(opts.Seed, op.Acronym, k)
					sess, err := core.NewSessionWithFaults(op, s.route(seed), fs)
					if err != nil {
						return appOutcome{}, fmt.Errorf("scenario: %s: %w", key, err)
					}
					return runAppSession(sess, s, d, opts)
				},
			})
		}
	}

	results, backoff, err := runJobs(ctx, s, opts, jobs)
	if err != nil {
		return err
	}
	res.BackoffSim = backoff

	// Deterministic aggregation: operators in band-plan order, sessions
	// in index order, so workers=1 and workers=N accumulate identically.
	for i, op := range ops {
		base := i * count
		rep := AppReport{Operator: op.Acronym}
		var loads, lat []float64
		var pages float64
		for k := 0; k < count; k++ {
			r := &results[base+k]
			if r.Err != nil {
				recordFailure(res, r, op.Acronym, k)
				continue
			}
			o := r.Value
			rep.Sessions++
			pages += float64(o.pages)
			loads = append(loads, o.loads...)
			lat = append(lat, o.lat...)
			rep.DLMbps += o.dl
			rep.ULMbps += o.ul
			rep.NRULMbps += o.nrUL
			rep.LTEULMbps += o.lteUL
		}
		if rep.Sessions > 0 {
			n := float64(rep.Sessions)
			rep.Pages = pages / n
			rep.DLMbps /= n
			rep.ULMbps /= n
			rep.NRULMbps /= n
			rep.LTEULMbps /= n
		}
		if len(loads) > 0 {
			rep.PageLoadMeanMs = analysis.Mean(loads)
			rep.PageLoadP95Ms = analysis.Percentile(loads, 95)
		}
		if len(lat) > 0 {
			rep.LatencyMeanMs = analysis.Mean(lat)
			rep.LatencyP95Ms = analysis.Percentile(lat, 95)
			switch s.Traffic.App {
			case AppVoIP:
				rep.MOS = emodelMOS(rep.LatencyMeanMs)
			case AppGaming:
				late := 0
				for _, v := range lat {
					if v > s.Traffic.LatencyBudgetMS {
						late++
					}
				}
				rep.LateFrac = float64(late) / float64(len(lat))
			}
		}
		res.Reports = append(res.Reports, rep)
	}
	return nil
}

// runAppSession dispatches one warmed-up session to the app's driver.
func runAppSession(sess *core.Session, s *Spec, d time.Duration, opts Options) (appOutcome, error) {
	if err := sess.WarmUp(); err != nil {
		return appOutcome{}, err
	}
	switch s.Traffic.App {
	case AppWeb:
		return runWebSession(sess, s, d, opts.Metrics)
	case AppVoIP:
		return runVoIPSession(sess, s, d, opts.Metrics)
	case AppGaming:
		return runGamingSession(sess, s, d)
	case AppUplink:
		return runUplinkSession(sess, d)
	}
	return appOutcome{}, fmt.Errorf("scenario: %s: no driver for app %q", s.Name, s.Traffic.App)
}

// runWebSession models web browsing as sequential page fetches with
// think time: each page is Traffic.PageKB of DL payload pulled at full
// share, followed by Traffic.ThinkTimeMS of idle link time, repeated
// until the session budget runs out. Pages cut off by the deadline are
// discarded (a partial load has no load time).
func runWebSession(sess *core.Session, s *Spec, d time.Duration, m *fleet.Metrics) (appOutcome, error) {
	link := sess.Link
	slot := link.SlotDuration()
	pageBits := s.Traffic.PageKB * 8000 // 1 KB = 1000 bytes
	thinkSlots := int(secDuration(s.Traffic.ThinkTimeMS/1000) / slot)
	deadline := link.Now() + d

	var out appOutcome
	steps := 0
	for link.Now() < deadline {
		start := link.Now()
		got := 0.0
		for got < pageBits && link.Now() < deadline {
			r := link.Step(net5g.Demand{DL: true, Share: 1})
			got += float64(r.DLBits)
			steps++
		}
		if got < pageBits {
			break
		}
		out.pages++
		out.loads = append(out.loads, msFloat(link.Now()-start))
		for i := 0; i < thinkSlots && link.Now() < deadline; i++ {
			link.Step(net5g.Demand{})
			steps++
		}
	}
	if m != nil {
		m.SlotsSimulated.Add(int64(steps))
	}
	return out, nil
}

// runVoIPSession holds the bearer for the call duration (a VoIP flow is
// far below link capacity, so the link idles) and samples ProbeCount
// user-plane latency probes from the operator's §4.3 profile, with
// retransmissions — the distribution the E-model scores.
func runVoIPSession(sess *core.Session, s *Spec, d time.Duration, m *fleet.Metrics) (appOutcome, error) {
	link := sess.Link
	deadline := link.Now() + d
	steps := 0
	for link.Now() < deadline {
		link.Step(net5g.Demand{})
		steps++
	}
	if m != nil {
		m.SlotsSimulated.Add(int64(steps))
	}
	_, retx, err := sess.RunLatency(s.Traffic.ProbeCount, latencyBLER)
	if err != nil {
		return appOutcome{}, err
	}
	var out appOutcome
	for _, v := range retx {
		out.lat = append(out.lat, msFloat(v))
	}
	return out, nil
}

// runGamingSession measures the two things cloud gaming cares about:
// whether latency probes meet the frame budget, and how much DL goodput
// headroom the stream has.
func runGamingSession(sess *core.Session, s *Spec, d time.Duration) (appOutcome, error) {
	res, err := sess.RunIperf(d, net5g.Demand{DL: true, Share: 1}, nil)
	if err != nil {
		return appOutcome{}, err
	}
	_, retx, err := sess.RunLatency(s.Traffic.ProbeCount, latencyBLER)
	if err != nil {
		return appOutcome{}, err
	}
	out := appOutcome{dl: res.DLMbps}
	for _, v := range retx {
		out.lat = append(out.lat, msFloat(v))
	}
	return out, nil
}

// runUplinkSession saturates the uplink and keeps the NSA NR-vs-LTE leg
// split — the 4G-vs-5G comparison material.
func runUplinkSession(sess *core.Session, d time.Duration) (appOutcome, error) {
	res, err := sess.RunIperf(d, net5g.Demand{UL: true, Share: 1}, nil)
	if err != nil {
		return appOutcome{}, err
	}
	return appOutcome{ul: res.ULMbps, nrUL: res.NRULMbps, lteUL: res.LTEULMbps}, nil
}

// emodelMOS scores a one-way user-plane latency (ms) with the ITU-T
// G.107 E-model: mouth-to-ear delay adds ~25 ms of codec and playout
// budget on top of the network, the delay impairment Id is the
// piecewise-linear G.107 fit, and R maps to MOS through the standard
// cubic. Clamped to [1, 5].
func emodelMOS(oneWayMs float64) float64 {
	d := oneWayMs + 25
	id := 0.024 * d
	if d > 177.3 {
		id += 0.11 * (d - 177.3)
	}
	r := 93.2 - id
	mos := 1 + 0.035*r + 7e-6*r*(r-60)*(100-r)
	if mos < 1 {
		mos = 1
	}
	if mos > 5 {
		mos = 5
	}
	return mos
}

// videoOutcome is what one video grid session job produces.
type videoOutcome struct {
	norm   float64 // mean normalized bitrate
	stall  float64 // stall percentage
	qoe    float64 // norm − stall/100
	hitPct float64 // observed edge-cache hit percentage
}

// newABR builds a fresh ABR instance. Per-session construction matters:
// DynamicABR carries hysteresis state across decisions, so sharing one
// across sessions would leak state between jobs.
func newABR(name string) (video.ABR, error) {
	switch name {
	case "bola":
		return video.NewBOLA(), nil
	case "throughput":
		return &video.ThroughputABR{}, nil
	case "dynamic":
		return video.NewDynamic(), nil
	}
	return nil, fmt.Errorf("scenario: unknown ABR %q", name)
}

// runVideoGrid executes the MEC grid: operators × ABRs × {EDGE_ON,
// EDGE_OFF} × sessions. Both edge arms of a (operator, ABR, session)
// triple derive the same simulation seed — identical channel
// realization and hit-pattern stream — and differ only in the cache hit
// ratio (EDGE_OFF serves every chunk at the origin RTT), so per-session
// QoE differences feed a paired comparison.
func runVideoGrid(ctx context.Context, s *Spec, opts Options, res *Result) error {
	ops, err := s.Operators()
	if err != nil {
		return err
	}
	sched, err := s.Schedule()
	if err != nil {
		return err
	}
	v := s.Video
	count := s.Sessions.Count
	ladder := video.Ladder400
	if v.Ladder == "mmwave" {
		ladder = video.LadderMmWave
	}
	edges := []string{EdgeOn, EdgeOff}

	jobs := make([]fleet.Job[videoOutcome], 0, len(ops)*len(v.ABRs)*len(edges)*count)
	for _, op := range ops {
		for _, abr := range v.ABRs {
			for _, edge := range edges {
				for k := 0; k < count; k++ {
					op, abr, edge, k := op, abr, edge, k
					key := fmt.Sprintf("%s/%s/%s/%s/%d", s.Name, op.Acronym, abr, edge, k)
					jobs = append(jobs, fleet.Job[videoOutcome]{
						Key: key,
						RunAttempt: func(_ context.Context, attempt int) (videoOutcome, error) {
							fs := sched.Session(key, attempt)
							if fs != nil && fs.Panic {
								panic(fmt.Sprintf("fault: injected worker panic (%s, attempt %d)", key, attempt))
							}
							if err := maybeAbort(fs); err != nil {
								return videoOutcome{}, err
							}
							// The seed domain deliberately excludes the edge
							// condition: that is what pairs the arms.
							seed := fleet.SplitSeed(opts.Seed, s.SeedDomain+"/"+op.Acronym+"/"+abr, k)
							sess, err := core.NewSessionWithFaults(op, s.route(seed), fs)
							if err != nil {
								return videoOutcome{}, fmt.Errorf("scenario: %s: %w", key, err)
							}
							ec := &video.EdgeConfig{
								HitRatio:  v.Edge.HitRatio,
								OriginRTT: secDuration(v.Edge.OriginRTTMS / 1000),
								EdgeRTT:   secDuration(v.Edge.EdgeRTTMS / 1000),
								Seed:      fleet.SplitSeed(seed, "edge", 0),
							}
							if edge == EdgeOff {
								ec.HitRatio = 0 // every chunk at the origin RTT
							}
							abrImpl, err := newABR(abr)
							if err != nil {
								return videoOutcome{}, err
							}
							r, err := sess.RunVideo(video.SessionConfig{
								Ladder:        ladder,
								ChunkLength:   secDuration(v.ChunkSec),
								VideoDuration: secDuration(v.MediaSec),
								ABR:           abrImpl,
								Edge:          ec,
							}, nil)
							if err != nil {
								return videoOutcome{}, fmt.Errorf("scenario: %s: %w", key, err)
							}
							if opts.Metrics != nil {
								opts.Metrics.SlotsSimulated.Add(int64(sess.Link.Now() / sess.Link.SlotDuration()))
							}
							out := videoOutcome{norm: r.AvgNormBitrate, stall: r.StallPct()}
							// QoE folds quality and smoothness into one score:
							// normalized bitrate minus the stall fraction.
							out.qoe = out.norm - out.stall/100
							if n := len(r.Chunks); n > 0 {
								hits := 0
								for _, c := range r.Chunks {
									if c.EdgeHit {
										hits++
									}
								}
								out.hitPct = 100 * float64(hits) / float64(n)
							}
							return out, nil
						},
					})
				}
			}
		}
	}

	results, backoff, err := runJobs(ctx, s, opts, jobs)
	if err != nil {
		return err
	}
	res.BackoffSim = backoff

	vres := &VideoResult{Ladder: v.Ladder, ChunkSec: v.ChunkSec, HitRatio: v.Edge.HitRatio}
	idx := 0
	for _, op := range ops {
		for _, abr := range v.ABRs {
			var arms [2]VideoCell
			for e, edge := range edges {
				cell := VideoCell{Operator: op.Acronym, ABR: abr, Edge: edge}
				for k := 0; k < count; k++ {
					r := &results[idx]
					idx++
					if r.Err != nil {
						recordFailure(res, r, op.Acronym, k)
						cell.QoEs = append(cell.QoEs, math.NaN())
						continue
					}
					o := r.Value
					cell.Sessions++
					cell.NormBitrate += o.norm
					cell.StallPct += o.stall
					cell.QoE += o.qoe
					cell.EdgeHitPct += o.hitPct
					cell.QoEs = append(cell.QoEs, o.qoe)
				}
				if cell.Sessions > 0 {
					n := float64(cell.Sessions)
					cell.NormBitrate /= n
					cell.StallPct /= n
					cell.QoE /= n
					cell.EdgeHitPct /= n
				}
				arms[e] = cell
				vres.Cells = append(vres.Cells, cell)
			}
			// Pair only sessions where both arms completed: a fault that
			// killed one arm leaves its partner unmatched.
			var on, off []float64
			for k := 0; k < count; k++ {
				a, b := arms[0].QoEs[k], arms[1].QoEs[k]
				if !math.IsNaN(a) && !math.IsNaN(b) {
					on = append(on, a)
					off = append(off, b)
				}
			}
			if len(on) > 0 {
				st, err := analysis.PairedStats(on, off)
				if err != nil {
					return fmt.Errorf("scenario: %s: pairing %s/%s: %w", s.Name, op.Acronym, abr, err)
				}
				vres.Pairs = append(vres.Pairs, VideoPair{
					Operator: op.Acronym,
					ABR:      abr,
					QoEOn:    analysis.Mean(on),
					QoEOff:   analysis.Mean(off),
					Stats:    st,
				})
			}
		}
	}
	res.Video = vres
	return nil
}
