package scenario_test

import (
	"reflect"
	"testing"

	"github.com/midband5g/midband/internal/scenario"
)

// FuzzDecodeScenario: malformed spec bytes must produce an error, never
// a panic, and every spec that decodes must round-trip losslessly
// through its canonical JSON — Decode(Canonical()) is the identity and
// preserves the digest. The corpus seeds every shipped pack plus
// structurally-interesting fragments.
func FuzzDecodeScenario(f *testing.F) {
	for _, name := range scenario.PackNames() {
		s, err := scenario.Pack(name)
		if err != nil {
			f.Fatal(err)
		}
		canonical, err := s.Canonical()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(canonical)
	}
	for _, seed := range []string{
		``,
		`{}`,
		`null`,
		`[]`,
		`{"schema": 1}`,
		`{"schema": 1, "name": "x", "traffic": {"app": "bulk"}, "sessions": {"duration_sec": 1}}`,
		`{"schema": 1, "name": "x", "traffic": {"app": "video"}, "sessions": {}, "video": {"abrs": ["bola"], "edge": {}}}`,
		`{"schema": 1, "name": "x", "faults": "rlf=1e-4"}`,
		`{"schema": 1, "name": "x", "unknown": true}`,
		`{"schema": 1, "name": "x"} trailing`,
		`{"schema": 1e300, "name": "x"}`,
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := scenario.Decode(data)
		if err != nil {
			return
		}
		canonical, err := s.Canonical()
		if err != nil {
			t.Fatalf("decoded spec does not canonicalize: %v", err)
		}
		back, err := scenario.Decode(canonical)
		if err != nil {
			t.Fatalf("canonical JSON does not re-decode: %v\n%s", err, canonical)
		}
		if !reflect.DeepEqual(back, s) {
			t.Fatalf("round trip lost information:\nfirst:  %+v\nsecond: %+v", s, back)
		}
		d1, err := s.Digest()
		if err != nil {
			t.Fatal(err)
		}
		d2, err := back.Digest()
		if err != nil {
			t.Fatal(err)
		}
		if d1 != d2 {
			t.Fatalf("digest changed across the round trip: %s vs %s", d1, d2)
		}
	})
}
