// Scenario conformance: every shipped pack runs at Quick scale and its
// rendered report is pinned byte-for-byte against a golden file, the
// bulk spec path is proven equivalent to the legacy flag-built
// campaign, and every pack is byte-identical across worker counts —
// with and without fault injection. Regenerate goldens after an
// intentional simulation change with:
//
//	UPDATE_GOLDEN=1 go test ./internal/scenario -run TestPackGolden
package scenario_test

import (
	"bytes"
	"context"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"github.com/midband5g/midband/internal/core"
	"github.com/midband5g/midband/internal/fleet"
	"github.com/midband5g/midband/internal/operators"
	"github.com/midband5g/midband/internal/report"
	"github.com/midband5g/midband/internal/scenario"
	"github.com/midband5g/midband/internal/simtest"
)

// renderQuick runs a pack's Quick-scale spec and returns the rendered
// scenario report — the byte artifact the golden files pin.
func renderQuick(t *testing.T, name string, workers int, seed int64) []byte {
	t.Helper()
	s, err := scenario.Pack(name)
	if err != nil {
		t.Fatal(err)
	}
	res, err := scenario.Run(context.Background(), s.QuickScale(), scenario.Options{Seed: seed, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	report.Scenario(&buf, res)
	return buf.Bytes()
}

// TestPackGolden pins every shipped pack's Quick-scale report
// byte-for-byte. A diff here means the simulation's observable output
// changed: either fix the regression or, for an intentional model
// change, regenerate with UPDATE_GOLDEN=1 and review the diff like any
// other artifact change.
func TestPackGolden(t *testing.T) {
	for _, name := range scenario.PackNames() {
		t.Run(name, func(t *testing.T) {
			got := renderQuick(t, name, 1, 0)
			path := filepath.Join("testdata", "golden", name+".golden")
			if os.Getenv("UPDATE_GOLDEN") != "" {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v — run UPDATE_GOLDEN=1 go test ./internal/scenario -run TestPackGolden", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("report drifted from %s:\n--- golden\n%s\n--- got\n%s", path, want, got)
			}
		})
	}
}

// TestPackWorkerDeterminism: the report is byte-identical for workers=1
// and workers=8 — aggregation happens in submission order, never in
// completion order.
func TestPackWorkerDeterminism(t *testing.T) {
	for _, name := range scenario.PackNames() {
		t.Run(name, func(t *testing.T) {
			serial := renderQuick(t, name, 1, 7)
			parallel := renderQuick(t, name, 8, 7)
			if !bytes.Equal(serial, parallel) {
				t.Errorf("workers=1 and workers=8 disagree:\n--- serial\n%s\n--- parallel\n%s", serial, parallel)
			}
		})
	}
}

// TestBulkSpecLegacyEquivalence: a bulk spec mirroring the legacy CLI
// flags must produce the exact CampaignStats the flag path produces —
// the scenario layer adds a schema, not a second simulator.
func TestBulkSpecLegacyEquivalence(t *testing.T) {
	spec, err := scenario.Decode([]byte(`{
		"schema": 1, "name": "legacy-bridge",
		"traffic": {"app": "bulk"},
		"route": {"kind": "stationary"},
		"band_plan": {"operators": ["V_Sp", "Tmb_US"]},
		"population": {},
		"sessions": {"count": 2, "duration_sec": 2}
	}`))
	if err != nil {
		t.Fatal(err)
	}

	res, err := scenario.Run(context.Background(), spec, scenario.Options{Seed: 2024, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}

	vzw, err := operators.ByAcronym("V_Sp")
	if err != nil {
		t.Fatal(err)
	}
	tmb, err := operators.ByAcronym("Tmb_US")
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := core.RunCampaign(core.CampaignConfig{
		Operators:           []operators.Operator{vzw, tmb},
		SessionDuration:     2 * time.Second,
		SessionsPerOperator: 2,
		Seed:                2024,
		Workers:             2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Bulk, legacy) {
		t.Errorf("spec campaign diverged from the flag-built campaign:\nspec:   %+v\nlegacy: %+v", res.Bulk, legacy)
	}
}

// CampaignConfig is the bulk-only bridge: other apps have no legacy
// campaign shape, and the population section must carry through.
func TestCampaignConfigMapping(t *testing.T) {
	s, err := scenario.Decode([]byte(`{
		"schema": 1, "name": "cfg",
		"traffic": {"app": "bulk"},
		"route": {"kind": "stationary"},
		"band_plan": {"operators": ["V_Sp"]},
		"population": {"ues_per_cell": 4, "cell_policy": "rr"},
		"sessions": {"count": 3, "duration_sec": 2}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := s.CampaignConfig(scenario.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Seed != 2024 {
		t.Errorf("default seed %d, want 2024", cfg.Seed)
	}
	if cfg.SessionsPerOperator != 3 || cfg.SessionDuration != 2*time.Second {
		t.Errorf("sessions mapped to (%d, %v)", cfg.SessionsPerOperator, cfg.SessionDuration)
	}
	if cfg.UEsPerCell != 4 || len(cfg.Operators) != 1 {
		t.Errorf("population/band plan mapped to ues=%d ops=%d", cfg.UEsPerCell, len(cfg.Operators))
	}

	web, err := scenario.Pack("web-browsing")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := web.CampaignConfig(scenario.Options{}); err == nil {
		t.Error("a non-bulk app accepted a legacy campaign mapping")
	}
}

// finite rejects NaN and ±Inf — every reported KPI must be a number.
func finite(x float64) bool { return !math.IsNaN(x) && !math.IsInf(x, 0) }

// checkResultInvariants asserts the structural facts every scenario
// result must satisfy regardless of app, seed, faults or contention.
func checkResultInvariants(t *testing.T, s *scenario.Spec, res *scenario.Result) {
	t.Helper()
	if res.Name != s.Name || res.App != s.Traffic.App {
		t.Errorf("result identity (%s, %s) does not match spec (%s, %s)", res.Name, res.App, s.Name, s.Traffic.App)
	}
	digest, err := s.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if res.Digest != digest {
		t.Errorf("result digest %s != spec digest %s", res.Digest, digest)
	}
	if res.BackoffSim < 0 {
		t.Errorf("negative simulated backoff %v", res.BackoffSim)
	}
	if s.Faults == "" && len(res.Failures) > 0 {
		t.Errorf("%d failures without fault injection", len(res.Failures))
	}
	for _, r := range res.Reports {
		if r.Sessions < 0 || r.Sessions > s.Sessions.Count {
			t.Errorf("%s: %d sessions outside [0, %d]", r.Operator, r.Sessions, s.Sessions.Count)
		}
		for name, v := range map[string]float64{
			"pages": r.Pages, "load mean": r.PageLoadMeanMs, "load p95": r.PageLoadP95Ms,
			"lat mean": r.LatencyMeanMs, "lat p95": r.LatencyP95Ms, "mos": r.MOS,
			"late": r.LateFrac, "dl": r.DLMbps, "ul": r.ULMbps, "nr ul": r.NRULMbps, "lte ul": r.LTEULMbps,
		} {
			if !finite(v) || v < 0 {
				t.Errorf("%s: %s = %g, want a finite non-negative KPI", r.Operator, name, v)
			}
		}
		if r.MOS > 5 {
			t.Errorf("%s: MOS %g above the E-model ceiling", r.Operator, r.MOS)
		}
		if r.LateFrac > 1 {
			t.Errorf("%s: late fraction %g > 1", r.Operator, r.LateFrac)
		}
		if s.Traffic.App == scenario.AppUplink && s.BandPlan.CompareLTE {
			if sum := r.NRULMbps + r.LTEULMbps; math.Abs(sum-r.ULMbps) > 1e-6*math.Max(1, r.ULMbps) {
				t.Errorf("%s: NR+LTE legs %.6f != UL %.6f", r.Operator, sum, r.ULMbps)
			}
		}
	}
	if v := res.Video; v != nil {
		for _, c := range v.Cells {
			if c.Sessions < 0 || c.Sessions > s.Sessions.Count {
				t.Errorf("cell %s/%s/%s: %d sessions outside [0, %d]", c.Operator, c.ABR, c.Edge, c.Sessions, s.Sessions.Count)
			}
			if c.Sessions == 0 {
				continue
			}
			if c.NormBitrate < 0 || c.NormBitrate > 1 || !finite(c.NormBitrate) {
				t.Errorf("cell %s/%s/%s: norm bitrate %g outside [0,1]", c.Operator, c.ABR, c.Edge, c.NormBitrate)
			}
			if c.StallPct < 0 || c.StallPct > 100 {
				t.Errorf("cell %s/%s/%s: stall %g%% outside [0,100]", c.Operator, c.ABR, c.Edge, c.StallPct)
			}
			if c.Edge == scenario.EdgeOff && c.EdgeHitPct != 0 {
				t.Errorf("cell %s/%s EDGE_OFF reports %.1f%% cache hits", c.Operator, c.ABR, c.EdgeHitPct)
			}
			if len(c.QoEs) != s.Sessions.Count {
				t.Errorf("cell %s/%s/%s: %d QoE samples, want one per session (%d)", c.Operator, c.ABR, c.Edge, len(c.QoEs), s.Sessions.Count)
			}
		}
		for _, p := range v.Pairs {
			if p.Stats.N < 0 || p.Stats.N > s.Sessions.Count {
				t.Errorf("pair %s/%s: n=%d outside [0, %d]", p.Operator, p.ABR, p.Stats.N, s.Sessions.Count)
			}
		}
	}
	for _, mu := range res.MultiUE {
		if mu.UEs != s.Population.UEsPerCell {
			t.Errorf("multi-UE arm ran %d UEs, spec says %d", mu.UEs, s.Population.UEsPerCell)
		}
		if mu.CellMbps < 0 || !finite(mu.CellMbps) {
			t.Errorf("%s: cell goodput %g", mu.Operator, mu.CellMbps)
		}
		if n := float64(mu.UEs); mu.JainIndex < 1/n-1e-9 || mu.JainIndex > 1+1e-9 {
			t.Errorf("%s: Jain index %g outside [1/%d, 1]", mu.Operator, mu.JainIndex, mu.UEs)
		}
	}
	for _, f := range res.Failures {
		switch f.Stage {
		case "abort", "panic", "trace-io", "cancelled", "error":
		default:
			t.Errorf("failure %s has unknown stage %q", f.Key, f.Stage)
		}
		if f.Attempts < 1 {
			t.Errorf("failure %s reports %d attempts", f.Key, f.Attempts)
		}
	}
}

// TestPackInvariantSweep runs every pack across a seed sweep and checks
// the structural invariants — the pack-level analogue of the simtest
// suite's link-level properties.
func TestPackInvariantSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed sweep")
	}
	for _, name := range scenario.PackNames() {
		t.Run(name, func(t *testing.T) {
			s, err := scenario.Pack(name)
			if err != nil {
				t.Fatal(err)
			}
			q := s.QuickScale()
			simtest.Run(t, "scenario/"+name, 2, func(t *testing.T, seed int64) {
				res, err := scenario.Run(context.Background(), q, scenario.Options{Seed: seed, Workers: 4})
				if err != nil {
					t.Fatal(err)
				}
				checkResultInvariants(t, q, res)
			})
		})
	}
}

// TestPackFaultSweep arms aggressive fault injection on every pack and
// checks graceful degradation: the run completes, failures carry
// provenance, and the outcome is still byte-deterministic across
// worker counts.
func TestPackFaultSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("fault sweep")
	}
	for _, name := range scenario.PackNames() {
		t.Run(name, func(t *testing.T) {
			s, err := scenario.Pack(name)
			if err != nil {
				t.Fatal(err)
			}
			q := s.QuickScale()
			q.Faults = "abort=0.3,panic=0.3,attempts=2,seed=11"
			if err := q.Validate(); err != nil {
				t.Fatal(err)
			}

			var m fleet.Metrics
			run := func(workers int) ([]byte, *scenario.Result) {
				res, err := scenario.Run(context.Background(), q, scenario.Options{Seed: 5, Workers: workers, Metrics: &m})
				if err != nil {
					t.Fatal(err)
				}
				var buf bytes.Buffer
				report.Scenario(&buf, res)
				return buf.Bytes(), res
			}
			serial, res := run(1)
			parallel, _ := run(8)
			if !bytes.Equal(serial, parallel) {
				t.Errorf("faulted run diverges across worker counts:\n--- serial\n%s\n--- parallel\n%s", serial, parallel)
			}
			checkResultInvariants(t, q, res)
			failures := res.Failures
			if res.Bulk != nil {
				failures = res.Bulk.Failures
			}
			for _, f := range failures {
				if f.Stage != "abort" && f.Stage != "panic" {
					t.Errorf("failure %s: stage %q, want abort or panic (the only armed classes)", f.Key, f.Stage)
				}
			}
		})
	}
}

// TestPackContentionSweep arms the multi-UE population section on an
// app pack across every cell policy: each policy must produce a
// contention arm per operator, and policy identity must be preserved.
func TestPackContentionSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("contention sweep")
	}
	policies := map[string]string{
		"eq": "equal-share",
		"pf": "proportional-fair",
		"mt": "max-rate",
		"rr": "round-robin",
	}
	for policy, display := range policies {
		t.Run(policy, func(t *testing.T) {
			s, err := scenario.Pack("voip")
			if err != nil {
				t.Fatal(err)
			}
			q := s.QuickScale()
			q.Population.UEsPerCell = 4
			q.Population.CellPolicy = policy
			if err := q.Validate(); err != nil {
				t.Fatal(err)
			}
			res, err := scenario.Run(context.Background(), q, scenario.Options{Seed: 3, Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			checkResultInvariants(t, q, res)
			if len(res.MultiUE) != len(q.BandPlan.Operators) {
				t.Fatalf("%d contention reports for %d operators", len(res.MultiUE), len(q.BandPlan.Operators))
			}
			for _, mu := range res.MultiUE {
				if mu.Policy != display {
					t.Errorf("%s: contention arm ran policy %q, want %q", mu.Operator, mu.Policy, display)
				}
			}
		})
	}
}

// TestRunRejectsInvalidSpec: Run re-validates, so a spec mutated into
// contradiction after Decode fails fast instead of simulating garbage.
func TestRunRejectsInvalidSpec(t *testing.T) {
	s, err := scenario.Pack("voip")
	if err != nil {
		t.Fatal(err)
	}
	q := s.QuickScale()
	q.Traffic.App = "ftp"
	if _, err := scenario.Run(context.Background(), q, scenario.Options{}); err == nil {
		t.Fatal("Run accepted a spec with an unknown app")
	}
}

// TestRunHonorsCancellation: a pre-cancelled context aborts the run
// with an error instead of returning partial results.
func TestRunHonorsCancellation(t *testing.T) {
	s, err := scenario.Pack("web-browsing")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := scenario.Run(ctx, s.QuickScale(), scenario.Options{Workers: 2}); err == nil {
		t.Fatal("Run returned results under a cancelled context")
	}
}

// TestVideoPairSharing pins the paired-arm design: EDGE_ON lifts QoE
// over EDGE_OFF on the mec-video pack (the cache only removes request
// RTT, both arms share channel realizations), and the pairs cover the
// full operator × ABR grid.
func TestVideoPairSharing(t *testing.T) {
	s, err := scenario.Pack("mec-video")
	if err != nil {
		t.Fatal(err)
	}
	q := s.QuickScale()
	res, err := scenario.Run(context.Background(), q, scenario.Options{Seed: 1, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	wantPairs := len(q.BandPlan.Operators) * len(q.Video.ABRs)
	if len(res.Video.Pairs) != wantPairs {
		t.Fatalf("%d pairs, want the full %d-cell grid", len(res.Video.Pairs), wantPairs)
	}
	lifted := 0
	for _, p := range res.Video.Pairs {
		if p.Stats.N == 0 {
			t.Errorf("pair %s/%s has no paired sessions", p.Operator, p.ABR)
		}
		if p.QoEOn >= p.QoEOff {
			lifted++
		}
	}
	if lifted < wantPairs/2 {
		t.Errorf("edge caching lifted QoE in only %d/%d cells — the paired seeds are likely broken", lifted, wantPairs)
	}
}

func fullSpec(b *testing.B) *scenario.Spec {
	s, err := scenario.Pack("web-browsing")
	if err != nil {
		b.Fatal(err)
	}
	return s.QuickScale()
}

// BenchmarkScenarioCampaign is the benchgate entry for the scenario
// runner: one Quick-scale web pack end to end.
func BenchmarkScenarioCampaign(b *testing.B) {
	s := fullSpec(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := scenario.Run(context.Background(), s, scenario.Options{Seed: 2024, Workers: 1}); err != nil {
			b.Fatal(err)
		}
	}
}
