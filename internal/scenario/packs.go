package scenario

import "fmt"

// The compiled-in pack library. Every pack is stored as the JSON it
// would live in on disk and goes through the same strict Decode path a
// user file does, so a pack that would not validate cannot ship —
// TestPacksDecode pins that, and the conformance suite pins each pack's
// Quick-scale report artifacts byte-for-byte.
//
// Pack seeds: nothing here fixes a base seed — packs only carry a
// seed_domain — so the same pack can run at any -seed while staying
// isolated from every other pack's random streams.
var packSources = map[string]string{
	// Web browsing: the paper's QoE discussion spans latency-bound
	// interactive workloads beyond video; page-load time over mid-band
	// is dominated by DL goodput ramps and think-time re-entry.
	"web-browsing": `{
		"schema": 1,
		"name": "web-browsing",
		"description": "Sequential page fetches with think time over mid-band: page-load latency KPIs",
		"paper": "§4.3, §6 (QoE beyond video)",
		"traffic": {"app": "web", "page_kb": 1500, "think_time_ms": 2000},
		"route": {"kind": "stationary"},
		"band_plan": {"operators": ["V_Sp", "T_Ge", "Tmb_US"]},
		"population": {},
		"sessions": {"count": 2, "duration_sec": 4}
	}`,

	// VoIP: one-way mouth-to-ear latency scored with the ITU-T G.107
	// E-model; the §4.3 user-plane latency distributions are exactly
	// what decides whether mid-band VoIP holds a toll-quality MOS.
	"voip": `{
		"schema": 1,
		"name": "voip",
		"description": "User-plane latency probes scored with the E-model MOS (toll quality ≥ 4.0)",
		"paper": "§4.3 (user-plane latency)",
		"traffic": {"app": "voip", "probe_count": 400},
		"route": {"kind": "stationary"},
		"band_plan": {"operators": ["V_It", "O_Fr"]},
		"population": {},
		"sessions": {"count": 2, "duration_sec": 2}
	}`,

	// Cloud gaming: latency-bound — a frame that misses its delivery
	// budget is a dropped frame regardless of goodput headroom.
	"cloud-gaming": `{
		"schema": 1,
		"name": "cloud-gaming",
		"description": "Latency-budget violations plus goodput headroom for a 30 ms frame budget",
		"paper": "§4.3 (latency-bound applications)",
		"traffic": {"app": "gaming", "probe_count": 400, "latency_budget_ms": 30},
		"route": {"kind": "stationary"},
		"band_plan": {"operators": ["Vzw_US", "T_Ge"]},
		"population": {},
		"sessions": {"count": 2, "duration_sec": 2}
	}`,

	// Uplink-heavy: the 4G-vs-5G low/mid-band comparison of Rochman et
	// al. — NSA uplink routing decides how much traffic still rides the
	// LTE anchor, and the per-leg split is the comparison.
	"uplink-heavy": `{
		"schema": 1,
		"name": "uplink-heavy",
		"description": "Uplink-saturating transfer with the NSA NR-vs-LTE leg split (4G vs 5G)",
		"paper": "§4.2; Rochman et al. (PAPERS.md)",
		"traffic": {"app": "uplink"},
		"route": {"kind": "walking"},
		"band_plan": {"operators": ["Tmb_US", "V_Sp", "S_Fr"], "compare_lte": true},
		"population": {},
		"sessions": {"count": 2, "duration_sec": 3}
	}`,

	// MEC video: the ABR × {EDGE_ON, EDGE_OFF} grid with paired
	// per-cell statistics — the SNIPPETS.md Snippet 1 evaluation
	// pipeline shape on top of the §6 DASH player.
	"mec-video": `{
		"schema": 1,
		"name": "mec-video",
		"description": "DASH ABR × {EDGE_ON, EDGE_OFF} grid with paired per-cell QoE statistics",
		"paper": "§6; SNIPPETS.md Snippet 1 (MEC ABR×caching pipeline)",
		"traffic": {"app": "video"},
		"route": {"kind": "stationary"},
		"band_plan": {"operators": ["V_Sp", "O_Sp100"]},
		"population": {},
		"sessions": {"count": 2},
		"video": {
			"abrs": ["bola", "throughput", "dynamic"],
			"ladder": "400",
			"chunk_sec": 4,
			"media_sec": 60,
			"edge": {"hit_ratio": 0.85, "origin_rtt_ms": 36, "edge_rtt_ms": 4}
		}
	}`,
}

// PackNames lists the shipped packs in sorted order.
func PackNames() []string { return sortedNames(packSources) }

// Pack decodes a shipped pack by name. Every pack goes through the
// strict Decode path, so the returned spec is normalized and validated.
func Pack(name string) (*Spec, error) {
	src, ok := packSources[name]
	if !ok {
		return nil, fmt.Errorf("scenario: unknown pack %q (shipped: %v)", name, PackNames())
	}
	s, err := Decode([]byte(src))
	if err != nil {
		return nil, fmt.Errorf("scenario: pack %s: %w", name, err)
	}
	return s, nil
}

// Packs decodes the whole library in sorted name order.
func Packs() ([]*Spec, error) {
	out := make([]*Spec, 0, len(packSources))
	for _, name := range PackNames() {
		s, err := Pack(name)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}
