// Package scenario defines the declarative scenario specification that
// makes the simulator's workload surface data rather than code: a
// schema-versioned JSON document describing traffic mix, route, band
// plan, UE population, fault spec, session count/duration and seed
// domain, decoded strictly (unknown fields are errors), defaulted,
// cross-field validated and digested canonically so every run manifest
// can name the exact scenario that produced it.
//
// A compiled-in pack library (see packs.go) ships the workloads the
// paper's findings span beyond the reproduced figure set — web
// browsing, VoIP, cloud gaming, the uplink-heavy 4G-vs-5G comparison,
// and an MEC edge-caching video arm running the ABR × {EDGE_ON,
// EDGE_OFF} grid with paired per-cell statistics. Each pack is a
// first-class campaign: runnable under -parallel, -faults and the
// multi-UE contention model, byte-identical for any worker count, and
// pinned by the conformance suite in conformance_test.go.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"

	"github.com/midband5g/midband/internal/fault"
	"github.com/midband5g/midband/internal/gnb"
	"github.com/midband5g/midband/internal/obs"
	"github.com/midband5g/midband/internal/operators"
)

// SchemaVersion is the scenario spec layout version this package
// decodes. Bump it only with a migration path: Decode rejects every
// other value.
const SchemaVersion = 1

// Apps the traffic section can name. Each maps to one driver in run.go.
const (
	AppBulk   = "bulk"   // saturating bulk transfer — the legacy Table 1 campaign
	AppWeb    = "web"    // page-fetch loop with think time (page-load latency KPIs)
	AppVoIP   = "voip"   // latency probes scored with the E-model MOS
	AppGaming = "gaming" // cloud gaming: latency-budget violations + headroom
	AppUplink = "uplink" // uplink-saturating transfer, NR vs LTE leg split
	AppVideo  = "video"  // DASH ABR × edge-caching grid (MEC arm)
)

// Spec is one declarative scenario. The zero value is invalid; build
// specs with Decode (strict JSON) or fill the fields and call Normalize
// then Validate. All fields marshal in canonical order — Canonical and
// Digest depend on it.
type Spec struct {
	// Schema must equal SchemaVersion.
	Schema int `json:"schema"`
	// Name identifies the scenario (pack name, manifest entry).
	Name string `json:"name"`
	// Description is free prose for listings.
	Description string `json:"description,omitempty"`
	// Paper cites the paper sections (or related work) the scenario
	// exercises, e.g. "§4.3, §6" or "Rochman et al. (PAPERS.md)".
	Paper string `json:"paper,omitempty"`

	// Traffic selects the workload and its knobs.
	Traffic Traffic `json:"traffic"`
	// Route is the UE trajectory.
	Route Route `json:"route"`
	// BandPlan selects the deployments under test.
	BandPlan BandPlan `json:"band_plan"`
	// Population configures multi-UE cell contention.
	Population Population `json:"population"`
	// Faults is a fault.ParseSpec string (empty: no injection). It is
	// validated at decode time so a bad embedded spec fails the
	// scenario, not the run.
	Faults string `json:"faults,omitempty"`
	// Sessions sets repetition and duration.
	Sessions Sessions `json:"sessions"`
	// SeedDomain isolates the scenario's random streams from every
	// other scenario's: all job seeds derive from
	// fleet.SplitSeed(base, SeedDomain+"/...", index). Defaults to Name.
	SeedDomain string `json:"seed_domain,omitempty"`
	// Video configures the ABR × edge grid; required for AppVideo,
	// forbidden otherwise.
	Video *VideoGrid `json:"video,omitempty"`
}

// Traffic is the workload section. Knobs are per-app; Validate rejects
// knobs set for the wrong app so specs cannot silently carry dead
// configuration.
type Traffic struct {
	// App is one of the App* constants.
	App string `json:"app"`

	// Web: a page is PageKB split across sequential object fetches,
	// followed by ThinkTimeMS of idle time (defaults 1500 KB, 2000 ms).
	PageKB      float64 `json:"page_kb,omitempty"`
	ThinkTimeMS float64 `json:"think_time_ms,omitempty"`

	// VoIP/gaming: ProbeCount user-plane latency probes (default 400);
	// gaming scores them against LatencyBudgetMS (default 30).
	ProbeCount      int     `json:"probe_count,omitempty"`
	LatencyBudgetMS float64 `json:"latency_budget_ms,omitempty"`
}

// Route kinds.
const (
	RouteStationary = "stationary"
	RouteWalking    = "walking"
	RouteDriving    = "driving"
)

// Route is the trajectory section.
type Route struct {
	// Kind is stationary, walking or driving.
	Kind string `json:"kind"`
	// LengthM overrides the default route length for mobile kinds.
	LengthM float64 `json:"length_m,omitempty"`
	// UEDistanceM overrides the operator's measurement-spot distance.
	UEDistanceM float64 `json:"ue_distance_m,omitempty"`
}

// BandPlan selects deployments.
type BandPlan struct {
	// Operators lists registry acronyms (empty: the full mid-band
	// registry). Order is preserved — it is the report order.
	Operators []string `json:"operators,omitempty"`
	// CompareLTE, for AppUplink, additionally reports the NSA
	// NR-vs-LTE uplink leg split — the 4G-vs-5G low/mid-band
	// comparison.
	CompareLTE bool `json:"compare_lte,omitempty"`
}

// Population configures the shared-cell contention arm.
type Population struct {
	// UEsPerCell > 1 appends a multi-UE contention arm per operator
	// (0 or 1: single-UE only).
	UEsPerCell int `json:"ues_per_cell,omitempty"`
	// CellPolicy is the contention scheduler: eq, pf, mt or rr
	// (default pf when UEsPerCell > 1).
	CellPolicy string `json:"cell_policy,omitempty"`
}

// Sessions sets repetition and duration.
type Sessions struct {
	// Count repeats each arm at fresh channel realizations (default 1).
	Count int `json:"count,omitempty"`
	// DurationSec is the simulated workload length per session. Video
	// sessions take their length from video.media_sec instead, so
	// AppVideo specs must leave it zero.
	DurationSec float64 `json:"duration_sec,omitempty"`
}

// VideoGrid is the MEC video arm: every (operator, ABR, edge
// condition) triple of the grid runs Sessions.Count sessions, and the
// EDGE_ON/EDGE_OFF arms of a cell share seeds so their QoE difference
// is a paired statistic.
type VideoGrid struct {
	// ABRs lists algorithms: bola, throughput, dynamic.
	ABRs []string `json:"abrs"`
	// Ladder is "400" (the §6 mid-band ladder, default) or "mmwave".
	Ladder string `json:"ladder,omitempty"`
	// ChunkSec is the segment duration (default 4).
	ChunkSec float64 `json:"chunk_sec,omitempty"`
	// MediaSec is the media length per session (default 60).
	MediaSec float64 `json:"media_sec,omitempty"`
	// Edge parameterizes the MEC cache both arms share: EDGE_ON uses
	// it, EDGE_OFF fetches every chunk at the origin RTT.
	Edge EdgeSpec `json:"edge"`
}

// EdgeSpec parameterizes MEC edge caching (see video.EdgeConfig).
type EdgeSpec struct {
	// HitRatio is the fraction of chunks served from the edge cache
	// when the cache is on.
	HitRatio float64 `json:"hit_ratio"`
	// OriginRTTMS is the per-chunk request RTT to the origin CDN;
	// EdgeRTTMS the RTT for an edge cache hit.
	OriginRTTMS float64 `json:"origin_rtt_ms"`
	EdgeRTTMS   float64 `json:"edge_rtt_ms"`
}

// Decode strictly parses a spec from JSON: unknown fields, duplicate
// schema mismatches and malformed sections are errors, then the spec is
// normalized (defaults applied) and cross-field validated. The returned
// spec always passes Validate.
func Decode(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: decoding spec: %w", err)
	}
	// Trailing garbage after the top-level object is an error too:
	// concatenated or truncated-and-patched files should not half-parse.
	if dec.More() {
		return nil, fmt.Errorf("scenario: trailing data after spec object")
	}
	s.Normalize()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Normalize applies defaults in place. It is idempotent, and Canonical
// output round-trips through Decode to a DeepEqual spec because every
// default is materialized here rather than at use sites.
func (s *Spec) Normalize() {
	if s.SeedDomain == "" {
		s.SeedDomain = s.Name
	}
	if s.Route.Kind == "" {
		s.Route.Kind = RouteStationary
	}
	if s.Sessions.Count == 0 {
		s.Sessions.Count = 1
	}
	switch s.Traffic.App {
	case AppWeb:
		if s.Traffic.PageKB == 0 {
			s.Traffic.PageKB = 1500
		}
		if s.Traffic.ThinkTimeMS == 0 {
			s.Traffic.ThinkTimeMS = 2000
		}
	case AppVoIP:
		if s.Traffic.ProbeCount == 0 {
			s.Traffic.ProbeCount = 400
		}
	case AppGaming:
		if s.Traffic.ProbeCount == 0 {
			s.Traffic.ProbeCount = 400
		}
		if s.Traffic.LatencyBudgetMS == 0 {
			s.Traffic.LatencyBudgetMS = 30
		}
	}
	if s.Population.UEsPerCell > 1 && s.Population.CellPolicy == "" {
		s.Population.CellPolicy = "pf"
	}
	if v := s.Video; v != nil {
		if v.Ladder == "" {
			v.Ladder = "400"
		}
		if v.ChunkSec == 0 {
			v.ChunkSec = 4
		}
		if v.MediaSec == 0 {
			v.MediaSec = 60
		}
	}
}

// knownApps in listing order.
var knownApps = []string{AppBulk, AppWeb, AppVoIP, AppGaming, AppUplink, AppVideo}

// Validate cross-checks the normalized spec and returns the first
// problem with enough context to fix the JSON. It never mutates the
// spec; call Normalize first (Decode does both).
func (s *Spec) Validate() error {
	if s.Schema != SchemaVersion {
		return fmt.Errorf("scenario: schema %d unsupported (want %d)", s.Schema, SchemaVersion)
	}
	if strings.TrimSpace(s.Name) == "" {
		return fmt.Errorf("scenario: spec has no name")
	}
	app := s.Traffic.App
	found := false
	for _, k := range knownApps {
		if app == k {
			found = true
			break
		}
	}
	if !found {
		return fmt.Errorf("scenario: %s: unknown traffic app %q (want one of %s)",
			s.Name, app, strings.Join(knownApps, ", "))
	}
	// Per-app knobs must not leak across apps: a web spec carrying a
	// latency budget is a typo, not configuration.
	if app != AppWeb && (s.Traffic.PageKB != 0 || s.Traffic.ThinkTimeMS != 0) {
		return fmt.Errorf("scenario: %s: page_kb/think_time_ms only apply to app %q", s.Name, AppWeb)
	}
	if app != AppVoIP && app != AppGaming && s.Traffic.ProbeCount != 0 {
		return fmt.Errorf("scenario: %s: probe_count only applies to apps %q and %q", s.Name, AppVoIP, AppGaming)
	}
	if app != AppGaming && s.Traffic.LatencyBudgetMS != 0 {
		return fmt.Errorf("scenario: %s: latency_budget_ms only applies to app %q", s.Name, AppGaming)
	}
	if app == AppWeb && (s.Traffic.PageKB < 0 || s.Traffic.ThinkTimeMS < 0) {
		return fmt.Errorf("scenario: %s: negative web traffic knobs", s.Name)
	}
	if (app == AppVoIP || app == AppGaming) && s.Traffic.ProbeCount < 0 {
		return fmt.Errorf("scenario: %s: negative probe_count %d", s.Name, s.Traffic.ProbeCount)
	}
	if app == AppGaming && s.Traffic.LatencyBudgetMS < 0 {
		return fmt.Errorf("scenario: %s: negative latency_budget_ms %g", s.Name, s.Traffic.LatencyBudgetMS)
	}
	switch s.Route.Kind {
	case RouteStationary:
		if s.Route.LengthM != 0 {
			return fmt.Errorf("scenario: %s: length_m set on a stationary route", s.Name)
		}
	case RouteWalking, RouteDriving:
	default:
		return fmt.Errorf("scenario: %s: unknown route kind %q (want %s, %s or %s)",
			s.Name, s.Route.Kind, RouteStationary, RouteWalking, RouteDriving)
	}
	if s.Route.LengthM < 0 || s.Route.UEDistanceM < 0 {
		return fmt.Errorf("scenario: %s: negative route geometry", s.Name)
	}
	seen := map[string]bool{}
	for _, acr := range s.BandPlan.Operators {
		if _, err := operators.ByAcronym(acr); err != nil {
			return fmt.Errorf("scenario: %s: band plan: %w", s.Name, err)
		}
		if seen[acr] {
			return fmt.Errorf("scenario: %s: band plan lists %s twice", s.Name, acr)
		}
		seen[acr] = true
	}
	if s.BandPlan.CompareLTE && app != AppUplink {
		return fmt.Errorf("scenario: %s: compare_lte only applies to app %q", s.Name, AppUplink)
	}
	if s.Population.UEsPerCell < 0 {
		return fmt.Errorf("scenario: %s: negative ues_per_cell %d", s.Name, s.Population.UEsPerCell)
	}
	if s.Population.UEsPerCell > 1 {
		if _, err := gnb.ParsePolicy(s.Population.CellPolicy); err != nil {
			return fmt.Errorf("scenario: %s: %w", s.Name, err)
		}
	} else if s.Population.CellPolicy != "" {
		return fmt.Errorf("scenario: %s: cell_policy %q set without ues_per_cell > 1", s.Name, s.Population.CellPolicy)
	}
	if s.Faults != "" {
		if _, err := fault.ParseSpec(s.Faults); err != nil {
			return fmt.Errorf("scenario: %s: %w", s.Name, err)
		}
	}
	if s.Sessions.Count < 1 {
		return fmt.Errorf("scenario: %s: sessions.count %d < 1", s.Name, s.Sessions.Count)
	}
	if app == AppVideo {
		if s.Sessions.DurationSec != 0 {
			return fmt.Errorf("scenario: %s: video sessions take their length from video.media_sec; drop sessions.duration_sec", s.Name)
		}
	} else if s.Sessions.DurationSec <= 0 {
		return fmt.Errorf("scenario: %s: sessions.duration_sec %g must be positive", s.Name, s.Sessions.DurationSec)
	}
	if app == AppVideo {
		if s.Video == nil {
			return fmt.Errorf("scenario: %s: app %q requires a video section", s.Name, AppVideo)
		}
		if err := s.Video.validate(s.Name); err != nil {
			return err
		}
	} else if s.Video != nil {
		return fmt.Errorf("scenario: %s: video section set but traffic app is %q", s.Name, app)
	}
	return nil
}

// knownABRs in grid order.
var knownABRs = []string{"bola", "throughput", "dynamic"}

func (v *VideoGrid) validate(name string) error {
	if len(v.ABRs) == 0 {
		return fmt.Errorf("scenario: %s: video grid needs at least one ABR", name)
	}
	seen := map[string]bool{}
	for _, a := range v.ABRs {
		ok := false
		for _, k := range knownABRs {
			if a == k {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("scenario: %s: unknown ABR %q (want %s)", name, a, strings.Join(knownABRs, ", "))
		}
		if seen[a] {
			return fmt.Errorf("scenario: %s: video grid lists ABR %q twice", name, a)
		}
		seen[a] = true
	}
	if v.Ladder != "400" && v.Ladder != "mmwave" {
		return fmt.Errorf("scenario: %s: unknown ladder %q (want 400 or mmwave)", name, v.Ladder)
	}
	if v.ChunkSec <= 0 {
		return fmt.Errorf("scenario: %s: chunk_sec %g must be positive", name, v.ChunkSec)
	}
	if v.MediaSec < v.ChunkSec {
		return fmt.Errorf("scenario: %s: media_sec %g shorter than one chunk (%g s)", name, v.MediaSec, v.ChunkSec)
	}
	if v.Edge.HitRatio < 0 || v.Edge.HitRatio > 1 {
		return fmt.Errorf("scenario: %s: edge hit_ratio %g outside [0,1]", name, v.Edge.HitRatio)
	}
	if v.Edge.OriginRTTMS < 0 || v.Edge.EdgeRTTMS < 0 {
		return fmt.Errorf("scenario: %s: negative edge RTTs", name)
	}
	if v.Edge.EdgeRTTMS > v.Edge.OriginRTTMS {
		return fmt.Errorf("scenario: %s: edge_rtt_ms %g exceeds origin_rtt_ms %g — the cache must be closer than the origin",
			name, v.Edge.EdgeRTTMS, v.Edge.OriginRTTMS)
	}
	return nil
}

// Canonical returns the spec's canonical JSON: the normalized spec
// marshaled with fixed field order and no insignificant whitespace.
// Decode(Canonical()) is the identity on normalized specs.
func (s *Spec) Canonical() ([]byte, error) {
	b, err := json.Marshal(s)
	if err != nil {
		return nil, fmt.Errorf("scenario: canonicalizing %s: %w", s.Name, err)
	}
	return b, nil
}

// Digest returns hex(SHA-256) of the canonical JSON — the identity a
// run manifest records so artifacts can be traced to the exact scenario
// that produced them.
func (s *Spec) Digest() (string, error) {
	digest, _, err := obs.DigestJSON(s)
	if err != nil {
		return "", fmt.Errorf("scenario: digesting %s: %w", s.Name, err)
	}
	return digest, nil
}

// StampManifest records the scenario's identity on a run manifest.
func (s *Spec) StampManifest(m *obs.RunManifest) error {
	d, err := s.Digest()
	if err != nil {
		return err
	}
	m.Scenario = s.Name
	m.ScenarioDigest = d
	return nil
}

// Operators resolves the band plan against the registry (full mid-band
// registry when empty), in spec order.
func (s *Spec) Operators() ([]operators.Operator, error) {
	if len(s.BandPlan.Operators) == 0 {
		return operators.MidBand(), nil
	}
	ops := make([]operators.Operator, 0, len(s.BandPlan.Operators))
	for _, acr := range s.BandPlan.Operators {
		op, err := operators.ByAcronym(acr)
		if err != nil {
			return nil, fmt.Errorf("scenario: %s: %w", s.Name, err)
		}
		ops = append(ops, op)
	}
	return ops, nil
}

// route builds the operators.Scenario for one session seed.
func (s *Spec) route(seed int64) operators.Scenario {
	var sc operators.Scenario
	switch s.Route.Kind {
	case RouteWalking:
		sc = operators.Walking(seed)
	case RouteDriving:
		sc = operators.Driving(seed)
	default:
		sc = operators.Stationary(seed)
	}
	if s.Route.LengthM != 0 {
		sc.RouteLengthM = s.Route.LengthM
	}
	if s.Route.UEDistanceM != 0 {
		sc.UEDistanceM = s.Route.UEDistanceM
	}
	return sc
}

// Duration returns the per-session workload duration: the sessions
// section's for app workloads, the media length for video.
func (s *Spec) Duration() time.Duration {
	if s.Traffic.App == AppVideo && s.Video != nil {
		return time.Duration(s.Video.MediaSec * float64(time.Second))
	}
	return time.Duration(s.Sessions.DurationSec * float64(time.Second))
}

// Schedule parses the embedded fault spec (nil when empty). The spec
// was validated at decode time, so an error here means the Spec was
// mutated after Decode.
func (s *Spec) Schedule() (*fault.Schedule, error) {
	if s.Faults == "" {
		return nil, nil
	}
	sched, err := fault.ParseSpec(s.Faults)
	if err != nil {
		return nil, fmt.Errorf("scenario: %s: %w", s.Name, err)
	}
	return sched, nil
}

// QuickScale returns a copy of the spec shrunk for CI and golden runs:
// at most 2 sessions, at most 2 simulated seconds per session, at most
// 24 s of media per video session and at most 200 latency probes. The
// copy is re-normalized; its digest differs from the full spec's (it is
// a different scenario, and the manifest should say so).
func (s *Spec) QuickScale() *Spec {
	q := *s
	if q.Video != nil {
		v := *q.Video
		if v.MediaSec > 24 {
			v.MediaSec = 24
		}
		q.Video = &v
	}
	if q.Sessions.Count > 2 {
		q.Sessions.Count = 2
	}
	if q.Sessions.DurationSec > 2 {
		q.Sessions.DurationSec = 2
	}
	if q.Traffic.ProbeCount > 200 {
		q.Traffic.ProbeCount = 200
	}
	q.Normalize()
	return &q
}

// sortedNames returns the names of m in sorted order (listing helper).
func sortedNames[T any](m map[string]T) []string {
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
