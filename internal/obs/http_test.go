package obs

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// Golden /metrics output through the HTTP handler: a fixed registry
// must render the exact exposition text with the Prometheus content
// type.
func TestMetricsHandlerGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("sim_tb_ack_total").Add(90)
	r.Counter("sim_tb_nack_total").Add(10)
	h := r.Histogram("sim_cqi", LinearEdges(0, 1, 4))
	h.Observe(0)
	h.Observe(2)
	h.Observe(2)

	ts := httptest.NewServer(Handler(r))
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	want := `# TYPE sim_cqi histogram
sim_cqi_bucket{le="0"} 1
sim_cqi_bucket{le="1"} 1
sim_cqi_bucket{le="2"} 3
sim_cqi_bucket{le="3"} 3
sim_cqi_bucket{le="+Inf"} 3
sim_cqi_sum 4
sim_cqi_count 3
# TYPE sim_tb_ack_total counter
sim_tb_ack_total 90
# TYPE sim_tb_nack_total counter
sim_tb_nack_total 10
`
	if string(body) != want {
		t.Errorf("/metrics mismatch:\n--- got ---\n%s--- want ---\n%s", body, want)
	}
}

// The endpoint must expose pprof and expvar alongside /metrics.
func TestObservabilityEndpoints(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	for _, path := range []string{"/", "/metrics", "/debug/pprof/", "/debug/vars"} {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d, want 200", path, resp.StatusCode)
		}
	}
	resp, err := http.Get("http://" + srv.Addr() + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET /nope = %d, want 404", resp.StatusCode)
	}
}

// Progress snapshots: a stopped reporter prints one final line with
// done/total, slots and rate.
func TestProgressSnapshot(t *testing.T) {
	var b syncBuffer
	stop := StartProgress(ProgressConfig{
		W:        &b,
		Interval: time.Hour, // only the final snapshot fires
		Prefix:   "test",
		Done:     func() int64 { return 3 },
		Total:    func() int64 { return 10 },
		Slots:    func() int64 { return 2_000_000 },
	})
	stop()
	out := b.String()
	if !strings.Contains(out, "test: progress 3/10 jobs") {
		t.Errorf("snapshot missing jobs: %q", out)
	}
	if !strings.Contains(out, "2.00M slots") {
		t.Errorf("snapshot missing slots: %q", out)
	}
	if !strings.Contains(out, "ETA") {
		t.Errorf("snapshot missing ETA: %q", out)
	}
}

// syncBuffer is a minimal concurrency-safe strings.Builder for the
// progress goroutine.
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}
