package obs

import (
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

type testConfig struct {
	Operators []string `json:"operators"`
	Seed      int64    `json:"seed"`
}

// The manifest contract: write → parse → digest match, with provenance
// stamped from the running toolchain.
func TestManifestRoundTrip(t *testing.T) {
	cfg := testConfig{Operators: []string{"V_Sp", "Tmb_US"}, Seed: 2024}
	m, err := NewManifest("campaign", cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.Seed = cfg.Seed
	m.Workers = 8
	m.WallSeconds = 1.25
	m.JobsDone = 6
	m.SlotsSimulated = 120000
	m.Outputs = []string{"V_Sp-stationary.xcal"}

	if m.GoVersion != runtime.Version() {
		t.Errorf("GoVersion = %q, want %q", m.GoVersion, runtime.Version())
	}
	if m.Schema != ManifestSchema {
		t.Errorf("Schema = %d, want %d", m.Schema, ManifestSchema)
	}

	path := filepath.Join(t.TempDir(), "manifest.json")
	if err := WriteManifest(path, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.ConfigDigest != m.ConfigDigest {
		t.Errorf("digest changed across round trip: %s vs %s", got.ConfigDigest, m.ConfigDigest)
	}
	if got.Seed != 2024 || got.Workers != 8 || got.JobsDone != 6 {
		t.Errorf("accounting fields lost: %+v", got)
	}
	var cfg2 testConfig
	if err := json.Unmarshal(got.Config, &cfg2); err != nil {
		t.Fatal(err)
	}
	if len(cfg2.Operators) != 2 || cfg2.Operators[0] != "V_Sp" || cfg2.Seed != 2024 {
		t.Errorf("config lost across round trip: %+v", cfg2)
	}

	// The digest is over the canonical config: identical configs digest
	// identically, different configs differently.
	same, _, err := DigestJSON(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if same != got.ConfigDigest {
		t.Errorf("recomputed digest %s != recorded %s", same, got.ConfigDigest)
	}
	other, _, err := DigestJSON(testConfig{Operators: []string{"V_Sp"}, Seed: 2024})
	if err != nil {
		t.Fatal(err)
	}
	if other == got.ConfigDigest {
		t.Error("different configs produced the same digest")
	}
}

// A tampered config must fail verification on read.
func TestManifestTamperDetected(t *testing.T) {
	m, err := NewManifest("campaign", testConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "manifest.json")
	if err := WriteManifest(path, m); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	tampered := strings.Replace(string(b), `"seed": 1`, `"seed": 2`, 1)
	if tampered == string(b) {
		t.Fatal("tamper substitution did not apply")
	}
	if err := os.WriteFile(path, []byte(tampered), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadManifest(path); err == nil || !strings.Contains(err.Error(), "digest mismatch") {
		t.Errorf("tampered manifest accepted: %v", err)
	}
}

// No partial manifest may be left behind: the write is tmp+rename.
func TestWriteManifestAtomic(t *testing.T) {
	m, err := NewManifest("figures", testConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "manifest.json")
	if err := WriteManifest(path, m); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "manifest.json" {
		t.Errorf("unexpected directory contents: %v", entries)
	}
}
