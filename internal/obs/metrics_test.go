package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Load(); got != 42 {
		t.Errorf("counter = %d, want 42", got)
	}
	var g Gauge
	g.Set(3.5)
	if got := g.Load(); got != 3.5 {
		t.Errorf("gauge = %g, want 3.5", got)
	}
	g.Set(-1)
	if got := g.Load(); got != -1 {
		t.Errorf("gauge = %g, want -1", got)
	}
}

// The bucket contract: v lands in the first bucket whose upper edge is
// ≥ v; values above every edge land in +Inf. Edge values belong to the
// bucket they bound (v ≤ edge).
func TestHistogramBucketEdges(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for _, v := range []float64{-5, 0.5, 1} { // ≤ 1
		h.Observe(v)
	}
	h.Observe(1.5) // ≤ 2
	h.Observe(2)   // ≤ 2: edge value stays in its own bucket
	h.Observe(3)   // ≤ 4
	h.Observe(4)   // ≤ 4
	h.Observe(4.1) // +Inf
	h.Observe(999) // +Inf

	want := []int64{3, 2, 2, 2}
	got := h.BucketCounts()
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket %d = %d, want %d (all: %v)", i, got[i], want[i], got)
		}
	}
	if h.Count() != 9 {
		t.Errorf("count = %d, want 9", h.Count())
	}
	if sum := h.Sum(); sum != -5+0.5+1+1.5+2+3+4+4.1+999 {
		t.Errorf("sum = %g", sum)
	}
}

func TestEdgeLayouts(t *testing.T) {
	lin := LinearEdges(0, 1, 16)
	if len(lin) != 16 || lin[0] != 0 || lin[15] != 15 {
		t.Errorf("LinearEdges(0,1,16) = %v", lin)
	}
	exp := ExponentialEdges(16, 2, 4)
	want := []float64{16, 32, 64, 128}
	for i := range want {
		if exp[i] != want[i] {
			t.Errorf("ExponentialEdges[%d] = %g, want %g", i, exp[i], want[i])
		}
	}
	for _, bad := range [](func()){
		func() { NewHistogram(nil) },
		func() { NewHistogram([]float64{1, 1}) },
		func() { NewHistogram([]float64{2, 1}) },
		func() { LinearEdges(0, 0, 3) },
		func() { ExponentialEdges(0, 2, 3) },
		func() { ExponentialEdges(1, 1, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid layout did not panic")
				}
			}()
			bad()
		}()
	}
}

// Histograms are recorded from many workers at once; the atomic
// counters must not lose observations (run under -race in CI).
func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(LinearEdges(0, 1, 8))
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(i % 10))
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Errorf("count = %d, want %d", h.Count(), workers*per)
	}
	total := int64(0)
	for _, c := range h.BucketCounts() {
		total += c
	}
	if total != workers*per {
		t.Errorf("bucket total = %d, want %d", total, workers*per)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("x")
	c2 := r.Counter("x")
	if c1 != c2 {
		t.Error("Counter(x) returned distinct instances")
	}
	h1 := r.Histogram("h", []float64{1, 2})
	h2 := r.Histogram("h", []float64{99}) // edges ignored on re-get
	if h1 != h2 {
		t.Error("Histogram(h) returned distinct instances")
	}
	if got := h2.Edges(); len(got) != 2 {
		t.Errorf("re-get replaced edges: %v", got)
	}
}

// Golden Prometheus text exposition: families sorted, TYPE lines once
// per family, labeled histograms merge le with the fixed labels.
func TestWriteMetricsGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("jobs_total").Add(7)
	r.Gauge("temp").Set(1.5)
	r.GaugeFunc("live", func() float64 { return 3 })
	r.Histogram("lat", []float64{1, 2}).Observe(1.5)
	r.Histogram(`lat{op="a"}`, []float64{1, 2}).Observe(5)

	var b strings.Builder
	if err := r.WriteMetrics(&b); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE jobs_total counter
jobs_total 7
# TYPE lat histogram
lat_bucket{le="1"} 0
lat_bucket{le="2"} 1
lat_bucket{le="+Inf"} 1
lat_sum 1.5
lat_count 1
lat_bucket{op="a",le="1"} 0
lat_bucket{op="a",le="2"} 0
lat_bucket{op="a",le="+Inf"} 1
lat_sum{op="a"} 5
lat_count{op="a"} 1
# TYPE live gauge
live 3
# TYPE temp gauge
temp 1.5
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestEnabledToggle(t *testing.T) {
	prev := Enabled()
	defer SetEnabled(prev)
	SetEnabled(true)
	if !Enabled() {
		t.Error("Enabled() = false after SetEnabled(true)")
	}
	SetEnabled(false)
	if Enabled() {
		t.Error("Enabled() = true after SetEnabled(false)")
	}
}
