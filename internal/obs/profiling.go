package obs

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartProfiles starts CPU profiling to cpuPath (when non-empty) and
// returns a stop function that finishes the CPU profile and writes a heap
// profile to memPath (when non-empty). It backs the -cpuprofile and
// -memprofile CLI flags, complementing the live /debug/pprof endpoint of
// Serve for runs that exit before an operator can attach. Profiles are
// observability outputs only — they never feed back into simulation
// state, so profiled runs stay byte-identical to unprofiled ones.
func StartProfiles(cpuPath, memPath string) (stop func() error, err error) {
	var cpuF *os.File
	if cpuPath != "" {
		cpuF, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("obs: cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuF); err != nil {
			cpuF.Close()
			return nil, fmt.Errorf("obs: cpu profile: %w", err)
		}
	}
	return func() error {
		if cpuF != nil {
			pprof.StopCPUProfile()
			if err := cpuF.Close(); err != nil {
				return fmt.Errorf("obs: cpu profile: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("obs: heap profile: %w", err)
			}
			runtime.GC() // settle the live heap before snapshotting
			err = pprof.WriteHeapProfile(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				return fmt.Errorf("obs: heap profile: %w", err)
			}
		}
		return nil
	}, nil
}
