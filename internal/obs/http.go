package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Server is the optional observability endpoint: a plain HTTP listener
// serving the registry's /metrics exposition, Go's pprof profiling
// handlers and expvar. CLIs start one when -obs-listen is set, so a
// running campaign can be scraped and profiled live without touching
// the simulation loop.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Handler returns the observability mux for reg:
//
//	/metrics      Prometheus text exposition of the registry
//	/debug/pprof  CPU/heap/goroutine/... profiles (net/http/pprof)
//	/debug/vars   expvar JSON (includes memstats)
func Handler(reg *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WriteMetrics(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprintln(w, "midband obs endpoint: /metrics /debug/pprof /debug/vars")
	})
	return mux
}

// Serve starts the observability endpoint on addr (":0" picks a free
// port) and returns immediately; requests are handled on a background
// goroutine until Close.
func Serve(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: Handler(reg), ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln)
	return &Server{ln: ln, srv: srv}, nil
}

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and any in-flight handlers.
func (s *Server) Close() error { return s.srv.Close() }
