package obs

import (
	"fmt"
	"io"
	"time"
)

// ProgressConfig drives periodic progress snapshots. The snapshot reads
// fleet-style counters through plain funcs so obs stays import-free of
// the orchestrator: callers bridge fleet.Metrics with closures.
type ProgressConfig struct {
	// W receives one snapshot line per interval (normally stderr).
	W io.Writer
	// Interval between snapshots (default 2s).
	Interval time.Duration
	// Prefix labels the lines (default "obs").
	Prefix string
	// Done returns completed jobs; Total returns the job count (0 if
	// not yet known). Slots returns simulated slots so far (optional).
	Done  func() int64
	Total func() int64
	Slots func() int64
}

// StartProgress launches the snapshot loop and returns a stop func that
// prints one final snapshot and terminates the loop. Snapshots report
// jobs done/total, simulated slots and slots/sec since start, and an
// ETA extrapolated from the completion rate:
//
//	campaign: progress 9/33 jobs, 12.40M slots (4.31M slots/s), ETA 11s
func StartProgress(cfg ProgressConfig) (stop func()) {
	if cfg.Interval <= 0 {
		cfg.Interval = 2 * time.Second
	}
	if cfg.Prefix == "" {
		cfg.Prefix = "obs"
	}
	t0 := time.Now() //detlint:allow walltime progress snapshots report real elapsed time
	snapshot := func() {
		elapsed := time.Since(t0).Seconds() //detlint:allow walltime slots/s and ETA are stderr-only observability
		if elapsed <= 0 {
			elapsed = 1e-9
		}
		done, total := cfg.Done(), int64(0)
		if cfg.Total != nil {
			total = cfg.Total()
		}
		line := fmt.Sprintf("%s: progress %d", cfg.Prefix, done)
		if total > 0 {
			line += fmt.Sprintf("/%d", total)
		}
		line += " jobs"
		if cfg.Slots != nil {
			slots := float64(cfg.Slots())
			line += fmt.Sprintf(", %.2fM slots (%.2fM slots/s)", slots/1e6, slots/1e6/elapsed)
		}
		if total > 0 && done > 0 && done < total {
			eta := time.Duration(elapsed / float64(done) * float64(total-done) * float64(time.Second))
			line += fmt.Sprintf(", ETA %s", eta.Round(time.Second))
		}
		fmt.Fprintln(cfg.W, line)
	}

	ticker := time.NewTicker(cfg.Interval)
	quit := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		for {
			select {
			case <-ticker.C:
				snapshot()
			case <-quit:
				return
			}
		}
	}()
	return func() {
		ticker.Stop()
		close(quit)
		<-finished
		snapshot()
	}
}
