// Package obs is the simulator's observability layer: low-overhead typed
// metrics (counters, gauges, fixed-bucket histograms), run manifests that
// make every campaign output reproducible, an optional HTTP endpoint
// exposing live metrics plus pprof/expvar, and periodic stderr progress
// snapshots.
//
// The paper this repository reproduces is a *measurement* study — its
// whole contribution is slot-level KPI visibility into live networks —
// so the simulator gets the same treatment: while a campaign runs, the
// per-slot processes (CQI, MCS, BLER, HARQ, SINR, goodput) are visible
// as live histograms instead of only materializing in the final tables.
//
// Two rules keep obs safe to leave in the hot path:
//
//   - Metrics never feed back into simulation state. Nothing in the
//     simulator reads a metric, so instrumented and uninstrumented runs
//     produce byte-identical aggregates and traces for any worker count.
//   - The disabled path is a single atomic load. All hot-path call sites
//     gate on [Enabled], which defaults to off; CLIs flip it on only when
//     the user asks for -obs-listen or -progress.
package obs

import "sync/atomic"

// enabled gates hot-path instrumentation. Off by default so the
// simulation loop pays one predictable atomic load per gated site.
var enabled atomic.Bool

// SetEnabled switches hot-path instrumentation on or off. CLIs enable it
// when an observability flag (-obs-listen, -progress) is set; tests may
// toggle it, restoring the previous value when done.
func SetEnabled(v bool) { enabled.Store(v) }

// Enabled reports whether hot-path instrumentation is on. Call sites in
// the simulation loop must check it before recording:
//
//	if obs.Enabled() {
//		obs.Sim.MCS.Observe(float64(mcs))
//	}
func Enabled() bool { return enabled.Load() }
