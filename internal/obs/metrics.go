package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. All methods are safe for
// concurrent use; Add is a single atomic add, fit for per-slot paths.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is a settable float64 metric (last-write-wins).
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Load returns the current value.
func (g *Gauge) Load() float64 { return math.Float64frombits(g.bits.Load()) }

// atomicFloat accumulates float64 values lock-free (CAS loop).
type atomicFloat struct{ bits atomic.Uint64 }

func (a *atomicFloat) Add(v float64) {
	for {
		old := a.bits.Load()
		if a.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

func (a *atomicFloat) Load() float64 { return math.Float64frombits(a.bits.Load()) }

// Histogram counts observations into fixed buckets. The bucket layout is
// immutable after construction, so Observe is lock-free: a bucket search
// over a small sorted edge slice plus two atomic adds. Edges are upper
// bounds (v ≤ edge falls in that bucket); one implicit +Inf bucket
// catches the rest, Prometheus-style cumulative on exposition.
type Histogram struct {
	edges   []float64
	buckets []atomic.Int64 // len(edges)+1; last is +Inf
	count   atomic.Int64
	sum     atomicFloat
}

// NewHistogram builds a histogram from strictly increasing upper-bound
// edges. It panics on an invalid layout — bucket edges are compile-time
// decisions, not runtime inputs.
func NewHistogram(edges []float64) *Histogram {
	if len(edges) == 0 {
		panic("obs: histogram needs at least one bucket edge")
	}
	for i := 1; i < len(edges); i++ {
		if edges[i] <= edges[i-1] {
			panic(fmt.Sprintf("obs: histogram edges not increasing at %d: %g after %g", i, edges[i], edges[i-1]))
		}
	}
	cp := make([]float64, len(edges))
	copy(cp, edges)
	return &Histogram{edges: cp, buckets: make([]atomic.Int64, len(cp)+1)}
}

// LinearEdges returns n upper bounds start, start+width, ... — the layout
// used for index-valued KPIs (CQI 0–15, MCS 0–28).
func LinearEdges(start, width float64, n int) []float64 {
	if n < 1 || width <= 0 {
		panic("obs: invalid linear edge layout")
	}
	edges := make([]float64, n)
	for i := range edges {
		edges[i] = start + float64(i)*width
	}
	return edges
}

// ExponentialEdges returns n upper bounds start, start*factor, ... — the
// layout used for scale-free quantities (latency, goodput).
func ExponentialEdges(start, factor float64, n int) []float64 {
	if n < 1 || start <= 0 || factor <= 1 {
		panic("obs: invalid exponential edge layout")
	}
	edges := make([]float64, n)
	v := start
	for i := range edges {
		edges[i] = v
		v *= factor
	}
	return edges
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Linear scan: edge slices are small (≤ ~32) and usually hit early;
	// this beats binary search on branch prediction for KPI-shaped data.
	i := 0
	for i < len(h.edges) && v > h.edges[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return h.sum.Load() }

// Edges returns the bucket upper bounds (excluding the implicit +Inf).
func (h *Histogram) Edges() []float64 {
	cp := make([]float64, len(h.edges))
	copy(cp, h.edges)
	return cp
}

// BucketCounts returns the per-bucket (non-cumulative) counts; the last
// entry is the +Inf bucket.
func (h *Histogram) BucketCounts() []int64 {
	out := make([]int64, len(h.buckets))
	for i := range h.buckets {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// Registry holds named metrics and renders them in Prometheus text
// exposition format. Get-or-create takes a lock; recorded hot paths hold
// the returned pointers, so steady-state observation is lock-free.
//
// A name may carry a fixed label set in curly braces —
// `campaign_goodput_mbps{operator="V_Sp"}` — which exposition merges
// with histogram `le` labels the way Prometheus expects.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	gaugeFuncs map[string]func() float64
	hists      map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		gaugeFuncs: map[string]func() float64{},
		hists:      map[string]*Histogram{},
	}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry that the Sim metric set and
// the CLIs register into.
func Default() *Registry { return defaultRegistry }

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// GaugeFunc registers a read-on-scrape gauge — the bridge for values
// that already live elsewhere (fleet counters, wall clocks).
func (r *Registry) GaugeFunc(name string, f func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gaugeFuncs[name] = f
}

// Histogram returns the named histogram, creating it with the given
// edges on first use. Later calls ignore edges and return the existing
// histogram.
func (r *Registry) Histogram(name string, edges []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(edges)
		r.hists[name] = h
	}
	return h
}

// splitName separates a metric name from its optional fixed label block:
// `x{a="b"}` → (`x`, `a="b"`).
func splitName(name string) (family, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 && strings.HasSuffix(name, "}") {
		return name[:i], name[i+1 : len(name)-1]
	}
	return name, ""
}

func formatFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteMetrics renders every registered metric in Prometheus text
// exposition format, families sorted by name so output is deterministic.
func (r *Registry) WriteMetrics(w io.Writer) error {
	r.mu.RLock()
	defer r.mu.RUnlock()

	type entry struct {
		name string // full name including labels
		kind string // counter | gauge | histogram
	}
	var entries []entry
	for n := range r.counters {
		entries = append(entries, entry{n, "counter"})
	}
	for n := range r.gauges {
		entries = append(entries, entry{n, "gauge"})
	}
	for n := range r.gaugeFuncs {
		entries = append(entries, entry{n, "gauge"})
	}
	for n := range r.hists {
		entries = append(entries, entry{n, "histogram"})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].name < entries[j].name })

	typed := map[string]bool{} // families whose # TYPE line is out
	for _, e := range entries {
		family, labels := splitName(e.name)
		if !typed[family] {
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", family, e.kind); err != nil {
				return err
			}
			typed[family] = true
		}
		var err error
		switch e.kind {
		case "counter":
			err = writeSample(w, family, labels, float64(r.counters[e.name].Load()))
		case "gauge":
			if g, ok := r.gauges[e.name]; ok {
				err = writeSample(w, family, labels, g.Load())
			} else {
				err = writeSample(w, family, labels, r.gaugeFuncs[e.name]())
			}
		case "histogram":
			err = writeHistogram(w, family, labels, r.hists[e.name])
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func writeSample(w io.Writer, family, labels string, v float64) error {
	if labels != "" {
		_, err := fmt.Fprintf(w, "%s{%s} %s\n", family, labels, formatFloat(v))
		return err
	}
	_, err := fmt.Fprintf(w, "%s %s\n", family, formatFloat(v))
	return err
}

func writeHistogram(w io.Writer, family, labels string, h *Histogram) error {
	sep := ""
	if labels != "" {
		sep = labels + ","
	}
	cum := int64(0)
	counts := h.BucketCounts()
	for i, edge := range h.edges {
		cum += counts[i]
		if _, err := fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n", family, sep, formatFloat(edge), cum); err != nil {
			return err
		}
	}
	cum += counts[len(counts)-1]
	if _, err := fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", family, sep, cum); err != nil {
		return err
	}
	if labels != "" {
		if _, err := fmt.Fprintf(w, "%s_sum{%s} %s\n", family, labels, formatFloat(h.Sum())); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count{%s} %d\n", family, labels, h.Count())
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum %s\n", family, formatFloat(h.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count %d\n", family, h.Count())
	return err
}
