package obs

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"time"
)

// ManifestSchema versions the RunManifest JSON layout.
const ManifestSchema = 1

// RunManifest records everything needed to reproduce (and audit) one
// simulation run. One is written alongside every campaign output, so a
// figure or trace can always be traced back to the exact configuration,
// seed and toolchain that produced it.
type RunManifest struct {
	// Schema is the manifest layout version (ManifestSchema).
	Schema int `json:"schema"`
	// Tool names the producing command (campaign, figures).
	Tool string `json:"tool"`
	// Config is the canonical JSON of the run configuration;
	// ConfigDigest is its SHA-256. Re-running the tool with this config
	// and Seed reproduces the outputs byte-for-byte.
	Config       json.RawMessage `json:"config"`
	ConfigDigest string          `json:"config_digest"`
	// Seed is the campaign base seed every job seed derives from.
	Seed int64 `json:"seed"`
	// Workers is the fleet pool size the run used (0 = GOMAXPROCS).
	// Outputs do not depend on it; it is recorded for performance
	// forensics only.
	Workers int `json:"workers"`

	// Scenario names the declarative scenario the run executed and
	// ScenarioDigest is the SHA-256 of its canonical JSON (both omitted
	// for flag-driven runs, keeping legacy manifests byte-identical).
	Scenario       string `json:"scenario,omitempty"`
	ScenarioDigest string `json:"scenario_digest,omitempty"`

	// Toolchain and host provenance.
	GoVersion   string `json:"go_version"`
	GitRevision string `json:"git_revision,omitempty"`
	GitDirty    bool   `json:"git_dirty,omitempty"`
	OS          string `json:"os"`
	Arch        string `json:"arch"`
	NumCPU      int    `json:"num_cpu"`

	// Run accounting.
	Start          time.Time `json:"start"`
	WallSeconds    float64   `json:"wall_seconds"`
	JobsDone       int64     `json:"jobs_done"`
	SlotsSimulated int64     `json:"slots_simulated"`
	TraceBytes     int64     `json:"trace_bytes"`

	// Fault-injection accounting (all omitted for fault-free runs, so
	// legacy manifests are byte-identical). Retries counts job attempts
	// beyond the first; BackoffSimNs is the total simulated retry
	// backoff; Failures is the per-session failure provenance after
	// retries were exhausted.
	Retries      int64            `json:"retries,omitempty"`
	BackoffSimNs int64            `json:"backoff_sim_ns,omitempty"`
	Failures     []SessionFailure `json:"failures,omitempty"`

	// Outputs lists the files the run produced, relative to the
	// manifest's own directory.
	Outputs []string `json:"outputs,omitempty"`
}

// SessionFailure is one failed campaign session's provenance as recorded
// in the manifest: which job, how many attempts, and what class of fault
// killed it. It mirrors core.SessionFailure (obs cannot import core).
type SessionFailure struct {
	Key      string `json:"key"`
	Operator string `json:"operator"`
	Session  int    `json:"session"`
	Attempts int    `json:"attempts"`
	Stage    string `json:"stage"`
	Err      string `json:"err,omitempty"`
}

// DigestJSON canonicalizes v through encoding/json (struct field order,
// no insignificant whitespace) and returns hex(SHA-256) of the bytes.
func DigestJSON(v any) (digest string, canonical []byte, err error) {
	b, err := json.Marshal(v)
	if err != nil {
		return "", nil, fmt.Errorf("obs: digesting config: %w", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), b, nil
}

// NewManifest starts a manifest for tool with the given run
// configuration, stamping the toolchain, VCS and host provenance. The
// caller fills the accounting fields when the run completes and writes
// it with [WriteManifest].
func NewManifest(tool string, config any) (*RunManifest, error) {
	digest, canonical, err := DigestJSON(config)
	if err != nil {
		return nil, err
	}
	m := &RunManifest{
		Schema:       ManifestSchema,
		Tool:         tool,
		Config:       canonical,
		ConfigDigest: digest,
		GoVersion:    runtime.Version(),
		OS:           runtime.GOOS,
		Arch:         runtime.GOARCH,
		NumCPU:       runtime.NumCPU(),
		Start:        time.Now().UTC(), //detlint:allow walltime provenance timestamp, excluded from the config digest
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				m.GitRevision = s.Value
			case "vcs.modified":
				m.GitDirty = s.Value == "true"
			}
		}
	}
	return m, nil
}

// Verify recomputes the config digest and reports whether it matches —
// the integrity check a consumer runs before trusting a manifest. The
// config JSON is compacted first, so pretty-printing survives the
// write→read round trip without breaking the digest.
func (m *RunManifest) Verify() error {
	var buf bytes.Buffer
	if err := json.Compact(&buf, m.Config); err != nil {
		return fmt.Errorf("obs: manifest config is not valid JSON: %w", err)
	}
	sum := sha256.Sum256(buf.Bytes())
	if got := hex.EncodeToString(sum[:]); got != m.ConfigDigest {
		return fmt.Errorf("obs: manifest config digest mismatch: recorded %s, recomputed %s", m.ConfigDigest, got)
	}
	return nil
}

// WriteManifest writes the manifest as indented JSON at path. The write
// goes through a temp file + rename so a crashed run never leaves a
// half-written manifest next to its outputs.
func WriteManifest(path string, m *RunManifest) error {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("obs: encoding manifest: %w", err)
	}
	b = append(b, '\n')
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return fmt.Errorf("obs: writing manifest: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("obs: writing manifest: %w", err)
	}
	return nil
}

// ReadManifest parses a manifest written by WriteManifest and verifies
// its config digest.
func ReadManifest(path string) (*RunManifest, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("obs: reading manifest: %w", err)
	}
	var m RunManifest
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("obs: parsing manifest %s: %w", path, err)
	}
	if m.Schema != ManifestSchema {
		return nil, fmt.Errorf("obs: manifest %s has schema %d, want %d", path, m.Schema, ManifestSchema)
	}
	if err := m.Verify(); err != nil {
		return nil, err
	}
	return &m, nil
}
