// Package report renders experiment results as the text tables and series
// the paper's figures show. cmd/figures uses it; EXPERIMENTS.md quotes its
// output.
package report

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"github.com/midband5g/midband/internal/analysis"
	"github.com/midband5g/midband/internal/core"
	"github.com/midband5g/midband/internal/experiments"
	"github.com/midband5g/midband/internal/operators"
	"github.com/midband5g/midband/internal/phy"
)

// Section prints a figure/table header.
func Section(w io.Writer, id, title string) {
	fmt.Fprintf(w, "\n%s — %s\n%s\n", id, title, strings.Repeat("-", len(id)+len(title)+3))
}

// Table1 renders the campaign statistics.
func Table1(w io.Writer, s *core.CampaignStats) {
	Section(w, "Table 1", "Statistics of the data collected across countries")
	countries := keys(s.Countries)
	cities := keys(s.Cities)
	fmt.Fprintf(w, "countries: %s\n", strings.Join(countries, ", "))
	fmt.Fprintf(w, "cities:    %s\n", strings.Join(cities, ", "))
	fmt.Fprintf(w, "operators: %d   sessions: %d   traces: %d\n",
		s.Operators, len(s.Sessions), s.TraceFiles)
	fmt.Fprintf(w, "5G network tests: %.1f minutes   data consumed: %.4f TB\n", s.Minutes, s.DataTB)
	fmt.Fprintf(w, "%-9s %-8s %10s %9s %12s %12s\n", "operator", "country", "DL Mbps", "UL Mbps", "lat(BLER=0)", "lat(BLER>0)")
	for _, sess := range s.Sessions {
		fmt.Fprintf(w, "%-9s %-8s %10.1f %9.1f %9.2f ms %9.2f ms\n",
			sess.Operator, sess.Country, sess.DLMbps, sess.ULMbps,
			float64(sess.LatencyClean)/1e6, float64(sess.LatencyRetx)/1e6)
	}
}

// MultiUE renders the shared-cell contention arm: per-operator aggregate
// goodput, Jain fairness, converged load and the per-UE goodput shares.
func MultiUE(w io.Writer, reports []core.MultiUEReport) {
	if len(reports) == 0 {
		return
	}
	Section(w, "Multi-UE", fmt.Sprintf("Shared-cell contention, %d UEs per cell (%s)",
		reports[0].UEs, reports[0].Policy))
	fmt.Fprintf(w, "%-9s %12s %8s %8s  %s\n", "operator", "cell Mbps", "Jain", "load", "per-UE share")
	for _, r := range reports {
		fmt.Fprintf(w, "%-9s %12.1f %8.3f %8.2f ", r.Operator, r.CellMbps, r.JainIndex, r.LoadEMA)
		for _, u := range r.PerUE {
			fmt.Fprintf(w, " %5.1f%%", 100*u.Share)
		}
		fmt.Fprintln(w)
	}
}

func keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Tables23 renders the recovered network configurations.
func Tables23(w io.Writer, rows []experiments.ConfigRow) {
	Section(w, "Tables 2+3", "Network configurations recovered from signaling")
	fmt.Fprintf(w, "%-9s %-8s %-6s %6s %5s %5s %-4s %-12s %-6s %-6s %s\n",
		"operator", "country", "band", "MHz", "SCS", "N_RB", "dup", "TDD pattern", "layers", "table", "note")
	for _, r := range rows {
		for i, c := range r.Carriers {
			name := r.Operator
			if i > 0 {
				name = "  +CA"
			}
			fmt.Fprintf(w, "%-9s %-8s %-6s %6d %5d %5d %-4s %-12s %6d %6d %s\n",
				name, r.Country, c.Band, c.BandwidthMHz, c.SCSkHz, c.NRB,
				c.Duplex, c.TDDPattern, c.MaxMIMOLayers, c.MCSTable, c.Note)
		}
	}
}

// Sec32 renders the theoretical-vs-observed comparison.
func Sec32(w io.Writer, rows []experiments.Sec32Result) {
	Section(w, "§3.2", "Theoretical max PHY throughput vs observed maximum")
	for _, r := range rows {
		fmt.Fprintf(w, "%-9s %3d MHz  theory %8.2f Mbps  observed max %8.2f Mbps  gap %+5.1f%%\n",
			r.Operator, r.BandwidthMHz, r.TheoreticalMax, r.ObservedMax, r.GapPct)
	}
}

// Fig01 renders the DL throughput bars.
func Fig01(w io.Writer, rows []experiments.Fig01Row) {
	Section(w, "Figure 1", "PHY DL throughput of European and U.S. operators")
	for _, r := range rows {
		if r.Region == "EU" {
			fmt.Fprintf(w, "EU %-9s %8.1f Mbps   %s\n", r.Operator, r.DLMbps, bar(r.DLMbps/25))
		} else {
			fmt.Fprintf(w, "US %-9s %8.2f Gbps   %s\n", r.Operator, r.DLMbps/1000, bar(r.DLMbps/25))
		}
	}
}

// Fig02 renders the Spain CQI≥12 comparison.
func Fig02(w io.Writer, rows []experiments.Fig02Row) {
	Section(w, "Figure 2", "DL throughput with CQI ≥ 12 (Spain case study)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-9s %3d MHz %8.1f Mbps   %s\n", r.Operator, r.BandwidthMHz, r.DLMbps, bar(r.DLMbps/25))
	}
}

// Fig03 renders the RE-allocation CDFs.
func Fig03(w io.Writer, series []experiments.Fig03Series) {
	Section(w, "Figure 3", "Resource elements allocated (CDF)")
	fmt.Fprintf(w, "%-9s %10s %10s %10s\n", "operator", "P25 REs", "median REs", "P75 REs")
	for _, s := range series {
		fmt.Fprintf(w, "%-9s %10.0f %10.0f %10.0f\n",
			s.Operator, s.CDF.Quantile(0.25), s.CDF.Quantile(0.5), s.CDF.Quantile(0.75))
	}
}

// Fig04 renders the max-RB allocations.
func Fig04(w io.Writer, rows []experiments.Fig04Row) {
	Section(w, "Figure 4", "Maximum number of RBs allocated by each operator")
	fmt.Fprintf(w, "%-9s %4s %5s %10s %8s\n", "operator", "MHz", "N_RB", "mean RBs", "P95 RBs")
	for _, r := range rows {
		fmt.Fprintf(w, "%-9s %4d %5d %10.1f %8.1f\n",
			r.Operator, r.BandwidthMHz, r.NRB, r.Alloc.Mean, r.Alloc.P75)
	}
}

// Fig05 renders modulation shares.
func Fig05(w io.Writer, rows []experiments.Fig05Row) {
	Section(w, "Figure 5", "Modulation scheme utilization (Spain)")
	mods := []phy.Modulation{phy.QPSK, phy.QAM16, phy.QAM64, phy.QAM256}
	fmt.Fprintf(w, "%-9s", "operator")
	for _, m := range mods {
		fmt.Fprintf(w, " %8s", m)
	}
	fmt.Fprintln(w)
	for _, r := range rows {
		fmt.Fprintf(w, "%-9s", r.Operator)
		for _, m := range mods {
			fmt.Fprintf(w, " %7.1f%%", 100*r.Shares[m])
		}
		fmt.Fprintln(w)
	}
}

// Fig06 renders MIMO-layer shares.
func Fig06(w io.Writer, rows []experiments.Fig06Row) {
	Section(w, "Figure 6", "MIMO layer utilization (Spain)")
	fmt.Fprintf(w, "%-9s %8s %8s %8s %8s\n", "operator", "1 layer", "2 layers", "3 layers", "4 layers")
	for _, r := range rows {
		fmt.Fprintf(w, "%-9s %7.1f%% %7.1f%% %7.1f%% %7.1f%%\n",
			r.Operator, 100*r.Shares[1], 100*r.Shares[2], 100*r.Shares[3], 100*r.Shares[4])
	}
}

// Fig07 renders the RSRQ route comparison.
func Fig07(w io.Writer, series []experiments.Fig07Series) {
	Section(w, "Figure 7", "RSRQ along the same route (coverage density)")
	for _, s := range series {
		fmt.Fprintf(w, "%-9s (%d sites): mean RSRQ %6.1f dB\n", s.Operator, s.Sites, s.MeanRSRQ)
		for _, p := range s.Points {
			fmt.Fprintf(w, "   %6.0f m  %6.1f dB  %s\n", p.PosM, p.RSRQdB, bar((p.RSRQdB+20)*2))
		}
	}
}

// Fig08 renders the spider-plot factors.
func Fig08(w io.Writer, rows []experiments.Fig08Row) {
	Section(w, "Figure 8", "Factors affecting PHY DL throughput (spider plot)")
	fmt.Fprintf(w, "%-9s %9s %5s %10s %9s %9s %8s\n",
		"operator", "DL Mbps", "MHz", "mean REs", "mean rank", "256QAM", "max mod")
	for _, r := range rows {
		fmt.Fprintf(w, "%-9s %9.1f %5d %10.0f %9.2f %8.1f%% %8s\n",
			r.Operator, r.DLMbps, r.BandwidthMHz, r.MeanREs, r.MeanRank,
			100*r.Mod256Share, r.MaxModulation)
	}
}

// Fig09 renders the EU UL throughputs.
func Fig09(w io.Writer, rows []experiments.Fig09Row) {
	Section(w, "Figure 9", "[Europe] PHY UL throughput with CQI ≥ 12")
	for _, r := range rows {
		fmt.Fprintf(w, "%-9s %3d MHz %7.1f Mbps  %s\n", r.Operator, r.BandwidthMHz, r.ULMbps, bar(r.ULMbps/2))
	}
}

// Fig10 renders the US UL throughputs.
func Fig10(w io.Writer, rows []experiments.Fig10Row) {
	Section(w, "Figure 10", "[U.S.] PHY UL throughput by channel")
	fmt.Fprintf(w, "%-8s %-9s %14s %14s\n", "channel", "operator", "CQI≥12 (Mbps)", "CQI<10 (Mbps)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %-9s %14.1f %14.1f\n", r.Channel, r.Operator, r.GoodULMbps, r.PoorULMbps)
	}
}

// Fig11 renders the latency comparison.
func Fig11(w io.Writer, rows []experiments.Fig11Row) {
	Section(w, "Figure 11", "5G PHY user-plane latency")
	fmt.Fprintf(w, "%-9s %4s %-12s %12s %12s %16s\n",
		"operator", "MHz", "TDD frame", "BLER=0 (ms)", "BLER>0 (ms)", "P5–P95 (ms)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-9s %4d %-12s %12.2f %12.2f %8.2f–%6.2f\n",
			r.Operator, r.BandwidthMHz, r.Pattern, r.CleanMs, r.RetxMs, r.CleanP5Ms, r.CleanP95Ms)
	}
}

// Fig12 renders the variability curves.
func Fig12(w io.Writer, series []experiments.Fig12Series) {
	Section(w, "Figure 12", "Variability of throughput, MCS and MIMO across time scales")
	for _, s := range series {
		fmt.Fprintf(w, "%s: tput V %.1f±%.1f Mbps | MCS V %.2f±%.2f | MIMO V %.3f±%.3f | stabilizes ≈%v\n",
			s.Operator, s.TputMean, s.TputStd, s.MCSMean, s.MCSStd, s.MIMOMean, s.MIMOStd, s.Stabilization)
		fmt.Fprintf(w, "   scale     V(tput)   V(MCS)   V(MIMO)\n")
		for i, p := range s.Tput {
			if i >= len(s.MCS) || i >= len(s.MIMO) {
				break
			}
			fmt.Fprintf(w, "   %8v %8.1f %8.2f %9.3f\n", p.Duration, p.V, s.MCS[i].V, s.MIMO[i].V)
		}
	}
}

// Fig13 renders the time-series summary.
func Fig13(w io.Writer, r *experiments.Fig13Result) {
	Section(w, "Figure 13", "V_Sp time series at 60 ms granularity")
	fmt.Fprintf(w, "samples: %d × %.0f ms\n", len(r.TputMbps), r.StepSec*1000)
	fmt.Fprintf(w, "tput  mean %7.1f Mbps  std %6.1f\n", analysis.Mean(r.TputMbps), analysis.Std(r.TputMbps))
	fmt.Fprintf(w, "MCS   mean %7.2f       std %6.2f   relative V %.4f\n", analysis.Mean(r.MCS), analysis.Std(r.MCS), r.MCSVariability)
	fmt.Fprintf(w, "MIMO  mean %7.2f       std %6.2f\n", analysis.Mean(r.MIMO), analysis.Std(r.MIMO))
	fmt.Fprintf(w, "RBs   mean %7.1f       std %6.1f   relative V %.4f (≪ MCS: RBs contribute less)\n",
		analysis.Mean(r.RBs), analysis.Std(r.RBs), r.RBVariability)
}

// Fig14 renders the location/user experiment.
func Fig14(w io.Writer, cells []experiments.Fig14Cell) {
	Section(w, "Figure 14", "Variability across locations and simultaneous users")
	fmt.Fprintf(w, "%-4s %6s %-12s %9s %9s %8s %8s\n", "loc", "dist", "mode", "DL Mbps", "mean RBs", "V(MCS)", "V(MIMO)")
	for _, c := range cells {
		mode := "simultaneous"
		if c.Sequential {
			mode = "sequential"
		}
		fmt.Fprintf(w, "%-4s %5.0fm %-12s %9.1f %9.1f %8.3f %8.3f\n",
			c.Location, c.DistanceM, mode, c.DLMbps, c.MeanRBs, c.VMCS, c.VMIMO)
	}
}

// Fig15 renders the QoE scatter.
func Fig15(w io.Writer, points []experiments.Fig15Point) {
	Section(w, "Figure 15", "Channel variability → video QoE")
	fmt.Fprintf(w, "%-9s %10s %10s %9s %8s %8s\n", "operator", "tput Mbps", "norm rate", "stall %", "V(MCS)", "V(MIMO)")
	for _, p := range points {
		fmt.Fprintf(w, "%-9s %10.1f %10.2f %9.2f %8.2f %8.3f\n",
			p.Operator, p.AvgTputMbps, p.NormBitrate, p.StallPct, p.VMCS, p.VMIMO)
	}
}

// Fig16 renders the video deep dive.
func Fig16(w io.Writer, r *experiments.Fig16Result) {
	Section(w, "Figure 16", "Throughput variability impact on a V_Sp video session")
	fmt.Fprintf(w, "avg quality = %.2f   stall time = %.2f%%   stalls = %d   chunks = %d\n",
		r.AvgQuality, r.StallPct, len(r.Stalls), len(r.Decisions))
	fmt.Fprintf(w, "first chunk decisions (index, quality, buffer at decision):\n")
	for i, d := range r.Decisions {
		if i >= 12 {
			fmt.Fprintf(w, "   ...\n")
			break
		}
		fmt.Fprintf(w, "   #%02d q=%d buf=%5.1fs tput=%6.1f Mbps\n", d.Index, d.Quality, d.BufferAtDecision, d.ThroughputMbps)
	}
}

// Fig17 renders the chunk-length comparison.
func Fig17(w io.Writer, rows []experiments.Fig17Row) {
	Section(w, "Figure 17", "Impact of video chunk length on QoE")
	fmt.Fprintf(w, "%-9s %8s %10s %9s\n", "operator", "chunk", "norm rate", "stall %")
	for _, r := range rows {
		fmt.Fprintf(w, "%-9s %6.0f s %10.2f %9.2f\n", r.Operator, r.ChunkSec, r.NormBitrate, r.StallPct)
	}
}

// Fig18 renders the mid-band vs mmWave variability comparison.
func Fig18(w io.Writer, series []experiments.Fig18Series) {
	Section(w, "Figure 18", "Mid-band vs mmWave throughput and variability under mobility")
	for _, s := range series {
		fmt.Fprintf(w, "%-8s %-8s %8.0f Mbps  outage %5.1f%%\n", s.Tech, s.Mobility, s.DLMbps, s.OutagePct)
		for _, p := range s.Curve {
			if p.Duration < 8_000_000 { // start at 8 ms
				continue
			}
			fmt.Fprintf(w, "   %8v V=%8.1f (rel %.3f)\n", p.Duration, p.V, p.V/s.DLMbps)
		}
	}
}

// Fig19 renders the mobility QoE comparison.
func Fig19(w io.Writer, points []experiments.Fig19Point) {
	Section(w, "Figure 19", "Mid-band vs mmWave video QoE under mobility")
	fmt.Fprintf(w, "%-8s %-8s %-9s %10s %9s\n", "tech", "mobility", "ladder", "norm rate", "stall %")
	for _, p := range points {
		fmt.Fprintf(w, "%-8s %-8s %-9s %10.2f %9.2f\n", p.Tech, p.Mobility, p.Ladder, p.NormBitrate, p.StallPct)
	}
}

// Fig23 renders the CA benefit.
func Fig23(w io.Writer, rows []experiments.Fig23Row) {
	Section(w, "Figure 23", "Benefits of carrier aggregation (T-Mobile)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-24s %4d MHz %9.1f Mbps  %s\n", r.Combo, r.BandwidthMHz, r.DLMbps, bar(r.DLMbps/30))
	}
}

// Fig24 renders the ABR comparison.
func Fig24(w io.Writer, rows []experiments.Fig24Row) {
	Section(w, "Figure 24", "ABR algorithm comparison")
	fmt.Fprintf(w, "%-11s %-9s %10s %9s\n", "ABR", "operator", "norm rate", "stall %")
	for _, r := range rows {
		fmt.Fprintf(w, "%-11s %-9s %10.2f %9.2f\n", r.ABR, r.Operator, r.NormBitrate, r.StallPct)
	}
}

// Sec7 renders the aggregate mobility comparison.
func Sec7(w io.Writer, rows []experiments.Sec7Row) {
	Section(w, "§7", "Aggregate mid-band vs mmWave under mobility")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s mid-band %7.1f Mbps | mmWave %7.1f Mbps | mid-band %4.1f%% more stable\n",
			r.Mobility, r.MidBandMbps, r.MmWaveMbps, r.StabilityGainPct)
	}
}

// PaperComparison prints paper-reported vs measured values for the headline
// per-operator metrics — the EXPERIMENTS.md source material.
func PaperComparison(w io.Writer, fig1 []experiments.Fig01Row, fig9 []experiments.Fig09Row, fig11 []experiments.Fig11Row) {
	Section(w, "Summary", "Paper-reported vs measured")
	fmt.Fprintf(w, "%-9s %18s %18s %24s\n", "operator", "DL Mbps (paper)", "UL Mbps (paper)", "latency ms (paper)")
	byOp := map[string]*[3][2]float64{}
	rowOf := func(acr string) *[3][2]float64 {
		if byOp[acr] == nil {
			byOp[acr] = &[3][2]float64{}
		}
		return byOp[acr]
	}
	var order []string
	for _, r := range fig1 {
		rowOf(r.Operator)[0][0] = r.DLMbps
		order = append(order, r.Operator)
	}
	for _, r := range fig9 {
		if byOp[r.Operator] == nil {
			order = append(order, r.Operator)
		}
		rowOf(r.Operator)[1][0] = r.ULMbps
	}
	for _, r := range fig11 {
		if byOp[r.Operator] == nil {
			order = append(order, r.Operator)
		}
		rowOf(r.Operator)[2][0] = r.CleanMs
	}
	for _, acr := range order {
		t := operators.Targets[acr]
		v := byOp[acr]
		fmt.Fprintf(w, "%-9s %8.1f (%7.1f) %8.1f (%7.1f) %11.2f (%8.2f)\n",
			acr, v[0][0], t.DLMbps, v[1][0], t.ULMbps, v[2][0], t.LatencyCleanMs)
	}
}

// bar draws a crude horizontal bar for terminal output.
func bar(n float64) string {
	if n < 0 {
		n = 0
	}
	if n > 60 {
		n = 60
	}
	return strings.Repeat("#", int(n))
}

// Extensions renders the beyond-the-paper experiments.

// ExtNSAvsSA renders the NSA/SA uplink comparison.
func ExtNSAvsSA(w io.Writer, rows []experiments.ExtNSAvsSARow) {
	Section(w, "Ext A", "T-Mobile NSA vs SA uplink routing")
	fmt.Fprintf(w, "%-5s %10s %10s %10s\n", "mode", "UL Mbps", "NR UL", "LTE UL")
	for _, r := range rows {
		fmt.Fprintf(w, "%-5s %10.1f %10.1f %10.1f\n", r.Mode, r.ULMbps, r.NRULMbps, r.LTEULMbps)
	}
}

// ExtTDDSweep renders the frame-structure design-space sweep.
func ExtTDDSweep(w io.Writer, rows []experiments.ExtTDDSweepRow) {
	Section(w, "Ext B", "TDD frame-structure sweep (the tradeoff §3.1 defers)")
	fmt.Fprintf(w, "%-12s %8s %9s %9s %12s %12s\n",
		"pattern", "DL duty", "DL Mbps", "UL Mbps", "lat (ms)", "lat+SR (ms)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %8.3f %9.1f %9.1f %12.2f %12.2f\n",
			r.Pattern, r.DLDuty, r.DLMbps, r.ULMbps, r.LatencyMs, r.LatencySRMs)
	}
}

// ExtABR renders the five-algorithm comparison.
func ExtABR(w io.Writer, rows []experiments.ExtABRRow) {
	Section(w, "Ext C", "Extended ABR comparison (incl. L2A and LoLP, footnote 6)")
	fmt.Fprintf(w, "%-11s %10s %9s %9s\n", "ABR", "norm rate", "stall %", "switches")
	for _, r := range rows {
		fmt.Fprintf(w, "%-11s %10.2f %9.2f %9d\n", r.ABR, r.NormBitrate, r.StallPct, r.Switches)
	}
}

// ExtSchedulers renders the multi-UE scheduler comparison.
func ExtSchedulers(w io.Writer, rows []experiments.ExtSchedulerRow) {
	Section(w, "Ext D", "Two-UE cell under different schedulers (Fig. 14 substrate)")
	fmt.Fprintf(w, "%-18s %10s %10s %9s\n", "policy", "near Mbps", "far Mbps", "fairness")
	for _, r := range rows {
		fmt.Fprintf(w, "%-18s %10.1f %10.1f %9.3f\n", r.Policy, r.NearMbps, r.FarMbps, r.JainFairness)
	}
}

// ExtTransport renders the PHY-vs-TCP goodput gap.
func ExtTransport(w io.Writer, rows []experiments.ExtTransportRow) {
	Section(w, "Ext E", "Transport-layer gap: TCP goodput vs PHY capacity")
	fmt.Fprintf(w, "%-9s %10s %12s %11s %10s\n", "operator", "PHY Mbps", "TCP Mbps", "efficiency", "mean RTT")
	for _, r := range rows {
		fmt.Fprintf(w, "%-9s %10.1f %12.1f %10.1f%% %7.1f ms\n",
			r.Operator, r.PHYMbps, r.GoodputMbps, r.EfficiencyPc, r.MeanRTTms)
	}
}

// ExtHandover renders the mobility handover cost.
func ExtHandover(w io.Writer, rows []experiments.ExtHandoverRow) {
	Section(w, "Ext F", "Handover interruption cost under mobility")
	fmt.Fprintf(w, "%-9s %12s %15s %10s\n", "mobility", "with (Mbps)", "without (Mbps)", "cost")
	for _, r := range rows {
		fmt.Fprintf(w, "%-9s %12.1f %15.1f %9.1f%%\n", r.Mobility, r.WithMbps, r.WithoutMbps, r.InterruptionPct)
	}
}

// StreamSummary formats one-pass mergeable aggregates (analysis.Accum +
// analysis.Sketch) in the same five-number layout Summarize uses, so
// streaming scans of arbitrarily large traces print comparably to
// in-memory summaries. Min/max come exact from the accumulator; the
// inner quantiles are sketch estimates within analysis.SketchAlpha
// relative error.
func StreamSummary(a analysis.Accum, s *analysis.Sketch) string {
	if a.N == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d mean=%.2f [%.2f %.2f %.2f %.2f %.2f]",
		a.N, a.Mean(), a.Min, s.Quantile(0.25), s.Quantile(0.5), s.Quantile(0.75), a.Max)
}
