package report

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/midband5g/midband/internal/analysis"
	"github.com/midband5g/midband/internal/config"
	"github.com/midband5g/midband/internal/core"
	"github.com/midband5g/midband/internal/experiments"
	"github.com/midband5g/midband/internal/phy"
	"github.com/midband5g/midband/internal/video"
)

// The report package is pure formatting; these tests render each artifact
// from synthetic rows and check the load-bearing content appears.

func render(f func(w *strings.Builder)) string {
	var b strings.Builder
	f(&b)
	return b.String()
}

func TestTable1Rendering(t *testing.T) {
	s := &core.CampaignStats{
		Countries: map[string]bool{"Spain": true, "USA": true},
		Cities:    map[string]bool{"Madrid": true, "Chicago": true},
		Operators: 2,
		Minutes:   12.5,
		DataTB:    0.004,
		Sessions: []core.SessionReport{{
			Operator: "V_Sp", Country: "Spain", DLMbps: 743.2, ULMbps: 55.1,
			LatencyClean: 2_300_000, LatencyRetx: 2_800_000,
		}},
		TraceFiles: 1,
	}
	out := render(func(w *strings.Builder) { Table1(w, s) })
	for _, want := range []string{"Spain, USA", "V_Sp", "743.2", "12.5 minutes"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 output missing %q:\n%s", want, out)
		}
	}
}

func TestMultiUERendering(t *testing.T) {
	reports := []core.MultiUEReport{{
		Operator: "V_Sp", Policy: "proportional-fair", UEs: 2,
		CellMbps: 426.3, JainIndex: 0.684, LoadEMA: 0.97,
		PerUE: []core.UEShare{
			{UE: 0, Mbps: 39.6, Share: 0.093, ScheduledSlots: 9000},
			{UE: 1, Mbps: 386.7, Share: 0.907, ScheduledSlots: 31000},
		},
	}}
	out := render(func(w *strings.Builder) { MultiUE(w, reports) })
	for _, want := range []string{"proportional-fair", "2 UEs per cell", "V_Sp", "426.3", "0.684", "9.3%", "90.7%"} {
		if !strings.Contains(out, want) {
			t.Errorf("MultiUE output missing %q:\n%s", want, out)
		}
	}
	// An empty arm renders nothing — single-UE campaign output is frozen.
	if got := render(func(w *strings.Builder) { MultiUE(w, nil) }); got != "" {
		t.Errorf("MultiUE(nil) rendered %q, want empty", got)
	}
}

func TestTables23Rendering(t *testing.T) {
	rows := []experiments.ConfigRow{{
		Operator: "Tmb_US", Country: "USA", CA: true,
		Carriers: []config.ChannelConfig{
			{Band: "n41", BandwidthMHz: 100, SCSkHz: 30, NRB: 273, Duplex: "TDD", TDDPattern: "DDDDDDDSUU", MaxMIMOLayers: 4, MCSTable: 2},
			{Band: "n25", BandwidthMHz: 20, SCSkHz: 15, NRB: 51, Duplex: "FDD", Note: "printed-table mismatch"},
		},
	}}
	out := render(func(w *strings.Builder) { Tables23(w, rows) })
	for _, want := range []string{"n41", "DDDDDDDSUU", "+CA", "printed-table mismatch"} {
		if !strings.Contains(out, want) {
			t.Errorf("Tables23 output missing %q", want)
		}
	}
}

func TestFigureRenderings(t *testing.T) {
	var b strings.Builder
	Sec32(&b, []experiments.Sec32Result{{Operator: "V_Sp", BandwidthMHz: 90, TheoreticalMax: 1213.44, ObservedMax: 1100, GapPct: 10.3}})
	Fig01(&b, []experiments.Fig01Row{{Operator: "V_It", Region: "EU", DLMbps: 810}, {Operator: "Vzw_US", Region: "US", DLMbps: 1260}})
	Fig02(&b, []experiments.Fig02Row{{Operator: "V_Sp", BandwidthMHz: 90, DLMbps: 771}})
	Fig03(&b, []experiments.Fig03Series{{Operator: "V_Sp", CDF: analysis.NewCDF([]float64{1, 2, 3})}})
	Fig04(&b, []experiments.Fig04Row{{Operator: "V_Sp", BandwidthMHz: 90, NRB: 245, Alloc: analysis.Summarize([]float64{240, 244})}})
	Fig05(&b, []experiments.Fig05Row{{Operator: "V_Sp", Shares: map[phy.Modulation]float64{phy.QAM64: 0.91, phy.QAM256: 0.08}}})
	Fig06(&b, []experiments.Fig06Row{{Operator: "V_Sp", Shares: map[int]float64{4: 0.87, 3: 0.12}}})
	Fig07(&b, []experiments.Fig07Series{{Operator: "V_Sp", Sites: 3, MeanRSRQ: -11.2, Points: []experiments.Fig07Point{{PosM: 0, RSRQdB: -11}}}})
	Fig08(&b, []experiments.Fig08Row{{Operator: "V_Sp", DLMbps: 743, BandwidthMHz: 90, MeanREs: 33000, MeanRank: 3.8, Mod256Share: 0.08, MaxModulation: phy.QAM256}})
	Fig09(&b, []experiments.Fig09Row{{Operator: "O_Sp90", BandwidthMHz: 90, ULMbps: 95.6}})
	Fig10(&b, []experiments.Fig10Row{{Channel: "LTE_US", Operator: "Tmb_US", GoodULMbps: 72.6, PoorULMbps: 44.8}})
	Fig11(&b, []experiments.Fig11Row{{Operator: "V_Ge", BandwidthMHz: 80, Pattern: "DDDSU", CleanMs: 2.13, RetxMs: 2.20}})
	Fig12(&b, []experiments.Fig12Series{{Operator: "V_It", Tput: []analysis.ScalePoint{{Scale: 1, Duration: time.Millisecond, V: 50}}, MCS: []analysis.ScalePoint{{V: 1}}, MIMO: []analysis.ScalePoint{{V: 0.1}}}})
	Fig13(&b, &experiments.Fig13Result{Operator: "V_Sp", StepSec: 0.06, TputMbps: []float64{700, 720}, MCS: []float64{13, 14}, MIMO: []float64{4, 4}, RBs: []float64{240, 241}, RBVariability: 0.002, MCSVariability: 0.05})
	Fig14(&b, []experiments.Fig14Cell{{Location: "A", DistanceM: 45, Sequential: true, DLMbps: 595, MeanRBs: 172, VMCS: 0.4, VMIMO: 0.05}})
	Fig15(&b, []experiments.Fig15Point{{Operator: "V_It", AvgTputMbps: 652, NormBitrate: 0.9, StallPct: 0.2, VMCS: 2, VMIMO: 0.1}})
	Fig16(&b, &experiments.Fig16Result{Operator: "V_Sp", AvgQuality: 5.41, StallPct: 9.96, Decisions: []video.ChunkRecord{{Index: 0, Quality: 6}}})
	Fig17(&b, []experiments.Fig17Row{{Operator: "V_Ge", ChunkSec: 1, NormBitrate: 0.9, StallPct: 0.4}})
	Fig18(&b, []experiments.Fig18Series{{Tech: "mmwave", Mobility: "driving", DLMbps: 1100, OutagePct: 15, Curve: []analysis.ScalePoint{{Duration: 16 * time.Millisecond, V: 200}}}})
	Fig19(&b, []experiments.Fig19Point{{Tech: "mmwave", Mobility: "driving", Ladder: "1.25Gbps", NormBitrate: 0.6, StallPct: 2.5}})
	Fig23(&b, []experiments.Fig23Row{{Combo: "n41-100+n41-40", BandwidthMHz: 140, DLMbps: 1300}})
	Fig24(&b, []experiments.Fig24Row{{ABR: "bola", Operator: "V_Sp", NormBitrate: 0.9, StallPct: 0.5}})
	Sec7(&b, []experiments.Sec7Row{{Mobility: "walking", MidBandMbps: 1600, MmWaveMbps: 3200, StabilityGainPct: 41.4}})
	out := b.String()

	for _, want := range []string{
		"1213.44", "V_It", "1.26", // Sec32/Fig01 content (1260 Mbps renders as 1.26 Gbps)
		"DDDSU", "5.41", "41.4", "n41-100+n41-40",
		"Figure 12", "Figure 19", "§7",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("combined rendering missing %q", want)
		}
	}
	// Every section got its header.
	for _, id := range []string{"Figure 1", "Figure 2", "Figure 3", "Figure 4", "Figure 5",
		"Figure 6", "Figure 7", "Figure 8", "Figure 9", "Figure 10", "Figure 11",
		"Figure 13", "Figure 14", "Figure 15", "Figure 16", "Figure 17", "Figure 18",
		"Figure 23", "Figure 24"} {
		if !strings.Contains(out, id+" —") {
			t.Errorf("missing section header %q", id)
		}
	}
}

func TestPaperComparison(t *testing.T) {
	out := render(func(w *strings.Builder) {
		PaperComparison(w,
			[]experiments.Fig01Row{{Operator: "V_It", Region: "EU", DLMbps: 805}},
			[]experiments.Fig09Row{{Operator: "V_It", ULMbps: 88.5}},
			[]experiments.Fig11Row{{Operator: "V_It", CleanMs: 7.9}})
	})
	// Paper targets appear next to measured values.
	for _, want := range []string{"V_It", "809.8", "88.0", "6.93"} {
		if !strings.Contains(out, want) {
			t.Errorf("comparison missing %q:\n%s", want, out)
		}
	}
}

func TestCSVExports(t *testing.T) {
	dir := t.TempDir()
	if err := Fig01CSV(dir, []experiments.Fig01Row{{Operator: "V_It", Region: "EU", DLMbps: 809.8}}); err != nil {
		t.Fatal(err)
	}
	if err := Fig02CSV(dir, []experiments.Fig02Row{{Operator: "V_Sp", BandwidthMHz: 90, DLMbps: 771}}); err != nil {
		t.Fatal(err)
	}
	if err := Fig09CSV(dir, []experiments.Fig09Row{{Operator: "O_Sp90", BandwidthMHz: 90, ULMbps: 95.6}}); err != nil {
		t.Fatal(err)
	}
	if err := Fig11CSV(dir, []experiments.Fig11Row{{Operator: "V_Ge", Pattern: "DDDSU", CleanMs: 2.13, RetxMs: 2.2}}); err != nil {
		t.Fatal(err)
	}
	if err := Fig12CSV(dir, []experiments.Fig12Series{{
		Operator: "V_It",
		Tput:     []analysis.ScalePoint{{Duration: time.Millisecond, V: 50}},
		MCS:      []analysis.ScalePoint{{Duration: time.Millisecond, V: 1}},
		MIMO:     []analysis.ScalePoint{{Duration: time.Millisecond, V: 0.1}},
	}}); err != nil {
		t.Fatal(err)
	}
	if err := Fig17CSV(dir, []experiments.Fig17Row{{Operator: "V_Ge", ChunkSec: 1, NormBitrate: 0.9, StallPct: 0.4}}); err != nil {
		t.Fatal(err)
	}
	if err := Fig18CSV(dir, []experiments.Fig18Series{{
		Tech: "mmwave", Mobility: "driving", DLMbps: 1100, OutagePct: 15,
		Curve: []analysis.ScalePoint{{Duration: 16 * time.Millisecond, V: 200}},
	}}); err != nil {
		t.Fatal(err)
	}
	if err := Sec7CSV(dir, []experiments.Sec7Row{{Mobility: "walking", MidBandMbps: 1600, MmWaveMbps: 3200, StabilityGainPct: 41.4}}); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"fig01.csv", "fig02.csv", "fig09.csv", "fig11.csv", "fig12.csv", "fig17.csv", "fig18.csv", "sec7.csv"} {
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		lines := strings.Split(strings.TrimSpace(string(b)), "\n")
		if len(lines) < 2 {
			t.Errorf("%s: no data rows", name)
		}
		if !strings.Contains(lines[0], ",") {
			t.Errorf("%s: header not CSV", name)
		}
	}
}
