package report

import (
	"bytes"
	"strings"
	"testing"

	"github.com/midband5g/midband/internal/analysis"
	"github.com/midband5g/midband/internal/core"
	"github.com/midband5g/midband/internal/scenario"
)

// render returns the Scenario output for a synthetic result.
func renderScenario(res *scenario.Result) string {
	var buf bytes.Buffer
	Scenario(&buf, res)
	return buf.String()
}

// Each app renders its own KPI columns; the header always names the
// spec and its digest so artifacts are attributable.
func TestScenarioRendersPerApp(t *testing.T) {
	base := scenario.Result{Name: "t", Digest: "deadbeef", App: scenario.AppWeb}
	cases := []struct {
		app  string
		fill func(*scenario.Result)
		want []string
	}{
		{scenario.AppWeb, func(r *scenario.Result) {
			r.Reports = []scenario.AppReport{{Operator: "V_Sp", Sessions: 2, Pages: 3.5, PageLoadMeanMs: 120.4, PageLoadP95Ms: 201.9}}
		}, []string{"load mean", "V_Sp", "120.4 ms", "201.9 ms"}},
		{scenario.AppVoIP, func(r *scenario.Result) {
			r.Reports = []scenario.AppReport{{Operator: "V_It", Sessions: 2, LatencyMeanMs: 8.63, LatencyP95Ms: 10.76, MOS: 4.39}}
		}, []string{"MOS", "V_It", "4.39"}},
		{scenario.AppGaming, func(r *scenario.Result) {
			r.Reports = []scenario.AppReport{{Operator: "Vzw_US", Sessions: 2, LatencyMeanMs: 9.1, LateFrac: 0.02, DLMbps: 1228.5}}
		}, []string{"late", "DL Mbps", "2.0%", "1228.5"}},
		{scenario.AppUplink, func(r *scenario.Result) {
			r.Reports = []scenario.AppReport{{Operator: "Tmb_US", Sessions: 2, ULMbps: 60.2, NRULMbps: 0, LTEULMbps: 60.2}}
		}, []string{"NR UL", "LTE UL", "60.2"}},
	}
	for _, c := range cases {
		res := base
		res.App = c.app
		c.fill(&res)
		out := renderScenario(&res)
		for _, want := range append(c.want, "Scenario — t (app "+c.app+")", "spec digest: deadbeef") {
			if !strings.Contains(out, want) {
				t.Errorf("app %s: output missing %q:\n%s", c.app, want, out)
			}
		}
	}
}

func TestScenarioRendersBulk(t *testing.T) {
	res := &scenario.Result{
		Name: "b", Digest: "d", App: scenario.AppBulk,
		Bulk: &core.CampaignStats{
			Countries: map[string]bool{"Spain": true},
			Cities:    map[string]bool{"Madrid": true},
			Operators: 1, Minutes: 0.5, DataTB: 0.001,
		},
	}
	out := renderScenario(res)
	for _, want := range []string{"Scenario — b (app bulk)", "countries: Spain", "Table 1"} {
		if !strings.Contains(out, want) {
			t.Errorf("bulk output missing %q:\n%s", want, out)
		}
	}
}

func TestScenarioRendersVideoGridAndFailures(t *testing.T) {
	res := &scenario.Result{
		Name: "v", Digest: "d", App: scenario.AppVideo,
		Video: &scenario.VideoResult{
			Ladder: "400", ChunkSec: 4, HitRatio: 0.85,
			Cells: []scenario.VideoCell{
				{Operator: "V_Sp", ABR: "bola", Edge: scenario.EdgeOn, Sessions: 2, NormBitrate: 0.6, StallPct: 1.5, QoE: 0.585, EdgeHitPct: 90},
				{Operator: "V_Sp", ABR: "bola", Edge: scenario.EdgeOff, Sessions: 2, NormBitrate: 0.55, StallPct: 2, QoE: 0.53},
			},
			Pairs: []scenario.VideoPair{
				{Operator: "V_Sp", ABR: "bola", QoEOn: 0.585, QoEOff: 0.53, Stats: analysis.Paired{N: 2, MeanDiff: 0.055, T: 1.2}},
			},
		},
		Failures: []core.SessionFailure{{Key: "v/V_Sp/bola/EDGE_ON/1", Attempts: 2, Stage: "abort"}},
	}
	out := renderScenario(res)
	for _, want := range []string{
		"ladder 400, 4 s chunks, edge hit ratio 0.85",
		"EDGE_ON", "EDGE_OFF",
		"paired EDGE_ON − EDGE_OFF",
		"+0.055", "1.20",
		"failed sessions: 1", "stage=abort",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("video output missing %q:\n%s", want, out)
		}
	}

	// A nil grid (all sessions failed) must not panic.
	res.Video = nil
	if out := renderScenario(res); !strings.Contains(out, "failed sessions: 1") {
		t.Errorf("nil-grid output missing failures:\n%s", out)
	}
}
