package report

import (
	"fmt"
	"io"

	"github.com/midband5g/midband/internal/scenario"
)

// Scenario renders one scenario run: a header naming the spec and its
// canonical digest, then the KPI table the app calls for — the
// conformance suite pins this output byte-for-byte per shipped pack.
func Scenario(w io.Writer, res *scenario.Result) {
	Section(w, "Scenario", fmt.Sprintf("%s (app %s)", res.Name, res.App))
	fmt.Fprintf(w, "spec digest: %s\n", res.Digest)

	switch res.App {
	case scenario.AppBulk:
		if res.Bulk != nil {
			Table1(w, res.Bulk)
		}
	case scenario.AppWeb:
		fmt.Fprintf(w, "%-9s %9s %7s %13s %12s\n", "operator", "sessions", "pages", "load mean", "load P95")
		for _, r := range res.Reports {
			fmt.Fprintf(w, "%-9s %9d %7.1f %10.1f ms %9.1f ms\n",
				r.Operator, r.Sessions, r.Pages, r.PageLoadMeanMs, r.PageLoadP95Ms)
		}
	case scenario.AppVoIP:
		fmt.Fprintf(w, "%-9s %9s %12s %12s %6s\n", "operator", "sessions", "lat mean", "lat P95", "MOS")
		for _, r := range res.Reports {
			fmt.Fprintf(w, "%-9s %9d %9.2f ms %9.2f ms %6.2f\n",
				r.Operator, r.Sessions, r.LatencyMeanMs, r.LatencyP95Ms, r.MOS)
		}
	case scenario.AppGaming:
		fmt.Fprintf(w, "%-9s %9s %12s %12s %7s %10s\n", "operator", "sessions", "lat mean", "lat P95", "late", "DL Mbps")
		for _, r := range res.Reports {
			fmt.Fprintf(w, "%-9s %9d %9.2f ms %9.2f ms %6.1f%% %10.1f\n",
				r.Operator, r.Sessions, r.LatencyMeanMs, r.LatencyP95Ms, 100*r.LateFrac, r.DLMbps)
		}
	case scenario.AppUplink:
		fmt.Fprintf(w, "%-9s %9s %9s %9s %9s\n", "operator", "sessions", "UL Mbps", "NR UL", "LTE UL")
		for _, r := range res.Reports {
			fmt.Fprintf(w, "%-9s %9d %9.1f %9.1f %9.1f\n",
				r.Operator, r.Sessions, r.ULMbps, r.NRULMbps, r.LTEULMbps)
		}
	case scenario.AppVideo:
		scenarioVideo(w, res.Video)
	}

	MultiUE(w, res.MultiUE)
	if len(res.Failures) > 0 {
		fmt.Fprintf(w, "failed sessions: %d\n", len(res.Failures))
		for _, f := range res.Failures {
			fmt.Fprintf(w, "  %-28s attempts=%d stage=%s\n", f.Key, f.Attempts, f.Stage)
		}
	}
}

// scenarioVideo renders the MEC grid: per-cell QoE and the paired
// EDGE_ON-vs-EDGE_OFF comparison with its t statistic.
func scenarioVideo(w io.Writer, v *scenario.VideoResult) {
	if v == nil {
		return
	}
	fmt.Fprintf(w, "ladder %s, %g s chunks, edge hit ratio %.2f\n", v.Ladder, v.ChunkSec, v.HitRatio)
	fmt.Fprintf(w, "%-9s %-11s %-9s %9s %10s %8s %6s %6s\n",
		"operator", "ABR", "edge", "sessions", "norm rate", "stall %", "QoE", "hit %")
	for _, c := range v.Cells {
		fmt.Fprintf(w, "%-9s %-11s %-9s %9d %10.3f %8.2f %6.3f %6.1f\n",
			c.Operator, c.ABR, c.Edge, c.Sessions, c.NormBitrate, c.StallPct, c.QoE, c.EdgeHitPct)
	}
	fmt.Fprintf(w, "paired EDGE_ON − EDGE_OFF (shared channel realizations):\n")
	fmt.Fprintf(w, "%-9s %-11s %8s %8s %9s %7s %3s\n", "operator", "ABR", "QoE on", "QoE off", "ΔQoE", "t", "n")
	for _, p := range v.Pairs {
		fmt.Fprintf(w, "%-9s %-11s %8.3f %8.3f %+9.3f %7.2f %3d\n",
			p.Operator, p.ABR, p.QoEOn, p.QoEOff, p.Stats.MeanDiff, p.Stats.T, p.Stats.N)
	}
}
