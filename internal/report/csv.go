package report

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"github.com/midband5g/midband/internal/experiments"
)

// CSV export: machine-readable result files, one per artifact, mirroring
// the processed result files the paper's artifact repository releases.

func writeCSV(dir, name string, header []string, rows [][]string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write(header); err != nil {
		return err
	}
	if err := w.WriteAll(rows); err != nil {
		return err
	}
	w.Flush()
	return w.Error()
}

func f1(v float64) string { return strconv.FormatFloat(v, 'f', 1, 64) }
func f3(v float64) string { return strconv.FormatFloat(v, 'f', 3, 64) }

// Fig01CSV writes fig01.csv.
func Fig01CSV(dir string, rows []experiments.Fig01Row) error {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{r.Operator, r.Region, f1(r.DLMbps)})
	}
	return writeCSV(dir, "fig01.csv", []string{"operator", "region", "dl_mbps"}, out)
}

// Fig02CSV writes fig02.csv.
func Fig02CSV(dir string, rows []experiments.Fig02Row) error {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{r.Operator, strconv.Itoa(r.BandwidthMHz), f1(r.DLMbps)})
	}
	return writeCSV(dir, "fig02.csv", []string{"operator", "bandwidth_mhz", "dl_mbps_cqi12"}, out)
}

// Fig09CSV writes fig09.csv.
func Fig09CSV(dir string, rows []experiments.Fig09Row) error {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{r.Operator, strconv.Itoa(r.BandwidthMHz), f1(r.ULMbps)})
	}
	return writeCSV(dir, "fig09.csv", []string{"operator", "bandwidth_mhz", "ul_mbps_cqi12"}, out)
}

// Fig11CSV writes fig11.csv.
func Fig11CSV(dir string, rows []experiments.Fig11Row) error {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{r.Operator, r.Pattern, f3(r.CleanMs), f3(r.RetxMs)})
	}
	return writeCSV(dir, "fig11.csv", []string{"operator", "tdd_pattern", "latency_ms_bler0", "latency_ms_bler_gt0"}, out)
}

// Fig12CSV writes fig12.csv with one row per (operator, scale).
func Fig12CSV(dir string, series []experiments.Fig12Series) error {
	var out [][]string
	for _, s := range series {
		for i, p := range s.Tput {
			row := []string{
				s.Operator,
				fmt.Sprintf("%g", p.Duration.Seconds()),
				f3(p.V),
			}
			if i < len(s.MCS) {
				row = append(row, f3(s.MCS[i].V))
			} else {
				row = append(row, "")
			}
			if i < len(s.MIMO) {
				row = append(row, f3(s.MIMO[i].V))
			} else {
				row = append(row, "")
			}
			out = append(out, row)
		}
	}
	return writeCSV(dir, "fig12.csv", []string{"operator", "scale_s", "v_tput_mbps", "v_mcs", "v_mimo"}, out)
}

// Fig17CSV writes fig17.csv.
func Fig17CSV(dir string, rows []experiments.Fig17Row) error {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{r.Operator, f1(r.ChunkSec), f3(r.NormBitrate), f3(r.StallPct)})
	}
	return writeCSV(dir, "fig17.csv", []string{"operator", "chunk_s", "norm_bitrate", "stall_pct"}, out)
}

// Fig18CSV writes fig18.csv with one row per (tech, mobility, scale).
func Fig18CSV(dir string, series []experiments.Fig18Series) error {
	var out [][]string
	for _, s := range series {
		for _, p := range s.Curve {
			out = append(out, []string{
				s.Tech, s.Mobility,
				fmt.Sprintf("%g", p.Duration.Seconds()),
				f3(p.V), f1(s.DLMbps), f3(s.OutagePct),
			})
		}
	}
	return writeCSV(dir, "fig18.csv",
		[]string{"tech", "mobility", "scale_s", "v_tput_mbps", "dl_mbps", "outage_pct"}, out)
}

// Sec7CSV writes sec7.csv.
func Sec7CSV(dir string, rows []experiments.Sec7Row) error {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{r.Mobility, f1(r.MidBandMbps), f1(r.MmWaveMbps), f1(r.StabilityGainPct)})
	}
	return writeCSV(dir, "sec7.csv", []string{"mobility", "midband_mbps", "mmwave_mbps", "stability_gain_pct"}, out)
}
