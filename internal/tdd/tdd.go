// Package tdd models NR TDD UL/DL frame patterns such as DDDSU and
// DDDDDDDSUU. Section 4.3 of the paper attributes the user-plane latency
// differences between operators (e.g. Vodafone Italy's 6.93 ms vs Vodafone
// Germany's 2.13 ms) to exactly these patterns, and §4.2 attributes the
// DL/UL throughput asymmetry to their slot split.
package tdd

import (
	"fmt"
	"strings"

	"github.com/midband5g/midband/internal/phy"
)

// SlotType classifies a slot in the TDD pattern.
type SlotType uint8

const (
	// Downlink slots carry only DL symbols.
	Downlink SlotType = iota
	// Uplink slots carry only UL symbols.
	Uplink
	// Special (flexible) slots split their symbols between DL, guard
	// and UL.
	Special
)

func (s SlotType) String() string {
	switch s {
	case Downlink:
		return "D"
	case Uplink:
		return "U"
	case Special:
		return "S"
	default:
		return "?"
	}
}

// SpecialConfig is the symbol split of a special slot. DL+Guard+UL must be
// 14 symbols.
type SpecialConfig struct {
	DLSymbols, GuardSymbols, ULSymbols int
}

// DefaultSpecial is the common 10:2:2 special-slot configuration. With the
// DDDDDDDSUU frame it yields the exact 108/140 DL duty cycle behind the
// paper's §3.2 theoretical throughput numbers.
var DefaultSpecial = SpecialConfig{DLSymbols: 10, GuardSymbols: 2, ULSymbols: 2}

// Validate checks the symbol split sums to one slot.
func (c SpecialConfig) Validate() error {
	if c.DLSymbols < 0 || c.GuardSymbols < 0 || c.ULSymbols < 0 {
		return fmt.Errorf("tdd: negative symbol counts in special config %+v", c)
	}
	if sum := c.DLSymbols + c.GuardSymbols + c.ULSymbols; sum != phy.SymbolsPerSlot {
		return fmt.Errorf("tdd: special slot symbols sum to %d, want %d", sum, phy.SymbolsPerSlot)
	}
	return nil
}

// Pattern is a repeating TDD UL/DL slot pattern.
type Pattern struct {
	slots   []SlotType
	special SpecialConfig
	str     string
}

// Parse builds a Pattern from a string of 'D', 'S' and 'U' characters using
// the given special-slot configuration (DefaultSpecial if zero).
func Parse(s string, special SpecialConfig) (Pattern, error) {
	if s == "" {
		return Pattern{}, fmt.Errorf("tdd: empty pattern")
	}
	if special == (SpecialConfig{}) {
		special = DefaultSpecial
	}
	if err := special.Validate(); err != nil {
		return Pattern{}, err
	}
	slots := make([]SlotType, 0, len(s))
	for i, r := range strings.ToUpper(s) {
		switch r {
		case 'D':
			slots = append(slots, Downlink)
		case 'U':
			slots = append(slots, Uplink)
		case 'S':
			slots = append(slots, Special)
		default:
			return Pattern{}, fmt.Errorf("tdd: invalid slot %q at position %d in %q", r, i, s)
		}
	}
	return Pattern{slots: slots, special: special, str: strings.ToUpper(s)}, nil
}

// MustParse is Parse with a panic on error, for static pattern literals.
func MustParse(s string) Pattern {
	p, err := Parse(s, SpecialConfig{})
	if err != nil {
		panic(err)
	}
	return p
}

// String returns the D/S/U string form.
func (p Pattern) String() string { return p.str }

// Period returns the number of slots in one repetition.
func (p Pattern) Period() int { return len(p.slots) }

// Special returns the special-slot symbol configuration.
func (p Pattern) Special() SpecialConfig { return p.special }

// Slot returns the slot type at absolute slot index i (the pattern repeats).
func (p Pattern) Slot(i int64) SlotType {
	n := int64(len(p.slots))
	idx := i % n
	if idx < 0 {
		idx += n
	}
	return p.slots[idx]
}

// DLSymbols returns the number of symbols usable for downlink data in the
// slot at index i.
func (p Pattern) DLSymbols(i int64) int {
	switch p.Slot(i) {
	case Downlink:
		return phy.SymbolsPerSlot
	case Special:
		return p.special.DLSymbols
	default:
		return 0
	}
}

// ULSymbols returns the number of symbols usable for uplink data in the
// slot at index i.
func (p Pattern) ULSymbols(i int64) int {
	switch p.Slot(i) {
	case Uplink:
		return phy.SymbolsPerSlot
	case Special:
		return p.special.ULSymbols
	default:
		return 0
	}
}

// DLDutyCycle returns the fraction of symbols per period usable for DL.
// For DDDDDDDSUU with the 10:2:2 special slot this is 108/140 ≈ 0.771.
func (p Pattern) DLDutyCycle() float64 {
	total := len(p.slots) * phy.SymbolsPerSlot
	dl := 0
	for i := range p.slots {
		dl += p.DLSymbols(int64(i))
	}
	return float64(dl) / float64(total)
}

// ULDutyCycle returns the fraction of symbols per period usable for UL.
func (p Pattern) ULDutyCycle() float64 {
	total := len(p.slots) * phy.SymbolsPerSlot
	ul := 0
	for i := range p.slots {
		ul += p.ULSymbols(int64(i))
	}
	return float64(ul) / float64(total)
}

// NextUL returns the smallest j ≥ from such that slot j carries UL symbols.
func (p Pattern) NextUL(from int64) int64 {
	for j := from; j < from+int64(len(p.slots)); j++ {
		if p.ULSymbols(j) > 0 {
			return j
		}
	}
	return -1 // unreachable for any valid pattern containing U or S
}

// NextDL returns the smallest j ≥ from such that slot j carries DL symbols.
func (p Pattern) NextDL(from int64) int64 {
	for j := from; j < from+int64(len(p.slots)); j++ {
		if p.DLSymbols(j) > 0 {
			return j
		}
	}
	return -1
}

// MeanULWaitSlots returns the expected number of whole slots a transmission
// ready at a uniformly random slot boundary waits until the next slot with
// full UL symbols (Special-slot UL is ignored here because scheduling
// requests and data PUSCH use the full UL slots in commercial mid-band
// deployments). This drives the user-plane latency asymmetry of Fig. 11.
func (p Pattern) MeanULWaitSlots() float64 {
	n := len(p.slots)
	total := 0
	for i := 0; i < n; i++ {
		for j := 0; ; j++ {
			if p.Slot(int64(i+j)) == Uplink {
				total += j
				break
			}
			if j > 2*n {
				return -1
			}
		}
	}
	return float64(total) / float64(n)
}

// ULSlotsPerPeriod counts the full UL slots in one period.
func (p Pattern) ULSlotsPerPeriod() int {
	c := 0
	for _, s := range p.slots {
		if s == Uplink {
			c++
		}
	}
	return c
}

// DLSlotsPerPeriod counts the full DL slots in one period.
func (p Pattern) DLSlotsPerPeriod() int {
	c := 0
	for _, s := range p.slots {
		if s == Downlink {
			c++
		}
	}
	return c
}
