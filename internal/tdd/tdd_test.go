package tdd

import (
	"math"
	"testing"
	"testing/quick"
)

func TestParse(t *testing.T) {
	p, err := Parse("dddsu", SpecialConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if p.String() != "DDDSU" || p.Period() != 5 {
		t.Errorf("parsed %q period %d", p.String(), p.Period())
	}
	if _, err := Parse("DDXSU", SpecialConfig{}); err == nil {
		t.Error("invalid slot letter should fail")
	}
	if _, err := Parse("", SpecialConfig{}); err == nil {
		t.Error("empty pattern should fail")
	}
	if _, err := Parse("DSU", SpecialConfig{DLSymbols: 9, GuardSymbols: 2, ULSymbols: 2}); err == nil {
		t.Error("special slot not summing to 14 should fail")
	}
}

func TestSlotIndexing(t *testing.T) {
	p := MustParse("DDDSU")
	want := []SlotType{Downlink, Downlink, Downlink, Special, Uplink}
	for i := int64(0); i < 15; i++ {
		if got := p.Slot(i); got != want[i%5] {
			t.Errorf("slot %d = %v, want %v", i, got, want[i%5])
		}
	}
	if p.Slot(-1) != Uplink {
		t.Error("negative indices should wrap")
	}
}

func TestDutyCycles(t *testing.T) {
	// DDDDDDDSUU with 10:2:2 special: DL duty = (7·14+10)/140 = 108/140,
	// the exact factor behind the paper's §3.2 numbers.
	p := MustParse("DDDDDDDSUU")
	if got, want := p.DLDutyCycle(), 108.0/140.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("DDDDDDDSUU DL duty = %g, want %g", got, want)
	}
	if got, want := p.ULDutyCycle(), 30.0/140.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("DDDDDDDSUU UL duty = %g, want %g", got, want)
	}
	q := MustParse("DDDSU")
	if got, want := q.DLDutyCycle(), 52.0/70.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("DDDSU DL duty = %g, want %g", got, want)
	}
	// DDDSU has proportionally more UL opportunities per unit time.
	if q.ULDutyCycle() <= p.ULDutyCycle() {
		t.Error("DDDSU should have higher UL duty than DDDDDDDSUU")
	}
}

func TestSymbolCounts(t *testing.T) {
	p := MustParse("DDDSU")
	if p.DLSymbols(0) != 14 || p.ULSymbols(0) != 0 {
		t.Error("D slot symbols wrong")
	}
	if p.DLSymbols(3) != 10 || p.ULSymbols(3) != 2 {
		t.Error("S slot symbols wrong")
	}
	if p.DLSymbols(4) != 0 || p.ULSymbols(4) != 14 {
		t.Error("U slot symbols wrong")
	}
}

func TestNextULDL(t *testing.T) {
	p := MustParse("DDDDDDDSUU")
	if got := p.NextUL(0); got != 7 { // special slot carries UL symbols
		t.Errorf("NextUL(0) = %d, want 7", got)
	}
	if got := p.NextUL(9); got != 9 {
		t.Errorf("NextUL(9) = %d, want 9", got)
	}
	if got := p.NextUL(10); got != 17 {
		t.Errorf("NextUL(10) = %d, want 17", got)
	}
	if got := p.NextDL(8); got != 10 {
		t.Errorf("NextDL(8) = %d, want 10", got)
	}
}

func TestMeanULWaitOrdering(t *testing.T) {
	// The latency mechanism of §4.3: the bunched DDDDDDDSUU pattern makes
	// a UE wait much longer for a full UL slot than DDDSU does.
	long := MustParse("DDDDDDDSUU").MeanULWaitSlots()
	short := MustParse("DDDSU").MeanULWaitSlots()
	if long <= short {
		t.Errorf("DDDDDDDSUU mean UL wait %g should exceed DDDSU %g", long, short)
	}
	// Exact values: DDDDDDDSUU waits (8+7+6+5+4+3+2+1+0+0)/10 = 3.6 slots;
	// DDDSU waits (4+3+2+1+0)/5 = 2 slots.
	if math.Abs(long-3.6) > 1e-12 {
		t.Errorf("DDDDDDDSUU mean UL wait = %g, want 3.6", long)
	}
	if math.Abs(short-2.0) > 1e-12 {
		t.Errorf("DDDSU mean UL wait = %g, want 2.0", short)
	}
}

func TestSlotCounts(t *testing.T) {
	p := MustParse("DDDDDDDSUU")
	if p.DLSlotsPerPeriod() != 7 || p.ULSlotsPerPeriod() != 2 {
		t.Errorf("DDDDDDDSUU D/U = %d/%d, want 7/2", p.DLSlotsPerPeriod(), p.ULSlotsPerPeriod())
	}
}

func TestDutyCyclesSumProperty(t *testing.T) {
	// DL duty + UL duty + guard fraction = 1 for every valid pattern.
	patterns := []string{"DDDSU", "DDDDDDDSUU", "DSUUU", "DDDDDDDDSU", "DU", "DDSU"}
	f := func(pick uint8) bool {
		p := MustParse(patterns[int(pick)%len(patterns)])
		guardFrac := float64(p.Special().GuardSymbols*countSpecials(p)) /
			float64(p.Period()*14)
		sum := p.DLDutyCycle() + p.ULDutyCycle() + guardFrac
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func countSpecials(p Pattern) int {
	c := 0
	for i := 0; i < p.Period(); i++ {
		if p.Slot(int64(i)) == Special {
			c++
		}
	}
	return c
}

func TestSlotTypeString(t *testing.T) {
	if Downlink.String() != "D" || Uplink.String() != "U" || Special.String() != "S" {
		t.Error("SlotType strings wrong")
	}
	if SlotType(9).String() != "?" {
		t.Error("unknown slot type should print ?")
	}
}
