package bands

import "fmt"

// NR-ARFCN ↔ frequency conversion per TS 38.104 §5.4.2.1. The global
// frequency raster is divided into three ranges with different granularity;
// SIB1's absoluteFrequencyPointA is expressed on this raster (paper
// Appendix 10.1).

type arfcnRange struct {
	freqLowMHz, freqHighMHz float64
	deltaFkHz               float64
	nOffset                 uint32
	freqOffsetMHz           float64
}

var arfcnRanges = []arfcnRange{
	{0, 3000, 5, 0, 0},
	{3000, 24250, 15, 600000, 3000},
	{24250, 100000, 60, 2016667, 24250.08},
}

// FreqToARFCN converts a frequency in MHz to the nearest NR-ARFCN.
func FreqToARFCN(fMHz float64) (uint32, error) {
	for _, r := range arfcnRanges {
		if fMHz >= r.freqLowMHz && fMHz < r.freqHighMHz {
			n := float64(r.nOffset) + (fMHz-r.freqOffsetMHz)*1000/r.deltaFkHz
			return uint32(n + 0.5), nil
		}
	}
	return 0, fmt.Errorf("bands: frequency %g MHz outside NR raster", fMHz)
}

// ARFCNToFreq converts an NR-ARFCN to a frequency in MHz.
func ARFCNToFreq(n uint32) (float64, error) {
	switch {
	case n < 600000:
		return float64(n) * 5 / 1000, nil
	case n < 2016667:
		return 3000 + float64(n-600000)*15/1000, nil
	case n <= 3279165:
		return 24250.08 + float64(n-2016667)*60/1000, nil
	default:
		return 0, fmt.Errorf("bands: ARFCN %d outside NR raster", n)
	}
}
