// Package bands defines the NR operating bands and channel-bandwidth →
// transmission-bandwidth tables (TS 38.101-1/2) that determine N_RB, the
// quantity row 7 of the paper's Tables 2 and 3 reports and that bounds every
// per-slot RB allocation.
package bands

import (
	"fmt"

	"github.com/midband5g/midband/internal/phy"
)

// Duplexing is the duplex mode of a band.
type Duplexing uint8

const (
	// TDD multiplexes DL and UL in time on the same frequency.
	TDD Duplexing = iota
	// FDD uses paired DL and UL channels.
	FDD
)

func (d Duplexing) String() string {
	if d == FDD {
		return "FDD"
	}
	return "TDD"
}

// FrequencyRange is 3GPP FR1 (sub-6) or FR2 (mmWave).
type FrequencyRange uint8

const (
	// FR1 covers 410 MHz – 7.125 GHz (low and mid bands).
	FR1 FrequencyRange = 1
	// FR2 covers 24.25 – 52.6 GHz (mmWave).
	FR2 FrequencyRange = 2
)

// Band describes an NR operating band.
type Band struct {
	// Name is the band designator, e.g. "n78".
	Name string
	// LowMHz and HighMHz bound the (DL) spectrum range.
	LowMHz, HighMHz float64
	// Duplex is the duplexing mode.
	Duplex Duplexing
	// Range is FR1 or FR2.
	Range FrequencyRange
}

// CenterMHz returns the midpoint of the band.
func (b Band) CenterMHz() float64 { return (b.LowMHz + b.HighMHz) / 2 }

// MidBand reports whether the band falls in the 1–6 GHz mid-band range the
// paper studies.
func (b Band) MidBand() bool { return b.LowMHz >= 1000 && b.HighMHz <= 6000 }

// The bands that appear in the study (TS 38.101-1 Table 5.2-1 and 38.101-2).
var (
	// N25 is 1.9 GHz PCS (T-Mobile US FDD mid-band).
	N25 = Band{Name: "n25", LowMHz: 1930, HighMHz: 1995, Duplex: FDD, Range: FR1}
	// N41 is 2.5 GHz BRS/EBS (T-Mobile US TDD mid-band).
	N41 = Band{Name: "n41", LowMHz: 2496, HighMHz: 2690, Duplex: TDD, Range: FR1}
	// N77 is the 3.3–4.2 GHz C-band superset (AT&T, Verizon).
	N77 = Band{Name: "n77", LowMHz: 3300, HighMHz: 4200, Duplex: TDD, Range: FR1}
	// N78 is the 3.3–3.8 GHz sub-segment all European operators use.
	N78 = Band{Name: "n78", LowMHz: 3300, HighMHz: 3800, Duplex: TDD, Range: FR1}
	// N261 is the 28 GHz mmWave band (used for the §7 comparison).
	N261 = Band{Name: "n261", LowMHz: 27500, HighMHz: 28350, Duplex: TDD, Range: FR2}
	// B66 stands in for the 4G LTE AWS anchor carrier of NSA deployments.
	B66 = Band{Name: "b66", LowMHz: 2110, HighMHz: 2200, Duplex: FDD, Range: FR1}
)

// ByName returns a band by its designator.
func ByName(name string) (Band, error) {
	for _, b := range []Band{N25, N41, N77, N78, N261, B66} {
		if b.Name == name {
			return b, nil
		}
	}
	return Band{}, fmt.Errorf("bands: unknown band %q", name)
}

// nrbFR1 is TS 38.101-1 Table 5.3.2-1: maximum transmission bandwidth
// configuration N_RB by channel bandwidth (MHz) and SCS, for FR1.
var nrbFR1 = map[phy.Numerology]map[int]int{
	phy.Mu0: {5: 25, 10: 52, 15: 79, 20: 106, 25: 133, 30: 160, 40: 216, 50: 270},
	phy.Mu1: {5: 11, 10: 24, 15: 38, 20: 51, 25: 65, 30: 78, 40: 106, 50: 133,
		60: 162, 70: 189, 80: 217, 90: 245, 100: 273},
	phy.Mu2: {10: 11, 15: 18, 20: 24, 25: 31, 30: 38, 40: 51, 50: 65,
		60: 79, 70: 93, 80: 107, 90: 121, 100: 135},
}

// nrbFR2 is TS 38.101-2 Table 5.3.2-1 for FR2.
var nrbFR2 = map[phy.Numerology]map[int]int{
	phy.Mu2: {50: 66, 100: 132, 200: 264},
	phy.Mu3: {50: 32, 100: 66, 200: 132, 400: 264},
}

// MaxNRB returns N_RB for a channel of the given bandwidth (MHz) and SCS in
// the given frequency range. This is the lookup the UE performs when it
// decodes carrierBandwidth from SIB1 (paper Appendix 10.1).
func MaxNRB(fr FrequencyRange, mu phy.Numerology, bandwidthMHz int) (int, error) {
	table := nrbFR1
	if fr == FR2 {
		table = nrbFR2
	}
	byBW, ok := table[mu]
	if !ok {
		return 0, fmt.Errorf("bands: SCS %d kHz not defined for FR%d", mu.SCSkHz(), fr)
	}
	nrb, ok := byBW[bandwidthMHz]
	if !ok {
		return 0, fmt.Errorf("bands: %d MHz not a valid FR%d channel bandwidth at %d kHz SCS",
			bandwidthMHz, fr, mu.SCSkHz())
	}
	return nrb, nil
}

// BandwidthForNRB performs the inverse lookup: the channel bandwidth whose
// transmission bandwidth configuration is nrb.
func BandwidthForNRB(fr FrequencyRange, mu phy.Numerology, nrb int) (int, error) {
	table := nrbFR1
	if fr == FR2 {
		table = nrbFR2
	}
	for bw, n := range table[mu] {
		if n == nrb {
			return bw, nil
		}
	}
	return 0, fmt.Errorf("bands: no FR%d channel at %d kHz SCS with N_RB=%d", fr, mu.SCSkHz(), nrb)
}
