package bands

import (
	"math"
	"testing"
)

// FuzzFreqToARFCN checks the NR raster conversion over the whole float64
// input space: in-raster frequencies must convert, round-trip back within
// the range's raster granularity, and re-convert to a stable ARFCN;
// out-of-raster inputs (negative, ≥100 GHz, NaN, ±Inf) must error, never
// panic or return garbage.
//
// `go test` exercises the seed corpus;
// `go test -fuzz=FuzzFreqToARFCN ./internal/bands` explores further.
func FuzzFreqToARFCN(f *testing.F) {
	// Paper frequencies (mid-band n78/n41), range boundaries, and the
	// raster discontinuity at 24250 MHz.
	for _, mhz := range []float64{
		0, 703.5, 1842.5, 2545, 2999.9975, 3000, 3500, 3700, 4800,
		24249.99, 24249.9975, 24250, 24250.08, 39000, 99999.97,
		-1, 100000, math.NaN(), math.Inf(1), math.Inf(-1), 24250.05,
	} {
		f.Add(mhz)
	}
	f.Fuzz(func(t *testing.T, mhz float64) {
		n, err := FreqToARFCN(mhz)
		if math.IsNaN(mhz) || mhz < 0 || mhz >= 100000 {
			if err == nil {
				t.Fatalf("FreqToARFCN(%g) = %d, want out-of-raster error", mhz, n)
			}
			return
		}
		if err != nil {
			t.Fatalf("FreqToARFCN(%g): %v", mhz, err)
		}
		back, err := ARFCNToFreq(n)
		if err != nil {
			t.Fatalf("ARFCNToFreq(%d) from %g MHz: %v", n, mhz, err)
		}
		// Round-trip tolerance: half a raster step of the input's range
		// (nearest-point rounding), except across the 15 kHz → 60 kHz
		// discontinuity: TS 38.104 leaves no raster point in
		// (24249.99, 24250.08), so inputs rounding up to n=2016667 come
		// back up to 0.0825 MHz away.
		tol := 0.0025 // ΔF 5 kHz, half-step
		switch {
		case mhz >= 24250.08:
			tol = 0.03 // ΔF 60 kHz
		case mhz >= 24249.99:
			tol = 0.0825 // discontinuity neighborhood
		case mhz >= 3000:
			tol = 0.0075 // ΔF 15 kHz
		}
		if diff := math.Abs(back - mhz); diff > tol+1e-9 {
			t.Fatalf("round trip %g MHz → ARFCN %d → %g MHz: off by %g > %g", mhz, n, back, diff, tol)
		}
		// A raster point must be a fixed point of the conversion.
		n2, err := FreqToARFCN(back)
		if err != nil {
			t.Fatalf("FreqToARFCN(%g) (raster point of %d): %v", back, n, err)
		}
		if n2 != n {
			t.Fatalf("raster point drifted: %g MHz → %d, its frequency %g MHz → %d", mhz, n, back, n2)
		}
	})
}
