package bands

import (
	"math"
	"testing"
	"testing/quick"
)

func TestARFCNKnownPoints(t *testing.T) {
	cases := []struct {
		fMHz  float64
		arfcn uint32
	}{
		{3000, 600000},      // range-2 origin
		{3550, 636667},      // mid n78: 600000 + 550000/15 ≈ 636667
		{2496, 499200},      // n41 low edge: 2496000/5
		{24250.08, 2016667}, // FR2 origin
		{27500, 2070832},    // n261 low edge (nearest raster point)
	}
	for _, c := range cases {
		got, err := FreqToARFCN(c.fMHz)
		if err != nil {
			t.Fatalf("FreqToARFCN(%g): %v", c.fMHz, err)
		}
		if got != c.arfcn {
			t.Errorf("FreqToARFCN(%g) = %d, want %d", c.fMHz, got, c.arfcn)
		}
	}
}

func TestARFCNRoundTripProperty(t *testing.T) {
	f := func(raw uint16) bool {
		// Sample frequencies across all three ranges.
		fMHz := 600 + math.Mod(float64(raw)*0.5, 27000) // 600 .. 27600 MHz
		n, err := FreqToARFCN(fMHz)
		if err != nil {
			return false
		}
		back, err := ARFCNToFreq(n)
		if err != nil {
			return false
		}
		// Round trip is accurate to the raster granularity (≤ 60 kHz).
		return math.Abs(back-fMHz) <= 0.060
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestARFCNErrors(t *testing.T) {
	if _, err := FreqToARFCN(150000); err == nil {
		t.Error("150 GHz should be rejected")
	}
	if _, err := ARFCNToFreq(4000000); err == nil {
		t.Error("ARFCN 4000000 should be rejected")
	}
}
