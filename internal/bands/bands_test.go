package bands

import (
	"testing"
	"testing/quick"

	"github.com/midband5g/midband/internal/phy"
)

func TestPaperNRBValues(t *testing.T) {
	// Row 7 of Tables 2 and 3: every (bandwidth → N_RB) pair the paper
	// reports for 30 kHz SCS mid-band channels.
	cases := []struct{ bw, nrb int }{
		{100, 273}, {90, 245}, {80, 217}, {60, 162}, {40, 106},
		{20, 51}, {5, 11},
	}
	for _, c := range cases {
		got, err := MaxNRB(FR1, phy.Mu1, c.bw)
		if err != nil {
			t.Fatalf("MaxNRB(%d MHz): %v", c.bw, err)
		}
		if got != c.nrb {
			t.Errorf("MaxNRB(%d MHz @30kHz) = %d, want %d", c.bw, got, c.nrb)
		}
	}
}

func TestMaxNRBErrors(t *testing.T) {
	if _, err := MaxNRB(FR1, phy.Mu1, 35); err == nil {
		t.Error("35 MHz should not be a valid channel bandwidth")
	}
	if _, err := MaxNRB(FR1, phy.Mu3, 100); err == nil {
		t.Error("120 kHz SCS is not defined for FR1")
	}
	if _, err := MaxNRB(FR2, phy.Mu3, 100); err != nil {
		t.Errorf("FR2 100 MHz @120kHz should be valid: %v", err)
	}
}

func TestBandwidthForNRBInverse(t *testing.T) {
	f := func(pick uint8) bool {
		bws := []int{5, 10, 15, 20, 25, 30, 40, 50, 60, 70, 80, 90, 100}
		bw := bws[int(pick)%len(bws)]
		nrb, err := MaxNRB(FR1, phy.Mu1, bw)
		if err != nil {
			return false
		}
		back, err := BandwidthForNRB(FR1, phy.Mu1, nrb)
		return err == nil && back == bw
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if _, err := BandwidthForNRB(FR1, phy.Mu1, 999); err == nil {
		t.Error("N_RB=999 should not resolve to a bandwidth")
	}
}

func TestBandProperties(t *testing.T) {
	if !N78.MidBand() || !N41.MidBand() || !N25.MidBand() {
		t.Error("n78, n41, n25 are mid-band")
	}
	if N261.MidBand() {
		t.Error("n261 is not mid-band")
	}
	if N78.Duplex != TDD || N25.Duplex != FDD {
		t.Error("duplex modes wrong")
	}
	if N78.Range != FR1 || N261.Range != FR2 {
		t.Error("frequency ranges wrong")
	}
	// n78 is a sub-segment of n77 (the C-band relationship in §3.1).
	if N78.LowMHz < N77.LowMHz || N78.HighMHz > N77.HighMHz {
		t.Error("n78 should be contained in n77")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"n25", "n41", "n77", "n78", "n261", "b66"} {
		b, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if b.Name != name {
			t.Errorf("ByName(%q).Name = %q", name, b.Name)
		}
	}
	if _, err := ByName("n999"); err == nil {
		t.Error("unknown band should fail")
	}
}

func TestDuplexingString(t *testing.T) {
	if TDD.String() != "TDD" || FDD.String() != "FDD" {
		t.Error("Duplexing.String wrong")
	}
	if N78.CenterMHz() != 3550 {
		t.Errorf("n78 center = %g, want 3550", N78.CenterMHz())
	}
}
