package video

import (
	"fmt"
	"time"

	"github.com/midband5g/midband/internal/net5g"
)

// SessionConfig parameterizes one streaming session (the paper's §6 setup:
// a DASH client pulling chunked VoD over the 5G link).
type SessionConfig struct {
	// Ladder is the quality ladder.
	Ladder Ladder
	// ChunkLength is the segment duration (4 s in §6.1, 1 s in §6.2).
	ChunkLength time.Duration
	// VideoDuration is the total media length.
	VideoDuration time.Duration
	// ABR is the adaptation algorithm.
	ABR ABR
	// MaxBufferSec pauses downloads when the buffer exceeds it
	// (default 30 s, dash.js's bufferTimeAtTopQuality — it must exceed
	// BOLA's top-quality threshold or the cap pins quality below top).
	MaxBufferSec float64
	// ThroughputWindow is the harmonic-mean window in chunks (default 4).
	ThroughputWindow int
	// Share is the UE's share of cell resources (default 1).
	Share float64
	// Edge, when non-nil, charges every chunk request an MEC-aware
	// round trip before its first byte (see EdgeConfig). Nil keeps the
	// player byte-identical to the pre-edge-caching one.
	Edge *EdgeConfig
}

func (c SessionConfig) withDefaults() SessionConfig {
	if c.MaxBufferSec == 0 {
		c.MaxBufferSec = 30
	}
	if c.ThroughputWindow == 0 {
		c.ThroughputWindow = 4
	}
	if c.Share == 0 {
		c.Share = 1
	}
	return c
}

// Validate checks the configuration.
func (c SessionConfig) Validate() error {
	if err := c.Ladder.Validate(); err != nil {
		return err
	}
	if c.ChunkLength <= 0 {
		return fmt.Errorf("video: chunk length %v invalid", c.ChunkLength)
	}
	if c.VideoDuration < c.ChunkLength {
		return fmt.Errorf("video: duration %v shorter than one chunk", c.VideoDuration)
	}
	if c.ABR == nil {
		return fmt.Errorf("video: no ABR algorithm")
	}
	// The buffer-cap gate waits for room for a whole chunk; a cap
	// smaller than one chunk would wait forever on an empty buffer.
	if c.MaxBufferSec < c.ChunkLength.Seconds() {
		return fmt.Errorf("video: buffer cap %gs smaller than one chunk (%v)", c.MaxBufferSec, c.ChunkLength)
	}
	if c.Edge != nil {
		if err := c.Edge.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// ChunkRecord logs one chunk's lifecycle — the raw material of Figure 16's
// decision-timeline insets.
type ChunkRecord struct {
	// Index and Quality identify the chunk and the ABR's choice.
	Index, Quality int
	// RequestTime and ArriveTime bound the download.
	RequestTime, ArriveTime time.Duration
	// ThroughputMbps is the measured download rate.
	ThroughputMbps float64
	// BufferAtDecision is the buffer level when the ABR decided.
	BufferAtDecision float64
	// EdgeHit reports whether the chunk came from the MEC edge cache
	// (always false without SessionConfig.Edge).
	EdgeHit bool
}

// StallEvent is a rebuffering interval.
type StallEvent struct {
	Start    time.Duration
	Duration time.Duration
}

// Result carries the QoE metrics of §6.
type Result struct {
	// Chunks are the per-chunk records.
	Chunks []ChunkRecord
	// Stalls are the rebuffering events.
	Stalls []StallEvent
	// PlayTime is the media played; StallTime the total rebuffering.
	PlayTime, StallTime time.Duration
	// AvgQuality is the mean quality level (the paper's "Avg Quality =
	// 5.41" in Fig. 16).
	AvgQuality float64
	// AvgNormBitrate is the mean of bitrate/top-bitrate (the normalized
	// bitrate axis of Figs. 15, 17, 19).
	AvgNormBitrate float64
	// Switches counts quality changes between consecutive chunks.
	Switches int
	// BufferTrace samples (time, bufferSec) every 100 ms.
	BufferTrace [][2]float64
	// ThroughputTrace samples the link DL goodput in Mbps every 100 ms
	// while the session runs.
	ThroughputTrace []float64
}

// StallPct returns stall time as a percentage of wall-clock session time.
func (r *Result) StallPct() float64 {
	total := r.PlayTime + r.StallTime
	if total == 0 {
		return 0
	}
	return 100 * float64(r.StallTime) / float64(total)
}

// Play streams a session over the link and returns its QoE result.
func Play(link *net5g.Link, cfg SessionConfig) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	chunkSec := cfg.ChunkLength.Seconds()
	numChunks := int(cfg.VideoDuration / cfg.ChunkLength)
	res := &Result{}

	var (
		buffer     float64 // seconds of media buffered
		playing    bool
		recent     []float64 // recent chunk throughputs
		lastQ      = -1
		stallStart time.Duration
		inStall    bool
		qualitySum float64
		bitrateSum float64

		sampleAcc   float64 // bits accumulated since last 100 ms sample
		sampleSlots int
	)
	slotSec := link.SlotDuration().Seconds()
	samplePeriod := int(0.1/slotSec + 0.5)
	if samplePeriod < 1 {
		samplePeriod = 1
	}

	// step advances the link one slot with the given demand, maintaining
	// playback, stalls and traces.
	step := func(download bool) int {
		r := link.Step(net5g.Demand{DL: download, Share: cfg.Share})
		if playing {
			if buffer > 0 {
				buffer -= slotSec
				res.PlayTime += link.SlotDuration()
				if buffer < 0 {
					buffer = 0
				}
				if inStall {
					res.Stalls = append(res.Stalls, StallEvent{Start: stallStart, Duration: link.Now() - stallStart})
					res.StallTime += link.Now() - stallStart
					inStall = false
				}
			} else if !inStall {
				inStall = true
				stallStart = link.Now()
			}
		}
		sampleAcc += float64(r.DLBits)
		sampleSlots++
		if sampleSlots == samplePeriod {
			mbps := sampleAcc / (float64(samplePeriod) * slotSec) / 1e6
			res.ThroughputTrace = append(res.ThroughputTrace, mbps)
			res.BufferTrace = append(res.BufferTrace, [2]float64{link.Now().Seconds(), buffer})
			sampleAcc, sampleSlots = 0, 0
		}
		return r.DLBits
	}

	harmonic := func() float64 {
		if len(recent) == 0 {
			return 0
		}
		inv := 0.0
		for _, t := range recent {
			if t <= 0 {
				continue
			}
			inv += 1 / t
		}
		if inv == 0 {
			return 0
		}
		return float64(len(recent)) / inv
	}

	for i := 0; i < numChunks; i++ {
		// Buffer cap: idle until there is room for the next chunk.
		for buffer+chunkSec > cfg.MaxBufferSec {
			step(false)
		}

		st := State{
			BufferSec:          buffer,
			LastThroughputMbps: last(recent),
			HarmonicMeanMbps:   harmonic(),
			LastQuality:        lastQ,
			ChunkIndex:         i,
			ChunkLengthSec:     chunkSec,
			Ladder:             cfg.Ladder,
		}
		q := cfg.ABR.Decide(st)
		if q < 0 {
			q = 0
		}
		if q >= len(cfg.Ladder) {
			q = len(cfg.Ladder) - 1
		}
		if lastQ >= 0 && q != lastQ {
			res.Switches++
		}

		rec := ChunkRecord{
			Index: i, Quality: q,
			RequestTime:      link.Now(),
			BufferAtDecision: buffer,
		}
		if cfg.Edge != nil {
			// The request round trip: no payload arrives while the GET
			// travels to the edge cache (hit) or the origin CDN (miss).
			// Playback continues, so shallow buffers drain into stalls.
			rec.EdgeHit = cfg.Edge.Hit(i)
			for wait := cfg.Edge.RTT(i); wait > 0; wait -= link.SlotDuration() {
				step(false)
			}
		}
		chunkBits := cfg.Ladder[q] * 1e6 * chunkSec
		got := 0.0
		for got < chunkBits {
			got += float64(step(true))
		}
		rec.ArriveTime = link.Now()
		dl := (rec.ArriveTime - rec.RequestTime).Seconds()
		if dl > 0 {
			rec.ThroughputMbps = chunkBits / dl / 1e6
		}
		res.Chunks = append(res.Chunks, rec)
		recent = append(recent, rec.ThroughputMbps)
		if len(recent) > cfg.ThroughputWindow {
			recent = recent[1:]
		}
		buffer += chunkSec
		playing = true
		lastQ = q
		qualitySum += float64(q)
		bitrateSum += cfg.Ladder[q]
	}

	// Drain the buffer to finish playback.
	for buffer > 0 {
		step(false)
	}
	if inStall {
		res.StallTime += link.Now() - stallStart
		res.Stalls = append(res.Stalls, StallEvent{Start: stallStart, Duration: link.Now() - stallStart})
	}
	if numChunks > 0 {
		res.AvgQuality = qualitySum / float64(numChunks)
		res.AvgNormBitrate = bitrateSum / float64(numChunks) / cfg.Ladder.Top()
	}
	return res, nil
}

func last(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return xs[len(xs)-1]
}
