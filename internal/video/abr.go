// Package video implements the §6 DASH video-streaming evaluation: a
// chunked VoD player driven by the simulated 5G link, the BOLA,
// throughput-based and dynamic (hybrid) ABR algorithms, and the QoE metrics
// the paper reports (normalized bitrate, stall-time percentage, buffer
// evolution).
package video

import (
	"fmt"
	"math"
)

// Ladder is a quality ladder: ascending bitrates in Mbps, one per quality
// level (levels are indexed 0..len-1 as in the paper).
type Ladder []float64

// Paper ladders (§6 and §7): chunk bandwidth requirements.
var (
	// Ladder400 is the ≈400 Mbps-average ladder of §6:
	// 30/60/75/200/400/600/750 Mbps for levels 0–6.
	Ladder400 = Ladder{30, 60, 75, 200, 400, 600, 750}
	// LadderMmWave is the scaled-up §7 ladder with ≈1.25 Gbps average:
	// 400/800/1200/1500/2000/2400/2800 Mbps.
	LadderMmWave = Ladder{400, 800, 1200, 1500, 2000, 2400, 2800}
)

// Validate checks the ladder is ascending and positive.
func (l Ladder) Validate() error {
	if len(l) < 2 {
		return fmt.Errorf("video: ladder needs ≥ 2 levels")
	}
	prev := 0.0
	for i, b := range l {
		if b <= prev {
			return fmt.Errorf("video: ladder not ascending at level %d", i)
		}
		prev = b
	}
	return nil
}

// Top returns the highest bitrate.
func (l Ladder) Top() float64 { return l[len(l)-1] }

// State is what an ABR algorithm sees when deciding the next chunk's
// quality.
type State struct {
	// BufferSec is the client buffer level in seconds of media.
	BufferSec float64
	// LastThroughputMbps is the throughput measured on the previous
	// chunk download (0 before the first chunk).
	LastThroughputMbps float64
	// HarmonicMeanMbps is the harmonic mean over the recent window.
	HarmonicMeanMbps float64
	// LastQuality is the previous chunk's level (-1 before the first).
	LastQuality int
	// ChunkIndex is the next chunk's index.
	ChunkIndex int
	// ChunkLengthSec is the segment duration.
	ChunkLengthSec float64
	// Ladder is the quality ladder.
	Ladder Ladder
}

// ABR decides the quality level of the next chunk.
type ABR interface {
	Name() string
	Decide(s State) int
}

// BOLA is the Lyapunov buffer-based algorithm of Spiteri, Urgaonkar and
// Sitaraman (ToN'20), in its BOLA-BASIC form as deployed in dash.js: pick
// the level maximizing (V·(u_m + gp) − Q)/S_m, where u_m are log utilities,
// Q the buffer level and S_m the chunk size.
type BOLA struct {
	// MinBufferSec and TargetBufferSec control the V and gp parameters
	// (dash.js uses 10 s and a stable target around 12 s).
	MinBufferSec, TargetBufferSec float64
	// GammaP overrides the derived gp when non-zero (ablation knob).
	GammaP float64
}

// NewBOLA returns BOLA with dash.js defaults (10 s minimum buffer; target
// derived per ladder size).
func NewBOLA() *BOLA { return &BOLA{MinBufferSec: 10} }

// Name implements ABR.
func (b *BOLA) Name() string { return "bola" }

// params derives (Vp, gp) exactly as dash.js's BolaRule does: utilities are
// u_m = ln(b_m/b_0) + 1 (so the lowest level has utility 1), the buffer
// target is MinBuffer + 2 s per ladder level, and
//
//	gp = (u_max − 1) / (target/minBuffer − 1),   Vp = minBuffer / gp.
//
// This makes the lowest level win at the minimum buffer and the highest at
// the target.
func (b *BOLA) params(l Ladder) (vp, gp float64) {
	minBuf := b.MinBufferSec
	if minBuf <= 0 {
		minBuf = 10
	}
	target := b.TargetBufferSec
	if target <= minBuf {
		target = minBuf + 2*float64(len(l))
	}
	uMax := math.Log(l.Top()/l[0]) + 1
	gp = b.GammaP
	if gp == 0 {
		gp = (uMax - 1) / (target/minBuf - 1)
	}
	vp = minBuf / gp
	return vp, gp
}

// Decide implements ABR. Below the minimum buffer it applies dash.js's
// startup/low-buffer rule: the buffer objective alone would crawl up from
// the lowest level, so the decision is floored by what the measured
// throughput safely sustains. This is what lets short-chunk sessions
// recover quality quickly after a stall (§6.2).
func (b *BOLA) Decide(s State) int {
	vp, gp := b.params(s.Ladder)
	best, bestScore := 0, math.Inf(-1)
	for m, bitrate := range s.Ladder {
		u := math.Log(bitrate/s.Ladder[0]) + 1
		size := bitrate * s.ChunkLengthSec // ∝ chunk bits
		score := (vp*(u+gp) - s.BufferSec) / size
		if score > bestScore {
			best, bestScore = m, score
		}
	}
	minBuf := b.MinBufferSec
	if minBuf <= 0 {
		minBuf = 10
	}
	if s.BufferSec < minBuf && s.HarmonicMeanMbps > 0 {
		// Conservative safety: during a sag the harmonic window still
		// carries pre-sag samples, so the floor must undershoot.
		budget := 0.5 * s.HarmonicMeanMbps
		tput := 0
		for m, bitrate := range s.Ladder {
			if bitrate <= budget {
				tput = m
			}
		}
		if tput > best {
			best = tput
		}
	}
	return best
}

// ThroughputABR is the classic rate-based algorithm ("probe and adapt",
// Li et al.): pick the highest level whose bitrate fits within a safety
// fraction of the harmonic-mean throughput.
type ThroughputABR struct {
	// Safety is the headroom factor (default 0.9).
	Safety float64
}

// Name implements ABR.
func (t *ThroughputABR) Name() string { return "throughput" }

// Decide implements ABR.
func (t *ThroughputABR) Decide(s State) int {
	safety := t.Safety
	if safety == 0 {
		safety = 0.9
	}
	est := s.HarmonicMeanMbps
	if est == 0 {
		return 0 // conservative start
	}
	budget := est * safety
	best := 0
	for m, bitrate := range s.Ladder {
		if bitrate <= budget {
			best = m
		}
	}
	return best
}

// DynamicABR is dash.js's "abrDynamic" hybrid: throughput-based while the
// buffer is shallow, BOLA once it is comfortably filled (with hysteresis).
type DynamicABR struct {
	bola    *BOLA
	tput    *ThroughputABR
	useBola bool
	// SwitchOnSec / SwitchOffSec are the buffer hysteresis bounds
	// (dash.js uses 10 s on, 10 s off with a trend; we use 10/8).
	SwitchOnSec, SwitchOffSec float64
}

// NewDynamic builds the hybrid with default parameters.
func NewDynamic() *DynamicABR {
	return &DynamicABR{bola: NewBOLA(), tput: &ThroughputABR{}, SwitchOnSec: 10, SwitchOffSec: 8}
}

// Name implements ABR.
func (d *DynamicABR) Name() string { return "dynamic" }

// Decide implements ABR.
func (d *DynamicABR) Decide(s State) int {
	on, off := d.SwitchOnSec, d.SwitchOffSec
	if on == 0 {
		on, off = 10, 8
	}
	if d.useBola {
		if s.BufferSec < off {
			d.useBola = false
		}
	} else if s.BufferSec >= on {
		d.useBola = true
	}
	if d.useBola {
		return d.bola.Decide(s)
	}
	return d.tput.Decide(s)
}
