package video

import "math"

// This file implements simplified versions of the two additional ABR
// algorithms the paper's footnote 6 mentions evaluating ("We have also used
// L2A and LoLP, the results of which are not included in this paper"):
// an online-learning controller in the spirit of Learn2Adapt (Karagkioules
// et al., MMSys'20) and a low-latency heuristic in the spirit of LoL+
// (Bentaleb et al., IEEE TMM'22). Both are faithful to the papers'
// decision structure rather than line-by-line ports.

// L2A is an online-learning ABR: it keeps multiplicative weights over the
// ladder levels and updates them after every chunk with a loss combining
// throughput overshoot and buffer risk. Decisions follow the
// highest-weight level, which makes the controller regret-bounded against
// the best fixed level in hindsight.
type L2A struct {
	// LearningRate scales the weight updates (default 0.3).
	LearningRate float64
	// BufferTargetSec is the level the loss steers toward (default 12).
	BufferTargetSec float64

	weights []float64
}

// NewL2A returns an L2A controller with defaults.
func NewL2A() *L2A { return &L2A{LearningRate: 0.3, BufferTargetSec: 12} }

// Name implements ABR.
func (l *L2A) Name() string { return "l2a" }

// Decide implements ABR.
func (l *L2A) Decide(s State) int {
	n := len(s.Ladder)
	if len(l.weights) != n {
		l.weights = make([]float64, n)
		for i := range l.weights {
			l.weights[i] = 1
		}
	}
	lr := l.LearningRate
	if lr == 0 {
		lr = 0.3
	}
	target := l.BufferTargetSec
	if target == 0 {
		target = 12
	}

	// Update weights from the previous observation.
	if s.HarmonicMeanMbps > 0 {
		for m, bitrate := range s.Ladder {
			// Loss: overshooting the measured rate risks stalls; deep
			// undershoot wastes utility. Buffer below target amplifies
			// the overshoot term.
			over := (bitrate - s.HarmonicMeanMbps) / s.Ladder.Top()
			loss := 0.0
			if over > 0 {
				risk := 1 + math.Max(0, target-s.BufferSec)/target
				loss = over * risk
			} else {
				loss = -0.3 * over // mild penalty for being too timid
			}
			l.weights[m] *= math.Exp(-lr * loss)
		}
		// Normalize to avoid underflow.
		sum := 0.0
		for _, w := range l.weights {
			sum += w
		}
		if sum > 0 {
			for i := range l.weights {
				l.weights[i] /= sum
			}
		}
	}
	best, bestW := 0, -1.0
	for m, w := range l.weights {
		if w > bestW {
			best, bestW = m, w
		}
	}
	// Hard safety: never pick a level the buffer clearly cannot absorb.
	if s.HarmonicMeanMbps > 0 && s.BufferSec < s.ChunkLengthSec {
		for best > 0 && s.Ladder[best] > s.HarmonicMeanMbps {
			best--
		}
	}
	return best
}

// LoLP is a low-latency heuristic: it scores every level by a weighted sum
// of expected download margin, buffer safety and switching cost, and picks
// the best — the structure of LoL+'s "QoE-aware selector" without the
// playback-speed control (our player does not vary playback rate).
type LoLP struct {
	// WeightThroughput, WeightBuffer, WeightSwitch scale the three score
	// terms (defaults 1, 1, 0.3).
	WeightThroughput, WeightBuffer, WeightSwitch float64
}

// NewLoLP returns a LoLP controller with defaults.
func NewLoLP() *LoLP { return &LoLP{WeightThroughput: 1, WeightBuffer: 1, WeightSwitch: 0.3} }

// Name implements ABR.
func (l *LoLP) Name() string { return "lolp" }

// Decide implements ABR.
func (l *LoLP) Decide(s State) int {
	wt, wb, ws := l.WeightThroughput, l.WeightBuffer, l.WeightSwitch
	if wt == 0 && wb == 0 && ws == 0 {
		wt, wb, ws = 1, 1, 0.3
	}
	est := s.HarmonicMeanMbps
	if est == 0 {
		return 0
	}
	best, bestScore := 0, math.Inf(-1)
	for m, bitrate := range s.Ladder {
		// Utility: log of the bitrate (diminishing returns).
		utility := math.Log(bitrate / s.Ladder[0])
		// Throughput margin: negative when the level overshoots the
		// estimate (scaled by how long a chunk takes to drain).
		margin := (est - bitrate) / est
		// Buffer safety: expected download time vs buffer runway.
		dlTime := bitrate * s.ChunkLengthSec / est
		safety := (s.BufferSec - dlTime) / math.Max(s.ChunkLengthSec, 1)
		if safety > 2 {
			safety = 2
		}
		// Switching cost.
		sw := 0.0
		if s.LastQuality >= 0 {
			sw = math.Abs(float64(m - s.LastQuality))
		}
		score := utility + wt*margin + wb*safety - ws*sw
		if margin < 0 && s.BufferSec < s.ChunkLengthSec*2 {
			score -= 10 // hard guard near empty buffer
		}
		if score > bestScore {
			best, bestScore = m, score
		}
	}
	return best
}
