package video

import (
	"testing"
	"time"
)

func TestEdgeConfigValidate(t *testing.T) {
	good := EdgeConfig{HitRatio: 0.8, OriginRTT: 40 * time.Millisecond, EdgeRTT: 4 * time.Millisecond}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []EdgeConfig{
		{HitRatio: -0.1},
		{HitRatio: 1.1},
		{HitRatio: 0.5, OriginRTT: -time.Millisecond},
		{HitRatio: 0.5, EdgeRTT: -time.Millisecond},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d (%+v) should fail validation", i, cfg)
		}
	}
}

func TestEdgeHitPattern(t *testing.T) {
	// Boundary ratios are exact: 0 never hits, 1 always hits.
	never := EdgeConfig{HitRatio: 0, Seed: 7}
	always := EdgeConfig{HitRatio: 1, Seed: 7}
	for i := 0; i < 200; i++ {
		if never.Hit(i) {
			t.Fatalf("ratio 0 hit chunk %d", i)
		}
		if !always.Hit(i) {
			t.Fatalf("ratio 1 missed chunk %d", i)
		}
	}
	// The pattern is a pure function of (seed, index): two configs with
	// the same seed agree chunk by chunk, a different seed diverges
	// somewhere, and the empirical rate tracks the ratio.
	a := EdgeConfig{HitRatio: 0.8, Seed: 11}
	b := EdgeConfig{HitRatio: 0.8, Seed: 11}
	c := EdgeConfig{HitRatio: 0.8, Seed: 12}
	hits, diverged := 0, false
	for i := 0; i < 1000; i++ {
		if a.Hit(i) != b.Hit(i) {
			t.Fatalf("same seed disagrees at chunk %d", i)
		}
		if a.Hit(i) != c.Hit(i) {
			diverged = true
		}
		if a.Hit(i) {
			hits++
		}
	}
	if !diverged {
		t.Error("different seeds produced identical hit patterns")
	}
	if hits < 700 || hits > 900 {
		t.Errorf("hit rate %d/1000 far from the 0.8 ratio", hits)
	}
}

func TestEdgeRTTSelection(t *testing.T) {
	e := EdgeConfig{HitRatio: 0.5, OriginRTT: 40 * time.Millisecond, EdgeRTT: 4 * time.Millisecond, Seed: 3}
	for i := 0; i < 100; i++ {
		want := e.OriginRTT
		if e.Hit(i) {
			want = e.EdgeRTT
		}
		if got := e.RTT(i); got != want {
			t.Fatalf("chunk %d RTT = %v, want %v", i, got, want)
		}
	}
}

// pinABR always picks a fixed rung: it removes the ABR feedback loop so
// edge-arm comparisons see the pure transport effect. (An adaptive ABR
// spends the faster cache on higher quality, so wall-clock comparisons
// against it are not monotonic.)
type pinABR int

func (p pinABR) Name() string       { return "pin" }
func (p pinABR) Decide(s State) int { return int(p) }

// A full cache at a near-zero RTT must never make a session slower than
// fetching everything from the origin over the same channel realization
// — the paired-arm property the scenario MEC grid relies on. Quality is
// pinned so both arms move identical bytes and differ only in per-chunk
// request RTT.
func TestPlayEdgeCacheNeverSlower(t *testing.T) {
	cfg := SessionConfig{
		Ladder: Ladder400, ChunkLength: 4 * time.Second,
		VideoDuration: 48 * time.Second, ABR: pinABR(2),
	}
	on := cfg
	on.Edge = &EdgeConfig{HitRatio: 1, OriginRTT: 40 * time.Millisecond, EdgeRTT: time.Millisecond, Seed: 5}
	off := cfg
	off.Edge = &EdgeConfig{HitRatio: 0, OriginRTT: 40 * time.Millisecond, EdgeRTT: time.Millisecond, Seed: 5}

	resOn, err := Play(testLink(t, "V_Sp", 48), on)
	if err != nil {
		t.Fatal(err)
	}
	resOff, err := Play(testLink(t, "V_Sp", 48), off)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range resOn.Chunks {
		if !c.EdgeHit {
			t.Fatalf("ratio-1 chunk %d not marked EdgeHit", i)
		}
	}
	for i, c := range resOff.Chunks {
		if c.EdgeHit {
			t.Fatalf("ratio-0 chunk %d marked EdgeHit", i)
		}
	}
	onEnd := resOn.Chunks[len(resOn.Chunks)-1].ArriveTime
	offEnd := resOff.Chunks[len(resOff.Chunks)-1].ArriveTime
	if onEnd > offEnd {
		t.Errorf("edge-cached session finished at %v, later than origin-only %v", onEnd, offEnd)
	}
}

// Without an Edge config no chunk is marked as a cache hit — the legacy
// player path.
func TestPlayNoEdgeNoHits(t *testing.T) {
	res, err := Play(testLink(t, "V_It", 49), SessionConfig{
		Ladder: Ladder400, ChunkLength: 4 * time.Second,
		VideoDuration: 24 * time.Second, ABR: NewBOLA(),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range res.Chunks {
		if c.EdgeHit {
			t.Fatalf("chunk %d marked EdgeHit without an Edge config", i)
		}
	}
}
