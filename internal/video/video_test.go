package video

import (
	"testing"
	"time"

	"github.com/midband5g/midband/internal/net5g"
	"github.com/midband5g/midband/internal/operators"
)

func TestLadderValidate(t *testing.T) {
	if err := Ladder400.Validate(); err != nil {
		t.Error(err)
	}
	if err := LadderMmWave.Validate(); err != nil {
		t.Error(err)
	}
	if err := (Ladder{100}).Validate(); err == nil {
		t.Error("single-level ladder should fail")
	}
	if err := (Ladder{100, 50}).Validate(); err == nil {
		t.Error("descending ladder should fail")
	}
	if Ladder400.Top() != 750 {
		t.Errorf("Ladder400 top = %g", Ladder400.Top())
	}
}

func TestBOLABufferMonotone(t *testing.T) {
	// BOLA picks higher quality at higher buffer levels.
	b := NewBOLA()
	prev := -1
	for _, buf := range []float64{0, 4, 8, 12, 16, 20, 24, 30} {
		q := b.Decide(State{BufferSec: buf, ChunkLengthSec: 4, Ladder: Ladder400})
		if q < prev {
			t.Errorf("BOLA quality decreased (%d→%d) as buffer grew to %.0f", prev, q, buf)
		}
		prev = q
	}
	// Empty buffer → lowest level; deep buffer → top level.
	if q := b.Decide(State{BufferSec: 0, ChunkLengthSec: 4, Ladder: Ladder400}); q != 0 {
		t.Errorf("BOLA at empty buffer = %d, want 0", q)
	}
	if q := b.Decide(State{BufferSec: 30, ChunkLengthSec: 4, Ladder: Ladder400}); q != len(Ladder400)-1 {
		t.Errorf("BOLA at deep buffer = %d, want top", q)
	}
}

func TestBOLAChunkLengthIndependence(t *testing.T) {
	// The BOLA objective normalizes by chunk size, so the decision at a
	// given buffer level does not depend on segment length.
	b := NewBOLA()
	for _, buf := range []float64{2, 6, 12, 18} {
		q4 := b.Decide(State{BufferSec: buf, ChunkLengthSec: 4, Ladder: Ladder400})
		q1 := b.Decide(State{BufferSec: buf, ChunkLengthSec: 1, Ladder: Ladder400})
		if q4 != q1 {
			t.Errorf("BOLA at buffer %.0f: 4s→%d, 1s→%d", buf, q4, q1)
		}
	}
}

func TestThroughputABR(t *testing.T) {
	a := &ThroughputABR{}
	if q := a.Decide(State{Ladder: Ladder400}); q != 0 {
		t.Errorf("no estimate should give level 0, got %d", q)
	}
	// 500 Mbps estimate with 0.9 safety → budget 450 → level 4 (400).
	if q := a.Decide(State{HarmonicMeanMbps: 500, Ladder: Ladder400}); q != 4 {
		t.Errorf("500 Mbps → level %d, want 4", q)
	}
	// Even huge estimates cap at the top level.
	if q := a.Decide(State{HarmonicMeanMbps: 1e6, Ladder: Ladder400}); q != 6 {
		t.Errorf("huge estimate → level %d, want 6", q)
	}
	// Below the lowest level stays at 0.
	if q := a.Decide(State{HarmonicMeanMbps: 10, Ladder: Ladder400}); q != 0 {
		t.Errorf("10 Mbps → level %d, want 0", q)
	}
}

func TestDynamicSwitchesController(t *testing.T) {
	d := NewDynamic()
	// Shallow buffer: throughput-based (estimate 500 → level 4).
	q := d.Decide(State{BufferSec: 2, HarmonicMeanMbps: 500, ChunkLengthSec: 4, Ladder: Ladder400})
	if q != 4 {
		t.Errorf("shallow buffer should be throughput-driven: got %d", q)
	}
	// Deep buffer: BOLA takes over (top at ≥ target regardless of estimate).
	q = d.Decide(State{BufferSec: 30, HarmonicMeanMbps: 100, ChunkLengthSec: 4, Ladder: Ladder400})
	if q != 6 {
		t.Errorf("deep buffer should be BOLA-driven: got %d", q)
	}
	// Hysteresis: dropping to 9 s keeps BOLA; below 8 s reverts.
	d.Decide(State{BufferSec: 9, HarmonicMeanMbps: 500, ChunkLengthSec: 4, Ladder: Ladder400})
	if !d.useBola {
		t.Error("9 s buffer should stay on BOLA")
	}
	d.Decide(State{BufferSec: 5, HarmonicMeanMbps: 500, ChunkLengthSec: 4, Ladder: Ladder400})
	if d.useBola {
		t.Error("5 s buffer should revert to throughput")
	}
}

func testLink(t *testing.T, acr string, seed int64) *net5g.Link {
	t.Helper()
	op, err := operators.ByAcronym(acr)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := op.LinkConfig(operators.Stationary(seed))
	if err != nil {
		t.Fatal(err)
	}
	l, err := net5g.NewLink(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestPlayValidation(t *testing.T) {
	l := testLink(t, "V_Sp", 41)
	bad := []SessionConfig{
		{},
		{Ladder: Ladder400, ChunkLength: 4 * time.Second, VideoDuration: time.Second, ABR: NewBOLA()},
		{Ladder: Ladder400, ChunkLength: 4 * time.Second, VideoDuration: time.Minute},
		{Ladder: Ladder{5, 1}, ChunkLength: 4 * time.Second, VideoDuration: time.Minute, ABR: NewBOLA()},
	}
	for i, cfg := range bad {
		if _, err := Play(l, cfg); err == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
}

func TestPlaySessionQoE(t *testing.T) {
	l := testLink(t, "V_Sp", 42)
	res, err := Play(l, SessionConfig{
		Ladder:        Ladder400,
		ChunkLength:   4 * time.Second,
		VideoDuration: 120 * time.Second,
		ABR:           NewBOLA(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Chunks) != 30 {
		t.Fatalf("chunks = %d, want 30", len(res.Chunks))
	}
	// V_Sp averages ≈ 760 Mbps; the §6 ladder tops at 750. A healthy
	// session plays high quality with modest stalls.
	if res.AvgQuality < 3.5 {
		t.Errorf("avg quality = %.2f, suspiciously low for V_Sp", res.AvgQuality)
	}
	if res.AvgNormBitrate <= 0 || res.AvgNormBitrate > 1 {
		t.Errorf("norm bitrate = %.2f out of range", res.AvgNormBitrate)
	}
	if res.StallPct() < 0 || res.StallPct() > 60 {
		t.Errorf("stall%% = %.1f implausible", res.StallPct())
	}
	if res.PlayTime < 110*time.Second {
		t.Errorf("play time = %v, want ≈ 120 s", res.PlayTime)
	}
	if len(res.BufferTrace) == 0 || len(res.ThroughputTrace) == 0 {
		t.Error("traces missing")
	}
	// Chunk records are causally ordered.
	for i, c := range res.Chunks {
		if c.ArriveTime < c.RequestTime {
			t.Fatalf("chunk %d arrives before request", i)
		}
		if i > 0 && c.RequestTime < res.Chunks[i-1].RequestTime {
			t.Fatalf("chunk %d requested before its predecessor", i)
		}
		if c.ThroughputMbps < 0 {
			t.Fatalf("chunk %d negative throughput", i)
		}
	}
}

func TestPlayWeakChannelDegrades(t *testing.T) {
	// A weak channel (AT&T ≈ 360 Mbps) forces lower quality than V_Sp.
	strong, err := Play(testLink(t, "V_Sp", 43), SessionConfig{
		Ladder: Ladder400, ChunkLength: 4 * time.Second,
		VideoDuration: 60 * time.Second, ABR: NewBOLA(),
	})
	if err != nil {
		t.Fatal(err)
	}
	weak, err := Play(testLink(t, "Att_US", 43), SessionConfig{
		Ladder: Ladder400, ChunkLength: 4 * time.Second,
		VideoDuration: 60 * time.Second, ABR: NewBOLA(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if weak.AvgNormBitrate >= strong.AvgNormBitrate {
		t.Errorf("weak channel bitrate %.2f should trail strong %.2f",
			weak.AvgNormBitrate, strong.AvgNormBitrate)
	}
}

func TestPlayBufferCapRespected(t *testing.T) {
	l := testLink(t, "V_It", 44)
	res, err := Play(l, SessionConfig{
		Ladder: Ladder400, ChunkLength: time.Second,
		VideoDuration: 40 * time.Second, ABR: NewBOLA(), MaxBufferSec: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.BufferTrace {
		if p[1] > 10.5 {
			t.Fatalf("buffer %.1f exceeds 10 s cap", p[1])
		}
	}
}

func TestStallAccounting(t *testing.T) {
	l := testLink(t, "O_Sp100", 45)
	res, err := Play(l, SessionConfig{
		Ladder: Ladder400, ChunkLength: 4 * time.Second,
		VideoDuration: 60 * time.Second, ABR: NewBOLA(),
	})
	if err != nil {
		t.Fatal(err)
	}
	var total time.Duration
	for _, s := range res.Stalls {
		if s.Duration <= 0 {
			t.Fatal("stall with non-positive duration")
		}
		total += s.Duration
	}
	if total != res.StallTime {
		t.Errorf("stall events sum %v ≠ StallTime %v", total, res.StallTime)
	}
}

func TestPlayTimeEqualsMediaDuration(t *testing.T) {
	// Property: every second of media is eventually played — PlayTime
	// equals the video duration regardless of stalls.
	l := testLink(t, "O_Sp100", 46)
	const media = 48 * time.Second
	res, err := Play(l, SessionConfig{
		Ladder: Ladder400, ChunkLength: 4 * time.Second,
		VideoDuration: media, ABR: NewBOLA(),
	})
	if err != nil {
		t.Fatal(err)
	}
	diff := res.PlayTime - media
	if diff < -time.Second || diff > time.Second {
		t.Errorf("play time %v should equal media duration %v", res.PlayTime, media)
	}
}

func TestSwitchCounting(t *testing.T) {
	l := testLink(t, "V_Sp", 47)
	res, err := Play(l, SessionConfig{
		Ladder: Ladder400, ChunkLength: time.Second,
		VideoDuration: 30 * time.Second, ABR: NewBOLA(),
	})
	if err != nil {
		t.Fatal(err)
	}
	manual := 0
	for i := 1; i < len(res.Chunks); i++ {
		if res.Chunks[i].Quality != res.Chunks[i-1].Quality {
			manual++
		}
	}
	if manual != res.Switches {
		t.Errorf("Switches = %d, recount = %d", res.Switches, manual)
	}
}
