package video

import (
	"testing"
	"time"
)

// Every ABR must be able to recover from the post-stall degenerate
// state: zero buffer and zero (or collapsed) measured throughput. The
// safe decision is the lowest rung — anything higher digs the stall
// deeper — and once throughput returns the quality must climb again.
func TestABRZeroBandwidthStallRecovery(t *testing.T) {
	abrs := []ABR{NewBOLA(), &ThroughputABR{}, NewDynamic()}
	for _, a := range abrs {
		drained := State{
			BufferSec: 0, LastThroughputMbps: 0, HarmonicMeanMbps: 0,
			LastQuality: len(Ladder400) - 1, ChunkIndex: 10,
			ChunkLengthSec: 4, Ladder: Ladder400,
		}
		if q := a.Decide(drained); q != 0 {
			t.Errorf("%s at zero bandwidth and empty buffer picked level %d, want 0", a.Name(), q)
		}
		// Throughput back, buffer refilled: quality must leave the floor.
		recovered := drained
		recovered.BufferSec = 20
		recovered.LastThroughputMbps = 500
		recovered.HarmonicMeanMbps = 500
		recovered.LastQuality = 0
		if q := a.Decide(recovered); q == 0 {
			t.Errorf("%s stuck at level 0 after throughput recovered", a.Name())
		}
	}
}

// A channel whose capacity sits below the lowest ladder rung stalls
// perpetually but must still terminate: every chunk downloads slower
// than it plays, the ABR pins the floor, and the accounting stays
// consistent. A 5 Gbps floor is above every simulated operator's
// capacity, so any link is in that regime.
func TestPlayBandwidthBelowLowestRung(t *testing.T) {
	res, err := Play(testLink(t, "Att_US", 50), SessionConfig{
		Ladder: Ladder{5000, 10000}, ChunkLength: 4 * time.Second,
		VideoDuration: 24 * time.Second, ABR: NewDynamic(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.StallPct() <= 0 {
		t.Error("under-provisioned session reported no stalls")
	}
	for i, c := range res.Chunks {
		if c.Quality != 0 {
			t.Errorf("chunk %d at level %d; an under-provisioned session must pin the floor", i, c.Quality)
		}
	}
	diff := res.PlayTime - 24*time.Second
	if diff < -time.Second || diff > time.Second {
		t.Errorf("play time %v, want ≈ 24 s — all media must eventually play", res.PlayTime)
	}
}

// A single-segment session is the smallest legal Play: one decision
// with no history, one chunk, no switches, and QoE metrics computed
// from that lone sample.
func TestPlaySingleSegmentSession(t *testing.T) {
	res, err := Play(testLink(t, "V_Sp", 51), SessionConfig{
		Ladder: Ladder400, ChunkLength: 4 * time.Second,
		VideoDuration: 4 * time.Second, ABR: NewBOLA(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Chunks) != 1 {
		t.Fatalf("chunks = %d, want 1", len(res.Chunks))
	}
	if res.Switches != 0 {
		t.Errorf("switches = %d on a single chunk", res.Switches)
	}
	c := res.Chunks[0]
	if c.Quality != 0 {
		t.Errorf("first chunk at level %d; with no throughput history the ABR must start at 0", c.Quality)
	}
	if res.AvgQuality != float64(c.Quality) {
		t.Errorf("avg quality %.2f ≠ the lone chunk's %d", res.AvgQuality, c.Quality)
	}
	if want := Ladder400[c.Quality] / Ladder400.Top(); res.AvgNormBitrate != want {
		t.Errorf("norm bitrate %.3f, want %.3f", res.AvgNormBitrate, want)
	}
	diff := res.PlayTime - 4*time.Second
	if diff < -time.Second || diff > time.Second {
		t.Errorf("play time %v, want ≈ one chunk", res.PlayTime)
	}
}

// The buffer cap's boundary: a cap of exactly one chunk is the
// smallest that can make progress (download a chunk, drain it fully,
// repeat), while a cap below one chunk would idle forever waiting for
// room and must be rejected up front.
func TestPlayBufferCapBoundary(t *testing.T) {
	base := SessionConfig{
		Ladder: Ladder400, ChunkLength: 4 * time.Second,
		VideoDuration: 12 * time.Second, ABR: NewBOLA(),
	}

	exact := base
	exact.MaxBufferSec = 4
	res, err := Play(testLink(t, "V_It", 52), exact)
	if err != nil {
		t.Fatalf("cap == one chunk must be playable: %v", err)
	}
	if len(res.Chunks) != 3 {
		t.Fatalf("chunks = %d, want 3", len(res.Chunks))
	}
	for _, p := range res.BufferTrace {
		if p[1] > 4.5 {
			t.Fatalf("buffer %.1f exceeds the 4 s cap", p[1])
		}
	}

	below := base
	below.MaxBufferSec = 3.9
	if _, err := Play(testLink(t, "V_It", 53), below); err == nil {
		t.Fatal("cap below one chunk accepted; Play would never terminate")
	}
}
