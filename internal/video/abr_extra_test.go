package video

import (
	"testing"
	"time"

	"github.com/midband5g/midband/internal/net5g"
	"github.com/midband5g/midband/internal/operators"
)

func newTestLink(cfg net5g.LinkConfig) (*net5g.Link, error) {
	return net5g.NewLink(cfg)
}

func TestL2ABasics(t *testing.T) {
	l := NewL2A()
	if l.Name() != "l2a" {
		t.Error("name wrong")
	}
	// Cold start with no estimate: conservative.
	if q := l.Decide(State{Ladder: Ladder400, ChunkLengthSec: 4}); q != 0 {
		t.Errorf("cold start quality = %d, want 0", q)
	}
	// Feed a steady 500 Mbps estimate with healthy buffer: the learner
	// converges to a level at or below the estimate.
	var q int
	for i := 0; i < 50; i++ {
		q = l.Decide(State{
			BufferSec: 20, HarmonicMeanMbps: 500,
			LastQuality: q, ChunkIndex: i, ChunkLengthSec: 4, Ladder: Ladder400,
		})
	}
	if Ladder400[q] > 500 {
		t.Errorf("L2A converged to %d (%.0f Mbps) above the 500 Mbps estimate", q, Ladder400[q])
	}
	if q == 0 {
		t.Error("L2A stayed at the lowest level despite a strong channel")
	}
	// Collapse of the channel pulls it down.
	for i := 0; i < 50; i++ {
		q = l.Decide(State{
			BufferSec: 2, HarmonicMeanMbps: 50,
			LastQuality: q, ChunkIndex: 50 + i, ChunkLengthSec: 4, Ladder: Ladder400,
		})
	}
	if Ladder400[q] > 60 {
		t.Errorf("L2A should retreat on a collapsed channel, at %.0f Mbps", Ladder400[q])
	}
}

func TestLoLPBasics(t *testing.T) {
	l := NewLoLP()
	if l.Name() != "lolp" {
		t.Error("name wrong")
	}
	if q := l.Decide(State{Ladder: Ladder400, ChunkLengthSec: 1}); q != 0 {
		t.Errorf("no estimate should yield level 0, got %d", q)
	}
	// Strong channel, deep buffer: picks a high level.
	q := l.Decide(State{
		BufferSec: 20, HarmonicMeanMbps: 800, LastQuality: 5,
		ChunkLengthSec: 1, Ladder: Ladder400,
	})
	if q < 4 {
		t.Errorf("strong channel should pick a high level, got %d", q)
	}
	// Near-empty buffer with an overshooting estimate: hard guard.
	q = l.Decide(State{
		BufferSec: 0.5, HarmonicMeanMbps: 100, LastQuality: 6,
		ChunkLengthSec: 1, Ladder: Ladder400,
	})
	if Ladder400[q] > 100 {
		t.Errorf("LoLP must not overshoot near an empty buffer, got %.0f Mbps", Ladder400[q])
	}
	// Switching cost keeps decisions near the previous level when scores
	// are close.
	qFrom0 := (&LoLP{WeightSwitch: 5}).Decide(State{
		BufferSec: 10, HarmonicMeanMbps: 400, LastQuality: 0,
		ChunkLengthSec: 1, Ladder: Ladder400,
	})
	qFrom4 := (&LoLP{WeightSwitch: 5}).Decide(State{
		BufferSec: 10, HarmonicMeanMbps: 400, LastQuality: 4,
		ChunkLengthSec: 1, Ladder: Ladder400,
	})
	if qFrom0 > qFrom4 {
		t.Errorf("heavy switch cost should anchor to the previous level: from0=%d from4=%d", qFrom0, qFrom4)
	}
}

func TestExtraABRsStreamEndToEnd(t *testing.T) {
	op, err := operators.ByAcronym("V_Ge")
	if err != nil {
		t.Fatal(err)
	}
	for _, abr := range []ABR{NewL2A(), NewLoLP()} {
		cfg, err := op.LinkConfig(operators.Stationary(61))
		if err != nil {
			t.Fatal(err)
		}
		link, err := newTestLink(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Play(link, SessionConfig{
			Ladder:        Ladder400,
			ChunkLength:   time.Second,
			VideoDuration: 30 * time.Second,
			ABR:           abr,
		})
		if err != nil {
			t.Fatalf("%s: %v", abr.Name(), err)
		}
		if res.AvgNormBitrate <= 0 {
			t.Errorf("%s achieved no bitrate", abr.Name())
		}
		if res.AvgNormBitrate < 0.2 {
			t.Errorf("%s bitrate %.2f suspiciously low on a healthy channel", abr.Name(), res.AvgNormBitrate)
		}
	}
}
