package video

import (
	"fmt"
	"time"

	"github.com/midband5g/midband/internal/fleet"
)

// EdgeConfig models MEC edge caching on the chunk-fetch path. Without
// it (the default), chunk requests are free — the legacy player, and
// the §6 figure artifacts, are byte-identical. With it, every chunk
// request pays a round trip before the first byte arrives: OriginRTT to
// the origin CDN, or EdgeRTT when the chunk is already resident in the
// MEC cache. The hit pattern is a pure function of (Seed, chunk index)
// via fleet.SplitSeed, so EDGE_ON and EDGE_OFF arms of an experiment
// can share a channel realization and differ only in where chunks are
// served from — the paired-comparison design of the ABR × caching grid.
type EdgeConfig struct {
	// HitRatio is the fraction of chunks resident in the edge cache
	// (0 = everything at the origin, 1 = everything at the edge).
	HitRatio float64
	// OriginRTT is the per-chunk request round trip to the origin CDN;
	// EdgeRTT the round trip for a cache hit. The player idles the link
	// for the RTT before the download starts, so deep buffers absorb
	// it and shallow buffers turn it into stall risk.
	OriginRTT, EdgeRTT time.Duration
	// Seed drives the hit pattern.
	Seed int64
}

// Validate checks the configuration.
func (e *EdgeConfig) Validate() error {
	if e.HitRatio < 0 || e.HitRatio > 1 {
		return fmt.Errorf("video: edge hit ratio %g outside [0,1]", e.HitRatio)
	}
	if e.OriginRTT < 0 || e.EdgeRTT < 0 {
		return fmt.Errorf("video: negative edge RTTs")
	}
	return nil
}

// hitScale quantizes HitRatio for the integer hit decision. 2^20 steps
// keep the quantization error (< 1e-6) far below any ratio a spec
// carries.
const hitScale = 1 << 20

// Hit reports whether chunk i is served from the edge cache: a
// deterministic draw from the (Seed, i) sub-stream, independent of
// every other chunk and of the channel realization.
func (e *EdgeConfig) Hit(i int) bool {
	draw := uint64(fleet.SplitSeed(e.Seed, "video/edge", i)) % hitScale
	return draw < uint64(e.HitRatio*hitScale)
}

// RTT returns the request round trip chunk i pays.
func (e *EdgeConfig) RTT(i int) time.Duration {
	if e.Hit(i) {
		return e.EdgeRTT
	}
	return e.OriginRTT
}
