package core

import (
	"context"
	"fmt"
	"math"
	"time"

	"github.com/midband5g/midband/internal/channel"
	"github.com/midband5g/midband/internal/fleet"
	"github.com/midband5g/midband/internal/gnb"
	"github.com/midband5g/midband/internal/obs"
	"github.com/midband5g/midband/internal/operators"
)

// This file is the campaign arm for multi-UE cell contention: each
// operator's primary carrier is run as one shared cell with N contending
// UEs under gnb.CellModelContention. One fleet job per operator; every
// random stream derives from fleet.SplitSeed sub-domains keyed by the
// operator acronym and UE index alone, so reports are byte-identical for
// any worker count.

// MultiUEConfig parameterizes a multi-UE contention run.
type MultiUEConfig struct {
	// Operators to run (default: the full mid-band registry).
	Operators []operators.Operator
	// UEsPerCell is the attached-UE population per cell (default 4).
	UEsPerCell int
	// Policy is the shared-cell scheduler (zero value: equal share).
	Policy gnb.SchedulerPolicy
	// Duration is the simulated time per cell.
	Duration time.Duration
	// Seed drives everything; see the sub-domain layout in
	// docs/ARCHITECTURE.md ("Multi-UE cell model").
	Seed int64
	// Workers bounds the parallel fan-out (<=0: GOMAXPROCS).
	Workers int
	// Metrics, when non-nil, receives fleet counters.
	Metrics *fleet.Metrics
}

// UEShare is one UE's outcome in a shared cell.
type UEShare struct {
	// UE is the index into the cell's UE set.
	UE int
	// Mbps is the UE's delivered goodput.
	Mbps float64
	// Share is the UE's fraction of the cell's delivered bits.
	Share float64
	// ScheduledSlots counts slots in which the UE received a grant.
	ScheduledSlots int64
}

// MultiUEReport is one operator's shared-cell outcome.
type MultiUEReport struct {
	Operator string
	Policy   string
	UEs      int
	// CellMbps is the cell's aggregate delivered goodput.
	CellMbps float64
	// JainIndex is Jain's fairness index over the per-UE goodputs
	// (1 = perfectly fair, 1/N = one UE takes everything).
	JainIndex float64
	// LoadEMA is the cell's final smoothed RB utilization — the
	// neighbor activity factor the load coupling converged to.
	LoadEMA float64
	PerUE   []UEShare
}

// UEPositions derives n deterministic UE positions around the serving
// site: each UE's polar coordinates come from its own SplitSeed
// sub-domain, so UE i's position is independent of n (growing the
// population never moves existing UEs).
func UEPositions(seed int64, n int) []channel.Point {
	pts := make([]channel.Point, n)
	for i := range pts {
		rng := fleet.SplitSeed(seed, "core/multiue/pos", i)
		// Two splitmix-style draws via SplitSeed sub-indices keep this
		// free of math/rand state.
		a := float64(uint64(fleet.SplitSeed(rng, "angle", 0))%360000) / 360000 * 2 * math.Pi
		d := 30 + float64(uint64(fleet.SplitSeed(rng, "dist", 0))%120000)/1000
		pts[i] = channel.Point{X: d * math.Cos(a), Y: d * math.Sin(a)}
	}
	return pts
}

// RunMultiUE runs the multi-UE contention arm serially or in parallel;
// see RunMultiUEContext.
func RunMultiUE(cfg MultiUEConfig) ([]MultiUEReport, error) {
	return RunMultiUEContext(context.Background(), cfg)
}

// RunMultiUEContext fans one shared-cell job per operator over the fleet
// and returns reports in registry order — byte-identical for any
// Workers value.
func RunMultiUEContext(ctx context.Context, cfg MultiUEConfig) ([]MultiUEReport, error) {
	ops := cfg.Operators
	if len(ops) == 0 {
		ops = operators.MidBand()
	}
	if cfg.UEsPerCell <= 0 {
		cfg.UEsPerCell = 4
	}
	if cfg.Duration == 0 {
		cfg.Duration = 5 * time.Second
	}
	n := cfg.UEsPerCell
	jobs := make([]fleet.Job[MultiUEReport], 0, len(ops))
	for _, op := range ops {
		op := op
		jobs = append(jobs, fleet.Job[MultiUEReport]{
			Key: op.Acronym,
			Run: func(_ context.Context) (MultiUEReport, error) {
				seed := fleet.SplitSeed(cfg.Seed, "core/multiue/"+op.Acronym, 0)
				cc, err := op.CarrierConfig(0, operators.Stationary(seed))
				if err != nil {
					return MultiUEReport{}, fmt.Errorf("core: %s: %w", op.Acronym, err)
				}
				scalar, err := gnb.NewCell(gnb.CellConfig{
					Carrier: cc,
					UEs:     UEPositions(seed, n),
					Policy:  cfg.Policy,
					Model:   gnb.CellModelContention,
					Seed:    seed,
				})
				if err != nil {
					return MultiUEReport{}, fmt.Errorf("core: %s: %w", op.Acronym, err)
				}
				// Population-scale stepping goes through the SoA batch
				// engine; it is bit-identical to scalar Cell.Step (the
				// lockstep tests in internal/gnb pin that), so reports are
				// unchanged — just cheaper per UE-slot.
				cell, err := gnb.NewCellBatch(scalar)
				if err != nil {
					return MultiUEReport{}, fmt.Errorf("core: %s: %w", op.Acronym, err)
				}
				steps := int(cfg.Duration / cell.SlotDuration())
				bits := make([]float64, n)
				slots := make([]int64, n)
				for s := 0; s < steps; s++ {
					r := cell.Step()
					for _, a := range r.Allocs {
						bits[a.UE] += float64(a.Alloc.DeliveredBits)
						slots[a.UE]++
					}
				}
				if cfg.Metrics != nil {
					cfg.Metrics.SlotsSimulated.Add(int64(steps))
				}
				secs := float64(steps) * cell.SlotDuration().Seconds()
				rep := MultiUEReport{
					Operator: op.Acronym,
					Policy:   cfg.Policy.String(),
					UEs:      n,
					LoadEMA:  cell.LoadEMA(),
				}
				var total, sumsq float64
				for _, b := range bits {
					total += b
					sumsq += b * b
				}
				rep.CellMbps = total / secs / 1e6
				if sumsq > 0 {
					rep.JainIndex = total * total / (float64(n) * sumsq)
				} else {
					rep.JainIndex = 1 // nothing delivered: vacuously fair
				}
				for i := 0; i < n; i++ {
					share := 0.0
					if total > 0 {
						share = bits[i] / total
					}
					rep.PerUE = append(rep.PerUE, UEShare{
						UE: i, Mbps: bits[i] / secs / 1e6, Share: share,
						ScheduledSlots: slots[i],
					})
					if obs.Enabled() {
						obs.Sim.UEGoodputShare.Observe(share)
					}
				}
				return rep, nil
			},
		})
	}
	results, err := fleet.Run(ctx, jobs, fleet.Options{
		Workers: cfg.Workers,
		Metrics: cfg.Metrics,
	})
	if err != nil {
		return nil, err
	}
	out := make([]MultiUEReport, len(results))
	for i, r := range results {
		out[i] = r.Value
	}
	return out, nil
}
