package core

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"github.com/midband5g/midband/internal/obs"
)

// The obs contract: instrumentation is write-only, so a campaign run
// with hot-path metrics enabled must produce aggregates and traces
// byte-identical to the same campaign with obs off — metrics can never
// feed back into simulation state.
func TestRunCampaignObsOnOffDeterminism(t *testing.T) {
	run := func(obsOn bool, workers int) (*CampaignStats, string) {
		prev := obs.Enabled()
		obs.SetEnabled(obsOn)
		defer obs.SetEnabled(prev)
		dir := t.TempDir()
		stats, err := RunCampaign(CampaignConfig{
			Operators:           campaignOps(t, "V_Sp", "Tmb_US"),
			SessionDuration:     500 * time.Millisecond,
			SessionsPerOperator: 2,
			LatencyProbes:       200,
			TraceDir:            dir,
			Seed:                7,
			Workers:             workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := range stats.Sessions {
			stats.Sessions[i].TracePath = filepath.Base(stats.Sessions[i].TracePath)
		}
		return stats, dir
	}

	off, dirOff := run(false, 1)
	on, dirOn := run(true, 4) // obs on AND parallel: the worst case

	if !reflect.DeepEqual(off, on) {
		t.Errorf("aggregates diverge between obs-off and obs-on runs:\noff: %+v\non:  %+v", off, on)
	}
	for _, s := range off.Sessions {
		b1, err := os.ReadFile(filepath.Join(dirOff, s.TracePath))
		if err != nil {
			t.Fatal(err)
		}
		b2, err := os.ReadFile(filepath.Join(dirOn, s.TracePath))
		if err != nil {
			t.Fatal(err)
		}
		if string(b1) != string(b2) {
			t.Errorf("trace %s differs between obs-off and obs-on runs", s.TracePath)
		}
	}

	// And the run did actually record: the per-operator goodput
	// histograms must have seen every session.
	if got := obs.GoodputMbps("V_Sp").Count(); got < 2 {
		t.Errorf("obs-on run recorded %d V_Sp sessions, want ≥ 2", got)
	}
	if got := obs.Sim.SlotsStepped.Load(); got == 0 {
		t.Error("obs-on run stepped no instrumented slots")
	}
}
