package core

import (
	"bytes"
	"path/filepath"
	"testing"
	"time"

	"github.com/midband5g/midband/internal/net5g"
	"github.com/midband5g/midband/internal/operators"
	"github.com/midband5g/midband/internal/video"
	"github.com/midband5g/midband/internal/xcal"
)

func session(t *testing.T, acr string, seed int64) *Session {
	t.Helper()
	op, err := operators.ByAcronym(acr)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSession(op, operators.Stationary(seed))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSessionMeta(t *testing.T) {
	s := session(t, "V_It", 1)
	m := s.Meta()
	if m.Operator != "V_It" || m.Country != "Italy" || m.City != "Rome" {
		t.Errorf("meta = %+v", m)
	}
	if m.SlotDuration != 500*time.Microsecond {
		t.Errorf("slot duration = %v", m.SlotDuration)
	}
}

func TestSessionSignaling(t *testing.T) {
	s := session(t, "Tmb_US", 2)
	mib, sibs, err := s.Signaling()
	if err != nil {
		t.Fatal(err)
	}
	if mib.SCSkHz != 30 {
		t.Errorf("MIB SCS = %d", mib.SCSkHz)
	}
	if len(sibs) != 4 {
		t.Fatalf("T-Mobile should broadcast 4 SIB1s, got %d", len(sibs))
	}
	if sibs[0].Band != "n41" || sibs[0].CarrierBandwidthRB != 273 {
		t.Errorf("PCell SIB1 = %+v", sibs[0])
	}
	if !sibs[2].FDD || sibs[2].Band != "n25" {
		t.Errorf("n25 SIB1 = %+v", sibs[2])
	}
	if sibs[0].AbsoluteFrequencyPointA == 0 {
		t.Error("SIB1 missing frequency")
	}
}

func TestWarmUpIdempotent(t *testing.T) {
	s := session(t, "V_Ge", 3)
	if err := s.WarmUp(); err != nil {
		t.Fatal(err)
	}
	before := s.Link.Now()
	if err := s.WarmUp(); err != nil {
		t.Fatal(err)
	}
	if s.Link.Now() != before {
		t.Error("second WarmUp should be a no-op")
	}
}

func TestRunIperfAndLatency(t *testing.T) {
	s := session(t, "T_Ge", 4)
	res, err := s.RunIperf(time.Second, net5g.Saturate, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.DLMbps < 200 {
		t.Errorf("T_Ge DL = %.0f Mbps", res.DLMbps)
	}
	clean, retx, err := s.RunLatency(3000, 0.08)
	if err != nil {
		t.Fatal(err)
	}
	if len(clean) == 0 || len(retx) == 0 {
		t.Fatalf("latency buckets empty: clean=%d retx=%d", len(clean), len(retx))
	}
	if meanDuration(retx) <= meanDuration(clean) {
		t.Error("BLER>0 bucket should be slower")
	}
}

func TestRunCampaignWritesTraces(t *testing.T) {
	dir := t.TempDir()
	ops := []operators.Operator{}
	for _, acr := range []string{"V_Sp", "Vzw_US"} {
		op, err := operators.ByAcronym(acr)
		if err != nil {
			t.Fatal(err)
		}
		ops = append(ops, op)
	}
	stats, err := RunCampaign(CampaignConfig{
		Operators:       ops,
		SessionDuration: time.Second,
		LatencyProbes:   500,
		TraceDir:        dir,
		Seed:            5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Operators != 2 || len(stats.Sessions) != 2 {
		t.Fatalf("stats = %+v", stats)
	}
	if !stats.Countries["Spain"] || !stats.Countries["USA"] {
		t.Error("countries missing")
	}
	if stats.Minutes <= 0 || stats.DataTB <= 0 {
		t.Error("dataset volume should be positive")
	}
	if stats.TraceFiles != 2 {
		t.Errorf("trace files = %d", stats.TraceFiles)
	}
	// Each written trace is a readable capture with signaling + KPIs.
	for _, sess := range stats.Sessions {
		r, f, err := xcal.OpenFile(sess.TracePath)
		if err != nil {
			t.Fatalf("opening %s: %v", sess.TracePath, err)
		}
		var kpi, sib int
		for {
			ft, err := r.Next()
			if err != nil {
				break
			}
			switch ft {
			case xcal.FrameKPI:
				kpi++
			case xcal.FrameSIB1:
				sib++
			}
		}
		f.Close()
		if kpi == 0 || sib == 0 {
			t.Errorf("%s: kpi=%d sib=%d", filepath.Base(sess.TracePath), kpi, sib)
		}
		if sess.DLMbps <= 0 || sess.LatencyClean <= 0 {
			t.Errorf("session %s has zero metrics", sess.Operator)
		}
	}
}

func TestRunCampaignDefaults(t *testing.T) {
	// Default registry (11 operators), tiny sessions, no traces.
	stats, err := RunCampaign(CampaignConfig{
		SessionDuration: 250 * time.Millisecond,
		LatencyProbes:   100,
		Seed:            6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Operators != 11 {
		t.Errorf("default campaign covers %d operators, want 11", stats.Operators)
	}
	// Table 1 shape: 5 countries, 5 cities.
	if len(stats.Countries) != 5 || len(stats.Cities) != 5 {
		t.Errorf("countries=%d cities=%d, want 5/5", len(stats.Countries), len(stats.Cities))
	}
}

func TestRunVideoWritesEvents(t *testing.T) {
	s := session(t, "V_Sp", 7)
	var buf bytes.Buffer
	w, err := xcal.NewWriter(&buf, s.Meta())
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.RunVideo(video.SessionConfig{
		Ladder:        video.Ladder400,
		ChunkLength:   time.Second,
		VideoDuration: 10 * time.Second,
		ABR:           video.NewBOLA(),
	}, w)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := xcal.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var requests, arrivals, sibs int
	for {
		ft, err := r.Next()
		if err != nil {
			break
		}
		switch ft {
		case xcal.FrameEvent:
			switch r.Event.Kind {
			case "chunk-request":
				requests++
			case "chunk-arrival":
				arrivals++
			}
		case xcal.FrameSIB1:
			sibs++
		}
	}
	if requests != len(res.Chunks) || arrivals != len(res.Chunks) {
		t.Errorf("events: %d requests / %d arrivals for %d chunks", requests, arrivals, len(res.Chunks))
	}
	if sibs == 0 {
		t.Error("video trace should carry signaling")
	}
}
